"""ScenarioBank: a seeded, diverse library of rupture scenarios.

Multi-scenario serving (Nomura et al. 2024's "database of diverse tsunami
scenarios"; the ROADMAP's "as many scenarios as you can imagine") starts
from a scenario library with controlled coverage: the bank draws each
entry's magnitude, hypocenter, rupture speed, and rise time from a Halton
low-discrepancy sequence, so any prefix of the bank spans the ranges
evenly, and every entry is reproducible from ``(bank seed, index)`` alone —
independent of how many scenarios were generated before or after it.

Each :class:`BankedScenario` wraps a full
:class:`~repro.rupture.scenario.RuptureScenario` (built by
``margin_wide_scenario`` on the twin's bottom-trace grid) plus the design
coordinates it was drawn at, and the bank can stack the whole library's
synthetic observations into the ``(Nt, Nd, k)`` batches the
:class:`~repro.serve.server.BatchedPhase4Server` consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Tuple, Union

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.inference.streaming import StreamingFleet
    from repro.serve.identify import ScenarioIdentifier

from repro.fem.spaces import TraceGrid
from repro.rupture.scenario import (
    RuptureScenario,
    default_rupture_velocity,
    margin_wide_scenario,
)
from repro.util.validation import check_positive

__all__ = ["BankedScenario", "ScenarioBank", "entry_seed", "halton_sequence"]


_HALTON_BASES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)

_SEED_MASK = (1 << 64) - 1
_NOISE_STREAM_TAG = 1  # separates noise draws from rupture heterogeneity


def entry_seed(bank_seed: int, index: int) -> int:
    """Collision-free deterministic rupture seed for ``(bank seed, index)``.

    Derived through :class:`numpy.random.SeedSequence` so distinct
    ``(bank, index)`` pairs map to distinct (hash-mixed) seeds — the old
    ``bank_seed * 10_000 + index`` arithmetic collided across banks as
    soon as any index reached 10 000 (bank 0 entry 10 001 shared both the
    rupture seed and the observation-noise stream with bank 1 entry 1).

    Compatibility note: this changes every entry's realization relative to
    pre-fix banks; entries remain reproducible from ``(bank seed, index)``
    alone, which is the contract that matters.
    """
    ss = np.random.SeedSequence((int(bank_seed) & _SEED_MASK, int(index)))
    return int(ss.generate_state(1, dtype=np.uint64)[0])


def _van_der_corput(index: int, base: int) -> float:
    """Radical-inverse of ``index`` in ``base`` (the Halton 1-D kernel)."""
    q, denom = 0.0, 1.0
    i = index
    while i > 0:
        denom *= base
        i, rem = divmod(i, base)
        q += rem / denom
    return q


def halton_sequence(index: int, ndim: int) -> np.ndarray:
    """Point ``index`` (1-based) of the ``ndim``-dimensional Halton sequence.

    Deterministic and prefix-stable: point ``i`` never changes as more
    points are requested, and any prefix is low-discrepancy in ``[0,1)^d``.
    """
    if not 1 <= ndim <= len(_HALTON_BASES):
        raise ValueError(f"ndim must lie in [1, {len(_HALTON_BASES)}]")
    return np.array(
        [_van_der_corput(index, b) for b in _HALTON_BASES[:ndim]], dtype=np.float64
    )


@dataclass
class BankedScenario:
    """One indexed entry of a :class:`ScenarioBank`.

    Attributes
    ----------
    scenario_id:
        Stable identifier ``"scn-<bank seed>-<index>"``.
    index, seed:
        Bank index and the derived deterministic rupture seed.
    peak_uplift, hypocenter_frac, velocity_factor, rise_time_slots:
        The design coordinates this entry was drawn at.
    scenario:
        The realized rupture scenario (truth field + kinematics).
    """

    scenario_id: str
    index: int
    seed: int
    peak_uplift: float
    hypocenter_frac: Tuple[float, ...]
    velocity_factor: float
    rise_time_slots: float
    scenario: RuptureScenario

    @property
    def mw(self) -> float:
        """Moment-magnitude analogue of the realized rupture."""
        return self.scenario.mw


class ScenarioBank:
    """Deterministic low-discrepancy library of margin-wide ruptures.

    Parameters
    ----------
    trace:
        Bottom :class:`~repro.fem.spaces.TraceGrid` of an assembled ocean
        operator (``twin.operator.bottom_trace``).
    nt, dt_obs:
        Observation window of the twin the bank serves.
    seed:
        Bank seed; entry ``i`` uses the rupture seed
        :func:`entry_seed(seed, i) <entry_seed>` (SeedSequence-derived, so
        seeds never collide across banks).
    peak_uplift_range:
        Magnitude axis: final peak uplift, sampled log-uniformly.
    hypocenter_range:
        Along-dip nucleation range as fractions of the cross-margin axis
        (kept inside the locked zone).
    velocity_factor_range, rise_time_slots_range:
        Kinematic axes: multipliers on the default front speed, and rise
        time in units of ``dt_obs``.
    """

    def __init__(
        self,
        trace: TraceGrid,
        nt: int,
        dt_obs: float,
        seed: int = 0,
        peak_uplift_range: Tuple[float, float] = (0.15, 1.2),
        hypocenter_range: Tuple[float, float] = (0.15, 0.55),
        velocity_factor_range: Tuple[float, float] = (0.7, 1.6),
        rise_time_slots_range: Tuple[float, float] = (4.0, 10.0),
    ) -> None:
        check_positive("nt", nt)
        check_positive("dt_obs", dt_obs)
        if peak_uplift_range[0] <= 0 or peak_uplift_range[1] <= peak_uplift_range[0]:
            raise ValueError("peak_uplift_range must be increasing and positive")
        self.trace = trace
        self.nt = int(nt)
        self.dt_obs = float(dt_obs)
        self.seed = int(seed)
        self.peak_uplift_range = peak_uplift_range
        self.hypocenter_range = hypocenter_range
        self.velocity_factor_range = velocity_factor_range
        self.rise_time_slots_range = rise_time_slots_range
        self._entries: List[BankedScenario] = []
        self._by_id: Dict[str, BankedScenario] = {}

    # ------------------------------------------------------------------
    # Generation
    # ------------------------------------------------------------------
    def _design_point(self, index: int) -> Tuple[float, Tuple[float, ...], float, float]:
        """Design coordinates of entry ``index`` from the Halton sequence."""
        # Offset the sequence so index 0 is not the degenerate origin.  Each
        # design axis gets its own Halton base so no two axes are correlated
        # — including one base per *extra* hypocenter dimension on >= 3-D
        # trace grids (a single shared coordinate would make all cross-dip
        # nucleation points perfectly correlated, collapsing the design
        # space to a line).  Halton prefixes are stable, so adding
        # dimensions never changes the first four axes.
        dh = len(self.trace.axes)
        u = halton_sequence(index + 1, 4 + max(dh - 1, 0))
        lo, hi = self.peak_uplift_range
        peak = float(np.exp(np.log(lo) + u[0] * (np.log(hi) - np.log(lo))))
        h0, h1 = self.hypocenter_range
        hypo = (h0 + u[1] * (h1 - h0),) + tuple(
            0.2 + 0.6 * u[4 + i] for i in range(dh - 1)
        )
        v0, v1 = self.velocity_factor_range
        vel = float(v0 + u[2] * (v1 - v0))
        r0, r1 = self.rise_time_slots_range
        rise = float(r0 + u[3] * (r1 - r0))
        return peak, hypo, vel, rise

    def _build(self, index: int) -> BankedScenario:
        peak, hypo, vel_factor, rise_slots = self._design_point(index)
        seed = entry_seed(self.seed, index)
        window = self.nt * self.dt_obs
        axes = [np.asarray(a, dtype=np.float64) for a in self.trace.axes]
        span = max(float(a[-1] - a[0]) for a in axes)
        velocity = vel_factor * default_rupture_velocity(span, window)
        scenario = margin_wide_scenario(
            self.trace,
            nt=self.nt,
            dt_obs=self.dt_obs,
            peak_uplift=peak,
            hypocenter_frac=hypo,
            rupture_velocity=velocity,
            rise_time=rise_slots * self.dt_obs,
            seed=seed,
        )
        return BankedScenario(
            scenario_id=f"scn-{self.seed:04d}-{index:04d}",
            index=index,
            seed=seed,
            peak_uplift=peak,
            hypocenter_frac=tuple(float(h) for h in hypo),
            velocity_factor=vel_factor,
            rise_time_slots=rise_slots,
            scenario=scenario,
        )

    def generate(self, n: int) -> List[BankedScenario]:
        """Ensure the bank holds ``n`` entries; returns the first ``n``.

        Idempotent and incremental: entries already built are reused, and
        entry ``i`` is identical whether built in a batch of 20 or 200.
        If the bank has grown beyond ``n``, the return value is that
        prefix — iterate the bank itself for the full library.
        """
        check_positive("n", n)
        for index in range(len(self._entries), int(n)):
            entry = self._build(index)
            self._entries.append(entry)
            self._by_id[entry.scenario_id] = entry
        return list(self._entries[: int(n)])

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[BankedScenario]:
        return iter(self._entries)

    def __getitem__(self, key: Union[int, str]) -> BankedScenario:
        if isinstance(key, str):
            return self._by_id[key]
        return self._entries[key]

    def ids(self) -> List[str]:
        """Stable identifiers of all generated entries."""
        return [e.scenario_id for e in self._entries]

    def magnitudes(self) -> np.ndarray:
        """Mw analogues of all generated entries."""
        return np.array([e.mw for e in self._entries])

    def hypocenters(self) -> np.ndarray:
        """Nucleation x-coordinates (fractions) of all generated entries."""
        return np.array([e.hypocenter_frac[0] for e in self._entries])

    # ------------------------------------------------------------------
    # Serving helpers
    # ------------------------------------------------------------------
    def truth_batch(self) -> np.ndarray:
        """All truth parameter fields stacked, ``(Nt, Nm, k)``."""
        if not self._entries:
            raise RuntimeError("generate() the bank first")
        return np.stack([e.scenario.m for e in self._entries], axis=-1)

    def clean_records(self, operator) -> np.ndarray:
        """Noise-free records of every entry under ``operator``, ``(Nt, n_out, k)``.

        One batched kernel matvec.  With the twin's p2o operator this is
        the bank's clean sensor library (the ``mu_s`` of streaming scenario
        identification); with the p2q operator, the clean QoI trajectories
        used by bank-conditioned forecast mixtures.
        """
        return operator.matvec(self.truth_batch())

    def clean_fleet(self, engine) -> "StreamingFleet":
        """Fully-advanced streaming fleet over the bank's clean sensor records.

        The bank side of streaming identification: per-scenario
        forward-substituted states ``w(mu_s) = L^{-1} mu_s`` against the
        engine's shared geometry, advanced to the full horizon (block
        solves only).  :class:`~repro.serve.identify.ScenarioIdentifier`
        builds on exactly this export.
        """
        return engine.open_fleet(self.clean_records(engine.inv.F)).advance(engine.nt)

    def identifier(self, engine, prior_weights=None) -> "ScenarioIdentifier":
        """A :class:`~repro.serve.identify.ScenarioIdentifier` over this bank."""
        from repro.serve.identify import ScenarioIdentifier

        return ScenarioIdentifier.from_bank(engine, self, prior_weights=prior_weights)

    def observation_batch(
        self,
        F,
        noise_relative: float = 0.01,
        noise=None,
        seed: Optional[int] = None,
    ):
        """Clean records, the fleet noise model, and noisy records.

        One batched kernel matvec produces every stream's clean records
        ``(Nt, Nd, k)``.  Instrument noise is a property of the sensor
        network, not of any one event, so a *single*
        :class:`~repro.inference.noise.NoiseModel` is used for every
        stream: per-sensor sigma at ``noise_relative`` times the RMS
        amplitude pooled over the whole bank (or pass an explicit
        ``noise``).  Returning the model keeps the serving-side inversion
        consistent with the data it is fed — inverting under a different
        sigma than the draws would bias the shared posterior covariance
        and every alert probability derived from it.

        Returns ``(d_clean, noise, d_obs)`` — the same ordering as
        :meth:`repro.twin.cascadia.CascadiaTwin.observe` — with draws
        deterministic in a per-entry seed: the noise stream is spawned
        from ``SeedSequence((base, entry seed, noise tag))``, so it never
        collides across banks or with the rupture-heterogeneity draws
        (realizations differ from the pre-fix additive-seed scheme).
        """
        from repro.inference.noise import NoiseModel

        d_clean = self.clean_records(F)
        nt, nd, _ = d_clean.shape
        if noise is None:
            # Pool the RMS over time *and* streams, per sensor (the fleet
            # analogue of NoiseModel.relative's per-sensor calibration).
            rms = np.sqrt(np.mean(d_clean**2, axis=(0, 2)))
            floor = noise_relative * max(float(np.sqrt(np.mean(d_clean**2))), 1e-300)
            noise = NoiseModel(np.maximum(noise_relative * rms, floor), nt, nd)
        d_obs = np.empty_like(d_clean)
        base = self.seed if seed is None else int(seed)
        for j, entry in enumerate(self._entries):
            ss = np.random.SeedSequence(
                (base & _SEED_MASK, entry.seed, _NOISE_STREAM_TAG)
            )
            d_obs[:, :, j] = noise.add_to(d_clean[:, :, j], np.random.default_rng(ss))
        return d_clean, noise, d_obs

    def summary_table(self) -> str:
        """Readable per-entry design/realization table."""
        lines = [
            f"{'id':<14s} {'Mw':>6s} {'peak':>7s} {'hypo_x':>7s} "
            f"{'v_fac':>6s} {'rise':>6s}"
        ]
        for e in self._entries:
            lines.append(
                f"{e.scenario_id:<14s} {e.mw:>6.2f} {e.peak_uplift:>7.3f} "
                f"{e.hypocenter_frac[0]:>7.3f} {e.velocity_factor:>6.2f} "
                f"{e.rise_time_slots:>6.2f}"
            )
        return "\n".join(lines)
