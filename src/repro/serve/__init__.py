"""Multi-scenario serving: scenario banks, operator caching, batched Phase 4.

The paper's offline--online split makes the online solve a small dense
problem ("deployable entirely without any HPC infrastructure", Section
VIII).  This package turns that observation into a serving architecture —
the single-event reproduction becomes a multi-tenant twin:

``scenarios``
    :class:`ScenarioBank` — a seeded, Halton-stratified library of rupture
    scenarios spanning magnitude, hypocenter, and kinematics, each
    reproducible from ``(bank seed, index)`` and runnable end-to-end
    through the twin.
``cache``
    :class:`OperatorCache` — Phases 2-3 memoized by geometry fingerprint
    (kernels + prior + noise), with optional ``.npz`` persistence so one
    offline build serves every later process.
``server``
    :class:`BatchedPhase4Server` — ``k`` concurrent observation streams
    stacked into single BLAS-3 solves (one ``trsm``/``gemm`` instead of
    ``k`` ``trsv``/``gemv`` sweeps) for full-data MAP/forecast, and
    incremental streaming early warning across the whole fleet: per-stream
    forward-substituted states advanced one observation slot at a time
    (ragged per-stream horizons allowed) against the inversion's shared
    :class:`~repro.inference.streaming.IncrementalStreamingPosterior`.
``identify``
    :class:`ScenarioIdentifier` / :class:`IdentificationSession` —
    streaming scenario identification: exact truncated-data model
    evidence ``log p(d_k | s)`` for every (stream, scenario) pair,
    accumulated incrementally from the same forward-substituted states
    (O(Nd) per slot per pair), with posterior scenario probabilities,
    top-``k`` rankings, and bank-conditioned forecast mixtures; surfaced
    as ``BatchedPhase4Server.open_identification`` / ``identify_batch``.

Quick start::

    from repro.serve import BatchedPhase4Server, OperatorCache, ScenarioBank
    from repro.twin import CascadiaTwin, TwinConfig

    twin = CascadiaTwin(TwinConfig.demo_2d()).setup()
    twin.phase1()
    bank = ScenarioBank(twin.operator.bottom_trace, twin.config.n_slots,
                        twin.config.dt_obs, seed=7)
    bank.generate(32)
    d_clean, noise, d_obs = bank.observation_batch(twin.F)
    inv = OperatorCache().get_or_build(twin, noise)
    result = BatchedPhase4Server(inv).serve(d_obs)
"""

from repro.serve.cache import CacheStats, OperatorCache
from repro.serve.identify import (
    IdentificationResult,
    IdentificationSession,
    ScenarioIdentifier,
)
from repro.serve.scenarios import (
    BankedScenario,
    ScenarioBank,
    entry_seed,
    halton_sequence,
)
from repro.serve.server import BatchedPhase4Server, ServeResult

__all__ = [
    "ScenarioBank",
    "BankedScenario",
    "entry_seed",
    "halton_sequence",
    "OperatorCache",
    "CacheStats",
    "BatchedPhase4Server",
    "ServeResult",
    "ScenarioIdentifier",
    "IdentificationSession",
    "IdentificationResult",
]
