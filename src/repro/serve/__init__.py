"""Multi-scenario serving: banks, caching, batched Phase 4, and the fabric.

The paper's offline--online split makes the online solve a small dense
problem ("deployable entirely without any HPC infrastructure", Section
VIII).  This package turns that observation into a serving architecture —
the single-event reproduction becomes a multi-tenant twin:

``scenarios``
    :class:`ScenarioBank` — a seeded, Halton-stratified library of rupture
    scenarios spanning magnitude, hypocenter, and kinematics, each
    reproducible from ``(bank seed, index)`` and runnable end-to-end
    through the twin.
``cache``
    :class:`OperatorCache` — Phases 2-3 memoized by geometry fingerprint
    (kernels + prior + noise), with optional ``.npz`` persistence so one
    offline build serves every later process, and an optional
    :class:`~repro.util.memory.MemoryBudget` that evicts the coldest
    resident operator sets under memory pressure.
``server``
    :class:`BatchedPhase4Server` — ``k`` concurrent observation streams
    stacked into single BLAS-3 solves (one ``trsm``/``gemm`` instead of
    ``k`` ``trsv``/``gemv`` sweeps) for full-data MAP/forecast, and
    incremental streaming early warning across the whole fleet: per-stream
    forward-substituted states advanced one observation slot at a time
    (ragged per-stream horizons allowed) against the inversion's shared
    :class:`~repro.inference.streaming.IncrementalStreamingPosterior`.
``identify``
    :class:`ScenarioIdentifier` / :class:`IdentificationSession` —
    streaming scenario identification: exact truncated-data model
    evidence ``log p(d_k | s)`` for every (stream, scenario) pair,
    accumulated incrementally from the same forward-substituted states
    (O(Nd) per slot per pair), with posterior scenario probabilities,
    top-``k`` rankings, and bank-conditioned forecast mixtures; surfaced
    as ``BatchedPhase4Server.open_identification`` / ``identify_batch``.
``sketch``
    :class:`SlotSketch` / :func:`certified_bounds` — the shared
    certified-screen layer: seeded per-slot low-rank projections of
    whitened states and the interval arithmetic that brackets every
    scenario's log-evidence from partial slot information (norm-only
    triangle brackets, or sketch-tightened brackets whose projected
    residual is exact).  The flat identifier
    (``IdentificationSession.evidence_interval``), the streaming fleet
    (``StreamingFleet.attach_sketch``), and the fabric's coarse screen
    all route through this one module, so certified decisions are
    identical by construction across paths.
``protocol``
    The typed, versioned shard wire protocol: one frozen dataclass per
    stage message (:class:`BuildShard`, :class:`ScreenStage`,
    :class:`ExactStage`, :class:`MixtureStage`, ..., :class:`Ack` /
    :class:`ErrorReply`), the framing codec
    (:func:`encode_message` / :func:`decode_message`, version skew →
    :class:`ProtocolError`), and the per-request scratch packing
    (:func:`pack_scratch` / :func:`scratch_nbytes`).
``shardops``
    The pure per-shard stage kernels (:func:`build_shard`,
    :func:`screen_shard`, :func:`exact_shard`, :func:`mixture_shard`) —
    one implementation executed identically by shared-memory workers,
    TCP shard servers, and the parent's degradation fallback, which is
    what makes results transport-independent by construction.
``transport``
    :class:`ShardTransport` — where shard state lives and how stage
    messages move.  :class:`SharedMemoryTransport` is the single-host
    path (worker processes over named shared memory, bitwise identical
    to the pre-seam fabric); :class:`TcpTransport` serves shards from
    :class:`ShardServer` peers over length-prefixed sockets
    (``start_local_shards`` for loopback testing, ``python -m
    repro.serve.transport --serve/--smoke`` standalone).  Both expose
    the same fault surface, so chaos scripts replay against either.
``fabric``
    :class:`ServingFabric` — the 1000+-scenario scale-out: banks sharded
    across transport channels (``FabricConfig.transport`` selects the
    seam), a micro-batching admission queue (:class:`FabricTicket`,
    with an optional ``max_queue_ms`` deadline flush, cancellation via
    :class:`TicketCancelled`), two-stage
    hierarchical identification (a certified coarse screen — optionally
    sketch-tightened via ``sketch_rank`` — that prunes the bank before
    the exact evidence runs on survivors only), sharded bank-conditioned
    forecast mixtures (``forecast_mixture``), graceful degradation on
    worker loss with ``respawn_workers()`` recovery, and
    heat-prioritized bank eviction under a global
    :class:`~repro.util.memory.MemoryBudget`; surfaced as
    ``BatchedPhase4Server.fabric()`` and the
    ``python -m repro.serve.fabric`` CLI.  Operator guide:
    ``docs/SERVING.md``.
``gateway``
    :class:`IngestGateway` — the async ingest tier over the fabric's
    ticket queue: TTL idempotency cache (retries join the original
    request's future), :class:`TokenBucket` rate limiting ahead of the
    queue, deadline flushing, an optional append-only
    :class:`GatewayJournal` with crash replay
    (``IngestGateway.recover`` → :class:`RecoveryReport`,
    exactly-once), and Prometheus-text metrics with a minimal
    ``/metrics`` endpoint.  Load generation:
    ``benchmarks/bench_gateway.py``.
``reporting``
    :func:`format_identification` / :func:`format_fabric_report` /
    :func:`format_orchestrator_report` — the
    shared operator-readable report formatting used by the examples, the
    fabric CLI, and the benchmarks.

Quick start::

    from repro.serve import BatchedPhase4Server, OperatorCache, ScenarioBank
    from repro.twin import CascadiaTwin, TwinConfig

    twin = CascadiaTwin(TwinConfig.demo_2d()).setup()
    twin.phase1()
    bank = ScenarioBank(twin.operator.bottom_trace, twin.config.n_slots,
                        twin.config.dt_obs, seed=7)
    bank.generate(32)
    d_clean, noise, d_obs = bank.observation_batch(twin.F)
    inv = OperatorCache().get_or_build(twin, noise)
    server = BatchedPhase4Server(inv)
    result = server.serve(d_obs)
    with server.fabric([bank], n_workers=4) as fabric:   # sharded + screened
        ranking = fabric.identify(d_obs, k_slots=8)
"""

from repro.serve.cache import CacheStats, OperatorCache
from repro.serve.fabric import (
    FabricConfig,
    FabricReport,
    FabricTicket,
    RankController,
    ServingFabric,
    TicketCancelled,
)
from repro.serve.gateway import (
    GatewayJournal,
    GatewayResponse,
    IdempotencyCache,
    IngestGateway,
    RecoveryReport,
    TokenBucket,
)
from repro.serve.identify import (
    IdentificationResult,
    IdentificationSession,
    ScenarioIdentifier,
    normalize_log_prior,
)
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    Ack,
    AdoptShard,
    BuildShard,
    DetachBank,
    ErrorReply,
    ExactStage,
    Hello,
    JournalSettle,
    JournalSubmit,
    KillChannel,
    MixtureStage,
    ProtocolError,
    RetuneSketch,
    ScreenStage,
    Stop,
    decode_message,
    encode_message,
    pack_scratch,
    scratch_nbytes,
)
from repro.serve.reporting import (
    format_fabric_report,
    format_identification,
    format_orchestrator_report,
    parse_prometheus,
    print_identification,
    to_prometheus,
)
from repro.serve.shardops import (
    build_shard,
    exact_shard,
    mixture_shard,
    screen_shard,
)
from repro.serve.transport import (
    ShardServer,
    ShardTransport,
    SharedMemoryTransport,
    StageContext,
    TcpTransport,
    start_local_shards,
)
from repro.serve.scenarios import (
    BankedScenario,
    ScenarioBank,
    entry_seed,
    halton_sequence,
)
from repro.serve.server import BatchedPhase4Server, ServeResult
from repro.serve.sketch import (
    COL_BLOCK,
    SlotSketch,
    certified_bounds,
    pca_basis,
    select_screen_slots,
)

__all__ = [
    # scenario banks
    "ScenarioBank",
    "BankedScenario",
    "entry_seed",
    "halton_sequence",
    # operator caching
    "OperatorCache",
    "CacheStats",
    # batched serving
    "BatchedPhase4Server",
    "ServeResult",
    # streaming identification
    "ScenarioIdentifier",
    "IdentificationSession",
    "IdentificationResult",
    "normalize_log_prior",
    # certified sketch-screen layer
    "SlotSketch",
    "certified_bounds",
    "pca_basis",
    "select_screen_slots",
    "COL_BLOCK",
    # shard wire protocol
    "PROTOCOL_VERSION",
    "ProtocolError",
    "Hello",
    "BuildShard",
    "AdoptShard",
    "DetachBank",
    "RetuneSketch",
    "ScreenStage",
    "ExactStage",
    "MixtureStage",
    "KillChannel",
    "Stop",
    "Ack",
    "ErrorReply",
    "JournalSubmit",
    "JournalSettle",
    "encode_message",
    "decode_message",
    "pack_scratch",
    "scratch_nbytes",
    # per-shard stage kernels
    "build_shard",
    "screen_shard",
    "exact_shard",
    "mixture_shard",
    # shard transports
    "ShardTransport",
    "SharedMemoryTransport",
    "TcpTransport",
    "ShardServer",
    "StageContext",
    "start_local_shards",
    # sharded serving fabric
    "ServingFabric",
    "FabricConfig",
    "FabricReport",
    "FabricTicket",
    "RankController",
    "TicketCancelled",
    # async ingest gateway
    "IngestGateway",
    "GatewayResponse",
    "GatewayJournal",
    "RecoveryReport",
    "IdempotencyCache",
    "TokenBucket",
    # report formatting
    "format_identification",
    "format_fabric_report",
    "format_orchestrator_report",
    "print_identification",
    "to_prometheus",
    "parse_prometheus",
]
