"""Async ingest gateway: network-facing admission over the fabric queue.

The fabric (:mod:`repro.serve.fabric`) already fuses concurrent streams
into micro-batches behind :class:`~repro.serve.fabric.FabricTicket`; what
a deployment facing "millions of users" still needs is an *admission
tier* in front of it — the paper's real-time claim holds only if
concurrency control, not math, sets the ceiling.  This module is that
tier, with no dependencies beyond the standard library:

**Idempotency.**
    Tsunami-warning clients retry aggressively (lossy links, impatient
    upstreams).  A request carrying an ``idempotency_key`` the gateway
    has seen within the TTL window joins the *original* request's future
    instead of being recomputed or re-admitted — duplicates cost one
    dictionary lookup, converge to the same result (or the same error),
    and are counted in ``gateway_deduplicated``.

**Rate limiting.**
    A token bucket (``rate_rps`` sustained, ``burst`` headroom) bounds
    admission; over-limit requests are rejected *before* touching the
    fabric queue with ``status="rejected"`` and counted in
    ``gateway_rate_limited``.  Deduplicated retries never spend a token
    — retrying a request that is already in flight is free.

**Observability.**
    :meth:`IngestGateway.metrics_text` renders the gateway's own
    counters plus the fabric's
    (:meth:`~repro.serve.fabric.ServingFabric.report`) in Prometheus
    text exposition format
    (:func:`~repro.serve.reporting.to_prometheus`);
    :meth:`IngestGateway.serve_metrics` exposes them on a minimal
    ``/metrics`` HTTP endpoint.

The bridge into asyncio is :meth:`FabricTicket.on_done` →
``loop.call_soon_threadsafe``: admission happens inline on the event
loop (cheap — the fabric only computes when a batch fills), and partial
batches are flushed after ``flush_ms`` from a worker thread so the loop
never blocks on shard computation.  Time is injectable
(:class:`~repro.util.clock.Clock`) so the bucket and the TTL cache are
tested on virtual time, without sleeps.

Load generator: ``python -m benchmarks.bench_gateway`` (tiny profile in
CI publishes ``BENCH_gateway.json`` with sustained req/s and p50/p99
latency).
"""

from __future__ import annotations

import asyncio
import threading
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.serve.reporting import to_prometheus
from repro.util.clock import Clock, ensure_clock

__all__ = [
    "GatewayResponse",
    "IdempotencyCache",
    "IngestGateway",
    "TokenBucket",
]


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/s sustained, ``burst`` capacity.

    ``allow()`` spends one token if available.  Refill is computed lazily
    from the injected clock's monotonic axis, so a
    :class:`~repro.util.clock.ManualClock` drives it deterministically in
    tests.  Thread-safe (admission may be probed from loop and executor
    threads alike).
    """

    def __init__(
        self, rate: float, burst: int, clock: Optional[Clock] = None
    ) -> None:
        if rate <= 0 or burst < 1:
            raise ValueError("rate must be > 0 and burst >= 1")
        self.rate = float(rate)
        self.burst = int(burst)
        self._clock = ensure_clock(clock)
        self._tokens = float(burst)
        self._stamp = self._clock.monotonic()
        self._lock = threading.Lock()

    def allow(self) -> bool:
        """Spend one token if the bucket holds one; never blocks."""
        with self._lock:
            now = self._clock.monotonic()
            self._tokens = min(
                self.burst, self._tokens + (now - self._stamp) * self.rate
            )
            self._stamp = now
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return True
            return False


class IdempotencyCache:
    """TTL map of idempotency key → in-flight/settled request future.

    Entries expire ``ttl_s`` after *insertion* (not last access — a
    retry storm must not pin its key forever), on the injected clock's
    monotonic axis.  Expired entries are purged opportunistically on
    every access, so the cache never grows beyond the keys of one TTL
    window.
    """

    def __init__(self, ttl_s: float, clock: Optional[Clock] = None) -> None:
        if ttl_s <= 0:
            raise ValueError("ttl_s must be positive")
        self.ttl_s = float(ttl_s)
        self._clock = ensure_clock(clock)
        self._entries: Dict[str, Tuple[float, object]] = {}

    def _purge(self) -> None:
        now = self._clock.monotonic()
        dead = [k for k, (exp, _) in self._entries.items() if exp <= now]
        for k in dead:
            del self._entries[k]

    def get(self, key: str):
        """The live entry for ``key``, or ``None`` past its TTL."""
        self._purge()
        hit = self._entries.get(key)
        return None if hit is None else hit[1]

    def put(self, key: str, value) -> None:
        self._purge()
        self._entries[key] = (self._clock.monotonic() + self.ttl_s, value)

    def __len__(self) -> int:
        self._purge()
        return len(self._entries)


@dataclass
class GatewayResponse:
    """What one admitted (or rejected) request resolved to.

    ``status`` is ``"ok"``, ``"rejected"`` (token bucket; ``result`` is
    ``None``), or ``"error"`` (the fused batch failed; ``reason`` carries
    the repr).  ``deduplicated`` marks responses served from another
    request's future via the idempotency cache; ``latency_s`` is
    admission-to-settlement on the gateway's clock.
    """

    status: str = "ok"
    reason: str = ""
    result: object = None
    deduplicated: bool = False
    latency_s: float = 0.0


@dataclass
class _Counters:
    requests: float = 0.0
    accepted: float = 0.0
    deduplicated: float = 0.0
    rate_limited: float = 0.0
    errors: float = 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "gateway_requests": self.requests,
            "gateway_accepted": self.accepted,
            "gateway_deduplicated": self.deduplicated,
            "gateway_rate_limited": self.rate_limited,
            "gateway_errors": self.errors,
        }


@dataclass
class _Inflight:
    """Cache entry: the shared future plus its admission timestamp."""

    future: asyncio.Future
    t_admit: float = 0.0
    extra: dict = field(default_factory=dict)


class IngestGateway:
    """Async admission tier over one :class:`~repro.serve.fabric.ServingFabric`.

    Parameters
    ----------
    fabric:
        The (open) fabric requests are admitted into.  The gateway does
        not own it — closing the gateway leaves the fabric up.
    rate_rps, burst:
        Token-bucket knobs; ``rate_rps=None`` disables rate limiting.
        ``burst`` defaults to ``max(1, ceil(rate_rps))``.
    idempotency_ttl_s:
        TTL of the idempotency-key cache (seconds on the gateway clock).
    flush_ms:
        How long a *partial* micro-batch may queue before the gateway
        flushes it from a worker thread.  Full batches flush themselves
        (``FabricConfig.max_batch``); this bounds tail latency under
        light load.
    clock:
        Injectable time source for the bucket, the TTL cache, and
        latency accounting (``None`` = wall clock).  The flush delay
        itself runs on the event loop's clock.

    All coroutine methods must be called from a single running event
    loop (the loop is captured on first use).
    """

    def __init__(
        self,
        fabric,
        rate_rps: Optional[float] = None,
        burst: Optional[int] = None,
        idempotency_ttl_s: float = 60.0,
        flush_ms: float = 5.0,
        clock: Optional[Clock] = None,
    ) -> None:
        if flush_ms <= 0:
            raise ValueError("flush_ms must be positive")
        self.fabric = fabric
        self._clock = ensure_clock(clock)
        self.bucket = (
            None
            if rate_rps is None
            else TokenBucket(
                rate_rps,
                burst if burst is not None else max(1, int(np.ceil(rate_rps))),
                clock=self._clock,
            )
        )
        self.cache = IdempotencyCache(idempotency_ttl_s, clock=self._clock)
        self.flush_ms = float(flush_ms)
        self.counters = _Counters()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._flush_handle = None

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    async def submit(
        self,
        stream: np.ndarray,
        k_slots: int,
        bank=None,
        op: str = "identify",
        idempotency_key: Optional[str] = None,
    ) -> GatewayResponse:
        """Admit one stream and await its fused result.

        Order of checks — dedup *before* the bucket, so retries of an
        in-flight request are free; bucket *before* the fabric, so
        over-limit requests never enter the queue:

        1. ``idempotency_key`` hit within TTL → await the original
           request's shared future (``deduplicated=True``).
        2. Token bucket (when configured) → ``status="rejected"``.
        3. ``fabric.submit`` → ticket; the response future settles when
           the micro-batch the ticket was fused into flushes.

        A failed batch resolves every rider of the key to
        ``status="error"`` with the failure's repr — errors are
        idempotent too, by design: the retry that would recompute is the
        retry that would re-fail.
        """
        loop = asyncio.get_running_loop()
        if self._loop is None:
            self._loop = loop
        self.counters.requests += 1
        t0 = self._clock.monotonic()

        if idempotency_key is not None:
            hit = self.cache.get(idempotency_key)
            if hit is not None:
                self.counters.deduplicated += 1
                resp = await asyncio.shield(hit.future)
                return GatewayResponse(
                    status=resp.status,
                    reason=resp.reason,
                    result=resp.result,
                    deduplicated=True,
                    latency_s=self._clock.monotonic() - t0,
                )

        if self.bucket is not None and not self.bucket.allow():
            self.counters.rate_limited += 1
            return GatewayResponse(
                status="rejected",
                reason="rate limit exceeded",
                latency_s=self._clock.monotonic() - t0,
            )

        fut: asyncio.Future = loop.create_future()
        entry = _Inflight(future=fut, t_admit=t0)
        if idempotency_key is not None:
            self.cache.put(idempotency_key, entry)

        def _settle(ticket) -> None:
            # Runs on whichever thread flushed the batch; hop back into
            # the loop.  The ticket is settled, so result() is immediate.
            def _apply() -> None:
                if fut.done():
                    return
                try:
                    value = ticket.result(timeout=0)
                except BaseException as exc:  # noqa: BLE001 - routed to resp
                    self.counters.errors += 1
                    fut.set_result(
                        GatewayResponse(
                            status="error",
                            reason=repr(exc),
                            latency_s=self._clock.monotonic() - entry.t_admit,
                        )
                    )
                    return
                fut.set_result(
                    GatewayResponse(
                        status="ok",
                        result=value,
                        latency_s=self._clock.monotonic() - entry.t_admit,
                    )
                )

            loop.call_soon_threadsafe(_apply)

        try:
            ticket = self.fabric.submit(stream, k_slots, bank=bank, op=op)
        except Exception as exc:  # noqa: BLE001 - admission-time rejection
            self.counters.errors += 1
            resp = GatewayResponse(
                status="error",
                reason=repr(exc),
                latency_s=self._clock.monotonic() - t0,
            )
            if not fut.done():
                fut.set_result(resp)  # riders of the key see it too
            return resp
        self.counters.accepted += 1
        ticket.on_done(_settle)
        if not ticket.done:
            self._arm_flush(loop)
        return await asyncio.shield(fut)

    def _arm_flush(self, loop: asyncio.AbstractEventLoop) -> None:
        """Flush partial batches after ``flush_ms``, off the event loop.

        One timer at a time: every admission while a flush is armed rides
        the same deadline (the batch they joined flushes together), and
        the fabric's own ``max_batch`` auto-flush covers the full-batch
        case without any timer.
        """
        if self._flush_handle is not None:
            return

        def _fire() -> None:
            self._flush_handle = None
            loop.run_in_executor(None, self._flush_once)

        self._flush_handle = loop.call_later(self.flush_ms / 1e3, _fire)

    def _flush_once(self) -> None:
        try:
            self.fabric.flush()
        except Exception:  # noqa: BLE001 - flush errors ride the tickets
            pass

    async def drain(self) -> None:
        """Flush any queued partial batch now (worker thread) and return."""
        loop = asyncio.get_running_loop()
        if self._flush_handle is not None:
            self._flush_handle.cancel()
            self._flush_handle = None
        await loop.run_in_executor(None, self._flush_once)

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def metrics(self) -> Dict[str, float]:
        """Gateway counters + live fabric counters, one flat dict."""
        out = self.counters.as_dict()
        out["gateway_idempotency_keys"] = float(len(self.cache))
        out.update(self.fabric.report())
        return out

    def metrics_text(self) -> str:
        """:meth:`metrics` in Prometheus text exposition format."""
        return to_prometheus(self.metrics())

    async def serve_metrics(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> Tuple[asyncio.AbstractServer, str, int]:
        """Expose ``GET /metrics`` on a minimal HTTP endpoint.

        Plain asyncio, no web framework: one request per connection,
        ``text/plain; version=0.0.4`` body from :meth:`metrics_text`,
        404 on any other path.  Returns ``(server, host, port)``; callers
        own the server (``server.close()``).
        """

        async def _handle(reader, writer) -> None:
            try:
                request = await reader.readline()
                while True:  # drain headers
                    line = await reader.readline()
                    if line in (b"\r\n", b"\n", b""):
                        break
                parts = request.decode("latin-1").split()
                path = parts[1] if len(parts) > 1 else ""
                if path.split("?")[0] == "/metrics":
                    body = self.metrics_text().encode("utf-8")
                    head = (
                        "HTTP/1.1 200 OK\r\n"
                        "Content-Type: text/plain; version=0.0.4; "
                        "charset=utf-8\r\n"
                        f"Content-Length: {len(body)}\r\n"
                        "Connection: close\r\n\r\n"
                    )
                else:
                    body = b"not found\n"
                    head = (
                        "HTTP/1.1 404 Not Found\r\n"
                        "Content-Type: text/plain\r\n"
                        f"Content-Length: {len(body)}\r\n"
                        "Connection: close\r\n\r\n"
                    )
                writer.write(head.encode("latin-1") + body)
                await writer.drain()
            finally:
                writer.close()

        server = await asyncio.start_server(_handle, host, port)
        bound = server.sockets[0].getsockname()
        return server, bound[0], bound[1]
