"""Async ingest gateway: network-facing admission over the fabric queue.

The fabric (:mod:`repro.serve.fabric`) already fuses concurrent streams
into micro-batches behind :class:`~repro.serve.fabric.FabricTicket`; what
a deployment facing "millions of users" still needs is an *admission
tier* in front of it — the paper's real-time claim holds only if
concurrency control, not math, sets the ceiling.  This module is that
tier, with no dependencies beyond the standard library:

**Idempotency.**
    Tsunami-warning clients retry aggressively (lossy links, impatient
    upstreams).  A request carrying an ``idempotency_key`` the gateway
    has seen within the TTL window joins the *original* request's future
    instead of being recomputed or re-admitted — duplicates cost one
    dictionary lookup, converge to the same result (or the same error),
    and are counted in ``gateway_deduplicated``.

**Rate limiting.**
    A token bucket (``rate_rps`` sustained, ``burst`` headroom) bounds
    admission; over-limit requests are rejected *before* touching the
    fabric queue with ``status="rejected"`` and counted in
    ``gateway_rate_limited``.  Deduplicated retries never spend a token
    — retrying a request that is already in flight is free.

**Durability.**
    With ``journal_path`` set, every accepted submission is appended to
    an append-only, length-prefixed journal (framed by the shard wire
    codec, :mod:`repro.serve.protocol`) *before* it enters the fabric
    queue, and every settlement is journaled when its future resolves.
    After a gateway crash, :meth:`IngestGateway.recover` replays exactly
    the submissions with no settle record — idempotency keys are
    preserved, settled results are restored into the key cache, and a
    torn/corrupt tail entry is skipped with a loud warning, never a
    fatal error.

**Observability.**
    :meth:`IngestGateway.metrics_text` renders the gateway's own
    counters plus the fabric's
    (:meth:`~repro.serve.fabric.ServingFabric.report`) in Prometheus
    text exposition format
    (:func:`~repro.serve.reporting.to_prometheus`);
    :meth:`IngestGateway.serve_metrics` exposes them on a minimal
    ``/metrics`` HTTP endpoint.

The bridge into asyncio is :meth:`FabricTicket.on_done` →
``loop.call_soon_threadsafe``: admission happens inline on the event
loop (cheap — the fabric only computes when a batch fills), and partial
batches are flushed after ``flush_ms`` from a worker thread so the loop
never blocks on shard computation.  Time is injectable
(:class:`~repro.util.clock.Clock`) so the bucket and the TTL cache are
tested on virtual time, without sleeps.

Load generator: ``python -m benchmarks.bench_gateway`` (tiny profile in
CI publishes ``BENCH_gateway.json`` with sustained req/s and p50/p99
latency).
"""

from __future__ import annotations

import asyncio
import os
import struct
import threading
import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.serve import protocol
from repro.serve.reporting import to_prometheus
from repro.util.clock import Clock, ensure_clock

__all__ = [
    "GatewayJournal",
    "GatewayResponse",
    "IdempotencyCache",
    "IngestGateway",
    "RecoveryReport",
    "TokenBucket",
]


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/s sustained, ``burst`` capacity.

    ``allow()`` spends one token if available.  Refill is computed lazily
    from the injected clock's monotonic axis, so a
    :class:`~repro.util.clock.ManualClock` drives it deterministically in
    tests.  Thread-safe (admission may be probed from loop and executor
    threads alike).
    """

    def __init__(
        self, rate: float, burst: int, clock: Optional[Clock] = None
    ) -> None:
        if rate <= 0 or burst < 1:
            raise ValueError("rate must be > 0 and burst >= 1")
        self.rate = float(rate)
        self.burst = int(burst)
        self._clock = ensure_clock(clock)
        self._tokens = float(burst)
        self._stamp = self._clock.monotonic()
        self._lock = threading.Lock()

    def allow(self) -> bool:
        """Spend one token if the bucket holds one; never blocks."""
        with self._lock:
            now = self._clock.monotonic()
            self._tokens = min(
                self.burst, self._tokens + (now - self._stamp) * self.rate
            )
            self._stamp = now
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return True
            return False


class IdempotencyCache:
    """TTL map of idempotency key → in-flight/settled request future.

    Entries expire ``ttl_s`` after *insertion* (not last access — a
    retry storm must not pin its key forever), on the injected clock's
    monotonic axis.  Expired entries are purged opportunistically on
    every access, so the cache never grows beyond the keys of one TTL
    window.
    """

    def __init__(self, ttl_s: float, clock: Optional[Clock] = None) -> None:
        if ttl_s <= 0:
            raise ValueError("ttl_s must be positive")
        self.ttl_s = float(ttl_s)
        self._clock = ensure_clock(clock)
        self._entries: Dict[str, Tuple[float, object]] = {}

    def _purge(self) -> None:
        now = self._clock.monotonic()
        dead = [k for k, (exp, _) in self._entries.items() if exp <= now]
        for k in dead:
            del self._entries[k]

    def get(self, key: str):
        """The live entry for ``key``, or ``None`` past its TTL."""
        self._purge()
        hit = self._entries.get(key)
        return None if hit is None else hit[1]

    def put(self, key: str, value) -> None:
        self._purge()
        self._entries[key] = (self._clock.monotonic() + self.ttl_s, value)

    def __len__(self) -> int:
        self._purge()
        return len(self._entries)


@dataclass
class GatewayResponse:
    """What one admitted (or rejected) request resolved to.

    ``status`` is ``"ok"``, ``"rejected"`` (token bucket; ``result`` is
    ``None``), or ``"error"`` (the fused batch failed; ``reason`` carries
    the repr).  ``deduplicated`` marks responses served from another
    request's future via the idempotency cache; ``latency_s`` is
    admission-to-settlement on the gateway's clock.
    """

    status: str = "ok"
    reason: str = ""
    result: object = None
    deduplicated: bool = False
    latency_s: float = 0.0


class GatewayJournal:
    """Append-only, length-prefixed journal of gateway admissions.

    Each record is one :mod:`repro.serve.protocol` frame
    (:class:`~repro.serve.protocol.JournalSubmit` with the observation
    stream in the data plane, or
    :class:`~repro.serve.protocol.JournalSettle`) behind a ``u32``
    big-endian length prefix — the same outer framing the TCP transport
    uses on sockets.  Appends are flushed and ``fsync``-ed before
    returning, so an entry that was acknowledged survives a crash;
    thread-safe because settlements may append from loop callbacks while
    admissions append inline.

    Two mechanisms bound the journal's footprint on a long-running
    gateway:

    **Rotation** (``rotate_bytes=``).  When the active segment crosses
    the threshold after an append, it is renamed to ``<path>.<n>``
    (``n`` strictly increasing, so ``<path>.1`` is the *oldest*) and a
    fresh active segment opens at ``path``.  :meth:`read` — and
    therefore :meth:`IngestGateway.recover` — scans every rotated
    segment in age order, then the active one, so rotation never changes
    recovery semantics.  A single record larger than ``rotate_bytes``
    still lands (the check runs post-append), so oversized streams
    degrade to one-record segments rather than failing.

    **Compaction** (:meth:`compact`).  Settled submit/settle pairs are
    dead weight for recovery; ``compact()`` rewrites the journal keeping
    only the *unsettled* submissions (plus small settle tombstones, see
    below), atomically renaming the compacted file over the active
    segment **before** unlinking the rotated ones.  A crash inside that
    window can only resurface old segments whose settled submissions are
    still covered by the tombstones carried into the compacted file —
    recovery never replays a request whose result a client could have
    observed.  Tombstones self-clean: the next ``compact()`` drops any
    settle whose submit no longer exists.
    """

    def __init__(self, path, rotate_bytes: Optional[int] = None) -> None:
        if rotate_bytes is not None and int(rotate_bytes) < 1:
            raise ValueError("rotate_bytes must be >= 1 (or None)")
        self.path = str(path)
        self.rotate_bytes = None if rotate_bytes is None else int(rotate_bytes)
        self._fh = open(self.path, "ab")
        self._lock = threading.Lock()
        suffixes = self._rotated_suffixes(self.path)
        self._rot_seq = (suffixes[-1] + 1) if suffixes else 1

    @staticmethod
    def _rotated_suffixes(path) -> List[int]:
        """Numeric suffixes of existing rotated segments, ascending."""
        path = str(path)
        base = os.path.basename(path)
        d = os.path.dirname(path) or "."
        out = []
        try:
            names = os.listdir(d)
        except FileNotFoundError:
            return out
        for name in names:
            if name.startswith(base + "."):
                tail = name[len(base) + 1 :]
                if tail.isdigit():
                    out.append(int(tail))
        return sorted(out)

    @classmethod
    def segments(cls, path) -> List[str]:
        """Existing journal files in read order: rotated (oldest first), active."""
        path = str(path)
        out = [f"{path}.{n}" for n in cls._rotated_suffixes(path)]
        if os.path.exists(path):
            out.append(path)
        return out

    def append(self, msg: protocol.Message) -> None:
        """Frame, length-prefix, append, flush, fsync one record."""
        frame = protocol.encode_message(msg)
        with self._lock:
            if self._fh.closed:
                return
            self._fh.write(struct.pack(">I", len(frame)) + frame)
            self._fh.flush()
            os.fsync(self._fh.fileno())
            if (
                self.rotate_bytes is not None
                and self._fh.tell() >= self.rotate_bytes
            ):
                self._rotate_locked()

    def _rotate_locked(self) -> None:
        """Seal the active segment as ``<path>.<n>`` and open a fresh one."""
        self._fh.close()
        os.replace(self.path, f"{self.path}.{self._rot_seq}")
        self._rot_seq += 1
        self._fh = open(self.path, "ab")

    def compact(self) -> Dict[str, int]:
        """Drop settled entries; collapse every segment into one.

        Keeps the unsettled submissions (recovery's replay set) in
        original sequence order, plus a settle *tombstone* for every
        settled pair seen — the tombstones are what make the unlink
        window crash-safe (class docstring).  Returns counters:
        ``kept`` unsettled submissions written, ``tombstones`` settle
        records carried, ``dropped`` records discarded, and
        ``segments_removed`` rotated files unlinked.
        """
        with self._lock:
            if self._fh.closed:
                raise ValueError("cannot compact a closed journal")
            entries, _ = self.read(self.path)
            submits = {
                e.seq: e
                for e in entries
                if isinstance(e, protocol.JournalSubmit)
            }
            settles = {
                e.seq: e
                for e in entries
                if isinstance(e, protocol.JournalSettle)
            }
            pending = [submits[s] for s in sorted(submits) if s not in settles]
            tombs = [settles[s] for s in sorted(settles) if s in submits]
            tmp = self.path + ".compacting"
            with open(tmp, "wb") as out:
                for msg in pending + tombs:
                    frame = protocol.encode_message(msg)
                    out.write(struct.pack(">I", len(frame)) + frame)
                out.flush()
                os.fsync(out.fileno())
            rotated = self.segments(self.path)[:-1]
            self._fh.close()
            os.replace(tmp, self.path)
            for seg in rotated:
                os.unlink(seg)
            self._rot_seq = 1
            self._fh = open(self.path, "ab")
            return {
                "kept": len(pending),
                "tombstones": len(tombs),
                "dropped": len(entries) - len(pending) - len(tombs),
                "segments_removed": len(rotated),
            }

    def close(self) -> None:
        with self._lock:
            if not self._fh.closed:
                self._fh.close()

    @classmethod
    def read(cls, path) -> Tuple[List[protocol.Message], int]:
        """Decode every record in the journal at ``path``.

        Scans every rotated segment (oldest first), then the active
        file, and returns ``(messages, n_skipped)`` across all of them.
        A record that cannot be decoded (torn tail from a mid-append
        crash, flipped bytes) is *skipped loudly* — a
        :class:`RuntimeWarning` naming the byte offset — never fatal:
        recovery of the readable prefix must not be hostage to the one
        entry the crash corrupted.  A truncated length prefix or frame
        ends that segment's scan (nothing after it can be framed); a
        corrupt-but-complete frame is skipped and the scan continues.
        """
        entries: List[protocol.Message] = []
        skipped = 0
        segs = cls.segments(path) or [str(path)]
        for seg in segs:
            e, s = cls._read_segment(seg)
            entries.extend(e)
            skipped += s
        return entries, skipped

    @staticmethod
    def _read_segment(path) -> Tuple[List[protocol.Message], int]:
        entries: List[protocol.Message] = []
        skipped = 0
        try:
            with open(str(path), "rb") as fh:
                data = fh.read()
        except FileNotFoundError:
            return entries, skipped
        off = 0
        while off < len(data):
            if off + 4 > len(data):
                warnings.warn(
                    f"journal {path}: truncated length prefix at byte "
                    f"{off}; dropping the torn tail",
                    RuntimeWarning,
                    stacklevel=2,
                )
                skipped += 1
                break
            (n,) = struct.unpack(">I", data[off : off + 4])
            if off + 4 + n > len(data):
                warnings.warn(
                    f"journal {path}: truncated entry at byte {off} "
                    f"(claims {n} bytes, {len(data) - off - 4} present); "
                    f"dropping the torn tail",
                    RuntimeWarning,
                    stacklevel=2,
                )
                skipped += 1
                break
            frame = bytes(data[off + 4 : off + 4 + n])
            off += 4 + n
            try:
                msg, _ = protocol.decode_message(frame)
            except protocol.ProtocolError as exc:
                warnings.warn(
                    f"journal {path}: skipping corrupt entry ending at "
                    f"byte {off}: {exc}",
                    RuntimeWarning,
                    stacklevel=2,
                )
                skipped += 1
                continue
            entries.append(msg)
        return entries, skipped


@dataclass
class RecoveryReport:
    """What :meth:`IngestGateway.recover` found and did.

    ``entries``/``skipped`` count journal records read and dropped;
    ``settled`` the submissions with a matching settle record,
    ``restored_keys`` how many of those re-seeded the idempotency cache,
    ``replayed`` the unsettled submissions resubmitted to the fabric,
    and ``responses`` their settlements in original admission order.
    """

    entries: int = 0
    skipped: int = 0
    settled: int = 0
    restored_keys: int = 0
    replayed: int = 0
    responses: List["GatewayResponse"] = field(default_factory=list)


@dataclass
class _Counters:
    requests: float = 0.0
    accepted: float = 0.0
    deduplicated: float = 0.0
    rate_limited: float = 0.0
    errors: float = 0.0
    replayed: float = 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "gateway_requests": self.requests,
            "gateway_accepted": self.accepted,
            "gateway_deduplicated": self.deduplicated,
            "gateway_rate_limited": self.rate_limited,
            "gateway_errors": self.errors,
            "gateway_replayed": self.replayed,
        }


@dataclass
class _Inflight:
    """Cache entry: the shared future plus its admission timestamp."""

    future: asyncio.Future
    t_admit: float = 0.0
    extra: dict = field(default_factory=dict)


class IngestGateway:
    """Async admission tier over one :class:`~repro.serve.fabric.ServingFabric`.

    Parameters
    ----------
    fabric:
        The (open) fabric requests are admitted into.  The gateway does
        not own it — closing the gateway leaves the fabric up.
    rate_rps, burst:
        Token-bucket knobs; ``rate_rps=None`` disables rate limiting.
        ``burst`` defaults to ``max(1, ceil(rate_rps))``.
    idempotency_ttl_s:
        TTL of the idempotency-key cache (seconds on the gateway clock).
    flush_ms:
        How long a *partial* micro-batch may queue before the gateway
        flushes it from a worker thread.  Full batches flush themselves
        (``FabricConfig.max_batch``); this bounds tail latency under
        light load.
    clock:
        Injectable time source for the bucket, the TTL cache, and
        latency accounting (``None`` = wall clock).  The flush delay
        itself runs on the event loop's clock.
    journal_path:
        When set, open (append) a :class:`GatewayJournal` at this path:
        accepted submissions are journaled *before* entering the fabric
        queue and settlements when their future resolves, enabling
        :meth:`recover` after a crash.  Journaled requests must pass
        banks by *key* (string) so a replay can re-resolve them.
    journal_rotate_bytes:
        Size threshold (bytes) at which the journal's active segment is
        sealed and rotated; ``None`` (default) keeps one unbounded file.
        Call ``gateway.journal.compact()`` periodically to drop settled
        entries and collapse rotated segments.

    All coroutine methods must be called from a single running event
    loop (the loop is captured on first use).
    """

    def __init__(
        self,
        fabric,
        rate_rps: Optional[float] = None,
        burst: Optional[int] = None,
        idempotency_ttl_s: float = 60.0,
        flush_ms: float = 5.0,
        clock: Optional[Clock] = None,
        journal_path=None,
        journal_rotate_bytes: Optional[int] = None,
    ) -> None:
        if flush_ms <= 0:
            raise ValueError("flush_ms must be positive")
        self.fabric = fabric
        self._clock = ensure_clock(clock)
        self.journal = (
            None
            if journal_path is None
            else GatewayJournal(journal_path, rotate_bytes=journal_rotate_bytes)
        )
        self._seq = 0  # next journal sequence number
        self.bucket = (
            None
            if rate_rps is None
            else TokenBucket(
                rate_rps,
                burst if burst is not None else max(1, int(np.ceil(rate_rps))),
                clock=self._clock,
            )
        )
        self.cache = IdempotencyCache(idempotency_ttl_s, clock=self._clock)
        self.flush_ms = float(flush_ms)
        self.counters = _Counters()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._flush_handle = None

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    async def submit(
        self,
        stream: np.ndarray,
        k_slots: int,
        bank=None,
        op: str = "identify",
        idempotency_key: Optional[str] = None,
    ) -> GatewayResponse:
        """Admit one stream and await its fused result.

        Order of checks — dedup *before* the bucket, so retries of an
        in-flight request are free; bucket *before* the fabric, so
        over-limit requests never enter the queue:

        1. ``idempotency_key`` hit within TTL → await the original
           request's shared future (``deduplicated=True``).
        2. Token bucket (when configured) → ``status="rejected"``.
        3. ``fabric.submit`` → ticket; the response future settles when
           the micro-batch the ticket was fused into flushes.

        A failed batch resolves every rider of the key to
        ``status="error"`` with the failure's repr — errors are
        idempotent too, by design: the retry that would recompute is the
        retry that would re-fail.

        With a journal open, the submission is journaled (and fsynced)
        between the bucket and ``fabric.submit`` — a crash in that
        window replays the request; a crash after the settle record
        never does.
        """
        loop = asyncio.get_running_loop()
        if self._loop is None:
            self._loop = loop
        self.counters.requests += 1
        t0 = self._clock.monotonic()

        if idempotency_key is not None:
            hit = self.cache.get(idempotency_key)
            if hit is not None:
                self.counters.deduplicated += 1
                if isinstance(hit, GatewayResponse):
                    # A settled result restored from the journal by
                    # recover(): serve it directly, nothing in flight.
                    return GatewayResponse(
                        status=hit.status,
                        reason=hit.reason,
                        result=hit.result,
                        deduplicated=True,
                        latency_s=self._clock.monotonic() - t0,
                    )
                resp = await asyncio.shield(hit.future)
                return GatewayResponse(
                    status=resp.status,
                    reason=resp.reason,
                    result=resp.result,
                    deduplicated=True,
                    latency_s=self._clock.monotonic() - t0,
                )

        if self.bucket is not None and not self.bucket.allow():
            self.counters.rate_limited += 1
            return GatewayResponse(
                status="rejected",
                reason="rate limit exceeded",
                latency_s=self._clock.monotonic() - t0,
            )

        seq: Optional[int] = None
        if self.journal is not None:
            if bank is not None and not isinstance(bank, str):
                raise ValueError(
                    "journaled submissions must pass banks by key "
                    "(string) so a crash replay can re-resolve them"
                )
            seq = self._seq
            self._seq += 1
            self.journal.append(
                protocol.JournalSubmit(
                    seq=seq,
                    idem_key=idempotency_key or "",
                    k_slots=int(k_slots),
                    bank=bank or "",
                    op=op,
                    stream=np.ascontiguousarray(stream, dtype=np.float64),
                )
            )

        fut: asyncio.Future = loop.create_future()
        entry = _Inflight(future=fut, t_admit=t0)
        if idempotency_key is not None:
            self.cache.put(idempotency_key, entry)

        return await self._admit(
            loop, fut, entry, seq, stream, k_slots, bank, op
        )

    async def _admit(
        self, loop, fut, entry, seq, stream, k_slots, bank, op
    ) -> GatewayResponse:
        """Enter the fabric queue and await the settled response.

        Shared tail of :meth:`submit` and a :meth:`recover` replay: the
        journal record (if any) already exists under ``seq``; whatever
        settles here is journaled as that sequence number's settle.
        """

        def _settle(ticket) -> None:
            # Runs on whichever thread flushed the batch; hop back into
            # the loop.  The ticket is settled, so result() is immediate.
            def _apply() -> None:
                if fut.done():
                    return
                try:
                    value = ticket.result(timeout=0)
                except BaseException as exc:  # noqa: BLE001 - routed to resp
                    self.counters.errors += 1
                    resp = GatewayResponse(
                        status="error",
                        reason=repr(exc),
                        latency_s=self._clock.monotonic() - entry.t_admit,
                    )
                else:
                    resp = GatewayResponse(
                        status="ok",
                        result=value,
                        latency_s=self._clock.monotonic() - entry.t_admit,
                    )
                # Journal the settle *before* releasing the response:
                # once a client can observe the result, a crash must not
                # replay the computation.
                self._journal_settle(seq, resp)
                fut.set_result(resp)

            loop.call_soon_threadsafe(_apply)

        try:
            ticket = self.fabric.submit(stream, k_slots, bank=bank, op=op)
        except Exception as exc:  # noqa: BLE001 - admission-time rejection
            self.counters.errors += 1
            resp = GatewayResponse(
                status="error",
                reason=repr(exc),
                latency_s=self._clock.monotonic() - entry.t_admit,
            )
            self._journal_settle(seq, resp)
            if not fut.done():
                fut.set_result(resp)  # riders of the key see it too
            return resp
        self.counters.accepted += 1
        ticket.on_done(_settle)
        if not ticket.done:
            self._arm_flush(loop)
        return await asyncio.shield(fut)

    def _journal_settle(self, seq: Optional[int], resp: GatewayResponse) -> None:
        if self.journal is None or seq is None:
            return
        self.journal.append(
            protocol.JournalSettle(
                seq=seq, status=resp.status, reason=resp.reason
            )
        )

    # ------------------------------------------------------------------
    # Crash recovery
    # ------------------------------------------------------------------
    async def recover(self, path=None) -> RecoveryReport:
        """Replay the journal at ``path`` (default: this gateway's own).

        Reads every decodable record (a torn tail is skipped loudly by
        :meth:`GatewayJournal.read`), then:

        1. Submissions **with** a settle record are done — their results
           were (or could have been) observed.  Ones carrying an
           idempotency key re-seed the cache with the settled
           status/reason, so post-restart retries of a delivered request
           dedup instead of recomputing.
        2. Submissions **without** a settle record are resubmitted to
           the fabric in original admission order — exactly once each,
           idempotency keys preserved (a concurrent retry joins the
           replay's future).  Each replay's settle is journaled under
           the *original* sequence number, so a crash mid-replay leaves
           already-replayed entries settled and a second ``recover``
           picks up exactly where the first died.

        New sequence numbers continue above everything read, keeping the
        (possibly shared) journal file append-consistent.  Returns a
        :class:`RecoveryReport`.
        """
        src = path
        if src is None:
            if self.journal is None:
                raise ValueError(
                    "recover() needs a path when no journal is open"
                )
            src = self.journal.path
        loop = asyncio.get_running_loop()
        if self._loop is None:
            self._loop = loop
        entries, skipped = GatewayJournal.read(src)
        submits: Dict[int, protocol.JournalSubmit] = {}
        settles: Dict[int, protocol.JournalSettle] = {}
        for e in entries:
            if isinstance(e, protocol.JournalSubmit):
                submits[e.seq] = e
            elif isinstance(e, protocol.JournalSettle):
                settles[e.seq] = e
        top = max(max(submits, default=-1), max(settles, default=-1))
        self._seq = max(self._seq, top + 1)

        restored = 0
        for seq, s in settles.items():
            sub = submits.get(seq)
            if sub is not None and sub.idem_key:
                self.cache.put(
                    sub.idem_key,
                    GatewayResponse(status=s.status, reason=s.reason),
                )
                restored += 1

        responses: List[GatewayResponse] = []
        pending = [s for s in sorted(submits) if s not in settles]
        for seq in pending:
            sub = submits[seq]
            t0 = self._clock.monotonic()
            fut: asyncio.Future = loop.create_future()
            entry = _Inflight(future=fut, t_admit=t0)
            if sub.idem_key:
                self.cache.put(sub.idem_key, entry)
            self.counters.replayed += 1
            responses.append(
                await self._admit(
                    loop,
                    fut,
                    entry,
                    seq,
                    np.asarray(sub.stream),
                    int(sub.k_slots),
                    sub.bank or None,
                    sub.op,
                )
            )
        return RecoveryReport(
            entries=len(entries),
            skipped=skipped,
            settled=len(settles),
            restored_keys=restored,
            replayed=len(pending),
            responses=responses,
        )

    def close(self) -> None:
        """Close the journal (if any); the fabric stays up (not owned)."""
        if self.journal is not None:
            self.journal.close()

    def _arm_flush(self, loop: asyncio.AbstractEventLoop) -> None:
        """Flush partial batches after ``flush_ms``, off the event loop.

        One timer at a time: every admission while a flush is armed rides
        the same deadline (the batch they joined flushes together), and
        the fabric's own ``max_batch`` auto-flush covers the full-batch
        case without any timer.
        """
        if self._flush_handle is not None:
            return

        def _fire() -> None:
            self._flush_handle = None
            loop.run_in_executor(None, self._flush_once)

        self._flush_handle = loop.call_later(self.flush_ms / 1e3, _fire)

    def _flush_once(self) -> None:
        try:
            self.fabric.flush()
        except Exception:  # noqa: BLE001 - flush errors ride the tickets
            pass

    async def drain(self) -> None:
        """Flush any queued partial batch now (worker thread) and return."""
        loop = asyncio.get_running_loop()
        if self._flush_handle is not None:
            self._flush_handle.cancel()
            self._flush_handle = None
        await loop.run_in_executor(None, self._flush_once)

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def metrics(self) -> Dict[str, float]:
        """Gateway counters + live fabric counters, one flat dict."""
        out = self.counters.as_dict()
        out["gateway_idempotency_keys"] = float(len(self.cache))
        out.update(self.fabric.report())
        return out

    def metrics_text(self) -> str:
        """:meth:`metrics` in Prometheus text exposition format."""
        return to_prometheus(self.metrics())

    async def serve_metrics(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> Tuple[asyncio.AbstractServer, str, int]:
        """Expose ``GET /metrics`` on a minimal HTTP endpoint.

        Plain asyncio, no web framework: one request per connection,
        ``text/plain; version=0.0.4`` body from :meth:`metrics_text`,
        404 on any other path.  Returns ``(server, host, port)``; callers
        own the server (``server.close()``).
        """

        async def _handle(reader, writer) -> None:
            try:
                request = await reader.readline()
                while True:  # drain headers
                    line = await reader.readline()
                    if line in (b"\r\n", b"\n", b""):
                        break
                parts = request.decode("latin-1").split()
                path = parts[1] if len(parts) > 1 else ""
                if path.split("?")[0] == "/metrics":
                    body = self.metrics_text().encode("utf-8")
                    head = (
                        "HTTP/1.1 200 OK\r\n"
                        "Content-Type: text/plain; version=0.0.4; "
                        "charset=utf-8\r\n"
                        f"Content-Length: {len(body)}\r\n"
                        "Connection: close\r\n\r\n"
                    )
                else:
                    body = b"not found\n"
                    head = (
                        "HTTP/1.1 404 Not Found\r\n"
                        "Content-Type: text/plain\r\n"
                        f"Content-Length: {len(body)}\r\n"
                        "Connection: close\r\n\r\n"
                    )
                writer.write(head.encode("latin-1") + body)
                await writer.drain()
            finally:
                writer.close()

        server = await asyncio.start_server(_handle, host, port)
        bound = server.sockets[0].getsockname()
        return server, bound[0], bound[1]
