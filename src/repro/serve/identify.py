"""Streaming scenario identification: incremental model evidence over a bank.

An operational warning center asks two questions of every incoming stream:
*how big is the wave* (the forecasting path, Phases 3-4) and *which rupture
is this* (sequential Bayesian model selection over a database of diverse
tsunami scenarios, Nomura et al. 2024).  Under the paper's exact-Gaussian
machinery the second question is closed-form: if scenario ``s`` has clean
record ``mu_s`` and the event-to-event variability is the prior predictive,
then ``d | s ~ N(mu_s, K)`` with the *same* data-space Hessian ``K`` Phases
2-3 already factorized, and the truncated-data marginal log-likelihood at
horizon ``k`` is

.. math::

    \\log p(d_k \\mid s) = -\\tfrac12 \\bigl( \\lVert L_k^{-1} (d_k -
    \\mu_{s,k}) \\rVert^2 + 2 \\sum_{i < k N_d} \\log L_{ii}
    + k N_d \\log 2\\pi \\bigr).

Every term nests across horizons exactly like the streaming posterior
states: ``L_k^{-1}`` is linear, so ``L_k^{-1}(d_k - mu_{s,k}) = w_k(d) -
w_k(mu_s)`` where ``w = L^{-1} d`` is precisely the per-stream state a
:class:`~repro.inference.streaming.StreamingFleet` already maintains.  The
identifier therefore keeps

* a **bank-side fleet** ``w(mu_s)`` over the bank's clean records, advanced
  to the full horizon once per bank (block solves only, never a system
  larger than ``Nd x Nd``), with cumulative per-horizon squared norms;
* per-(stream, scenario) **cross terms** ``w_k(d)^T w_k(mu_s)``,
  accumulated one observation slot at a time — one ``(Nd, n) x (Nd, S)``
  gemm per slot, i.e. ``O(Nd)`` work per slot per (stream, scenario) pair;
* the inversion's cached cumulative ``log diag(L)`` for the determinant
  half, shared by every pair.

From those, streaming posterior scenario probabilities ``p(s | d_k)``
(softmax over evidences with prior weights), top-``k`` rankings, and
bank-conditioned forecast mixtures follow with no additional solves.
Exactness at every horizon against from-scratch
``scipy.stats.multivariate_normal`` log-pdfs on the truncated data is
pinned in ``tests/serve/test_identify.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np
from scipy.special import log_softmax

from repro.inference.forecast import QoIForecast
from repro.inference.streaming import IncrementalStreamingPosterior, StreamingFleet
from repro.serve import sketch as _sketch
from repro.serve.sketch import SlotSketch

__all__ = [
    "IdentificationResult",
    "IdentificationSession",
    "ScenarioIdentifier",
    "normalize_log_prior",
]

_LOG_2PI = float(np.log(2.0 * np.pi))


def normalize_log_prior(weights: Optional[np.ndarray], n: int) -> np.ndarray:
    """Log prior probabilities over ``n`` scenarios.

    ``None`` means uniform; otherwise non-negative weights with a positive
    sum (normalized internally; zeros map to ``-inf``, excluding the
    scenario).  Shared by :class:`ScenarioIdentifier` and the serving
    fabric so priors behave identically across the flat and sharded paths.
    """
    if weights is None:
        return np.full(n, -np.log(n))
    w = np.asarray(weights, dtype=np.float64)
    if w.shape != (n,):
        raise ValueError(f"prior_weights must be ({n},), got {w.shape}")
    if np.any(w < 0) or not np.any(w > 0):
        raise ValueError("prior_weights must be >= 0 with a positive sum")
    with np.errstate(divide="ignore"):
        return np.log(w / w.sum())


@dataclass
class IdentificationResult:
    """Posterior scenario identification for a fleet at its current horizons.

    Attributes
    ----------
    ids:
        Scenario identifiers, one per bank entry (column order).
    horizons:
        Per-stream data horizons ``k_j`` the evidences were evaluated at,
        ``(n,)``.
    log_evidence:
        Truncated-data marginal log-likelihoods ``log p(d_k | s)``,
        ``(n, S)``.
    log_posterior:
        Normalized ``log p(s | d_k)`` including the prior weights,
        ``(n, S)``.
    probabilities:
        ``exp(log_posterior)`` — rows sum to one, ``(n, S)``.
    """

    ids: List[str]
    horizons: np.ndarray
    log_evidence: np.ndarray
    log_posterior: np.ndarray
    probabilities: np.ndarray

    @property
    def n_streams(self) -> int:
        """Number of streams ranked."""
        return int(self.log_evidence.shape[0])

    @property
    def n_scenarios(self) -> int:
        """Number of bank scenarios ranked against."""
        return int(self.log_evidence.shape[1])

    def map_index(self) -> np.ndarray:
        """Most probable scenario index per stream, ``(n,)``."""
        return np.argmax(self.log_posterior, axis=1)

    def map_ids(self) -> List[str]:
        """Most probable scenario identifier per stream."""
        return [self.ids[int(i)] for i in self.map_index()]

    def top_k(self, k: int = 3) -> List[List[Tuple[str, float]]]:
        """Per stream, the ``k`` most probable ``(scenario_id, probability)``."""
        k = min(int(k), self.n_scenarios)
        if k < 1:
            raise ValueError("k must be >= 1")
        order = np.argsort(-self.log_posterior, axis=1)[:, :k]
        return [
            [(self.ids[int(s)], float(self.probabilities[j, s])) for s in order[j]]
            for j in range(self.n_streams)
        ]


class ScenarioIdentifier:
    """Bank-side evidence state: ``w(mu_s)`` fleet over the clean records.

    Parameters
    ----------
    engine:
        The inversion's shared incremental streaming engine.
    clean_records:
        The bank's noise-free sensor records ``(Nt, Nd, S)`` (e.g.
        :meth:`repro.serve.scenarios.ScenarioBank.clean_records`).
    ids:
        Optional scenario identifiers (default ``"s<index>"``).
    prior_weights:
        Optional prior scenario probabilities ``(S,)`` (normalized
        internally; zeros exclude a scenario).  Default uniform.
    qoi_records:
        Optional clean QoI trajectories ``(Nt, Nq, S)`` of the bank
        entries; required for bank-conditioned forecast mixtures.

    Notes
    -----
    Construction advances one bank-side
    :class:`~repro.inference.streaming.StreamingFleet` to the full horizon
    — block solves on the ``Nd x Nd`` diagonal only — and stores the
    states plus their cumulative per-horizon squared norms.  Everything
    per-stream afterwards is gemms against this fixed state.
    """

    def __init__(
        self,
        engine: IncrementalStreamingPosterior,
        clean_records: np.ndarray,
        ids: Optional[Sequence[str]] = None,
        prior_weights: Optional[np.ndarray] = None,
        qoi_records: Optional[np.ndarray] = None,
    ) -> None:
        self.engine = engine
        records = np.asarray(clean_records, dtype=np.float64)
        if records.ndim == 2:
            records = records[:, :, None]
        if records.ndim != 3 or records.shape[:2] != (engine.nt, engine.nd):
            raise ValueError(
                f"clean_records must be ({engine.nt},{engine.nd},S), "
                f"got {records.shape}"
            )
        self.n_scenarios = int(records.shape[2])
        bk = engine.backend
        # w(mu_s) for every scenario, (Nt*Nd, S), read-only.  Built in
        # COL_BLOCK column chunks so a block-aligned shard of the bank
        # (the serving fabric's workers) reproduces these states bitwise.
        # The build runs on the engine's backend; on numpy the device
        # array *is* the host export.
        Wmu_dev = bk.empty((engine.nt * engine.nd, self.n_scenarios))
        for c0 in range(0, self.n_scenarios, _sketch.COL_BLOCK):
            c1 = min(c0 + _sketch.COL_BLOCK, self.n_scenarios)
            block = engine.open_fleet(records[:, :, c0:c1]).advance(engine.nt)
            Wmu_dev[:, c0:c1] = block._W
        self._Wmu_dev = Wmu_dev
        Wmu = bk.to_numpy(Wmu_dev) if bk.is_numpy else bk.to_numpy(Wmu_dev, copy=True)
        Wmu.setflags(write=False)
        self._Wmu = Wmu
        # Per-slot squared norm blocks ||w_slot(mu_s)||^2, (Nt, S) — the
        # bank-side coarse-proxy state (see slot_squared_norms) — and their
        # per-horizon cumulative sums ||w_k(mu_s)||^2, (Nt+1, S).
        blocks = bk.einsum(
            "tds,tds->ts",
            Wmu_dev.reshape(engine.nt, engine.nd, self.n_scenarios),
            Wmu_dev.reshape(engine.nt, engine.nd, self.n_scenarios),
        )
        blocks = bk.to_numpy(blocks) if bk.is_numpy else bk.to_numpy(blocks, copy=True)
        musq = np.zeros((engine.nt + 1, self.n_scenarios))
        np.cumsum(blocks, axis=0, out=musq[1:])
        blocks.setflags(write=False)
        musq.setflags(write=False)
        self._slot_musq = blocks
        self._musq_cum = musq
        if ids is None:
            ids = [f"s{j}" for j in range(self.n_scenarios)]
        if len(ids) != self.n_scenarios:
            raise ValueError(
                f"expected {self.n_scenarios} scenario ids, got {len(ids)}"
            )
        self.ids = list(ids)
        self.log_prior = self._normalize_prior(prior_weights)
        # Bank-side low-rank sketches, memoized per (rank, seed, mode).
        self._sketches: dict = {}
        self._qoi: Optional[np.ndarray] = None
        if qoi_records is not None:
            q = np.asarray(qoi_records, dtype=np.float64)
            if q.ndim != 3 or q.shape[2] != self.n_scenarios:
                raise ValueError(
                    f"qoi_records must be (Nt, Nq, {self.n_scenarios}), got {q.shape}"
                )
            # Flattened time-major (Nt*Nq, S), matching the engine's QoI axis.
            self._qoi = q.reshape(-1, self.n_scenarios).copy()
            if self._qoi.shape[0] != engine._nb:
                raise ValueError(
                    f"qoi_records flatten to {self._qoi.shape[0]} per scenario, "
                    f"engine expects {engine._nb}"
                )

    # ------------------------------------------------------------------
    def _normalize_prior(self, weights: Optional[np.ndarray]) -> np.ndarray:
        """Log prior over this bank's scenarios (see :func:`normalize_log_prior`)."""
        return normalize_log_prior(weights, self.n_scenarios)

    @classmethod
    def from_bank(
        cls,
        engine: IncrementalStreamingPosterior,
        bank,
        prior_weights: Optional[np.ndarray] = None,
    ) -> "ScenarioIdentifier":
        """Build from a :class:`~repro.serve.scenarios.ScenarioBank`.

        Clean sensor records come from the inversion's p2o operator; clean
        QoI trajectories (for forecast mixtures) from the p2q operator when
        one was provided.
        """
        inv = engine.inv
        qoi = bank.clean_records(inv.Fq) if inv.Fq is not None else None
        return cls(
            engine,
            bank.clean_records(inv.F),
            ids=bank.ids(),
            prior_weights=prior_weights,
            qoi_records=qoi,
        )

    # ------------------------------------------------------------------
    def open(
        self,
        streams: Union[np.ndarray, StreamingFleet],
        prior_weights: Optional[np.ndarray] = None,
    ) -> "IdentificationSession":
        """Attach observation streams (or an existing fleet) for ranking.

        Passing a live :class:`~repro.inference.streaming.StreamingFleet`
        adopts it mid-flight: slots the fleet has already absorbed are
        folded into the cross terms in one catch-up pass.
        ``prior_weights`` overrides the identifier's default prior for
        this session only — priors enter at posterior-read time, so the
        bank-side state is shared across sessions regardless of priors.
        """
        if isinstance(streams, StreamingFleet):
            if streams.engine is not self.engine:
                raise ValueError("fleet belongs to a different streaming engine")
            fleet = streams
        else:
            fleet = self.engine.open_fleet(streams)
        return IdentificationSession(self, fleet, prior_weights=prior_weights)

    @property
    def states(self) -> np.ndarray:
        """The bank-side forward-substituted states ``w(mu_s)``, read-only.

        Shape ``(Nt * Nd, S)``, column ``s`` holding ``L^{-1} mu_s`` at the
        full horizon.  The serving fabric shards columns of exactly this
        array across workers.
        """
        return self._Wmu

    def slot_squared_norms(self) -> np.ndarray:
        """Per-slot norm blocks ``||w_slot(mu_s)||^2``, ``(Nt, S)``, read-only.

        The bank-side coarse-proxy state: combined with a fleet's
        :meth:`~repro.inference.streaming.StreamingFleet.slot_squared_norms`
        it yields certified evidence bounds over any subset of observation
        slots (the hierarchical screen of :mod:`repro.serve.fabric`).
        """
        return self._slot_musq

    def cumulative_squared_norms(self) -> np.ndarray:
        """Cumulative per-horizon ``||w_k(mu_s)||^2``, ``(Nt + 1, S)``, read-only."""
        return self._musq_cum

    def sketch(
        self, rank: int, seed: int = 0, mode: str = "gaussian"
    ) -> Tuple[SlotSketch, np.ndarray, np.ndarray]:
        """The bank-side low-rank sketch at ``(rank, seed, mode)``, built once.

        Returns ``(sketch, projected, slot_norms)``: the
        :class:`~repro.serve.sketch.SlotSketch` (whose projections the
        stream side attaches via
        :meth:`~repro.inference.streaming.StreamingFleet.attach_sketch`),
        the per-slot projected bank states ``P_t w_t(mu_s)`` stacked
        ``(Nt * r, S)``, and their squared norms ``(Nt, S)`` — the
        bank-side inputs of the certified sketch screen
        (:func:`~repro.serve.sketch.certified_bounds`).  Built through
        the same :data:`~repro.serve.sketch.COL_BLOCK`-chunked
        :meth:`~repro.serve.sketch.SlotSketch.project_bank_columns` the
        fabric's workers use, so a block-aligned shard of this sketch is
        bitwise identical to the flat build.  ``mode="pca"`` builds the
        data-dependent bank basis (:meth:`SlotSketch.from_bank` over
        ``w(mu_s)``; ``seed`` is inert but stays in the memo key).
        Memoized per ``(rank, seed, mode, backend, dtype)`` — the backend
        identity is part of the key so a server switching backends can
        never be handed arrays produced by (or resident on) a different
        backend/device.
        """
        eng = self.engine
        key = (int(rank), int(seed), str(mode)) + eng.backend.key()
        cached = self._sketches.get(key)
        if cached is None:
            if mode == "pca":
                # The basis is always computed from the host export so it
                # is a bitwise-pinned function of the bank state alone,
                # whatever backend serves the projection gemms.
                sk = SlotSketch.from_bank(
                    self._Wmu, eng.nt, eng.nd, rank, backend=eng.backend
                )
            else:
                sk = SlotSketch(
                    eng.nt, eng.nd, rank, seed=seed, backend=eng.backend, mode=mode
                )
            bank = self._Wmu if eng.backend.is_numpy else self._Wmu_dev
            proj, psq = sk.project_bank(bank)
            cached = self._sketches[key] = (sk, proj, psq)
        return cached

    def state_nbytes(self) -> int:
        """Memory of the bank-side state (``w(mu_s)`` + norms + QoI + sketches)."""
        n = self._Wmu.nbytes + self._musq_cum.nbytes + self._slot_musq.nbytes
        if self._qoi is not None:
            n += self._qoi.nbytes
        for sk, proj, psq in self._sketches.values():
            n += sk.nbytes + proj.nbytes + psq.nbytes
        return int(n)


class IdentificationSession:
    """One fleet of observation streams ranked against one scenario bank.

    Holds the per-(stream, scenario) evidence cross terms
    ``w_k(d_j)^T w_k(mu_s)`` and advances them in lock-step with the
    underlying :class:`~repro.inference.streaming.StreamingFleet`: per
    newly absorbed slot, one ``(Nd, n_active)^T (Nd, S)`` gemm — no solve
    beyond the fleet's own ``Nd x Nd`` block forward-substitution.
    Streams may sit at different horizons (ragged fleets).
    """

    def __init__(
        self,
        identifier: ScenarioIdentifier,
        fleet: StreamingFleet,
        prior_weights: Optional[np.ndarray] = None,
    ) -> None:
        self.identifier = identifier
        self.fleet = fleet
        self._log_prior = (
            identifier.log_prior
            if prior_weights is None
            else identifier._normalize_prior(prior_weights)
        )
        self._cross = fleet.engine.backend.zeros(
            (fleet.n_streams, identifier.n_scenarios)
        )
        self._folded = np.zeros(fleet.n_streams, dtype=np.int64)
        self._fold_new_slots()  # adopt a fleet already mid-stream

    # ------------------------------------------------------------------
    @property
    def n_streams(self) -> int:
        """Number of observation streams in the session."""
        return self.fleet.n_streams

    @property
    def horizons(self) -> np.ndarray:
        """Per-stream data horizons (slots absorbed so far)."""
        return self.fleet.horizons

    def _fold_new_slots(self) -> None:
        """Accumulate cross terms for slots the fleet absorbed since last fold.

        The per-slot gemm is chunked on absolute
        :data:`~repro.serve.sketch.COL_BLOCK` scenario columns — the same
        chunks a block-aligned shard would issue — so evidences are
        identical whether a bank is ranked flat or sharded.
        """
        h = self.fleet.horizons
        if np.array_equal(h, self._folded):
            return
        eng = self.fleet.engine
        bk = eng.backend
        nd = eng.nd
        S = self.identifier.n_scenarios
        W, Wmu = self.fleet._W, self.identifier._Wmu_dev
        block = _sketch.COL_BLOCK
        for s in range(int(self._folded.min()), int(h.max())):
            idx = np.nonzero((self._folded <= s) & (h > s))[0]
            if not idx.size:
                continue
            idx = bk.index(idx)
            r0, r1 = s * nd, (s + 1) * nd
            Wd_s = W[r0:r1, idx].T
            for c0 in range(0, S, block):
                c1 = min(c0 + block, S)
                self._cross[idx, c0:c1] += Wd_s @ Wmu[r0:r1, c0:c1]
        self._folded = h.copy()

    def advance(
        self, k_slots: Union[int, Sequence[int], np.ndarray]
    ) -> "IdentificationSession":
        """Absorb observation slots up to ``k_slots`` (scalar or per-stream).

        Advances the underlying fleet (causal order, grouped by slot) and
        folds each new block into the evidence cross terms.
        """
        self.fleet.advance(k_slots)
        self._fold_new_slots()
        return self

    # ------------------------------------------------------------------
    def log_evidence(self) -> np.ndarray:
        """``log p(d_{k_j} | s)`` for every (stream, scenario), ``(n, S)``.

        Assembled from the running states — quadratic form ``||w(d)||^2 +
        ||w(mu_s)||^2 - 2 w(d)^T w(mu_s)``, the cached cumulative
        ``log diag(L)``, and the dimension constant.  No solves.
        """
        self._fold_new_slots()  # the fleet may have been advanced directly
        eng = self.fleet.engine
        k = self.fleet.horizons
        cross = eng.backend.to_numpy(self._cross)
        quad = (
            self.fleet.squared_norms()[:, None]
            + self.identifier._musq_cum[k]
            - 2.0 * cross
        )
        logdet_half = eng.inv.cholesky_logdiag_cum[k]
        const = 0.5 * (k * eng.nd) * _LOG_2PI
        return -0.5 * quad - (logdet_half + const)[:, None]

    def posterior(
        self, prior_weights: Optional[np.ndarray] = None
    ) -> IdentificationResult:
        """Streaming posterior scenario probabilities ``p(s | d_k)``.

        Softmax over the per-scenario evidences plus log prior weights
        (session default unless overridden here).
        """
        log_ev = self.log_evidence()
        log_prior = (
            self._log_prior
            if prior_weights is None
            else self.identifier._normalize_prior(prior_weights)
        )
        log_post = log_softmax(log_ev + log_prior[None, :], axis=-1)
        return IdentificationResult(
            ids=list(self.identifier.ids),
            horizons=self.fleet.horizons.copy(),
            log_evidence=log_ev,
            log_posterior=log_post,
            probabilities=np.exp(log_post),
        )

    def probabilities(self, prior_weights: Optional[np.ndarray] = None) -> np.ndarray:
        """``p(s | d_k)`` as a plain ``(n, S)`` array."""
        return self.posterior(prior_weights=prior_weights).probabilities

    def top_k(
        self, k: int = 3, prior_weights: Optional[np.ndarray] = None
    ) -> List[List[Tuple[str, float]]]:
        """Per stream, the ``k`` most probable ``(scenario_id, probability)``."""
        return self.posterior(prior_weights=prior_weights).top_k(k)

    # ------------------------------------------------------------------
    def evidence_interval(
        self,
        slots: Optional[Sequence[int]] = None,
        stride: int = 8,
        sketch_rank: int = 0,
        sketch_seed: int = 0,
        sketch_mode: str = "gaussian",
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Certified brackets ``(lb, ub)`` on every ``log p(d_k | s)``.

        The flat-path entry into the shared certified-screen layer
        (:func:`repro.serve.sketch.certified_bounds`) — exactly the
        bounds the serving fabric's coarse screen computes, without any
        fabric.  ``slots`` is the subset of observation slots evaluated
        exactly (default: the ``1/stride`` highest-energy absorbed slots,
        via :func:`~repro.serve.sketch.select_screen_slots`); the rest
        are bracketed — with ``sketch_rank > 0``, through the bank's
        low-rank sketch (:meth:`ScenarioIdentifier.sketch`; seeded
        Gaussian by default, bank-PCA with ``sketch_mode="pca"``), which
        tightens the interval from ``±2 Σ ||w_t(d)|| ||w_t(mu_s)||`` to
        the orthogonal residual product.  Both arrays are ``(n, S)`` and
        always contain :meth:`log_evidence` entrywise.
        """
        ident = self.identifier
        eng = self.fleet.engine
        hz = self.fleet.horizons
        k_max = int(hz.max())
        if k_max < 1:
            raise RuntimeError("no observation slots absorbed yet")
        if slots is None:
            energy = self.fleet.slot_squared_norms().sum(axis=1)
            slots = _sketch.select_screen_slots(energy, k_max, stride)
        J, S = self.n_streams, ident.n_scenarios
        static = {
            "wd": self.fleet.states,
            "wd_slot": self.fleet.slot_squared_norms(),
            "hz": hz,
            "logdiag": eng.inv.cholesky_logdiag_cum,
        }
        bankv = {
            "wmu": ident._Wmu,
            "slot_musq": ident._slot_musq,
            "lb": np.empty((J, S)),
            "ub": np.empty((J, S)),
        }
        if sketch_rank:
            sk, proj, psq = ident.sketch(
                sketch_rank, seed=sketch_seed, mode=sketch_mode
            )
            fp = self.fleet.sketch_projections
            if fp is None or (fp is not sk.P and fp.base is not sk.P):
                self.fleet.attach_sketch(sk.projections)
            static["wd_p"] = self.fleet.slot_projections()
            static["wd_psq"] = self.fleet.slot_projection_norms()
            bankv["pmu"] = proj
            bankv["slot_psq"] = psq
        # Non-numpy backends widen the brackets by their declared kernel
        # budget (tolerance-certified contract); numpy passes rtol=0 and
        # stays bitwise-identical.
        _sketch.certified_bounds(
            static, bankv, eng.nd, J, tuple(slots), 0, S,
            rtol=eng.backend.screen_rtol,
        )
        return bankv["lb"], bankv["ub"]

    # ------------------------------------------------------------------
    def forecast_mixture(
        self, times: Optional[np.ndarray] = None
    ) -> List[QoIForecast]:
        """Bank-conditioned QoI forecast mixture per stream.

        Under scenario hypothesis ``s`` the conditional forecast mean is
        ``E[q | d_k, s] = q_s + Y_k^T (w_k(d) - w_k(mu_s))`` with the usual
        horizon-``k`` conditional covariance; mixing over ``p(s | d_k)``
        and moment-matching gives a single Gaussian per stream whose
        covariance adds the between-scenario spread to the within-scenario
        posterior covariance.  Requires the identifier to have been built
        with ``qoi_records``.
        """
        ident = self.identifier
        if ident._qoi is None:
            raise RuntimeError(
                "identifier was built without qoi_records; no forecast mixture"
            )
        eng = self.fleet.engine
        probs = self.probabilities()
        means = self.fleet.forecast_means()  # (Nt*Nq, n) running Y^T w(d)
        if times is None:
            times = np.arange(1, eng.nt + 1, dtype=np.float64)
        out: List[Optional[QoIForecast]] = [None] * self.n_streams
        for k in np.unique(self.fleet.horizons):
            k = int(k)
            n_rows = k * eng.nd
            # Scenario-conditioned offsets q_s - Y_k^T w_k(mu_s), (Nt*Nq, S):
            # one gemm per distinct horizon, shared by every stream there.
            delta = ident._qoi - eng.geometry_rows(k).T @ ident._Wmu[:n_rows]
            cov_k = eng.covariance_at(k)
            for j in np.nonzero(self.fleet.horizons == k)[0]:
                p = probs[j]
                cond = means[:, j][:, None] + delta  # E[q | d, s] per scenario
                mix_mean = cond @ p
                centered = (cond - mix_mean[:, None]) * np.sqrt(p)[None, :]
                cov = cov_k + centered @ centered.T
                out[j] = QoIForecast(
                    times=times,
                    mean=mix_mean.reshape(eng.nt, eng.nq),
                    covariance=cov,
                )
        return out  # type: ignore[return-value]
