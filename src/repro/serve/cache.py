"""OperatorCache: run the offline Phases 2-3 once per sensor geometry.

The offline product of Phases 2-3 — the Cholesky factor of the data-space
Hessian ``K`` and the data-to-QoI map ``Q`` — depends only on the *geometry*
(p2o/p2q kernels, prior, noise statistics), not on any particular event.
A serving deployment therefore memoizes it: the first request against a
geometry pays the assembly cost; every later request (same sensors, same
prior, same noise calibration) reuses the factor for the price of a dict
lookup, or of one ``.npz`` load when a persistence directory is configured
and the factor was built by an earlier process.

Keys are content fingerprints (:mod:`repro.util.hashing`) over the kernels
and hyperparameters, so logically identical twins built independently hit
the same entry, and any change to the sensor network, mesh, prior, or
noise level transparently misses to a fresh build.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Union

from repro.inference.bayes import ToeplitzBayesianInversion
from repro.inference.noise import NoiseModel
from repro.twin.archive import (
    load_twin_archive,
    rebuild_inversion,
    save_twin_archive,
)
from repro.twin.cascadia import CascadiaTwin
from repro.util.hashing import geometry_fingerprint
from repro.util.memory import MemoryBudget
from repro.util.timing import TimerRegistry

__all__ = ["CacheStats", "OperatorCache"]


@dataclass
class CacheStats:
    """Hit/miss/eviction counters of an :class:`OperatorCache`."""

    hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def requests(self) -> int:
        """Total lookups."""
        return self.hits + self.disk_hits + self.misses

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict form (for reports)."""
        return {
            "hits": self.hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "requests": self.requests,
        }


class OperatorCache:
    """Memoized Phase 2-3 assembly, keyed by geometry fingerprint.

    Parameters
    ----------
    directory:
        Optional persistence directory.  On a miss the assembled operators
        are archived as ``<key>.npz`` (via
        :func:`~repro.twin.archive.save_twin_archive`); a later process
        with the same directory rebuilds from disk instead of re-running
        Phases 2-3.
    memory_budget:
        ``None`` (unlimited), a byte ceiling, or a shared
        :class:`~repro.util.memory.MemoryBudget` (e.g. the one governing a
        :class:`~repro.serve.fabric.ServingFabric`, so cache and fabric
        draw on one global number).  While resident operator sets exceed
        the budget, the *coldest* geometry is evicted first — heat is the
        number of times a geometry has been served, with recency breaking
        ties.  Eviction drops only the in-memory entry: with a persistence
        directory configured the archive stays on disk and the next
        request is a cheap disk hit rather than a Phase 2-3 rebuild.
    """

    def __init__(
        self,
        directory: Optional[Union[str, Path]] = None,
        memory_budget: Union[None, int, MemoryBudget] = None,
    ) -> None:
        self.directory = Path(directory) if directory is not None else None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        self._memory: Dict[str, ToeplitzBayesianInversion] = {}
        self.budget = MemoryBudget.ensure(memory_budget)
        # Per-instance ledger namespace: several caches/fabrics may share
        # one budget without colliding on entry names.
        self.budget_prefix = f"opcache-{secrets.token_hex(3)}"

        self._heat: Dict[str, int] = {}
        self._last_used: Dict[str, int] = {}
        self._clock = 0
        self.stats = CacheStats()
        self.timers = TimerRegistry()

    # ------------------------------------------------------------------
    @staticmethod
    def operator_nbytes(inv: ToeplitzBayesianInversion) -> int:
        """Resident bytes of one assembled operator set.

        Counts the dense Phase 2-3 products (``K`` or its Cholesky factor,
        ``B``, ``P_q``, ``Q``, the QoI covariance) plus the p2o/p2q
        kernels — the arrays an eviction actually frees.
        """
        arrays = [inv.K, inv.B, inv.Pq, inv.Q, inv.qoi_covariance]
        if inv._K_chol is not None:
            arrays.append(inv._K_chol[0])
        arrays.append(inv.F.kernel)
        if inv.Fq is not None:
            arrays.append(inv.Fq.kernel)
        return sum(int(a.nbytes) for a in arrays if a is not None)

    def _touch(self, key: str) -> None:
        """Record a serve of ``key`` (heat + recency, for eviction order)."""
        self._clock += 1
        self._heat[key] = self._heat.get(key, 0) + 1
        self._last_used[key] = self._clock

    def _admit(self, key: str, inv: ToeplitzBayesianInversion) -> None:
        """Insert ``key`` and evict coldest entries while over budget."""
        self._memory[key] = inv
        self.budget.register(f"{self.budget_prefix}:{key[:16]}", self.operator_nbytes(inv))
        self._touch(key)
        while self.budget.over_budget() and len(self._memory) > 1:
            coldest = min(
                (k for k in self._memory if k != key),
                key=lambda k: (self._heat.get(k, 0), self._last_used.get(k, 0)),
            )
            self.evict(coldest)

    def evict(self, key: str) -> bool:
        """Drop a resident entry (disk archives are kept); True if present."""
        inv = self._memory.pop(key, None)
        if inv is None:
            return False
        self.budget.release(f"{self.budget_prefix}:{key[:16]}")
        self.stats.evictions += 1
        return True

    # ------------------------------------------------------------------
    def key_for(self, twin: CascadiaTwin, noise: NoiseModel) -> str:
        """The cache key: twin geometry fingerprint + noise statistics."""
        return geometry_fingerprint(
            {"geometry": twin.geometry_fingerprint()}, noise.sigma
        )

    def _disk_path(self, key: str) -> Optional[Path]:
        """Archive path for ``key`` — the *full* SHA-256 digest as filename.

        Earlier versions truncated the digest to 32 hex chars (128 bits of
        collision resistance thrown away for no benefit); archives written
        under the legacy truncated name are still found and loaded.
        """
        if self.directory is None:
            return None
        path = self.directory / f"{key}.npz"
        if not path.exists():
            legacy = self.directory / f"{key[:32]}.npz"
            if legacy.exists():
                return legacy
        return path

    # ------------------------------------------------------------------
    def get_or_build(
        self,
        twin: CascadiaTwin,
        noise: NoiseModel,
        method: str = "fft",
        chunk: int = 256,
    ) -> ToeplitzBayesianInversion:
        """Return the Phase 2-3 operators for this geometry, building once.

        The twin must have completed Phase 1 (kernel extraction).  On any
        form of hit the returned inversion is also installed as
        ``twin.inversion`` so ``twin.invert()`` works as if ``phase23()``
        had run.
        """
        if not twin._phase1_done:
            twin.phase1()
        key = self.key_for(twin, noise)
        inv = self._memory.get(key)
        if inv is not None:
            self.stats.hits += 1
            self._touch(key)
            twin.inversion = inv
            return inv
        path = self._disk_path(key)
        if path is not None and path.exists():
            with self.timers.time("cache: load archive"):
                inv = rebuild_inversion(load_twin_archive(path))
            self.stats.disk_hits += 1
            self._admit(key, inv)
            twin.inversion = inv
            return inv
        self.stats.misses += 1
        with self.timers.time("cache: build phases 2-3"):
            inv = twin.phase23(noise, method=method, chunk=chunk)
        self._admit(key, inv)
        if path is not None:
            with self.timers.time("cache: save archive"):
                save_twin_archive(path, inv, config=twin.config)
        return inv

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._memory)

    def contains(self, key: str, check_disk: bool = True) -> bool:
        """Whether ``key`` would hit — in memory or (optionally) on disk.

        ``check_disk=False`` restricts the question to resident entries
        (the pre-fix ``in`` behavior, which wrongly reported a miss for
        keys the next :meth:`get_or_build` would serve from an archive).
        """
        if key in self._memory:
            return True
        if not check_disk:
            return False
        path = self._disk_path(key)
        return path is not None and path.exists()

    def __contains__(self, key: str) -> bool:
        return self.contains(key, check_disk=True)

    def clear_memory(self) -> None:
        """Drop in-memory entries (on-disk archives are kept).

        Heat/recency counters reset too: a full clear is a cold start, and
        stale heat would otherwise outrank genuinely hot entries admitted
        after the clear, inverting the eviction order.
        """
        for key in list(self._memory):
            self._memory.pop(key)
            self.budget.release(f"{self.budget_prefix}:{key[:16]}")
        self._heat.clear()
        self._last_used.clear()

    def resident_nbytes(self) -> int:
        """Bytes held by resident operator sets (budget-ledger view)."""
        return sum(
            self.budget.nbytes_of(f"{self.budget_prefix}:{k[:16]}") for k in self._memory
        )

    def report(self) -> str:
        """One-line stats summary."""
        s = self.stats
        return (
            f"operator cache: {len(self._memory)} resident "
            f"({self.resident_nbytes() / float(1 << 20):.1f} MiB), "
            f"{s.hits} hits, {s.disk_hits} disk hits, {s.misses} misses, "
            f"{s.evictions} evictions"
        )
