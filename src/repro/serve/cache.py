"""OperatorCache: run the offline Phases 2-3 once per sensor geometry.

The offline product of Phases 2-3 — the Cholesky factor of the data-space
Hessian ``K`` and the data-to-QoI map ``Q`` — depends only on the *geometry*
(p2o/p2q kernels, prior, noise statistics), not on any particular event.
A serving deployment therefore memoizes it: the first request against a
geometry pays the assembly cost; every later request (same sensors, same
prior, same noise calibration) reuses the factor for the price of a dict
lookup, or of one ``.npz`` load when a persistence directory is configured
and the factor was built by an earlier process.

Keys are content fingerprints (:mod:`repro.util.hashing`) over the kernels
and hyperparameters, so logically identical twins built independently hit
the same entry, and any change to the sensor network, mesh, prior, or
noise level transparently misses to a fresh build.
"""

from __future__ import annotations

import os
import secrets
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Sequence, Union

from repro.inference.bayes import ToeplitzBayesianInversion
from repro.inference.noise import NoiseModel
from repro.twin.archive import (
    load_twin_archive,
    rebuild_inversion,
    save_twin_archive,
)
from repro.twin.cascadia import CascadiaTwin
from repro.util.hashing import geometry_fingerprint
from repro.util.memory import MemoryBudget
from repro.util.timing import TimerRegistry

__all__ = ["CacheStats", "OperatorCache"]


@dataclass
class CacheStats:
    """Hit/miss/eviction counters of an :class:`OperatorCache`."""

    hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def requests(self) -> int:
        """Total lookups."""
        return self.hits + self.disk_hits + self.misses

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict form (for reports)."""
        return {
            "hits": self.hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "requests": self.requests,
        }


class OperatorCache:
    """Memoized Phase 2-3 assembly, keyed by geometry fingerprint.

    Parameters
    ----------
    directory:
        Optional persistence directory.  On a miss the assembled operators
        are archived as ``<key>.npz`` (via
        :func:`~repro.twin.archive.save_twin_archive`); a later process
        with the same directory rebuilds from disk instead of re-running
        Phases 2-3.
    memory_budget:
        ``None`` (unlimited), a byte ceiling, or a shared
        :class:`~repro.util.memory.MemoryBudget` (e.g. the one governing a
        :class:`~repro.serve.fabric.ServingFabric`, so cache and fabric
        draw on one global number).  While resident operator sets exceed
        the budget, the *coldest* geometry is evicted first — heat is the
        number of times a geometry has been served, with recency breaking
        ties.  Eviction drops only the in-memory entry: with a persistence
        directory configured the archive stays on disk and the next
        request is a cheap disk hit rather than a Phase 2-3 rebuild.
    """

    def __init__(
        self,
        directory: Optional[Union[str, Path]] = None,
        memory_budget: Union[None, int, MemoryBudget] = None,
    ) -> None:
        self.directory = Path(directory) if directory is not None else None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        self._memory: Dict[str, ToeplitzBayesianInversion] = {}
        self.budget = MemoryBudget.ensure(memory_budget)
        # Per-instance ledger namespace: several caches/fabrics may share
        # one budget without colliding on entry names.
        self.budget_prefix = f"opcache-{secrets.token_hex(3)}"

        self._heat: Dict[str, int] = {}
        self._last_used: Dict[str, int] = {}
        self._clock = 0
        self.stats = CacheStats()
        self.timers = TimerRegistry()

    # ------------------------------------------------------------------
    @staticmethod
    def operator_nbytes(inv: ToeplitzBayesianInversion) -> int:
        """Resident bytes of one assembled operator set.

        Counts the dense Phase 2-3 products (``K`` or its Cholesky factor,
        ``B``, ``P_q``, ``Q``, the QoI covariance) plus the p2o/p2q
        kernels — the arrays an eviction actually frees.
        """
        arrays = [inv.K, inv.B, inv.Pq, inv.Q, inv.qoi_covariance]
        if inv._K_chol is not None:
            arrays.append(inv._K_chol[0])
        arrays.append(inv.F.kernel)
        if inv.Fq is not None:
            arrays.append(inv.Fq.kernel)
        return sum(int(a.nbytes) for a in arrays if a is not None)

    #: Archive-mtime refresh throttle (seconds): memory hits are hot, so
    #: the LRU recency signal for :meth:`prune_disk` is refreshed at most
    #: this often per archive.
    ARCHIVE_TOUCH_INTERVAL = 3600.0

    def _touch(self, key: str) -> None:
        """Record a serve of ``key`` (heat + recency, for eviction order).

        Also refreshes the on-disk archive's mtime (throttled) so a
        geometry served from *memory* still looks recently used to
        :meth:`prune_disk` — otherwise the hottest resident geometries
        would carry the stalest archives and be pruned first.
        """
        self._clock += 1
        self._heat[key] = self._heat.get(key, 0) + 1
        self._last_used[key] = self._clock
        path = self._disk_path(key)
        if path is not None:
            try:
                if path.stat().st_mtime < time.time() - self.ARCHIVE_TOUCH_INTERVAL:
                    os.utime(path)
            except OSError:
                pass

    def _admit(self, key: str, inv: ToeplitzBayesianInversion) -> None:
        """Insert ``key`` and evict coldest entries while over budget."""
        self._memory[key] = inv
        self.budget.register(f"{self.budget_prefix}:{key[:16]}", self.operator_nbytes(inv))
        self._touch(key)
        while self.budget.over_budget() and len(self._memory) > 1:
            coldest = min(
                (k for k in self._memory if k != key),
                key=lambda k: (self._heat.get(k, 0), self._last_used.get(k, 0)),
            )
            self.evict(coldest)

    def evict(self, key: str) -> bool:
        """Drop a resident entry (disk archives are kept); True if present."""
        inv = self._memory.pop(key, None)
        if inv is None:
            return False
        self.budget.release(f"{self.budget_prefix}:{key[:16]}")
        self.stats.evictions += 1
        return True

    # ------------------------------------------------------------------
    def key_for(self, twin: CascadiaTwin, noise: NoiseModel) -> str:
        """The cache key: twin geometry fingerprint + noise statistics."""
        return geometry_fingerprint(
            {"geometry": twin.geometry_fingerprint()}, noise.sigma
        )

    def _disk_path(self, key: str) -> Optional[Path]:
        """Archive path for ``key`` — the *full* SHA-256 digest as filename.

        Earlier versions truncated the digest to 32 hex chars (128 bits of
        collision resistance thrown away for no benefit); archives written
        under the legacy truncated name are still found and loaded.
        """
        if self.directory is None:
            return None
        path = self.directory / f"{key}.npz"
        if not path.exists():
            legacy = self.directory / f"{key[:32]}.npz"
            if legacy.exists():
                return legacy
        return path

    # ------------------------------------------------------------------
    def get_or_build(
        self,
        twin: CascadiaTwin,
        noise: NoiseModel,
        method: str = "fft",
        chunk: int = 256,
    ) -> ToeplitzBayesianInversion:
        """Return the Phase 2-3 operators for this geometry, building once.

        The twin must have completed Phase 1 (kernel extraction).  On any
        form of hit the returned inversion is also installed as
        ``twin.inversion`` so ``twin.invert()`` works as if ``phase23()``
        had run.
        """
        if not twin._phase1_done:
            twin.phase1()
        key = self.key_for(twin, noise)
        inv = self._memory.get(key)
        if inv is not None:
            self.stats.hits += 1
            self._touch(key)
            twin.inversion = inv
            return inv
        path = self._disk_path(key)
        if path is not None and path.exists():
            with self.timers.time("cache: load archive"):
                inv = rebuild_inversion(load_twin_archive(path))
            # Refresh the archive's mtime: prune_disk orders by last use,
            # and a disk hit is a use.
            try:
                os.utime(path)
            except OSError:  # pragma: no cover - read-only media
                pass
            self.stats.disk_hits += 1
            self._admit(key, inv)
            twin.inversion = inv
            return inv
        self.stats.misses += 1
        with self.timers.time("cache: build phases 2-3"):
            inv = twin.phase23(noise, method=method, chunk=chunk)
        self._admit(key, inv)
        if path is not None:
            with self.timers.time("cache: save archive"):
                save_twin_archive(path, inv, config=twin.config)
        return inv

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._memory)

    def contains(self, key: str, check_disk: bool = True) -> bool:
        """Whether ``key`` would hit — in memory or (optionally) on disk.

        ``check_disk=False`` restricts the question to resident entries
        (the pre-fix ``in`` behavior, which wrongly reported a miss for
        keys the next :meth:`get_or_build` would serve from an archive).
        """
        if key in self._memory:
            return True
        if not check_disk:
            return False
        path = self._disk_path(key)
        return path is not None and path.exists()

    def __contains__(self, key: str) -> bool:
        return self.contains(key, check_disk=True)

    def clear_memory(self) -> None:
        """Drop in-memory entries (on-disk archives are kept).

        Heat/recency counters reset too: a full clear is a cold start, and
        stale heat would otherwise outrank genuinely hot entries admitted
        after the clear, inverting the eviction order.
        """
        for key in list(self._memory):
            self._memory.pop(key)
            self.budget.release(f"{self.budget_prefix}:{key[:16]}")
        self._heat.clear()
        self._last_used.clear()

    def resident_nbytes(self) -> int:
        """Bytes held by resident operator sets (budget-ledger view)."""
        return sum(
            self.budget.nbytes_of(f"{self.budget_prefix}:{k[:16]}") for k in self._memory
        )

    # ------------------------------------------------------------------
    def disk_nbytes(self) -> int:
        """Total bytes of ``.npz`` archives in the persistence directory."""
        if self.directory is None:
            return 0
        return sum(p.stat().st_size for p in self.directory.glob("*.npz"))

    def prune_disk(
        self,
        max_bytes: Optional[int] = None,
        max_age_days: Optional[float] = None,
        dry_run: bool = False,
    ) -> Dict[str, int]:
        """LRU-prune on-disk ``.npz`` archives; returns what was done.

        Persistence directories otherwise grow without bound — resident
        eviction under a :class:`~repro.util.memory.MemoryBudget` never
        touches disk.  This walks every ``*.npz`` in the directory
        (legacy truncated-digest filenames included — any archive the
        cache can load, it can prune), ordered by *least-recent use*
        (file mtime; refreshed on every disk hit and save), and removes:

        * archives older than ``max_age_days``, then
        * the least-recently-used archives until the directory's total
          drops to ``max_bytes``.

        ``None`` disables the corresponding criterion; with both ``None``
        this is a no-op.  Resident in-memory entries are untouched — a
        pruned geometry simply misses to a Phase 2-3 rebuild next time.
        ``dry_run=True`` reports without deleting.  Exposed on the CLI as
        ``python -m repro.serve.cache <dir> --max-bytes ... --max-age-days ...``.

        Returns a dict with ``files_removed`` / ``bytes_freed`` /
        ``files_kept`` / ``bytes_kept``.
        """
        out = {"files_removed": 0, "bytes_freed": 0, "files_kept": 0, "bytes_kept": 0}
        if self.directory is None:
            return out
        entries = []
        for path in self.directory.glob("*.npz"):
            try:
                st = path.stat()
            except OSError:  # pragma: no cover - raced with another pruner
                continue
            entries.append((st.st_mtime, int(st.st_size), path))
        entries.sort()  # oldest (least recently used) first

        drop: Dict[Path, int] = {}
        if max_age_days is not None:
            cutoff = time.time() - float(max_age_days) * 86400.0
            for mtime, size, path in entries:
                if mtime < cutoff:
                    drop[path] = size
        if max_bytes is not None:
            total = sum(s for _, s, _ in entries) - sum(drop.values())
            for mtime, size, path in entries:
                if total <= int(max_bytes):
                    break
                if path not in drop:
                    drop[path] = size
                    total -= size
        for _, size, path in entries:
            if path in drop:
                if not dry_run:
                    try:
                        path.unlink()
                    except OSError:  # pragma: no cover - raced
                        continue
                out["files_removed"] += 1
                out["bytes_freed"] += size
            else:
                out["files_kept"] += 1
                out["bytes_kept"] += size
        return out

    def report(self) -> str:
        """One-line stats summary."""
        s = self.stats
        return (
            f"operator cache: {len(self._memory)} resident "
            f"({self.resident_nbytes() / float(1 << 20):.1f} MiB), "
            f"{s.hits} hits, {s.disk_hits} disk hits, {s.misses} misses, "
            f"{s.evictions} evictions"
        )


# ----------------------------------------------------------------------
# CLI: on-disk archive garbage collection
# ----------------------------------------------------------------------
def _parse_size(text: str) -> int:
    """``'512M'`` / ``'2G'`` / ``'1024'`` -> bytes."""
    t = text.strip().upper()
    scale = 1
    for suffix, s in (("K", 1 << 10), ("M", 1 << 20), ("G", 1 << 30)):
        if t.endswith(suffix):
            t, scale = t[:-1], s
            break
    return int(float(t) * scale)


def main(argv: Optional[Sequence[str]] = None) -> None:
    """Prune a cache persistence directory (``python -m repro.serve.cache``)."""
    import argparse

    ap = argparse.ArgumentParser(
        description="LRU-prune OperatorCache .npz archives (disk GC)"
    )
    ap.add_argument("directory", help="cache persistence directory")
    ap.add_argument(
        "--max-bytes", type=_parse_size, default=None, metavar="N[K|M|G]",
        help="prune least-recently-used archives down to this total size",
    )
    ap.add_argument(
        "--max-age-days", type=float, default=None,
        help="prune archives not used for this many days",
    )
    ap.add_argument(
        "--dry-run", action="store_true", help="report only, delete nothing"
    )
    args = ap.parse_args(argv)
    if args.max_bytes is None and args.max_age_days is None:
        ap.error("nothing to do: pass --max-bytes and/or --max-age-days")
    cache = OperatorCache(args.directory)
    r = cache.prune_disk(
        max_bytes=args.max_bytes, max_age_days=args.max_age_days,
        dry_run=args.dry_run,
    )
    verb = "would remove" if args.dry_run else "removed"
    print(
        f"{verb} {r['files_removed']} archive(s) "
        f"({r['bytes_freed'] / float(1 << 20):.1f} MiB); "
        f"kept {r['files_kept']} ({r['bytes_kept'] / float(1 << 20):.1f} MiB)"
    )


if __name__ == "__main__":
    main()
