"""OperatorCache: run the offline Phases 2-3 once per sensor geometry.

The offline product of Phases 2-3 — the Cholesky factor of the data-space
Hessian ``K`` and the data-to-QoI map ``Q`` — depends only on the *geometry*
(p2o/p2q kernels, prior, noise statistics), not on any particular event.
A serving deployment therefore memoizes it: the first request against a
geometry pays the assembly cost; every later request (same sensors, same
prior, same noise calibration) reuses the factor for the price of a dict
lookup, or of one ``.npz`` load when a persistence directory is configured
and the factor was built by an earlier process.

Keys are content fingerprints (:mod:`repro.util.hashing`) over the kernels
and hyperparameters, so logically identical twins built independently hit
the same entry, and any change to the sensor network, mesh, prior, or
noise level transparently misses to a fresh build.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Union

from repro.inference.bayes import ToeplitzBayesianInversion
from repro.inference.noise import NoiseModel
from repro.twin.archive import (
    load_twin_archive,
    rebuild_inversion,
    save_twin_archive,
)
from repro.twin.cascadia import CascadiaTwin
from repro.util.hashing import geometry_fingerprint
from repro.util.timing import TimerRegistry

__all__ = ["CacheStats", "OperatorCache"]


@dataclass
class CacheStats:
    """Hit/miss counters of an :class:`OperatorCache`."""

    hits: int = 0
    disk_hits: int = 0
    misses: int = 0

    @property
    def requests(self) -> int:
        """Total lookups."""
        return self.hits + self.disk_hits + self.misses

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict form (for reports)."""
        return {
            "hits": self.hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "requests": self.requests,
        }


class OperatorCache:
    """Memoized Phase 2-3 assembly, keyed by geometry fingerprint.

    Parameters
    ----------
    directory:
        Optional persistence directory.  On a miss the assembled operators
        are archived as ``<key>.npz`` (via
        :func:`~repro.twin.archive.save_twin_archive`); a later process
        with the same directory rebuilds from disk instead of re-running
        Phases 2-3.
    """

    def __init__(self, directory: Optional[Union[str, Path]] = None) -> None:
        self.directory = Path(directory) if directory is not None else None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        self._memory: Dict[str, ToeplitzBayesianInversion] = {}
        self.stats = CacheStats()
        self.timers = TimerRegistry()

    # ------------------------------------------------------------------
    def key_for(self, twin: CascadiaTwin, noise: NoiseModel) -> str:
        """The cache key: twin geometry fingerprint + noise statistics."""
        return geometry_fingerprint(
            {"geometry": twin.geometry_fingerprint()}, noise.sigma
        )

    def _disk_path(self, key: str) -> Optional[Path]:
        """Archive path for ``key`` — the *full* SHA-256 digest as filename.

        Earlier versions truncated the digest to 32 hex chars (128 bits of
        collision resistance thrown away for no benefit); archives written
        under the legacy truncated name are still found and loaded.
        """
        if self.directory is None:
            return None
        path = self.directory / f"{key}.npz"
        if not path.exists():
            legacy = self.directory / f"{key[:32]}.npz"
            if legacy.exists():
                return legacy
        return path

    # ------------------------------------------------------------------
    def get_or_build(
        self,
        twin: CascadiaTwin,
        noise: NoiseModel,
        method: str = "fft",
        chunk: int = 256,
    ) -> ToeplitzBayesianInversion:
        """Return the Phase 2-3 operators for this geometry, building once.

        The twin must have completed Phase 1 (kernel extraction).  On any
        form of hit the returned inversion is also installed as
        ``twin.inversion`` so ``twin.invert()`` works as if ``phase23()``
        had run.
        """
        if not twin._phase1_done:
            twin.phase1()
        key = self.key_for(twin, noise)
        inv = self._memory.get(key)
        if inv is not None:
            self.stats.hits += 1
            twin.inversion = inv
            return inv
        path = self._disk_path(key)
        if path is not None and path.exists():
            with self.timers.time("cache: load archive"):
                inv = rebuild_inversion(load_twin_archive(path))
            self.stats.disk_hits += 1
            self._memory[key] = inv
            twin.inversion = inv
            return inv
        self.stats.misses += 1
        with self.timers.time("cache: build phases 2-3"):
            inv = twin.phase23(noise, method=method, chunk=chunk)
        self._memory[key] = inv
        if path is not None:
            with self.timers.time("cache: save archive"):
                save_twin_archive(path, inv, config=twin.config)
        return inv

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._memory)

    def contains(self, key: str, check_disk: bool = True) -> bool:
        """Whether ``key`` would hit — in memory or (optionally) on disk.

        ``check_disk=False`` restricts the question to resident entries
        (the pre-fix ``in`` behavior, which wrongly reported a miss for
        keys the next :meth:`get_or_build` would serve from an archive).
        """
        if key in self._memory:
            return True
        if not check_disk:
            return False
        path = self._disk_path(key)
        return path is not None and path.exists()

    def __contains__(self, key: str) -> bool:
        return self.contains(key, check_disk=True)

    def clear_memory(self) -> None:
        """Drop in-memory entries (on-disk archives are kept)."""
        self._memory.clear()

    def report(self) -> str:
        """One-line stats summary."""
        s = self.stats
        return (
            f"operator cache: {len(self._memory)} resident, "
            f"{s.hits} hits, {s.disk_hits} disk hits, {s.misses} misses"
        )
