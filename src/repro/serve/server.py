"""BatchedPhase4Server: many concurrent Phase-4 solves as one BLAS-3 pass.

The online phase for a single event is two triangular solves, one FFT
rmatvec, and one small dense matvec (paper Section V-B / Table III Phase 4).
A serving deployment sees *many* events and what-if scenarios at once, and
every per-stream solve shares the same precomputed operators — so the
server stacks the ``k`` observation streams into one ``(Nt*Nd, k)``
right-hand-side block and replaces ``k`` BLAS-2 sweeps (``trsv``/``gemv``)
with single BLAS-3 calls (``trsm``/``gemm``), plus one batched FFT rmatvec
for all MAP fields.  Per-stream results are unchanged (verified to
near-machine precision against sequential
:meth:`~repro.inference.bayes.ToeplitzBayesianInversion.infer` /
``predict`` by the test suite); only the arithmetic intensity changes.

The streaming early-warning path is *incremental*: the server holds the
inversion's shared :class:`~repro.inference.streaming.IncrementalStreamingPosterior`
engine, and a fleet of concurrent events advances one observation slot per
step — one ``Nd x Nd`` block forward-substitution row over the grouped
streams, one gemm against the shared nested geometry rows, and one
rank-``Nd`` covariance downdate.  No per-horizon re-solves, no memoized
per-horizon operators, and streams may sit at *different* horizons
(a ragged fleet): :meth:`BatchedPhase4Server.forecast_partial_batch`
accepts per-stream horizons, and :meth:`BatchedPhase4Server.open_fleet`
exposes the persistent per-stream states for long-lived sessions.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.inference.bayes import ToeplitzBayesianInversion
from repro.inference.forecast import QoIForecast
from repro.inference.streaming import IncrementalStreamingPosterior, StreamingFleet
from repro.serve.identify import (
    IdentificationResult,
    IdentificationSession,
    ScenarioIdentifier,
)
from repro.twin.earlywarning import (
    AlertLevel,
    EarlyWarningDecision,
    decide_alert,
)
from repro.util.timing import TimerRegistry

__all__ = ["ServeResult", "BatchedPhase4Server"]


@dataclass
class ServeResult:
    """Outputs of one batched serving pass over ``k`` streams.

    Attributes
    ----------
    m_map:
        MAP parameter fields, ``(Nt, Nm, k)``.
    forecasts:
        One :class:`~repro.inference.forecast.QoIForecast` per stream (the
        covariance object is shared — it depends on geometry, not data).
    decisions:
        Per-stream alert decisions, when thresholds were supplied.
    """

    m_map: np.ndarray
    forecasts: List[QoIForecast]
    decisions: Optional[List[EarlyWarningDecision]] = None

    @property
    def n_streams(self) -> int:
        """Number of concurrent streams served."""
        return int(self.m_map.shape[2])


class BatchedPhase4Server:
    """Multi-stream Phase-4 server over one precomputed geometry.

    Parameters
    ----------
    inv:
        A fully-assembled inversion (Phases 2-3 complete), e.g. from an
        :class:`~repro.serve.cache.OperatorCache`.
    backend:
        Array backend for the streaming/identification hot paths — a
        :class:`repro.backend.Backend`, a name (``"numpy"``, ``"torch"``,
        ``"torch-cuda"``, ``"cupy"``), or ``None`` for the bitwise numpy
        default.  Surfaced as :attr:`backend` and in :meth:`report`.
    """

    def __init__(
        self,
        inv: ToeplitzBayesianInversion,
        timers: Optional[TimerRegistry] = None,
        backend=None,
    ) -> None:
        if not inv.phase2_complete:
            raise RuntimeError("Phase 2 must be complete before serving")
        from repro.backend import resolve_backend

        self.inv = inv
        self.backend = resolve_backend(backend)
        self.nt, self.nd, self.nm = inv.nt, inv.nd, inv.nm
        self.nq = inv.nq
        self.timers = timers if timers is not None else TimerRegistry()
        # Bank-side identification state, memoized per (bank, engine, bank
        # size) and bounded LRU; a strong bank reference keeps id() stable
        # for the dict key.
        self._identifiers: "OrderedDict[int, Tuple[object, object, int, ScenarioIdentifier]]" = (
            OrderedDict()
        )

    # ------------------------------------------------------------------
    # Input handling
    # ------------------------------------------------------------------
    def stack_streams(
        self, streams: Union[np.ndarray, Sequence[np.ndarray]]
    ) -> np.ndarray:
        """Normalize input to ``(Nt, Nd, k)``: one array or a list of streams."""
        if isinstance(streams, np.ndarray):
            D = np.asarray(streams, dtype=np.float64)
            if D.ndim == 2:
                D = D[:, :, None]
        else:
            D = np.stack(
                [np.asarray(s, dtype=np.float64) for s in streams], axis=-1
            )
        if D.ndim != 3 or D.shape[:2] != (self.nt, self.nd):
            raise ValueError(
                f"streams must stack to ({self.nt},{self.nd},k), got {D.shape}"
            )
        return D

    # ------------------------------------------------------------------
    # Full-data batched Phase 4
    # ------------------------------------------------------------------
    def infer_batch(
        self, streams: Union[np.ndarray, Sequence[np.ndarray]]
    ) -> np.ndarray:
        """Batched Phase 4a: all MAP fields ``(Nt, Nm, k)`` in one pass."""
        D = self.stack_streams(streams)
        with self.timers.time("serve: infer batch"):
            return self.inv.infer(D)

    def predict_batch(
        self,
        streams: Union[np.ndarray, Sequence[np.ndarray]],
        times: Optional[np.ndarray] = None,
    ) -> List[QoIForecast]:
        """Batched Phase 4b: all QoI forecasts from one ``gemm``.

        ``Q @ [d_1 ... d_k]`` replaces ``k`` matvecs; the exact posterior
        covariance is geometry-only, so a single covariance matrix is
        shared by every returned forecast.
        """
        if self.inv.Q is None or self.inv.qoi_covariance is None:
            raise RuntimeError("Phase 3 must be complete before predictions")
        D = self.stack_streams(streams)
        k = D.shape[2]
        with self.timers.time("serve: predict batch"):
            qs = self.inv.Q @ D.reshape(self.nt * self.nd, k)
        if times is None:
            times = np.arange(1, self.nt + 1, dtype=np.float64)
        cov = self.inv.qoi_covariance
        return [
            QoIForecast(
                times=times, mean=qs[:, j].reshape(self.nt, self.nq), covariance=cov
            )
            for j in range(k)
        ]

    def serve(
        self,
        streams: Union[np.ndarray, Sequence[np.ndarray]],
        times: Optional[np.ndarray] = None,
        thresholds: Optional[Tuple[float, float, float]] = None,
        probability: float = 0.5,
    ) -> ServeResult:
        """One full serving pass: MAP fields, forecasts, optional alerts."""
        D = self.stack_streams(streams)
        m_map = self.infer_batch(D)
        forecasts = self.predict_batch(D, times=times)
        decisions = None
        if thresholds is not None:
            adv, watch, warn = thresholds
            decisions = [
                decide_alert(fc, adv, watch, warn, probability) for fc in forecasts
            ]
        return ServeResult(m_map=m_map, forecasts=forecasts, decisions=decisions)

    # ------------------------------------------------------------------
    # Streaming partial-data serving (incremental engine)
    # ------------------------------------------------------------------
    def streaming_engine(self) -> IncrementalStreamingPosterior:
        """The inversion's shared incremental engine (requires Phase 3).

        Deliberately not cached here: the inversion memoizes it (per
        backend) and invalidates on re-assembly, so delegating keeps the
        server from serving posteriors of stale operators.
        """
        return self.inv.streaming_state(backend=self.backend)

    def open_fleet(
        self, streams: Union[np.ndarray, Sequence[np.ndarray]]
    ) -> StreamingFleet:
        """Attach streams as a persistent incremental fleet session.

        The returned :class:`~repro.inference.streaming.StreamingFleet`
        holds per-stream forward-substituted states against the server's
        shared geometry; callers advance it as observations arrive
        (``fleet.advance(horizons)``) and read exact forecasts at any mix
        of per-stream horizons (``fleet.forecasts()``).
        """
        return self.streaming_engine().open_fleet(self.stack_streams(streams))

    def forecast_partial_batch(
        self,
        streams: Union[np.ndarray, Sequence[np.ndarray]],
        k_slots: Union[int, Sequence[int], np.ndarray],
        times: Optional[np.ndarray] = None,
    ) -> List[QoIForecast]:
        """Partial-data forecasts for every stream, ragged horizons allowed.

        ``k_slots`` is a single shared horizon or one horizon per stream;
        streams are advanced through their slots in causal order (grouped
        by slot: one small block solve + one gemm each) and their means
        read off the shared geometry rows — no per-horizon re-solves.
        """
        ks = np.atleast_1d(np.asarray(k_slots, dtype=np.int64))
        if ks.size == 0 or ks.min() < 1:
            raise ValueError("k_slots must be >= 1 for every stream")
        D = self.stack_streams(streams)
        with self.timers.time("serve: stream batch"):
            fleet = self.open_fleet(D)
            fleet.advance(k_slots)
            return fleet.forecasts(times=times)

    def warning_latencies(
        self,
        streams: Union[np.ndarray, Sequence[np.ndarray]],
        advisory: float,
        watch: float,
        warning: float,
        probability: float = 0.5,
        level: AlertLevel = AlertLevel.WARNING,
    ) -> Tuple[List[Optional[int]], List[List[EarlyWarningDecision]]]:
        """Streaming alert latency for every stream in one incremental sweep.

        One fleet state absorbs one observation slot per step: a block
        forward-substitution row over all streams, one gemm for the fleet's
        means, and a rank-``Nd`` covariance downdate shared fleet-wide.
        The whole sweep costs about one full-horizon solve — the seed
        path's per-horizon re-solves are gone.  Returns per-stream
        first-firing slots (``None`` if never) and the per-slot decisions,
        ``decisions[slot][stream]``.
        """
        D = self.stack_streams(streams)
        k = D.shape[2]
        fleet = self.open_fleet(D)
        latencies: List[Optional[int]] = [None] * k
        all_decisions: List[List[EarlyWarningDecision]] = []
        with self.timers.time("serve: latency sweep"):
            for k_slots in range(1, self.nt + 1):
                fleet.advance(k_slots)
                fcs = fleet.forecasts()
                row = [
                    decide_alert(fc, advisory, watch, warning, probability)
                    for fc in fcs
                ]
                all_decisions.append(row)
                for j, dec in enumerate(row):
                    if latencies[j] is None and dec.max_level() >= level:
                        latencies[j] = k_slots
        return latencies, all_decisions

    # ------------------------------------------------------------------
    # Streaming scenario identification (incremental model evidence)
    # ------------------------------------------------------------------
    IDENTIFIER_CACHE_LIMIT = 4

    def scenario_identifier(self, bank) -> ScenarioIdentifier:
        """The memoized bank-side identification state for ``bank``.

        Building one costs a single full-horizon clean-record fleet
        advance over the bank (block solves only); every later call for
        the same bank against the same live engine is a dict lookup.
        Invalidation is by engine identity (re-assembling the inversion
        replaces the engine) *and* bank size (``generate()`` growing the
        bank in place must re-rank against the new entries).  The memo is
        a small LRU (``IDENTIFIER_CACHE_LIMIT`` banks) so a long-lived
        server rotating through many banks stays bounded.  Prior weights
        are deliberately not part of the state — they enter at
        posterior-read time (see :meth:`open_identification`).
        """
        engine = self.streaming_engine()
        cached = self._identifiers.get(id(bank))
        if cached is not None and cached[1] is engine and cached[2] == len(bank):
            self._identifiers.move_to_end(id(bank))
            return cached[3]
        ident = ScenarioIdentifier.from_bank(engine, bank)
        self._identifiers[id(bank)] = (bank, engine, len(bank), ident)
        self._identifiers.move_to_end(id(bank))
        while len(self._identifiers) > self.IDENTIFIER_CACHE_LIMIT:
            self._identifiers.popitem(last=False)
        return ident

    def open_identification(
        self,
        bank,
        streams: Union[np.ndarray, Sequence[np.ndarray]],
        prior_weights: Optional[np.ndarray] = None,
    ) -> IdentificationSession:
        """Attach streams for persistent streaming identification.

        The returned :class:`~repro.serve.identify.IdentificationSession`
        ranks every stream against the whole bank as observation slots are
        absorbed (``session.advance(horizons)``, ragged allowed): per slot
        one ``Nd``-block fleet solve plus one cross-term gemm — O(Nd) per
        slot per (stream, scenario) pair, never a from-scratch Gaussian.
        ``prior_weights`` is a session-level override applied at
        posterior-read time — it never rebuilds the memoized bank-side
        state.
        """
        return self.scenario_identifier(bank).open(
            self.stack_streams(streams), prior_weights=prior_weights
        )

    def identify_batch(
        self,
        bank,
        streams: Union[np.ndarray, Sequence[np.ndarray]],
        k_slots: Union[int, Sequence[int], np.ndarray],
        prior_weights: Optional[np.ndarray] = None,
    ) -> IdentificationResult:
        """One-shot posterior scenario ranking at the given horizons.

        ``k_slots`` is a shared horizon or one per stream (ragged);
        returns posterior scenario probabilities ``p(s | d_k)``, log
        evidences, and top-``k`` rankings for every stream.
        """
        with self.timers.time("serve: identify batch"):
            session = self.open_identification(
                bank, streams, prior_weights=prior_weights
            )
            session.advance(k_slots)
            return session.posterior()

    def forecast_mixture_batch(
        self,
        bank,
        streams: Union[np.ndarray, Sequence[np.ndarray]],
        k_slots: Union[int, Sequence[int], np.ndarray],
        times: Optional[np.ndarray] = None,
        prior_weights: Optional[np.ndarray] = None,
    ) -> List[QoIForecast]:
        """Bank-conditioned forecast mixtures at the given horizons.

        The one-shot flat counterpart of
        :meth:`~repro.serve.fabric.ServingFabric.forecast_mixture` (and of
        ``fabric.submit(op="forecast_mixture")`` tickets): per stream,
        scenario-conditioned forecasts mixed over the exhaustive posterior
        ``p(s | d_k)`` and moment-matched to one Gaussian.  Requires the
        bank to carry QoI records (a p2q-complete inversion).  The fabric
        paths are pinned against this one in the queue-equivalence suite.
        """
        with self.timers.time("serve: mixture batch"):
            session = self.open_identification(
                bank, streams, prior_weights=prior_weights
            )
            session.advance(k_slots)
            return session.forecast_mixture(times=times)

    # ------------------------------------------------------------------
    # Sharded serving fabric
    # ------------------------------------------------------------------
    def fabric(self, banks=(), **config):
        """A :class:`~repro.serve.fabric.ServingFabric` over this inversion.

        The sharded, hierarchical scale-out of the identification path:
        banks are split across a worker-process pool with shared-memory
        kernel/Cholesky buffers, streams are admitted through a
        micro-batching queue (deadline-flushed when ``max_queue_ms`` is
        set), and identification runs a certified coarse screen —
        tightened by shared low-rank slot sketches when ``sketch_rank``
        is set — before the exact evidence; bank-conditioned forecast
        mixtures run sharded too (see :mod:`repro.serve.fabric`,
        :mod:`repro.serve.sketch`, and ``docs/SERVING.md``).  Keyword
        arguments populate a :class:`~repro.serve.fabric.FabricConfig`
        (``server.fabric([bank], n_workers=4, sketch_rank=12,
        memory_budget=2 << 30)``).  The caller owns the fabric's
        lifecycle — use it as a context manager or ``close()`` it.
        """
        from repro.serve.fabric import ServingFabric

        return ServingFabric(self.inv, banks, **config)

    # ------------------------------------------------------------------
    def report(self) -> Dict[str, float]:
        """Serving timers plus the shared streaming-engine footprint."""
        out: Dict[str, float] = dict(self.timers.as_dict())
        # Peek at this server's memoized engine without creating one.
        eng = self.inv._streaming.get(self.backend.key())
        out["backend_is_exact"] = float(self.backend.is_exact)
        out["backend_screen_rtol"] = float(self.backend.screen_rtol)
        out["streaming_slots_advanced"] = float(eng.k_geom if eng else 0)
        out["streaming_horizons_cached"] = float(eng.horizons_cached if eng else 0)
        out["streaming_cov_cache_limit"] = float(eng.cov_cache_limit if eng else 0)
        out["streaming_cov_cache_bytes"] = float(eng.cov_cache_nbytes() if eng else 0)
        out["streaming_state_bytes"] = float(eng.state_nbytes() if eng else 0)
        out["identifier_banks_cached"] = float(len(self._identifiers))
        return out
