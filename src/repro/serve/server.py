"""BatchedPhase4Server: many concurrent Phase-4 solves as one BLAS-3 pass.

The online phase for a single event is two triangular solves, one FFT
rmatvec, and one small dense matvec (paper Section V-B / Table III Phase 4).
A serving deployment sees *many* events and what-if scenarios at once, and
every per-stream solve shares the same precomputed operators — so the
server stacks the ``k`` observation streams into one ``(Nt*Nd, k)``
right-hand-side block and replaces ``k`` BLAS-2 sweeps (``trsv``/``gemv``)
with single BLAS-3 calls (``trsm``/``gemm``), plus one batched FFT rmatvec
for all MAP fields.  Per-stream results are unchanged (verified to
near-machine precision against sequential
:meth:`~repro.inference.bayes.ToeplitzBayesianInversion.infer` /
``predict`` by the test suite); only the arithmetic intensity changes.

The same batching applies to the streaming early-warning path: for each
partial-data horizon ``k_slots`` the leading Cholesky block and the
truncated data-to-QoI map are formed once and applied to *all* streams,
so a whole fleet of concurrent events advances one observation slot per
pair of triangular solves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.inference.bayes import ToeplitzBayesianInversion
from repro.inference.forecast import QoIForecast
from repro.twin.earlywarning import (
    AlertLevel,
    EarlyWarningDecision,
    decide_alert,
    partial_qoi_operators,
)
from repro.util.timing import TimerRegistry

__all__ = ["ServeResult", "BatchedPhase4Server"]


@dataclass
class ServeResult:
    """Outputs of one batched serving pass over ``k`` streams.

    Attributes
    ----------
    m_map:
        MAP parameter fields, ``(Nt, Nm, k)``.
    forecasts:
        One :class:`~repro.inference.forecast.QoIForecast` per stream (the
        covariance object is shared — it depends on geometry, not data).
    decisions:
        Per-stream alert decisions, when thresholds were supplied.
    """

    m_map: np.ndarray
    forecasts: List[QoIForecast]
    decisions: Optional[List[EarlyWarningDecision]] = None

    @property
    def n_streams(self) -> int:
        """Number of concurrent streams served."""
        return int(self.m_map.shape[2])


class BatchedPhase4Server:
    """Multi-stream Phase-4 server over one precomputed geometry.

    Parameters
    ----------
    inv:
        A fully-assembled inversion (Phases 2-3 complete), e.g. from an
        :class:`~repro.serve.cache.OperatorCache`.
    """

    def __init__(
        self,
        inv: ToeplitzBayesianInversion,
        timers: Optional[TimerRegistry] = None,
    ) -> None:
        if not inv.phase2_complete:
            raise RuntimeError("Phase 2 must be complete before serving")
        self.inv = inv
        self.nt, self.nd, self.nm = inv.nt, inv.nd, inv.nm
        self.nq = inv.nq
        self.timers = timers if timers is not None else TimerRegistry()
        self._L: Optional[np.ndarray] = None
        # Per-horizon streaming operators: k_slots -> (Q_k, cov_k).
        self._partial: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}

    # ------------------------------------------------------------------
    # Input handling
    # ------------------------------------------------------------------
    def stack_streams(
        self, streams: Union[np.ndarray, Sequence[np.ndarray]]
    ) -> np.ndarray:
        """Normalize input to ``(Nt, Nd, k)``: one array or a list of streams."""
        if isinstance(streams, np.ndarray):
            D = np.asarray(streams, dtype=np.float64)
            if D.ndim == 2:
                D = D[:, :, None]
        else:
            D = np.stack(
                [np.asarray(s, dtype=np.float64) for s in streams], axis=-1
            )
        if D.ndim != 3 or D.shape[:2] != (self.nt, self.nd):
            raise ValueError(
                f"streams must stack to ({self.nt},{self.nd},k), got {D.shape}"
            )
        return D

    # ------------------------------------------------------------------
    # Full-data batched Phase 4
    # ------------------------------------------------------------------
    def infer_batch(
        self, streams: Union[np.ndarray, Sequence[np.ndarray]]
    ) -> np.ndarray:
        """Batched Phase 4a: all MAP fields ``(Nt, Nm, k)`` in one pass."""
        D = self.stack_streams(streams)
        with self.timers.time("serve: infer batch"):
            return self.inv.infer(D)

    def predict_batch(
        self,
        streams: Union[np.ndarray, Sequence[np.ndarray]],
        times: Optional[np.ndarray] = None,
    ) -> List[QoIForecast]:
        """Batched Phase 4b: all QoI forecasts from one ``gemm``.

        ``Q @ [d_1 ... d_k]`` replaces ``k`` matvecs; the exact posterior
        covariance is geometry-only, so a single covariance matrix is
        shared by every returned forecast.
        """
        if self.inv.Q is None or self.inv.qoi_covariance is None:
            raise RuntimeError("Phase 3 must be complete before predictions")
        D = self.stack_streams(streams)
        k = D.shape[2]
        with self.timers.time("serve: predict batch"):
            qs = self.inv.Q @ D.reshape(self.nt * self.nd, k)
        if times is None:
            times = np.arange(1, self.nt + 1, dtype=np.float64)
        cov = self.inv.qoi_covariance
        return [
            QoIForecast(
                times=times, mean=qs[:, j].reshape(self.nt, self.nq), covariance=cov
            )
            for j in range(k)
        ]

    def serve(
        self,
        streams: Union[np.ndarray, Sequence[np.ndarray]],
        times: Optional[np.ndarray] = None,
        thresholds: Optional[Tuple[float, float, float]] = None,
        probability: float = 0.5,
    ) -> ServeResult:
        """One full serving pass: MAP fields, forecasts, optional alerts."""
        D = self.stack_streams(streams)
        m_map = self.infer_batch(D)
        forecasts = self.predict_batch(D, times=times)
        decisions = None
        if thresholds is not None:
            adv, watch, warn = thresholds
            decisions = [
                decide_alert(fc, adv, watch, warn, probability) for fc in forecasts
            ]
        return ServeResult(m_map=m_map, forecasts=forecasts, decisions=decisions)

    # ------------------------------------------------------------------
    # Streaming partial-data serving
    # ------------------------------------------------------------------
    def _partial_ops(self, k_slots: int) -> Tuple[np.ndarray, np.ndarray]:
        """Per-horizon ``(Q_k, cov_k)``, formed once and memoized.

        ``(Q_k, cov_k)`` from
        :func:`~repro.twin.earlywarning.partial_qoi_operators` — the same
        implementation the single-event ``StreamingInverter`` uses — so
        the batched and per-event streaming paths cannot diverge.
        """
        cached = self._partial.get(k_slots)
        if cached is not None:
            return cached
        if self._L is None:
            self._L = self.inv.cholesky_lower
        ops = partial_qoi_operators(self.inv, k_slots, L=self._L)
        self._partial[k_slots] = ops
        return ops

    def forecast_partial_batch(
        self,
        streams: Union[np.ndarray, Sequence[np.ndarray]],
        k_slots: int,
        times: Optional[np.ndarray] = None,
    ) -> List[QoIForecast]:
        """Partial-data forecasts for every stream from one ``gemm``."""
        D = self.stack_streams(streams)
        Qk, cov = self._partial_ops(k_slots)
        n = k_slots * self.nd
        with self.timers.time("serve: stream batch"):
            qs = Qk @ D[:k_slots].reshape(n, D.shape[2])
        if times is None:
            times = np.arange(1, self.nt + 1, dtype=np.float64)
        return [
            QoIForecast(
                times=times, mean=qs[:, j].reshape(self.nt, self.nq), covariance=cov
            )
            for j in range(D.shape[2])
        ]

    def warning_latencies(
        self,
        streams: Union[np.ndarray, Sequence[np.ndarray]],
        advisory: float,
        watch: float,
        warning: float,
        probability: float = 0.5,
        level: AlertLevel = AlertLevel.WARNING,
    ) -> Tuple[List[Optional[int]], List[List[EarlyWarningDecision]]]:
        """Streaming alert latency for every stream in one sweep.

        Advances all streams slot-by-slot; each horizon costs one pair of
        triangular solves (shared) plus one ``gemm`` over the fleet.
        Returns per-stream first-firing slots (``None`` if never) and the
        per-slot decisions, ``decisions[slot][stream]``.
        """
        D = self.stack_streams(streams)
        k = D.shape[2]
        latencies: List[Optional[int]] = [None] * k
        all_decisions: List[List[EarlyWarningDecision]] = []
        for k_slots in range(1, self.nt + 1):
            fcs = self.forecast_partial_batch(D, k_slots)
            row = [
                decide_alert(fc, advisory, watch, warning, probability) for fc in fcs
            ]
            all_decisions.append(row)
            for j, dec in enumerate(row):
                if latencies[j] is None and dec.max_level() >= level:
                    latencies[j] = k_slots
        return latencies, all_decisions

    # ------------------------------------------------------------------
    def report(self) -> Dict[str, float]:
        """Serving timers plus memoized streaming-operator footprint."""
        out: Dict[str, float] = dict(self.timers.as_dict())
        out["partial_horizons_cached"] = float(len(self._partial))
        out["partial_cache_bytes"] = float(
            sum(
                q.nbytes + c.nbytes
                for q, c in self._partial.values()
                if q is not self.inv.Q  # full horizon aliases Phase 3 storage
            )
        )
        return out
