"""Typed, versioned stage messages and the shard wire codec.

The fabric's control plane is a handful of small messages — bank-state
build/adopt/detach, the screen/exact/mixture stages, channel kill/stop,
and the ack/error replies.  This module gives each one a typed,
versioned dataclass plus one codec that frames a message together with
its data-plane arrays:

``[magic][u32 header length][JSON header][raw array bytes...]``

The JSON header carries the protocol version, the message type tag, the
scalar fields, and an ordered array manifest ``(name, dtype, shape)``;
the array bytes follow contiguously in manifest order.  Transports add
their own outer framing (length prefix on sockets; shared-memory
channels skip the codec entirely and pass segment *specs* instead —
pure data either way, no processes or sockets live here).

The per-request scratch block — fleet states + per-slot norms + slot
sketches, the only per-stream payload a remote shard needs — is packed
by :func:`pack_scratch`; :func:`scratch_nbytes` sizes it (the
``docs/SERVING.md`` wire-payload table is computed from it).
"""

from __future__ import annotations

import dataclasses
import json
import struct
from dataclasses import dataclass
from typing import ClassVar, Dict, Mapping, Optional, Tuple

import numpy as np

__all__ = [
    "Ack",
    "AdoptShard",
    "BuildShard",
    "DetachBank",
    "ErrorReply",
    "ExactStage",
    "Hello",
    "JournalSettle",
    "JournalSubmit",
    "KillChannel",
    "MixtureStage",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "RetuneSketch",
    "ScreenStage",
    "Stop",
    "decode_message",
    "encode_message",
    "pack_scratch",
    "scratch_nbytes",
]

PROTOCOL_VERSION = 1

_MAGIC = b"RSPC"  # Repro Shard Protocol Codec


class ProtocolError(RuntimeError):
    """A frame that cannot be decoded: bad magic, version, or type tag."""


_MESSAGE_TYPES: Dict[str, type] = {}


def _register(cls):
    _MESSAGE_TYPES[cls.TYPE] = cls
    return cls


@dataclass(frozen=True)
class Message:
    """Base class of every wire message (scalar fields only; arrays ride
    the frame's data plane)."""

    TYPE: ClassVar[str] = ""
    # Fields holding optional numpy arrays; the codec moves them into the
    # data plane under a reserved "@field" name and restores them on decode.
    _array_fields: ClassVar[Tuple[str, ...]] = ()


@_register
@dataclass(frozen=True)
class Hello(Message):
    """Channel handshake: versions, geometry, and screen tolerance.

    Sent once per connection before any stage; its frame carries the
    static arrays (Cholesky factor, cumulative log-diagonal, sketch
    projections) the shard needs to serve every later stage.
    """

    TYPE: ClassVar[str] = "hello"
    nd: int = 0
    nt: int = 0
    screen_rtol: float = 0.0
    sketch_rank: int = 0


@_register
@dataclass(frozen=True)
class BuildShard(Message):
    """Attach bank ``key`` columns ``[c0, c1)`` to this channel.

    Over shared memory the frame is translated to segment specs and the
    worker *builds* its shard from the shared factor; over TCP the frame
    ships the parent-built state slices (the parent always builds the
    full state for its graceful-degradation fallback, and shipping the
    built slices keeps remote state bitwise equal to it).
    """

    TYPE: ClassVar[str] = "build"
    key: str = ""
    c0: int = 0
    c1: int = 0
    # When False the builder skips the sketch projection even though the
    # bank carries sketch segments — the parent projects afterwards with
    # a data-dependent (bank-PCA) basis workers cannot derive from the
    # static seeded draw.  TCP builds ignore it (the parent always builds
    # and ships the finished slices).
    build_sketch: bool = True


@_register
@dataclass(frozen=True)
class AdoptShard(Message):
    """Re-register an *already built* shard after a channel respawn
    (fire-and-forget; never rebuilds)."""

    TYPE: ClassVar[str] = "adopt"
    key: str = ""
    c0: int = 0
    c1: int = 0


@_register
@dataclass(frozen=True)
class DetachBank(Message):
    """Drop bank ``key`` from the channel (eviction; fire-and-forget)."""

    TYPE: ClassVar[str] = "detach"
    key: str = ""


@_register
@dataclass(frozen=True)
class ScreenStage(Message):
    """Stage 1: certified evidence bounds over this channel's columns."""

    TYPE: ClassVar[str] = "screen"
    req_id: int = 0
    key: str = ""
    n_streams: int = 0
    slots: Tuple[int, ...] = ()
    use_sketch: bool = True
    c0: int = 0
    c1: int = 0


@_register
@dataclass(frozen=True, eq=False)
class ExactStage(Message):
    """Stage 2: exact log-evidence over surviving columns (``cols`` is an
    absolute column index array, or ``None`` for the whole shard)."""

    TYPE: ClassVar[str] = "exact"
    _array_fields: ClassVar[Tuple[str, ...]] = ("cols",)
    req_id: int = 0
    key: str = ""
    n_streams: int = 0
    cols: Optional[np.ndarray] = None
    c0: int = 0
    c1: int = 0


@_register
@dataclass(frozen=True)
class MixtureStage(Message):
    """Partial forecast-mixture moments over this channel's columns."""

    TYPE: ClassVar[str] = "mixture"
    req_id: int = 0
    key: str = ""
    n_streams: int = 0
    shard_idx: int = 0
    c0: int = 0
    c1: int = 0


@_register
@dataclass(frozen=True)
class RetuneSketch(Message):
    """Rank renegotiation: the fabric's controller adopted a new sketch
    rank; every channel must swap to the new static sketch arrays before
    the next stage.  Over shared memory the transport translates this to
    new segment specs (the worker re-attaches ``P``/``wd_p``/``wd_psq``
    and rebuilds its :class:`~repro.serve.sketch.SlotSketch` from the new
    projections); over TCP no static sketch state lives remotely — the
    parent refreshes its views and re-ships each bank's projections via
    :class:`AdoptShard` — so the message is bookkeeping (the new rank).
    ``mode`` travels for observability; the certificate never reads it.
    """

    TYPE: ClassVar[str] = "retune"
    rank: int = 0
    mode: str = "gaussian"


@_register
@dataclass(frozen=True)
class KillChannel(Message):
    """Chaos fault: the peer drops the channel without replying."""

    TYPE: ClassVar[str] = "kill"


@_register
@dataclass(frozen=True)
class Stop(Message):
    """Graceful channel shutdown."""

    TYPE: ClassVar[str] = "stop"


@_register
@dataclass(frozen=True)
class Ack(Message):
    """Stage completion; ``req_id`` echoes the request (an ``int`` for
    stages, ``("attach", key)`` for builds).  A TCP ack's frame carries
    the stage's result arrays (bounds / evidence / moments) for the
    transport to scatter."""

    TYPE: ClassVar[str] = "ack"
    req_id: object = None


@_register
@dataclass(frozen=True)
class ErrorReply(Message):
    """Stage failure on the peer; the parent retires the channel, fails
    the stage over to a surviving replica of the shard, and recomputes
    locally only when no replica remains."""

    TYPE: ClassVar[str] = "error"
    req_id: object = None
    message: str = ""


@_register
@dataclass(frozen=True, eq=False)
class JournalSubmit(Message):
    """Gateway journal record: one accepted submission, appended (and
    fsynced) *before* the request enters the fabric queue.  Carries the
    observation stream in the data plane plus everything needed to
    resubmit after a gateway crash; ``idem_key`` is empty when the client
    sent none."""

    TYPE: ClassVar[str] = "journal_submit"
    _array_fields: ClassVar[Tuple[str, ...]] = ("stream",)
    seq: int = 0
    idem_key: str = ""
    k_slots: int = 0
    bank: str = ""
    op: str = "identify"
    stream: Optional[np.ndarray] = None


@_register
@dataclass(frozen=True)
class JournalSettle(Message):
    """Gateway journal record: submission ``seq`` settled (delivered to
    its future).  Recovery replays only submits with no matching settle;
    replayed settlements are journaled under the *original* ``seq`` so a
    crash mid-replay stays idempotent."""

    TYPE: ClassVar[str] = "journal_settle"
    seq: int = 0
    status: str = "ok"
    reason: str = ""


# ----------------------------------------------------------------------
# Codec
# ----------------------------------------------------------------------
def encode_message(
    msg: Message, arrays: Optional[Mapping[str, np.ndarray]] = None
) -> bytes:
    """Frame one message plus its data-plane arrays into bytes.

    Array-typed message fields (e.g. ``ExactStage.cols``) are moved into
    the data plane automatically; ``arrays`` adds the stage payload
    (scratch block, state slices, result arrays).  The frame is
    self-delimiting given its total length — transports add the outer
    length prefix.
    """
    fields = {}
    payload: Dict[str, np.ndarray] = {}
    for f in dataclasses.fields(msg):
        v = getattr(msg, f.name)
        if f.name in msg._array_fields:
            if v is not None:
                payload["@" + f.name] = np.ascontiguousarray(v)
        else:
            fields[f.name] = v
    for k, v in (arrays or {}).items():
        payload[k] = np.ascontiguousarray(v)
    manifest = [
        {"name": k, "dtype": a.dtype.str, "shape": list(a.shape)}
        for k, a in payload.items()
    ]
    header = json.dumps(
        {
            "v": PROTOCOL_VERSION,
            "type": msg.TYPE,
            "fields": fields,
            "arrays": manifest,
        },
        separators=(",", ":"),
    ).encode("utf-8")
    parts = [_MAGIC, struct.pack(">I", len(header)), header]
    parts.extend(a.tobytes() for a in payload.values())
    return b"".join(parts)


def _detuple(value):
    """JSON round-trips tuples as lists; messages only ever carry tuples."""
    if isinstance(value, list):
        return tuple(_detuple(v) for v in value)
    return value


def decode_message(frame: bytes) -> Tuple[Message, Dict[str, np.ndarray]]:
    """Inverse of :func:`encode_message`.

    Returns ``(message, arrays)`` with freshly-copied writable arrays.
    Raises :class:`ProtocolError` on *every* corruption mode — bad magic,
    truncated frame, undecodable header, protocol version mismatch,
    unknown message type, or a data plane shorter than its manifest —
    never a bare ``struct``/``json``/``numpy`` error and never a hang.
    Version skew or a torn frame must fail loudly at the first byte, not
    corrupt state mid-stage (and the gateway journal reader relies on
    this to skip a torn tail entry instead of crashing recovery).
    """
    if len(frame) < 8:
        raise ProtocolError(f"truncated frame: {len(frame)} bytes")
    if frame[:4] != _MAGIC:
        raise ProtocolError(f"bad frame magic {frame[:4]!r}")
    (hlen,) = struct.unpack(">I", frame[4:8])
    if 8 + hlen > len(frame):
        raise ProtocolError(
            f"truncated frame: header claims {hlen} bytes, "
            f"{len(frame) - 8} present"
        )
    try:
        header = json.loads(frame[8 : 8 + hlen].decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError(f"undecodable frame header: {exc}") from None
    if not isinstance(header, dict):
        raise ProtocolError(f"malformed frame header: {type(header).__name__}")
    if header.get("v") != PROTOCOL_VERSION:
        raise ProtocolError(
            f"protocol version mismatch: peer speaks {header.get('v')!r}, "
            f"this build speaks {PROTOCOL_VERSION}"
        )
    cls = _MESSAGE_TYPES.get(header.get("type"))
    if cls is None:
        raise ProtocolError(f"unknown message type {header.get('type')!r}")
    arrays: Dict[str, np.ndarray] = {}
    off = 8 + hlen
    try:
        for ent in header["arrays"]:
            dtype = np.dtype(ent["dtype"])
            shape = tuple(ent["shape"])
            count = int(np.prod(shape)) if shape else 1
            if off + count * dtype.itemsize > len(frame):
                raise ProtocolError(
                    f"truncated data plane: array {ent['name']!r} needs "
                    f"{count * dtype.itemsize} bytes past offset {off}, "
                    f"frame is {len(frame)}"
                )
            arr = np.frombuffer(frame, dtype=dtype, count=count, offset=off)
            arrays[ent["name"]] = arr.reshape(shape).copy()
            off += count * dtype.itemsize
        fields = {k: _detuple(v) for k, v in header["fields"].items()}
        for name in cls._array_fields:
            fields[name] = arrays.pop("@" + name, None)
        return cls(**fields), arrays
    except ProtocolError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed frame manifest/fields: {exc}") from None


# ----------------------------------------------------------------------
# Per-request scratch block
# ----------------------------------------------------------------------
_SCRATCH_COLKEYS = ("wd", "wd_slot")
_SKETCH_COLKEYS = ("wd_p", "wd_psq")


def pack_scratch(
    static: Mapping[str, np.ndarray], J: int, use_sketch: bool
) -> Dict[str, np.ndarray]:
    """The per-request scratch block for ``J`` streams, as codec arrays.

    Fleet states ``wd``, per-slot norms ``wd_slot``, total norms ``wsq``,
    horizons ``hz`` — plus the slot-sketch projections ``wd_p`` /
    ``wd_psq`` when the sketch screen is active.  This is everything a
    remote shard needs per request; bank state was shipped at attach.
    """
    out = {
        "wd": static["wd"][:, :J],
        "wd_slot": static["wd_slot"][:, :J],
        "wsq": static["wsq"][:J],
        "hz": static["hz"][:J],
    }
    if use_sketch and "wd_p" in static:
        out["wd_p"] = static["wd_p"][:, :J]
        out["wd_psq"] = static["wd_psq"][:, :J]
    return out


def scratch_nbytes(nt: int, nd: int, J: int, sketch_rank: int = 0) -> int:
    """Bytes of the packed per-request scratch block for ``J`` streams."""
    n = 8 * (nt * nd * J + nt * J + J) + 8 * J  # wd + wd_slot + wsq + hz
    if sketch_rank > 0:
        n += 8 * (nt * sketch_rank * J + nt * J)  # wd_p + wd_psq
    return n
