"""Certified sketch-screen layer: interval arithmetic on whitened states.

This module is the *one* place the serving layer brackets truncated-data
log-evidences from partial information — the screening/bounding machinery
that used to live inline in :mod:`repro.serve.fabric`, refactored out so
the flat identifier (:mod:`repro.serve.identify`), the incremental fleet
(:mod:`repro.inference.streaming`), and the sharded fabric all route
through the same functions and therefore make *identical certified
decisions by construction*.

Two bounding regimes, one implementation (:func:`certified_bounds`):

**Norm-only brackets (PR 4).**
    For an observation slot ``t`` the screen omits, the triangle
    inequality on the per-slot whitened norms ``a_t = ||w_t(d)||``,
    ``b_ts = ||w_t(mu_s)||`` brackets the residual block::

        (a_t - b_ts)^2  <=  ||w_t(d) - w_t(mu_s)||^2  <=  (a_t + b_ts)^2

    — scalar work per (stream, scenario, slot), but blind to the residual
    *direction*: the interval width is ``4 a_t b_ts`` however aligned the
    states are, and diverse micro-batches union their candidate sets away
    (``FabricReport.screen_fallback``).

**Sketch-tightened brackets.**
    A :class:`SlotSketch` holds one ``r x Nd`` projection per slot with
    *orthonormal rows* ``P_t`` — either a seeded Gaussian draw pushed
    through QR (the Johnson–Lindenstrauss shape, made deterministic;
    ``mode="gaussian"``) or the top-``r`` left singular vectors of the
    bank's whitened slot blocks (``mode="pca"``, :func:`pca_basis`).
    Orthonormality splits every whitened vector exactly::

        ||v||^2 = ||P_t v||^2 + ||v_perp||^2,   v_perp = (I - P_t^T P_t) v

    so for the residual ``v = w_t(d) - w_t(mu_s)`` the projected part
    ``||P_t w_t(d) - P_t w_t(mu_s)||^2`` is computed *exactly* from the
    ``r``-dimensional sketches (inner products included — this is where
    the direction information lives), and only the orthogonal remainder
    is bracketed by the triangle inequality on the *residual* norms
    ``alpha_t = sqrt(a_t^2 - ||P_t w_t(d)||^2)`` (resp. ``beta_ts``).
    The bracket width shrinks from ``4 a_t b_ts`` to
    ``4 alpha_t beta_ts`` — a deterministic certificate, valid for every
    draw of ``P``; the seed only controls how much residual energy the
    sketch captures (``~ r/Nd`` of it for isotropic residuals, more when
    energy concentrates).  Cost: ``O(r)`` per (stream, scenario, slot)
    instead of ``O(Nd)`` exact work.

**Bank-PCA projections (data-dependent tightening).**
    The certificate above is valid for *any* orthonormal ``P_t`` — the
    basis only controls how much energy the orthogonal remainder
    carries.  :func:`pca_basis` therefore builds ``P_t`` from the
    top-``r`` eigenvectors of the bank's per-slot Gram
    ``G_t = W_t W_t^T`` (``W_t`` = the slot-``t`` block rows of the
    bank's whitened states) — the top-``r`` *left singular vectors* of
    ``W_t``.  By Eckart–Young this minimizes the bank-side remainder
    energy ``sum_s beta_ts^2`` over all rank-``r`` orthonormal bases, so
    at equal ``r`` the bracket width ``4 alpha_t beta_ts`` is
    systematically tighter than a generic Gaussian draw whenever the
    bank's slot blocks carry low-rank structure (they do: scenario means
    vary smoothly with source parameters).  The Gram accumulation is
    chunked on absolute :data:`COL_BLOCK` boundaries and the
    eigendecomposition is sign-canonicalized, so the basis is a pure
    deterministic function of the bank state — every shard layout and
    both transports see bitwise the same projections.

Everything bank-indexed is chunked on absolute :data:`COL_BLOCK` column
boundaries, so a shard holding scenario columns ``[c0, c1)``
(block-aligned) issues bitwise the same BLAS calls as a flat pass over
those columns — certified decisions cannot depend on the shard layout.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.backend import Backend, resolve_backend

__all__ = [
    "COL_BLOCK",
    "SlotSketch",
    "certified_bounds",
    "pca_basis",
    "select_screen_slots",
]

_LOG_2PI = float(np.log(2.0 * np.pi))

#: Column block size for all bank-side accumulation (state builds, sketch
#: builds, per-slot cross gemms, screen bounds).  Chunking on *absolute*
#: multiples of this makes the arithmetic **shard-invariant**: a worker
#: holding scenario columns ``[c0, c1)`` (block-aligned) issues bitwise
#: the same BLAS calls as the flat identifier does for those columns, so
#: sharded and single-process results — evidences *and* certified screen
#: decisions — agree exactly by construction, independent of how a
#: particular BLAS blocks wide gemms.
COL_BLOCK = 256


class SlotSketch:
    """Seeded per-slot orthonormal projections of whitened state blocks.

    Parameters
    ----------
    nt, nd:
        Observation-slot count and per-slot sensor dimension of the
        whitened state space.
    rank:
        Sketch rank ``r`` per slot, ``1 <= r <= Nd``.  ``r = Nd`` makes
        the screen bounds exact (the orthogonal remainder vanishes).
    seed:
        Seed of the projection draw.  Slot ``t`` uses
        ``SeedSequence((seed, t))``, so sketches are reproducible across
        processes — the fabric's workers and the flat identifier build
        *the same* projections from ``(nt, nd, rank, seed)`` alone.
    matrix:
        Internal: adopt an existing stacked projection ``(nt * r, nd)``
        (e.g. a shared-memory view in a fabric worker, or a
        :func:`pca_basis` result) instead of drawing one.
    mode:
        ``"gaussian"`` (the seeded QR draw) or ``"pca"`` (a
        data-dependent bank basis).  PCA projections depend on a bank
        state, so they are built via :meth:`from_bank` (or adopted via
        ``matrix=``); constructing ``mode="pca"`` without a matrix
        raises.  The mode is bookkeeping for everything downstream —
        the certificate in :func:`certified_bounds` never looks at it.
    backend:
        Array backend for the bank-projection gemms (``None`` = numpy).
        The projection *draw* is always a host numpy QR regardless of the
        backend, so ``(nt, nd, rank, seed)`` reproduce identical
        projections everywhere; only the ``P_t @ W`` products move to the
        device, and :meth:`project_bank` always exports host arrays.

    Notes
    -----
    Each ``P_t`` has orthonormal *rows* (QR of a Gaussian ``(Nd, r)``
    draw, transposed), so ``||P_t v|| <= ||v||`` with equality exhausted
    at ``r = Nd`` — the property :func:`certified_bounds` relies on.
    """

    def __init__(
        self,
        nt: int,
        nd: int,
        rank: int,
        seed: int = 0,
        matrix: Optional[np.ndarray] = None,
        backend: Union[Backend, str, None] = None,
        mode: str = "gaussian",
    ) -> None:
        self.backend = resolve_backend(backend)
        self._P_dev = None  # lazy device copy for non-numpy backends
        if not 1 <= int(rank) <= int(nd):
            raise ValueError(f"sketch rank must lie in [1, {nd}], got {rank}")
        if mode not in ("gaussian", "pca"):
            raise ValueError(f"sketch mode must be 'gaussian' or 'pca', got {mode!r}")
        if mode == "pca" and matrix is None:
            raise ValueError(
                "mode='pca' projections are data-dependent: build them with "
                "SlotSketch.from_bank(...) or adopt a pca_basis via matrix="
            )
        self.mode = mode
        self.nt, self.nd, self.rank, self.seed = int(nt), int(nd), int(rank), int(seed)
        if matrix is not None:
            P = np.asarray(matrix, dtype=np.float64)
            if P.shape != (self.nt * self.rank, self.nd):
                raise ValueError(
                    f"projection matrix must be ({self.nt * self.rank},{self.nd}), "
                    f"got {P.shape}"
                )
        else:
            P = np.empty((self.nt * self.rank, self.nd))
            for t in range(self.nt):
                rng = np.random.default_rng(np.random.SeedSequence((self.seed, t)))
                G = rng.standard_normal((self.nd, self.rank))
                Q, _ = np.linalg.qr(G)  # (Nd, r), orthonormal columns
                P[t * self.rank : (t + 1) * self.rank] = Q.T
        self.P = P

    @classmethod
    def from_bank(
        cls,
        W: np.ndarray,
        nt: int,
        nd: int,
        rank: int,
        backend: Union[Backend, str, None] = None,
    ) -> "SlotSketch":
        """A ``mode="pca"`` sketch whose basis is :func:`pca_basis` of ``W``.

        ``W`` is the bank's whitened state ``(Nt * Nd, S)`` (the same
        array :meth:`project_bank` consumes).  The basis is computed on
        the host from host data regardless of ``backend`` — like the
        Gaussian draw, the projections themselves are bitwise-pinned;
        only the bank-projection gemms route through the backend.
        """
        basis = pca_basis(np.asarray(W, dtype=np.float64), nt, nd, rank)
        return cls(nt, nd, rank, matrix=basis, backend=backend, mode="pca")

    # ------------------------------------------------------------------
    @property
    def projections(self) -> np.ndarray:
        """The stacked projection ``(Nt * r, Nd)``; rows ``t*r:(t+1)*r`` are ``P_t``."""
        return self.P

    @property
    def nbytes(self) -> int:
        """Bytes held by the projection matrix."""
        return int(self.P.nbytes)

    def slot(self, t: int) -> np.ndarray:
        """The slot-``t`` projection ``P_t``, ``(r, Nd)`` view."""
        r = self.rank
        return self.P[t * r : (t + 1) * r]

    # ------------------------------------------------------------------
    def project_bank_columns(
        self,
        W: np.ndarray,
        out_proj: np.ndarray,
        out_psq: np.ndarray,
        c0: int,
        c1: int,
    ) -> None:
        """Sketch bank-state columns ``[c0, c1)`` of ``W`` into the outputs.

        ``W`` is a bank-side state block ``(Nt * Nd, S)``; writes the
        per-slot sketches ``P_t w_t`` into ``out_proj`` (``(Nt * r, S)``)
        and their squared norms ``||P_t w_t||^2`` into ``out_psq``
        (``(Nt, S)``).  Chunked on absolute :data:`COL_BLOCK` boundaries,
        so the flat identifier and a block-aligned fabric shard produce
        bitwise-identical sketches — this is the *single* bank-sketch
        build both paths call.

        All ``Nt`` slots of a block are projected by **one** batched gemm
        on the stacked projection reshaped ``(Nt, r, Nd)`` against the
        contiguous-staged block reshaped ``(Nt, Nd, block)`` — no
        per-slot Python loop.  The staging copy is the *same* copy the
        historical slot-by-slot build made, and on it the batched product
        issues the identical per-slot gemms, so the outputs are
        bitwise-identical to the historical loop (pinned, staging copy
        and all, by the regression test in
        ``tests/backend/test_project_bank.py`` — a strided no-copy
        operand is *not* bitwise-safe for degenerate block widths).  When
        the sketch carries a non-numpy backend *and* ``W`` is a device
        array, the same batched products run through the backend kernel
        table instead, under the backend's tolerance contract.
        """
        nt, nd, r = self.nt, self.nd, self.rank
        bk = self.backend
        native = (not bk.is_numpy) and bk.is_native(W)
        if native:
            if self._P_dev is None:
                self._P_dev = bk.asarray(self.P)
            P3 = self._P_dev.reshape(nt, r, nd)
            for b0 in range(c0, c1, COL_BLOCK):
                b1 = min(b0 + COL_BLOCK, c1)
                Wb = bk.ascontiguousarray(W[:, b0:b1]).reshape(nt, nd, b1 - b0)
                pb = bk.matmul(P3, Wb)  # (Nt, r, block)
                out_proj[:, b0:b1] = pb.reshape(nt * r, b1 - b0)
                out_psq[:, b0:b1] = bk.einsum("trj,trj->tj", pb, pb)
            return
        P3 = self.P.reshape(nt, r, nd)
        for b0 in range(c0, c1, COL_BLOCK):
            b1 = min(b0 + COL_BLOCK, c1)
            Wb = np.ascontiguousarray(W[:, b0:b1]).reshape(nt, nd, b1 - b0)
            pb = np.matmul(P3, Wb)  # (Nt, r, block)
            out_proj[:, b0:b1] = pb.reshape(nt * r, b1 - b0)
            out_psq[:, b0:b1] = np.einsum("trj,trj->tj", pb, pb)

    def project_bank(self, W: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Sketch a full bank state: returns ``(projected, slot_norms)``.

        ``projected`` is ``(Nt * r, S)`` and ``slot_norms`` the per-slot
        ``||P_t w_t(mu_s)||^2`` profile ``(Nt, S)``, both read-only host
        arrays (device banks are projected on the device, then exported).
        """
        bk = self.backend
        S = W.shape[1]
        native = (not bk.is_numpy) and bk.is_native(W)
        if native:
            proj = bk.empty((self.nt * self.rank, S))
            psq = bk.empty((self.nt, S))
            self.project_bank_columns(W, proj, psq, 0, S)
            proj = bk.to_numpy(proj, copy=True)
            psq = bk.to_numpy(psq, copy=True)
        else:
            proj = np.empty((self.nt * self.rank, S))
            psq = np.empty((self.nt, S))
            self.project_bank_columns(W, proj, psq, 0, S)
        proj.setflags(write=False)
        psq.setflags(write=False)
        return proj, psq


def pca_basis(W: np.ndarray, nt: int, nd: int, rank: int) -> np.ndarray:
    """Top-``rank`` per-slot left singular vectors of a bank state ``W``.

    ``W`` is ``(Nt * Nd, S)`` whitened bank states; returns the stacked
    projection ``(Nt * rank, Nd)`` whose rows ``t*r:(t+1)*r`` are the
    top-``r`` eigenvectors of the slot Gram ``G_t = W_t W_t^T``
    (descending eigenvalue order) — orthonormal rows, exactly the shape
    :class:`SlotSketch` adopts via ``matrix=``.

    Determinism contract (what lets PCA shards stay bitwise equal across
    layouts and transports):

    * the Grams accumulate in fixed order over absolute
      :data:`COL_BLOCK` column chunks, through the same
      contiguous-staging copy the bank projection uses — a function of
      the bank state alone, never of any shard decomposition;
    * ``eigh`` runs once per slot on the host from those Grams;
    * each eigenvector's sign is canonicalized (largest-magnitude
      component positive, first index on ties), removing the one
      degree of freedom LAPACK leaves unspecified.

    Degenerate slots are safe: a zero Gram (slot energy 0) yields an
    arbitrary orthonormal basis, which is certified like any other.
    """
    nt, nd, rank = int(nt), int(nd), int(rank)
    if not 1 <= rank <= nd:
        raise ValueError(f"sketch rank must lie in [1, {nd}], got {rank}")
    W = np.asarray(W, dtype=np.float64)
    if W.ndim != 2 or W.shape[0] != nt * nd:
        raise ValueError(f"bank state must be ({nt * nd}, S), got {W.shape}")
    S = W.shape[1]
    G = np.zeros((nt, nd, nd))
    for b0 in range(0, S, COL_BLOCK):
        b1 = min(b0 + COL_BLOCK, S)
        Wb = np.ascontiguousarray(W[:, b0:b1]).reshape(nt, nd, b1 - b0)
        G += np.matmul(Wb, Wb.transpose(0, 2, 1))
    # eigh returns ascending eigenvalues; take the trailing `rank`
    # columns in descending order.
    _, vecs = np.linalg.eigh(G)  # (Nt, Nd, Nd)
    top = vecs[:, :, ::-1][:, :, :rank]  # (Nt, Nd, rank), descending
    lead = np.argmax(np.abs(top), axis=1)  # (Nt, rank)
    signs = np.sign(np.take_along_axis(top, lead[:, None, :], axis=1))[:, 0, :]
    signs[signs == 0.0] = 1.0
    top = top * signs[:, None, :]
    return np.ascontiguousarray(top.transpose(0, 2, 1)).reshape(nt * rank, nd)


def select_screen_slots(
    slot_energy: np.ndarray, k_max: int, stride: int
) -> Tuple[int, ...]:
    """The ``1/stride`` highest-energy absorbed slots (data-adaptive screen).

    ``slot_energy`` is a per-slot energy profile (e.g. a fleet's
    :meth:`~repro.inference.streaming.StreamingFleet.slot_squared_norms`
    summed over streams); any subset keeps the certified bounds valid, so
    the selection is free to chase the wavefront arrivals — screening
    where the whitened energy concentrates leaves only low-information
    slots to the (cheap) brackets.  Shared by the fabric and the flat
    :meth:`~repro.serve.identify.IdentificationSession.evidence_interval`.
    """
    k_max = int(k_max)
    n_screen = max(1, -(-k_max // int(stride)))
    energy = np.asarray(slot_energy, dtype=np.float64)[:k_max]
    return tuple(sorted(np.argsort(-energy)[:n_screen].tolist()))


def certified_bounds(
    static: Mapping[str, np.ndarray],
    bankv: Mapping[str, np.ndarray],
    nd: int,
    J: int,
    slots: Sequence[int],
    c0: int,
    c1: int,
    rtol: float = 0.0,
) -> None:
    """Certified evidence intervals ``[lb, ub]`` for bank columns ``[c0, c1)``.

    The one screen implementation both the flat path and every fabric
    shard (worker *and* in-parent fallback) execute.  Inputs are dict
    views over (shared or local) arrays:

    ``static`` (stream side)
        ``wd`` ``(Nt*Nd, >=J)`` fleet states, ``wd_slot`` ``(Nt, >=J)``
        per-slot squared norms, ``hz`` ``(>=J,)`` horizons, ``logdiag``
        ``(Nt+1,)`` cumulative ``log diag L``; optionally ``wd_p``
        ``(Nt*r, >=J)`` per-slot sketches and ``wd_psq`` ``(Nt, >=J)``
        their squared norms.
    ``bankv`` (bank side)
        ``wmu`` ``(Nt*Nd, S)``, ``slot_musq`` ``(Nt, S)``, outputs ``lb``
        / ``ub`` ``(>=J, S)``; optionally ``pmu`` ``(Nt*r, S)`` and
        ``slot_psq`` ``(Nt, S)``.

    Slots in ``slots`` contribute their exact whitened residual (one
    small ``Nd`` gemm per slot); omitted slots are bracketed — sketch
    regime when the sketch arrays are present in *both* dicts, norm-only
    otherwise (see the module docstring for the arithmetic).  All
    bank-indexed products chunk on absolute :data:`COL_BLOCK` boundaries,
    so the written intervals are bitwise independent of the shard layout.
    Writes ``lb``/``ub`` rows ``[:J]``, columns ``[c0, c1)``, in place.

    ``rtol`` is the tolerance-certified contract for non-numpy backends:
    when the whitened states feeding this screen were produced by a
    backend with a nonzero kernel budget (``Backend.screen_rtol``), the
    brackets are widened by ``rtol * (|quad| + hi_add + |c_k| + 1)`` —
    the magnitude of every term entering the bound — so that screening
    decisions remain provably safe relative to the numpy-exact evidence.
    ``rtol = 0`` (the numpy contract) performs no extra arithmetic and is
    bitwise-identical to the historical screen.
    """
    Wd = static["wd"]
    hz = static["hz"][:J]
    nt = bankv["slot_musq"].shape[0]
    a2 = static["wd_slot"][:, :J].T  # (J, Nt)

    use_sketch = "pmu" in bankv and "wd_p" in static
    in_screen = np.zeros(nt, dtype=bool)
    in_screen[list(slots)] = True
    absorbed = np.arange(nt)[None, :] < hz[:, None]  # (J, Nt)
    m_scr = absorbed & in_screen[None, :]
    m_omit = (absorbed & ~in_screen[None, :]).astype(np.float64)

    w = c1 - c0
    quad_scr = np.zeros((J, w))
    cross = np.zeros((J, w))
    lo_add = np.zeros((J, w))
    hi_add = np.zeros((J, w))

    if use_sketch:
        Pd = static["wd_p"]
        r = Pd.shape[0] // nt
        p2d = static["wd_psq"][:, :J].T  # (J, Nt)
        # Orthogonal-remainder norms (clip rounding: ||P v|| <= ||v||).
        a2o = np.maximum(a2 - p2d, 0.0)
        ao = np.sqrt(a2o)
        sq_d_omit = (m_omit * a2o).sum(axis=1)[:, None]
        proj_d_omit = (m_omit * p2d).sum(axis=1)[:, None]
    else:
        ao = np.sqrt(a2)
        sq_d_omit = (m_omit * a2).sum(axis=1)[:, None]

    for b0 in range(c0, c1, COL_BLOCK):
        b1 = min(b0 + COL_BLOCK, c1)
        sl = slice(b0 - c0, b1 - c0)
        b2 = bankv["slot_musq"][:, b0:b1]  # (Nt, wb)

        # Exact contribution of the screened slots.
        for s in slots:
            idx = np.nonzero(hz > s)[0]
            if not idx.size:
                continue
            r0, r1 = s * nd, (s + 1) * nd
            cross[idx, sl] += Wd[r0:r1, idx].T @ bankv["wmu"][r0:r1, b0:b1]
        quad_scr[:, sl] = (m_scr * a2).sum(axis=1)[:, None] + (
            m_scr.astype(np.float64) @ b2
        )

        if use_sketch:
            # Exact projected residual over the omitted slots: the full
            # cumulative sketch cross term (slots beyond a stream's
            # horizon hold zero sketches, so they drop out for free)
            # minus the screened slots' blocks.
            p2b = bankv["slot_psq"][:, b0:b1]
            cross_p = Pd[:, :J].T @ bankv["pmu"][:, b0:b1]
            for s in slots:
                idx = np.nonzero(hz > s)[0]
                if not idx.size:
                    continue
                q0, q1 = s * r, (s + 1) * r
                cross_p[idx] -= Pd[q0:q1, idx].T @ bankv["pmu"][q0:q1, b0:b1]
            proj_omit = (
                proj_d_omit + (m_omit @ p2b) - 2.0 * cross_p
            )
            # Triangle-inequality bracket on the orthogonal remainder.
            b2o = np.maximum(b2 - p2b, 0.0)
            bo = np.sqrt(b2o)
            sq_terms = sq_d_omit + (m_omit @ b2o)
            ab = (m_omit * ao) @ bo
            lo_add[:, sl] = np.maximum(proj_omit + sq_terms - 2.0 * ab, 0.0)
            hi_add[:, sl] = proj_omit + sq_terms + 2.0 * ab
        else:
            b = np.sqrt(b2)
            sq_terms = sq_d_omit + (m_omit @ b2)
            ab = (m_omit * ao) @ b
            lo_add[:, sl] = sq_terms - 2.0 * ab
            hi_add[:, sl] = sq_terms + 2.0 * ab

    quad_scr -= 2.0 * cross
    c_k = static["logdiag"][hz] + 0.5 * (hz * nd) * _LOG_2PI
    bankv["ub"][:J, c0:c1] = -0.5 * (quad_scr + lo_add) - c_k[:, None]
    bankv["lb"][:J, c0:c1] = -0.5 * (quad_scr + hi_add) - c_k[:, None]
    if rtol:
        # Tolerance-certified inflation (non-numpy backends only): pad by
        # the declared relative budget times the magnitude of every term
        # that entered the bound.  hi_add >= |lo_add| always, so one pad
        # covers both sides.  Skipped entirely at rtol == 0 to keep the
        # numpy path bitwise-identical.
        pad = float(rtol) * (np.abs(quad_scr) + hi_add + np.abs(c_k)[:, None] + 1.0)
        bankv["ub"][:J, c0:c1] += pad
        bankv["lb"][:J, c0:c1] -= pad


def strip_sketch(views: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
    """A copy of an array-view dict without the sketch keys.

    Feeding the result to :func:`certified_bounds` forces the norm-only
    regime — used for per-request ``sketch=False`` overrides and for
    apples-to-apples fallback-rate measurements in the benchmarks.
    """
    return {
        k: v for k, v in views.items() if k not in ("pmu", "slot_psq", "wd_p", "wd_psq")
    }
