"""Shard stage kernels: pure functions over array views.

Each fabric stage — bank-state build, certified screen, exact evidence,
forecast-mixture moments — is one pure function over plain numpy views,
with **exactly one implementation** shared by every execution site:

* shared-memory workers (:func:`repro.serve.transport._worker_main`),
* TCP shard servers (:class:`repro.serve.transport.ShardServer`),
* the parent's in-process fallback when a shard's channel is lost
  (graceful degradation in :class:`repro.serve.fabric.ServingFabric`).

The functions chunk all bank-indexed gemms on *absolute*
:data:`repro.serve.sketch.COL_BLOCK` column boundaries, so any
block-aligned shard of the column space issues the same BLAS calls as
the flat single-process path — the root of the fabric's bitwise
equivalence contract.  They carry no transport or process state, which
is what lets the transport layer ship their inputs over shared memory
or sockets interchangeably.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np
import scipy.linalg as sla

from repro.serve import sketch as _sketch
from repro.serve.sketch import SlotSketch, certified_bounds, strip_sketch

__all__ = [
    "build_shard",
    "exact_shard",
    "mixture_shard",
    "screen_shard",
]

_LOG_2PI = float(np.log(2.0 * np.pi))


def build_shard(
    L: np.ndarray,
    mu: np.ndarray,
    wmu: np.ndarray,
    slot_musq: np.ndarray,
    musq_cum: np.ndarray,
    nd: int,
    c0: int,
    c1: int,
    sketch: Optional[SlotSketch] = None,
    pmu: Optional[np.ndarray] = None,
    slot_psq: Optional[np.ndarray] = None,
) -> None:
    """Build bank-state columns ``[c0, c1)`` from the shared Cholesky factor.

    Replicates the incremental per-slot forward substitution of
    :meth:`~repro.inference.streaming.StreamingFleet.advance` in
    :data:`~repro.serve.sketch.COL_BLOCK` column chunks — the same
    chunks, on the same absolute boundaries, with the same operand layouts
    as the flat :class:`~repro.serve.identify.ScenarioIdentifier` build —
    so the shard states are *bitwise identical* to a single-process build
    (``c0`` is block-aligned by construction of the shard map).  With a
    ``sketch``, the per-slot low-rank projections are built in the same
    pass through the shared
    :meth:`~repro.serve.sketch.SlotSketch.project_bank_columns` — again
    bitwise equal to the flat :meth:`ScenarioIdentifier.sketch` build.
    """
    nt = slot_musq.shape[0]
    block = _sketch.COL_BLOCK
    for b0 in range(c0, c1, block):
        b1 = min(b0 + block, c1)
        W = np.zeros((nt * nd, b1 - b0))
        idx = np.arange(b1 - b0)
        mu3 = mu[:, b0:b1].reshape(nt, nd, b1 - b0)
        for s in range(nt):
            r0, r1 = s * nd, (s + 1) * nd
            # The all-columns fancy index looks redundant next to a plain
            # slice, but it is load-bearing: advanced indexing on the
            # column axis yields an F-ordered copy — the exact operand
            # layout StreamingFleet.advance feeds its gemm — and BLAS
            # results differ bitwise between C- and F-ordered operands.
            # Mirroring the fleet's operands op-for-op is what makes the
            # shard states bitwise equal to the flat identifier's
            # (regression: tests/serve/test_fabric.py bitmatch suite).
            rhs = mu3[s][:, idx]
            if s:
                rhs = rhs - L[r0:r1, :r0] @ W[:r0, idx]
            W[r0:r1, idx] = sla.solve_triangular(L[r0:r1, r0:r1], rhs, lower=True)
        wmu[:, b0:b1] = W
        blocks = np.einsum(
            "tds,tds->ts",
            W.reshape(nt, nd, b1 - b0),
            W.reshape(nt, nd, b1 - b0),
        )
        slot_musq[:, b0:b1] = blocks
        musq_cum[0, b0:b1] = 0.0
        np.cumsum(blocks, axis=0, out=musq_cum[1:, b0:b1])
    if sketch is not None:
        sketch.project_bank_columns(wmu, pmu, slot_psq, c0, c1)


def screen_shard(
    static: Dict[str, np.ndarray],
    bankv: Dict[str, np.ndarray],
    nd: int,
    J: int,
    slots: Tuple[int, ...],
    c0: int,
    c1: int,
    use_sketch: bool = True,
    rtol: float = 0.0,
) -> None:
    """Stage 1: certified evidence bounds for columns ``[c0, c1)``.

    A thin dispatch into the shared certified-screen layer
    (:func:`repro.serve.sketch.certified_bounds`) — the *same* function
    the flat path's
    :meth:`~repro.serve.identify.IdentificationSession.evidence_interval`
    executes, so flat and sharded certified decisions are identical by
    construction.  ``use_sketch=False`` strips the sketch arrays and
    forces the norm-only brackets (per-request override, benchmark
    baselines).  ``rtol`` inflates the brackets by the fleet backend's
    certified kernel-error budget (``0`` on the bitwise numpy backend).
    Writes ``lb``/``ub`` in place.
    """
    if not use_sketch:
        bankv = strip_sketch(dict(bankv))
        static = strip_sketch(dict(static))
    certified_bounds(static, bankv, nd, J, slots, c0, c1, rtol=rtol)


def exact_shard(
    static: Dict[str, np.ndarray],
    bankv: Dict[str, np.ndarray],
    nd: int,
    J: int,
    cols: Optional[np.ndarray],
    c0: int,
    c1: int,
) -> None:
    """Stage 2: exact truncated-data log-evidence for (a subset of) columns.

    Accumulates the cross terms slot-by-slot in causal order, chunked on
    the same absolute :data:`~repro.serve.sketch.COL_BLOCK` column
    boundaries as
    :meth:`~repro.serve.identify.IdentificationSession._fold_new_slots` —
    so an unscreened pass is bitwise identical to the flat identifier.
    ``cols`` restricts the work to surviving candidate columns (stage 2
    after a screen).  Writes into ``ev`` in place.
    """
    Wd = static["wd"]
    hz = static["hz"][:J]
    wsq = static["wsq"][:J]
    if cols is not None and cols.size == 0:
        return
    if cols is None:
        wmu_full = bankv["wmu"]
        musq = bankv["musq_cum"][:, c0:c1]
        block = _sketch.COL_BLOCK
        cross = np.zeros((J, c1 - c0))
        for s in range(int(hz.max(initial=0))):
            idx = np.nonzero(hz > s)[0]
            if not idx.size:
                continue
            r0, r1 = s * nd, (s + 1) * nd
            Wd_s = Wd[r0:r1, idx].T
            for b0 in range(c0, c1, block):
                b1 = min(b0 + block, c1)
                cross[idx, b0 - c0 : b1 - c0] += Wd_s @ wmu_full[r0:r1, b0:b1]
    else:
        # Survivor columns only: copy each slot's (Nd, n_cols) block on the
        # fly instead of materializing the whole (Nt*Nd, n_cols) selection.
        wmu_full = bankv["wmu"]
        musq = bankv["musq_cum"][:, cols]
        cross = np.zeros((J, cols.size))
        for s in range(int(hz.max(initial=0))):
            idx = np.nonzero(hz > s)[0]
            if not idx.size:
                continue
            r0, r1 = s * nd, (s + 1) * nd
            cross[idx] += Wd[r0:r1, idx].T @ wmu_full[r0:r1, cols]
    quad = wsq[:, None] + musq[hz] - 2.0 * cross
    logdet_half = static["logdiag"][hz]
    const = 0.5 * (hz * nd) * _LOG_2PI
    ev = -0.5 * quad - (logdet_half + const)[:, None]
    if cols is None:
        bankv["ev"][:J, c0:c1] = ev
    else:
        bankv["ev"][:J, cols] = ev


def mixture_shard(
    Y: np.ndarray,
    static: Dict[str, np.ndarray],
    bankv: Dict[str, np.ndarray],
    outv: Dict[str, np.ndarray],
    nd: int,
    J: int,
    shard_idx: int,
    c0: int,
    c1: int,
) -> None:
    """Partial forecast-mixture moments over scenario columns ``[c0, c1)``.

    Per stream ``j`` at horizon ``k``, the scenario-conditioned forecast
    offsets of this shard's columns are ``delta_s = q_s - Y_k^T
    w_k(mu_s)`` (one gemm per distinct horizon against the shared
    geometry rows ``Y``), and the shard's contribution to the
    moment-matched mixture is the weighted partial moments

    ``m0 = sum_s p_js``, ``m1 = sum_s p_js delta_s``,
    ``m2 = sum_s p_js delta_s delta_s^T``

    written into this shard's slot of the transient output arrays.  The
    parent gathers: mixture mean ``= m0 q(d_j) + m1`` and
    between-scenario covariance ``= sum m2 - m1 m1^T`` added to the
    horizon's within-scenario posterior covariance — exactly the flat
    :meth:`~repro.serve.identify.IdentificationSession.forecast_mixture`
    moments, sharded.
    """
    hz = static["hz"][:J]
    qoi = bankv["qoi"][:, c0:c1]
    wmu = bankv["wmu"][:, c0:c1]
    probs = bankv["pr"][:J, c0:c1]
    for k in np.unique(hz):
        k = int(k)
        n_rows = k * nd
        delta = qoi - Y[:n_rows].T @ wmu[:n_rows]  # (Nb, w)
        for j in np.nonzero(hz == k)[0]:
            p = probs[j]
            outv["m0"][shard_idx, j] = p.sum()
            outv["m1"][shard_idx, :, j] = delta @ p
            outv["m2"][shard_idx, j] = (delta * p) @ delta.T
