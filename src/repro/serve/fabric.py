"""ServingFabric: sharded, hierarchical scenario identification at bank scale.

PR 3's streaming identifier is exact and incremental, but it is *flat*: one
process ranks every stream against every scenario, and the per-request cost
grows linearly in the bank size ``S``.  At the diverse-database scale argued
for by Nomura et al. (sequential Bayesian updating over databases of diverse
tsunami scenarios) — 1000+ scenarios per bank, several banks resident — a
serving deployment needs three more things, and this module provides all
three behind one object:

**Sharding over a transport seam.**
    A :class:`ServingFabric` splits each bank's column space into shards
    and drives them through a
    :class:`~repro.serve.transport.ShardTransport` — the *where* of shard
    state and the *how* of message delivery live entirely behind that
    seam.  The default
    :class:`~repro.serve.transport.SharedMemoryTransport` is the
    historical single-host path: worker processes over named
    shared-memory segments holding the data-space Cholesky factor ``L``,
    a per-request scratch block for the fleet states, and per-bank
    segments with the bank-side states ``w(mu_s) = L^{-1} mu_s`` and
    their per-slot/per-horizon norms; each worker builds its own shard
    from the shared factor at attach time.  A
    :class:`~repro.serve.transport.TcpTransport` spans hosts instead:
    the same typed stage messages (:mod:`repro.serve.protocol`) framed
    over length-prefixed sockets, with parent-built state slices shipped
    at attach and per-shard results scattered back from the acks.
    Either way every byte of shard state is parent-visible, so a lost
    channel degrades gracefully: the parent recomputes the missing shard
    in-process and the request still returns exact results (see
    ``FabricReport.workers_lost``).

**Two-stage hierarchical identification.**
    Stage 1 is a *coarse screen*: an evidence proxy per scenario computed
    from a subset of observation slots — the ``1/screen_stride`` fraction
    with the *highest whitened energy* in the batch (data-adaptive; any
    subset keeps the bounds valid) — using only per-slot norm blocks, the
    states a :class:`~repro.inference.streaming.StreamingFleet` already
    maintains (:meth:`~repro.inference.streaming.StreamingFleet.slot_squared_norms`)
    plus their bank-side counterparts.  Stage 2 runs PR 3's *exact*
    truncated-data evidence, but only on the surviving candidate columns.
    For the slots the screen omits, the shared certified-screen layer
    (:mod:`repro.serve.sketch`) brackets each scenario's whitened
    residual block — by the triangle inequality on per-slot norms alone,
    or, with ``sketch_rank > 0``, by the *sketch-tightened* interval:
    seeded per-slot low-rank projections make the projected residual
    (inner products included) exact and leave only the orthogonal
    remainder to the norm bracket, so diverse micro-batches keep sharp
    candidate sets instead of unioning into the full-exact fallback.
    Either way the proxy becomes a *certified interval* ``[lb, ub]``
    around the exact log-evidence with no ``Nd``-dimensional work for
    pruned scenarios.

**Certified equivalence.**
    In ``certified=True`` mode (the default) a scenario is pruned only if
    its evidence *upper* bound falls below the ``screen_top``-th largest
    *lower* bound, which proves — up to a tiny floating-point margin — that
    the exact top-``screen_top`` ranking over the survivors equals the
    exhaustive ranking over the whole bank.  ``certified=False`` keeps a
    fixed ``screen_top`` best-by-upper-bound instead: cheaper, but an
    adversarial scenario whose energy hides in unscreened slots can be
    mis-ranked (``tests/serve/test_fabric.py`` constructs exactly that).
    With the screen disabled the fabric reproduces
    :meth:`~repro.serve.server.BatchedPhase4Server.identify_batch`
    bit-for-bit.

Streams are admitted through a **micro-batching queue**: :meth:`submit`
returns a :class:`FabricTicket` per stream, and pending tickets are fused
into one stacked fleet advance + one sharded identification pass when the
batch fills (``max_batch``) or :meth:`flush` is called.  Because the
per-request cost is dominated by fixed overheads at small ``n``, fusing
single-stream requests is worth several times more than any per-scenario
trick — the two compose in :mod:`benchmarks.bench_fabric`.  The async
ingest tier (:mod:`repro.serve.gateway`) rides the same queue for
network-facing admission.

Memory is governed by a :class:`~repro.util.memory.MemoryBudget` (which may
be shared with an :class:`~repro.serve.cache.OperatorCache`): every shared
segment is registered, and attaching a bank that would exceed the budget
evicts the *coldest* resident bank first (heat = requests served, ties by
recency).  Evicted banks re-attach transparently on next use.

Quick start::

    from repro.serve import BatchedPhase4Server
    server = BatchedPhase4Server(inv)
    with server.fabric([bank], n_workers=4) as fabric:
        result = fabric.identify(d_obs, k_slots=8)   # hierarchical + sharded
        print(result.top_k(3))

or stream-by-stream through the micro-batching queue::

    tickets = [fabric.submit(d, k_slots=8) for d in streams]
    for t in tickets:
        print(t.result().map_ids())

``python -m repro.serve.fabric --help`` runs a self-contained demo.  The
operator guide is ``docs/SERVING.md``.
"""

from __future__ import annotations

import secrets
import threading
import time
import weakref
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np
from scipy.special import log_softmax

from repro.backend import resolve_backend
from repro.hpc.perfmodel import roofline_for, sketch_rebuild_spec
from repro.inference.bayes import ToeplitzBayesianInversion
from repro.inference.forecast import QoIForecast
from repro.serve import protocol
from repro.serve import sketch as _sketch
from repro.serve.identify import IdentificationResult, normalize_log_prior
from repro.serve.shardops import (
    build_shard as _build_shard,
    exact_shard as _exact_shard,
    mixture_shard as _mixture_shard,
    screen_shard as _screen_shard,
)
from repro.serve.sketch import SlotSketch
from repro.serve.transport import (  # noqa: F401 - compat re-exports
    ShardTransport,
    SharedMemoryTransport,
    StageContext,
    TcpTransport,
    _SharedArray,
    _views,
    _Worker,
    _worker_main,
)
from repro.util.clock import Clock, ensure_clock
from repro.util.memory import MemoryBudget

__all__ = [
    "FabricConfig",
    "FabricReport",
    "FabricTicket",
    "RankController",
    "ServingFabric",
    "TicketCancelled",
]


# ----------------------------------------------------------------------
# Configuration / reporting
# ----------------------------------------------------------------------
@dataclass
class FabricConfig:
    """Tuning knobs of a :class:`ServingFabric`.

    Attributes
    ----------
    n_workers:
        Worker processes the banks are sharded across (shared-memory
        transport only; a custom ``transport`` brings its own channel
        count).  ``0`` keeps all shard computation in the parent process
        (still hierarchical, still micro-batched) — useful where forking
        is unavailable.
    max_batch:
        Micro-batch capacity: :meth:`ServingFabric.submit` auto-flushes
        when this many tickets are pending, and sizes the shared
        per-request scratch block.
    screen:
        Enable the stage-1 coarse screen.  ``False`` runs exact
        identification over the whole bank (sharded, bit-identical to the
        flat identifier).
    certified:
        ``True`` prunes only scenarios whose evidence upper bound falls
        below the ``screen_top``-th best lower bound — the pruned top-k
        provably equals the exhaustive one.  ``False`` keeps a fixed
        ``screen_top`` candidates by upper bound (faster, can mis-rank
        adversarial banks).
    screen_top:
        How many leading ranks the screen must preserve (and, in
        uncertified mode, how many candidates survive per stream).
    screen_stride:
        Coarse pass uses every ``screen_stride``-th observation slot,
        anchored at the most recent slot.  Larger = cheaper screen, looser
        bounds.
    screen_min_scenarios:
        Banks smaller than this skip the screen entirely (overhead would
        exceed the pruned work).
    sketch_rank:
        Low-rank sketch rank ``r`` per observation slot (``0`` disables,
        keeping the norm-only triangle-inequality brackets).  With
        ``r > 0`` every bank shard additionally stores ``r``-dim
        projections of its whitened slot blocks
        (:class:`~repro.serve.sketch.SlotSketch`) and the certified
        screen brackets only the *orthogonal residual* — far tighter
        intervals for the same certificate, which is what keeps diverse
        micro-batches from unioning their candidate sets into a
        full-exact fallback.  ``r = Nd`` makes the screen bounds exact.
        The string ``"auto"`` opts into online rank auto-tuning: a
        :class:`RankController` starts the fabric at
        ``sketch_rank_min`` and renegotiates the live rank inside
        ``[sketch_rank_min, sketch_rank_max]`` from the observed
        ``screen_fallback`` / pruned-fraction telemetry, rebuilding the
        sketch segments and re-attaching every shard channel on each
        change (recorded in ``FabricReport.rank_changed`` and the
        ``fabric_sketch_retunes`` counter).
    sketch_mode:
        ``"gaussian"`` (default) draws the per-slot projections from the
        seeded QR construction — bank-independent, reproducible from
        ``(sketch_seed, slot)`` alone.  ``"pca"`` builds each *bank's*
        projections from the top-``r`` left singular vectors of its
        whitened per-slot column blocks
        (:func:`~repro.serve.sketch.pca_basis`): the orthogonal
        remainder — the only triangle-bracketed part — then carries
        minimal bank energy, so brackets are systematically tighter at
        equal rank.  The basis is a deterministic, sign-canonicalized,
        ``COL_BLOCK``-chunked function of the bank state, so shard
        builds stay bitwise layout- and transport-independent; the
        certificate itself never depends on the basis choice.
    sketch_seed:
        Seed of the Gaussian sketch projections (per-slot draws are
        derived from ``(sketch_seed, slot)``); the flat identifier
        reproduces the same sketch from the same pair.  Ignored by
        ``sketch_mode="pca"`` (the basis is data-dependent).
    sketch_rank_min, sketch_rank_max:
        Rank bounds of the ``"auto"`` controller (``sketch_rank_max``
        ``None`` = the exact-bounds rank ``Nd``).  Ignored for static
        ranks.
    rank_ewma:
        EWMA weight of the controller's fallback / pruned-fraction
        telemetry (higher = more reactive, more thrash-prone).
    rank_cooldown:
        Screened requests that must be observed after every rank change
        (or cost-rejected proposal) before the next proposal.
    rank_rebuild_factor:
        Rebuild-cost gate: a proposed rank change is executed only when
        the roofline-priced sketch rebuild
        (:func:`~repro.hpc.perfmodel.sketch_rebuild_spec` over every
        resident bank) costs at most this many multiples of the EWMA
        request time — so a retune always amortizes over the next
        observation window.
    max_queue_ms:
        Micro-batch queueing deadline in milliseconds (``None`` = off).
        When set, a background timer thread flushes pending tickets at
        most this long after the first one was admitted, bounding queue
        latency without waiting for ``max_batch`` — dispatch stays
        serialized through the fabric's internal lock, so the
        single-dispatcher invariant holds.
    clock:
        Time source for the deadline-flush timer
        (:class:`~repro.util.clock.Clock`; ``None`` = the shared wall
        clock).  Tests and deterministic replays inject a
        :class:`~repro.util.clock.ManualClock` so the deadline fires on
        *virtual* time — no sleeps, no timing flakes.
    memory_budget:
        ``None`` (unlimited), a byte count, or a shared
        :class:`~repro.util.memory.MemoryBudget`.  Attaching a bank under
        pressure evicts the coldest resident bank first.
    start_method:
        Multiprocessing start method of the shared-memory transport;
        ``None`` picks ``fork`` when the platform offers it (cheapest;
        shared segments are attached by name either way).
    worker_timeout:
        Seconds to wait for a shard-channel ack before declaring it lost
        and recomputing its shard in the parent.
    backend:
        Array backend for the *parent-side* fleet advance (the online
        hot path): ``"numpy"`` (default, bitwise-reproducible),
        ``"torch"``, ``"torch-cuda"``, or ``"cupy"``
        (:func:`repro.backend.get_backend` names).  Shard workers always
        operate on host shared memory; a non-exact backend's certified
        kernel-error budget automatically inflates the screen brackets
        (:func:`~repro.serve.sketch.certified_bounds` ``rtol``) so the
        certificate survives the backend's tolerance contract.
    transport:
        Where the shards live: ``None`` / ``"shared_memory"`` builds the
        default single-host
        :class:`~repro.serve.transport.SharedMemoryTransport` from
        ``n_workers``/``start_method``, or pass a ready
        :class:`~repro.serve.transport.ShardTransport` instance (e.g. a
        :class:`~repro.serve.transport.TcpTransport` over shard-server
        addresses).  The fabric owns the instance from then on: it is
        started against the static arrays and closed with the fabric.
    replication_factor:
        How many channels adopt each shard (``R``).  With the default
        ``1`` every channel serves its own shard and a lost channel
        degrades to in-parent recompute (the historical behavior).  With
        ``R > 1`` the bank is cut into ``n_channels // R`` shard groups
        and every channel in a group adopts the same columns (via the
        ``AdoptShard`` protocol verb); each stage is routed to the
        group's first live channel and *fails over* to the next replica
        on ``ErrorReply``/connection drop/SIGKILL — the parent recompute
        fallback fires only when **all** replicas of a shard are gone.
        Because the shard stage kernels chunk on absolute ``COL_BLOCK``
        boundaries, a failed-over stage issues the identical BLAS calls,
        so results stay bitwise equal to the flat path no matter which
        replica answers.  Failovers are counted in
        ``FabricReport.failovers``.
    """

    n_workers: int = 2
    max_batch: int = 16
    screen: bool = True
    certified: bool = True
    screen_top: int = 8
    screen_stride: int = 8
    screen_min_scenarios: int = 32
    sketch_rank: Union[int, str] = 0
    sketch_mode: str = "gaussian"
    sketch_seed: int = 0
    sketch_rank_min: int = 2
    sketch_rank_max: Optional[int] = None
    rank_ewma: float = 0.3
    rank_cooldown: int = 4
    rank_rebuild_factor: float = 50.0
    max_queue_ms: Optional[float] = None
    clock: Optional[Clock] = None
    memory_budget: Union[None, int, MemoryBudget] = None
    start_method: Optional[str] = None
    worker_timeout: float = 60.0
    backend: str = "numpy"
    transport: Union[None, str, ShardTransport] = None
    replication_factor: int = 1


@dataclass
class FabricReport:
    """What one fabric request did (``ServingFabric.last_report``)."""

    bank_key: str = ""
    n_streams: int = 0
    n_scenarios: int = 0
    screened: bool = False
    certified: bool = False
    screen_fallback: bool = False
    sketch_rank: int = 0
    sketch_mode: str = ""
    rank_changed: bool = False
    backend: str = "numpy"
    transport: str = "shared_memory"
    n_candidates: int = 0
    pruned_fraction: float = 0.0
    workers_used: int = 0
    workers_lost: int = 0
    replication: int = 1
    failovers: int = 0
    t_fleet: float = 0.0
    t_screen: float = 0.0
    t_exact: float = 0.0
    t_total: float = 0.0

    @property
    def degraded(self) -> bool:
        """Whether any shard had to be recomputed in the parent."""
        return self.workers_lost > 0


class RankController:
    """EWMA-driven governor renegotiating the sketch rank online.

    ``FabricConfig.sketch_rank="auto"`` puts one of these in charge of
    the live rank: after every screened request the fabric feeds it the
    request's ``screen_fallback`` flag and pruned fraction, and the
    controller proposes a new rank inside ``[r_min, r_max]`` when the
    exponentially-weighted telemetry says the screen is under- or
    over-provisioned:

    * **increase** (``+step``) when the fallback EWMA exceeds
      ``fallback_high`` or the pruned-fraction EWMA sits below
      ``pruned_target`` — the brackets are too loose to pay for the
      screen;
    * **decrease** (``-step``) only when fallback is essentially absent
      (below ``fallback_low``) *and* pruning is saturated above
      ``pruned_surplus`` — rank bought nothing, reclaim the screen
      bandwidth.

    Two hysteresis mechanisms prevent thrash: a ``cooldown`` of observed
    requests must pass after every committed (or cost-rejected) change
    before the next proposal, and both EWMAs reset on commit so each
    decision is based purely on evidence gathered *at the current rank*.
    The fabric separately gates every proposal on a rebuild-cost model
    (:func:`repro.hpc.perfmodel.sketch_rebuild_spec` against the
    backend's roofline) so a retune is only taken when its cost
    amortizes over the observation window.
    """

    def __init__(
        self,
        r_min: int,
        r_max: int,
        *,
        alpha: float = 0.3,
        cooldown: int = 4,
        step: int = 2,
        fallback_high: float = 0.35,
        fallback_low: float = 0.05,
        pruned_target: float = 0.9,
        pruned_surplus: float = 0.995,
    ) -> None:
        r_min, r_max = int(r_min), int(r_max)
        if not 1 <= r_min <= r_max:
            raise ValueError(
                f"rank bounds must satisfy 1 <= r_min <= r_max, "
                f"got [{r_min}, {r_max}]"
            )
        if not 0.0 < float(alpha) <= 1.0:
            raise ValueError("rank EWMA weight must lie in (0, 1]")
        if int(cooldown) < 1 or int(step) < 1:
            raise ValueError("rank cooldown and step must be >= 1")
        self.r_min, self.r_max = r_min, r_max
        self.alpha = float(alpha)
        self.cooldown = int(cooldown)
        self.step = int(step)
        self.fallback_high = float(fallback_high)
        self.fallback_low = float(fallback_low)
        self.pruned_target = float(pruned_target)
        self.pruned_surplus = float(pruned_surplus)
        self.fallback_ewma: Optional[float] = None
        self.pruned_ewma: Optional[float] = None
        self._since_change = 0

    def _fold(self, prev: Optional[float], x: float) -> float:
        return x if prev is None else (1.0 - self.alpha) * prev + self.alpha * x

    def update(
        self, screen_fallback: bool, pruned_fraction: float, rank: int
    ) -> Optional[int]:
        """Fold one screened request's telemetry; maybe propose a new rank.

        Returns the proposed rank, or ``None`` while the evidence (or
        the cooldown) says to hold.  A proposal is *advisory*: the
        fabric confirms an executed change with :meth:`committed` and a
        cost-gated refusal with :meth:`rejected` — both restart the
        cooldown so the controller never spams an unaffordable retune.
        """
        self.fallback_ewma = self._fold(
            self.fallback_ewma, 1.0 if screen_fallback else 0.0
        )
        self.pruned_ewma = self._fold(self.pruned_ewma, float(pruned_fraction))
        self._since_change += 1
        if self._since_change < self.cooldown:
            return None
        rank = int(rank)
        if rank < self.r_max and (
            self.fallback_ewma > self.fallback_high
            or self.pruned_ewma < self.pruned_target
        ):
            return min(rank + self.step, self.r_max)
        if (
            rank > self.r_min
            and self.fallback_ewma < self.fallback_low
            and self.pruned_ewma > self.pruned_surplus
        ):
            return max(rank - self.step, self.r_min)
        return None

    def committed(self) -> None:
        """A proposed change was executed: restart cooldown, reset EWMAs
        (decisions at the new rank use only new-rank evidence)."""
        self._since_change = 0
        self.fallback_ewma = None
        self.pruned_ewma = None

    def rejected(self) -> None:
        """A proposal failed the rebuild-cost gate: wait a full window
        before proposing again (the cost model's inputs barely change
        request-to-request, so immediate retries would always lose)."""
        self._since_change = 0


class TicketCancelled(RuntimeError):
    """Raised by :meth:`FabricTicket.result` on a cancelled ticket."""


class FabricTicket:
    """Handle for one stream admitted through the micro-batching queue.

    :meth:`result` returns this stream's one-row
    :class:`~repro.serve.identify.IdentificationResult` (or
    :class:`~repro.inference.forecast.QoIForecast` for forecast tickets),
    flushing the queue first if the batch has not been processed yet.
    ``result(timeout=...)`` instead *waits* for another dispatcher (a
    deadline-flush timer, a gateway executor) to settle the ticket,
    raising ``TimeoutError`` if the stage stalls past the deadline.
    :meth:`on_done` registers completion callbacks (the async gateway's
    bridge into its event loop), and :meth:`cancel` withdraws a pending
    ticket — a cancelled ticket never resolves, not even after the batch
    it would have joined is flushed or the workers are respawned.
    """

    def __init__(self, fabric: "ServingFabric") -> None:
        self._fabric = fabric
        self._value = None
        self._error: Optional[BaseException] = None
        self._done = False
        self._cancelled = False
        self._lock = threading.Lock()
        self._event = threading.Event()
        self._callbacks: List = []

    @property
    def done(self) -> bool:
        """Whether the batch containing this ticket has been processed."""
        return self._done

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` withdrew this ticket before it settled."""
        return self._cancelled

    def _settle(self, value, error: Optional[BaseException]) -> None:
        with self._lock:
            if self._done or self._cancelled:
                return
            self._value = value
            self._error = error
            self._done = True
            callbacks, self._callbacks = self._callbacks, []
        self._event.set()
        for fn in callbacks:
            try:
                fn(self)
            except Exception:  # noqa: BLE001 - callbacks must not break flush
                pass

    def _resolve(self, value) -> None:
        self._settle(value, None)

    def _fail(self, exc: BaseException) -> None:
        self._settle(None, exc)

    def on_done(self, fn) -> "FabricTicket":
        """Call ``fn(ticket)`` once settled (immediately if already done).

        Callbacks run on whichever thread settles the ticket — the async
        gateway uses this to hop results back into its event loop via
        ``call_soon_threadsafe``.  Returns ``self`` for chaining.
        """
        with self._lock:
            if not self._done:
                self._callbacks.append(fn)
                return self
        fn(self)
        return self

    def cancel(self) -> bool:
        """Withdraw a still-pending ticket; returns whether it was live.

        A cancelled ticket is removed from the admission queue, never
        resolves (even across :meth:`ServingFabric.respawn_workers` and
        later flushes), and its :meth:`result` raises
        :class:`TicketCancelled`.  Settled tickets cannot be cancelled.
        """
        fabric = self._fabric
        with fabric._dispatch_lock:
            with self._lock:
                if self._done or self._cancelled:
                    return False
                self._cancelled = True
            fabric._pending = [
                item for item in fabric._pending if item[1] is not self
            ]
        return True

    def result(self, timeout: Optional[float] = None):
        """This stream's result, flushing pending micro-batches if needed.

        With the default ``timeout=None`` the calling thread *drives* the
        queue: pending micro-batches are flushed synchronously.  With a
        numeric ``timeout`` the call only *waits* — some other dispatcher
        must flush — and raises ``TimeoutError`` if the ticket has not
        settled in time (e.g. a stalled shard stage).  Re-raises the
        batch's failure if the group this ticket was fused into errored
        during :meth:`ServingFabric.flush`; raises
        :class:`TicketCancelled` after :meth:`cancel`.
        """
        if self._cancelled:
            raise TicketCancelled("ticket was cancelled")
        if not self._done:
            if timeout is None:
                self._fabric.flush()
            elif not self._event.wait(timeout):
                raise TimeoutError(
                    f"ticket did not settle within {timeout} s"
                )
        if self._cancelled:
            raise TicketCancelled("ticket was cancelled")
        if self._error is not None:
            raise self._error
        return self._value


class _BankState:
    """Parent-side record of one attached bank."""

    def __init__(
        self, key, source, ids, log_prior, arrs, shards, replicas=None
    ) -> None:
        self.key = key
        self.source = source  # ScenarioBank or raw records, for re-attach
        self.ids = ids
        self.log_prior = log_prior
        self.arrs: Dict[str, object] = arrs
        self.shards: List[Tuple[int, int]] = shards
        # The sketch whose basis projected this bank's pmu/slot_psq: the
        # fabric-wide Gaussian sketch, or (mode="pca") this bank's own
        # data-dependent basis.  None when the screen runs norm-only.
        self.sketch: Optional[SlotSketch] = None
        # Per shard: the channel ids that adopted it, primary first.
        # Replica lists partition the channels, so within one stage no
        # channel is ever asked to serve two shards of the same bank.
        self.replicas: List[List[int]] = (
            replicas
            if replicas is not None
            else [[i] for i in range(len(shards))]
        )
        self.heat = 0
        self.last_used = 0.0

    @property
    def n_scenarios(self) -> int:
        return len(self.ids)

    @property
    def views(self) -> Dict[str, np.ndarray]:
        return _views(self.arrs)

    @property
    def nbytes(self) -> int:
        return sum(a.nbytes for a in self.arrs.values())


def _release_transport(transport: ShardTransport) -> None:
    """`weakref.finalize` backstop: close the transport at GC/interpreter
    exit so no shared segment outlives an un-``close()``-d fabric."""
    try:
        transport.close()
    except Exception:  # noqa: BLE001 - teardown best-effort
        pass


# ----------------------------------------------------------------------
# The fabric
# ----------------------------------------------------------------------
class ServingFabric:
    """Sharded hierarchical identification server over one inversion.

    Parameters
    ----------
    inv:
        A Phases 2-3-complete
        :class:`~repro.inference.bayes.ToeplitzBayesianInversion` (e.g.
        from an :class:`~repro.serve.cache.OperatorCache`); the fabric
        shares its incremental streaming engine and publishes its Cholesky
        factor to the shard channels through the transport.
    banks:
        Scenario banks (or raw clean-record arrays ``(Nt, Nd, S)``) to
        attach up front; more can be attached later with
        :meth:`attach_bank`.
    config:
        A :class:`FabricConfig`; keyword arguments override its fields
        (``ServingFabric(inv, banks, n_workers=4)`` or
        ``ServingFabric(inv, banks, transport=TcpTransport(addrs))``).

    Notes
    -----
    The fabric is a single-dispatcher object: requests are serialized
    through the parent (which owns the stream-side fleet states), and the
    shard channels parallelize the per-*scenario* work.  Use one fabric
    per serving process; it is not thread-safe.  Always :meth:`close` (or
    use it as a context manager) so shared segments are unlinked — though
    a ``weakref.finalize`` backstop closes the transport at garbage
    collection or interpreter exit, so even an abandoned fabric leaks no
    segments.
    """

    def __init__(
        self,
        inv: ToeplitzBayesianInversion,
        banks: Sequence = (),
        config: Optional[FabricConfig] = None,
        **overrides,
    ) -> None:
        cfg = replace(config) if config is not None else FabricConfig()
        for k, v in overrides.items():
            if not hasattr(cfg, k):
                raise TypeError(f"unknown FabricConfig field: {k!r}")
            setattr(cfg, k, v)
        if cfg.n_workers < 0 or cfg.max_batch < 1:
            raise ValueError("n_workers must be >= 0 and max_batch >= 1")
        if cfg.screen_stride < 1 or cfg.screen_top < 1:
            raise ValueError("screen_stride and screen_top must be >= 1")
        if cfg.sketch_mode not in ("gaussian", "pca"):
            raise ValueError(
                f"sketch_mode must be 'gaussian' or 'pca', got {cfg.sketch_mode!r}"
            )
        self._auto_rank = isinstance(cfg.sketch_rank, str)
        if self._auto_rank:
            if cfg.sketch_rank != "auto":
                raise ValueError(
                    f"sketch_rank must be an int or 'auto', got {cfg.sketch_rank!r}"
                )
            r_max = (
                inv.nd if cfg.sketch_rank_max is None else int(cfg.sketch_rank_max)
            )
            if r_max > inv.nd:
                raise ValueError(f"sketch_rank_max must lie in [1, {inv.nd}]")
            self._rank_controller: Optional[RankController] = RankController(
                cfg.sketch_rank_min, r_max,
                alpha=cfg.rank_ewma, cooldown=cfg.rank_cooldown,
            )
            initial_rank = self._rank_controller.r_min
        else:
            if cfg.sketch_rank < 0 or cfg.sketch_rank > inv.nd:
                raise ValueError(f"sketch_rank must lie in [0, {inv.nd}]")
            self._rank_controller = None
            initial_rank = int(cfg.sketch_rank)
        if cfg.max_queue_ms is not None and cfg.max_queue_ms <= 0:
            raise ValueError("max_queue_ms must be positive (or None)")
        if cfg.replication_factor < 1:
            raise ValueError("replication_factor must be >= 1")
        self.config = cfg
        self.inv = inv
        self.backend = resolve_backend(cfg.backend)
        # Non-exact backends carry a certified per-kernel error budget;
        # the screen brackets are inflated by it everywhere (parent
        # fallbacks and shard channels alike) so certified pruning stays
        # sound.
        self._screen_rtol = float(self.backend.screen_rtol)
        self.engine = inv.streaming_state(backend=self.backend)
        self.nt, self.nd = inv.nt, inv.nd
        self.budget = MemoryBudget.ensure(cfg.memory_budget)
        # Ledger names are namespaced per instance so several fabrics (and
        # caches) can share one budget without double-booking or releasing
        # each other's entries on close.
        self.budget_prefix = f"fabric-{secrets.token_hex(3)}"
        self._closed = False
        self._banks: Dict[str, _BankState] = {}
        self._evicted: Dict[str, Tuple[object, Optional[np.ndarray]]] = {}
        self._bank_counter = 0
        self._req_counter = 0
        self._clock = 0.0
        self._pending: List[Tuple[str, FabricTicket, np.ndarray, int, str]] = []
        self.last_report = FabricReport()
        self._requests_served = 0
        self._streams_served = 0
        self._banks_evicted = 0
        self._workers_respawned = 0
        self._failovers = 0  # lifetime stage failovers (replica took over)
        self._req_failovers = 0  # failovers inside the current request
        # Lifetime screen telemetry (drives the rank controller and the
        # Prometheus surface; per-request values live in FabricReport).
        self._sketch_rank = initial_rank  # live rank ("auto" renegotiates)
        self._sketch_mode = cfg.sketch_mode
        self._sketch_retunes = 0
        self._rank_events: List[Dict[str, float]] = []
        self._screened_requests = 0
        self._screen_fallbacks = 0
        self._screened_columns = 0
        self._pruned_columns = 0
        self._t_total_ewma: Optional[float] = None
        try:
            self._roofline = roofline_for(cfg.backend)
        except ValueError:
            self._roofline = roofline_for("numpy")
        self._request_fleet = None
        # All dispatch (submit/flush/identify/forecast) serializes through
        # this lock, so the optional queue-deadline timer thread can flush
        # without breaking the single-dispatcher invariant.
        self._dispatch_lock = threading.RLock()
        self._timesource = ensure_clock(cfg.clock)
        self._flush_timer = None  # handle from self._timesource.timer()

        # The transport owns every fabric array (its ledger is the leak
        # backstop) and the shard channels.  The finalizer is registered
        # *before* anything can fail, so even a half-constructed fabric
        # releases its segments at GC / interpreter exit.
        self._transport = self._resolve_transport(cfg)
        self._finalizer = weakref.finalize(
            self, _release_transport, self._transport
        )

        # Shared static state: the Cholesky factor, its cumulative
        # log-diagonal, the geometry rows (for sharded forecast
        # mixtures), the per-request scratch block, and — when the sketch
        # screen is on — the slot projections plus sketch scratch.
        n_rows = self.nt * self.nd
        jmax = cfg.max_batch
        alloc = self._transport.alloc
        self._static_arrs = {
            "L": alloc("L", (n_rows, n_rows)),
            "logdiag": alloc("ld", (self.nt + 1,)),
            "wd": alloc("wd", (n_rows, jmax)),
            "wd_slot": alloc("ws", (self.nt, jmax)),
            "wsq": alloc("wq", (jmax,)),
            "hz": alloc("hz", (jmax,), np.int64),
        }
        # Geometry rows for sharded forecast mixtures are *lazy*: created
        # (and budget-registered) at the first forecast_mixture call, and
        # shipped to the shards inside the mixture message — fabrics that
        # only identify never pay the segment or the full-horizon
        # geometry advance.
        self._Y_arr = None
        self._sketch: Optional[SlotSketch] = None
        if self._sketch_rank > 0:
            self._alloc_sketch_statics()
        self._static_arrs["L"].array[:] = inv.cholesky_lower
        self._static_arrs["logdiag"].array[:] = inv.cholesky_logdiag_cum
        self._static = _views(self._static_arrs)
        self.budget.register(
            f"{self.budget_prefix}:static",
            sum(a.nbytes for a in self._static_arrs.values()),
        )

        try:
            self._transport.start(
                self._static_arrs,
                nd=self.nd,
                nt=self.nt,
                screen_rtol=self._screen_rtol,
                sketch_rank=self._sketch_rank,
            )
            for bank in banks:
                self.attach_bank(bank)
        except Exception:
            # A failed bring-up (unreachable TCP shard, bad bank) must not
            # leak: drain the transport's ledger and mark the fabric dead.
            self.close()
            raise

    @staticmethod
    def _resolve_transport(cfg: FabricConfig) -> ShardTransport:
        """Map ``cfg.transport`` to a ready-to-start transport instance."""
        t = cfg.transport
        if t is None or (isinstance(t, str) and t == "shared_memory"):
            return SharedMemoryTransport(cfg.n_workers, cfg.start_method)
        if isinstance(t, str):
            raise ValueError(
                f"unknown transport name {t!r} (named transports: "
                "'shared_memory'; pass a ShardTransport instance for others)"
            )
        return t

    @property
    def _workers(self):
        """Single-host worker handles (empty on networked transports).

        Kept for the chaos suites that reach into worker processes
        directly; transport-agnostic callers use :meth:`inject_fault` /
        :attr:`n_worker_slots` instead.
        """
        return getattr(self._transport, "workers", [])

    @property
    def n_worker_slots(self) -> int:
        """Shard channels of the transport (worker slots / connections)."""
        return self._transport.n_channels

    # ------------------------------------------------------------------
    # Bank lifecycle
    # ------------------------------------------------------------------
    def _alloc_sketch_statics(self) -> None:
        """Allocate the sketch-bearing static segments at the live rank.

        Called at construction and again on every rank renegotiation
        (after the old segments are freed).  In ``"gaussian"`` mode the
        shared projection matrix ``P`` is drawn here and published to
        the segments; in ``"pca"`` mode the projections are per-bank
        (data-dependent), so ``P`` stays zeroed — workers never project
        with it (bank builds carry ``build_sketch=False`` and the parent
        projects with each bank's own basis).
        """
        alloc = self._transport.alloc
        jmax = self.config.max_batch
        nr = self.nt * self._sketch_rank
        self._static_arrs["P"] = alloc("P", (nr, self.nd))
        self._static_arrs["wd_p"] = alloc("wp", (nr, jmax))
        self._static_arrs["wd_psq"] = alloc("wn", (self.nt, jmax))
        if self._sketch_mode == "gaussian":
            self._sketch = SlotSketch(
                self.nt, self.nd, self._sketch_rank,
                seed=self.config.sketch_seed,
            )
            self._static_arrs["P"].array[:] = self._sketch.projections

    def _bank_nbytes(self, n_scenarios: int, has_qoi: bool = False) -> int:
        """Resident shared bytes for a bank of ``n_scenarios`` columns."""
        n_rows = self.nt * self.nd
        jmax = self.config.max_batch
        per_col = n_rows + (self.nt + 1) + self.nt + 3 * jmax
        if self._sketch_rank > 0:
            per_col += self.nt * self._sketch_rank + self.nt
        if has_qoi:
            per_col += self.engine._nb + jmax
        return 8 * per_col * n_scenarios

    def attach_bank(
        self,
        bank,
        key: Optional[str] = None,
        prior_weights: Optional[np.ndarray] = None,
    ) -> str:
        """Shard a bank (or raw clean records) across the shard channels.

        ``bank`` is a :class:`~repro.serve.scenarios.ScenarioBank` (clean
        sensor records are computed through the inversion's p2o operator;
        clean QoI trajectories through the p2q operator when one exists,
        enabling sharded :meth:`forecast_mixture`) or a raw
        ``(Nt, Nd, S)`` array of clean records.  Over shared memory every
        worker builds its own column shard of the bank-side state — and,
        with ``sketch_rank > 0``, of the bank's low-rank sketch — from
        the shared Cholesky factor; networked transports receive
        parent-built slices instead.  The clean records travel through a
        transient allocation that is released as soon as the build
        completes — on success *and* on failure: a crash mid-attach frees
        every segment this call created.  Returns the bank key used by
        :meth:`identify`/:meth:`submit`.
        """
        with self._dispatch_lock:
            return self._attach_bank_locked(bank, key, prior_weights)

    def _attach_bank_locked(
        self,
        bank,
        key: Optional[str] = None,
        prior_weights: Optional[np.ndarray] = None,
    ) -> str:
        self._check_open()
        qoi_records: Optional[np.ndarray] = None
        if isinstance(bank, np.ndarray):
            records = np.asarray(bank, dtype=np.float64)
            if records.ndim != 3 or records.shape[:2] != (self.nt, self.nd):
                raise ValueError(
                    f"records must be ({self.nt},{self.nd},S), got {records.shape}"
                )
            ids = [f"s{j}" for j in range(records.shape[2])]
            source: object = records
        else:
            records = bank.clean_records(self.inv.F)
            ids = bank.ids()
            source = bank
            if self.inv.Fq is not None:
                qoi_records = bank.clean_records(self.inv.Fq)
        S = records.shape[2]
        if S < 1:
            raise ValueError("cannot attach an empty bank")
        if key is None:
            key = f"bank{self._bank_counter}"
            self._bank_counter += 1
        if key in self._banks:
            raise ValueError(f"bank key {key!r} already attached")

        # Validate everything fallible *before* any shared segment exists —
        # a late ValueError must not leak untracked /dev/shm allocations.
        log_prior = normalize_log_prior(prior_weights, S)
        mu_flat = records.reshape(self.nt * self.nd, S)
        need = self._bank_nbytes(S, has_qoi=qoi_records is not None) + mu_flat.nbytes
        self._make_room(need)

        T = self._transport
        mu = T.alloc("mu", mu_flat.shape)
        arrs: Dict[str, object] = {}
        try:
            mu.array[:] = mu_flat
            n_rows = self.nt * self.nd
            jmax = self.config.max_batch
            arrs.update(
                {
                    "wmu": T.alloc("wm", (n_rows, S)),
                    "musq_cum": T.alloc("mc", (self.nt + 1, S)),
                    "slot_musq": T.alloc("sm", (self.nt, S)),
                    "lb": T.alloc("lb", (jmax, S)),
                    "ub": T.alloc("ub", (jmax, S)),
                    "ev": T.alloc("ev", (jmax, S)),
                }
            )
            if self._sketch_rank > 0:
                arrs["pmu"] = T.alloc(
                    "pm", (self.nt * self._sketch_rank, S)
                )
                arrs["slot_psq"] = T.alloc("pq", (self.nt, S))
            if qoi_records is not None:
                arrs["qoi"] = T.alloc("qi", (self.engine._nb, S))
                arrs["qoi"].array[:] = qoi_records.reshape(-1, S)
                arrs["pr"] = T.alloc("pr", (jmax, S))
            # Shard boundaries land on COL_BLOCK multiples: inside a block
            # the flat identifier and a shard issue identical BLAS calls,
            # so block-aligned shards keep sharded results bitwise equal
            # to the single-process path.  With replication_factor R > 1
            # the bank is cut into n_channels // R shard groups and every
            # channel in a group adopts the same columns.
            R = self.config.replication_factor
            n_shards = max(T.n_channels // R, 1)
            blk = _sketch.COL_BLOCK
            n_blocks = -(-S // blk)
            bounds = [
                min(round(i * n_blocks / n_shards) * blk, S)
                for i in range(n_shards + 1)
            ]
            bounds[-1] = S
            shards = [
                (int(bounds[i]), int(bounds[i + 1]))
                for i in range(n_shards)
                if bounds[i] < bounds[i + 1]
            ]
            replicas = self._assign_replicas(len(shards))
            state = _BankState(
                key, source, ids, log_prior, arrs, shards, replicas
            )
            state.sketch = self._sketch  # gaussian (or None); pca below
            ctx = StageContext(bank=arrs, mu=mu)
            pca = self._sketch_rank > 0 and self._sketch_mode == "pca"

            def local_build(c0, c1):
                _build_shard(
                    self._static["L"], mu.array, arrs["wmu"].array,
                    arrs["slot_musq"].array, arrs["musq_cum"].array,
                    self.nd, c0, c1,
                    sketch=self._sketch,
                    pmu=arrs["pmu"].array if self._sketch is not None else None,
                    slot_psq=arrs["slot_psq"].array
                    if self._sketch is not None else None,
                )

            def pca_sketch() -> SlotSketch:
                # The PCA basis is a function of the *completed* bank
                # state, so it is computed once the wmu columns exist —
                # chunked Grams + sign-canonicalized eigh + a COL_BLOCK
                # projection over the full range, all bitwise independent
                # of the shard layout and the transport.
                sk = SlotSketch.from_bank(
                    arrs["wmu"].array, self.nt, self.nd, self._sketch_rank
                )
                sk.project_bank_columns(
                    arrs["wmu"].array, arrs["pmu"].array,
                    arrs["slot_psq"].array, 0, S,
                )
                return sk

            if T.remote_builds:
                # Shared memory: each channel builds its own shard from
                # the shared factor; lost channels fall back to the
                # parent.  PCA builds skip the in-worker projection
                # (build_sketch=False) — the parent projects into the
                # shared segments afterwards, once the basis exists.
                self._run_stage(
                    state, "attach", ("attach", key),
                    lambda c0, c1: (
                        protocol.BuildShard(
                            key=key, c0=c0, c1=c1, build_sketch=not pca
                        ),
                        ctx,
                    ),
                    local_build,
                )
                if pca:
                    state.sketch = pca_sketch()
            else:
                # Networked: the parent builds the full state once (it
                # needs it anyway for graceful degradation) and ships each
                # channel its built slices inside the build frame — with
                # PCA, the basis and projections are computed before the
                # slices ship so every shard receives its pmu block.
                local_build(0, S)
                if pca:
                    state.sketch = pca_sketch()
                self._run_stage(
                    state, "attach", ("attach", key),
                    lambda c0, c1: (
                        protocol.BuildShard(key=key, c0=c0, c1=c1), ctx
                    ),
                    lambda c0, c1: None,
                )
            # Replication: once the build stage has completed (acks
            # collected, shared segments / remote slices in place), the
            # remaining channels of each group adopt the same shard via
            # the fire-and-forget AdoptShard verb — attach-only over
            # shared memory, built slices re-shipped over TCP.
            if R > 1:
                adopt_ctx = StageContext(bank=arrs)
                for s, (c0, c1) in enumerate(shards):
                    for ch in replicas[s][1:]:
                        if T.alive(ch):
                            T.send_stage(
                                ch,
                                protocol.AdoptShard(key=key, c0=c0, c1=c1),
                                adopt_ctx,
                            )
        except Exception:
            # Crash mid-attach: free every allocation this call made, so
            # no orphan segment (or resource_tracker warning) survives.
            for a in arrs.values():
                T.free(a)
            T.free(mu)
            raise
        T.free(mu)
        self._banks[key] = state
        self._evicted.pop(key, None)
        self.budget.register(f"{self.budget_prefix}:bank:{key}", state.nbytes)
        return key

    def _make_room(self, need: int, exclude: Optional[str] = None) -> None:
        """Evict coldest banks until ``need`` extra bytes fit the budget.

        ``exclude`` protects one bank key (the bank a request is actively
        using) from being evicted to make its own room.
        """
        while not self.budget.fits(need):
            candidates = [b for b in self._banks.values() if b.key != exclude]
            if not candidates:
                break
            coldest = min(candidates, key=lambda b: (b.heat, b.last_used))
            self.evict_bank(coldest.key)
        if not self.budget.fits(need):
            raise RuntimeError(
                f"memory budget cannot admit {need} bytes "
                f"({self.budget.report()})"
            )

    def evict_bank(self, key: str) -> None:
        """Release a bank's shared segments (re-attached on next use)."""
        with self._dispatch_lock:
            self._evict_bank_locked(key)

    def _evict_bank_locked(self, key: str) -> None:
        state = self._banks.pop(key, None)
        if state is None:
            return
        prior = None if np.allclose(
            state.log_prior, -np.log(state.n_scenarios)
        ) else np.exp(state.log_prior)
        self._evicted[key] = (state.source, prior)
        self._transport.broadcast(protocol.DetachBank(key=key))
        for a in state.arrs.values():
            self._transport.free(a)
        self.budget.release(f"{self.budget_prefix}:bank:{key}")
        self._banks_evicted += 1

    def _resolve_bank(self, bank) -> _BankState:
        """Map ``bank`` (None / key / object) to an attached state."""
        if bank is None:
            if len(self._banks) == 1:
                return next(iter(self._banks.values()))
            if not self._banks and len(self._evicted) == 1:
                key = next(iter(self._evicted))
                return self._resolve_bank(key)
            raise ValueError(
                f"{len(self._banks)} banks attached; pass bank= explicitly"
            )
        if isinstance(bank, str):
            if bank in self._banks:
                return self._banks[bank]
            if bank in self._evicted:
                source, prior = self._evicted[bank]
                self.attach_bank(source, key=bank, prior_weights=prior)
                return self._banks[bank]
            raise KeyError(f"unknown bank key {bank!r}")
        for state in self._banks.values():
            if state.source is bank:
                return state
        for key, (source, _) in list(self._evicted.items()):
            if source is bank:
                return self._resolve_bank(key)
        return self._banks[self.attach_bank(bank)]

    # ------------------------------------------------------------------
    # Dispatch machinery
    # ------------------------------------------------------------------
    def _assign_replicas(self, n_shards: int) -> List[List[int]]:
        """Channel ids adopting each shard (primary first).

        With ``replication_factor == 1`` this is the historical identity
        map (shard ``s`` served by channel ``s`` alone); with ``R > 1``
        the channels are striped across the shard groups, so every
        channel adopts exactly one shard per bank and every shard gets at
        least ``R`` replicas (leftover channels join existing groups
        rather than idling).
        """
        n = self._transport.n_channels
        if self.config.replication_factor <= 1 or n <= n_shards:
            return [[s] if s < n else [] for s in range(n_shards)]
        return [
            [c for c in range(n) if c % n_shards == s]
            for s in range(n_shards)
        ]

    def _run_stage(self, state, name, ack_id, make_msg, local_fn) -> int:
        """Run one stage over all shards; returns the number of lost shards.

        ``make_msg(c0, c1)`` produces ``(protocol message, StageContext)``
        for the transport.  Each shard's stage is routed to the first
        live channel of its replica group; a channel that dies at send
        time or mid-stage (EOF / ``ErrorReply``) is retired and the stage
        *fails over* to the next replica of the group (counted in
        ``FabricReport.failovers``).  Only when every replica of a shard
        is gone — or the stage deadline expires — is the shard computed
        in the parent from the same buffers (graceful degradation,
        counted in ``workers_lost``).  Retiring before failover
        guarantees a dead peer can never race the replica on shared
        state.
        """
        T = self._transport
        # channel -> (c0, c1, replicas not yet tried for this shard)
        pending: Dict[int, Tuple[int, int, List[int]]] = {}
        lost = 0

        def _dispatch(c0, c1, replicas, failing_over: bool) -> bool:
            """Send the shard's stage to the first accepting replica."""
            tried = 0
            while replicas:
                ch = replicas.pop(0)
                if not 0 <= ch < T.n_channels:
                    continue
                msg, ctx = make_msg(c0, c1)
                if T.send_stage(ch, msg, ctx):
                    pending[ch] = (c0, c1, replicas)
                    if tried or failing_over:
                        self._failovers += 1
                        self._req_failovers += 1
                    return True
                tried += 1
            return False

        for s, (c0, c1) in enumerate(state.shards):
            replicas = (
                list(state.replicas[s]) if s < len(state.replicas) else []
            )
            had_channel = bool(replicas)
            if not _dispatch(c0, c1, replicas, failing_over=False):
                local_fn(c0, c1)
                lost += had_channel

        def _fail(wid: int, retryable: bool = True) -> None:
            nonlocal lost
            c0, c1, rest = pending.pop(wid)
            T.retire(wid)
            if retryable and _dispatch(c0, c1, rest, failing_over=True):
                return
            local_fn(c0, c1)
            lost += 1

        deadline = time.monotonic() + self.config.worker_timeout
        while pending:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                # The stage deadline is a global budget: expired shards go
                # straight to the parent, no failover retry chain.
                for wid in list(pending):
                    _fail(wid, retryable=False)
                break
            events = T.wait(list(pending), remaining)
            if not events:
                continue  # loop re-checks the deadline
            for wid, reply in events:
                if wid not in pending:
                    continue
                if reply is None or isinstance(reply, protocol.ErrorReply):
                    _fail(wid)  # channel died / peer errored mid-task
                elif (
                    isinstance(reply, protocol.Ack) and reply.req_id == ack_id
                ):
                    del pending[wid]
                # stale ack for an abandoned request: ignore, keep waiting
        return lost

    def _screen_slots(self, horizons: np.ndarray) -> Tuple[int, ...]:
        """The coarse pass screens the ``1/screen_stride`` *highest-energy*
        absorbed slots of this batch.

        The certified bounds are valid for *any* slot subset, so the
        selection is free to be data-adaptive: slack comes only from the
        omitted slots, and whitened signal energy is concentrated around
        the wavefront arrivals — screening where ``||w_t(d)||^2`` is
        largest leaves the low-information slots to the (cheap) brackets
        and keeps them tight.  Energy is read off the fleet's per-slot
        norms already in the shared scratch block; the selection itself
        is the shared :func:`repro.serve.sketch.select_screen_slots`.
        """
        return _sketch.select_screen_slots(
            self._static["wd_slot"][:, : horizons.size].sum(axis=1),
            int(horizons.max()),
            self.config.screen_stride,
        )

    # ------------------------------------------------------------------
    # Identification
    # ------------------------------------------------------------------
    def identify(
        self,
        streams: Union[np.ndarray, Sequence[np.ndarray]],
        k_slots: Union[int, Sequence[int], np.ndarray],
        bank=None,
        prior_weights: Optional[np.ndarray] = None,
        screen: Optional[bool] = None,
        certified: Optional[bool] = None,
        screen_top: Optional[int] = None,
        sketch: Optional[bool] = None,
    ) -> IdentificationResult:
        """Hierarchical posterior scenario ranking at the given horizons.

        The sharded, two-stage analogue of
        :meth:`~repro.serve.server.BatchedPhase4Server.identify_batch`:
        ragged ``k_slots`` allowed, per-call overrides for the screen
        knobs (``sketch=False`` forces the norm-only brackets on a fabric
        built with ``sketch_rank > 0``).  With ``screen=False`` the
        result is bit-identical to the flat identifier; with the
        (default) certified screen the top-``screen_top`` ranking is
        provably the exhaustive one and the remaining entries carry their
        certified evidence upper bound.

        When the screen actually prunes, the *probabilities* are therefore
        a mix: the posterior softmax normalizer includes the pruned
        scenarios' upper bounds, so every exactly-evaluated scenario's
        reported probability (the MAP's included) is a **lower bound** on
        its exhaustive value — conservative in the alerting direction
        (never over-confident).  Rankings among exact entries are
        unaffected.  Callers that need exhaustive probabilities, not just
        the certified ranking, should pass ``screen=False``.

        Batches larger than ``max_batch`` are processed in chunks.
        Inspect ``self.last_report`` for pruning/degradation details.
        """
        with self._dispatch_lock:
            self._check_open()
            D = self._stack(streams)
            targets = self._targets(k_slots, D.shape[2])
            state = self._resolve_bank(bank)
            results = []
            chunk_reports = []
            for j0 in range(0, D.shape[2], self.config.max_batch):
                j1 = min(j0 + self.config.max_batch, D.shape[2])
                results.append(
                    self._identify_batch(
                        D[:, :, j0:j1], targets[j0:j1], state,
                        prior_weights, screen, certified, screen_top, sketch,
                    )
                )
                chunk_reports.append(self.last_report)
            # The per-request fleet is scratch, not serving state — drop
            # it rather than pin max_batch streams of states until the
            # next request.
            self._request_fleet = None
            if len(results) == 1:
                return results[0]
            # A chunked request must not hide degradation or pruning stats
            # from earlier chunks behind the last one's report.
            self.last_report = _merge_reports(chunk_reports)
            return _concat_results(results)

    def _open_request_fleet(self, D, targets, sketch: Optional[SlotSketch]):
        """Advance one request's fleet and publish it to the shared scratch.

        ``sketch`` is the basis of the *request's bank* (the shared
        Gaussian draw, or the bank's own PCA basis) — the fleet side is
        basis-agnostic, it just projects the stream states through
        whatever orthonormal rows it is handed.
        """
        J = D.shape[2]
        fleet = self.engine.open_fleet(D)
        if sketch is not None:
            fleet.attach_sketch(sketch.projections)
        fleet.advance(targets)
        self._static["wd"][:, :J] = fleet.states
        self._static["wd_slot"][:, :J] = fleet.slot_squared_norms()
        self._static["wsq"][:J] = fleet.squared_norms()
        self._static["hz"][:J] = fleet.horizons
        if sketch is not None:
            self._static["wd_p"][:, :J] = fleet.slot_projections()
            self._static["wd_psq"][:, :J] = fleet.slot_projection_norms()
        # Kept for same-request reuse (the sharded mixture path reads the
        # fleet's running forecast means after identification).
        self._request_fleet = fleet
        return fleet

    def _identify_batch(
        self, D, targets, state, prior_weights, screen, certified, screen_top,
        sketch=None,
    ) -> IdentificationResult:
        cfg = self.config
        t_start = time.monotonic()
        screen = cfg.screen if screen is None else screen
        certified = cfg.certified if certified is None else certified
        top = cfg.screen_top if screen_top is None else int(screen_top)
        if top < 1:
            raise ValueError("screen_top must be >= 1")
        S, J = state.n_scenarios, D.shape[2]
        screen = screen and S >= max(cfg.screen_min_scenarios, 1) and S > top
        use_sketch = (
            state.sketch is not None and screen and (sketch is None or sketch)
        )
        state.heat += 1
        self._clock += 1.0
        state.last_used = self._clock
        report = FabricReport(
            bank_key=state.key, n_streams=J, n_scenarios=S,
            screened=screen, certified=screen and certified,
            sketch_rank=self._sketch_rank if use_sketch else 0,
            sketch_mode=self._sketch_mode if use_sketch else "",
            backend=self.backend.name,
            transport=self._transport.name,
            workers_used=self._transport.alive_count(),
            replication=cfg.replication_factor,
        )
        self._req_failovers = 0

        # Stream-side states: one incremental fleet advance, written once
        # into the shared scratch block for every shard to read.
        t0 = time.monotonic()
        fleet = self._open_request_fleet(
            D, targets, state.sketch if use_sketch else None
        )
        report.t_fleet = time.monotonic() - t0

        hz = fleet.horizons
        req_id = self._req_counter
        self._req_counter += 1
        lost = 0
        bankv = state.views
        ctx = StageContext(bank=state.arrs)
        cols = None
        if screen:
            t0 = time.monotonic()
            slots = self._screen_slots(hz)
            lost += self._run_stage(
                state, "screen", req_id,
                lambda c0, c1: (
                    protocol.ScreenStage(
                        req_id=req_id, key=state.key, n_streams=J,
                        slots=slots, use_sketch=use_sketch, c0=c0, c1=c1,
                    ),
                    ctx,
                ),
                lambda c0, c1: _screen_shard(
                    self._static, bankv, self.nd, J, slots, c0, c1,
                    use_sketch=use_sketch, rtol=self._screen_rtol,
                ),
            )
            lb, ub = bankv["lb"][:J], bankv["ub"][:J]
            m = min(top, S)
            thresh = np.partition(lb, S - m, axis=1)[:, S - m]
            if certified:
                margin = 1e-9 * np.maximum(1.0, np.abs(thresh))
                keep = ub >= (thresh - margin)[:, None]
            else:
                keep = np.zeros((J, S), dtype=bool)
                rows = np.repeat(np.arange(J), m)
                keep[rows, np.argpartition(-ub, m - 1, axis=1)[:, :m].ravel()] = True
            cols = np.nonzero(keep.any(axis=0))[0]
            report.t_screen = time.monotonic() - t0
            report.n_candidates = int(cols.size)
            report.pruned_fraction = 1.0 - cols.size / S
            if cols.size >= S // 2:
                # The surviving union is so large the pruned pass would
                # cost more than the full one (candidate sets of a diverse
                # batch union toward the whole bank) — run stage 2
                # unpruned.  Certified results are unaffected: everything
                # is exact.  The report reflects what actually ran: no
                # pruning (the screen's would-be candidate count is gone,
                # `screen_fallback` is the signal to tune the knobs).
                cols = None
                report.screen_fallback = True
                report.n_candidates = S
                report.pruned_fraction = 0.0

        if cols is not None:
            t0 = time.monotonic()
            req_id = self._req_counter
            self._req_counter += 1
            lost += self._run_stage(
                state, "exact", req_id,
                lambda c0, c1: (
                    protocol.ExactStage(
                        req_id=req_id, key=state.key, n_streams=J,
                        cols=cols[(cols >= c0) & (cols < c1)], c0=c0, c1=c1,
                    ),
                    ctx,
                ),
                lambda c0, c1: _exact_shard(
                    self._static, bankv, self.nd, J,
                    cols[(cols >= c0) & (cols < c1)], c0, c1,
                ),
            )
            log_ev = bankv["ub"][:J].copy()
            log_ev[:, cols] = bankv["ev"][:J][:, cols]
            report.t_exact = time.monotonic() - t0
        else:
            t0 = time.monotonic()
            req_id = self._req_counter
            self._req_counter += 1
            lost += self._run_stage(
                state, "exact", req_id,
                lambda c0, c1: (
                    protocol.ExactStage(
                        req_id=req_id, key=state.key, n_streams=J,
                        cols=None, c0=c0, c1=c1,
                    ),
                    ctx,
                ),
                lambda c0, c1: _exact_shard(
                    self._static, bankv, self.nd, J, None, c0, c1
                ),
            )
            log_ev = bankv["ev"][:J].copy()
            report.t_exact = time.monotonic() - t0
            if not screen:
                report.n_candidates = S

        log_prior = (
            state.log_prior
            if prior_weights is None
            else normalize_log_prior(prior_weights, S)
        )
        log_post = log_softmax(log_ev + log_prior[None, :], axis=-1)
        report.workers_lost = lost
        report.failovers = self._req_failovers
        report.t_total = time.monotonic() - t_start
        alpha = self.config.rank_ewma
        self._t_total_ewma = (
            report.t_total
            if self._t_total_ewma is None
            else (1.0 - alpha) * self._t_total_ewma + alpha * report.t_total
        )
        if report.screened:
            self._screened_requests += 1
            if report.screen_fallback:
                self._screen_fallbacks += 1
            self._screened_columns += S
            self._pruned_columns += S - report.n_candidates
        self.last_report = report
        self._requests_served += 1
        self._streams_served += J
        if (
            self._rank_controller is not None
            and report.screened
            and use_sketch
        ):
            self._maybe_retune(report)
        return IdentificationResult(
            ids=list(state.ids),
            horizons=hz.copy(),
            log_evidence=log_ev,
            log_posterior=log_post,
            probabilities=np.exp(log_post),
        )

    # ------------------------------------------------------------------
    # Rank renegotiation
    # ------------------------------------------------------------------
    def _maybe_retune(self, report: FabricReport) -> None:
        """Feed the controller and, when affordable, renegotiate rank.

        The controller proposes a rank from screen telemetry; the
        proposal only commits when the roofline-estimated rebuild cost
        stays below ``rank_rebuild_factor`` recent request latencies —
        an unaffordable rebuild is rejected (restarting the cooldown)
        rather than stalling the serving path.
        """
        ctl = self._rank_controller
        proposal = ctl.update(
            report.screen_fallback, report.pruned_fraction, self._sketch_rank
        )
        if proposal is None:
            return
        total_cols = sum(b.n_scenarios for b in self._banks.values())
        spec = sketch_rebuild_spec(
            self.nt, self.nd, proposal, max(total_cols, 1),
            mode=self._sketch_mode,
        )
        cost = self._roofline.attainable_seconds(spec)
        budget_s = self.config.rank_rebuild_factor * max(
            self._t_total_ewma or 0.0, 1e-5
        )
        if cost > budget_s:
            ctl.rejected()
            return
        old = self._sketch_rank
        fb, pr = ctl.fallback_ewma, ctl.pruned_ewma
        self._retune_rank(proposal)
        ctl.committed()
        report.rank_changed = True
        self._sketch_retunes += 1
        self._rank_events.append(
            {
                "request": float(self._requests_served),
                "from_rank": float(old),
                "to_rank": float(proposal),
                "fallback_ewma": float(fb if fb is not None else 0.0),
                "pruned_ewma": float(pr if pr is not None else 0.0),
            }
        )

    def _retune_rank(self, new_rank: int) -> None:
        """Rebuild sketch statics and every bank's projections at a new rank.

        Runs with the dispatch lock held and no stage in flight.  The
        three sketch-bearing static segments are reallocated at the new
        rank, the transport renegotiates them with its channels
        (shared-memory workers swap mappings and ack; networked shards
        receive an advisory :class:`~repro.serve.protocol.RetuneSketch`),
        and each attached bank's ``pmu``/``slot_psq`` segments are
        reprojected — PCA banks from their own refreshed basis — then
        re-adopted by every replica channel so no shard ever screens
        with a stale-rank block.
        """
        T = self._transport
        for k in ("P", "wd_p", "wd_psq"):
            arr = self._static_arrs.pop(k, None)
            if arr is not None:
                T.free(arr)
        self._sketch_rank = int(new_rank)
        self._alloc_sketch_statics()
        self._static = _views(self._static_arrs)
        self.budget.register(
            f"{self.budget_prefix}:static",
            sum(a.nbytes for a in self._static_arrs.values()),
        )
        T.retune_sketch(self._static_arrs, rank=self._sketch_rank)
        for state in self._banks.values():
            arrs = state.arrs
            S = state.n_scenarios
            for k in ("pmu", "slot_psq"):
                old = arrs.pop(k, None)
                if old is not None:
                    T.free(old)
            arrs["pmu"] = T.alloc("pm", (self.nt * self._sketch_rank, S))
            arrs["slot_psq"] = T.alloc("pq", (self.nt, S))
            if self._sketch_mode == "pca":
                sk = SlotSketch.from_bank(
                    arrs["wmu"].array, self.nt, self.nd, self._sketch_rank
                )
            else:
                sk = self._sketch
            sk.project_bank_columns(
                arrs["wmu"].array, arrs["pmu"].array,
                arrs["slot_psq"].array, 0, S,
            )
            state.sketch = sk
            self.budget.register(
                f"{self.budget_prefix}:bank:{state.key}", state.nbytes
            )
            adopt_ctx = StageContext(bank=arrs)
            for s, (c0, c1) in enumerate(state.shards):
                for ch in state.replicas[s]:
                    if T.alive(ch):
                        T.send_stage(
                            ch,
                            protocol.AdoptShard(key=state.key, c0=c0, c1=c1),
                            adopt_ctx,
                        )

    def rank_history(self) -> List[Dict[str, float]]:
        """Committed rank changes, oldest first (empty when rank is pinned)."""
        return [dict(e) for e in self._rank_events]

    # ------------------------------------------------------------------
    # Micro-batching queue
    # ------------------------------------------------------------------
    def submit(
        self,
        stream: np.ndarray,
        k_slots: int,
        bank=None,
        op: str = "identify",
    ) -> FabricTicket:
        """Admit one stream; returns a :class:`FabricTicket`.

        Pending tickets are fused into one stacked pass — one fleet
        advance, one sharded identification (or forecast) — when
        ``max_batch`` of them accumulate or :meth:`flush` is called.
        ``op`` is ``"identify"``, ``"forecast"``, or ``"forecast_mixture"``
        — every fabric operation rides this one admission path, so an
        event-driven caller (the twin orchestrator, the async ingest
        gateway) can interleave identification and bank-conditioned
        mixture forecasts in the same micro-batch queue.  Mixture tickets
        resolve to the same
        :class:`~repro.inference.forecast.QoIForecast` a direct
        :meth:`forecast_mixture` call returns (pinned by the
        queue-equivalence suite in ``tests/serve/test_fabric.py``).
        """
        self._check_open()
        if op not in ("identify", "forecast", "forecast_mixture"):
            raise ValueError(
                "op must be 'identify', 'forecast', or 'forecast_mixture', "
                f"got {op!r}"
            )
        d = np.asarray(stream, dtype=np.float64)
        if d.shape != (self.nt, self.nd):
            raise ValueError(f"stream must be ({self.nt},{self.nd}), got {d.shape}")
        if not 1 <= int(k_slots) <= self.nt:
            # Reject now, not at flush time — a bad horizon must not be
            # able to poison the batch its ticket would have joined.
            raise ValueError(f"k_slots must lie in [1, {self.nt}]")
        with self._dispatch_lock:
            if op == "forecast":
                key = ""  # bank-free: plain partial-data forecasts
            else:
                state = self._resolve_bank(bank)
                if op == "forecast_mixture" and "qoi" not in state.arrs:
                    # Reject at admission, not at flush — a QoI-less bank
                    # must not poison the batch its ticket would join.
                    raise RuntimeError(
                        "bank was attached without QoI records; no forecast "
                        "mixture (attach a ScenarioBank with a p2q-complete "
                        "inversion)"
                    )
                key = state.key
            ticket = FabricTicket(self)
            self._pending.append((key, ticket, d, int(k_slots), op))
            if len(self._pending) >= self.config.max_batch:
                self.flush()
            elif self.config.max_queue_ms is not None and self._flush_timer is None:
                # Queueing deadline: a timer flushes this partial batch if
                # nothing else does first.  The timer fires into the
                # dispatch lock, so it can never interleave with a
                # foreground request (single-dispatcher invariant) — true
                # for the wall clock's background thread and for a
                # ManualClock firing from the advancing thread alike.
                self._flush_timer = self._timesource.timer(
                    self.config.max_queue_ms / 1e3, self._deadline_flush
                )
        return ticket

    def _deadline_flush(self) -> None:
        """Timer-thread entry: flush whatever is pending at the deadline."""
        with self._dispatch_lock:
            self._flush_timer = None
            if not self._closed and self._pending:
                self.flush()

    def flush(self) -> int:
        """Process all pending tickets; returns the number resolved.

        Tickets are grouped by (bank, operation); each group becomes one
        stacked request, and every ticket resolves to its own row of the
        group result.  Failure isolation is strictly per group: an error
        while processing one group fails only that group's tickets (their
        :meth:`FabricTicket.result` re-raises it), other groups still
        complete, and ``flush`` itself never raises — the tickets are the
        error channel, so a successful ticket's ``result()`` can never
        surface another group's exception.
        """
        with self._dispatch_lock:
            if self._flush_timer is not None:
                self._flush_timer.cancel()
                self._flush_timer = None
            return self._flush_locked()

    def _flush_locked(self) -> int:
        pending, self._pending = self._pending, []
        groups: Dict[Tuple[str, str], List] = {}
        for item in pending:
            groups.setdefault((item[0], item[4]), []).append(item)
        for (key, op), items in groups.items():
            try:
                D = np.stack([d for _, _, d, _, _ in items], axis=-1)
                ks = np.array([k for _, _, _, k, _ in items], dtype=np.int64)
                if op == "forecast":
                    fleet = self.engine.open_fleet(D)
                    fleet.advance(ks)
                    for (_, ticket, _, _, _), fc in zip(items, fleet.forecasts()):
                        ticket._resolve(fc)
                elif op == "forecast_mixture":
                    fcs = self.forecast_mixture(D, ks, bank=key)
                    for (_, ticket, _, _, _), fc in zip(items, fcs):
                        ticket._resolve(fc)
                else:
                    result = self.identify(D, ks, bank=key)
                    for j, (_, ticket, _, _, _) in enumerate(items):
                        ticket._resolve(_slice_result(result, j))
            except Exception as exc:  # noqa: BLE001 - routed to the tickets
                for _, ticket, _, _, _ in items:
                    ticket._fail(exc)
        return len(pending)

    def forecast(
        self,
        streams: Union[np.ndarray, Sequence[np.ndarray]],
        k_slots: Union[int, Sequence[int], np.ndarray],
        times: Optional[np.ndarray] = None,
    ) -> List[QoIForecast]:
        """Partial-data forecasts through the fabric's shared engine.

        Identical results (bitwise) to
        :meth:`~repro.serve.server.BatchedPhase4Server.forecast_partial_batch`
        — forecasting is per-stream work, so it stays in the parent; the
        fabric adds only the micro-batch fusion.
        """
        self._check_open()
        D = self._stack(streams)
        fleet = self.engine.open_fleet(D)
        fleet.advance(self._targets(k_slots, D.shape[2]))
        return fleet.forecasts(times=times)

    def forecast_mixture(
        self,
        streams: Union[np.ndarray, Sequence[np.ndarray]],
        k_slots: Union[int, Sequence[int], np.ndarray],
        bank=None,
        times: Optional[np.ndarray] = None,
        prior_weights: Optional[np.ndarray] = None,
    ) -> List[QoIForecast]:
        """Bank-conditioned forecast mixtures, sharded across the channels.

        The fabric-side analogue of
        :meth:`~repro.serve.identify.IdentificationSession.forecast_mixture`:
        per stream, the scenario-conditioned forecasts ``E[q | d_k, s] =
        q_s + Y_k^T (w_k(d) - w_k(mu_s))`` mixed over the *exhaustive*
        posterior ``p(s | d_k)`` and moment-matched to one Gaussian whose
        covariance adds the between-scenario spread to the horizon's
        posterior covariance.  The per-scenario QoI records were
        distributed to the shards at :meth:`attach_bank` (requires a
        :class:`~repro.serve.scenarios.ScenarioBank` and a p2q operator);
        each shard scatters its partial mixture moments into a transient
        allocation and the parent gathers the moment-matched bands —
        matching the flat single-process path to machine precision
        (pinned in ``tests/serve/test_sketch.py``).  Channel loss
        degrades exactly like identification: missing shard moments are
        computed in the parent.
        """
        with self._dispatch_lock:
            self._check_open()
            D = self._stack(streams)
            targets = self._targets(k_slots, D.shape[2])
            state = self._resolve_bank(bank)
            if "qoi" not in state.arrs:
                raise RuntimeError(
                    "bank was attached without QoI records; no forecast mixture "
                    "(attach a ScenarioBank with a p2q-complete inversion)"
                )
            out: List[Optional[QoIForecast]] = [None] * D.shape[2]
            for j0 in range(0, D.shape[2], self.config.max_batch):
                j1 = min(j0 + self.config.max_batch, D.shape[2])
                self._mixture_batch(
                    D[:, :, j0:j1], targets[j0:j1], state,
                    out, j0, times, prior_weights,
                )
            return out  # type: ignore[return-value]

    def _ensure_geometry_segment(self, exclude: str):
        """The shared geometry-rows allocation ``Y``, created on first use."""
        if self._Y_arr is None:
            n_rows = self.nt * self.nd
            nbytes = 8 * n_rows * self.engine._nb
            self._make_room(nbytes, exclude=exclude)
            self._Y_arr = self._transport.alloc("Y", (n_rows, self.engine._nb))
            self._Y_arr.array[:] = self.engine.geometry_rows(self.nt)
            self.budget.register(f"{self.budget_prefix}:geometry", nbytes)
        return self._Y_arr

    def _mixture_batch(
        self, D, targets, state, out, j0, times, prior_weights
    ) -> None:
        """One micro-batch of sharded mixture forecasts into ``out[j0:]``."""
        eng = self.engine
        J = D.shape[2]
        nb = eng._nb
        Y = self._ensure_geometry_segment(exclude=state.key)
        # Exhaustive probabilities (bitwise equal to the flat session's)
        # written where every shard can read them; identification leaves
        # the request fleet's states in the shared scratch block.
        result = self._identify_batch(
            D, targets, state, prior_weights,
            screen=False, certified=None, screen_top=None,
        )
        state.views["pr"][:J] = result.probabilities
        means = self._request_fleet.forecast_means()
        self._request_fleet = None

        T = self._transport
        n_shards = len(state.shards)
        need = 8 * n_shards * (J + nb * J + J * nb * nb)
        self._make_room(need, exclude=state.key)
        self.budget.register(f"{self.budget_prefix}:mixture", need)
        outs = {
            "m0": T.alloc("m0", (n_shards, J)),
            "m1": T.alloc("m1", (n_shards, nb, J)),
            "m2": T.alloc("m2", (n_shards, J, nb, nb)),
        }
        try:
            outv = _views(outs)
            bankv = state.views
            ctx = StageContext(bank=state.arrs, outs=outs, geometry=Y)
            req_id = self._req_counter
            self._req_counter += 1
            shard_of = {c: i for i, c in enumerate(state.shards)}
            lost = self._run_stage(
                state, "mixture", req_id,
                lambda c0, c1: (
                    protocol.MixtureStage(
                        req_id=req_id, key=state.key, n_streams=J,
                        shard_idx=shard_of[(c0, c1)], c0=c0, c1=c1,
                    ),
                    ctx,
                ),
                lambda c0, c1: _mixture_shard(
                    Y.array, self._static, bankv, outv, self.nd, J,
                    shard_of[(c0, c1)], c0, c1,
                ),
            )
            # The internal exhaustive identification already published its
            # report; a channel lost (or failed over) during the mixture
            # scatter itself must be accounted there too, or the
            # degradation is invisible.
            self.last_report.workers_lost += lost
            self.last_report.failovers = self._req_failovers
            if times is None:
                times = np.arange(1, self.nt + 1, dtype=np.float64)
            hz = self._static["hz"][:J]
            for j in range(J):
                k = int(hz[j])
                s0 = float(outv["m0"][:, j].sum())
                s1 = outv["m1"][:, :, j].sum(axis=0)
                s2 = outv["m2"][:, j].sum(axis=0)
                mix_mean = s0 * means[:, j] + s1
                cov = eng.covariance_at(k) + (s2 - np.outer(s1, s1))
                out[j0 + j] = QoIForecast(
                    times=times,
                    mean=mix_mean.reshape(eng.nt, eng.nq),
                    covariance=cov,
                )
        finally:
            for a in outs.values():
                T.free(a)
            self.budget.release(f"{self.budget_prefix}:mixture")

    def inject_fault(self, wid: int) -> bool:
        """Chaos fault point: hard-fault one shard channel.

        The injectable failure the chaos suites and the twin orchestrator
        replay mid-event, expressed at the transport seam: over shared
        memory the worker process is killed without warning (SIGKILL — no
        drain, no farewell message — exactly like an OOM kill or node
        loss); over TCP the shard connection is dropped abruptly
        mid-stream.  Subsequent requests observe the dead channel; with
        ``replication_factor > 1`` the stage fails over to a surviving
        replica of the same shard (counted in
        ``FabricReport.failovers``, results stay exact), and only when
        every replica of a shard is gone does the parent recompute it
        (counted in ``FabricReport.workers_lost``);
        :meth:`respawn_workers` restores parallelism.  Returns whether
        the channel was alive to fault (idempotent on dead channels).
        """
        with self._dispatch_lock:
            self._check_open()
            n = self._transport.n_channels
            if not 0 <= wid < n:
                raise IndexError(f"worker id {wid} out of range [0, {n})")
            return self._transport.inject_fault(wid)

    def kill_worker(self, wid: int) -> bool:
        """Alias of :meth:`inject_fault` (the historical single-host name)."""
        return self.inject_fault(wid)

    def respawn_workers(self) -> int:
        """Restore dead shard channels into the existing bank state.

        Lost channels normally stay retired (their shards run in the
        parent, results stay exact but parallelism shrinks).  This
        relaunches/reconnects every dead channel and re-registers every
        attached bank's shard via an ``adopt`` message — over shared
        memory *no state is rebuilt* (the shard arrays are still in
        shared memory, exactly as the lost worker left them; the parent
        recomputed any half-written stage at the time of loss), while a
        reconnected TCP shard receives its built slices again inside the
        adopt frame.  Returns the number of channels restored;
        parallelism returns without a fabric restart.
        """
        with self._dispatch_lock:
            self._check_open()
            T = self._transport
            respawned = 0
            for wid in range(T.n_channels):
                if T.healthy(wid):
                    continue
                if not T.respawn(wid):
                    continue
                for state in self._banks.values():
                    # Re-adopt the shard of this channel's replica group
                    # (with replication_factor == 1 that is shard ``wid``,
                    # the historical mapping).
                    for s, group in enumerate(state.replicas):
                        if wid in group:
                            c0, c1 = state.shards[s]
                            T.send_stage(
                                wid,
                                protocol.AdoptShard(
                                    key=state.key, c0=c0, c1=c1
                                ),
                                StageContext(bank=state.arrs),
                            )
                            break
                respawned += 1
            self._workers_respawned += respawned
            return respawned

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    def report(self) -> Dict[str, float]:
        """Aggregate fabric counters (matching the server's report style)."""
        last = self.last_report
        return {
            "fabric_workers": float(self._transport.n_channels),
            "fabric_workers_alive": float(self._transport.healthy_count()),
            "fabric_workers_respawned": float(self._workers_respawned),
            "fabric_replication": float(self.config.replication_factor),
            "fabric_failovers": float(self._failovers),
            "fabric_sketch_rank": float(self._sketch_rank),
            "fabric_sketch_mode_pca": 1.0 if self._sketch_mode == "pca" else 0.0,
            "fabric_auto_rank": 1.0 if self._auto_rank else 0.0,
            "fabric_sketch_retunes": float(self._sketch_retunes),
            "fabric_screened_requests": float(self._screened_requests),
            "fabric_screen_fallbacks": float(self._screen_fallbacks),
            "fabric_screened_columns": float(self._screened_columns),
            "fabric_pruned_columns": float(self._pruned_columns),
            "fabric_requests": float(self._requests_served),
            "fabric_streams_served": float(self._streams_served),
            "fabric_banks_attached": float(len(self._banks)),
            "fabric_banks_evicted": float(self._banks_evicted),
            "fabric_shared_bytes": float(self.state_nbytes()),
            "fabric_budget_used_bytes": float(self.budget.used),
            "fabric_last_pruned_fraction": float(last.pruned_fraction),
            "fabric_last_workers_lost": float(last.workers_lost),
            "fabric_last_failovers": float(last.failovers),
        }

    def state_nbytes(self) -> int:
        """Bytes held in shared segments (static + geometry + attached banks)."""
        n = sum(a.nbytes for a in self._static_arrs.values())
        if self._Y_arr is not None:
            n += self._Y_arr.nbytes
        return n + sum(b.nbytes for b in self._banks.values())

    def banks(self) -> List[str]:
        """Keys of the currently attached banks."""
        return list(self._banks)

    def close(self) -> None:
        """Stop the channels and unlink every shared segment (idempotent).

        Serializes through the dispatch lock: a deadline-flush timer
        callback already past its ``cancel()`` point either completes
        before teardown starts or observes ``_closed`` and does nothing —
        it can never race shard channels or half-unlinked segments.
        Double-close is a no-op, and the transport's allocation ledger is
        drained last, so even allocations an error path failed to free
        individually are released exactly once.
        """
        with self._dispatch_lock:
            self._close_locked()

    def _close_locked(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._flush_timer is not None:
            self._flush_timer.cancel()
            self._flush_timer = None
        T = self._transport
        T.shutdown_channels()
        for state in list(self._banks.values()):
            for a in state.arrs.values():
                T.free(a)
            self.budget.release(f"{self.budget_prefix}:bank:{state.key}")
        self._banks.clear()
        for a in self._static_arrs.values():
            T.free(a)
        self.budget.release(f"{self.budget_prefix}:static")
        if self._Y_arr is not None:
            T.free(self._Y_arr)
            self._Y_arr = None
            self.budget.release(f"{self.budget_prefix}:geometry")
        # Ledger backstop: anything an error path allocated but never
        # freed individually goes now, and the GC finalizer stands down.
        T.release_all()
        self._finalizer.detach()

    def __enter__(self) -> "ServingFabric":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - best-effort cleanup
        try:
            self.close()
        except Exception:  # noqa: BLE001
            pass

    # ------------------------------------------------------------------
    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("fabric is closed")

    def _stack(self, streams) -> np.ndarray:
        if isinstance(streams, np.ndarray):
            D = np.asarray(streams, dtype=np.float64)
            if D.ndim == 2:
                D = D[:, :, None]
        else:
            D = np.stack([np.asarray(s, dtype=np.float64) for s in streams], axis=-1)
        if D.ndim != 3 or D.shape[:2] != (self.nt, self.nd):
            raise ValueError(
                f"streams must stack to ({self.nt},{self.nd},k), got {D.shape}"
            )
        return D

    def _targets(self, k_slots, n: int) -> np.ndarray:
        t = np.asarray(k_slots, dtype=np.int64)
        if t.ndim == 0:
            t = np.full(n, int(t), dtype=np.int64)
        if t.shape != (n,):
            raise ValueError(f"k_slots must be scalar or ({n},), got {t.shape}")
        if t.min() < 1 or t.max() > self.nt:
            raise ValueError(f"k_slots must lie in [1, {self.nt}]")
        return t


def _slice_result(result: IdentificationResult, j: int) -> IdentificationResult:
    """Row ``j`` of a batched result as a one-stream result."""
    return IdentificationResult(
        ids=result.ids,
        horizons=result.horizons[j : j + 1].copy(),
        log_evidence=result.log_evidence[j : j + 1].copy(),
        log_posterior=result.log_posterior[j : j + 1].copy(),
        probabilities=result.probabilities[j : j + 1].copy(),
    )


def _concat_results(results: List[IdentificationResult]) -> IdentificationResult:
    """Stack chunked batch results back into one."""
    return IdentificationResult(
        ids=results[0].ids,
        horizons=np.concatenate([r.horizons for r in results]),
        log_evidence=np.vstack([r.log_evidence for r in results]),
        log_posterior=np.vstack([r.log_posterior for r in results]),
        probabilities=np.vstack([r.probabilities for r in results]),
    )


def _merge_reports(reports: List[FabricReport]) -> FabricReport:
    """One report for a chunked request: sums, ORs, worst-case fractions."""
    first = reports[0]
    return FabricReport(
        bank_key=first.bank_key,
        n_streams=sum(r.n_streams for r in reports),
        n_scenarios=first.n_scenarios,
        screened=any(r.screened for r in reports),
        certified=any(r.certified for r in reports),
        screen_fallback=any(r.screen_fallback for r in reports),
        sketch_rank=max(r.sketch_rank for r in reports),
        sketch_mode=next((r.sketch_mode for r in reports if r.sketch_mode), ""),
        rank_changed=any(r.rank_changed for r in reports),
        backend=first.backend,
        transport=first.transport,
        n_candidates=max(r.n_candidates for r in reports),
        pruned_fraction=min(r.pruned_fraction for r in reports),
        workers_used=max(r.workers_used for r in reports),
        # Distinct workers, not per-chunk recompute events: a worker lost
        # in chunk 1 is the same worker the later chunks route around.
        workers_lost=max(r.workers_lost for r in reports),
        replication=first.replication,
        # Failovers ARE per-chunk re-dispatch events; sum them.
        failovers=sum(r.failovers for r in reports),
        t_fleet=sum(r.t_fleet for r in reports),
        t_screen=sum(r.t_screen for r in reports),
        t_exact=sum(r.t_exact for r in reports),
        t_total=sum(r.t_total for r in reports),
    )


# ----------------------------------------------------------------------
# CLI demo: build a demo twin + bank and identify through the fabric
# ----------------------------------------------------------------------
def main(argv: Optional[Sequence[str]] = None) -> None:
    """Self-contained fabric demo (``python -m repro.serve.fabric``)."""
    import argparse

    from repro.serve.reporting import format_fabric_report, format_identification
    from repro.serve.scenarios import ScenarioBank
    from repro.twin.cascadia import CascadiaTwin
    from repro.twin.config import TwinConfig

    ap = argparse.ArgumentParser(
        description="Sharded hierarchical scenario identification demo"
    )
    ap.add_argument("--scenarios", type=int, default=256, help="bank size")
    ap.add_argument("--streams", type=int, default=16, help="concurrent streams")
    ap.add_argument("--workers", type=int, default=2, help="worker processes")
    ap.add_argument("--horizon", type=int, default=8, help="slots observed")
    ap.add_argument("--stride", type=int, default=8, help="coarse-screen stride")
    ap.add_argument(
        "--sketch-rank", type=int, default=0,
        help="per-slot sketch rank r (0 = norm-only screen brackets)",
    )
    ap.add_argument(
        "--budget-mib", type=float, default=512.0, help="shared-memory budget"
    )
    ap.add_argument(
        "--no-certify", action="store_true",
        help="heuristic screen (fixed candidate count, no equivalence proof)",
    )
    args = ap.parse_args(argv)

    cfg = TwinConfig.demo_2d(nx=12, n_slots=24, n_sensors=12, n_qoi=3)
    twin = CascadiaTwin(cfg).setup()
    twin.phase1()
    bank = ScenarioBank(twin.operator.bottom_trace, cfg.n_slots, cfg.dt_obs, seed=7)
    bank.generate(args.scenarios)
    d_clean, noise, d_obs = bank.observation_batch(
        twin.F, noise_relative=cfg.noise_relative
    )
    inv = twin.phase23(noise)

    with ServingFabric(
        inv,
        [bank],
        n_workers=args.workers,
        screen_stride=args.stride,
        sketch_rank=args.sketch_rank,
        certified=not args.no_certify,
        max_batch=min(args.streams, 32),
        memory_budget=int(args.budget_mib * (1 << 20)),
    ) as fabric:
        t0 = time.perf_counter()
        result = fabric.identify(d_obs[:, :, : args.streams], k_slots=args.horizon)
        dt = time.perf_counter() - t0
        print(
            format_identification(
                result, truth_ids=bank.ids()[: args.streams], top=2
            )
        )
        print()
        print(format_fabric_report(fabric.last_report, fabric.report()))
        print(f"identified {args.streams} streams x {len(bank)} scenarios "
              f"in {dt * 1e3:.1f} ms")


if __name__ == "__main__":
    main()
