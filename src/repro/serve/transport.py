"""Shard transports: how stage messages and bank state reach the shards.

The fabric (:mod:`repro.serve.fabric`) orchestrates stages; *where* the
shards live and *how* bytes reach them is this module's job, behind one
seam — :class:`ShardTransport` — with two implementations:

:class:`SharedMemoryTransport`
    The historical single-host path, extracted verbatim: a pool of
    worker processes over named shared-memory segments
    (:mod:`multiprocessing.shared_memory`), one private duplex pipe per
    worker carrying small control tuples (never a shared queue — a
    sibling killed while holding a shared queue's writer semaphore would
    wedge every other worker's acks forever; a dead pipe is just an EOF
    on one channel).  Workers build their own bank shards from the
    shared Cholesky factor; results land directly in shared arrays, so
    there is no gather step.  Bitwise-identical to the pre-seam fabric.

:class:`TcpTransport`
    The same typed protocol (:mod:`repro.serve.protocol`) framed over
    length-prefixed sockets to :class:`ShardServer` peers — loopback
    "multi-host" shards in tests and CI, real hosts in deployment.  The
    parent builds the full bank state locally (it needs it anyway for
    graceful-degradation fallback) and ships each shard its built column
    slices at attach; per request only the small scratch block travels,
    and the transport scatters each ack's result arrays (bounds /
    evidence / moments) back into the parent's arrays.

Both transports expose the same fault surface: ``inject_fault`` is a
SIGKILL on the worker process or an abrupt connection drop, ``respawn``
relaunches or reconnects — so the chaos suites and the twin
orchestrator exercise either transport unchanged.

``python -m repro.serve.transport --serve PORT`` runs a shard server;
``--smoke`` runs the loopback certified==exhaustive self-test CI gates
on.
"""

from __future__ import annotations

import asyncio
import os
import secrets
import selectors
import socket
import struct
import threading
import time
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from multiprocessing import get_context, shared_memory
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.serve import protocol
from repro.serve.shardops import (
    build_shard as _build_shard,
    exact_shard as _exact_shard,
    mixture_shard as _mixture_shard,
    screen_shard as _screen_shard,
)
from repro.serve.sketch import SlotSketch

__all__ = [
    "ShardServer",
    "ShardTransport",
    "SharedMemoryTransport",
    "StageContext",
    "TcpTransport",
    "start_local_shards",
]

_FRAME_PREFIX = struct.Struct(">Q")


# ----------------------------------------------------------------------
# Shared-memory plumbing (verbatim single-host path)
# ----------------------------------------------------------------------
def _unique_name(label: str) -> str:
    """A short collision-safe shared-memory segment name."""
    return f"rf{os.getpid():x}-{secrets.token_hex(4)}-{label}"


class _SharedArray:
    """A numpy array backed by a named shared-memory segment.

    The parent :meth:`create`\\ s segments; workers :meth:`attach` by the
    ``(name, shape, dtype)`` spec carried in control messages.  Attached
    instances :meth:`close` their mapping; only the creator :meth:`unlink`.
    """

    def __init__(self, shm: shared_memory.SharedMemory, shape, dtype, owner: bool):
        self._shm = shm
        self.array = np.ndarray(shape, dtype=dtype, buffer=shm.buf)
        self.owner = owner

    @classmethod
    def create(cls, label: str, shape, dtype=np.float64) -> "_SharedArray":
        nbytes = max(int(np.prod(shape)) * np.dtype(dtype).itemsize, 1)
        shm = shared_memory.SharedMemory(
            create=True, size=nbytes, name=_unique_name(label)
        )
        out = cls(shm, shape, dtype, owner=True)
        out.array.fill(0)
        return out

    @property
    def spec(self) -> Tuple[str, tuple, str]:
        return (self._shm.name, tuple(self.array.shape), self.array.dtype.str)

    @classmethod
    def attach(cls, spec: Tuple[str, tuple, str]) -> "_SharedArray":
        name, shape, dtype = spec
        return cls(shared_memory.SharedMemory(name=name), shape, dtype, owner=False)

    @property
    def nbytes(self) -> int:
        return int(self.array.nbytes)

    def close(self) -> None:
        try:
            self._shm.close()
        except (OSError, BufferError):  # pragma: no cover - defensive
            pass

    def unlink(self) -> None:
        if self.owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass


class _LocalArray:
    """Plain-numpy stand-in for :class:`_SharedArray` on networked
    transports (no segment exists; remote shards get byte copies)."""

    def __init__(self, shape, dtype=np.float64):
        self.array = np.zeros(shape, dtype=dtype)
        self.owner = True

    @property
    def spec(self) -> Tuple[str, tuple, str]:
        return ("", tuple(self.array.shape), self.array.dtype.str)

    @property
    def nbytes(self) -> int:
        return int(self.array.nbytes)

    def close(self) -> None:
        pass

    def unlink(self) -> None:
        pass


def _attach_all(specs: Dict[str, Tuple[str, tuple, str]]) -> Dict[str, _SharedArray]:
    return {k: _SharedArray.attach(v) for k, v in specs.items()}


def _views(arrs: Mapping[str, object]) -> Dict[str, np.ndarray]:
    return {k: v.array for k, v in arrs.items()}


# ----------------------------------------------------------------------
# Worker process (shared-memory channel peer)
# ----------------------------------------------------------------------
def _worker_main(worker_id, conn, static_specs, nd, screen_rtol=0.0):
    """Worker loop: attach shared state, serve screen/exact shard tasks.

    All bulk data arrives through shared memory; the per-worker duplex
    pipe carries only small control tuples.  The pipe is deliberately NOT
    a shared queue: ``multiprocessing.Queue`` serializes writers through a
    shared semaphore, and a sibling killed while holding it (SIGKILL,
    OOM) would wedge every other worker's acks forever — with one private
    pipe per worker, a dead worker can only break its own channel, which
    the parent observes as EOF and routes around.  Any exception is
    reported and the worker keeps serving (the parent decides whether to
    retire it).
    """
    static_arrs = _attach_all(static_specs)
    static = _views(static_arrs)
    # Rehydrate the fabric's slot sketch from the shared projection matrix
    # (nt falls out of the cumulative log-diagonal's length).
    sketch = None
    if "P" in static:
        nt = static["logdiag"].shape[0] - 1
        sketch = SlotSketch(
            nt, nd, static["P"].shape[0] // nt, matrix=static["P"]
        )
    banks: Dict[str, Tuple[Dict[str, _SharedArray], int, int]] = {}
    try:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):  # parent is gone
                break
            tag = msg[0]
            if tag == "stop":
                break
            try:
                if tag == "attach":
                    _, key, specs, mu_spec, c0, c1, build_sketch = msg
                    arrs = _attach_all(specs)
                    mu = _SharedArray.attach(mu_spec)
                    v = _views(arrs)
                    # build_sketch=False: the parent projects the sketch
                    # itself after the build (bank-PCA bases are derived
                    # from the completed bank state, which workers cannot
                    # see mid-build) — attach the segments, skip the gemm.
                    _build_shard(
                        static["L"], mu.array, v["wmu"], v["slot_musq"],
                        v["musq_cum"], nd, c0, c1,
                        sketch=sketch if (build_sketch and "pmu" in v) else None,
                        pmu=v.get("pmu"), slot_psq=v.get("slot_psq"),
                    )
                    mu.close()
                    banks[key] = (arrs, c0, c1)
                    conn.send(("done", ("attach", key)))
                elif tag == "retune":
                    # Rank renegotiation: swap the sketch-bearing static
                    # segments for the new-rank ones and rebuild the
                    # worker's SlotSketch; bank pmu/slot_psq re-arrive via
                    # the parent's follow-up adopt broadcast.
                    _, specs, rank = msg
                    for k in ("P", "wd_p", "wd_psq"):
                        old = static_arrs.pop(k, None)
                        if old is not None:
                            old.close()
                        static.pop(k, None)
                    if "P" in specs:
                        new_arrs = _attach_all(specs)
                        static_arrs.update(new_arrs)
                        static.update(_views(new_arrs))
                        nt = static["logdiag"].shape[0] - 1
                        sketch = SlotSketch(
                            nt, nd, static["P"].shape[0] // nt,
                            matrix=static["P"],
                        )
                    else:
                        sketch = None
                    conn.send(("done", ("retune", rank)))
                elif tag == "adopt":
                    # Re-registration into *already built* shared segments
                    # (worker re-spawn, rank renegotiation): attach only,
                    # never rebuild.  A re-adopt of a held bank swaps the
                    # segment set, so stale mappings are closed first.
                    _, key, specs, c0, c1 = msg
                    stale, _, _ = banks.pop(key, ({}, 0, 0))
                    for a in stale.values():
                        a.close()
                    banks[key] = (_attach_all(specs), c0, c1)
                elif tag == "detach":
                    _, key = msg
                    arrs, _, _ = banks.pop(key, ({}, 0, 0))
                    for a in arrs.values():
                        a.close()
                elif tag == "screen":
                    _, req_id, key, J, slots, use_sketch = msg
                    arrs, c0, c1 = banks[key]
                    _screen_shard(
                        static, _views(arrs), nd, J, slots, c0, c1,
                        use_sketch=use_sketch, rtol=screen_rtol,
                    )
                    conn.send(("done", req_id))
                elif tag == "exact":
                    _, req_id, key, J, cols = msg
                    arrs, c0, c1 = banks[key]
                    _exact_shard(static, _views(arrs), nd, J, cols, c0, c1)
                    conn.send(("done", req_id))
                elif tag == "mixture":
                    _, req_id, key, J, y_spec, out_specs, shard_idx = msg
                    arrs, c0, c1 = banks[key]
                    y = _SharedArray.attach(y_spec)
                    out_arrs = _attach_all(out_specs)
                    try:
                        _mixture_shard(
                            y.array, static, _views(arrs), _views(out_arrs),
                            nd, J, shard_idx, c0, c1,
                        )
                    finally:
                        y.close()
                        for a in out_arrs.values():
                            a.close()
                    conn.send(("done", req_id))
            except Exception as exc:  # noqa: BLE001 - reported to the parent
                req = msg[1] if len(msg) > 1 else None
                try:
                    conn.send(("error", req, repr(exc)))
                except (OSError, BrokenPipeError):
                    break
    finally:
        for arrs, _, _ in banks.values():
            for a in arrs.values():
                a.close()
        for a in static_arrs.values():
            a.close()


class _Worker:
    """Parent-side handle for one worker process and its private pipe."""

    def __init__(self, process, conn) -> None:
        self.process = process
        self.conn = conn
        self.alive = True

    def send(self, msg) -> bool:
        if not (self.alive and self.process.is_alive()):
            self.alive = False
            return False
        try:
            self.conn.send(msg)
        except (OSError, BrokenPipeError, ValueError):
            self.alive = False
            return False
        return True

    def retire(self) -> None:
        """Mark dead and stop the process so it can never race on buffers."""
        self.alive = False
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=1.0)


# ----------------------------------------------------------------------
# The transport seam
# ----------------------------------------------------------------------
@dataclass
class StageContext:
    """Array handles a stage message may need at the transport boundary.

    The fabric passes the relevant handles with every
    :meth:`ShardTransport.send_stage` call; each transport picks what it
    needs — segment specs over shared memory, sliced byte payloads and
    scatter targets over TCP.
    """

    bank: Optional[Mapping[str, object]] = None
    mu: Optional[object] = None
    outs: Optional[Mapping[str, object]] = None
    geometry: Optional[object] = None


class ShardTransport:
    """Abstract seam between the fabric and its shard channels.

    A transport owns two things.  **Array allocation**: every fabric
    array (static, bank, scratch, transient) is allocated through
    :meth:`alloc`, so the single-host transport can hand out named
    shared-memory segments while networked transports hand out plain
    local arrays — and every live handle sits in an internal ledger that
    :meth:`close` drains, making teardown leak-free even on error paths.
    **Stage channels**: :meth:`send_stage`/:meth:`wait` move typed
    protocol messages to ``n_channels`` shard peers and surface replies
    (or channel death) to the fabric's stage loop; ``retire`` /
    ``inject_fault`` / ``respawn`` give every transport the same
    fault-injection surface the chaos suites drive.

    ``remote_builds`` declares whether shards build bank state
    themselves from the shared factor (shared memory) or receive
    parent-built slices (TCP).
    """

    name = "abstract"
    remote_builds = False

    def __init__(self) -> None:
        self._handles: List[object] = []
        self._started = False
        self._channels_down = False

    # -- array seam ----------------------------------------------------
    def alloc(self, label: str, shape, dtype=np.float64):
        """Allocate one fabric array; the handle joins the leak ledger."""
        h = self._alloc(label, shape, dtype)
        self._handles.append(h)
        return h

    def _alloc(self, label, shape, dtype):
        raise NotImplementedError

    def free(self, handle) -> None:
        """Close + unlink one handle and drop it from the leak ledger."""
        handle.close()
        handle.unlink()
        try:
            self._handles.remove(handle)
        except ValueError:  # pragma: no cover - already freed
            pass

    def release_all(self) -> None:
        """Backstop: close + unlink every still-ledgered handle."""
        handles, self._handles = self._handles, []
        for h in handles:
            h.close()
            h.unlink()

    # -- channel lifecycle ---------------------------------------------
    def start(self, static: Mapping[str, object], *, nd: int, nt: int,
              screen_rtol: float = 0.0, sketch_rank: int = 0) -> None:
        """Bring up the shard channels against the static arrays."""
        if self._started:
            raise RuntimeError("transport already serves a fabric")
        self._started = True
        self._static_handles = dict(static)
        self._nd, self._nt = nd, nt
        self._screen_rtol = float(screen_rtol)
        self._sketch_rank = int(sketch_rank)

    @property
    def n_channels(self) -> int:
        """Number of shard channels (worker slots / shard connections)."""
        raise NotImplementedError

    def alive(self, i: int) -> bool:
        """Whether channel ``i`` is still marked usable."""
        raise NotImplementedError

    def healthy(self, i: int) -> bool:
        """Like :meth:`alive`, but probing the peer's actual liveness."""
        return self.alive(i)

    def alive_count(self) -> int:
        """Channels still marked usable."""
        return sum(self.alive(i) for i in range(self.n_channels))

    def healthy_count(self) -> int:
        """Channels whose peer probes as actually live."""
        return sum(self.healthy(i) for i in range(self.n_channels))

    # -- stages --------------------------------------------------------
    def send_stage(self, i: int, msg: protocol.Message,
                   ctx: Optional[StageContext] = None) -> bool:
        """Dispatch one stage message to channel ``i``; False if it is
        dead (the fabric then computes that shard locally)."""
        raise NotImplementedError

    def broadcast(self, msg: protocol.Message,
                  ctx: Optional[StageContext] = None) -> None:
        """Best-effort fire-and-forget send to every live channel."""
        for i in range(self.n_channels):
            if self.alive(i):
                self.send_stage(i, msg, ctx)

    def wait(self, channel_ids: Sequence[int],
             timeout: float) -> List[Tuple[int, Optional[protocol.Message]]]:
        """Collect replies from the given channels for up to ``timeout``
        seconds.  Returns ``(channel, Ack | ErrorReply | None)`` events —
        ``None`` means the channel died (EOF)."""
        raise NotImplementedError

    # -- sketch renegotiation ------------------------------------------
    def retune_sketch(self, static: Mapping[str, object], *,
                      rank: int) -> None:
        """Adopt a renegotiated sketch rank: ``static`` is the fabric's
        updated static handle map (sketch segments already swapped for
        the new-rank ones, or absent for rank 0).  Channel peers are
        told to re-attach; bank projections re-arrive via the fabric's
        follow-up adopt broadcast."""
        self._static_handles = dict(static)
        self._sketch_rank = int(rank)

    # -- faults --------------------------------------------------------
    def retire(self, i: int) -> None:
        """Mark channel ``i`` dead and stop its peer racing on state."""
        raise NotImplementedError

    def inject_fault(self, i: int) -> bool:
        """Chaos hook: hard-fault channel ``i`` (SIGKILL / connection
        drop).  Returns whether it was alive to fault."""
        raise NotImplementedError

    def respawn(self, i: int) -> bool:
        """Restore a dead channel (relaunch / reconnect); False if the
        channel was healthy or restoration failed."""
        raise NotImplementedError

    def shutdown_channels(self) -> None:
        """Gracefully stop every channel (idempotent)."""
        raise NotImplementedError

    def close(self) -> None:
        """Stop channels and drain the array ledger (idempotent)."""
        self.shutdown_channels()
        self.release_all()


# ----------------------------------------------------------------------
# Shared-memory transport
# ----------------------------------------------------------------------
class SharedMemoryTransport(ShardTransport):
    """Single-host transport: worker processes over named shared memory.

    The extracted-verbatim historical path: arrays are
    :class:`_SharedArray` segments, stage messages become the exact
    control tuples :func:`_worker_main` has always served, and workers
    build their own bank shards from the shared Cholesky factor
    (``remote_builds``).  Results land in the shared arrays directly —
    there is no scatter step, which is what keeps this path bitwise
    identical to the pre-seam fabric.
    """

    name = "shared_memory"
    remote_builds = True

    def __init__(self, n_workers: int = 2,
                 start_method: Optional[str] = None) -> None:
        super().__init__()
        if n_workers < 0:
            raise ValueError("n_workers must be >= 0")
        self._n_workers = int(n_workers)
        self._start_method = start_method
        self._mp_context = None
        self.workers: List[_Worker] = []

    def _alloc(self, label, shape, dtype):
        return _SharedArray.create(label, shape, dtype)

    def start(self, static, *, nd, nt, screen_rtol=0.0, sketch_rank=0):
        """Spawn the worker pool attached to the static segments."""
        super().start(static, nd=nd, nt=nt, screen_rtol=screen_rtol,
                      sketch_rank=sketch_rank)
        self._specs = {k: a.spec for k, a in static.items()}
        if self._n_workers > 0:
            method = self._start_method
            if method is None:
                import multiprocessing as mp

                method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
            self._mp_context = get_context(method)
            for wid in range(self._n_workers):
                self.workers.append(self._spawn(wid))

    def _spawn(self, wid: int) -> _Worker:
        ctx = self._mp_context
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        proc = ctx.Process(
            target=_worker_main,
            args=(wid, child_conn, self._specs, self._nd, self._screen_rtol),
            daemon=True,
        )
        proc.start()
        child_conn.close()  # child's end lives in the child now
        return _Worker(proc, parent_conn)

    @property
    def n_channels(self) -> int:
        """Worker slots in the pool."""
        return len(self.workers)

    def alive(self, i: int) -> bool:
        """The worker's flag-level liveness (as last observed)."""
        return self.workers[i].alive

    def healthy(self, i: int) -> bool:
        """Flag-level liveness AND the process actually running."""
        w = self.workers[i]
        return w.alive and w.process.is_alive()

    def send_stage(self, i, msg, ctx=None):
        """Translate the typed message to a control tuple and pipe it."""
        return self.workers[i].send(self._to_tuple(msg, ctx))

    def _to_tuple(self, msg, ctx):
        if isinstance(msg, protocol.BuildShard):
            specs = {k: a.spec for k, a in ctx.bank.items()}
            return ("attach", msg.key, specs, ctx.mu.spec, msg.c0, msg.c1,
                    msg.build_sketch)
        if isinstance(msg, protocol.AdoptShard):
            specs = {k: a.spec for k, a in ctx.bank.items()}
            return ("adopt", msg.key, specs, msg.c0, msg.c1)
        if isinstance(msg, protocol.DetachBank):
            return ("detach", msg.key)
        if isinstance(msg, protocol.ScreenStage):
            return ("screen", msg.req_id, msg.key, msg.n_streams,
                    msg.slots, msg.use_sketch)
        if isinstance(msg, protocol.ExactStage):
            return ("exact", msg.req_id, msg.key, msg.n_streams, msg.cols)
        if isinstance(msg, protocol.MixtureStage):
            out_specs = {k: a.spec for k, a in ctx.outs.items()}
            return ("mixture", msg.req_id, msg.key, msg.n_streams,
                    ctx.geometry.spec, out_specs, msg.shard_idx)
        if isinstance(msg, protocol.Stop):
            return ("stop",)
        raise TypeError(f"no shared-memory encoding for {type(msg).__name__}")

    def wait(self, channel_ids, timeout):
        """Wait on the pending workers' pipes; EOF means a dead worker."""
        by_conn = {self.workers[i].conn: i for i in channel_ids}
        events: List[Tuple[int, Optional[protocol.Message]]] = []
        ready = mp_connection.wait(list(by_conn), timeout=timeout)
        for conn in ready:
            wid = by_conn[conn]
            try:
                msg = conn.recv()
            except (EOFError, OSError):  # worker died mid-task
                events.append((wid, None))
                continue
            if msg[0] == "done":
                events.append((wid, protocol.Ack(req_id=msg[1])))
            elif msg[0] == "error":
                events.append(
                    (wid, protocol.ErrorReply(req_id=msg[1], message=msg[2]))
                )
        return events

    def retune_sketch(self, static, *, rank):
        """Swap sketch segments pool-wide: update the spawn specs (so
        respawned workers see the new rank), broadcast the retune verb,
        and wait for every live worker's ack — a worker that cannot ack
        is retired, exactly as a lost stage channel would be."""
        super().retune_sketch(static, rank=rank)
        self._specs = {k: a.spec for k, a in static.items()}
        sketch_specs = {
            k: self._specs[k] for k in ("P", "wd_p", "wd_psq")
            if k in self._specs
        }
        pending = [
            i for i, w in enumerate(self.workers)
            if w.alive and w.send(("retune", sketch_specs, int(rank)))
        ]
        deadline = time.monotonic() + 30.0
        while pending:
            timeout = deadline - time.monotonic()
            if timeout <= 0:
                break
            events = self.wait(pending, timeout)
            if not events:
                continue
            for wid, reply in events:
                if isinstance(reply, protocol.Ack) and reply.req_id == (
                    "retune", int(rank)
                ):
                    pending.remove(wid)
                elif reply is None:
                    self.retire(wid)
                    pending.remove(wid)
        for wid in pending:  # pragma: no cover - pathological hang
            self.retire(wid)

    def retire(self, i: int) -> None:
        """Terminate the worker so it can never race on shared buffers."""
        self.workers[i].retire()

    def inject_fault(self, i: int) -> bool:
        """Hard-kill the worker process (SIGKILL-style, no drain)."""
        w = self.workers[i]
        was_alive = w.alive and w.process.is_alive()
        if w.process.is_alive():
            w.process.kill()
            w.process.join(timeout=5.0)
        w.alive = False
        return bool(was_alive)

    def respawn(self, i: int) -> bool:
        """Relaunch a dead worker slot into the existing segments."""
        w = self.workers[i]
        if w.alive and w.process.is_alive():
            return False
        w.retire()
        try:
            w.conn.close()
        except OSError:  # pragma: no cover - defensive
            pass
        self.workers[i] = self._spawn(i)
        return True

    def shutdown_channels(self) -> None:
        """Stop every worker: polite stop message, then terminate."""
        if self._channels_down:
            return
        self._channels_down = True
        for w in self.workers:
            try:
                w.send(("stop",))
            except (OSError, ValueError):  # pragma: no cover - defensive
                pass
        for w in self.workers:
            w.process.join(timeout=2.0)
            if w.process.is_alive():
                w.process.terminate()
                w.process.join(timeout=1.0)
            try:
                w.conn.close()
            except OSError:  # pragma: no cover - defensive
                pass


# ----------------------------------------------------------------------
# TCP transport
# ----------------------------------------------------------------------
class _TcpChannel:
    """One parent-side shard connection: framing, buffering, liveness."""

    def __init__(self, address: Tuple[str, int]) -> None:
        self.address = address
        self.sock: Optional[socket.socket] = None
        self.alive = False
        self.sent_geometry = False
        self._rbuf = b""

    def connect(self, timeout: float) -> None:
        self.sock = socket.create_connection(self.address, timeout=timeout)
        self.sock.settimeout(None)
        self.alive = True
        self.sent_geometry = False
        self._rbuf = b""

    def send(self, frame: bytes) -> bool:
        if not self.alive or self.sock is None:
            return False
        try:
            self.sock.sendall(_FRAME_PREFIX.pack(len(frame)) + frame)
        except OSError:
            self.close()
            return False
        return True

    def feed(self, chunk: bytes) -> None:
        self._rbuf += chunk

    def take_frames(self) -> List[bytes]:
        frames = []
        while len(self._rbuf) >= 8:
            (n,) = _FRAME_PREFIX.unpack(self._rbuf[:8])
            if len(self._rbuf) < 8 + n:
                break
            frames.append(self._rbuf[8 : 8 + n])
            self._rbuf = self._rbuf[8 + n :]
        return frames

    def recv_frame(self, timeout: float) -> bytes:
        """Blocking single-frame read (handshake only)."""
        assert self.sock is not None
        self.sock.settimeout(timeout)
        try:
            while True:
                frames = self.take_frames()
                if frames:
                    return frames[0]
                chunk = self.sock.recv(1 << 20)
                if not chunk:
                    raise ConnectionError("shard closed during handshake")
                self.feed(chunk)
        finally:
            if self.alive and self.sock is not None:
                self.sock.settimeout(None)

    def close(self) -> None:
        self.alive = False
        if self.sock is not None:
            try:
                self.sock.close()
            except OSError:  # pragma: no cover - defensive
                pass
            self.sock = None


class TcpTransport(ShardTransport):
    """Networked transport: length-prefixed frames to shard servers.

    ``addresses`` lists the shard peers (``(host, port)`` tuples or
    ``"host:port"`` strings) — one channel each, typically
    :class:`ShardServer` instances (loopback in tests, real hosts in
    deployment).  The parent builds bank state locally
    (``remote_builds`` is False) and ships built column slices at
    attach; per request only the scratch block travels, and each ack's
    result arrays are scattered back into the parent arrays recorded at
    send time.  A dead connection surfaces as an EOF event and the
    fabric recomputes that shard locally — the same graceful degradation
    as a killed worker process.
    """

    name = "tcp"
    remote_builds = False

    def __init__(self, addresses: Sequence, connect_timeout: float = 10.0) -> None:
        super().__init__()
        if not addresses:
            raise ValueError("TcpTransport needs at least one shard address")
        parsed = []
        for a in addresses:
            if isinstance(a, str):
                host, _, port = a.rpartition(":")
                parsed.append((host or "127.0.0.1", int(port)))
            else:
                parsed.append((a[0], int(a[1])))
        self._channels = [_TcpChannel(a) for a in parsed]
        self._connect_timeout = float(connect_timeout)
        self._inflight: Dict[Tuple[int, object], Tuple[protocol.Message, StageContext]] = {}

    def _alloc(self, label, shape, dtype):
        return _LocalArray(shape, dtype)

    def start(self, static, *, nd, nt, screen_rtol=0.0, sketch_rank=0):
        """Connect and handshake every shard channel."""
        super().start(static, nd=nd, nt=nt, screen_rtol=screen_rtol,
                      sketch_rank=sketch_rank)
        self._static_views = {k: a.array for k, a in static.items()}
        for ch in self._channels:
            ch.connect(self._connect_timeout)
            self._handshake(ch)

    def _handshake(self, ch: _TcpChannel) -> None:
        hello = protocol.Hello(
            nd=self._nd, nt=self._nt, screen_rtol=self._screen_rtol,
            sketch_rank=self._sketch_rank,
        )
        # Only the cumulative log-diagonal is static on the wire: builds
        # happen parent-side, so the factor L and the sketch projections
        # never travel.
        if not ch.send(protocol.encode_message(
            hello, {"logdiag": self._static_views["logdiag"]}
        )):
            raise ConnectionError(f"shard {ch.address} rejected the handshake")
        msg, _ = protocol.decode_message(ch.recv_frame(self._connect_timeout))
        if not (isinstance(msg, protocol.Ack) and msg.req_id == "hello"):
            raise protocol.ProtocolError(
                f"shard {ch.address} answered the handshake with {msg!r}"
            )

    @property
    def n_channels(self) -> int:
        """Configured shard connections."""
        return len(self._channels)

    def alive(self, i: int) -> bool:
        """Whether connection ``i`` is still up."""
        return self._channels[i].alive

    @staticmethod
    def _state_slices(bank, c0, c1):
        out = {}
        for k in ("wmu", "musq_cum", "slot_musq", "pmu", "slot_psq", "qoi"):
            h = bank.get(k)
            if h is not None:
                out[k] = h.array[:, c0:c1]
        return out

    def send_stage(self, i, msg, ctx=None):
        """Frame the message with its data plane and record the scatter
        target for the eventual ack."""
        ch = self._channels[i]
        if not ch.alive:
            return False
        arrays: Dict[str, np.ndarray] = {}
        rid = None
        if isinstance(msg, (protocol.BuildShard, protocol.AdoptShard)):
            arrays = self._state_slices(ctx.bank, msg.c0, msg.c1)
            if isinstance(msg, protocol.BuildShard):
                rid = ("attach", msg.key)
        elif isinstance(msg, protocol.ScreenStage):
            arrays = protocol.pack_scratch(
                self._static_views, msg.n_streams, msg.use_sketch
            )
            rid = msg.req_id
        elif isinstance(msg, protocol.ExactStage):
            arrays = protocol.pack_scratch(self._static_views, msg.n_streams, False)
            rid = msg.req_id
        elif isinstance(msg, protocol.MixtureStage):
            J = msg.n_streams
            arrays = {
                "hz": self._static_views["hz"][:J],
                "pr": ctx.bank["pr"].array[:J, msg.c0 : msg.c1],
            }
            if not ch.sent_geometry:
                arrays["Y"] = ctx.geometry.array
            rid = msg.req_id
        ok = ch.send(protocol.encode_message(msg, arrays))
        if ok:
            if isinstance(msg, protocol.MixtureStage):
                ch.sent_geometry = True
            if rid is not None:
                self._inflight[(i, rid)] = (msg, ctx)
        return ok

    def wait(self, channel_ids, timeout):
        """Select over the pending connections, scatter ack payloads."""
        events: List[Tuple[int, Optional[protocol.Message]]] = []
        # Frames already buffered by a previous recv come first.
        for i in channel_ids:
            for frame in self._channels[i].take_frames():
                events.append((i, self._handle_reply(i, frame)))
        if events:
            return events
        sel = selectors.DefaultSelector()
        registered = False
        for i in channel_ids:
            ch = self._channels[i]
            if ch.alive and ch.sock is not None:
                sel.register(ch.sock, selectors.EVENT_READ, i)
                registered = True
            else:
                events.append((i, None))
        if not registered:
            sel.close()
            return events
        ready = sel.select(timeout)
        sel.close()
        for key, _ in ready:
            i = key.data
            ch = self._channels[i]
            try:
                chunk = ch.sock.recv(1 << 20)
            except OSError:
                chunk = b""
            if not chunk:
                ch.close()
                events.append((i, None))
                continue
            ch.feed(chunk)
            for frame in ch.take_frames():
                events.append((i, self._handle_reply(i, frame)))
        return events

    def _handle_reply(self, i, frame):
        try:
            msg, arrays = protocol.decode_message(frame)
        except protocol.ProtocolError as exc:
            self._channels[i].close()
            return protocol.ErrorReply(req_id=None, message=repr(exc))
        if isinstance(msg, protocol.Ack):
            sent = self._inflight.pop((i, msg.req_id), None)
            if sent is not None:
                self._scatter(sent[0], sent[1], arrays)
        elif isinstance(msg, protocol.ErrorReply):
            self._inflight.pop((i, msg.req_id), None)
        return msg

    @staticmethod
    def _scatter(msg, ctx, arrays):
        J = getattr(msg, "n_streams", 0)
        if isinstance(msg, protocol.ScreenStage):
            ctx.bank["lb"].array[:J, msg.c0 : msg.c1] = arrays["lb"]
            ctx.bank["ub"].array[:J, msg.c0 : msg.c1] = arrays["ub"]
        elif isinstance(msg, protocol.ExactStage):
            if msg.cols is None:
                ctx.bank["ev"].array[:J, msg.c0 : msg.c1] = arrays["ev"]
            elif msg.cols.size:
                ctx.bank["ev"].array[:J][:, msg.cols] = arrays["ev"]
        elif isinstance(msg, protocol.MixtureStage):
            ctx.outs["m0"].array[msg.shard_idx, :J] = arrays["m0"]
            ctx.outs["m1"].array[msg.shard_idx, :, :J] = arrays["m1"]
            ctx.outs["m2"].array[msg.shard_idx, :J] = arrays["m2"]

    def retune_sketch(self, static, *, rank):
        """Adopt the new rank parent-side and notify shards (advisory):
        remote screens infer the rank from the scratch arrays shipped
        with every request, so refreshing ``_static_views`` is the whole
        renegotiation — bank projections re-ship via adopt."""
        super().retune_sketch(static, rank=rank)
        self._static_views = {k: a.array for k, a in static.items()}
        self.broadcast(protocol.RetuneSketch(rank=int(rank)))

    def retire(self, i: int) -> None:
        """Close the connection; the shard's per-connection state dies
        with it (no shared buffers to race on)."""
        self._channels[i].close()

    def inject_fault(self, i: int) -> bool:
        """Drop the shard connection mid-stream (chaos hook): a
        best-effort kill frame, then an abrupt local close."""
        ch = self._channels[i]
        was_alive = ch.alive
        if ch.alive:
            ch.send(protocol.encode_message(protocol.KillChannel()))
        ch.close()
        return bool(was_alive)

    def respawn(self, i: int) -> bool:
        """Reconnect + re-handshake a dead channel (the fabric re-ships
        bank state via adopt messages afterwards)."""
        ch = self._channels[i]
        if ch.alive:
            return False
        try:
            ch.connect(self._connect_timeout)
            self._handshake(ch)
        except (OSError, protocol.ProtocolError, ConnectionError):
            ch.close()
            return False
        return True

    def shutdown_channels(self) -> None:
        """Polite stop frame to every live shard, then close sockets."""
        if self._channels_down:
            return
        self._channels_down = True
        stop = protocol.encode_message(protocol.Stop())
        for ch in self._channels:
            if ch.alive:
                ch.send(stop)
            ch.close()
        self._inflight.clear()


# ----------------------------------------------------------------------
# TCP shard server
# ----------------------------------------------------------------------
@dataclass
class _ShardSession:
    """Per-connection shard state: handshake statics + attached banks.

    State is deliberately connection-scoped: a reconnecting parent
    re-handshakes and re-ships bank slices (adopt), so a dropped
    connection cannot leave stale state behind.
    """

    nd: int = 0
    screen_rtol: float = 0.0
    static: Dict[str, np.ndarray] = field(default_factory=dict)
    banks: Dict[str, Tuple[Dict[str, np.ndarray], int, int]] = field(
        default_factory=dict
    )
    Y: Optional[np.ndarray] = None

    def dispatch(self, msg, arrays):
        """Serve one decoded message; returns ``(reply | None, arrays)``."""
        if isinstance(msg, protocol.Hello):
            self.nd = msg.nd
            self.screen_rtol = msg.screen_rtol
            self.static = {"logdiag": arrays["logdiag"]}
            return protocol.Ack(req_id="hello"), {}
        if isinstance(msg, (protocol.BuildShard, protocol.AdoptShard)):
            self.banks[msg.key] = (arrays, msg.c0, msg.c1)
            if isinstance(msg, protocol.BuildShard):
                return protocol.Ack(req_id=("attach", msg.key)), {}
            return None, {}
        if isinstance(msg, protocol.DetachBank):
            self.banks.pop(msg.key, None)
            return None, {}
        if isinstance(msg, protocol.RetuneSketch):
            # Advisory: per-request scratch arrays carry the actual rank;
            # bank projections re-arrive via the parent's adopt re-ship.
            return None, {}
        bankv, c0, c1 = self.banks[msg.key]
        w = c1 - c0
        J = msg.n_streams
        if isinstance(msg, protocol.ScreenStage):
            static = {**self.static, **arrays}
            local = {**bankv, "lb": np.zeros((J, w)), "ub": np.zeros((J, w))}
            # Shard-local arrays start at relative column 0; absolute c0 is
            # COL_BLOCK-aligned, so the relative chunking is identical.
            _screen_shard(static, local, self.nd, J, msg.slots, 0, w,
                          use_sketch=msg.use_sketch, rtol=self.screen_rtol)
            return (protocol.Ack(req_id=msg.req_id),
                    {"lb": local["lb"], "ub": local["ub"]})
        if isinstance(msg, protocol.ExactStage):
            static = {**self.static, **arrays}
            local = {**bankv, "ev": np.zeros((J, w))}
            cols_local = None if msg.cols is None else msg.cols - c0
            _exact_shard(static, local, self.nd, J, cols_local, 0, w)
            ev = local["ev"] if cols_local is None else local["ev"][:, cols_local]
            return protocol.Ack(req_id=msg.req_id), {"ev": ev}
        if isinstance(msg, protocol.MixtureStage):
            if "Y" in arrays:
                self.Y = arrays["Y"]
            if self.Y is None:
                raise RuntimeError("mixture stage before geometry rows arrived")
            nb = bankv["qoi"].shape[0]
            local = {**bankv, "pr": arrays["pr"]}
            outv = {
                "m0": np.zeros((1, J)),
                "m1": np.zeros((1, nb, J)),
                "m2": np.zeros((1, J, nb, nb)),
            }
            _mixture_shard(self.Y, {"hz": arrays["hz"]}, local, outv,
                           self.nd, J, 0, 0, w)
            return (protocol.Ack(req_id=msg.req_id),
                    {"m0": outv["m0"][0], "m1": outv["m1"][0], "m2": outv["m2"][0]})
        raise protocol.ProtocolError(f"unserved message type {msg.TYPE!r}")


class ShardServer:
    """Asyncio shard peer for :class:`TcpTransport` connections.

    Serves the typed stage protocol over length-prefixed frames; all
    state is per-connection (:class:`_ShardSession`), so parent
    reconnects are self-contained and a dropped parent leaks nothing.
    :meth:`start_background` runs the event loop in a daemon thread and
    returns the bound address — the loopback "multi-host" harness used
    by tests, CI, and the ``--smoke`` CLI.  ``python -m
    repro.serve.transport --serve PORT`` runs one in the foreground for
    real multi-host deployments.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self.host = host
        self.port = port
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (final port known after start)."""
        return (self.host, self.port)

    async def _reply(self, writer, msg, arrays=None):
        frame = protocol.encode_message(msg, arrays)
        writer.write(_FRAME_PREFIX.pack(len(frame)) + frame)
        await writer.drain()

    async def _handle(self, reader, writer):
        session = _ShardSession()
        try:
            while True:
                try:
                    hdr = await reader.readexactly(8)
                    (n,) = _FRAME_PREFIX.unpack(hdr)
                    frame = await reader.readexactly(n)
                except (asyncio.IncompleteReadError, ConnectionResetError, OSError):
                    break
                try:
                    msg, arrays = protocol.decode_message(frame)
                except protocol.ProtocolError as exc:
                    # Version skew / garbage: answer once, then hang up.
                    try:
                        await self._reply(
                            writer,
                            protocol.ErrorReply(req_id=None, message=repr(exc)),
                        )
                    except (ConnectionResetError, OSError):
                        pass
                    break
                if isinstance(msg, (protocol.Stop, protocol.KillChannel)):
                    break
                try:
                    reply, out = session.dispatch(msg, arrays)
                except Exception as exc:  # noqa: BLE001 - reported to parent
                    reply = protocol.ErrorReply(
                        req_id=getattr(msg, "req_id", None), message=repr(exc)
                    )
                    out = {}
                if reply is not None:
                    try:
                        await self._reply(writer, reply, out)
                    except (ConnectionResetError, OSError):
                        break
        finally:
            try:
                writer.close()
            except Exception:  # noqa: BLE001 - teardown best-effort
                pass

    async def serve(self) -> None:
        """Run the server in the current event loop until cancelled."""
        server = await asyncio.start_server(self._handle, self.host, self.port)
        self.port = server.sockets[0].getsockname()[1]
        self._server = server
        self._ready.set()
        async with server:
            await server.serve_forever()

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        asyncio.set_event_loop(loop)
        server = loop.run_until_complete(
            asyncio.start_server(self._handle, self.host, self.port)
        )
        self._server = server
        self.port = server.sockets[0].getsockname()[1]
        self._ready.set()
        try:
            loop.run_forever()
        finally:
            server.close()
            loop.run_until_complete(server.wait_closed())
            pending = asyncio.all_tasks(loop)
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
            loop.close()

    def start_background(self) -> Tuple[str, int]:
        """Serve from a daemon thread; returns the bound address."""
        self._thread = threading.Thread(
            target=self._run, daemon=True, name="repro-shard-server"
        )
        self._thread.start()
        if not self._ready.wait(timeout=10.0):
            raise RuntimeError("shard server failed to start")
        return self.address

    def stop(self) -> None:
        """Stop a background server and join its thread."""
        if self._loop is not None:
            try:
                self._loop.call_soon_threadsafe(self._loop.stop)
            except RuntimeError:  # pragma: no cover - loop already closed
                pass
        if self._thread is not None:
            self._thread.join(timeout=5.0)


def start_local_shards(n: int, host: str = "127.0.0.1") -> List[ShardServer]:
    """Start ``n`` loopback shard servers (daemon threads); the caller
    builds a :class:`TcpTransport` from their ``.address`` attributes and
    stops them with :meth:`ShardServer.stop` when done."""
    servers = []
    for _ in range(n):
        s = ShardServer(host=host)
        s.start_background()
        servers.append(s)
    return servers


# ----------------------------------------------------------------------
# CLI: foreground shard server + loopback smoke test
# ----------------------------------------------------------------------
def _smoke(args) -> None:
    import time

    from repro.serve import sketch as sketch_mod
    from repro.serve.fabric import ServingFabric
    from repro.serve.scenarios import ScenarioBank
    from repro.twin.cascadia import CascadiaTwin
    from repro.twin.config import TwinConfig

    # Shrink the shard block so a modest smoke bank truly spans every
    # shard server (shared consistently by the flat and fabric paths).
    sketch_mod.COL_BLOCK = 64

    cfg = TwinConfig.demo_2d(nx=10, n_slots=16, n_sensors=10, n_qoi=3)
    twin = CascadiaTwin(cfg).setup()
    twin.phase1()
    bank = ScenarioBank(twin.operator.bottom_trace, cfg.n_slots, cfg.dt_obs, seed=7)
    bank.generate(args.scenarios)
    _, noise, d_obs = bank.observation_batch(
        twin.F, noise_relative=cfg.noise_relative
    )
    inv = twin.phase23(noise)

    servers = start_local_shards(args.shards)
    transport = TcpTransport([s.address for s in servers])
    streams = d_obs[:, :, : args.streams]
    try:
        with ServingFabric(
            inv, [bank], transport=transport, sketch_rank=4,
            screen_min_scenarios=1, screen_top=4, max_batch=args.streams,
        ) as fab:
            t0 = time.perf_counter()
            certified = fab.identify(streams, k_slots=args.horizon)
            dt = time.perf_counter() - t0
            rep = fab.last_report
            exhaustive = fab.identify(streams, k_slots=args.horizon, screen=False)
            k = 4
            for j in range(args.streams):
                top_c = set(np.argsort(-certified.log_evidence[j])[:k])
                top_e = set(np.argsort(-exhaustive.log_evidence[j])[:k])
                assert top_c == top_e, (
                    f"certified top-{k} diverged from exhaustive on stream {j}"
                )
            print(
                f"tcp smoke: {args.streams} streams x {args.scenarios} scenarios "
                f"over {args.shards} TCP shards in {dt * 1e3:.1f} ms "
                f"(pruned {rep.pruned_fraction:.0%}, transport={rep.transport})"
            )
            # Mid-stream fault: drop one shard connection and require the
            # degraded request to stay correct and accounted.
            fab.inject_fault(0)
            degraded = fab.identify(streams, k_slots=args.horizon, screen=False)
            lost = fab.last_report.workers_lost
            assert lost > 0, "drop was not accounted"
            np.testing.assert_allclose(
                degraded.log_evidence, exhaustive.log_evidence, rtol=1e-12
            )
            assert fab.respawn_workers() == 1
            again = fab.identify(streams, k_slots=args.horizon, screen=False)
            np.testing.assert_allclose(
                again.log_evidence, exhaustive.log_evidence, rtol=1e-12
            )
            print(
                "tcp smoke: mid-stream shard drop degraded gracefully "
                f"(workers_lost={lost} on the drop request), "
                "respawn restored the channel"
            )
    finally:
        for s in servers:
            s.stop()
    print("tcp smoke: certified top-k == exhaustive ranking on every request")

    if args.replicate > 1:
        # Replicated phase: R channels per shard, scripted primary kill.
        # The contract is strictly stronger than the flat phase's — the
        # kill must be absorbed by a replica (failovers accounted) with
        # zero in-parent recompute and bitwise-identical evidence.
        servers = start_local_shards(args.shards * args.replicate)
        try:
            with ServingFabric(
                inv, [bank],
                transport=TcpTransport([s.address for s in servers]),
                replication_factor=args.replicate, sketch_rank=4,
                screen_min_scenarios=1, screen_top=4,
                max_batch=args.streams,
            ) as fab:
                baseline = fab.identify(
                    streams, k_slots=args.horizon, screen=False
                )
                state = fab._resolve_bank(bank)
                assert len(state.shards) == args.shards
                fab.inject_fault(state.replicas[0][0])
                failed_over = fab.identify(
                    streams, k_slots=args.horizon, screen=False
                )
                rep = fab.last_report
                assert rep.failovers >= 1, "primary kill did not fail over"
                assert rep.workers_lost == 0, (
                    "failover fell back to in-parent recompute"
                )
                assert np.array_equal(
                    failed_over.log_evidence, baseline.log_evidence
                ), "replica output diverged from the primary's"
                print(
                    f"tcp smoke: R={args.replicate} primary kill absorbed "
                    f"by a replica (failovers={rep.failovers}, "
                    f"workers_lost=0, evidence bitwise-identical)"
                )
        finally:
            for s in servers:
                s.stop()


def main(argv: Optional[Sequence[str]] = None) -> None:
    """CLI entry: ``--serve PORT`` or the loopback ``--smoke`` self-test."""
    import argparse

    ap = argparse.ArgumentParser(
        description="TCP shard server / loopback fabric smoke test"
    )
    ap.add_argument("--serve", type=int, metavar="PORT",
                    help="run a foreground shard server on PORT "
                         "(0 = ephemeral; the bound port is printed)")
    ap.add_argument("--host", default="127.0.0.1", help="bind/connect host")
    ap.add_argument("--smoke", action="store_true",
                    help="run the loopback certified==exhaustive smoke test")
    ap.add_argument("--shards", type=int, default=2, help="loopback shard count")
    ap.add_argument("--replicate", type=int, default=1, metavar="R",
                    help="also smoke R-way shard replication with a "
                         "scripted primary kill (R > 1)")
    ap.add_argument("--scenarios", type=int, default=192, help="smoke bank size")
    ap.add_argument("--streams", type=int, default=8, help="smoke stream count")
    ap.add_argument("--horizon", type=int, default=8, help="slots observed")
    args = ap.parse_args(argv)

    if args.serve is not None:
        server = ShardServer(host=args.host, port=args.serve)

        async def _run():
            task = asyncio.get_running_loop().create_task(server.serve())
            while not server._ready.is_set():
                await asyncio.sleep(0.01)
            # Print the *bound* port, not the requested one: ``--serve 0``
            # asks the OS for an ephemeral port (the collision-free choice
            # under parallel CI), and callers parse the real number from
            # this line.
            print(
                f"shard server listening on {server.host}:{server.port}",
                flush=True,
            )
            await task

        asyncio.run(_run())
    elif args.smoke:
        _smoke(args)
    else:
        print("nothing to do: pass --serve PORT or --smoke")


if __name__ == "__main__":
    main()
