"""Shared report formatting for the serving layer.

Every surface that shows identification output — the examples, the fabric
CLI, the benchmarks — used to hand-roll its own table.  This module is the
single place that turns an
:class:`~repro.serve.identify.IdentificationResult` (or a fabric run) into
operator-readable text, so the format stays consistent and tested.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.serve.identify import IdentificationResult

__all__ = [
    "format_identification",
    "format_fabric_report",
    "format_orchestrator_report",
    "parse_prometheus",
    "print_identification",
    "to_prometheus",
]


def format_identification(
    result: IdentificationResult,
    truth_ids: Optional[List[str]] = None,
    top: int = 2,
    max_rows: int = 8,
) -> str:
    """Readable per-stream ranking table for an identification result.

    Parameters
    ----------
    result:
        The posterior ranking to print.
    truth_ids:
        Optional ground-truth scenario id per stream; adds a truth column
        and a correct-MAP summary line.
    top:
        How many ranked ``(scenario, probability)`` columns to show.
    max_rows:
        Streams beyond this are elided (the summary still covers all).
    """
    top = max(1, min(int(top), result.n_scenarios))
    ranked = result.top_k(top)
    header = f"{'stream':<8s}"
    if truth_ids is not None:
        header += f" {'truth':<16s}"
    header += f" {'horizon':>7s}"
    for r in range(top):
        header += f" {f'top-{r + 1} (p)':<24s}"
    lines = [header]
    n_shown = min(result.n_streams, max_rows)
    for j in range(n_shown):
        row = f"{j:<8d}"
        if truth_ids is not None:
            row += f" {truth_ids[j]:<16s}"
        row += f" {int(result.horizons[j]):>7d}"
        for sid, p in ranked[j]:
            row += f" {f'{sid} ({p:.3f})':<24s}"
        lines.append(row)
    if result.n_streams > n_shown:
        lines.append(f"... ({result.n_streams - n_shown} more streams)")
    if truth_ids is not None:
        n_right = sum(
            m == t for m, t in zip(result.map_ids(), truth_ids)
        )
        lines.append(
            f"MAP scenario correct for {n_right}/{result.n_streams} streams"
        )
    return "\n".join(lines)


def format_fabric_report(
    last, counters: Optional[Dict[str, float]] = None
) -> str:
    """One-paragraph summary of a fabric request + aggregate counters.

    ``last`` is a :class:`~repro.serve.fabric.FabricReport`; ``counters``
    the dict from :meth:`~repro.serve.fabric.ServingFabric.report`.
    """
    mode = "exact (no screen)"
    if last.screened:
        mode = "certified screen" if last.certified else "heuristic screen"
        rank = getattr(last, "sketch_rank", 0)
        if rank:
            mode += f" (sketch r={rank})"
        if getattr(last, "screen_fallback", False):
            mode += ", fell back to full exact"
    lines = [
        f"fabric request [{last.bank_key}]: {last.n_streams} streams x "
        f"{last.n_scenarios} scenarios, {mode}",
        f"  candidates after screen: {last.n_candidates} "
        f"({100.0 * last.pruned_fraction:.1f}% pruned)",
        f"  stage times: fleet {last.t_fleet * 1e3:.1f} ms, "
        f"screen {last.t_screen * 1e3:.1f} ms, "
        f"exact {last.t_exact * 1e3:.1f} ms, "
        f"total {last.t_total * 1e3:.1f} ms",
    ]
    if getattr(last, "failovers", 0):
        lines.append(
            f"  FAILOVER: {last.failovers} stage dispatch(es) re-routed to "
            f"replica shards (results remain exact)"
        )
    if last.workers_lost:
        lines.append(
            f"  DEGRADED: {last.workers_lost} worker(s) lost; shards "
            f"recomputed in the parent (results remain exact)"
        )
    if counters:
        alive = int(counters.get("fabric_workers_alive", 0))
        total = int(counters.get("fabric_workers", 0))
        lines.append(
            f"  fabric: {alive}/{total} workers alive, "
            f"{int(counters.get('fabric_requests', 0))} requests / "
            f"{int(counters.get('fabric_streams_served', 0))} streams served, "
            f"{int(counters.get('fabric_banks_attached', 0))} banks resident "
            f"({counters.get('fabric_shared_bytes', 0.0) / float(1 << 20):.1f} "
            f"MiB shared), {int(counters.get('fabric_banks_evicted', 0))} evicted"
        )
    return "\n".join(lines)


def _fmt_opt(value, fmt: str = "{}", none: str = "-") -> str:
    """Render an optional KPI value (None = not applicable/never)."""
    return none if value is None else fmt.format(value)


def format_orchestrator_report(result) -> str:
    """Operator-readable KPI table for one chaos replay.

    ``result`` is a :class:`~repro.twin.orchestrator.OrchestratorResult`.
    One row per event: identification outcome, time-to-identification,
    warning lead, calibration coverage, and how many degraded requests
    the event rode through; a summary paragraph closes the table.
    """
    s = result.summary
    header = (
        f"{'event':<8s} {'scenario':<16s} {'ok':<4s} {'tti':>5s} "
        f"{'alert@':>7s} {'lead':>5s} {'cover':>6s} {'degr':>5s}"
    )
    lines = [header]
    for k in result.events:
        lines.append(
            f"{k.event_id:<8s} {k.scenario_id:<16s} "
            f"{'yes' if k.identified else 'NO':<4s} "
            f"{_fmt_opt(k.tti_slots):>5s} {_fmt_opt(k.alert_horizon):>7s} "
            f"{_fmt_opt(k.lead_slots):>5s} "
            f"{_fmt_opt(k.coverage, '{:.3f}'):>6s} {k.degraded_requests:>5d}"
        )
    lines.append(
        f"{s['n_identified']}/{s['n_events']} events identified "
        f"(top-{s['top_k']}; {s['n_map_correct']} MAP-correct); mean tti "
        f"{_fmt_opt(s['mean_tti_slots'], '{:.1f}')} slots; "
        f"{s['n_alerts_fired']} warnings fired, mean lead "
        f"{_fmt_opt(s['mean_lead_slots'], '{:.1f}')} slots; mean "
        f"{s['coverage_level']:.0%} band coverage "
        f"{_fmt_opt(s['mean_coverage'], '{:.3f}')}"
    )
    lines.append(
        f"replay: {result.n_ticks} ticks, {result.kills_applied} worker "
        f"kill(s), {result.respawns_applied} respawn(s), "
        f"{result.wall_s:.2f} s wall"
    )
    return "\n".join(lines)


def _prometheus_name(name: str, prefix: str = "") -> str:
    """Sanitize a counter key into a legal Prometheus metric name."""
    full = f"{prefix}{name}"
    out = [
        c if (c.isascii() and (c.isalnum() or c in "_:")) else "_"
        for c in full
    ]
    if out and out[0].isdigit():
        out.insert(0, "_")
    return "".join(out)


def to_prometheus(
    counters: Dict[str, float],
    prefix: str = "",
    help_text: Optional[Dict[str, str]] = None,
) -> str:
    """Render a counter dict in Prometheus text exposition format.

    One gauge per key (the fabric and gateway counters are point-in-time
    values, so ``gauge`` is the honest type), in sorted name order with
    ``# HELP`` / ``# TYPE`` comment lines, terminated by a newline —
    scrape-ready for the gateway's ``/metrics`` endpoint.  Values are
    written with ``repr`` so :func:`parse_prometheus` round-trips every
    float exactly.
    """
    help_text = help_text or {}
    lines: List[str] = []
    for key in sorted(counters):
        name = _prometheus_name(key, prefix)
        doc = help_text.get(key, key.replace("_", " "))
        lines.append(f"# HELP {name} {doc}")
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name} {float(counters[key])!r}")
    return "\n".join(lines) + "\n"


def parse_prometheus(text: str) -> Dict[str, float]:
    """Parse text exposition back to ``{metric_name: value}``.

    The inverse of :func:`to_prometheus` for the formats it emits
    (comment lines skipped, no labels) — used by the round-trip test and
    by the bench load generator to read the gateway's own counters.
    """
    out: Dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name, _, value = line.partition(" ")
        out[name] = float(value)
    return out


def print_identification(
    result: IdentificationResult,
    truth_ids: Optional[List[str]] = None,
    top: int = 2,
    max_rows: int = 8,
) -> None:
    """``print`` wrapper around :func:`format_identification`."""
    print(format_identification(result, truth_ids=truth_ids, top=top, max_rows=max_rows))
