"""The digital twin: end-to-end orchestration, early warning, persistence.

``CascadiaTwin`` wires every substrate together into the paper's Fig. 2
pipeline: mesh + operator assembly (Table I "Initialization"/"Setup"),
Phase 1 adjoint kernel extraction, Phases 2-3 precomputation, and the
real-time Phase 4 inference/forecast, with the complete Table III timer
ledger.

``earlywarning`` adds the operational layer: alert levels from exceedance
probabilities, and the **streaming partial-data inverter** — because the
data ordering is time-major, the Cholesky factor of the leading ``k``-slot
principal submatrix of ``K`` is the leading block of the full factor, so
re-inverting as each second of data arrives costs only triangular solves
(the natural extension of the paper's framework to data that stream in
during the event).

``archive`` persists all Phase 1-3 operators to a compressed ``.npz`` so a
warning center can load the precomputed twin without recomputation
(optionally memory-mapped).

``orchestrator`` + ``kpi`` close the loop at the system level: a clocked,
deterministic event engine replays many concurrent synthetic events
(overlapping ruptures, sensor dropout, noise bursts, worker kills)
through a live serving fabric while a KPI tracker scores each event's
time-to-correct-identification, warning lead time, and forecast interval
calibration — the end-to-end metrics the paper's claims are judged on.
"""

from repro.twin.archive import (
    load_twin_archive,
    rebuild_inversion,
    save_twin_archive,
)
from repro.twin.cascadia import CascadiaTwin, TwinResult
from repro.twin.config import TwinConfig
from repro.twin.design import GreedySensorPlacement, SensorPlacementResult
from repro.twin.earlywarning import (
    AlertLevel,
    EarlyWarningDecision,
    StreamingInverter,
    decide_alert,
)
from repro.twin.kpi import EventKPI, KPITracker, first_exceedance_slot
from repro.twin.orchestrator import (
    EventScript,
    OrchestratorConfig,
    OrchestratorResult,
    SyntheticEvent,
    TwinOrchestrator,
    corrupt_stream,
)

__all__ = [
    "TwinConfig",
    "GreedySensorPlacement",
    "SensorPlacementResult",
    "CascadiaTwin",
    "TwinResult",
    "AlertLevel",
    "EarlyWarningDecision",
    "decide_alert",
    "StreamingInverter",
    "EventKPI",
    "KPITracker",
    "first_exceedance_slot",
    "SyntheticEvent",
    "EventScript",
    "OrchestratorConfig",
    "OrchestratorResult",
    "TwinOrchestrator",
    "corrupt_stream",
    "save_twin_archive",
    "load_twin_archive",
    "rebuild_inversion",
]
