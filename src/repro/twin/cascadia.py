"""CascadiaTwin: the end-to-end digital twin (the paper's Fig. 2 pipeline).

One object owns the full life cycle:

1. ``setup()`` — mesh, operator, sensors, QoI points (Table I:
   Initialization + Setup timers);
2. ``phase1()`` — adjoint wave propagations extracting the p2o/p2q block
   Toeplitz kernels (Table I: Adjoint p2o timer; Table III: Phase 1);
3. ``phase2()`` / ``phase3()`` — the data-space Hessian and goal-oriented
   operators (Table III: Phases 2-3);
4. ``simulate_event()`` — a margin-wide rupture scenario, its synthetic
   pressure records, and 1%-relative noise;
5. ``invert()`` — the real-time Phase 4: MAP seafloor motion and the QoI
   forecast with exact uncertainties (Fig. 3/4 content).

Every stage is timed; ``table3_report()`` renders the per-phase ledger in
the shape of the paper's Table III.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.fem.mesh import StructuredMesh
from repro.inference.bayes import ToeplitzBayesianInversion
from repro.inference.forecast import QoIForecast
from repro.inference.noise import NoiseModel
from repro.inference.posterior import (
    PosteriorSampler,
    posterior_displacement_variance,
)
from repro.inference.prior import BiLaplacianPrior, SpatioTemporalPrior
from repro.inference.toeplitz import BlockToeplitzOperator
from repro.ocean.acoustic_gravity import AcousticGravityOperator
from repro.ocean.bathymetry import (
    CascadiaBathymetry,
    FlatBathymetry,
    GaussianRidgeBathymetry,
)
from repro.ocean.material import SeawaterMaterial
from repro.ocean.observations import SensorArray, SurfaceQoI
from repro.ocean.propagator import SlotPropagator
from repro.rupture.scenario import RuptureScenario, margin_wide_scenario
from repro.twin.config import TwinConfig
from repro.util.memory import MemoryTracker
from repro.util.timing import TimerRegistry

__all__ = ["CascadiaTwin", "TwinResult"]


@dataclass
class TwinResult:
    """Outputs of one end-to-end inversion (the Fig. 3/4 content).

    Attributes
    ----------
    scenario:
        The synthetic truth.
    d_clean, d_obs:
        Clean and noisy sensor records ``(Nt, Nd)``.
    m_map:
        Inferred seafloor velocity ``(Nt, Nm)``.
    displacement_map:
        Inferred final displacement ``(Nm,)`` (Fig. 3d).
    displacement_std:
        Pointwise posterior std of the displacement (Fig. 3e).
    forecast:
        QoI forecast with covariance (Fig. 4).
    q_true:
        True QoI series from the clean forward solve (Fig. 4 "True QoI").
    """

    scenario: RuptureScenario
    d_clean: np.ndarray
    d_obs: np.ndarray
    m_map: np.ndarray
    displacement_map: np.ndarray
    displacement_std: Optional[np.ndarray]
    forecast: QoIForecast
    q_true: np.ndarray

    def parameter_error(self) -> float:
        """Relative L2 error of the inferred space-time velocity field."""
        t = self.scenario.m
        return float(np.linalg.norm(self.m_map - t) / np.linalg.norm(t))

    def displacement_error(self) -> float:
        """Relative L2 error of the inferred final displacement."""
        t = self.scenario.displacement
        return float(
            np.linalg.norm(self.displacement_map - t) / np.linalg.norm(t)
        )

    def forecast_error(self) -> float:
        """Relative L2 error of the forecast mean vs the true QoI."""
        return float(
            np.linalg.norm(self.forecast.mean - self.q_true)
            / max(np.linalg.norm(self.q_true), 1e-300)
        )

    def coverage(self, level: float = 0.95) -> float:
        """Credible-interval coverage of the true QoI series."""
        return self.forecast.coverage(self.q_true, level)


class CascadiaTwin:
    """The assembled digital twin for one configuration."""

    def __init__(self, config: TwinConfig) -> None:
        self.config = config
        self.timers = TimerRegistry(
            ["Initialization", "Setup", "Adjoint p2o", "Adjoint p2q", "I/O"]
        )
        self.memory = MemoryTracker()
        self._built = False
        self._phase1_done = False
        self.inversion: Optional[ToeplitzBayesianInversion] = None

    # ------------------------------------------------------------------
    # Stage 0: assembly
    # ------------------------------------------------------------------
    def _bathymetry(self):
        c = self.config
        if c.bathymetry == "flat":
            base = 0.8 if c.material == "nondimensional" else 2500.0
            return FlatBathymetry(depth=base * c.depth_scale)
        if c.bathymetry == "ridge":
            base = 1.0 if c.material == "nondimensional" else 2500.0
            return GaussianRidgeBathymetry(
                depth=base * c.depth_scale,
                ridge_height=0.35 * base * c.depth_scale,
                center=0.45 * c.length_x,
                width=0.12 * c.length_x,
            )
        if c.material == "nondimensional":
            return CascadiaBathymetry(
                length_x=c.length_x,
                length_y=c.length_y if c.dim == 3 else 0.0,
                abyssal_depth=0.9 * c.depth_scale,
                shelf_depth=0.25 * c.depth_scale,
                trench_depth=0.1 * c.depth_scale,
            )
        b = CascadiaBathymetry(
            length_x=c.length_x, length_y=c.length_y if c.dim == 3 else 0.0
        )
        return b.scaled(c.length_x, c.depth_scale) if c.depth_scale != 1.0 else b

    def setup(self) -> "CascadiaTwin":
        """Assemble mesh, operator, propagator, and observation operators."""
        c = self.config
        with self.timers.time("Initialization"):
            self.material = (
                SeawaterMaterial.standard()
                if c.material == "standard"
                else SeawaterMaterial.nondimensional()
            )
            self.bathymetry = self._bathymetry()
        with self.timers.time("Setup"):
            xs = np.linspace(0.0, c.length_x, c.nx + 1)
            if c.dim == 3:
                ys = np.linspace(0.0, c.length_y, c.ny + 1)
                haxes = [xs, ys]
            elif c.dim == 2:
                haxes = [xs]
            else:
                haxes = []
            self.mesh = StructuredMesh.ocean(haxes, nz=c.nz, depth=self.bathymetry)
            self.operator = AcousticGravityOperator(
                self.mesh,
                order=c.order,
                material=self.material,
                kernel_variant=c.kernel_variant,
                tracker=self.memory,
            )
            self.propagator = SlotPropagator(
                self.operator,
                dt_obs=c.dt_obs,
                n_slots=c.n_slots,
                cfl=c.cfl,
                n_substeps=c.n_substeps,
                timers=self.timers,
            )
            if c.sensor_layout == "regular":
                nh = c.dim - 1
                per_axis = (
                    int(np.ceil(c.n_sensors ** (1.0 / max(nh, 1)))) if nh else 1
                )
                sens = SensorArray.regular(self.operator, per_axis)
                # Trim to the requested count deterministically.
                if sens.n > c.n_sensors:
                    keep = np.linspace(0, sens.n - 1, c.n_sensors).astype(int)
                    sens = SensorArray(self.operator, sens.positions[keep])
            else:
                sens = SensorArray.random(self.operator, c.n_sensors, seed=c.seed)
            self.sensors = sens
            self.qoi = SurfaceQoI.coastal(self.operator, c.n_qoi)
            tr = self.operator.bottom_trace
            spatial = BiLaplacianPrior.from_correlation(
                tr.axes, sigma=c.prior_sigma, correlation_length=c.prior_correlation
            )
            self.prior = SpatioTemporalPrior(
                spatial, c.n_slots, temporal_rho=c.temporal_rho
            )
        self._built = True
        return self

    # ------------------------------------------------------------------
    # Phase 1: kernel extraction
    # ------------------------------------------------------------------
    def phase1(self) -> Tuple[BlockToeplitzOperator, BlockToeplitzOperator]:
        """Extract the p2o and p2q kernels by batched adjoint propagation."""
        if not self._built:
            self.setup()
        c = self.config
        T = self.propagator.p2o_kernel(self.sensors, timer_name="Adjoint p2o")
        Tq = self.propagator.p2o_kernel(self.qoi, timer_name="Adjoint p2q")
        self.F = BlockToeplitzOperator(T, layout=c.fft_layout)
        self.Fq = BlockToeplitzOperator(Tq, layout=c.fft_layout)
        self.memory.add_persistent("p2o_kernel", T)
        self.memory.add_persistent("p2q_kernel", Tq)
        self._phase1_done = True
        self._geometry_fp: Optional[str] = None  # recompute for the new kernels
        return self.F, self.Fq

    # ------------------------------------------------------------------
    # Event simulation
    # ------------------------------------------------------------------
    def simulate_event(
        self, seed: Optional[int] = None, peak_uplift: Optional[float] = None
    ) -> Tuple[RuptureScenario, np.ndarray, NoiseModel, np.ndarray]:
        """Generate a rupture, clean records, noise model, noisy records.

        The clean observations come from the *kernel* (exactly equal to a
        forward PDE solve, as verified by the test suite).
        """
        if not self._phase1_done:
            self.phase1()
        c = self.config
        seed = c.seed if seed is None else seed
        if peak_uplift is None:
            peak_uplift = 0.5 if c.material == "nondimensional" else 3.0
        scenario = margin_wide_scenario(
            self.operator.bottom_trace,
            nt=c.n_slots,
            dt_obs=c.dt_obs,
            peak_uplift=peak_uplift,
            seed=seed,
        )
        d_clean, noise, d_obs = self.observe(scenario, seed=seed)
        return scenario, d_clean, noise, d_obs

    def observe(
        self,
        scenario: RuptureScenario,
        seed: Optional[int] = None,
        noise_relative: Optional[float] = None,
    ) -> Tuple[np.ndarray, NoiseModel, np.ndarray]:
        """Synthetic sensor records for an externally supplied scenario.

        Used by the serving layer to push :class:`ScenarioBank` entries
        through the twin: returns ``(d_clean, noise, d_obs)`` where the
        clean records come from the p2o kernel and the noise draw is
        deterministic in ``seed``.
        """
        if not self._phase1_done:
            self.phase1()
        c = self.config
        seed = c.seed if seed is None else seed
        if noise_relative is None:
            noise_relative = c.noise_relative
        d_clean = self.F.matvec(scenario.m)
        noise = NoiseModel.relative(d_clean, noise_relative)
        rng = np.random.default_rng(seed + 1)
        d_obs = noise.add_to(d_clean, rng)
        return d_clean, noise, d_obs

    def geometry_fingerprint(self) -> str:
        """Deterministic digest of everything the offline phases depend on.

        Two twins with identical fingerprints share the same p2o/p2q
        kernels and prior, hence the same Phase 2-3 operators — the
        memoization key of the serving layer's operator cache (noise is
        folded in separately, since it is per-event).
        """
        if not self._phase1_done:
            raise RuntimeError("run phase1() before fingerprinting the geometry")
        if getattr(self, "_geometry_fp", None) is not None:
            return self._geometry_fp
        from repro.util.hashing import geometry_fingerprint

        c = self.config
        meta = {
            "prior_sigma": c.prior_sigma,
            "prior_correlation": c.prior_correlation,
            "temporal_rho": c.temporal_rho,
            "dt_obs": c.dt_obs,
        }
        # The kernels are immutable after phase1(), so the digest (an
        # O(kernel bytes) SHA-256 pass) is computed once and memoized.
        self._geometry_fp = geometry_fingerprint(meta, self.F.kernel, self.Fq.kernel)
        return self._geometry_fp

    # ------------------------------------------------------------------
    # Phases 2-4
    # ------------------------------------------------------------------
    def phase23(
        self, noise: NoiseModel, method: str = "fft", chunk: int = 256
    ) -> ToeplitzBayesianInversion:
        """Run the offline Phases 2 and 3 for a given noise model."""
        inv = ToeplitzBayesianInversion(
            self.F, self.prior, noise, Fq=self.Fq, timers=self.timers
        )
        inv.assemble_data_space_hessian(method=method, chunk=chunk)
        inv.assemble_goal_oriented(method=method, chunk=chunk)
        self.inversion = inv
        return inv

    def invert(
        self,
        scenario: RuptureScenario,
        d_clean: np.ndarray,
        d_obs: np.ndarray,
        compute_uncertainty: bool = True,
    ) -> TwinResult:
        """The real-time Phase 4 plus result packaging (Fig. 3/4 content)."""
        if self.inversion is None:
            raise RuntimeError("run phase23() before invert()")
        c = self.config
        m_map, forecast = self.inversion.infer_and_predict(
            d_obs, times=self.propagator.times()
        )
        q_true = self.Fq.matvec(scenario.m)
        disp = c.dt_obs * np.sum(m_map, axis=0)
        disp_std = None
        if compute_uncertainty:
            var = posterior_displacement_variance(self.inversion, dt_obs=c.dt_obs)
            disp_std = np.sqrt(var)
        return TwinResult(
            scenario=scenario,
            d_clean=d_clean,
            d_obs=d_obs,
            m_map=m_map,
            displacement_map=disp,
            displacement_std=disp_std,
            forecast=forecast,
            q_true=q_true,
        )

    def run_end_to_end(
        self, seed: Optional[int] = None, hessian_method: str = "fft"
    ) -> TwinResult:
        """Convenience: all phases plus one event, in order."""
        self.setup() if not self._built else None
        if not self._phase1_done:
            self.phase1()
        scenario, d_clean, noise, d_obs = self.simulate_event(seed=seed)
        self.phase23(noise, method=hessian_method)
        return self.invert(scenario, d_clean, d_obs)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def sampler(self) -> PosteriorSampler:
        """Exact posterior sampler over the inferred parameter field."""
        if self.inversion is None:
            raise RuntimeError("run phase23() first")
        return PosteriorSampler(self.inversion)

    def problem_summary(self) -> Dict[str, float]:
        """Dimensions of the assembled problem (paper Section V-C style)."""
        c = self.config
        nm = self.operator.n_parameters
        return {
            "state_dofs": float(self.operator.nstate),
            "parameter_points": float(nm),
            "parameter_dimension": float(nm * c.n_slots),
            "data_dimension": float(self.sensors.n * c.n_slots),
            "qoi_dimension": float(self.qoi.n * c.n_slots),
            "n_sensors": float(self.sensors.n),
            "n_qoi": float(self.qoi.n),
            "n_slots": float(c.n_slots),
            "rk4_substeps_per_slot": float(self.propagator.n_substeps),
        }

    def table3_report(self) -> str:
        """Per-phase compute-time ledger in the shape of Table III."""
        t = self.timers.as_dict()
        if self.inversion is not None:
            t.update(self.inversion.timers.as_dict())
        rows = [
            ("1", "form F (adjoint p2o solves)", t.get("Adjoint p2o", 0.0)),
            ("1", "form Fq (adjoint p2q solves)", t.get("Adjoint p2q", 0.0)),
            ("2", "form K (data-space Hessian)", t.get("Phase 2: form K", 0.0)),
            ("2", "factorize K (Cholesky)", t.get("Phase 2: factorize K", 0.0)),
            ("3", "QoI covariance", t.get("Phase 3: QoI covariance", 0.0)),
            ("3", "data-to-QoI map Q", t.get("Phase 3: data-to-QoI map", 0.0)),
            ("4", "infer parameters m_map", t.get("Phase 4: infer parameters", 0.0)),
            ("4", "predict QoI q_map", t.get("Phase 4: predict QoI", 0.0)),
        ]
        lines = [f"{'Phase':>5s}  {'Task':<32s} {'Compute time':>14s}"]
        for ph, task, sec in rows:
            lines.append(f"{ph:>5s}  {task:<32s} {sec:>12.4f} s")
        return "\n".join(lines)
