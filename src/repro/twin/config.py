"""Twin configuration: every knob of the end-to-end pipeline in one place."""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, Optional, Tuple

from repro.util.validation import check_in, check_positive

__all__ = ["TwinConfig"]


@dataclass
class TwinConfig:
    """Configuration of a :class:`~repro.twin.cascadia.CascadiaTwin`.

    Geometry / discretization
    -------------------------
    ``dim``: 2 (vertical x-z slice) or 3 (full x-y-z).
    ``length_x``, ``length_y``: horizontal extents (``length_y`` unused in 2D).
    ``nx, ny, nz``: element counts; ``order``: pressure polynomial order.
    ``bathymetry``: ``"cascadia"``, ``"flat"``, or ``"ridge"``.
    ``depth_scale``: multiplies the bathymetry depths (reduced-scale demos).

    Physics / observation
    ---------------------
    ``material``: ``"standard"`` (SI seawater) or ``"nondimensional"``.
    ``dt_obs``: observation cadence (the paper's 1 Hz -> 1.0).
    ``n_slots``: number of observation slots ``N_t``.
    ``cfl`` / ``n_substeps``: RK4 substep control.
    ``n_sensors``: seafloor pressure sensors (paper: 600).
    ``sensor_layout``: ``"regular"`` or ``"random"``.
    ``n_qoi``: surface forecast locations (paper: 21).
    ``noise_relative``: synthetic noise level (paper: 1%).

    Prior
    -----
    ``prior_sigma``: marginal std of the seafloor-velocity prior.
    ``prior_correlation``: spatial correlation length (same units as x).
    ``temporal_rho``: optional AR(1) temporal correlation (paper: none).

    Implementation
    --------------
    ``kernel_variant``: one of the Fig. 7 kernel variants.
    ``fft_layout``: FFTMatvec data layout.
    ``seed``: master seed (scenario, sensor jitter, noise draws).
    """

    dim: int = 2
    length_x: float = 4.0
    length_y: float = 2.0
    nx: int = 12
    ny: int = 4
    nz: int = 2
    order: int = 3
    bathymetry: str = "cascadia"
    depth_scale: float = 1.0
    material: str = "nondimensional"
    dt_obs: float = 0.25
    n_slots: int = 16
    cfl: float = 0.35
    n_substeps: Optional[int] = None
    n_sensors: int = 12
    sensor_layout: str = "regular"
    n_qoi: int = 3
    noise_relative: float = 0.01
    prior_sigma: float = 0.4
    prior_correlation: float = 0.6
    temporal_rho: Optional[float] = None
    kernel_variant: str = "fused"
    fft_layout: str = "space-major"
    seed: int = 0

    def __post_init__(self) -> None:
        check_in("dim", self.dim, (1, 2, 3))
        check_in("bathymetry", self.bathymetry, ("cascadia", "flat", "ridge"))
        check_in("material", self.material, ("standard", "nondimensional"))
        check_in("sensor_layout", self.sensor_layout, ("regular", "random"))
        check_positive("length_x", self.length_x)
        check_positive("dt_obs", self.dt_obs)
        check_positive("n_slots", self.n_slots)
        check_positive("n_sensors", self.n_sensors)
        check_positive("n_qoi", self.n_qoi)
        check_positive("noise_relative", self.noise_relative)
        check_positive("prior_sigma", self.prior_sigma)
        check_positive("prior_correlation", self.prior_correlation)

    # ------------------------------------------------------------------
    # Presets
    # ------------------------------------------------------------------
    @classmethod
    def demo_2d(cls, **overrides) -> "TwinConfig":
        """Small nondimensional 2D twin: runs the full pipeline in seconds."""
        cfg = dict(
            dim=2,
            length_x=4.0,
            nx=12,
            nz=2,
            order=3,
            bathymetry="cascadia",
            depth_scale=1.0,
            material="nondimensional",
            dt_obs=0.25,
            n_slots=16,
            n_sensors=12,
            n_qoi=3,
        )
        cfg.update(overrides)
        return cls(**cfg)

    @classmethod
    def demo_3d(cls, **overrides) -> "TwinConfig":
        """Small nondimensional 3D twin (x-y-z, margin-like)."""
        cfg = dict(
            dim=3,
            length_x=4.0,
            length_y=2.0,
            nx=8,
            ny=4,
            nz=2,
            order=2,
            bathymetry="cascadia",
            material="nondimensional",
            dt_obs=0.25,
            n_slots=12,
            n_sensors=9,
            n_qoi=4,
        )
        cfg.update(overrides)
        return cls(**cfg)

    @classmethod
    def cascadia_2d(cls, **overrides) -> "TwinConfig":
        """Physical-units 2D margin slice (km-scale, SI seawater).

        A 100 km cross-margin slice at ~2.8 km abyssal depth; observation
        cadence 1 Hz as in the paper.  Much slower than the demo presets
        (CFL substeps track the real 1500 m/s sound speed); used by the
        showcase example, not by the test suite.
        """
        cfg = dict(
            dim=2,
            length_x=100_000.0,
            nx=24,
            nz=3,
            order=3,
            bathymetry="cascadia",
            depth_scale=1.0,
            material="standard",
            dt_obs=1.0,
            n_slots=180,
            n_sensors=20,
            n_qoi=5,
            prior_sigma=1.0,
            prior_correlation=12_000.0,
            cfl=0.45,
        )
        cfg.update(overrides)
        return cls(**cfg)

    # ------------------------------------------------------------------
    def as_dict(self) -> Dict:
        """Plain-dict form (for archiving)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, d: Dict) -> "TwinConfig":
        """Inverse of :meth:`as_dict`."""
        return cls(**d)
