"""Optimal sensor placement: greedy A-optimal design in the data space.

Section VIII of the paper points at the operational question this module
answers: *where* should new offshore instruments go?  The twin's
data-space formulation makes classical Bayesian experimental design
tractable: for a candidate sensor set ``S`` the posterior covariance of
the QoI is

.. math:: \\Gamma_{post}(q \\mid S) = P_q - B_S^T K_S^{-1} B_S,

with ``K_S`` and ``B_S`` assembled from the candidates' kernel rows — no
PDE solves beyond the one adjoint propagation per *candidate* (computed
once, batched).  Greedy A-optimal selection then adds, at each step, the
candidate that most reduces ``trace(Gamma_post(q))`` — the expected mean
squared error of the wave-height forecast.

The greedy update is done exactly but cheaply by rank-``N_t`` block
updates: adding one sensor appends ``N_t`` rows to the data space, and
the Schur complement against the already-selected block reuses the
existing Cholesky factor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np
import scipy.linalg as sla

from repro.inference.noise import NoiseModel
from repro.inference.prior import SpatioTemporalPrior
from repro.inference.toeplitz import BlockToeplitzOperator
from repro.ocean.observations import SensorArray
from repro.ocean.propagator import SlotPropagator

__all__ = ["SensorPlacementResult", "GreedySensorPlacement"]


@dataclass
class SensorPlacementResult:
    """Outcome of a greedy placement run.

    Attributes
    ----------
    selected:
        Candidate indices in selection order.
    positions:
        Selected sensor positions ``(k, dh)``.
    objective_trace:
        ``trace(Gamma_post(q))`` after each selection (starts with the
        prior-only value at index 0).
    """

    selected: List[int]
    positions: np.ndarray
    objective_trace: List[float] = field(default_factory=list)

    def reduction(self) -> float:
        """Fraction of prior QoI variance removed by the selected network."""
        if not self.objective_trace:
            return 0.0
        return 1.0 - self.objective_trace[-1] / self.objective_trace[0]


class GreedySensorPlacement:
    """Greedy A-optimal sensor selection for QoI forecasting.

    Parameters
    ----------
    propagator:
        The slot propagator (provides one batched adjoint solve for all
        candidates).
    candidates:
        Candidate seafloor positions ``(n_cand, dh)``.
    Fq:
        The p2q operator of the forecast QoI.
    prior:
        The spatio-temporal parameter prior.
    noise_sigma:
        Observation noise std for the design (scalar; a conservative
        design value, since real noise is signal-dependent).
    """

    def __init__(
        self,
        propagator: SlotPropagator,
        candidates: np.ndarray,
        Fq: BlockToeplitzOperator,
        prior: SpatioTemporalPrior,
        noise_sigma: float,
    ) -> None:
        self.propagator = propagator
        op = propagator.op
        self.candidates = np.asarray(candidates, dtype=np.float64)
        self.n_candidates = self.candidates.shape[0]
        if noise_sigma <= 0:
            raise ValueError("noise_sigma must be positive")
        self.noise_sigma = float(noise_sigma)
        self.prior = prior
        self.Fq = Fq
        self.nt = propagator.n_slots

        # One batched adjoint propagation covers every candidate (Phase 1).
        cand_array = SensorArray(op, self.candidates)
        self.kernel_all = propagator.p2o_kernel(cand_array)  # (Nt, n_cand, Nm)

        # Candidate-blocked Gram structures against the prior:
        #   Kfull[(i,a),(j,b)] = (F_a Gamma F_b*)(i, j)  for candidates a, b
        #   Bfull[(i,a), (j,q)] = (F_a Gamma Fq*)(i, j)
        from repro.inference.bayes import ToeplitzBayesianInversion

        F_all = BlockToeplitzOperator(self.kernel_all)
        shim_noise = NoiseModel(1.0, self.nt, self.n_candidates)
        inv = ToeplitzBayesianInversion(F_all, prior, shim_noise, Fq=Fq)
        self._K_misfit = inv._gram_direct(F_all, F_all)
        self._B_all = inv._gram_direct(F_all, Fq)
        self._Pq = inv._gram_direct(Fq, Fq)
        self._Pq = 0.5 * (self._Pq + self._Pq.T)

    # ------------------------------------------------------------------
    def _indices_for(self, sensors: Sequence[int]) -> np.ndarray:
        """Flat data-space indices (time-major) of a candidate subset."""
        sensors = np.asarray(list(sensors), dtype=np.int64)
        t = np.arange(self.nt)[:, None]
        return (t * self.n_candidates + sensors[None, :]).reshape(-1)

    def objective(self, sensors: Sequence[int]) -> float:
        """``trace(Gamma_post(q))`` for an explicit sensor subset (exact)."""
        if len(sensors) == 0:
            return float(np.trace(self._Pq))
        idx = self._indices_for(sensors)
        K = self._K_misfit[np.ix_(idx, idx)] + self.noise_sigma**2 * np.eye(
            idx.size
        )
        B = self._B_all[idx, :]
        cho = sla.cho_factor(0.5 * (K + K.T), lower=True)
        red = B.T @ sla.cho_solve(cho, B)
        return float(np.trace(self._Pq) - np.trace(red))

    def select(
        self, n_sensors: int, forced: Optional[Sequence[int]] = None
    ) -> SensorPlacementResult:
        """Greedily select ``n_sensors`` candidates (optionally seeded).

        Each step evaluates the exact A-optimal objective for every
        remaining candidate and keeps the best; with ``n_cand`` candidates
        and ``k`` selections this is ``O(k n_cand)`` small dense solves —
        trivially affordable thanks to the data-space formulation.
        """
        if not 1 <= n_sensors <= self.n_candidates:
            raise ValueError(
                f"n_sensors must lie in [1, {self.n_candidates}]"
            )
        selected: List[int] = list(forced) if forced else []
        trace0 = self.objective(selected) if selected else float(np.trace(self._Pq))
        traces = [float(np.trace(self._Pq))]
        if selected:
            traces.append(trace0)
        while len(selected) < n_sensors:
            best_j, best_val = -1, np.inf
            for j in range(self.n_candidates):
                if j in selected:
                    continue
                val = self.objective(selected + [j])
                if val < best_val:
                    best_val, best_j = val, j
            selected.append(best_j)
            traces.append(best_val)
        return SensorPlacementResult(
            selected=selected,
            positions=self.candidates[selected],
            objective_trace=traces,
        )

    # ------------------------------------------------------------------
    def compare_with_regular(self, n_sensors: int) -> Tuple[float, float]:
        """``(greedy, evenly-spaced)`` objective values for ``n_sensors``.

        The evenly-spaced baseline takes every ``n_cand / n_sensors``-th
        candidate — the layout a designer would draw without the model.
        """
        greedy = self.select(n_sensors).objective_trace[-1]
        step = self.candidates.shape[0] / n_sensors
        regular = [int(round((i + 0.5) * step)) for i in range(n_sensors)]
        regular = sorted({min(self.n_candidates - 1, r) for r in regular})
        return greedy, self.objective(regular)
