"""Early-warning logic: alerts, exceedance, and streaming partial-data
inversion.

Alerting follows operational tsunami-warning practice: per forecast
location, the posterior probability that the wave height exceeds a
threshold drives a three-level decision (ADVISORY / WATCH / WARNING).
Because the twin's forecast is an exact Gaussian, exceedance probabilities
are closed-form.

``StreamingInverter`` is the real-time extension the paper's design makes
nearly free: with time-major data ordering, the first ``k`` seconds of
observations correspond to a *leading principal submatrix* of the data-space
Hessian ``K``, whose Cholesky factor is the leading block of the full
factor computed in Phase 2.  Re-solving the inverse problem as each new
observation slot arrives therefore costs two triangular solves — no
re-factorization — and the warning latency (time until the alert first
fires) can be measured exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import Dict, List, Optional, Tuple

import numpy as np
import scipy.linalg as sla
from scipy.stats import norm

from repro.inference.bayes import ToeplitzBayesianInversion
from repro.inference.forecast import QoIForecast

__all__ = [
    "AlertLevel",
    "EarlyWarningDecision",
    "decide_alert",
    "partial_qoi_operators",
    "StreamingInverter",
]


def partial_qoi_operators(
    inv: ToeplitzBayesianInversion,
    k_slots: int,
    L: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Truncated data-to-QoI map and exact partial-data QoI covariance.

    ``Q_k = (K_k^{-1} B_k)^T`` and ``cov_k = P_q - B_k^T K_k^{-1} B_k``,
    both served by the inversion's shared incremental engine
    (:meth:`~repro.inference.bayes.ToeplitzBayesianInversion.streaming_state`):
    the covariance comes from the per-slot downdate cascade, and the
    forward half of ``Q_k`` reuses the engine's nested ``Y_k = L_k^{-1}
    B_k`` rows.  Forming the explicit ``Q_k`` still needs one backward
    solve of size ``k_slots * Nd`` — use this only to *export* the
    operator; streaming consumers (:class:`StreamingInverter`, the fleet
    server) forecast without it.

    ``L`` is accepted for backward compatibility and ignored — the engine
    always uses the inversion's cached contiguous factor.
    """
    if inv.B is None or inv.Pq is None:
        raise RuntimeError("Phase 3 must be complete")
    if not 1 <= k_slots <= inv.nt:
        raise ValueError(f"k_slots must lie in [1, {inv.nt}]")
    engine = inv.streaming_state()
    return engine.qoi_map(k_slots), engine.covariance_at(k_slots)


class AlertLevel(IntEnum):
    """Operational alert levels (ordered)."""

    NONE = 0
    ADVISORY = 1
    WATCH = 2
    WARNING = 3


@dataclass
class EarlyWarningDecision:
    """Per-location alert decision with its supporting probabilities."""

    levels: np.ndarray  # (Nq,) of AlertLevel values
    exceedance: Dict[str, np.ndarray]  # threshold name -> (Nq,) max-prob
    thresholds: Dict[str, float]

    def max_level(self) -> AlertLevel:
        """The most severe level over all locations."""
        return AlertLevel(int(np.max(self.levels)))

    def summary(self, location_names: Optional[List[str]] = None) -> str:
        """Readable per-location table."""
        nq = self.levels.shape[0]
        names = location_names or [f"QoI #{j + 1}" for j in range(nq)]
        lines = [f"{'location':<12s} {'level':<10s} " + " ".join(
            f"P(>{k})" for k in self.thresholds
        )]
        for j in range(nq):
            probs = " ".join(
                f"{self.exceedance[k][j]:6.3f}" for k in self.thresholds
            )
            lines.append(
                f"{names[j]:<12s} {AlertLevel(int(self.levels[j])).name:<10s} {probs}"
            )
        return "\n".join(lines)


def decide_alert(
    forecast: QoIForecast,
    advisory: float,
    watch: float,
    warning: float,
    probability: float = 0.5,
) -> EarlyWarningDecision:
    """Map a Gaussian forecast to per-location alert levels.

    A location is at level L if the posterior probability that its
    *maximum over time* wave height exceeds the L-threshold is at least
    ``probability``.  The max-over-time probability is bounded below by the
    max of the pointwise exceedance probabilities (exact for a single
    dominant crest; conservative in general) — that bound is what is used.
    """
    if not 0 < advisory <= watch <= warning:
        raise ValueError("thresholds must satisfy 0 < advisory <= watch <= warning")
    th = {"advisory": advisory, "watch": watch, "warning": warning}
    exceed = {
        name: np.max(forecast.exceedance_probability(v), axis=0) for name, v in th.items()
    }
    nq = forecast.nq
    levels = np.zeros(nq, dtype=np.int64)
    for j in range(nq):
        if exceed["warning"][j] >= probability:
            levels[j] = AlertLevel.WARNING
        elif exceed["watch"][j] >= probability:
            levels[j] = AlertLevel.WATCH
        elif exceed["advisory"][j] >= probability:
            levels[j] = AlertLevel.ADVISORY
    return EarlyWarningDecision(levels=levels, exceedance=exceed, thresholds=th)


class StreamingInverter:
    """Partial-data inversions from the leading Cholesky blocks of ``K``.

    A thin single-stream wrapper over the inversion's shared
    :class:`~repro.inference.streaming.IncrementalStreamingPosterior`
    engine: forecasts advance nested forward-substituted states one
    observation slot at a time instead of re-solving each truncated
    system from scratch.  The public API and the (mathematically exact)
    results are unchanged from the pre-engine implementation.

    Parameters
    ----------
    inv:
        A fully-assembled inversion (Phases 2-3 complete; Phase 2 alone
        suffices for :meth:`infer_partial`).
    """

    def __init__(self, inv: ToeplitzBayesianInversion) -> None:
        if not inv.phase2_complete:
            raise RuntimeError("Phase 2 must be complete")
        self.inv = inv
        self.L = inv.cholesky_lower  # (NtNd, NtNd), lower, cached on inv
        self.nd = inv.nd
        self.nt = inv.nt

    # ------------------------------------------------------------------
    def _solve_leading(self, k_slots: int, rhs: np.ndarray) -> np.ndarray:
        """``K_k^{-1} rhs`` using the leading ``k*Nd`` Cholesky block."""
        n = k_slots * self.nd
        Lk = self.L[:n, :n]
        y = sla.solve_triangular(Lk, rhs, lower=True)
        return sla.solve_triangular(Lk, y, lower=True, trans="T")

    def infer_partial(self, d_obs: np.ndarray, k_slots: int) -> np.ndarray:
        """MAP from the first ``k_slots`` of data only, ``(Nt, Nm)``.

        The result is the exact posterior mean given the truncated data
        vector (verified in tests against a from-scratch sub-problem
        solve); it covers the full time window — later slots are informed
        only through the prior and the dynamics.
        """
        if not 1 <= k_slots <= self.nt:
            raise ValueError(f"k_slots must lie in [1, {self.nt}]")
        d = np.asarray(d_obs, dtype=np.float64)
        sub = d[:k_slots].reshape(-1)
        z = self._solve_leading(k_slots, sub)
        zfull = np.zeros((self.nt, self.nd))
        zfull[:k_slots] = z.reshape(k_slots, self.nd)
        return self.inv.apply_Gstar(zfull)

    def forecast_partial(
        self, d_obs: np.ndarray, k_slots: int, times: Optional[np.ndarray] = None
    ) -> QoIForecast:
        """QoI forecast (mean + exact covariance) from partial data.

        ``q_map = Y_k^T (L_k^{-1} d_k)`` and ``Gamma_post(q) = P_q -
        Y_k^T Y_k`` with ``Y_k = L_k^{-1} B_k`` the engine's shared nested
        geometry rows — the truncated data-to-QoI operator is never formed.
        """
        if not 1 <= k_slots <= self.nt:
            raise ValueError(f"k_slots must lie in [1, {self.nt}]")
        d = np.asarray(d_obs, dtype=np.float64)
        if d.ndim != 2 or d.shape[0] < k_slots or d.shape[1] != self.nd:
            raise ValueError(
                f"d_obs must be (>= {k_slots}, {self.nd}), got {d.shape}"
            )
        # As in the seed API, callers may hold only the first k_slots of
        # data; pad to the full window (later slots are never absorbed).
        buf = np.zeros((self.nt, self.nd))
        buf[:k_slots] = d[:k_slots]
        fleet = self.inv.streaming_state().open_fleet(buf)
        fleet.advance(k_slots)
        return fleet.forecasts(times=times)[0]

    # ------------------------------------------------------------------
    def warning_latency(
        self,
        d_obs: np.ndarray,
        advisory: float,
        watch: float,
        warning: float,
        probability: float = 0.5,
        level: AlertLevel = AlertLevel.WARNING,
    ) -> Tuple[Optional[int], List[EarlyWarningDecision]]:
        """First data slot at which the alert reaches ``level``.

        Returns ``(k_slots or None, decisions per slot)`` — the measured
        detection latency of the streaming early-warning loop.  The sweep
        is incremental: one fleet state absorbs one observation slot per
        step (block forward-substitution row + covariance downdate), so
        the whole latency measurement costs no more than a single
        full-horizon solve.
        """
        d = np.asarray(d_obs, dtype=np.float64)
        fleet = self.inv.streaming_state().open_fleet(d)
        decisions = []
        fired: Optional[int] = None
        for k in range(1, self.nt + 1):
            fleet.advance(k)
            fc = fleet.forecasts()[0]
            dec = decide_alert(fc, advisory, watch, warning, probability)
            decisions.append(dec)
            if fired is None and dec.max_level() >= level:
                fired = k
        return fired, decisions
