"""Event-driven twin orchestrator: clocked chaos replays over the fabric.

Every benchmark before this module scored isolated requests.  The paper's
claim is end-to-end — from first pressure readings to a calibrated
forecast fast enough to beat the wave — so the honest system-level test
replays *many concurrent events* through the live
:class:`~repro.serve.fabric.ServingFabric`: overlapping ruptures and
aftershocks (staggered start ticks), sensor dropout windows, noise
bursts, and worker kills/respawns mid-event, while a
:class:`~repro.twin.kpi.KPITracker` scores per-event KPIs
(time-to-correct-identification, warning lead time, forecast interval
calibration).

The engine is a *clocked replay*, not a simulator: virtual time advances
in discrete ticks; at tick ``t`` every in-flight event has absorbed
``(t - start_tick + 1) * tick_stride`` observation slots, and the
orchestrator submits one identification and one bank-conditioned mixture
forecast per active event — by default through the fabric's
micro-batching ticket queue, so concurrent events genuinely fuse into
shared micro-batches exactly as a warning center's request stream would.

Determinism is the design constraint: every stochastic element (scenario
draw, start ticks, dropout masks, burst amplitudes and draws, kill
schedule) derives from ``np.random.SeedSequence`` tuples, and the scored
KPI payload contains no wall-clock values — two same-seed chaos replays
serialize to byte-identical KPI JSON even when worker kills force
parent-side recomputation (sharded results are bitwise equal to flat by
construction).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.twin.earlywarning import AlertLevel, decide_alert
from repro.twin.kpi import EventKPI, KPITracker, first_exceedance_slot
from repro.util.clock import Clock, ensure_clock

__all__ = [
    "SyntheticEvent",
    "EventScript",
    "OrchestratorConfig",
    "OrchestratorResult",
    "TwinOrchestrator",
    "corrupt_stream",
]

_SEED_MASK = (1 << 63) - 1
# Domain tags keeping the script's seed streams disjoint from each other
# and from the bank's rupture/noise streams (which use small tags).
_TAG_SCENARIO = 0x6F5C01
_TAG_TIMING = 0x6F5C02
_TAG_DROPOUT = 0x6F5C03
_TAG_BURST = 0x6F5C04
_TAG_KILLS = 0x6F5C05


@dataclass(frozen=True)
class SyntheticEvent:
    """One scripted event: a bank scenario plus its corruption plan.

    ``start_tick`` staggers events so several are always in flight;
    dropout zeroes a sensor subset over a slot window (a cabled array
    segment going dark); the burst adds seeded Gaussian noise scaled by
    ``burst_amplitude`` times the stream RMS over its own window (a ship
    passing over the pressure gauges).  ``corruption_seed`` is the
    entropy of the burst draw — the whole corruption is reproducible
    from the event record alone.
    """

    event_id: str
    scenario_index: int
    scenario_id: str
    start_tick: int
    dropout_sensors: Tuple[int, ...] = ()
    dropout_t0: int = 0
    dropout_t1: int = 0
    burst_amplitude: float = 0.0
    burst_t0: int = 0
    burst_t1: int = 0
    corruption_seed: int = 0


def corrupt_stream(d_obs: np.ndarray, event: SyntheticEvent) -> np.ndarray:
    """Apply one event's scripted corruption to its observation stream.

    Returns a corrupted *copy* of ``d_obs`` ``(Nt, Nd)``: the dropout
    window's sensors are zeroed (dead channel, not missing-data — the
    inversion still absorbs the zeros, which is the operationally honest
    failure mode for a cabled array), then the seeded noise burst is
    added.  Deterministic in ``event.corruption_seed``.
    """
    d = np.array(d_obs, dtype=np.float64)
    if event.dropout_sensors and event.dropout_t1 > event.dropout_t0:
        d[event.dropout_t0 : event.dropout_t1, list(event.dropout_sensors)] = 0.0
    if event.burst_amplitude > 0.0 and event.burst_t1 > event.burst_t0:
        rng = np.random.default_rng(
            np.random.SeedSequence((_TAG_BURST, event.corruption_seed & _SEED_MASK))
        )
        rms = float(np.sqrt(np.mean(np.asarray(d_obs, dtype=np.float64) ** 2)))
        scale = event.burst_amplitude * (rms if rms > 0.0 else 1.0)
        window = (event.burst_t1 - event.burst_t0, d.shape[1])
        d[event.burst_t0 : event.burst_t1] += scale * rng.standard_normal(window)
    return d


@dataclass
class EventScript:
    """A seeded chaos script: events plus the worker kill/respawn plan.

    ``kills`` is a list of ``(tick, worker_id)`` hard kills applied at
    the *start* of the tick (before that tick's requests), ``respawns``
    the ticks at which every dead worker slot is relaunched.  Build one
    with :meth:`generate`; the script is plain data, so tests can also
    author one by hand for targeted cases.
    """

    events: List[SyntheticEvent]
    kills: List[Tuple[int, int]] = field(default_factory=list)
    respawns: List[int] = field(default_factory=list)
    seed: int = 0

    @classmethod
    def generate(
        cls,
        bank,
        nt: int,
        nd: int,
        n_events: int = 8,
        seed: int = 0,
        n_workers: int = 2,
        n_kills: int = 1,
        respawn_after: Optional[int] = 2,
        max_start_tick: Optional[int] = None,
        p_dropout: float = 0.5,
        p_burst: float = 0.5,
    ) -> "EventScript":
        """Draw a reproducible chaos script against ``bank``.

        Scenarios are sampled without replacement while the bank lasts
        (wrapping only when ``n_events > len(bank)``); start ticks are
        staggered over ``[0, max_start_tick]`` (default ``n_events // 2``)
        so events overlap; each event independently draws a dropout mask
        and a noise burst with the given probabilities.  Kills land on
        ticks ``[1, max_start_tick + 1]`` — while events are in flight —
        and each kill schedules a fleet respawn ``respawn_after`` ticks
        later (``None`` = never respawn).  Every draw comes from
        ``SeedSequence((seed, tag, ...))`` streams, so two calls with the
        same arguments return identical scripts.
        """
        if n_events < 1:
            raise ValueError("n_events must be >= 1")
        S = len(bank)
        ids = bank.ids()
        base = int(seed) & _SEED_MASK
        rng_sc = np.random.default_rng(np.random.SeedSequence((base, _TAG_SCENARIO)))
        rng_t = np.random.default_rng(np.random.SeedSequence((base, _TAG_TIMING)))
        rng_dr = np.random.default_rng(np.random.SeedSequence((base, _TAG_DROPOUT)))
        rng_bu = np.random.default_rng(np.random.SeedSequence((base, _TAG_BURST)))

        # Without-replacement while the bank lasts: distinct events should
        # stress distinct scenarios, not re-identify one.
        picks: List[int] = []
        while len(picks) < n_events:
            block = rng_sc.permutation(S)[: n_events - len(picks)]
            picks.extend(int(j) for j in block)

        max_start = (
            max(1, n_events // 2) if max_start_tick is None else int(max_start_tick)
        )
        events: List[SyntheticEvent] = []
        for i, j in enumerate(picks):
            start = int(rng_t.integers(0, max_start + 1))
            dropout: Tuple[int, ...] = ()
            d0 = d1 = 0
            if rng_dr.random() < p_dropout:
                # A short outage on a small sensor subset: a dead channel
                # is a signal-sized perturbation on its own, so the
                # default keeps it survivable (identification must still
                # succeed; the chaos is in the serving path, not a
                # designed-to-fail inverse problem).
                n_drop = int(rng_dr.integers(1, max(2, nd // 8) + 1))
                dropout = tuple(
                    int(s) for s in sorted(rng_dr.permutation(nd)[:n_drop])
                )
                d0 = int(rng_dr.integers(0, max(1, nt // 2)))
                d1 = min(nt, d0 + int(rng_dr.integers(1, max(2, nt // 3))))
            amp = 0.0
            b0 = b1 = 0
            if rng_bu.random() < p_burst:
                # 2-8x the 1%-relative instrument noise (amplitude is in
                # units of the stream RMS): clearly above the modeled
                # noise floor, clearly below signal scale.
                amp = float(rng_bu.uniform(0.02, 0.08))
                b0 = int(rng_bu.integers(0, max(1, nt // 2)))
                b1 = min(nt, b0 + int(rng_bu.integers(1, max(2, nt // 2))))
            events.append(
                SyntheticEvent(
                    event_id=f"ev{i:03d}",
                    scenario_index=j,
                    scenario_id=ids[j],
                    start_tick=start,
                    dropout_sensors=dropout,
                    dropout_t0=d0,
                    dropout_t1=d1,
                    burst_amplitude=amp,
                    burst_t0=b0,
                    burst_t1=b1,
                    corruption_seed=int(
                        np.random.SeedSequence((base, _TAG_BURST, i)).generate_state(
                            1, np.uint64
                        )[0]
                    ),
                )
            )

        rng_k = np.random.default_rng(np.random.SeedSequence((base, _TAG_KILLS)))
        kills: List[Tuple[int, int]] = []
        respawns: List[int] = []
        for _ in range(int(n_kills)):
            tick = int(rng_k.integers(1, max_start + 2))
            wid = int(rng_k.integers(0, max(1, n_workers)))
            kills.append((tick, wid))
            if respawn_after is not None:
                respawns.append(tick + int(respawn_after))
        return cls(events=events, kills=kills, respawns=sorted(set(respawns)),
                   seed=int(seed))


@dataclass
class OrchestratorConfig:
    """Replay knobs for :class:`TwinOrchestrator`.

    Attributes
    ----------
    tick_stride:
        Observation slots absorbed per virtual tick (the replay's data
        cadence).
    top_k:
        Rank window for "correct identification" (must not exceed the
        fabric's certified ``screen_top``).  The default ``3`` matches
        operational practice — a warning center acts on a short certified
        candidate list, and a scripted sensor-dropout window is a
        signal-sized model violation that can legitimately demote the
        truth below MAP while it stays in the leading ranks.  MAP
        correctness is additionally scored per event
        (:attr:`~repro.twin.kpi.EventKPI.map_correct`).
    use_queue:
        ``True`` (default) admits every request through
        :meth:`~repro.serve.fabric.ServingFabric.submit` tickets so
        concurrent events fuse into micro-batches; ``False`` issues one
        stacked direct call per tick — same results (queue equivalence),
        useful as a cross-check.
    advisory / watch / warning:
        Absolute alert thresholds on the QoI wave height.  ``None``
        derives them from the bank's clean QoI library: ``warning`` is
        half the median per-scenario peak, ``watch``/``advisory`` are
        60%/30% of ``warning`` — scale-free defaults that fire for
        typical bank members without being trivially always-on.
    alert_probability:
        Posterior exceedance probability that triggers a level.
    coverage_level:
        Credible level of the calibration KPI's bands.
    observation_seed:
        Seed for the bank's noisy observation draws (``None`` = bank
        seed).
    times:
        Optional forecast time grid passed through to the mixture call.
    """

    tick_stride: int = 2
    top_k: int = 3
    use_queue: bool = True
    advisory: Optional[float] = None
    watch: Optional[float] = None
    warning: Optional[float] = None
    alert_probability: float = 0.5
    coverage_level: float = 0.95
    observation_seed: Optional[int] = None
    times: Optional[np.ndarray] = None


@dataclass
class OrchestratorResult:
    """Outcome of one replay: scored KPIs plus run accounting."""

    events: List[EventKPI]
    summary: Dict[str, object]
    thresholds: Dict[str, float]
    n_ticks: int
    kills_applied: int
    respawns_applied: int
    wall_s: float
    fabric_counters: Dict[str, float]

    @property
    def all_identified(self) -> bool:
        """Every event's true scenario in the top-k at its final horizon."""
        return all(k.identified for k in self.events)

    def kpi_payload(self) -> Dict[str, object]:
        """The deterministic KPI payload (no wall-clock values).

        This is the section of ``BENCH_orchestrator.json`` that two
        same-seed replays must reproduce byte-for-byte; ``wall_s`` and
        the fabric byte counters live *outside* it.
        """
        return {
            "summary": dict(self.summary),
            "thresholds": {k: float(v) for k, v in self.thresholds.items()},
            "n_ticks": self.n_ticks,
            "kills_applied": self.kills_applied,
            "respawns_applied": self.respawns_applied,
            "events": [k.to_dict() for k in self.events],
        }


class TwinOrchestrator:
    """Replays an :class:`EventScript` through a live serving fabric.

    Parameters
    ----------
    fabric:
        An open :class:`~repro.serve.fabric.ServingFabric` whose
        inversion is p2q-complete (mixture forecasts are a scored KPI).
    bank:
        The :class:`~repro.serve.scenarios.ScenarioBank` the script was
        generated against (attached on first use if not already).
    script:
        The seeded chaos script to replay.
    config:
        Replay knobs (default :class:`OrchestratorConfig`).
    clock:
        Wall-time source for the run's throughput accounting only — KPI
        values never depend on it.  Tests inject a
        :class:`~repro.util.clock.ManualClock`.
    """

    def __init__(
        self,
        fabric,
        bank,
        script: EventScript,
        config: Optional[OrchestratorConfig] = None,
        clock: Optional[Clock] = None,
    ) -> None:
        if not script.events:
            raise ValueError("script has no events")
        self.fabric = fabric
        self.bank = bank
        self.script = script
        self.config = config or OrchestratorConfig()
        if self.config.tick_stride < 1:
            raise ValueError("tick_stride must be >= 1")
        if fabric.inv.Fq is None:
            raise RuntimeError(
                "orchestrator KPIs need mixture forecasts; the fabric's "
                "inversion must be p2q-complete"
            )
        self._clock = ensure_clock(clock)

    # ------------------------------------------------------------------
    def _thresholds(self, qoi_clean: np.ndarray) -> Dict[str, float]:
        """Resolve alert thresholds (config overrides, bank-derived else)."""
        cfg = self.config
        if cfg.warning is not None:
            warn = float(cfg.warning)
        else:
            peaks = np.max(qoi_clean, axis=(0, 1))  # per-scenario peak QoI
            warn = 0.5 * float(np.median(peaks))
        watch = float(cfg.watch) if cfg.watch is not None else 0.6 * warn
        adv = float(cfg.advisory) if cfg.advisory is not None else 0.3 * warn
        return {"advisory": adv, "watch": watch, "warning": warn}

    def _horizon(self, event: SyntheticEvent, tick: int, nt: int) -> int:
        return min((tick - event.start_tick + 1) * self.config.tick_stride, nt)

    # ------------------------------------------------------------------
    def run(self) -> OrchestratorResult:
        """Replay the script to completion and score every event."""
        t_start = self._clock.monotonic()
        cfg = self.config
        fab = self.fabric
        inv = fab.inv
        nt = fab.nt
        qoi_clean = self.bank.clean_records(inv.Fq)  # (Nt, Nq, S)
        th = self._thresholds(qoi_clean)

        # Observation streams: bank-wide draws under the inversion's own
        # noise model (the identification evidence assumes it), then each
        # event's scripted corruption on its own copy.
        _, _, d_obs = self.bank.observation_batch(
            inv.F, noise=inv.noise, seed=cfg.observation_seed
        )
        streams: Dict[str, np.ndarray] = {}
        truths: Dict[str, np.ndarray] = {}
        tracker = KPITracker(
            top_k=cfg.top_k,
            warning_level=int(AlertLevel.WARNING),
            coverage_level=cfg.coverage_level,
        )
        for ev in self.script.events:
            streams[ev.event_id] = corrupt_stream(d_obs[:, :, ev.scenario_index], ev)
            truth = qoi_clean[:, :, ev.scenario_index]
            truths[ev.event_id] = truth
            tracker.register_event(
                ev.event_id,
                ev.scenario_id,
                truth_crossing_slot=first_exceedance_slot(truth, th["warning"]),
            )

        kills_by_tick: Dict[int, List[int]] = {}
        for tick, wid in self.script.kills:
            kills_by_tick.setdefault(int(tick), []).append(int(wid))
        respawn_ticks = set(int(t) for t in self.script.respawns)
        n_ticks = max(ev.start_tick for ev in self.script.events) + math.ceil(
            nt / cfg.tick_stride
        )
        kills_applied = 0
        respawns_applied = 0
        done: Dict[str, bool] = {ev.event_id: False for ev in self.script.events}

        for tick in range(n_ticks):
            # Fault plan first: kills and respawns land between request
            # waves, exactly like node loss between arriving data slots.
            # Faults are expressed at the transport seam (SIGKILL on
            # shared memory, connection drop on TCP), so the same chaos
            # script replays against either transport.
            for wid in kills_by_tick.get(tick, ()):
                if 0 <= wid < fab.n_worker_slots:
                    kills_applied += int(fab.inject_fault(wid))
            if tick in respawn_ticks:
                respawns_applied += fab.respawn_workers()

            active = [
                ev
                for ev in self.script.events
                if ev.start_tick <= tick and not done[ev.event_id]
            ]
            if not active:
                continue
            horizons = [self._horizon(ev, tick, nt) for ev in active]
            results, forecasts = self._serve(active, horizons, streams)
            lost = int(fab.last_report.workers_lost)
            for ev, k, res, fc in zip(active, horizons, results, forecasts):
                ranked = [sid for sid, _ in res.top_k(max(cfg.top_k, 1))[0]]
                tracker.record_identification(ev.event_id, k, ranked)
                dec = decide_alert(
                    fc,
                    advisory=th["advisory"],
                    watch=th["watch"],
                    warning=th["warning"],
                    probability=cfg.alert_probability,
                )
                tracker.record_alert(ev.event_id, k, int(dec.max_level()))
                tracker.record_coverage(
                    ev.event_id, k, fc.coverage(truths[ev.event_id], cfg.coverage_level)
                )
                if lost:
                    tracker.record_degradation(ev.event_id, lost)
                if k >= nt:
                    done[ev.event_id] = True

        wall_s = self._clock.monotonic() - t_start
        return OrchestratorResult(
            events=tracker.finalize(),
            summary=tracker.summary(),
            thresholds=th,
            n_ticks=n_ticks,
            kills_applied=kills_applied,
            respawns_applied=respawns_applied,
            wall_s=float(wall_s),
            fabric_counters=fab.report(),
        )

    # ------------------------------------------------------------------
    def _serve(
        self,
        active: Sequence[SyntheticEvent],
        horizons: Sequence[int],
        streams: Dict[str, np.ndarray],
    ):
        """One tick's requests: identifications + mixture forecasts.

        Queue mode interleaves both ops through ``submit`` and flushes
        once — concurrent events fuse into per-(bank, op) micro-batches.
        Direct mode issues the two stacked calls; the results are pinned
        identical by the queue-equivalence tests.
        """
        fab = self.fabric
        cfg = self.config
        if cfg.use_queue:
            id_tk = [
                fab.submit(streams[ev.event_id], k, bank=self.bank, op="identify")
                for ev, k in zip(active, horizons)
            ]
            mx_tk = [
                fab.submit(
                    streams[ev.event_id], k, bank=self.bank, op="forecast_mixture"
                )
                for ev, k in zip(active, horizons)
            ]
            fab.flush()
            return [t.result() for t in id_tk], [t.result() for t in mx_tk]
        D = np.stack([streams[ev.event_id] for ev in active], axis=-1)
        ks = np.asarray(horizons, dtype=np.int64)
        res = fab.identify(D, ks, bank=self.bank)
        fcs = fab.forecast_mixture(D, ks, bank=self.bank, times=cfg.times)
        rows = [_row(res, j) for j in range(len(active))]
        return rows, fcs


def _row(result, j: int):
    """One stream's view of a stacked ``IdentificationResult``."""
    from repro.serve.fabric import _slice_result

    return _slice_result(result, j)
