"""Operator archive: persist the offline phases, load them in a warning
center.

The entire point of the offline--online split is that Phases 1-3 run once
on an HPC system and the online phase runs anywhere ("deployment entirely
without any HPC infrastructure", Section VIII).  This module serializes
everything the online phase needs — the p2o/p2q kernels, the data-space
Hessian's Cholesky factor, the goal-oriented operators, the noise/prior
parameters, and the twin configuration — into one compressed ``.npz``
archive, with optional memory-mapped loading for the large kernels.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from repro.inference.bayes import ToeplitzBayesianInversion
from repro.inference.noise import NoiseModel
from repro.inference.prior import BiLaplacianPrior, SpatioTemporalPrior
from repro.inference.toeplitz import BlockToeplitzOperator
from repro.twin.config import TwinConfig

__all__ = ["save_twin_archive", "load_twin_archive"]

_FORMAT_VERSION = 1


def save_twin_archive(
    path: Union[str, Path],
    inv: ToeplitzBayesianInversion,
    config: Optional[TwinConfig] = None,
    prior_axes: Optional[list] = None,
    compressed: bool = True,
) -> Path:
    """Serialize a fully-assembled inversion to ``path`` (``.npz``).

    Stores: both Toeplitz kernels, the Cholesky factor of ``K``, ``B``,
    ``P_q``, ``Gamma_post(q)``, ``Q``, the noise variance field, the
    prior's hyperparameters and axes, and the JSON-encoded configuration.
    """
    if not inv.phase2_complete:
        raise RuntimeError("Phase 2 must be complete before archiving")
    path = Path(path)
    payload: Dict[str, np.ndarray] = {
        "format_version": np.array([_FORMAT_VERSION]),
        "p2o_kernel": inv.F.kernel,
        "cholesky_lower": inv.cholesky_lower,
        "noise_sigma": inv.noise.sigma,
        "prior_gamma": np.array([inv.prior.spatial.gamma]),
        "prior_delta": np.array([inv.prior.spatial.delta]),
        "prior_robin": np.array(
            [inv.prior.spatial.robin_beta if inv.prior.spatial.robin_beta else -1.0]
        ),
        "temporal_rho": np.array(
            [inv.prior.temporal_rho if inv.prior.temporal_rho else -1.0]
        ),
    }
    if inv.Fq is not None:
        payload["p2q_kernel"] = inv.Fq.kernel
    for name, arr in (
        ("B", inv.B),
        ("Pq", inv.Pq),
        ("qoi_covariance", inv.qoi_covariance),
        ("Q", inv.Q),
    ):
        if arr is not None:
            payload[name] = arr
    axes = prior_axes if prior_axes is not None else inv.prior.spatial.axes
    for i, a in enumerate(axes):
        payload[f"prior_axis_{i}"] = np.asarray(a)
    payload["n_prior_axes"] = np.array([len(axes)])
    if config is not None:
        payload["config_json"] = np.frombuffer(
            json.dumps(config.as_dict()).encode("utf-8"), dtype=np.uint8
        )
    saver = np.savez_compressed if compressed else np.savez
    saver(path, **payload)
    # np.savez appends .npz when missing.
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_twin_archive(
    path: Union[str, Path], mmap: bool = False
) -> Dict[str, object]:
    """Load an archive; reconstructs the online-phase objects.

    Returns a dict with keys ``F``, ``Fq`` (Toeplitz operators), ``prior``
    (:class:`SpatioTemporalPrior`), ``noise``, ``cholesky_lower``, the
    dense Phase 3 operators that were stored, and ``config`` if archived.
    ``mmap=True`` opens the file memory-mapped (only for uncompressed
    archives), so multi-gigabyte kernels are paged on demand.
    """
    path = Path(path)
    data = np.load(path, mmap_mode="r" if mmap else None, allow_pickle=False)
    version = int(data["format_version"][0])
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported archive version {version}")
    out: Dict[str, object] = {}
    kernel = np.asarray(data["p2o_kernel"])
    out["F"] = BlockToeplitzOperator(kernel)
    nt = kernel.shape[0]
    if "p2q_kernel" in data:
        out["Fq"] = BlockToeplitzOperator(np.asarray(data["p2q_kernel"]))
    n_axes = int(data["n_prior_axes"][0])
    axes = [np.asarray(data[f"prior_axis_{i}"]) for i in range(n_axes)]
    robin = float(data["prior_robin"][0])
    spatial = BiLaplacianPrior(
        axes,
        gamma=float(data["prior_gamma"][0]),
        delta=float(data["prior_delta"][0]),
        robin_beta=None if robin < 0 else robin,
    )
    trho = float(data["temporal_rho"][0])
    out["prior"] = SpatioTemporalPrior(
        spatial, nt, temporal_rho=None if trho < 0 else trho
    )
    sigma = np.asarray(data["noise_sigma"])
    out["noise"] = NoiseModel(sigma, sigma.shape[0], sigma.shape[1])
    out["cholesky_lower"] = data["cholesky_lower"]
    for name in ("B", "Pq", "qoi_covariance", "Q"):
        if name in data:
            out[name] = data[name]
    if "config_json" in data:
        raw = bytes(np.asarray(data["config_json"]).tobytes())
        out["config"] = TwinConfig.from_dict(json.loads(raw.decode("utf-8")))
    return out


def rebuild_inversion(archive: Dict[str, object]) -> ToeplitzBayesianInversion:
    """Reassemble a working :class:`ToeplitzBayesianInversion` from an archive.

    The Cholesky factor is installed directly — no re-factorization, and
    the dense ``K`` itself is *not* reconstituted (the ``L L^T`` gemm
    would cost about twice the original factorization; every online solve
    needs only the factor).  The dense Phase 3 operators are restored when
    present.
    """
    F: BlockToeplitzOperator = archive["F"]  # type: ignore[assignment]
    inv = ToeplitzBayesianInversion(
        F,
        archive["prior"],  # type: ignore[arg-type]
        archive["noise"],  # type: ignore[arg-type]
        Fq=archive.get("Fq"),  # type: ignore[arg-type]
    )
    L = np.asarray(archive["cholesky_lower"])
    inv._K_chol = (L, True)
    for name, attr in (
        ("B", "B"),
        ("Pq", "Pq"),
        ("qoi_covariance", "qoi_covariance"),
        ("Q", "Q"),
    ):
        if name in archive:
            setattr(inv, attr, np.asarray(archive[name]))
    return inv
