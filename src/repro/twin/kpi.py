"""End-to-end KPI scoring for event replays through the serving fabric.

The paper's claim is end-to-end — from first pressure readings to a
calibrated forecast fast enough to beat the wave — and Nomura et al.'s
sequential-update work makes the operational metric explicit: a scenario
database is judged on *time-to-correct-identification*, not raw
throughput.  This module scores exactly that, per synthetic event:

``time-to-identification (tti)``
    The first observation horizon at which the true scenario enters the
    certified top-``k`` **and stays there** for every later recorded
    horizon.  A transient that flaps back out does not count — the
    warning center cannot act on a ranking it cannot trust to persist.
``warning lead time``
    Slots between the alert first reaching WARNING (per
    :func:`repro.twin.earlywarning.decide_alert` on the bank-conditioned
    mixture forecast) and the true clean QoI trajectory first crossing
    the warning threshold.  Positive lead means the alert beat the wave.
``forecast calibration``
    Mean empirical coverage of the mixture forecast's pointwise credible
    band against the true clean QoI trajectory
    (:meth:`repro.inference.forecast.QoIForecast.coverage`), averaged
    over recorded horizons.

Everything recorded here is derived from seeded inputs, and every value
in :meth:`EventKPI.to_dict` / :meth:`KPITracker.summary` is JSON-native
and wall-clock-free — two same-seed chaos replays must serialize to
byte-identical KPI payloads (the determinism gate of
``benchmarks/bench_orchestrator.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

__all__ = ["EventKPI", "KPITracker", "first_exceedance_slot"]


def first_exceedance_slot(qoi_clean: np.ndarray, threshold: float) -> Optional[int]:
    """First time slot where the max-over-locations QoI crosses ``threshold``.

    ``qoi_clean`` is one event's noise-free QoI trajectory ``(Nt, Nq)``
    (from :meth:`repro.serve.scenarios.ScenarioBank.clean_records` with
    the p2q operator).  Returns ``None`` if the trajectory never crosses
    — the ground truth against which warning lead time is measured.
    """
    q = np.asarray(qoi_clean, dtype=np.float64)
    if q.ndim != 2:
        raise ValueError(f"qoi_clean must be (Nt, Nq), got {q.shape}")
    hits = np.flatnonzero(np.max(q, axis=1) >= float(threshold))
    return int(hits[0]) if hits.size else None


@dataclass
class EventKPI:
    """Scored KPIs for one replayed event (all fields JSON-native)."""

    event_id: str
    scenario_id: str
    #: true scenario in the top-k at the final recorded horizon
    identified: bool = False
    #: true scenario is the MAP (rank 1) at the final recorded horizon
    map_correct: bool = False
    #: first horizon where the truth enters the top-k and stays (slots)
    tti_slots: Optional[int] = None
    #: final recorded horizon (slots of data absorbed)
    final_horizon: Optional[int] = None
    #: first horizon at which the alert reached WARNING
    alert_horizon: Optional[int] = None
    #: slot where the true clean QoI first crosses the warning threshold
    truth_crossing_slot: Optional[int] = None
    #: truth_crossing_slot - alert_horizon (positive = alert beat the wave)
    lead_slots: Optional[int] = None
    #: mean empirical coverage of the mixture credible band over horizons
    coverage: Optional[float] = None
    #: number of recorded identification horizons
    n_horizons: int = 0
    #: total workers_lost accounted across this event's requests
    degraded_requests: int = 0

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe dict (None stays None; floats rounded nowhere)."""
        return {
            "event_id": self.event_id,
            "scenario_id": self.scenario_id,
            "identified": bool(self.identified),
            "map_correct": bool(self.map_correct),
            "tti_slots": self.tti_slots,
            "final_horizon": self.final_horizon,
            "alert_horizon": self.alert_horizon,
            "truth_crossing_slot": self.truth_crossing_slot,
            "lead_slots": self.lead_slots,
            "coverage": self.coverage,
            "n_horizons": self.n_horizons,
            "degraded_requests": self.degraded_requests,
        }


@dataclass
class _EventLog:
    """Raw per-event observations accumulated during a replay."""

    scenario_id: str
    truth_crossing_slot: Optional[int] = None
    #: horizon -> ranked scenario ids (ascending insertion order)
    rankings: Dict[int, List[str]] = field(default_factory=dict)
    #: horizon -> alert level (int)
    alerts: Dict[int, int] = field(default_factory=dict)
    #: horizon -> credible-band coverage
    coverages: Dict[int, float] = field(default_factory=dict)
    degraded: int = 0


class KPITracker:
    """Accumulates per-horizon observations and scores them into KPIs.

    The orchestrator records one identification ranking, one alert
    decision, and one coverage figure per (event, horizon); tests may
    drive the tracker directly.  ``finalize`` is idempotent and
    side-effect-free — the raw logs stay intact, so it can be called
    mid-replay for a progress snapshot.

    Parameters
    ----------
    top_k:
        Rank window for "correct identification" (``1`` = MAP match).
    warning_level:
        Alert level (``int``) that counts as the warning firing —
        defaults to ``AlertLevel.WARNING``.
    coverage_level:
        Credible level the recorded coverages were measured at (carried
        into the summary for report readers).
    """

    def __init__(
        self,
        top_k: int = 1,
        warning_level: int = 3,
        coverage_level: float = 0.95,
    ) -> None:
        if top_k < 1:
            raise ValueError("top_k must be >= 1")
        self.top_k = int(top_k)
        self.warning_level = int(warning_level)
        self.coverage_level = float(coverage_level)
        self._events: Dict[str, _EventLog] = {}
        self._order: List[str] = []

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def register_event(
        self,
        event_id: str,
        scenario_id: str,
        truth_crossing_slot: Optional[int] = None,
    ) -> None:
        """Declare an event before its first horizon is recorded."""
        if event_id in self._events:
            raise ValueError(f"event {event_id!r} already registered")
        self._events[event_id] = _EventLog(
            scenario_id=scenario_id, truth_crossing_slot=truth_crossing_slot
        )
        self._order.append(event_id)

    def _log(self, event_id: str) -> _EventLog:
        try:
            return self._events[event_id]
        except KeyError:
            raise KeyError(f"unknown event {event_id!r}; register_event first")

    def record_identification(
        self, event_id: str, horizon: int, ranked_ids: Sequence[str]
    ) -> None:
        """Record the certified ranking observed at ``horizon`` slots."""
        self._log(event_id).rankings[int(horizon)] = [str(s) for s in ranked_ids]

    def record_alert(self, event_id: str, horizon: int, level: int) -> None:
        """Record the alert level decided at ``horizon`` slots."""
        self._log(event_id).alerts[int(horizon)] = int(level)

    def record_coverage(self, event_id: str, horizon: int, coverage: float) -> None:
        """Record the mixture band's empirical coverage at ``horizon``."""
        self._log(event_id).coverages[int(horizon)] = float(coverage)

    def record_degradation(self, event_id: str, workers_lost: int) -> None:
        """Account workers lost while serving this event's requests."""
        if workers_lost:
            self._log(event_id).degraded += int(workers_lost)

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def _score(self, event_id: str, log: _EventLog) -> EventKPI:
        kpi = EventKPI(
            event_id=event_id,
            scenario_id=log.scenario_id,
            truth_crossing_slot=log.truth_crossing_slot,
            degraded_requests=log.degraded,
        )
        horizons = sorted(log.rankings)
        kpi.n_horizons = len(horizons)
        if horizons:
            kpi.final_horizon = horizons[-1]
            in_topk = [
                log.scenario_id in log.rankings[h][: self.top_k] for h in horizons
            ]
            kpi.identified = bool(in_topk[-1])
            final_ranking = log.rankings[horizons[-1]]
            kpi.map_correct = bool(
                final_ranking and final_ranking[0] == log.scenario_id
            )
            # Enters-and-stays: the latest horizon after which membership
            # never lapses.  A ranking that flaps (in, out, in) scores the
            # re-entry, not the transient.
            tti = None
            for h, ok in zip(reversed(horizons), reversed(in_topk)):
                if not ok:
                    break
                tti = h
            kpi.tti_slots = tti
        fired = sorted(
            h for h, lvl in log.alerts.items() if lvl >= self.warning_level
        )
        if fired:
            kpi.alert_horizon = fired[0]
        if kpi.alert_horizon is not None and log.truth_crossing_slot is not None:
            kpi.lead_slots = int(log.truth_crossing_slot) - int(kpi.alert_horizon)
        if log.coverages:
            kpi.coverage = float(
                np.mean([log.coverages[h] for h in sorted(log.coverages)])
            )
        return kpi

    def finalize(self) -> List[EventKPI]:
        """Score every registered event, in registration order."""
        return [self._score(eid, self._events[eid]) for eid in self._order]

    def summary(self) -> Dict[str, object]:
        """Aggregate KPI dict (JSON-native, wall-clock-free)."""
        kpis = self.finalize()
        n = len(kpis)
        identified = [k for k in kpis if k.identified]
        ttis = [k.tti_slots for k in kpis if k.tti_slots is not None]
        leads = [k.lead_slots for k in kpis if k.lead_slots is not None]
        covs = [k.coverage for k in kpis if k.coverage is not None]
        return {
            "n_events": n,
            "n_identified": len(identified),
            "identification_rate": (len(identified) / n) if n else None,
            "n_map_correct": sum(k.map_correct for k in kpis),
            "mean_tti_slots": float(np.mean(ttis)) if ttis else None,
            "max_tti_slots": int(max(ttis)) if ttis else None,
            "n_alerts_fired": sum(k.alert_horizon is not None for k in kpis),
            "mean_lead_slots": float(np.mean(leads)) if leads else None,
            "mean_coverage": float(np.mean(covs)) if covs else None,
            "degraded_requests": sum(k.degraded_requests for k in kpis),
            "top_k": self.top_k,
            "coverage_level": self.coverage_level,
        }
