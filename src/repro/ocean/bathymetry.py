"""Parametric Cascadia-like topobathymetry.

The paper meshes GEBCO's 15-arc-second bathymetry of the Cascadia margin
(Fig. 1a).  Gridded GEBCO data is not available offline, so this module
provides parametric depth profiles with the same morphological structure —
abyssal plain, trench, continental slope, and shelf — plus optional smooth
seeded roughness.  The inversion machinery never consumes bathymetry
directly; it only shapes the terrain-following mesh (and hence wave travel
times), which these profiles reproduce qualitatively.

Convention: profiles are callables ``depth(x)`` (2D vertical slice) or
``depth(x, y)`` (3D), returning strictly positive water depth.  The ``x``
axis points shoreward (x = 0 is the seaward/offshore edge, x = L_x the
coast); ``y`` runs along-margin (south to north).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.util.validation import check_positive

__all__ = ["FlatBathymetry", "GaussianRidgeBathymetry", "CascadiaBathymetry"]


@dataclass(frozen=True)
class FlatBathymetry:
    """Constant water depth (analytic test configurations)."""

    depth: float = 1.0

    def __post_init__(self) -> None:
        check_positive("depth", self.depth)

    def __call__(self, x: np.ndarray, y: Optional[np.ndarray] = None) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        return np.full_like(x, self.depth)


@dataclass(frozen=True)
class GaussianRidgeBathymetry:
    """A flat seafloor with a Gaussian seamount/ridge rising from it.

    Useful for testing bathymetry-adapted meshing and the effect of
    topography on travel times without the full margin structure.
    """

    depth: float = 1.0
    ridge_height: float = 0.4
    center: float = 0.5
    width: float = 0.15

    def __post_init__(self) -> None:
        check_positive("depth", self.depth)
        if not 0 <= self.ridge_height < self.depth:
            raise ValueError("ridge_height must lie in [0, depth)")

    def __call__(self, x: np.ndarray, y: Optional[np.ndarray] = None) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        bump = self.ridge_height * np.exp(-(((x - self.center) / self.width) ** 2))
        return self.depth - bump


@dataclass(frozen=True)
class CascadiaBathymetry:
    """Cascadia-margin-like depth profile: abyss, trench, slope, shelf.

    Moving shoreward (increasing ``x``): an abyssal plain of depth
    ``abyssal_depth``, a gentle trench deepening of amplitude
    ``trench_depth`` at ``trench_x``, the continental slope rising over
    ``slope_width`` centered at ``slope_x``, and a shallow shelf of depth
    ``shelf_depth``.  In 3D an along-margin undulation of relative
    amplitude ``along_margin_variation`` modulates the slope position,
    mimicking the bends of the real deformation front; seeded smooth
    roughness can be superposed.

    All lengths share the units of the mesh coordinates (use meters with
    :meth:`repro.ocean.material.SeawaterMaterial.standard`).
    """

    length_x: float = 100_000.0
    length_y: float = 0.0
    abyssal_depth: float = 2800.0
    shelf_depth: float = 180.0
    trench_depth: float = 200.0
    trench_x_frac: float = 0.18
    trench_width_frac: float = 0.06
    slope_x_frac: float = 0.62
    slope_width_frac: float = 0.10
    along_margin_variation: float = 0.06
    roughness: float = 0.0
    seed: int = 0
    _modes: np.ndarray = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        check_positive("length_x", self.length_x)
        check_positive("abyssal_depth", self.abyssal_depth)
        check_positive("shelf_depth", self.shelf_depth)
        if self.shelf_depth >= self.abyssal_depth:
            raise ValueError("shelf must be shallower than the abyssal plain")
        if self.roughness < 0 or self.roughness >= 0.5:
            raise ValueError("roughness is a relative amplitude in [0, 0.5)")
        # Pre-draw a small set of smooth roughness modes (deterministic).
        rng = np.random.default_rng(self.seed)
        n_modes = 6
        modes = np.stack(
            [
                rng.uniform(2.0, 6.0, n_modes),   # wavenumbers in x (cycles)
                rng.uniform(0.5, 3.0, n_modes),   # wavenumbers in y
                rng.uniform(0.0, 2 * np.pi, n_modes),  # phases
                rng.standard_normal(n_modes) / np.sqrt(n_modes),  # amplitudes
            ],
            axis=1,
        )
        object.__setattr__(self, "_modes", modes)

    def __call__(self, x: np.ndarray, y: Optional[np.ndarray] = None) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        xf = x / self.length_x
        if y is not None and self.length_y > 0:
            yf = np.asarray(y, dtype=np.float64) / self.length_y
        else:
            yf = np.zeros_like(xf)
        # Along-margin bend of the slope position.
        slope_x = self.slope_x_frac + self.along_margin_variation * np.sin(
            2.0 * np.pi * yf
        )
        slope = 0.5 * (1.0 - np.tanh((xf - slope_x) / self.slope_width_frac))
        depth = self.shelf_depth + (self.abyssal_depth - self.shelf_depth) * slope
        depth = depth + self.trench_depth * np.exp(
            -(((xf - self.trench_x_frac) / self.trench_width_frac) ** 2)
        )
        if self.roughness > 0:
            r = np.zeros_like(xf)
            for kx, ky, ph, amp in self._modes:
                r = r + amp * np.sin(2 * np.pi * (kx * xf + ky * yf) + ph)
            depth = depth * (1.0 + self.roughness * r)
        return np.maximum(depth, 0.5 * self.shelf_depth)

    def scaled(self, length_x: float, depth_scale: float) -> "CascadiaBathymetry":
        """A geometrically similar profile at a different scale.

        Used by reduced-scale demos: shrink the margin to ``length_x`` and
        all depths by ``depth_scale`` while preserving the shape.
        """
        return CascadiaBathymetry(
            length_x=length_x,
            length_y=self.length_y * (length_x / self.length_x),
            abyssal_depth=self.abyssal_depth * depth_scale,
            shelf_depth=self.shelf_depth * depth_scale,
            trench_depth=self.trench_depth * depth_scale,
            trench_x_frac=self.trench_x_frac,
            trench_width_frac=self.trench_width_frac,
            slope_x_frac=self.slope_x_frac,
            slope_width_frac=self.slope_width_frac,
            along_margin_variation=self.along_margin_variation,
            roughness=self.roughness,
            seed=self.seed,
        )
