"""Seawater material properties for the acoustic--gravity model.

The PDE coefficients of Eq. (1) are the seawater density ``rho``, the bulk
modulus ``K = rho c^2`` (with ``c`` the sound speed), the acoustic impedance
``Z = rho c`` used by the absorbing boundary, and gravitational acceleration
``g`` entering the free-surface condition ``p = rho g eta``.

Two presets are provided:

* :meth:`SeawaterMaterial.standard` — physical SI values (rho = 1025 kg/m^3,
  c = 1500 m/s, g = 9.81 m/s^2), used by the Cascadia-scale examples;
* :meth:`SeawaterMaterial.nondimensional` — unit coefficients, used by the
  test suite so wave transit times are O(1) and CFL substep counts stay
  small.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import check_positive

__all__ = ["SeawaterMaterial"]


@dataclass(frozen=True)
class SeawaterMaterial:
    """Homogeneous seawater properties.

    Attributes
    ----------
    rho:
        Density (kg/m^3 in SI).
    c:
        Speed of sound (m/s in SI).
    g:
        Gravitational acceleration (m/s^2 in SI).
    """

    rho: float = 1025.0
    c: float = 1500.0
    g: float = 9.81

    def __post_init__(self) -> None:
        check_positive("rho", self.rho)
        check_positive("c", self.c)
        check_positive("g", self.g)

    @property
    def bulk_modulus(self) -> float:
        """Bulk modulus ``K = rho c^2``."""
        return self.rho * self.c**2

    @property
    def impedance(self) -> float:
        """Acoustic impedance ``Z = rho c`` (absorbing-boundary coefficient)."""
        return self.rho * self.c

    @classmethod
    def standard(cls) -> "SeawaterMaterial":
        """Physical seawater in SI units."""
        return cls(rho=1025.0, c=1500.0, g=9.81)

    @classmethod
    def nondimensional(cls, c: float = 1.0, g: float = 1.0) -> "SeawaterMaterial":
        """Unit-density material with adjustable wave speeds (for tests).

        Keeping ``c`` and ``g`` both O(1) compresses the separation between
        the acoustic and gravity time scales so short simulations exercise
        both physics branches.
        """
        return cls(rho=1.0, c=c, g=g)

    def gravity_wave_speed(self, depth: float) -> float:
        """Shallow-water gravity wave speed ``sqrt(g H)`` at depth ``H``."""
        check_positive("depth", depth)
        return float((self.g * depth) ** 0.5)

    def acoustic_cutoff_frequency(self, depth: float) -> float:
        """Fundamental acoustic organ-pipe frequency ``c / (4 H)`` (Hz).

        Below this frequency the water column responds quasi-statically to
        seafloor motion; above it, acoustic modes propagate — the frequency
        band the paper's seafloor pressure sensors exploit.
        """
        check_positive("depth", depth)
        return self.c / (4.0 * depth)
