"""The slot propagator: forward/adjoint wave propagation over observation slots.

Time is partitioned into ``N_t`` observation slots of width ``dt_obs`` (the
1 Hz observation cadence of the paper).  The parameter field ``m(x, t)`` is
piecewise constant per slot, and each slot advances the state with
``n_substeps`` linear-RK4 steps at the CFL-limited timestep.  The slot map
is therefore *exactly affine*,

.. math:: x_j = S\\, x_{j-1} + W\\, m_j,

with ``S = P(dt L)^{n}`` and ``W = sum_s P^s (dt Q) B``, so the discrete
p2o map has blocks ``F_{ij} = C S^{i-j} W`` — block lower-triangular
Toeplitz **by construction**, which is the structural fact the paper's
entire offline--online decomposition rests on.

Phase 1 of the framework is :meth:`SlotPropagator.p2o_kernel`: one batched
adjoint propagation seeded with ``C^T`` extracts the whole kernel
``T[k] = C S^k W`` (one block row per sensor), to machine precision, in a
single reverse sweep.  The forward-impulse route
(:meth:`p2o_kernel_forward`) computes the same kernel column-wise and is
used to cross-validate the adjoint to ~1e-13.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.fem.timestep import rk4_adjoint_slot_pass, rk4_forced_step
from repro.ocean.acoustic_gravity import AcousticGravityOperator
from repro.ocean.observations import PointObservationOperator
from repro.util.timing import TimerRegistry

__all__ = ["ForwardResult", "SlotPropagator"]


@dataclass
class ForwardResult:
    """Outputs of a forward propagation.

    Attributes
    ----------
    d:
        Sensor observations ``(Nt, Nd[, k])`` (present if sensors given).
    q:
        QoI values ``(Nt, Nq[, k])`` (present if QoI operator given).
    final_state:
        The packed state after the last slot.
    energies:
        Discrete energy after each slot, ``(Nt, k)`` (if requested).
    eta:
        Surface wave-height trace after each slot ``(Nt, n_surf[, k])``
        (if requested) — the fields shown in the paper's Fig. 3c/f.
    """

    d: Optional[np.ndarray] = None
    q: Optional[np.ndarray] = None
    final_state: Optional[np.ndarray] = None
    energies: Optional[np.ndarray] = None
    eta: Optional[np.ndarray] = None


@dataclass
class SolveCounter:
    """Ledger of PDE work, used by the state-of-the-art cost model."""

    forward_solves: int = 0
    adjoint_solves: int = 0
    operator_applications: int = 0

    def reset(self) -> None:
        """Zero all counters."""
        self.forward_solves = 0
        self.adjoint_solves = 0
        self.operator_applications = 0


class SlotPropagator:
    """Forward and adjoint acoustic--gravity propagation over slots.

    Parameters
    ----------
    op:
        The assembled :class:`~repro.ocean.acoustic_gravity.AcousticGravityOperator`.
    dt_obs:
        Observation-slot width (seconds; 1.0 for the paper's 1 Hz data).
    n_slots:
        Number of observation slots ``N_t``.
    cfl:
        CFL fraction used to pick the substep count (ignored when
        ``n_substeps`` is given explicitly).
    n_substeps:
        Optional explicit RK4 substeps per slot.
    """

    def __init__(
        self,
        op: AcousticGravityOperator,
        dt_obs: float,
        n_slots: int,
        cfl: float = 0.4,
        n_substeps: Optional[int] = None,
        timers: Optional[TimerRegistry] = None,
    ) -> None:
        if dt_obs <= 0 or n_slots < 1:
            raise ValueError("dt_obs must be positive and n_slots >= 1")
        self.op = op
        self.dt_obs = float(dt_obs)
        self.n_slots = int(n_slots)
        if n_substeps is None:
            dt_cfl = op.cfl_timestep(cfl)
            n_substeps = max(1, int(math.ceil(self.dt_obs / dt_cfl)))
        self.n_substeps = int(n_substeps)
        self.dt = self.dt_obs / self.n_substeps
        self.timers = timers if timers is not None else TimerRegistry()
        self.counter = SolveCounter()

    # ------------------------------------------------------------------
    @property
    def total_timesteps(self) -> int:
        """RK4 steps per full propagation (``N_t * n_substeps``)."""
        return self.n_slots * self.n_substeps

    @property
    def duration(self) -> float:
        """Simulated physical time ``T = N_t * dt_obs``."""
        return self.n_slots * self.dt_obs

    def times(self) -> np.ndarray:
        """Observation instants ``t_i = i * dt_obs``, ``i = 1..Nt``."""
        return self.dt_obs * np.arange(1, self.n_slots + 1)

    # ------------------------------------------------------------------
    # Forward propagation
    # ------------------------------------------------------------------
    def forward(
        self,
        m: Optional[np.ndarray],
        sensors: Optional[PointObservationOperator] = None,
        qoi: Optional[PointObservationOperator] = None,
        x0: Optional[np.ndarray] = None,
        record_energy: bool = False,
        record_eta: bool = False,
    ) -> ForwardResult:
        """Propagate forward and record observations slot by slot.

        Parameters
        ----------
        m:
            Parameter blocks ``(Nt, Nm)`` or batched ``(Nt, Nm, k)``;
            ``None`` for homogeneous propagation of an initial state.
        sensors, qoi:
            Observation operators to record after each slot.
        x0:
            Optional initial state ``(nstate, k)``.
        record_energy, record_eta:
            Record the slot-end energy / surface-height trace.
        """
        op = self.op
        if m is not None:
            m = np.asarray(m, dtype=np.float64)
            if m.shape[0] != self.n_slots or m.shape[1] != op.n_parameters:
                raise ValueError(
                    f"m must have shape (Nt={self.n_slots}, Nm={op.n_parameters}[, k]),"
                    f" got {m.shape}"
                )
            k = m.shape[2] if m.ndim == 3 else 1
        else:
            if x0 is None:
                raise ValueError("either m or x0 must be given")
            k = x0.shape[1]
        X = op.zero_state(k) if x0 is None else np.array(x0, dtype=np.float64)

        d = np.empty((self.n_slots, sensors.n, k)) if sensors is not None else None
        q = np.empty((self.n_slots, qoi.n, k)) if qoi is not None else None
        energies = np.empty((self.n_slots, k)) if record_energy else None
        eta = (
            np.empty((self.n_slots, op.surface_op.n, k)) if record_eta else None
        )

        with self.timers.time("Forward solve"):
            for j in range(self.n_slots):
                if m is None:
                    F = None
                else:
                    mj = m[j] if m.ndim == 3 else m[j][:, None]
                    F = op.forcing(mj)
                for _ in range(self.n_substeps):
                    X = rk4_forced_step(op.apply, X, self.dt, F)
                self.counter.operator_applications += 4 * self.n_substeps
                if d is not None:
                    d[j] = sensors.observe_state(X)
                if q is not None:
                    q[j] = qoi.observe_state(X)
                if energies is not None:
                    energies[j] = op.energy(X)
                if eta is not None:
                    eta[j] = op.surface_eta(X)
        self.counter.forward_solves += k

        def _squeeze(a: Optional[np.ndarray]) -> Optional[np.ndarray]:
            if a is None:
                return None
            return a[..., 0] if (k == 1 and (m is None or m.ndim == 2)) else a

        return ForwardResult(
            d=_squeeze(d),
            q=_squeeze(q),
            final_state=X,
            energies=_squeeze(energies),
            eta=_squeeze(eta),
        )

    # ------------------------------------------------------------------
    # Phase 1: kernel extraction
    # ------------------------------------------------------------------
    def p2o_kernel(
        self,
        obs: PointObservationOperator,
        timer_name: str = "Adjoint p2o",
    ) -> np.ndarray:
        """Extract the block-Toeplitz kernel ``T[k] = C S^k W`` by adjoint.

        One *batched* adjoint propagation seeded with all rows of ``C^T``
        simultaneously; the paper's Phase 1 runs these as ``N_d``
        independent adjoint PDE solves (one per sensor).

        Returns
        -------
        ``(Nt, n_obs, Nm)`` kernel array (the first block column of ``F``).
        """
        op = self.op
        nobs = obs.n
        lam = op.zero_state(nobs)
        _, lam_p = op.views(lam)
        lam_p[...] = obs.adjoint_seed()
        T = np.empty((self.n_slots, nobs, op.n_parameters))
        with self.timers.time(timer_name):
            for kslot in range(self.n_slots):
                g = np.zeros((op.n_parameters, nobs))
                for _ in range(self.n_substeps):
                    pt, qt = rk4_adjoint_slot_pass(op.apply_transpose, lam, self.dt)
                    g += self.dt * op.forcing_transpose(qt)
                    lam = pt
                self.counter.operator_applications += 4 * self.n_substeps
                T[kslot] = g.T
        self.counter.adjoint_solves += nobs
        return T

    def p2o_kernel_forward(self, obs: PointObservationOperator) -> np.ndarray:
        """Cross-check: the same kernel via forward impulse responses.

        Propagates a batch of ``N_m`` unit impulses applied in the first
        slot; the recorded observations are exactly the kernel columns.
        Quadratically more expensive in memory than the adjoint route —
        used in tests and ablations only.
        """
        op = self.op
        Nm = op.n_parameters
        m = np.zeros((self.n_slots, Nm, Nm))
        m[0] = np.eye(Nm)
        res = self.forward(m, sensors=obs)
        return np.ascontiguousarray(res.d)  # (Nt, n_obs, Nm)

    # ------------------------------------------------------------------
    # Matrix-free p2o actions (the state-of-the-art baseline's workhorse)
    # ------------------------------------------------------------------
    def apply_p2o(
        self, m: np.ndarray, obs: PointObservationOperator
    ) -> np.ndarray:
        """``F m`` by one forward PDE solve (what each SoA CG iteration pays)."""
        return self.forward(m, sensors=obs).d

    def apply_p2o_transpose(
        self, d: np.ndarray, obs: PointObservationOperator
    ) -> np.ndarray:
        """``F* d`` by one adjoint PDE solve (reverse sweep with data sources).

        Uses the recursion ``mu_j = C^T d_j + S^T mu_{j+1}`` with
        ``(F^* d)_j = W^T mu_j``; each slot costs one adjoint slot pass
        (both ``S^T`` and ``W^T`` come out of the shared Horner chain).
        """
        op = self.op
        d = np.asarray(d, dtype=np.float64)
        squeeze = d.ndim == 2
        dd = d[:, :, None] if squeeze else d
        if dd.shape[:2] != (self.n_slots, obs.n):
            raise ValueError(
                f"d must be (Nt={self.n_slots}, n_obs={obs.n}[, k]), got {d.shape}"
            )
        k = dd.shape[2]
        mu = op.zero_state(k)
        _, mu_p = op.views(mu)
        g = np.empty((self.n_slots, op.n_parameters, k))
        CT = obs.matrix.T
        for j in range(self.n_slots - 1, -1, -1):
            mu_p += np.asarray(CT @ dd[j])
            gj = np.zeros((op.n_parameters, k))
            lam = mu
            for _ in range(self.n_substeps):
                pt, qt = rk4_adjoint_slot_pass(op.apply_transpose, lam, self.dt)
                gj += self.dt * op.forcing_transpose(qt)
                lam = pt
            self.counter.operator_applications += 4 * self.n_substeps
            g[j] = gj
            mu = lam
            _, mu_p = op.views(mu)
        self.counter.adjoint_solves += k
        return g[:, :, 0] if squeeze else g

    # ------------------------------------------------------------------
    def homogeneous_response(
        self, x0: np.ndarray, obs: PointObservationOperator
    ) -> np.ndarray:
        """Observations of ``C S^k x0`` for ``k = 1..Nt`` (LTI shift tests)."""
        res = self.forward(None, sensors=obs, x0=x0)
        return res.d

    def report(self) -> Dict[str, float]:
        """Work and time accounting for this propagator."""
        out: Dict[str, float] = {
            "n_slots": self.n_slots,
            "n_substeps": self.n_substeps,
            "dt": self.dt,
            "forward_solves": self.counter.forward_solves,
            "adjoint_solves": self.counter.adjoint_solves,
            "operator_applications": self.counter.operator_applications,
        }
        out.update(self.timers.as_dict())
        return out
