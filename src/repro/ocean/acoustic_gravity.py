"""The semi-discrete acoustic--gravity wave operator (paper Eq. 1 / Eq. 4).

Discretizing the mixed variational form of the first-order system with
order-``p`` continuous pressure and order-``p-1`` discontinuous velocity
(Section VI-C of the paper) and collocated (diagonal) mass matrices yields

.. math::

    M_u \\dot u = -\\mathcal{G} p, \\qquad
    M_p \\dot p = \\mathcal{G}^T u - S_a p + R\\, m(t),

where ``G`` is the weak gradient pairing, ``S_a`` the absorbing-impedance
boundary damping, and ``R`` the seafloor trace injection of the parameter
``m`` (inward-normal seafloor velocity).  The pressure mass ``M_p``
contains the free-surface gravity term ``<(rho g)^{-1} p, v>_surface`` —
that single boundary mass is what couples acoustics to surface gravity
waves.

The state is packed as one array ``X`` of shape ``(nstate, k)`` (``k`` a
batch of independent columns — multiple sensors' adjoints, or multiple
parameter realizations — processed simultaneously):

* ``X[:nu]`` viewed as ``(nelem, nq, dim, k)`` — velocity at Gauss points,
* ``X[nu:]`` of shape ``(ndof_p, k)`` — pressure coefficients.

``apply_transpose`` implements the **exact Euclidean transpose** of
``apply`` (same kernels, reversed composition), which is what makes the
discrete adjoint wave propagations of Phase 1 exact to machine precision.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.fem.geometry import ElementGeometry
from repro.fem.kernels import grad_geometric_factors, make_gradient_kernel
from repro.fem.mesh import StructuredMesh
from repro.fem.operators import DiagonalBoundaryOperator, LumpedMass, l2_mass_diag
from repro.fem.quadrature import gauss_legendre, tensor_rule
from repro.fem.spaces import H1Space, L2Space
from repro.fem.timestep import cfl_timestep
from repro.ocean.material import SeawaterMaterial
from repro.util.memory import MemoryTracker

__all__ = ["AcousticGravityOperator"]


class AcousticGravityOperator:
    """Assembled acoustic--gravity operator on a terrain-following mesh.

    Parameters
    ----------
    mesh:
        A :class:`~repro.fem.mesh.StructuredMesh` whose last axis is
        vertical with the surface at ``z = 0``.
    order:
        Pressure polynomial order ``p`` (velocity uses ``p - 1``).
    material:
        Seawater properties.
    absorbing:
        Names of the lateral sides that carry the impedance boundary
        condition; defaults to all lateral sides.  Pass ``()`` for
        reflecting lateral walls (useful in energy-conservation tests).
    kernel_variant:
        One of :data:`repro.fem.kernels.KERNEL_VARIANTS`; ``"fused"``
        (default) matches the paper's fastest configuration.
    memory_optimized:
        If ``False``, retain the un-fused geometry arrays (Jacobians,
        inverses, determinants, coordinates at both node families) the way
        the un-optimized solver of Section VII-B did; the
        :class:`~repro.util.memory.MemoryTracker` then exposes the
        footprint difference measured by ``benchmarks/bench_memory_opt.py``.
    tracker:
        Optional memory tracker to register allocations with.
    """

    def __init__(
        self,
        mesh: StructuredMesh,
        order: int,
        material: SeawaterMaterial,
        absorbing: Optional[Sequence[str]] = None,
        kernel_variant: str = "fused",
        memory_optimized: bool = True,
        tracker: Optional[MemoryTracker] = None,
        include_surface: bool = True,
        include_bottom_forcing: bool = True,
    ) -> None:
        if order < 2:
            raise ValueError("acoustic-gravity operator needs order >= 2")
        self.mesh = mesh
        self.order = int(order)
        self.material = material
        self.memory_optimized = bool(memory_optimized)
        self.tracker = tracker if tracker is not None else MemoryTracker()

        self.h1 = H1Space(mesh, order)
        self.l2 = L2Space(mesh, order - 1)
        self.dim = mesh.dim

        rule = gauss_legendre(self.l2.order + 1)
        _, wq = tensor_rule([rule] * self.dim)
        geom = ElementGeometry.compute(
            mesh.element_vertices(), [rule.points] * self.dim
        )

        # Velocity (L2) mass with density coefficient: diagonal by collocation.
        self.Mu = l2_mass_diag(self.l2, geom.detj, np.full_like(geom.detj, material.rho))

        # Pressure (H1) lumped mass with 1/K, plus the surface gravity term.
        # In a domain decomposition, interior-interface "surface"/"bottom"
        # sides of a subdomain carry no boundary physics; the decomposed
        # operator disables them and interface-sums the partial diagonals.
        self._mass_pp = LumpedMass(self.h1, coef=1.0 / material.bulk_modulus)
        Mp = self._mass_pp.diag.copy()
        if include_surface:
            self.surface_op: Optional[DiagonalBoundaryOperator] = (
                DiagonalBoundaryOperator(
                    self.h1, "surface", coef=1.0 / (material.rho * material.g)
                )
            )
            Mp[self.surface_op.dofs] += self.surface_op.values
        else:
            self.surface_op = None
        self.Mp = Mp

        # Absorbing lateral boundaries: S_a = <Z^{-1} p, v>.
        if absorbing is None:
            absorbing = tuple(mesh.lateral_sides())
        self.absorbing_sides = tuple(absorbing)
        self.Sa: List[DiagonalBoundaryOperator] = [
            DiagonalBoundaryOperator(self.h1, side, coef=1.0 / material.impedance)
            for side in self.absorbing_sides
        ]

        # Seafloor forcing R = <m, v>_bottom and the parameter trace grid.
        if include_bottom_forcing:
            self.R: Optional[DiagonalBoundaryOperator] = DiagonalBoundaryOperator(
                self.h1, "bottom", coef=1.0
            )
            self.bottom_trace = self.R.trace
        else:
            self.R = None
            self.bottom_trace = self.h1.trace("bottom")

        # Weak gradient kernel.
        if kernel_variant == "mf":
            self.kernel = make_gradient_kernel(
                "mf",
                self.h1.basis_1d.eval(rule.points),
                self.h1.basis_1d.deriv(rule.points),
                weights=wq,
                element_vertices=mesh.element_vertices(),
                velocity_nodes_1d=rule.points,
            )
        else:
            self.kernel = make_gradient_kernel(
                kernel_variant,
                self.h1.basis_1d.eval(rule.points),
                self.h1.basis_1d.deriv(rule.points),
                geom=geom,
                weights=wq,
            )
        self.kernel_variant = kernel_variant

        # State layout.
        self.nu = self.l2.ndof * self.dim
        self.np_ = self.h1.ndof
        self.nstate = self.nu + self.np_
        self._ushape = (mesh.n_elements, self.l2.nloc, self.dim)

        # --- memory accounting ------------------------------------------------
        t = self.tracker
        t.add_persistent("mass_diagonals", self.Mu, self.Mp)
        t.add_persistent("gather_indices", self.h1.gather)
        t.add_persistent(
            "scatter_csr_bytes",
            self.h1.scatter_matrix.data,
            self.h1.scatter_matrix.indices.astype(np.int64),
            self.h1.scatter_matrix.indptr.astype(np.int64),
        )
        if self.kernel.A is not None:
            t.add_persistent("fused_geometric_factors", self.kernel.A)
        for op in self.Sa + [self.R, self.surface_op]:
            if op is not None:
                t.add_persistent("boundary_diagonals", op.values, op.dofs)
        if not self.memory_optimized:
            # The un-optimized solver of Section VII-B kept the full geometry
            # (J, J^{-1}, detJ, coordinates) at both node families alive, and
            # stored the un-fused factor chain separately.
            geom_gll = ElementGeometry.compute(
                mesh.element_vertices(), [self.h1.nodes_1d] * self.dim
            )
            self._unoptimized_geometry = (
                geom.coords, geom.jac, geom.detj, geom.invj,
                geom_gll.coords, geom_gll.jac, geom_gll.detj, geom_gll.invj,
                grad_geometric_factors(geom, wq).copy(),
            )
            t.add_persistent("unfused_geometry", *self._unoptimized_geometry)

    # ------------------------------------------------------------------
    # State helpers
    # ------------------------------------------------------------------
    def zero_state(self, k: int = 1) -> np.ndarray:
        """A zero state batch of ``k`` columns, shape ``(nstate, k)``."""
        return np.zeros((self.nstate, int(k)))

    def views(self, X: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """``(U, P)`` views of a packed state: U ``(ne, nq, d, k)``, P ``(np, k)``."""
        k = X.shape[1]
        U = X[: self.nu].reshape(self._ushape + (k,))
        P = X[self.nu :]
        return U, P

    # ------------------------------------------------------------------
    # Operator actions
    # ------------------------------------------------------------------
    def apply(self, X: np.ndarray) -> np.ndarray:
        """``Y = L X`` for a batch of states."""
        U, P = self.views(X)
        k = X.shape[1]
        pe = P[self.h1.gather]  # E-vector gather (ne, nloc, k)
        mom, ye = self.kernel.apply_pair(pe, U)
        Y = np.empty_like(X)
        Yu, Yp = self.views(Y)
        np.divide(mom, self.Mu[:, :, None, None], out=Yu)
        np.negative(Yu, out=Yu)
        Yp[...] = self.h1.from_evector_add(ye)
        for sa in self.Sa:
            sa.add_to(Yp, P, scale=-1.0)
        Yp /= self.Mp[:, None]
        if not self.memory_optimized:
            # Un-optimized mode allocates fresh transient copies per apply
            # (tracked, then released) the way the pre-optimization solver did.
            self.tracker.add_transient_bytes("apply_workspace", 3 * X.nbytes)
            self.tracker.release_transient("apply_workspace")
        return Y

    def apply_transpose(self, Y: np.ndarray) -> np.ndarray:
        """``Z = L^T Y``: the exact Euclidean transpose of :meth:`apply`.

        With ``Y = [a; b]``:

        * ``Z_u = G (M_p^{-1} b)``
        * ``Z_p = -G^T (M_u^{-1} a) - S_a M_p^{-1} b``
        """
        A, B = self.views(Y)
        bm = B / self.Mp[:, None]
        pe = bm[self.h1.gather]
        am = A / self.Mu[:, :, None, None]
        mom, ye = self.kernel.apply_pair(pe, am)
        Z = np.empty_like(Y)
        Zu, Zp = self.views(Z)
        Zu[...] = mom
        Zp[...] = -self.h1.from_evector_add(ye)
        for sa in self.Sa:
            sa.add_to(Zp, bm, scale=-1.0)
        return Z

    def forcing(self, m: np.ndarray) -> np.ndarray:
        """``B m = [0; M_p^{-1} R m]`` for trace-field(s) ``m`` ``(Nm[, k])``."""
        if self.R is None:
            raise RuntimeError("this operator was built without bottom forcing")
        m2 = m[:, None] if m.ndim == 1 else m
        F = self.zero_state(m2.shape[1])
        _, Fp = self.views(F)
        idx = self.R.dofs
        Fp[idx] = self.R.values[:, None] * m2 / self.Mp[idx, None]
        return F

    def forcing_transpose(self, Y: np.ndarray) -> np.ndarray:
        """``B^T Y = R^T M_p^{-1} Y_p``: trace extraction, ``(Nm, k)``."""
        if self.R is None:
            raise RuntimeError("this operator was built without bottom forcing")
        _, Yp = self.views(Y)
        idx = self.R.dofs
        return self.R.values[:, None] * (Yp[idx] / self.Mp[idx, None])

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    def energy(self, X: np.ndarray) -> np.ndarray:
        """Discrete energy ``E = (u^T M_u u + p^T M_p p) / 2`` per column.

        For ``m = 0`` this quantity is exactly non-increasing, and exactly
        conserved when no absorbing boundaries are active (the coupling
        block is skew-adjoint in the mass inner product) — a tested
        invariant of the discretization.
        """
        U, P = self.views(X)
        eu = np.einsum("eqdk,eq->k", U**2, self.Mu, optimize=True)
        ep = np.einsum("nk,n->k", P**2, self.Mp)
        return 0.5 * (eu + ep)

    def surface_eta(self, X: np.ndarray) -> np.ndarray:
        """Surface wave height trace ``eta = p / (rho g)``, ``(n_surf, k)``."""
        if self.surface_op is None:
            raise RuntimeError("this operator was built without a free surface")
        _, P = self.views(X)
        return P[self.surface_op.dofs] / (self.material.rho * self.material.g)

    def cfl_timestep(self, cfl: float = 0.5) -> float:
        """Stable explicit timestep for this mesh/order/material."""
        return cfl_timestep(
            self.mesh.min_edge_length(), self.order, self.material.c, cfl
        )

    @property
    def n_parameters(self) -> int:
        """Spatial parameter dimension ``N_m`` (bottom trace nodes)."""
        return self.bottom_trace.n

    def dof_report(self) -> Dict[str, int]:
        """DOF bookkeeping (pressure, velocity, state, parameters)."""
        return {
            "pressure_dofs": self.np_,
            "velocity_dofs": self.nu,
            "state_dofs": self.nstate,
            "parameter_points": self.n_parameters,
            "elements": self.mesh.n_elements,
        }
