"""Observation operators: seafloor pressure sensors and surface QoI points.

``SensorArray`` builds the data operator ``C`` (paper Section III-C):
exact FE point evaluation of the pressure field at ``N_d`` seafloor sensor
locations — the model prediction of ocean-bottom pressure gauge records.

``SurfaceQoI`` builds the quantity-of-interest operator ``C_q``: surface
wave height ``eta = p / (rho g)`` at ``N_q`` forecast locations (harbors,
coastal cities), the quantity the early-warning system must deliver.

Both wrap sparse CSR rows over the pressure dofs; their transposes seed the
adjoint propagations of Phase 1 (one adjoint solve per row).
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse as sp

from repro.ocean.acoustic_gravity import AcousticGravityOperator

__all__ = ["PointObservationOperator", "SensorArray", "SurfaceQoI"]


class PointObservationOperator:
    """Sparse point-evaluation rows over the pressure dofs of an operator.

    Attributes
    ----------
    positions:
        Horizontal coordinates, ``(n, dim-1)``.
    matrix:
        CSR of shape ``(n, ndof_p)``; ``matrix @ P`` evaluates the scaled
        pressure field at the points.
    """

    def __init__(
        self,
        op: AcousticGravityOperator,
        positions: np.ndarray,
        side: str,
        scale: float = 1.0,
    ) -> None:
        nh = op.dim - 1
        pos = np.asarray(positions, dtype=np.float64)
        pos = pos.reshape(-1, nh) if nh else pos.reshape(-1, 0)
        self.op = op
        self.side = side
        self.positions = pos
        C = op.h1.boundary_point_eval(pos, side)
        if scale != 1.0:
            C = C.multiply(scale).tocsr()
        self.matrix: sp.csr_matrix = C

    @property
    def n(self) -> int:
        """Number of observation points."""
        return int(self.matrix.shape[0])

    def observe_state(self, X: np.ndarray) -> np.ndarray:
        """Evaluate on a packed state batch ``(nstate, k)`` -> ``(n, k)``."""
        _, P = self.op.views(X)
        return np.asarray(self.matrix @ P)

    def observe_pressure(self, P: np.ndarray) -> np.ndarray:
        """Evaluate directly on pressure coefficients ``(ndof_p[, k])``."""
        return np.asarray(self.matrix @ P)

    def adjoint_seed(self) -> np.ndarray:
        """Dense ``C^T`` of shape ``(ndof_p, n)``: one adjoint RHS per row.

        These are the point loads from which Phase 1 launches one adjoint
        wave propagation per sensor / QoI location.
        """
        return np.ascontiguousarray(self.matrix.T.toarray())


class SensorArray(PointObservationOperator):
    """Seafloor pressure sensors (the ``N_d`` observation channels).

    Includes helpers to lay out regular or seeded-random arrays, standing in
    for the NEPTUNE cabled observatory and hypothesized SZ4D deployments.
    """

    def __init__(self, op: AcousticGravityOperator, positions: np.ndarray) -> None:
        super().__init__(op, positions, side="bottom", scale=1.0)

    @classmethod
    def regular(
        cls,
        op: AcousticGravityOperator,
        n_per_axis: tuple | int,
        margin: float = 0.08,
    ) -> "SensorArray":
        """A regular grid of sensors covering the horizontal extent.

        ``margin`` keeps sensors away from the lateral (absorbing)
        boundaries by that fraction of the domain size.
        """
        lo, hi = op.mesh.bounding_box()
        nh = op.dim - 1
        if nh == 0:
            return cls(op, np.zeros((1, 0)))
        if isinstance(n_per_axis, int):
            n_per_axis = (n_per_axis,) * nh
        axes = []
        for d in range(nh):
            span = hi[d] - lo[d]
            axes.append(
                np.linspace(lo[d] + margin * span, hi[d] - margin * span, n_per_axis[d])
            )
        grids = np.meshgrid(*axes, indexing="ij")
        pos = np.stack([g.reshape(-1) for g in grids], axis=-1)
        return cls(op, pos)

    @classmethod
    def random(
        cls,
        op: AcousticGravityOperator,
        n: int,
        seed: int = 0,
        margin: float = 0.08,
    ) -> "SensorArray":
        """``n`` uniformly random sensor positions (seeded)."""
        lo, hi = op.mesh.bounding_box()
        nh = op.dim - 1
        rng = np.random.default_rng(seed)
        pos = np.empty((n, nh))
        for d in range(nh):
            span = hi[d] - lo[d]
            pos[:, d] = rng.uniform(
                lo[d] + margin * span, hi[d] - margin * span, size=n
            )
        return cls(op, pos)


class SurfaceQoI(PointObservationOperator):
    """Sea-surface wave-height forecast points (the ``N_q`` QoI channels).

    The rows evaluate ``eta = p / (rho g)`` at the surface, so applying
    this operator to the pressure state directly yields wave heights.
    """

    def __init__(self, op: AcousticGravityOperator, positions: np.ndarray) -> None:
        scale = 1.0 / (op.material.rho * op.material.g)
        super().__init__(op, positions, side="surface", scale=scale)

    @classmethod
    def coastal(
        cls,
        op: AcousticGravityOperator,
        n: int,
        coast_fraction: float = 0.85,
        seed: Optional[int] = None,
    ) -> "SurfaceQoI":
        """``n`` forecast points strung along the shoreward part of the domain.

        Placed at ``x = coast_fraction * L_x`` (near the coast, where early
        warning matters), spread along-margin in 3D.
        """
        lo, hi = op.mesh.bounding_box()
        nh = op.dim - 1
        if nh == 0:
            return cls(op, np.zeros((1, 0)))
        xq = lo[0] + coast_fraction * (hi[0] - lo[0])
        if nh == 1:
            if n == 1:
                pos = np.array([[xq]])
            else:
                # Spread slightly in x when there is no along-margin axis.
                xs = np.linspace(0.55, coast_fraction, n) * (hi[0] - lo[0]) + lo[0]
                pos = xs[:, None]
        else:
            ys = np.linspace(
                lo[1] + 0.08 * (hi[1] - lo[1]), hi[1] - 0.08 * (hi[1] - lo[1]), n
            )
            pos = np.stack([np.full(n, xq), ys], axis=-1)
        if seed is not None:
            rng = np.random.default_rng(seed)
            jitter = 0.02 * (hi[:nh] - lo[:nh])
            pos = pos + rng.uniform(-1, 1, pos.shape) * jitter[None, :]
        return cls(op, pos)
