"""The acoustic--gravity ocean model (the paper's forward physics, Eq. 1).

Couples ocean acoustic waves to surface gravity waves through the modified
free-surface condition ``p = rho g eta``, ``d_t eta = u . n``, forced by
seafloor motion ``u . n = -d_t b`` — the mechanism by which an earthquake
pressurizes the water column and launches a tsunami.

Submodules
----------
``material``
    Seawater properties (density, sound speed, bulk modulus, impedance,
    gravity), including non-dimensional presets for fast tests.
``bathymetry``
    Parametric Cascadia-like topobathymetry (shelf / slope / trench /
    abyssal plain with optional seeded roughness) substituting for GEBCO
    gridded data.
``acoustic_gravity``
    The semi-discrete operator ``L`` of the first-order system, with its
    exact Euclidean transpose ``L^T``, the parameter injection ``B`` (and
    ``B^T``), and the discrete energy.
``propagator``
    The slot (observation-interval) propagator: forward solves, batched
    adjoint solves, and extraction of the block-Toeplitz p2o/p2q kernels —
    Phase 1 of the paper's framework.
``observations``
    Seafloor pressure sensor arrays (the data operator ``C``) and sea
    surface QoI forecast points (the operator ``C_q`` with
    ``eta = p / (rho g)``).
"""

from repro.ocean.acoustic_gravity import AcousticGravityOperator
from repro.ocean.bathymetry import (
    CascadiaBathymetry,
    FlatBathymetry,
    GaussianRidgeBathymetry,
)
from repro.ocean.material import SeawaterMaterial
from repro.ocean.observations import SensorArray, SurfaceQoI
from repro.ocean.propagator import SlotPropagator

__all__ = [
    "SeawaterMaterial",
    "CascadiaBathymetry",
    "FlatBathymetry",
    "GaussianRidgeBathymetry",
    "AcousticGravityOperator",
    "SlotPropagator",
    "SensorArray",
    "SurfaceQoI",
]
