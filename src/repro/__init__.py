"""repro: real-time Bayesian inference digital twin for tsunami early warning.

A laptop-scale, fully-verified Python reproduction of Henneking et al.,
"Real-time Bayesian inference at extreme scale: A digital twin for tsunami
early warning applied to the Cascadia subduction zone" (SC 2025,
arXiv:2504.16344).

Subpackages
-----------
``repro.fem``
    High-order tensor-product finite elements (the MFEM substitute).
``repro.ocean``
    The acoustic--gravity wave model, slot propagator, and observations.
``repro.inference``
    FFT block-Toeplitz operators, priors, and the Phase 2-4 Bayesian
    machinery.
``repro.rupture``
    Kinematic earthquake scenarios (the dynamic-rupture substitute).
``repro.baselines``
    State-of-the-art baselines (CG, low-rank posteriors) and cost models.
``repro.hpc``
    Virtual-parallel substrate and the calibrated scaling study.
``repro.twin``
    The end-to-end ``CascadiaTwin`` and early-warning layer.
``repro.serve``
    Multi-scenario serving: scenario banks, geometry-keyed operator
    caching, and the batched multi-stream Phase-4 server.

Quick start::

    from repro.twin import CascadiaTwin, TwinConfig
    result = CascadiaTwin(TwinConfig.demo_2d()).run_end_to_end()
    print(result.forecast.credible_interval(0.95))
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
