"""A genuinely executing domain-decomposed acoustic--gravity operator.

Each virtual rank owns a contiguous block of the structured element grid,
builds its own local spaces, kernels, and partially-assembled diagonals,
and the global operator action is recovered by **interface sums**: after
the local scatter (assembly) step, the partial results on each shared node
plane are exchanged with the neighbor and summed — exactly the
communication a distributed-memory MFEM run performs.  Assembly-type
quantities (the scattered pressure residual, the lumped mass and boundary
diagonals) are summed across interfaces; pointwise operations afterwards
act on consistent replicated values.

Corner and edge nodes shared by four or eight ranks are handled by the
classic dimension-by-dimension exchange: summing plane-by-plane along one
axis at a time (using updated values) accumulates the full multi-rank sum.

The module exists for two verifications the performance model rests on:

* **correctness** — ``apply`` matches the serial operator to rounding;
* **traffic** — the measured :class:`~repro.hpc.comm.VirtualComm` bytes
  equal the analytic halo predictions of
  :class:`~repro.hpc.partition.BlockPartition`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.fem.mesh import StructuredMesh
from repro.hpc.comm import VirtualComm
from repro.hpc.partition import BlockPartition, ProcessGrid
from repro.ocean.acoustic_gravity import AcousticGravityOperator
from repro.ocean.material import SeawaterMaterial

__all__ = ["DecomposedWaveOperator"]


class DecomposedWaveOperator:
    """Domain-decomposed counterpart of :class:`AcousticGravityOperator`.

    Parameters
    ----------
    mesh, order, material, absorbing:
        Exactly as for the serial operator (the serial operator with these
        arguments is the correctness reference).
    grid:
        Process grid with one dimension per mesh axis.
    comm:
        Optional virtual communicator (created if omitted).
    """

    def __init__(
        self,
        mesh: StructuredMesh,
        order: int,
        material: SeawaterMaterial,
        grid: ProcessGrid,
        absorbing: Optional[Sequence[str]] = None,
        comm: Optional[VirtualComm] = None,
        kernel_variant: str = "optimized",
    ) -> None:
        if grid.ndim != mesh.dim:
            raise ValueError("process grid dimensionality must match the mesh")
        self.mesh = mesh
        self.order = int(order)
        self.material = material
        self.grid = grid
        self.partition = BlockPartition(mesh.shape, grid)
        self.comm = comm if comm is not None else VirtualComm(grid.size)
        if absorbing is None:
            absorbing = tuple(mesh.lateral_sides())
        self.absorbing_sides = tuple(absorbing)
        dim = mesh.dim
        p = self.order
        self.global_grid_shape = tuple(n * p + 1 for n in mesh.shape)

        self.local_ops: List[AcousticGravityOperator] = []
        self.local_elements: List[np.ndarray] = []
        self.node_slices: List[Tuple[slice, ...]] = []
        self.local_grid_shapes: List[Tuple[int, ...]] = []
        self._sa_fields: List[np.ndarray] = []
        self._mp_fields: List[np.ndarray] = []
        self._r_fields: List[np.ndarray] = []

        side_axis_end = {"bottom": (dim - 1, 0), "surface": (dim - 1, 1)}
        if dim >= 2:
            side_axis_end.update({"west": (0, 0), "east": (0, 1)})
        if dim >= 3:
            side_axis_end.update({"south": (1, 0), "north": (1, 1)})

        for rank in grid.ranks():
            ranges = self.partition.element_ranges(rank)
            coords = grid.coords(rank)
            vsl = tuple(slice(e0, e1 + 1) for e0, e1 in ranges)
            lmesh = StructuredMesh(
                mesh.vertices[vsl + (slice(None),)],
                axes=[
                    None if a is None else a[ranges[d][0] : ranges[d][1] + 1]
                    for d, a in enumerate(mesh.axes)
                ],
            )

            def is_global(side: str) -> bool:
                axis, end = side_axis_end[side]
                return coords[axis] == (0 if end == 0 else grid.dims[axis] - 1)

            local_absorbing = [s for s in self.absorbing_sides if is_global(s)]
            lop = AcousticGravityOperator(
                lmesh,
                order,
                material,
                absorbing=local_absorbing,
                kernel_variant=kernel_variant,
                include_surface=is_global("surface"),
                include_bottom_forcing=is_global("bottom"),
            )
            self.local_ops.append(lop)
            self.local_elements.append(self.partition.local_elements(rank))
            nsl = tuple(slice(e0 * p, e1 * p + 1) for e0, e1 in ranges)
            self.node_slices.append(nsl)
            lshape = lop.h1.grid_shape
            self.local_grid_shapes.append(lshape)

            # Partial diagonals as local node-grid fields.
            mp = lop.Mp.reshape(lshape).copy()
            sa = np.zeros(lshape)
            for op in lop.Sa:
                flat = np.zeros(lop.h1.ndof)
                flat[op.dofs] += op.values
                sa += flat.reshape(lshape)
            rf = np.zeros(lshape)
            if lop.R is not None:
                flat = np.zeros(lop.h1.ndof)
                flat[lop.R.dofs] += lop.R.values
                rf += flat.reshape(lshape)
            self._mp_fields.append(mp)
            self._sa_fields.append(sa)
            self._r_fields.append(rf)

        # Interface-sum the assembled diagonals once at setup.
        self._interface_sum(self._mp_fields, tag="setup/Mp")
        self._interface_sum(self._sa_fields, tag="setup/Sa")
        self._interface_sum(self._r_fields, tag="setup/R")

        # Global state layout mirrors the serial operator.
        self.serial_ushape = (
            mesh.n_elements,
            self.local_ops[0].l2.nloc,
            dim,
        )
        self.nu = int(np.prod(self.serial_ushape))
        self.np_ = int(np.prod(self.global_grid_shape))
        self.nstate = self.nu + self.np_

    # ------------------------------------------------------------------
    # Interface exchange
    # ------------------------------------------------------------------
    def _interface_sum(self, fields: List[np.ndarray], tag: str) -> None:
        """Sum shared node planes across rank interfaces, axis by axis.

        ``fields[r]`` must be shaped ``local_grid_shapes[r] (+ trailing)``.
        Axis-sequential exchange with updated values accumulates the exact
        multi-rank sums at edges and corners.
        """
        dim = self.mesh.dim
        for axis in range(dim):
            for rank in self.grid.ranks():
                hi = self.grid.neighbor(rank, axis, +1)
                if hi is None:
                    continue
                sl_hi = [slice(None)] * fields[rank].ndim
                sl_lo = [slice(None)] * fields[hi].ndim
                sl_hi[axis] = -1
                sl_lo[axis] = 0
                a = fields[rank][tuple(sl_hi)]
                b = fields[hi][tuple(sl_lo)]
                # Both directions of the sum-exchange are real messages.
                recv_hi = self.comm.sendrecv(rank, hi, a, tag=tag)
                recv_lo = self.comm.sendrecv(hi, rank, b, tag=tag)
                s = a + recv_lo
                fields[rank][tuple(sl_hi)] = s
                fields[hi][tuple(sl_lo)] = recv_hi + b

    # ------------------------------------------------------------------
    # State distribution / collection
    # ------------------------------------------------------------------
    def distribute(self, X: np.ndarray) -> List[np.ndarray]:
        """Split a serial-layout state ``(nstate, k)`` into local states."""
        k = X.shape[1]
        U = X[: self.nu].reshape(self.serial_ushape + (k,))
        P = X[self.nu :].reshape(self.global_grid_shape + (k,))
        out = []
        for rank in self.grid.ranks():
            lop = self.local_ops[rank]
            Xl = lop.zero_state(k)
            Ul, Pl = lop.views(Xl)
            Ul[...] = U[self.local_elements[rank]]
            Pl[...] = P[self.node_slices[rank]].reshape(lop.np_, k)
            out.append(Xl)
        return out

    def collect(self, locals_: List[np.ndarray]) -> np.ndarray:
        """Reassemble local states into the serial layout.

        Duplicated interface nodes are written by every owner; callers that
        care can first assert consistency via :meth:`interface_consistency`.
        """
        k = locals_[0].shape[1]
        U = np.empty(self.serial_ushape + (k,))
        P = np.empty(self.global_grid_shape + (k,))
        for rank in self.grid.ranks():
            lop = self.local_ops[rank]
            Ul, Pl = lop.views(locals_[rank])
            U[self.local_elements[rank]] = Ul
            P[self.node_slices[rank]] = Pl.reshape(
                self.local_grid_shapes[rank] + (k,)
            )
        X = np.empty((self.nstate, k))
        X[: self.nu] = U.reshape(self.nu, k)
        X[self.nu :] = P.reshape(self.np_, k)
        return X

    def interface_consistency(self, locals_: List[np.ndarray]) -> float:
        """Max discrepancy of duplicated interface values (should be ~0)."""
        k = locals_[0].shape[1]
        acc = np.full(self.global_grid_shape + (k,), np.nan)
        worst = 0.0
        for rank in self.grid.ranks():
            lop = self.local_ops[rank]
            _, Pl = lop.views(locals_[rank])
            block = Pl.reshape(self.local_grid_shapes[rank] + (k,))
            view = acc[self.node_slices[rank]]
            mask = ~np.isnan(view)
            if np.any(mask):
                worst = max(worst, float(np.max(np.abs(view[mask] - block[mask]))))
            acc[self.node_slices[rank]] = block
        return worst

    # ------------------------------------------------------------------
    # Operator action
    # ------------------------------------------------------------------
    def apply(self, X: np.ndarray) -> np.ndarray:
        """``Y = L X`` executed across the virtual ranks (with comm logging)."""
        k = X.shape[1]
        locals_ = self.distribute(X)
        partials: List[np.ndarray] = []
        results: List[np.ndarray] = []
        for rank in self.grid.ranks():
            lop = self.local_ops[rank]
            Ul, Pl = lop.views(locals_[rank])
            pe = Pl[lop.h1.gather]
            mom, ye = lop.kernel.apply_pair(pe, Ul)
            Yl = lop.zero_state(k)
            Yu, _ = lop.views(Yl)
            np.divide(mom, lop.Mu[:, :, None, None], out=Yu)
            np.negative(Yu, out=Yu)
            partials.append(
                lop.h1.from_evector_add(ye).reshape(
                    self.local_grid_shapes[rank] + (k,)
                )
            )
            results.append(Yl)
        self._interface_sum(partials, tag="apply/interface")
        for rank in self.grid.ranks():
            lop = self.local_ops[rank]
            _, Pl = lop.views(locals_[rank])
            _, Yp = lop.views(results[rank])
            raw = partials[rank].reshape(lop.np_, k)
            pb = Pl.reshape(lop.np_, k)
            sa = self._sa_fields[rank].reshape(lop.np_)
            mp = self._mp_fields[rank].reshape(lop.np_)
            Yp[...] = (raw - sa[:, None] * pb) / mp[:, None]
        return self.collect(results)

    def forcing(self, m: np.ndarray) -> np.ndarray:
        """``B m`` in serial layout, assembled from the bottom-owning ranks."""
        m2 = m[:, None] if m.ndim == 1 else m
        k = m2.shape[1]
        dim = self.mesh.dim
        bottom_shape = self.global_grid_shape[: dim - 1]
        M = m2.reshape(bottom_shape + (k,))
        locals_ = []
        for rank in self.grid.ranks():
            lop = self.local_ops[rank]
            Fl = lop.zero_state(k)
            _, Fp = lop.views(Fl)
            rf = self._r_fields[rank]
            if np.any(rf != 0.0):
                nsl = self.node_slices[rank][: dim - 1]
                mloc = M[nsl]  # (local bottom grid..., k)
                field = np.zeros(self.local_grid_shapes[rank] + (k,))
                bsl = [slice(None)] * dim
                bsl[dim - 1] = 0
                field[tuple(bsl)] = mloc
                mp = self._mp_fields[rank]
                Fp[...] = (rf[..., None] * field / mp[..., None]).reshape(
                    lop.np_, k
                )
            locals_.append(Fl)
        return self.collect(locals_)

    # ------------------------------------------------------------------
    def measured_interface_bytes(self, tag: str = "apply/interface") -> int:
        """Total bytes moved by interface sums with the given tag."""
        return self.comm.bytes_by_tag().get(tag, 0)

    def analytic_interface_bytes(self, k: int = 1) -> int:
        """Predicted bytes one ``apply`` moves over all interior planes.

        Each interior plane is exchanged once in each direction, so it
        contributes ``2 * plane_nodes * 8 * k`` bytes — matching what
        :meth:`_interface_sum` logs message by message.
        """
        total = 0
        for rank in self.grid.ranks():
            for axis in range(self.grid.ndim):
                if self.grid.neighbor(rank, axis, +1) is not None:
                    total += (
                        2
                        * self.partition.interface_plane_nodes(
                            rank, axis, self.order
                        )
                        * 8
                        * k
                    )
        return total
