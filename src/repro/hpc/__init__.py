"""Virtual-parallel substrate and performance models for the scaling study.

The paper's headline scaling results (Fig. 5/6, Table II) ran on El
Capitan, Alps, Perlmutter, and Frontera.  Those machines are simulated here
by a layered substrate:

``machine``
    Hardware specifications of the four systems (GPU peak, memory,
    bandwidth, interconnect) and the exact Table II scaling configurations.
``comm``
    A virtual communicator: many logical ranks in one process, with exact
    per-message byte and count accounting — the measured inputs that the
    network model consumes.
``partition``
    Process grids, balanced block partitioning of structured element
    grids, analytic halo/interface sizes, and the 2D processor-grid
    autotuner for the distributed FFT matvec (ref. [26]).
``decomposed``
    A genuinely executing domain-decomposed wave operator on virtual
    ranks: local kernels plus dimension-by-dimension interface-sum
    exchanges, verified element-for-element against the serial operator,
    with measured message bytes matching the analytic predictions.
``fft_parallel``
    The 2D-partitioned distributed FFT matvec with communication
    accounting (allgather + reduce pattern of the paper's FFTMatvec).
``perfmodel``
    Roofline kernel timing + alpha-beta-contention network model; the
    constants are calibrated to the paper's reported throughputs and the
    model then predicts the full weak/strong curves.
``scaling``
    The Fig. 5 / Fig. 6 study driver: Table II configurations through the
    performance model, plus timer-share projections.
"""

from repro.hpc.comm import VirtualComm
from repro.hpc.decomposed import DecomposedWaveOperator
from repro.hpc.fft_parallel import DistributedFFTMatvec, autotune_grid
from repro.hpc.machine import (
    ALL_MACHINES,
    ALPS,
    EL_CAPITAN,
    FRONTERA,
    PERLMUTTER,
    MachineSpec,
    ScalingConfig,
)
from repro.hpc.partition import BlockPartition, ProcessGrid
from repro.hpc.perfmodel import KernelSpec, NetworkModel, PerformanceModel
from repro.hpc.scaling import ScalingStudy

__all__ = [
    "MachineSpec",
    "ALL_MACHINES",
    "ScalingConfig",
    "EL_CAPITAN",
    "ALPS",
    "PERLMUTTER",
    "FRONTERA",
    "VirtualComm",
    "ProcessGrid",
    "BlockPartition",
    "DecomposedWaveOperator",
    "DistributedFFTMatvec",
    "autotune_grid",
    "KernelSpec",
    "NetworkModel",
    "PerformanceModel",
    "ScalingStudy",
]
