"""The Fig. 5 / Fig. 6 scaling-study driver.

``ScalingStudy`` pushes the Table II configurations through the calibrated
performance model and renders the same quantities the paper reports:
runtime per timestep, weak parallel efficiency (fixed work per device,
1.00 at the base job), and strong-scaling speedup/efficiency (fixed total
work).  ``figure6_breakdown`` models the application-timer shares
(Initialization / Setup / Adjoint p2o / I/O, Table I) with the adjoint
solve projected to 20,000 timesteps exactly as in the paper's Fig. 6.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.hpc.machine import (
    DOF_PER_ELEMENT,
    MachineSpec,
    ScalingConfig,
    table2_strong_series,
    table2_weak_series,
)
from repro.hpc.perfmodel import KernelSpec, PerformanceModel

__all__ = ["ScalingRow", "ScalingStudy"]


@dataclass
class ScalingRow:
    """One point of a weak- or strong-scaling curve."""

    gpus: int
    dof: int
    dof_per_gpu: int
    time_per_step: float
    efficiency: float
    speedup: float

    def text(self) -> str:
        """Fig. 5-style text row."""
        return (
            f"{self.gpus:>8d} GPUs   {self.dof:>16,d} DOF "
            f"({self.dof_per_gpu / 1e9:6.2f} B/GPU)   "
            f"{self.time_per_step * 1e3:9.3f} ms/step   "
            f"eff {self.efficiency:5.2f}   speedup {self.speedup:8.1f}"
        )


class ScalingStudy:
    """Weak/strong scaling curves of one machine through the perf model."""

    def __init__(
        self, machine: MachineSpec, kernel: Optional[KernelSpec] = None
    ) -> None:
        self.machine = machine
        self.model = PerformanceModel(machine, kernel=kernel)

    # ------------------------------------------------------------------
    def weak(self) -> List[ScalingRow]:
        """Weak-scaling series: efficiency = t(base) / t(P)."""
        series = table2_weak_series(self.machine)
        t0 = self.model.time_per_step(series[0])
        rows = []
        for cfg in series:
            t = self.model.time_per_step(cfg)
            rows.append(
                ScalingRow(
                    gpus=cfg.gpus,
                    dof=cfg.dof,
                    dof_per_gpu=cfg.dof_per_gpu,
                    time_per_step=t,
                    efficiency=t0 / t,
                    speedup=cfg.gpus / series[0].gpus * (t0 / t),
                )
            )
        return rows

    def strong(self) -> List[ScalingRow]:
        """Strong-scaling series: speedup = t(base)/t(P), eff = speedup/(P/P0)."""
        series = table2_strong_series(self.machine)
        t0 = self.model.time_per_step(series[0])
        rows = []
        for cfg in series:
            t = self.model.time_per_step(cfg)
            sp = t0 / t
            ratio = cfg.gpus / series[0].gpus
            rows.append(
                ScalingRow(
                    gpus=cfg.gpus,
                    dof=cfg.dof,
                    dof_per_gpu=cfg.dof_per_gpu,
                    time_per_step=t,
                    efficiency=sp / ratio,
                    speedup=sp,
                )
            )
        return rows

    # ------------------------------------------------------------------
    def figure6_breakdown(
        self, cfg: ScalingConfig, projected_steps: int = 20_000
    ) -> Dict[str, float]:
        """Modeled Table I timer shares for one configuration (Fig. 6).

        Components: job/device initialization (constant plus a slow
        rank-count growth), setup (mesh read/partition/partial assembly,
        proportional to local elements), the adjoint solve projected to
        ``projected_steps`` timesteps, and I/O of the p2o kernel columns
        at a shared filesystem bandwidth.
        """
        P = cfg.gpus
        t_init = 1.5 + 0.05 * math.log2(max(P, 2))
        t_setup = 3.0e-5 * cfg.elements_per_gpu + 0.15 * math.log2(max(P, 2))
        t_solve = projected_steps * self.model.time_per_step(cfg)
        # Each rank writes its share of the kernel column (state-sized
        # vector dumps, every ~100 steps) through a shared ~1 TB/s FS.
        io_bytes = cfg.dof * 8.0 * (projected_steps / 2000.0)
        t_io = io_bytes / 1.0e12
        total = t_init + t_setup + t_solve + t_io
        return {
            "Initialization": t_init,
            "Setup": t_setup,
            "Adjoint p2o": t_solve,
            "I/O": t_io,
            "total": total,
            "solver_share": t_solve / total,
        }

    # ------------------------------------------------------------------
    def report(self) -> str:
        """Text table with both scaling modes (the Fig. 5 analogue)."""
        lines = [f"=== {self.machine.name} ==="]
        lines.append("weak scaling (fixed work per GPU):")
        lines += ["  " + r.text() for r in self.weak()]
        lines.append("strong scaling (fixed total work):")
        lines += ["  " + r.text() for r in self.strong()]
        return "\n".join(lines)
