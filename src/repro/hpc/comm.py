"""A virtual communicator: MPI-like accounting without MPI.

All "ranks" live in one process; communication is a direct array hand-off,
but every message's byte count and endpoints are recorded.  That gives the
two things the reproduction needs from a communication layer:

1. **correctness** — the decomposed operator and the distributed FFT
   matvec move exactly the data a real MPI code would, in the same
   pattern, so their results can be verified against the serial code;
2. **measurement** — the per-rank traffic matrix feeds the network model
   of :mod:`repro.hpc.perfmodel` (and is itself validated against the
   analytic halo-surface predictions of :mod:`repro.hpc.partition`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

__all__ = ["MessageRecord", "VirtualComm"]


@dataclass(frozen=True)
class MessageRecord:
    """One logged message: endpoints, payload size, and a tag."""

    src: int
    dst: int
    nbytes: int
    tag: str


class VirtualComm:
    """Byte-accounting communicator over ``size`` virtual ranks."""

    def __init__(self, size: int) -> None:
        if size < 1:
            raise ValueError("communicator needs at least one rank")
        self.size = int(size)
        self.messages: List[MessageRecord] = []
        self._pair_bytes: Dict[Tuple[int, int], int] = {}

    # ------------------------------------------------------------------
    def _check_rank(self, r: int) -> None:
        if not 0 <= r < self.size:
            raise ValueError(f"rank {r} out of range [0, {self.size})")

    def sendrecv(
        self, src: int, dst: int, payload: np.ndarray, tag: str = ""
    ) -> np.ndarray:
        """Move ``payload`` from ``src`` to ``dst`` (logged); returns it.

        The returned array is a *copy*, matching MPI semantics where the
        receiver owns its buffer.
        """
        self._check_rank(src)
        self._check_rank(dst)
        payload = np.asarray(payload)
        n = int(payload.nbytes)
        self.messages.append(MessageRecord(src, dst, n, tag))
        key = (src, dst)
        self._pair_bytes[key] = self._pair_bytes.get(key, 0) + n
        return payload.copy()

    def allreduce_bytes(self, per_rank_nbytes: int, tag: str = "allreduce") -> None:
        """Account a recursive-doubling allreduce (no data is moved here)."""
        rounds = max(int(np.ceil(np.log2(self.size))), 0)
        for r in range(rounds):
            for rank in range(self.size):
                partner = rank ^ (1 << r)
                if partner < self.size and partner > rank:
                    self.messages.append(
                        MessageRecord(rank, partner, per_rank_nbytes, tag)
                    )
                    self.messages.append(
                        MessageRecord(partner, rank, per_rank_nbytes, tag)
                    )

    # ------------------------------------------------------------------
    # Accounting queries
    # ------------------------------------------------------------------
    @property
    def total_bytes(self) -> int:
        """Total bytes moved over all messages."""
        return sum(m.nbytes for m in self.messages)

    @property
    def total_messages(self) -> int:
        """Total message count."""
        return len(self.messages)

    def bytes_by_tag(self) -> Dict[str, int]:
        """Traffic grouped by message tag."""
        out: Dict[str, int] = {}
        for m in self.messages:
            out[m.tag] = out.get(m.tag, 0) + m.nbytes
        return out

    def bytes_sent_by_rank(self) -> np.ndarray:
        """Per-rank outgoing byte totals."""
        out = np.zeros(self.size, dtype=np.int64)
        for m in self.messages:
            out[m.src] += m.nbytes
        return out

    def max_rank_bytes(self) -> int:
        """The busiest rank's outgoing traffic (drives the critical path)."""
        b = self.bytes_sent_by_rank()
        return int(b.max()) if b.size else 0

    def reset(self) -> None:
        """Clear all logged traffic."""
        self.messages.clear()
        self._pair_bytes.clear()
