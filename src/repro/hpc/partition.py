"""Process grids, block partitioning, and analytic interface sizes.

The paper partitions its structured hexahedral meshes over 3D processor
grids (Table II: ``5 x 17 x 4`` up to ``80 x 136 x 4``).  This module
provides the same machinery for the virtual-parallel substrate: balanced
block ranges per rank, neighbor topology, and — crucially for the
performance model — *analytic* interface (halo) sizes: the number of shared
H1 pressure dofs on each inter-rank plane, which is exactly the data volume
the decomposed operator's interface sums must move (verified against the
measured :class:`~repro.hpc.comm.VirtualComm` traffic).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["ProcessGrid", "BlockPartition", "factor_grids"]


def _block_range(n: int, p: int, i: int) -> Tuple[int, int]:
    """Balanced contiguous split of ``n`` items over ``p`` parts, part ``i``."""
    base, rem = divmod(n, p)
    start = i * base + min(i, rem)
    stop = start + base + (1 if i < rem else 0)
    return start, stop


@dataclass(frozen=True)
class ProcessGrid:
    """A Cartesian grid of virtual ranks."""

    dims: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.dims or any(d < 1 for d in self.dims):
            raise ValueError(f"invalid process grid {self.dims}")

    @property
    def size(self) -> int:
        """Total rank count."""
        return int(np.prod(self.dims))

    @property
    def ndim(self) -> int:
        """Grid dimensionality."""
        return len(self.dims)

    def coords(self, rank: int) -> Tuple[int, ...]:
        """Grid coordinates of a flat rank (C-order)."""
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} out of range")
        return tuple(int(c) for c in np.unravel_index(rank, self.dims))

    def rank_of(self, coords: Sequence[int]) -> int:
        """Flat rank of grid coordinates."""
        return int(np.ravel_multi_index(tuple(coords), self.dims))

    def neighbor(self, rank: int, axis: int, direction: int) -> Optional[int]:
        """Neighbor rank along ``axis`` (+1/-1), or ``None`` at the edge."""
        c = list(self.coords(rank))
        c[axis] += direction
        if not 0 <= c[axis] < self.dims[axis]:
            return None
        return self.rank_of(c)

    def ranks(self) -> Iterator[int]:
        """Iterate all ranks."""
        return iter(range(self.size))


class BlockPartition:
    """Balanced block partition of a structured element grid.

    Parameters
    ----------
    element_shape:
        Global element counts per axis.
    grid:
        Process grid of matching dimensionality.
    """

    def __init__(self, element_shape: Sequence[int], grid: ProcessGrid) -> None:
        self.element_shape = tuple(int(n) for n in element_shape)
        if len(self.element_shape) != grid.ndim:
            raise ValueError("process grid dimensionality must match the mesh")
        for n, p in zip(self.element_shape, grid.dims):
            if p > n:
                raise ValueError(
                    f"cannot split {n} elements over {p} ranks along one axis"
                )
        self.grid = grid

    # ------------------------------------------------------------------
    def element_ranges(self, rank: int) -> List[Tuple[int, int]]:
        """Per-axis ``[start, stop)`` element ranges owned by ``rank``."""
        coords = self.grid.coords(rank)
        return [
            _block_range(n, p, c)
            for n, p, c in zip(self.element_shape, self.grid.dims, coords)
        ]

    def local_shape(self, rank: int) -> Tuple[int, ...]:
        """Local element counts of ``rank``."""
        return tuple(stop - start for start, stop in self.element_ranges(rank))

    def local_elements(self, rank: int) -> np.ndarray:
        """Flat global element indices owned by ``rank`` (local C-order)."""
        ranges = self.element_ranges(rank)
        grids = np.meshgrid(
            *[np.arange(start, stop) for start, stop in ranges], indexing="ij"
        )
        return np.ravel_multi_index(
            tuple(g.reshape(-1) for g in grids), self.element_shape
        )

    def max_local_elements(self) -> int:
        """The busiest rank's element count (load-balance metric)."""
        return max(int(np.prod(self.local_shape(r))) for r in self.grid.ranks())

    # ------------------------------------------------------------------
    # Analytic interface sizes
    # ------------------------------------------------------------------
    def interface_plane_nodes(self, rank: int, axis: int, order: int) -> int:
        """H1 nodes on one inter-rank plane normal to ``axis``.

        The shared plane of an order-``p`` space between two element slabs
        is the full node plane: ``prod_{d != axis} (n_d^{loc} p + 1)``.
        """
        shape = self.local_shape(rank)
        nodes = 1
        for d, n in enumerate(shape):
            if d != axis:
                nodes *= n * order + 1
        return nodes

    def halo_bytes_per_apply(self, rank: int, order: int, word: int = 8) -> int:
        """Interface-sum bytes one rank moves per operator application.

        Each existing neighbor plane is both sent and received once
        (sum-exchange); only the H1 pressure carries inter-rank coupling
        (the L2 velocity is element-local).
        """
        total = 0
        for axis in range(self.grid.ndim):
            for direction in (-1, +1):
                if self.grid.neighbor(rank, axis, direction) is not None:
                    total += 2 * self.interface_plane_nodes(rank, axis, order) * word
        return total

    def max_halo_bytes_per_apply(self, order: int, word: int = 8) -> int:
        """The busiest rank's halo traffic per application."""
        return max(
            self.halo_bytes_per_apply(r, order, word) for r in self.grid.ranks()
        )

    def messages_per_apply(self, rank: int) -> int:
        """Messages (send+recv) a rank exchanges per application."""
        n = 0
        for axis in range(self.grid.ndim):
            for direction in (-1, +1):
                if self.grid.neighbor(rank, axis, direction) is not None:
                    n += 2
        return n


def factor_grids(n: int, ndim: int = 2) -> List[Tuple[int, ...]]:
    """All ``ndim``-dimensional factorizations of ``n`` (for autotuning)."""
    if ndim == 1:
        return [(n,)]
    out: List[Tuple[int, ...]] = []
    for d in range(1, n + 1):
        if n % d == 0:
            for rest in factor_grids(n // d, ndim - 1):
                out.append((d,) + rest)
    return out
