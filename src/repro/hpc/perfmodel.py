"""Roofline kernel timing + alpha-beta-contention network model.

The solver's runtime per RK4 timestep on a device is modeled as

.. math::

    t = 4 \\cdot \\frac{\\mathrm{DOF}_{local}}{\\mathrm{rate}} +
        t_{halo} + t_{sync},

with the kernel ``rate`` taken from the *measured* per-device throughputs
of the paper (Fig. 5 / Fig. 7), the halo time from an alpha-beta model with
a dragonfly **contention factor** that grows with the occupied machine
fraction, and a synchronization/jitter term growing with ``log2`` of the
rank count:

.. math::

    t_{halo} = n_{msg} \\alpha +
        \\frac{B_{halo} (1 + \\gamma \\log_2 P / P_0)}{\\beta}, \\qquad
    t_{sync} = \\sigma \\log_2 P.

``gamma`` and ``sigma`` are calibrated per machine against the paper's
largest weak-scaling point (El Capitan: 92% at 43,520 GPUs); all other
points — the intermediate weak-scaling efficiencies and the entire strong
scaling curve — are then *predictions* of the model.  The halo byte counts
come from the same analytic partition formulas the decomposed operator
validates against measured virtual-communicator traffic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.hpc.machine import DOF_PER_ELEMENT, MachineSpec, ScalingConfig

__all__ = [
    "KernelSpec",
    "KERNEL_LADDER",
    "NetworkModel",
    "PerformanceModel",
    "OnlineKernelSpec",
    "BackendRoofline",
    "ONLINE_ROOFLINES",
    "gemm_spec",
    "trsm_spec",
    "rfft_spec",
    "roofline_for",
    "sketch_rebuild_spec",
]


@dataclass(frozen=True)
class KernelSpec:
    """One kernel variant of the paper's Fig. 7 (per-device metrics).

    Attributes
    ----------
    name:
        Variant name as in Fig. 7.
    gdofs_el_capitan, gdofs_alps:
        Peak measured DOF throughput (GDOF/s) per device.
    bytes_per_dof, flops_per_dof:
        Manually-counted data movement and arithmetic per DOF.
    """

    name: str
    gdofs_el_capitan: float
    gdofs_alps: float
    bytes_per_dof: float
    flops_per_dof: float

    def arithmetic_intensity(self) -> float:
        """FLOP per byte."""
        return self.flops_per_dof / self.bytes_per_dof

    def tflops_at(self, gdofs: float) -> float:
        """Achieved TFLOP/s at a given DOF throughput."""
        return gdofs * self.flops_per_dof / 1e3


# Fig. 7's optimization ladder.  The paper quotes: Initial PA 0.21 TFLOP/s;
# Shared PA ~13x faster; Optimized PA 2.48 TFLOP/s (scaling-run kernel);
# Fused PA peak 24 GDOF/s = 3.2 TFLOP/s at 137 flop/DOF and 57 byte/DOF;
# Fused MF higher FLOP/s (3.32) but 1.12x slower (22.2 byte/DOF, 7.3 f/b).
KERNEL_LADDER: Tuple[KernelSpec, ...] = (
    KernelSpec("Initial PA", 1.55, 1.35, 57.0, 137.0),
    KernelSpec("Shared PA", 17.2, 17.6, 57.0, 137.0),
    KernelSpec("Optimized PA", 18.3, 18.9, 57.0, 137.0),
    KernelSpec("Fused PA", 24.0, 23.5, 57.0, 137.0),
    KernelSpec("Fused MF", 21.4, 20.8, 22.2, 162.0),
)


@dataclass(frozen=True)
class OnlineKernelSpec:
    """Arithmetic footprint of one *online-phase* kernel call.

    The online hot paths (``repro.inference.streaming``,
    ``repro.serve.identify`` / ``sketch``, ``repro.inference.toeplitz``)
    reduce to three kernel families — gemm, blocked trsm, batched real
    FFT — whose FLOP and byte counts are analytic.  This mirrors
    :class:`KernelSpec` (the paper's Fig. 7 per-DOF ladder) for the
    serving side: per-*call* totals instead of per-DOF rates, built by
    :func:`gemm_spec` / :func:`trsm_spec` / :func:`rfft_spec` and priced
    against a :class:`BackendRoofline`.
    """

    name: str
    flops: float
    bytes: float

    def arithmetic_intensity(self) -> float:
        """FLOP per byte moved (assuming each operand streams once)."""
        return self.flops / max(self.bytes, 1.0)

    def __add__(self, other: "OnlineKernelSpec") -> "OnlineKernelSpec":
        return OnlineKernelSpec(
            name=f"{self.name}+{other.name}",
            flops=self.flops + other.flops,
            bytes=self.bytes + other.bytes,
        )


def gemm_spec(m: int, n: int, k: int, dtype_bytes: int = 8) -> OnlineKernelSpec:
    """``(m, k) @ (k, n)`` dense multiply-accumulate: ``2 m n k`` flops."""
    flops = 2.0 * m * n * k
    bytes_ = float(dtype_bytes) * (m * k + k * n + m * n)
    return OnlineKernelSpec(f"gemm[{m}x{k}x{n}]", flops, bytes_)


def sketch_rebuild_spec(
    nt: int, nd: int, rank: int, n_cols: int, mode: str = "gaussian",
    dtype_bytes: int = 8,
) -> OnlineKernelSpec:
    """Footprint of rebuilding one bank's slot sketch at a new ``rank``.

    Prices the rank-renegotiation path of the serving fabric's
    ``RankController``: re-projecting all ``n_cols`` whitened bank
    columns through the ``Nt`` per-slot ``(rank, Nd)`` projections is
    one batched gemm; ``mode="pca"`` additionally re-accumulates the
    per-slot Grams (a second batched gemm over the bank) and
    re-eigendecomposes them (``O(Nt Nd^3)``, with LAPACK's usual ~10x
    constant).  The controller gates a proposed rank change on this
    spec's roofline-attainable seconds so a retune is only taken when
    its rebuild cost amortizes over the observation window.
    """
    spec = gemm_spec(nt * rank, n_cols, nd, dtype_bytes)
    if mode == "pca":
        spec = spec + gemm_spec(nt * nd, n_cols, nd, dtype_bytes)
        spec = spec + OnlineKernelSpec(
            name="batched_eigh",
            flops=10.0 * nt * float(nd) ** 3,
            bytes=float(dtype_bytes) * 3.0 * nt * nd * nd,
        )
    return OnlineKernelSpec("sketch_rebuild", spec.flops, spec.bytes)


def trsm_spec(n: int, nrhs: int, dtype_bytes: int = 8) -> OnlineKernelSpec:
    """Triangular solve of an ``(n, n)`` system with ``nrhs`` right-hand sides."""
    flops = float(n) * n * nrhs  # n^2 MACs per rhs (forward substitution)
    bytes_ = float(dtype_bytes) * (n * (n + 1) / 2.0 + 2.0 * n * nrhs)
    return OnlineKernelSpec(f"trsm[{n}x{nrhs}]", flops, bytes_)


def rfft_spec(nfft: int, batch: int, dtype_bytes: int = 8) -> OnlineKernelSpec:
    """Batched real FFT of length ``nfft``: ``2.5 n log2 n`` flops each."""
    flops = 2.5 * nfft * math.log2(max(nfft, 2)) * batch
    bytes_ = float(dtype_bytes) * 2.0 * nfft * batch
    return OnlineKernelSpec(f"rfft[{nfft}x{batch}]", flops, bytes_)


@dataclass(frozen=True)
class BackendRoofline:
    """Peak FLOP rate + memory bandwidth of one array backend's device.

    ``attainable = min(peak, bandwidth * intensity)`` is the classic
    roofline; :meth:`fraction_of_attainable` turns a measured wall time
    into the benchmark gate metric "fraction of attainable" — comparable
    across backends in a way raw speedups are not.  The numbers are
    deliberately conservative single-device figures (one CPU core's fp64
    FMA pipe; a mid-range fp64 GPU) — they price an *upper bound*, so
    fractions are honest lower bounds on efficiency.
    """

    backend: str
    device: str
    peak_gflops: float
    mem_bw_gbs: float

    def attainable_gflops(self, intensity: float) -> float:
        """Roofline-attainable GFLOP/s at a given arithmetic intensity."""
        return min(self.peak_gflops, self.mem_bw_gbs * max(intensity, 0.0))

    def attainable_seconds(self, spec: OnlineKernelSpec) -> float:
        """Lower-bound wall time of one spec'd call on this backend."""
        gf = self.attainable_gflops(spec.arithmetic_intensity())
        return spec.flops / (gf * 1e9)

    def fraction_of_attainable(
        self, spec: OnlineKernelSpec, measured_seconds: float
    ) -> float:
        """Achieved / attainable throughput for a measured kernel run."""
        if measured_seconds <= 0.0:
            return 0.0
        return self.attainable_seconds(spec) / measured_seconds


#: Conservative per-backend device rooflines for the online kernels.
#: CPU entries assume one core of a modern x86 (AVX2 fp64 FMA, ~3 GHz)
#: and its share of memory bandwidth; the CUDA entries are an A100-class
#: fp64 device.  Keys match ``repro.backend`` names.
ONLINE_ROOFLINES: Dict[str, BackendRoofline] = {
    "numpy": BackendRoofline("numpy", "cpu", peak_gflops=48.0, mem_bw_gbs=20.0),
    "torch": BackendRoofline("torch", "cpu", peak_gflops=48.0, mem_bw_gbs=20.0),
    "torch-cuda": BackendRoofline(
        "torch-cuda", "cuda", peak_gflops=9700.0, mem_bw_gbs=1555.0
    ),
    "cupy": BackendRoofline("cupy", "cuda", peak_gflops=9700.0, mem_bw_gbs=1555.0),
}


def roofline_for(backend: str) -> BackendRoofline:
    """The :class:`BackendRoofline` for a ``repro.backend`` name."""
    try:
        return ONLINE_ROOFLINES[backend]
    except KeyError:
        raise ValueError(
            f"no roofline registered for backend {backend!r}; "
            f"known: {sorted(ONLINE_ROOFLINES)}"
        ) from None


class NetworkModel:
    """Alpha-beta network with dragonfly contention and sync jitter."""

    def __init__(self, machine: MachineSpec, base_ranks: int = 256) -> None:
        self.machine = machine
        self.base_ranks = int(base_ranks)

    def contention_factor(self, nranks: int) -> float:
        """Bandwidth degradation at ``nranks`` (1 at the base job size)."""
        if nranks <= self.base_ranks:
            return 1.0
        g = self.machine.contention_gamma
        return 1.0 + g * math.log2(nranks / self.base_ranks)

    def halo_time(self, halo_bytes: float, n_msgs: int, nranks: int) -> float:
        """Seconds for one halo exchange round on the critical-path rank."""
        alpha = self.machine.link_alpha_us * 1e-6
        beta = self.machine.link_beta_gbs * 1e9
        return n_msgs * alpha + halo_bytes * self.contention_factor(nranks) / beta

    def sync_time(self, nranks: int) -> float:
        """Synchronization / jitter cost per timestep."""
        if nranks <= 1:
            return 0.0
        return self.machine.sync_us_per_doubling * 1e-6 * math.log2(nranks)


class PerformanceModel:
    """Runtime-per-timestep model for Table II configurations."""

    def __init__(
        self,
        machine: MachineSpec,
        kernel: Optional[KernelSpec] = None,
        order: int = 4,
        vertical_elements_per_rank: int = 16,
    ) -> None:
        self.machine = machine
        self.kernel = kernel
        self.order = int(order)
        self.bz = int(vertical_elements_per_rank)
        self.network = NetworkModel(machine)

    # ------------------------------------------------------------------
    def local_block(self, elements_per_gpu: int) -> Tuple[int, int, int]:
        """Assumed local element block: thin in z (ocean-like), square in x-y.

        The paper's process grids fix ``pz = 4``, consistent with shallow
        ocean meshes; we hold ``bz`` fixed and square the horizontal block.
        """
        bz = min(self.bz, elements_per_gpu)
        bxy = max(int(round(math.sqrt(elements_per_gpu / bz))), 1)
        return bxy, bxy, bz

    def halo_bytes_per_apply(self, elements_per_gpu: int) -> float:
        """Interface bytes per operator application for an interior rank."""
        p = self.order
        bx, by, bz = self.local_block(elements_per_gpu)
        plane_xy = (bx * p + 1) * (by * p + 1)  # z-neighbors
        plane_xz = (bx * p + 1) * (bz * p + 1)
        plane_yz = (by * p + 1) * (bz * p + 1)
        # send+recv per neighbor; 2 neighbors per axis for interior ranks.
        return 8.0 * 2.0 * 2.0 * (plane_xy + plane_xz + plane_yz)

    def solver_rate(self) -> float:
        """Per-device DOF throughput (GDOF/s) used for the kernel term."""
        if self.kernel is None:
            return self.machine.solver_gdofs
        if self.machine.name == "Alps":
            return self.kernel.gdofs_alps
        return self.kernel.gdofs_el_capitan

    def time_per_step(self, config: ScalingConfig) -> float:
        """Modeled seconds per RK4 timestep (4 operator applications)."""
        local_dof = config.dof_per_gpu
        rate = self.solver_rate() * 1e9
        t_kernel = 4.0 * local_dof / rate
        halo = self.halo_bytes_per_apply(config.elements_per_gpu)
        n_msgs = 12  # 6 sends + 6 recvs for an interior rank
        t_halo = 4.0 * self.network.halo_time(halo, n_msgs, config.gpus)
        t_sync = self.network.sync_time(config.gpus)
        return t_kernel + t_halo + t_sync

    # ------------------------------------------------------------------
    def breakdown(self, config: ScalingConfig) -> Dict[str, float]:
        """Kernel / halo / sync decomposition of one configuration."""
        local_dof = config.dof_per_gpu
        rate = self.solver_rate() * 1e9
        halo = self.halo_bytes_per_apply(config.elements_per_gpu)
        return {
            "kernel": 4.0 * local_dof / rate,
            "halo": 4.0 * self.network.halo_time(halo, 12, config.gpus),
            "sync": self.network.sync_time(config.gpus),
            "total": self.time_per_step(config),
        }
