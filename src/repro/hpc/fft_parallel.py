"""The 2D-partitioned distributed FFT matvec (paper ref. [26]).

The FFTMatvec library distributes the block Toeplitz kernel over a
``pr x pc`` processor grid: output (sensor) rows are split over ``pr``,
input (parameter) columns over ``pc``.  A matvec then consists of purely
local FFTs and batched matmuls plus one **row-group reduction** (each row
group sums its column-partial outputs); the transpose matvec reduces over
column groups.  The grid shape trades compute balance against reduction
volume, so [26] autotunes ``(pr, pc)`` per problem shape and rank count —
reproduced here by :func:`autotune_grid` and validated by executing the
virtual-parallel matvec and comparing with the serial operator and with
the modeled communication volume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.hpc.comm import VirtualComm
from repro.hpc.machine import MachineSpec
from repro.hpc.partition import factor_grids
from repro.inference.toeplitz import BlockToeplitzOperator

__all__ = ["DistributedFFTMatvec", "autotune_grid", "modeled_matvec_time"]


def _splits(n: int, p: int) -> List[Tuple[int, int]]:
    """Balanced contiguous ranges of ``n`` items over ``p`` parts."""
    out = []
    base, rem = divmod(n, p)
    start = 0
    for i in range(p):
        size = base + (1 if i < rem else 0)
        out.append((start, start + size))
        start += size
    return out


class DistributedFFTMatvec:
    """Block Toeplitz matvec over a ``pr x pc`` virtual processor grid.

    Parameters
    ----------
    kernel:
        ``(Nt, n_out, n_in)`` kernel (as for
        :class:`~repro.inference.toeplitz.BlockToeplitzOperator`).
    pr, pc:
        Processor grid: rows (outputs) over ``pr``, columns (inputs) over
        ``pc``.
    """

    def __init__(
        self,
        kernel: np.ndarray,
        pr: int,
        pc: int,
        comm: Optional[VirtualComm] = None,
        layout: str = "space-major",
    ) -> None:
        kernel = np.asarray(kernel, dtype=np.float64)
        self.nt, self.n_out, self.n_in = kernel.shape
        if pr < 1 or pc < 1 or pr > self.n_out or pc > self.n_in:
            raise ValueError(f"invalid grid ({pr}, {pc}) for kernel {kernel.shape}")
        self.pr, self.pc = int(pr), int(pc)
        self.comm = comm if comm is not None else VirtualComm(pr * pc)
        self.row_ranges = _splits(self.n_out, self.pr)
        self.col_ranges = _splits(self.n_in, self.pc)
        # Local operators: one per (row block, col block).
        self.local: List[List[BlockToeplitzOperator]] = []
        for i, (r0, r1) in enumerate(self.row_ranges):
            row = []
            for j, (c0, c1) in enumerate(self.col_ranges):
                row.append(
                    BlockToeplitzOperator(
                        np.ascontiguousarray(kernel[:, r0:r1, c0:c1]), layout=layout
                    )
                )
            self.local.append(row)

    def _rank(self, i: int, j: int) -> int:
        return i * self.pc + j

    # ------------------------------------------------------------------
    def matvec(self, m: np.ndarray) -> np.ndarray:
        """``F m`` with row-group reductions (logged on the communicator)."""
        squeeze = m.ndim == 2
        mm = m[:, :, None] if squeeze else m
        k = mm.shape[2]
        d = np.zeros((self.nt, self.n_out, k))
        for i, (r0, r1) in enumerate(self.row_ranges):
            # Tree reduction over the pc column partials of row group i.
            partials = [
                self.local[i][j].matvec(mm[:, c0:c1, :])
                for j, (c0, c1) in enumerate(self.col_ranges)
            ]
            width = self.pc
            while width > 1:
                half = (width + 1) // 2
                for j in range(width - half):
                    src = self._rank(i, half + j)
                    dst = self._rank(i, j)
                    payload = self.comm.sendrecv(
                        src, dst, partials[half + j], tag="fft/reduce-rows"
                    )
                    partials[j] = partials[j] + payload
                width = half
            d[:, r0:r1, :] = partials[0]
        return d[:, :, 0] if squeeze else d

    def rmatvec(self, dv: np.ndarray) -> np.ndarray:
        """``F* d`` with column-group reductions."""
        squeeze = dv.ndim == 2
        dd = dv[:, :, None] if squeeze else dv
        k = dd.shape[2]
        g = np.zeros((self.nt, self.n_in, k))
        for j, (c0, c1) in enumerate(self.col_ranges):
            partials = [
                self.local[i][j].rmatvec(dd[:, r0:r1, :])
                for i, (r0, r1) in enumerate(self.row_ranges)
            ]
            width = self.pr
            while width > 1:
                half = (width + 1) // 2
                for i in range(width - half):
                    src = self._rank(half + i, j)
                    dst = self._rank(i, j)
                    payload = self.comm.sendrecv(
                        src, dst, partials[half + i], tag="fft/reduce-cols"
                    )
                    partials[i] = partials[i] + payload
                width = half
            g[:, c0:c1, :] = partials[0]
        return g[:, :, 0] if squeeze else g


def modeled_matvec_time(
    nt: int,
    n_out: int,
    n_in: int,
    pr: int,
    pc: int,
    machine: MachineSpec,
    flop_rate_fraction: float = 0.05,
    k: int = 1,
) -> float:
    """Modeled wall time of one distributed matvec on a machine.

    Compute: the busiest rank's FFT + matmul FLOPs at a calibrated
    fraction of device peak (FFT matvecs are memory/latency bound; the
    paper reports 80-95% of *bandwidth* peak, which maps to a few percent
    of FLOP peak).  Communication: a ``ceil(log2 pc)``-deep tree reduction
    of the local output block.
    """
    rows = int(np.ceil(n_out / pr))
    cols = int(np.ceil(n_in / pc))
    # FLOPs of the local kernel (same formula as BlockToeplitzOperator).
    nfft = 2 * nt
    fft_cost = 2.5 * nfft * np.log2(max(nfft, 2))
    flops = (rows + cols) * k * fft_cost + 8.0 * (nfft // 2 + 1) * rows * cols * k
    t_comp = flops / (machine.peak_tflops * 1e12 * flop_rate_fraction)
    reduce_bytes = nt * rows * k * 8.0
    depth = int(np.ceil(np.log2(max(pc, 1)))) if pc > 1 else 0
    t_comm = depth * (
        machine.link_alpha_us * 1e-6 + reduce_bytes / (machine.link_beta_gbs * 1e9)
    )
    return float(t_comp + t_comm)


def autotune_grid(
    nt: int,
    n_out: int,
    n_in: int,
    nranks: int,
    machine: MachineSpec,
    k: int = 1,
) -> Tuple[Tuple[int, int], float]:
    """Choose the ``(pr, pc)`` factorization minimizing the modeled time.

    Reproduces the adaptive 2D-grid tuning of [26]: the optimum shifts
    from row-heavy to column-heavy grids as the aspect ratio
    ``n_out / n_in`` changes.
    """
    best: Optional[Tuple[int, int]] = None
    best_t = np.inf
    for pr, pc in factor_grids(nranks, 2):
        if pr > n_out or pc > n_in:
            continue
        t = modeled_matvec_time(nt, n_out, n_in, pr, pc, machine, k=k)
        if t < best_t:
            best_t, best = t, (pr, pc)
    if best is None:
        raise ValueError(
            f"no feasible grid for {nranks} ranks on a {n_out}x{n_in} kernel"
        )
    return best, float(best_t)
