"""Machine specifications and the paper's Table II scaling configurations.

Hardware constants come from the paper's Section VI-A (El Capitan, Alps,
Perlmutter) and the Frontera footnote; the per-GPU solver throughputs come
from the measured results in Section VII (Fig. 5 runtimes and Fig. 7 kernel
rates).  The contention coefficient of each interconnect is *calibrated* so
the network model reproduces the paper's reported weak-scaling efficiency
at the largest configuration; everything else (intermediate points, strong
scaling) is then prediction — see EXPERIMENTS.md for the calibration
ledger.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

__all__ = [
    "MachineSpec",
    "ScalingConfig",
    "EL_CAPITAN",
    "ALPS",
    "PERLMUTTER",
    "FRONTERA",
    "ALL_MACHINES",
    "DOF_PER_ELEMENT",
]

# Order-4 pressure (4^3 shared H1 dofs/element) + 3 order-3 L2 velocity
# components (64 each): 64 + 192 = 256 — matches the paper's 55.5T DOF on
# 216.76G elements exactly.
DOF_PER_ELEMENT = 256


@dataclass(frozen=True)
class MachineSpec:
    """One HPC system of the paper's Section VI-A.

    Attributes
    ----------
    name:
        System name.
    nodes, gpus_per_node:
        Machine size (for CPU systems ``gpus_per_node`` counts sockets and
        ``device`` throughput is per socket).
    peak_tflops:
        Double-precision peak per device (TFLOP/s).
    mem_gb, mem_bw_gbs:
        Device memory capacity and bandwidth.
    solver_gdofs:
        Measured solver throughput per device in GDOF/s (the Fig. 5 runs
        used the "Optimized PA" kernel; El Capitan: 1.28e9 DOF at 0.49
        s/step / 4 applies ~ 10.4 GDOF/s per apply).
    link_alpha_us, link_beta_gbs:
        Per-message latency and per-link bandwidth of the interconnect.
    contention_gamma:
        Calibrated dragonfly contention growth per doubling of machine
        fraction (dimensionless; see module docstring).
    sync_us_per_doubling:
        Calibrated synchronization/jitter cost per rank-count doubling.
    """

    name: str
    nodes: int
    gpus_per_node: int
    peak_tflops: float
    mem_gb: float
    mem_bw_gbs: float
    solver_gdofs: float
    link_alpha_us: float
    link_beta_gbs: float
    contention_gamma: float
    sync_us_per_doubling: float

    @property
    def total_gpus(self) -> int:
        """Total devices in the machine."""
        return self.nodes * self.gpus_per_node

    @property
    def peak_eflops(self) -> float:
        """Machine peak in EFLOP/s."""
        return self.total_gpus * self.peak_tflops / 1e6


@dataclass(frozen=True)
class ScalingConfig:
    """One row of the paper's Table II.

    Attributes
    ----------
    machine:
        The machine this configuration ran on.
    nodes, gpus:
        Job size.
    grid:
        3D processor grid (the paper's ``px x py x pz``).
    elements:
        Total mesh elements.
    """

    machine: MachineSpec
    nodes: int
    gpus: int
    grid: Tuple[int, int, int]
    elements: int

    @property
    def elements_per_gpu(self) -> int:
        """Local workload (Table II's "Elements/GPU")."""
        return self.elements // self.gpus

    @property
    def dof(self) -> int:
        """Total state DOF at 256 DOF/element."""
        return self.elements * DOF_PER_ELEMENT

    @property
    def dof_per_gpu(self) -> int:
        """Local DOF per device."""
        return self.dof // self.gpus


EL_CAPITAN = MachineSpec(
    name="El Capitan",
    nodes=11_136,
    gpus_per_node=4,
    peak_tflops=61.3,
    mem_gb=128.0,
    mem_bw_gbs=5300.0,
    solver_gdofs=10.45,
    link_alpha_us=2.0,
    link_beta_gbs=25.0,
    contention_gamma=0.24,
    sync_us_per_doubling=20.0,
)

ALPS = MachineSpec(
    name="Alps",
    nodes=2_688,
    gpus_per_node=4,
    # 574.8 PF system peak / 10,752 GPUs = 53.5 TF/device (the paper's
    # figure counts the H100 FP64 tensor-core peak).
    peak_tflops=53.5,
    mem_gb=96.0,
    mem_bw_gbs=4000.0,
    solver_gdofs=10.3,
    link_alpha_us=2.0,
    link_beta_gbs=25.0,
    contention_gamma=0.04,
    sync_us_per_doubling=22.0,
)

PERLMUTTER = MachineSpec(
    name="Perlmutter",
    nodes=1_536,
    gpus_per_node=4,
    peak_tflops=9.7,
    mem_gb=40.0,
    mem_bw_gbs=1555.0,
    solver_gdofs=4.1,
    link_alpha_us=2.5,
    link_beta_gbs=25.0,
    contention_gamma=0.0,
    sync_us_per_doubling=70.0,
)

# Frontera: 56-core Cascade Lake nodes; throughput per *node*;
# the paper reports 95% weak efficiency at 8192 nodes, 4.8M DOF/core.
FRONTERA = MachineSpec(
    name="Frontera",
    nodes=8_368,
    gpus_per_node=1,
    peak_tflops=3.2,
    mem_gb=192.0,
    mem_bw_gbs=140.0,
    solver_gdofs=0.55,
    link_alpha_us=1.5,
    link_beta_gbs=12.5,
    contention_gamma=1.64,
    sync_us_per_doubling=360.0,
)

ALL_MACHINES = (EL_CAPITAN, ALPS, PERLMUTTER, FRONTERA)


def table2_weak_series(machine: MachineSpec) -> List[ScalingConfig]:
    """The weak-scaling series of Table II for one machine.

    The smallest and largest jobs are exactly Table II's rows; the
    intermediate points double the GPU count (splitting the y-dimension of
    the processor grid, as the paper's Fig. 5 axis indicates).
    """
    if machine.name == "El Capitan":
        base_nodes, base_grid, base_elems = 85, (5, 17, 4), 1_693_450_240
        doublings = 7  # 340 -> 43,520 GPUs
    elif machine.name == "Alps":
        base_nodes, base_grid, base_elems = 36, (2, 18, 4), 566_231_040
        doublings = 6  # 144 -> 9,216 GPUs
    elif machine.name == "Perlmutter":
        base_nodes, base_grid, base_elems = 47, (1, 47, 4), 295_698_432
        doublings = 5  # 188 -> 6,016 GPUs
    elif machine.name == "Frontera":
        # CPU study: 1 -> 8192 nodes (weak), 2.2e12 DOF max at 4.8M DOF/core.
        base_nodes, base_grid, base_elems = 1, (1, 1, 1), 1_048_576
        doublings = 13
    else:  # pragma: no cover - defensive
        raise ValueError(f"unknown machine {machine.name!r}")
    out = []
    nodes, grid, elems = base_nodes, list(base_grid), base_elems
    for k in range(doublings + 1):
        out.append(
            ScalingConfig(
                machine=machine,
                nodes=nodes,
                gpus=nodes * machine.gpus_per_node,
                grid=tuple(grid),
                elements=elems,
            )
        )
        # Double by growing the grid dimension with the most room, x/y
        # alternating (matches 5x17x4 -> 80x136x4: x16 in x, x8 in y).
        axis = 0 if grid[0] * 2 * grid[1] <= 80 * 136 and k % 2 == 0 else 1
        if machine.name == "Frontera":
            axis = k % 3
        grid[axis] *= 2
        nodes *= 2
        elems *= 2
    return out


def table2_strong_series(machine: MachineSpec) -> List[ScalingConfig]:
    """The strong-scaling series: fixed problem, growing GPU count.

    For the GPU machines the fixed problem is the base weak-scaling job
    ("the largest problem fitting on 340 GPUs", Section VII-A).  For
    Frontera the paper's strong study spans 3,584 -> 458,752 cores (64 ->
    8,192 nodes), so the series starts at the 64-node weak problem.
    """
    weak = table2_weak_series(machine)
    start = 6 if machine.name == "Frontera" else 0  # 2^6 = 64 nodes
    fixed = weak[start].elements
    out = []
    for cfg in weak[start:]:
        out.append(
            ScalingConfig(
                machine=machine,
                nodes=cfg.nodes,
                gpus=cfg.gpus,
                grid=cfg.grid,
                elements=fixed,
            )
        )
    return out
