"""A diffusive contrast problem: where the SoA baselines *do* work.

The paper's central structural claim is that hyperbolic (wave) p2o maps
preserve information and therefore have slowly decaying Hessian spectra,
while the diffusive/parabolic problems of the scalable-UQ literature are
strongly smoothing and low-rank-friendly.  This module builds the smallest
faithful parabolic counterpart: a 1D heat equation with distributed source
parameters and point observations, discretized to the same slot-blocked LTI
form, so the identical Toeplitz/Bayes machinery (and the identical low-rank
baseline) can run on both and the spectra can be compared side by side.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
import scipy.linalg as sla

from repro.inference.toeplitz import BlockToeplitzOperator

__all__ = ["diffusive_p2o_operator", "diffusive_rom_study"]


def diffusive_p2o_operator(
    n_grid: int = 48,
    n_sensors: int = 6,
    nt: int = 24,
    dt_obs: float = 0.05,
    diffusivity: float = 0.25,
    length: float = 1.0,
    seed: Optional[int] = None,
) -> Tuple[BlockToeplitzOperator, np.ndarray]:
    """Slot-blocked p2o map of a 1D heat equation with source control.

    ``u_t = kappa u_xx + m(x, t)`` on ``(0, L)`` with homogeneous
    Dirichlet ends; parameters are the slot-constant source values at the
    interior grid nodes; observations are point temperatures at
    ``n_sensors`` interior stations.  The slot map is computed *exactly*
    with the matrix exponential, so the kernel has the same
    ``T[k] = C S^k W`` structure as the acoustic--gravity solver:

    ``S = e^{A dt}``, ``W = A^{-1}(e^{A dt} - I)`` (constant-in-slot source).

    Returns
    -------
    ``(BlockToeplitzOperator, sensor_positions)``.
    """
    if n_grid < 4 or n_sensors < 1 or nt < 1:
        raise ValueError("degenerate configuration")
    h = length / (n_grid + 1)
    x = h * np.arange(1, n_grid + 1)
    main = -2.0 * np.ones(n_grid)
    off = np.ones(n_grid - 1)
    A = diffusivity / h**2 * (
        np.diag(main) + np.diag(off, 1) + np.diag(off, -1)
    )
    S = sla.expm(A * dt_obs)
    # W = A^{-1}(S - I): exact response to a slot-constant unit source.
    W = np.linalg.solve(A, S - np.eye(n_grid))
    if seed is None:
        xs = np.linspace(0.15 * length, 0.85 * length, n_sensors)
    else:
        rng = np.random.default_rng(seed)
        xs = np.sort(rng.uniform(0.1 * length, 0.9 * length, n_sensors))
    # Observation: linear interpolation between grid nodes.
    C = np.zeros((n_sensors, n_grid))
    for i, xsi in enumerate(xs):
        j = int(np.clip(np.searchsorted(x, xsi) - 1, 0, n_grid - 2))
        t = (xsi - x[j]) / (x[j + 1] - x[j])
        C[i, j] = 1.0 - t
        C[i, j + 1] = t
    kernel = np.empty((nt, n_sensors, n_grid))
    Sk = np.eye(n_grid)
    CW = C @ W
    for k in range(nt):
        kernel[k] = CW if k == 0 else C @ Sk @ W
        Sk = Sk @ S if k < nt - 1 else Sk
    return BlockToeplitzOperator(kernel), xs


def diffusive_rom_study(
    n_grid: int = 48,
    n_sensors: int = 6,
    nt: int = 24,
    dt_obs: float = 0.05,
    diffusivity: float = 0.25,
    length: float = 1.0,
    n_trajectories: int = 6,
    seed: int = 0,
):
    """POD snapshot spectrum and ROM errors for the diffusion problem.

    The exact discrete-time counterpart of
    :class:`repro.baselines.rom.PODReducedModel`: snapshots of
    ``x_j = S x_{j-1} + W m_j`` over smooth random forcings, POD basis,
    projected ``(S_r, W_r, C V)`` recursion, and the relative observation
    error as a function of rank.  Used as the contrast showing where ROMs
    *do* work (and hence that their failure on the wave problem is
    physics, not implementation).

    Returns
    -------
    ``(singular_values, rank_error_fn)`` where ``rank_error_fn(r)``
    evaluates the ROM's relative observation error at rank ``r`` on a
    held-out forcing.
    """
    h = length / (n_grid + 1)
    main = -2.0 * np.ones(n_grid)
    off = np.ones(n_grid - 1)
    A = diffusivity / h**2 * (np.diag(main) + np.diag(off, 1) + np.diag(off, -1))
    S = sla.expm(A * dt_obs)
    W = np.linalg.solve(A, S - np.eye(n_grid))
    x = h * np.arange(1, n_grid + 1)
    xs = np.linspace(0.15 * length, 0.85 * length, n_sensors)
    C = np.zeros((n_sensors, n_grid))
    for i, xsi in enumerate(xs):
        j = int(np.clip(np.searchsorted(x, xsi) - 1, 0, n_grid - 2))
        t = (xsi - x[j]) / (x[j + 1] - x[j])
        C[i, j], C[i, j + 1] = 1.0 - t, t

    rng = np.random.default_rng(seed)

    def trajectory(m):
        xk = np.zeros(n_grid)
        cols, obs = [], []
        for j in range(nt):
            xk = S @ xk + W @ m[j]
            cols.append(xk.copy())
            obs.append(C @ xk)
        return np.stack(cols, axis=1), np.stack(obs, axis=0)

    def smooth_forcing():
        m = rng.standard_normal((nt, n_grid))
        for j in range(1, nt):
            m[j] = 0.6 * m[j - 1] + 0.4 * m[j]
        return m

    snaps = np.concatenate(
        [trajectory(smooth_forcing())[0] for _ in range(n_trajectories)], axis=1
    )
    sv = np.linalg.svd(snaps, compute_uv=False)
    m_test = smooth_forcing()
    _, d_full = trajectory(m_test)
    U, _, _ = np.linalg.svd(snaps, full_matrices=False)

    def rank_error(r: int) -> float:
        V = U[:, :r]
        Sr, Wr, CV = V.T @ S @ V, V.T @ W, C @ V
        xr = np.zeros(r)
        d_rom = np.empty_like(d_full)
        for j in range(nt):
            xr = Sr @ xr + Wr @ m_test[j]
            d_rom[j] = CV @ xr
        return float(np.linalg.norm(d_rom - d_full) / np.linalg.norm(d_full))

    return sv, rank_error
