"""State-of-the-art baselines the paper's framework is measured against.

Section IV of the paper explains why conventional methods fail at the
target scale; this package implements each of them faithfully (at the
reduced scale where they still run) so the comparison can be *measured*
rather than asserted:

``cg``
    The SoA solver: prior-preconditioned conjugate gradients on the
    Hessian system ``(F* Gn^{-1} F + Gp^{-1}) m = F* Gn^{-1} d``, either
    with true PDE solves per matvec (the 50-years-on-512-GPUs path) or
    with FFT matvecs (isolating the iteration count from the solve cost).
``spectrum``
    Spectral analysis of the prior-preconditioned data-misfit Hessian:
    the hyperbolic p2o map has effective rank ~ the data dimension, the
    structural fact that rules out low-rank methods.
``lowrank``
    The randomized-eigendecomposition + SMW low-rank posterior of
    [Isaac et al., Bui-Thanh et al.] — accurate for diffusive problems,
    demonstrably non-convergent until rank ~ N_d N_t for this one.
``diffusive``
    A diffusion-equation contrast problem whose misfit Hessian *is* low
    rank, showing the baselines succeed exactly where the theory says.
``costmodel``
    The paper-scale cost projections: 50 SoA-years, 538 offline hours,
    810x fewer PDE solves, 260,000x per-matvec, ~10^10 online speedup.
"""

from repro.baselines.cg import CGResult, solve_map_cg
from repro.baselines.costmodel import PaperScaleCosts, SoACostModel
from repro.baselines.diffusive import diffusive_p2o_operator
from repro.baselines.lowrank import LowRankPosterior, randomized_eigsh
from repro.baselines.rom import PODReducedModel, pod_energy_spectrum, snapshot_matrix
from repro.baselines.spectrum import (
    effective_rank,
    misfit_hessian_spectrum,
    prior_preconditioned_misfit,
)

__all__ = [
    "CGResult",
    "solve_map_cg",
    "misfit_hessian_spectrum",
    "prior_preconditioned_misfit",
    "effective_rank",
    "LowRankPosterior",
    "randomized_eigsh",
    "diffusive_p2o_operator",
    "PODReducedModel",
    "pod_energy_spectrum",
    "snapshot_matrix",
    "SoACostModel",
    "PaperScaleCosts",
]
