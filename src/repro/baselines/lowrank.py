"""Randomized low-rank posterior approximation (and where it breaks).

The scalable-UQ literature the paper cites [17, 18] approximates the
posterior by a rank-``r`` eigendecomposition of the prior-preconditioned
misfit Hessian ``tilde-H = V L V^T``:

.. math::

    \\Gamma_{post} \\approx \\Gamma_p^{1/2}
        (I - V D V^T) \\Gamma_p^{1/2}, \\qquad
    D = \\mathrm{diag}(\\lambda_i / (1 + \\lambda_i)),

with ``V`` from a matrix-free randomized eigensolver.  The approximation
error is controlled by the first *discarded* eigenvalue ``lambda_{r+1}``;
it converges quickly iff the spectrum decays quickly.  For the tsunami p2o
map it does not (effective rank ~ data dimension), which
``bench_ablation_spectrum.py`` demonstrates against the diffusive contrast
problem where the same code converges at tiny rank.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np

from repro.inference.noise import NoiseModel
from repro.inference.prior import SpatioTemporalPrior
from repro.inference.toeplitz import BlockToeplitzOperator

__all__ = ["randomized_eigsh", "LowRankPosterior"]

ApplyFn = Callable[[np.ndarray], np.ndarray]


def randomized_eigsh(
    apply_H: ApplyFn,
    n: int,
    rank: int,
    oversample: int = 10,
    power_iters: int = 2,
    rng: Optional[np.random.Generator] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Matrix-free randomized eigendecomposition of a symmetric PSD operator.

    Halko--Martinsson--Tropp: range finding on ``H Omega`` with a few power
    iterations, then a small dense eigensolve of the projected operator.

    Parameters
    ----------
    apply_H:
        Symmetric PSD action on ``(n, k)`` blocks of vectors.
    n:
        Operator dimension.
    rank:
        Number of eigenpairs to return.
    oversample, power_iters:
        Standard accuracy knobs.

    Returns
    -------
    ``(eigenvalues desc (rank,), eigenvectors (n, rank))``.
    """
    if rank < 1 or rank > n:
        raise ValueError(f"rank must lie in [1, {n}]")
    rng = np.random.default_rng() if rng is None else rng
    ell = min(n, rank + oversample)
    Omega = rng.standard_normal((n, ell))
    Y = apply_H(Omega)
    for _ in range(power_iters):
        Q, _ = np.linalg.qr(Y)
        Y = apply_H(Q)
    Q, _ = np.linalg.qr(Y)
    Hs = Q.T @ apply_H(Q)
    Hs = 0.5 * (Hs + Hs.T)
    lam, U = np.linalg.eigh(Hs)
    order = np.argsort(lam)[::-1][:rank]
    return np.maximum(lam[order], 0.0), Q @ U[:, order]


class LowRankPosterior:
    """Rank-``r`` SMW posterior built on the prior-preconditioned Hessian.

    Parameters
    ----------
    F, prior, noise:
        The inverse-problem triplet (FFT matvecs supply the Hessian
        actions; every action costs two Toeplitz matvecs and two prior
        square-root applications).
    rank:
        Retained eigenpairs.
    """

    def __init__(
        self,
        F: BlockToeplitzOperator,
        prior: SpatioTemporalPrior,
        noise: NoiseModel,
        rank: int,
        rng: Optional[np.random.Generator] = None,
        power_iters: int = 2,
    ) -> None:
        self.F = F
        self.prior = prior
        self.noise = noise
        self.nt, self.nd, self.nm = F.nt, F.n_out, F.n_in
        n = self.nt * self.nm

        def apply_Htilde(X: np.ndarray) -> np.ndarray:
            k = X.shape[1]
            xb = X.reshape(self.nt, self.nm, k)
            y = prior.apply_sqrt(xb)
            d = F.matvec(y)
            d = noise.apply_inverse(d)
            g = F.rmatvec(d)
            # L^T = M^{1/2} A^{-1} per slot: same as apply_sqrt for the
            # symmetric spatial factor composed with the temporal Cholesky^T.
            z = self._sqrtT(g)
            return z.reshape(n, k)

        self._apply_Htilde = apply_Htilde
        self.eigenvalues, self.V = randomized_eigsh(
            apply_Htilde, n, rank, rng=rng, power_iters=power_iters
        )
        self.rank = int(rank)
        self.D = self.eigenvalues / (1.0 + self.eigenvalues)

    # ------------------------------------------------------------------
    def _sqrtT(self, v: np.ndarray) -> np.ndarray:
        """Transpose square root ``L^T v`` (spatial ``M^{1/2} A^{-1}`` per slot)."""
        sp = self.prior.spatial
        squeeze = v.ndim == 2
        vv = v[:, :, None] if squeeze else v
        nt, nm, k = vv.shape
        flat = np.ascontiguousarray(vv.transpose(1, 0, 2)).reshape(nm, nt * k)
        w = sp._solve_A(flat) * sp._sqrt_m[:, None]
        out = w.reshape(nm, nt, k).transpose(1, 0, 2)
        if self.prior._Ct_chol is not None:
            out = np.einsum("ji,j...->i...", self.prior._Ct_chol, out)
        out = np.ascontiguousarray(out)
        return out[:, :, 0] if squeeze else out

    def _sqrt(self, v: np.ndarray) -> np.ndarray:
        """Forward square root ``L v`` (delegates to the prior)."""
        return self.prior.apply_sqrt(v)

    # ------------------------------------------------------------------
    def posterior_covariance_action(self, v: np.ndarray) -> np.ndarray:
        """``Gamma_post^{(r)} v = L (I - V D V^T) L^T v`` on ``(Nt, Nm)``."""
        w = self._sqrtT(np.asarray(v, dtype=np.float64)).reshape(-1)
        w = w - self.V @ (self.D * (self.V.T @ w))
        return self._sqrt(w.reshape(self.nt, self.nm))

    def map_estimate(self, d_obs: np.ndarray) -> np.ndarray:
        """Low-rank MAP ``m = Gamma_post^{(r)} F* Gn^{-1} d_obs``."""
        g = self.F.rmatvec(self.noise.apply_inverse(np.asarray(d_obs)))
        return self.posterior_covariance_action(g)

    def pointwise_variance(self, chunk: int = 256) -> np.ndarray:
        """Approximate marginal variances ``diag(Gamma_post^{(r)})``.

        ``diag = diag(Gamma_prior) - sum_i D_i (L V_i)^2`` — exact given
        the retained eigenpairs.
        """
        prior_diag = np.tile(self.prior.spatial.marginal_variance(), self.nt)
        if self.prior.Ct is not None:
            scale = np.repeat(np.diag(self.prior.Ct), self.nm)
            prior_diag = prior_diag * scale
        red = np.zeros(self.nt * self.nm)
        for start in range(0, self.rank, chunk):
            stop = min(start + chunk, self.rank)
            cols = self.V[:, start:stop].reshape(self.nt, self.nm, stop - start)
            lv = self._sqrt(cols).reshape(self.nt * self.nm, stop - start)
            red += (lv**2) @ self.D[start:stop]
        return np.maximum(prior_diag - red, 0.0)
