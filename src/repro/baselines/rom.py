"""Projection-based reduced-order models and the Kolmogorov N-width wall.

Section IV's third dismissed alternative: "we might attempt to construct a
projection-based reduced order model (ROM) of the forward acoustic-gravity
wave equations ... efficient ROMs for high-frequency wave propagation are
not viable due to the Kolmogorov N-width problem", citing Greif & Urban's
result that the N-width of transport/wave solution manifolds decays only
like ``N^{-1/2}`` (versus exponentially for diffusion).

This module makes that argument *measurable* at reduced scale:

* :func:`snapshot_matrix` collects state snapshots of the propagator over
  representative forcings;
* :func:`pod_energy_spectrum` exposes the snapshot singular values — the
  practical N-width of the sampled solution manifold;
* :class:`PODReducedModel` builds the discrete-time POD-Galerkin ROM of
  the slot map: ``x^r_j = S_r x^r_{j-1} + W_r m_j`` with
  ``S_r = V^T S V`` (projected through one batched slot propagation) and
  ``W_r = V^T W`` (projected slot input response), then observes through
  ``C V``.  At full snapshot rank this reproduces every training
  trajectory; its accuracy at *affordable* rank is exactly what the
  N-width controls.

The benches run the identical construction on the wave problem and on a
matched diffusion problem: diffusion compresses to a handful of modes,
the wave manifold does not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.fem.timestep import rk4_forced_step, rk4_homogeneous_step
from repro.ocean.observations import PointObservationOperator
from repro.ocean.propagator import SlotPropagator

__all__ = ["snapshot_matrix", "pod_energy_spectrum", "PODReducedModel"]


def snapshot_matrix(
    propagator: SlotPropagator,
    n_trajectories: int = 4,
    seed: int = 0,
    smooth_forcing_scale: float = 1.0,
) -> np.ndarray:
    """State snapshots over random smooth forcings, columns ``(nstate, ns)``.

    Trajectories are driven by random slot-blocked forcings (temporally
    smoothed white noise), the standard ROM training protocol; snapshots
    are taken at every slot boundary.
    """
    op = propagator.op
    rng = np.random.default_rng(seed)
    nt, nm = propagator.n_slots, op.n_parameters
    cols = []
    for _ in range(n_trajectories):
        m = rng.standard_normal((nt, nm)) * smooth_forcing_scale
        for j in range(1, nt):
            m[j] = 0.6 * m[j - 1] + 0.4 * m[j]
        X = op.zero_state(1)
        for j in range(nt):
            F = op.forcing(m[j][:, None])
            for _ in range(propagator.n_substeps):
                X = rk4_forced_step(op.apply, X, propagator.dt, F)
            cols.append(X[:, 0].copy())
    return np.stack(cols, axis=1)


def pod_energy_spectrum(snapshots: np.ndarray) -> np.ndarray:
    """Singular values of the snapshot matrix (descending).

    Their normalized decay is the practical Kolmogorov N-width of the
    sampled solution manifold: the best rank-``N`` subspace misses energy
    ``sum_{i>N} s_i^2``.
    """
    return np.linalg.svd(np.asarray(snapshots), compute_uv=False)


def _slot_map_apply(propagator: SlotPropagator, X: np.ndarray) -> np.ndarray:
    """Homogeneous slot map ``S X`` on a batch of state columns."""
    op = propagator.op
    Y = np.array(X, dtype=np.float64)
    for _ in range(propagator.n_substeps):
        Y = rk4_homogeneous_step(op.apply, Y, propagator.dt)
    return Y


def _slot_input_response(propagator: SlotPropagator, M: np.ndarray) -> np.ndarray:
    """Input response ``W M`` (slot solve from rest) for parameter columns."""
    op = propagator.op
    F = op.forcing(M)
    X = op.zero_state(M.shape[1] if M.ndim == 2 else 1)
    for _ in range(propagator.n_substeps):
        X = rk4_forced_step(op.apply, X, propagator.dt, F)
    return X


@dataclass
class PODReducedModel:
    """Discrete-time POD-Galerkin ROM of the slot propagator.

    Attributes
    ----------
    V:
        Orthonormal reduced basis ``(nstate, r)``.
    Sr:
        Projected slot map ``V^T S V`` ``(r, r)``.
    Wr:
        Projected input operator ``V^T W`` ``(r, Nm)``.
    """

    propagator: SlotPropagator
    V: np.ndarray
    Sr: np.ndarray
    Wr: np.ndarray

    @classmethod
    def build(
        cls,
        propagator: SlotPropagator,
        snapshots: np.ndarray,
        rank: int,
    ) -> "PODReducedModel":
        """POD basis + Galerkin projection of the slot map and input.

        Offline cost: the SVD, one batched slot propagation of the ``r``
        basis vectors (for ``S_r``), and one batched slot input response
        over the ``N_m`` parameter directions (for ``W_r``) — after which
        the online model is ``r x r``.
        """
        if rank < 1 or rank > min(snapshots.shape):
            raise ValueError(f"rank must lie in [1, {min(snapshots.shape)}]")
        U, _, _ = np.linalg.svd(snapshots, full_matrices=False)
        V = np.ascontiguousarray(U[:, :rank])
        Sr = V.T @ _slot_map_apply(propagator, V)
        W_full = _slot_input_response(
            propagator, np.eye(propagator.op.n_parameters)
        )
        Wr = V.T @ W_full
        return cls(propagator=propagator, V=V, Sr=Sr, Wr=Wr)

    @property
    def rank(self) -> int:
        """Reduced dimension."""
        return int(self.V.shape[1])

    def forward(
        self, m: np.ndarray, obs: PointObservationOperator
    ) -> np.ndarray:
        """Reduced forward solve: observations ``(Nt, n_obs)``.

        ``x^r_j = S_r x^r_{j-1} + W_r m_j``, observed through ``C V`` —
        the exact discrete-time Galerkin ROM of the full slot recursion.
        """
        prop = self.propagator
        op = prop.op
        nt = prop.n_slots
        m = np.asarray(m, dtype=np.float64)
        # Observation factor acting on reduced coordinates.
        CV = np.empty((obs.n, self.rank))
        _, Vp = op.views(self.V)
        CV[:, :] = np.asarray(obs.matrix @ Vp)
        xr = np.zeros(self.rank)
        out = np.empty((nt, obs.n))
        for j in range(nt):
            xr = self.Sr @ xr + self.Wr @ m[j]
            out[j] = CV @ xr
        return out

    def relative_observation_error(
        self, m: np.ndarray, obs: PointObservationOperator
    ) -> float:
        """Relative L2 error of ROM observations vs the full model."""
        d_full = self.propagator.apply_p2o(np.asarray(m), obs)
        d_rom = self.forward(m, obs)
        return float(
            np.linalg.norm(d_rom - d_full) / max(np.linalg.norm(d_full), 1e-300)
        )
