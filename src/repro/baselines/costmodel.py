"""Paper-scale cost projections: 50 SoA-years vs 0.2 online seconds.

Section VII-C of the paper reports a precise cost ledger for the Cascadia
configuration (Table III); Section IV derives the state-of-the-art cost it
replaces.  This module encodes both as an explicit, auditable model:

* from the *paper's own constants* (52-minute PDE solves on 512 A100s,
  252,000 spatiotemporal data, 600 sensors + 21 QoI locations) it
  reproduces the headline numbers — ~50 SoA years, 538 offline hours,
  ~810x fewer PDE solves, 260,000x per-Hessian-matvec, ~10^10 online
  speedup;
* from *measured demo-scale timings* of this reproduction (a real PDE
  solve, a real FFT matvec, a real online solve) it re-derives the same
  ratios at our scale, so the bench can print paper-vs-measured rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["PaperScaleCosts", "SoACostModel", "MeasuredDemoCosts"]

SECONDS_PER_YEAR = 365.25 * 24 * 3600.0


@dataclass(frozen=True)
class PaperScaleCosts:
    """The paper's Cascadia configuration constants (Table III, Section IV)."""

    n_sensors: int = 600
    n_qoi: int = 21
    nt: int = 420
    nm_spatial: int = 2_416_530
    pde_solve_seconds: float = 52.0 * 60.0  # one adjoint solve, 512 A100s
    fft_matvec_seconds: float = 0.024  # Hessian matvec, 512 A100s
    online_seconds: float = 0.2
    gpus: int = 512

    @property
    def data_dimension(self) -> int:
        """Spatiotemporal data dimension ``N_d N_t`` (= CG iteration scale)."""
        return self.n_sensors * self.nt

    @property
    def parameter_dimension(self) -> int:
        """Total parameters ``N_m N_t`` (the paper's ~1.015 billion)."""
        return self.nm_spatial * self.nt


class SoACostModel:
    """Derived quantities of the offline--online decomposition."""

    def __init__(self, c: PaperScaleCosts = PaperScaleCosts()) -> None:
        self.c = c

    # --- state of the art -------------------------------------------------
    def soa_cg_iterations(self) -> int:
        """CG iterations ~ effective rank ~ data dimension (Section IV)."""
        return self.c.data_dimension

    def soa_cg_seconds(self) -> float:
        """SoA cost: one forward/adjoint PDE pair per CG iteration."""
        return self.soa_cg_iterations() * 2.0 * self.c.pde_solve_seconds

    def soa_cg_years(self) -> float:
        """The paper's "50 years on 512 GPUs"."""
        return self.soa_cg_seconds() / SECONDS_PER_YEAR

    # --- this framework ----------------------------------------------------
    def phase1_solves(self) -> int:
        """Offline adjoint PDE solves: one per sensor + one per QoI point."""
        return self.c.n_sensors + self.c.n_qoi

    def phase1_hours(self) -> float:
        """The paper's 538 offline hours (520 + 18)."""
        return self.phase1_solves() * self.c.pde_solve_seconds / 3600.0

    def pde_solve_reduction(self) -> float:
        """SoA PDE solves / Phase 1 PDE solves (paper: ~810x)."""
        return (2.0 * self.c.data_dimension) / self.phase1_solves()

    def matvec_speedup(self) -> float:
        """PDE-pair Hessian matvec vs FFT matvec (paper: ~260,000x)."""
        return (2.0 * self.c.pde_solve_seconds) / self.c.fft_matvec_seconds

    def online_speedup(self) -> float:
        """SoA inversion time / online time (paper: ~10^10)."""
        return self.soa_cg_seconds() / self.c.online_seconds

    # --- reporting ----------------------------------------------------------
    def summary(self) -> Dict[str, float]:
        """All headline numbers in one dictionary."""
        return {
            "data_dimension": float(self.c.data_dimension),
            "parameter_dimension": float(self.c.parameter_dimension),
            "soa_cg_iterations": float(self.soa_cg_iterations()),
            "soa_cg_years": self.soa_cg_years(),
            "phase1_solves": float(self.phase1_solves()),
            "phase1_hours": self.phase1_hours(),
            "pde_solve_reduction": self.pde_solve_reduction(),
            "matvec_speedup": self.matvec_speedup(),
            "online_speedup": self.online_speedup(),
        }

    def report(self) -> str:
        """Paper-style text table of the headline claims."""
        s = self.summary()
        rows = [
            ("Data dimension Nd*Nt", f"{s['data_dimension']:,.0f}", "252,000"),
            ("Parameters Nm*Nt", f"{s['parameter_dimension']:,.0f}", "~1.015e9"),
            ("SoA CG time (years)", f"{s['soa_cg_years']:.1f}", "~50"),
            ("Phase 1 solves", f"{s['phase1_solves']:.0f}", "621"),
            ("Phase 1 hours", f"{s['phase1_hours']:.0f}", "538"),
            ("PDE-solve reduction", f"{s['pde_solve_reduction']:.0f}x", "~810x"),
            ("Matvec speedup", f"{s['matvec_speedup']:,.0f}x", "260,000x"),
            ("Online speedup", f"{s['online_speedup']:.2e}", "~1e10"),
        ]
        lines = [f"{'quantity':<28s} {'model':>14s} {'paper':>12s}"]
        lines += [f"{a:<28s} {b:>14s} {c:>12s}" for a, b, c in rows]
        return "\n".join(lines)


@dataclass
class MeasuredDemoCosts:
    """Measured demo-scale costs of this reproduction (filled by benches).

    The same ratios as :class:`SoACostModel`, but with every constant
    *measured* on the reduced problem: a real adjoint solve, a real FFT
    matvec, a real Phase 4 solve, and the measured CG iteration count.
    """

    n_sensors: int
    n_qoi: int
    nt: int
    pde_solve_seconds: float
    fft_matvec_seconds: float
    online_seconds: float
    cg_iterations: int

    def soa_seconds(self) -> float:
        """Measured-scale SoA cost (CG iterations x PDE pairs)."""
        return self.cg_iterations * 2.0 * self.pde_solve_seconds

    def pde_solve_reduction(self) -> float:
        """Measured-scale PDE-solve reduction."""
        return 2.0 * self.cg_iterations / (self.n_sensors + self.n_qoi)

    def matvec_speedup(self) -> float:
        """Measured-scale Hessian-matvec speedup."""
        return 2.0 * self.pde_solve_seconds / self.fft_matvec_seconds

    def online_speedup(self) -> float:
        """Measured-scale online speedup."""
        return self.soa_seconds() / self.online_seconds

    def summary(self) -> Dict[str, float]:
        """Measured ratios in one dictionary."""
        return {
            "soa_seconds": self.soa_seconds(),
            "pde_solve_reduction": self.pde_solve_reduction(),
            "matvec_speedup": self.matvec_speedup(),
            "online_speedup": self.online_speedup(),
        }
