"""Prior-preconditioned conjugate gradients: the state-of-the-art baseline.

The SoA approach to the MAP system (paper Eq. 2)

.. math:: (F^* \\Gamma_n^{-1} F + \\Gamma_p^{-1})\\, m
          = F^* \\Gamma_n^{-1} d_{obs}

is matrix-free CG preconditioned by the prior covariance; convergence takes
on the order of the number of eigenvalues of the prior-preconditioned
misfit Hessian above unity [Ghattas & Willcox 2021].  For diffusive
problems that number is small; for this hyperbolic problem it is ~ the data
dimension, which is what makes the paper's direct data-space solve
necessary.

Two backends supply the ``F``/``F*`` actions:

* ``fft`` — the FFT Toeplitz matvecs (fast; isolates iteration counts);
* ``pde`` — genuine forward/adjoint wave propagations through the
  :class:`~repro.ocean.propagator.SlotPropagator` (the true SoA cost:
  every iteration pays a forward/adjoint PDE pair).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro.inference.noise import NoiseModel
from repro.inference.prior import SpatioTemporalPrior
from repro.inference.toeplitz import BlockToeplitzOperator

__all__ = ["CGResult", "HessianOperator", "solve_map_cg", "pde_hessian_operator"]

ApplyFn = Callable[[np.ndarray], np.ndarray]


@dataclass
class CGResult:
    """Outcome of a preconditioned-CG MAP solve.

    Attributes
    ----------
    m:
        The solution iterate ``(Nt, Nm)``.
    iterations:
        CG iterations performed.
    residuals:
        Preconditioned residual norms per iteration (including initial).
    converged:
        Whether the relative tolerance was reached within ``maxiter``.
    pde_solves:
        Forward+adjoint PDE solves consumed (0 in FFT mode).
    """

    m: np.ndarray
    iterations: int
    residuals: List[float] = field(default_factory=list)
    converged: bool = False
    pde_solves: int = 0


@dataclass
class HessianOperator:
    """Matrix-free MAP Hessian ``H = F* Gn^{-1} F + Gp^{-1}`` plus its RHS."""

    apply_F: ApplyFn
    apply_Fstar: ApplyFn
    prior: SpatioTemporalPrior
    noise: NoiseModel
    pde_mode: bool = False
    pde_solves: int = 0

    def apply(self, m: np.ndarray) -> np.ndarray:
        """``H m`` on slot-blocked parameters ``(Nt, Nm)``."""
        d = self.apply_F(m)
        g = self.apply_Fstar(self.noise.apply_inverse(d))
        if self.pde_mode:
            self.pde_solves += 2
        return g + self.prior.apply_inverse(m)

    def rhs(self, d_obs: np.ndarray) -> np.ndarray:
        """``F* Gn^{-1} d_obs``."""
        g = self.apply_Fstar(self.noise.apply_inverse(np.asarray(d_obs)))
        if self.pde_mode:
            self.pde_solves += 1
        return g


def fft_hessian_operator(
    F: BlockToeplitzOperator, prior: SpatioTemporalPrior, noise: NoiseModel
) -> HessianOperator:
    """Hessian with FFT-based ``F``/``F*`` actions (no PDE solves)."""
    return HessianOperator(F.matvec, F.rmatvec, prior, noise, pde_mode=False)


def pde_hessian_operator(
    propagator, obs, prior: SpatioTemporalPrior, noise: NoiseModel
) -> HessianOperator:
    """Hessian whose every action runs true forward/adjoint wave solves.

    This is the configuration whose paper-scale cost is 50 years on 512
    A100 GPUs; at test scale it runs in seconds and lets us *measure* the
    iteration counts and per-iteration PDE cost that the projection in
    :mod:`repro.baselines.costmodel` extrapolates.
    """
    return HessianOperator(
        lambda m: propagator.apply_p2o(m, obs),
        lambda d: propagator.apply_p2o_transpose(d, obs),
        prior,
        noise,
        pde_mode=True,
    )


def solve_map_cg(
    H: HessianOperator,
    d_obs: np.ndarray,
    rtol: float = 1e-8,
    maxiter: Optional[int] = None,
    m0: Optional[np.ndarray] = None,
    callback: Optional[Callable[[int, float], None]] = None,
) -> CGResult:
    """Prior-preconditioned CG for the MAP system.

    Standard PCG with ``M^{-1} = Gamma_prior`` (each preconditioner
    application is two elliptic solves per slot — exactly the SoA recipe).
    Convergence is declared on the preconditioned residual norm
    ``sqrt(r^T M^{-1} r)`` relative to its initial value.
    """
    b = H.rhs(np.asarray(d_obs, dtype=np.float64))
    nt, nm = b.shape
    n = nt * nm
    if maxiter is None:
        maxiter = 2 * n
    # Convergence reference: the preconditioned RHS norm (not the initial
    # residual), so warm starts terminate immediately.
    zb = H.prior.apply(b)
    ref = float(np.sqrt(max(np.sum(b * zb), 0.0)))
    m = np.zeros_like(b) if m0 is None else np.array(m0, dtype=np.float64)
    r = b - H.apply(m) if m0 is not None else b.copy()
    z = H.prior.apply(r)
    rz = float(np.sum(r * z))
    p = z.copy()
    res0 = np.sqrt(max(rz, 0.0))
    residuals = [res0]
    if ref == 0.0 or res0 <= rtol * ref:
        return CGResult(m, 0, residuals, True, H.pde_solves)
    converged = False
    it = 0
    for it in range(1, maxiter + 1):
        Hp = H.apply(p)
        pHp = float(np.sum(p * Hp))
        if pHp <= 0:
            break  # loss of positive definiteness (rounding) - stop
        alpha = rz / pHp
        m += alpha * p
        r -= alpha * Hp
        z = H.prior.apply(r)
        rz_new = float(np.sum(r * z))
        res = np.sqrt(max(rz_new, 0.0))
        residuals.append(res)
        if callback is not None:
            callback(it, res)
        if res <= rtol * ref:
            converged = True
            break
        p = z + (rz_new / rz) * p
        rz = rz_new
    return CGResult(m, it, residuals, converged, H.pde_solves)
