"""Spectrum of the prior-preconditioned data-misfit Hessian.

The feasibility of every SoA method in Section IV hinges on one number: the
*effective rank* of

.. math:: \\tilde H_{like} = \\Gamma_p^{1/2} F^* \\Gamma_n^{-1} F
          \\Gamma_p^{1/2}

(eigenvalues above unity = directions where the data genuinely informs the
posterior).  CG converges in ~that many iterations; low-rank posterior
approximations need ~that many modes.  For diffusive problems it is tiny;
for this hyperbolic problem it is ~ the data dimension ``N_d N_t`` (the
paper: "the effective rank is nearly of the order of the data dimension").

We compute the spectrum exactly through the data-space identity: the
nonzero eigenvalues of ``A^T A`` equal those of ``A A^T``, so with
``A = Gn^{-1/2} F Gp^{1/2}``,

.. math:: \\mathrm{spec}^+(\\tilde H_{like}) =
          \\mathrm{spec}^+(\\Gamma_n^{-1/2} F \\Gamma_p F^* \\Gamma_n^{-1/2}),

an ``N_d N_t x N_d N_t`` symmetric eigenproblem whose middle factor is
exactly the Phase 2 matrix ``K - Gamma_noise`` — already assembled.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.inference.bayes import ToeplitzBayesianInversion
from repro.inference.noise import NoiseModel
from repro.inference.prior import SpatioTemporalPrior
from repro.inference.toeplitz import BlockToeplitzOperator

__all__ = [
    "prior_preconditioned_misfit",
    "misfit_hessian_spectrum",
    "effective_rank",
    "spectrum_report",
]


def prior_preconditioned_misfit(
    F: BlockToeplitzOperator,
    prior: SpatioTemporalPrior,
    noise: NoiseModel,
    K_misfit: Optional[np.ndarray] = None,
    chunk: int = 256,
) -> np.ndarray:
    """The data-space matrix ``Gn^{-1/2} (F Gp F*) Gn^{-1/2}`` (dense).

    If the Phase 2 Gram ``F Gp F*`` (= ``K`` minus its noise diagonal) is
    already available, pass it as ``K_misfit`` to avoid re-assembly.
    """
    if K_misfit is None:
        inv = ToeplitzBayesianInversion(F, prior, noise)
        K = inv.assemble_data_space_hessian(method="fft", chunk=chunk)
        K_misfit = K - np.diag(noise.flat_variance())
    s = 1.0 / np.sqrt(noise.flat_variance())
    M = s[:, None] * K_misfit * s[None, :]
    return 0.5 * (M + M.T)


def misfit_hessian_spectrum(
    F: BlockToeplitzOperator,
    prior: SpatioTemporalPrior,
    noise: NoiseModel,
    K_misfit: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Descending eigenvalues of the prior-preconditioned misfit Hessian.

    These are exactly the nonzero eigenvalues of ``tilde-H_like`` in
    parameter space (plus ``max(0, N_m N_t - N_d N_t)`` zeros not
    returned).
    """
    M = prior_preconditioned_misfit(F, prior, noise, K_misfit=K_misfit)
    eigs = np.linalg.eigvalsh(M)[::-1]
    return np.maximum(eigs, 0.0)


def effective_rank(eigenvalues: np.ndarray, threshold: float = 1.0) -> int:
    """Number of eigenvalues above ``threshold`` (the data-informed modes)."""
    return int(np.sum(np.asarray(eigenvalues) > threshold))


def spectrum_report(
    eigenvalues: np.ndarray, data_dim: int, label: str = ""
) -> Tuple[int, float, str]:
    """Effective rank, its fraction of the data dimension, and a text row."""
    r = effective_rank(eigenvalues)
    frac = r / float(data_dim) if data_dim else 0.0
    txt = (
        f"{label:<28s} data dim {data_dim:6d}   eff. rank {r:6d} "
        f"({100 * frac:5.1f}% of data dim)   lambda_max {eigenvalues[0]:.3e}"
    )
    return r, frac, txt
