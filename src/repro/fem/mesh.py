"""Structured interval/quad/hex meshes with terrain-following ocean support.

Conventions
-----------
* The **last** coordinate axis is vertical (``z``).  Vertical element index
  0 touches the seafloor, the last index touches the sea surface at
  ``z = 0``.  Depth is positive; the seafloor sits at ``z = -depth``.
* Boundary side names: ``"bottom"`` / ``"surface"`` for the vertical axis,
  ``"west"`` / ``"east"`` for axis 0 and ``"south"`` / ``"north"`` for
  axis 1 when those axes are horizontal.
* Element and corner orderings are C-order over the per-axis indices (the
  last axis varies fastest), matching ``numpy.reshape``.

The hexahedral meshes here are the structured counterpart of the paper's
"3D multi-block hexahedral mesh of the CSZ, depicting bathymetry-adapted
meshing" (Fig. 1d): vertical mesh lines follow the bathymetry so the bottom
boundary is an exact mesh surface, which is what makes the seafloor-velocity
parameter a clean trace field.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["BoundarySpec", "StructuredMesh"]

# Side name -> (axis kind, end): axis kind resolved per dimension.
_VERTICAL_SIDES = {"bottom": 0, "surface": 1}
_HORIZONTAL_SIDES = {"west": (0, 0), "east": (0, 1), "south": (1, 0), "north": (1, 1)}


@dataclass(frozen=True)
class BoundarySpec:
    """A boundary face layer of a structured mesh.

    Attributes
    ----------
    name:
        Side name (``"bottom"``, ``"surface"``, ``"west"``, ...).
    axis:
        The mesh axis normal to this boundary.
    end:
        0 for the low end of the axis, 1 for the high end.
    elements:
        Flat indices of the elements adjacent to the boundary, in C-order
        over the remaining axes.
    layer_shape:
        Element counts along the non-normal axes (the face layer grid).
    """

    name: str
    axis: int
    end: int
    elements: np.ndarray
    layer_shape: Tuple[int, ...]


class StructuredMesh:
    """A structured tensor-topology mesh with (possibly) curved geometry.

    The topology is always a tensor grid of ``shape`` elements; the geometry
    is defined by the vertex coordinate array, which may follow bathymetry
    in the vertical direction.

    Parameters
    ----------
    vertices:
        Array of shape ``(n0+1, ..., n_{d-1}+1, d)`` with vertex
        coordinates.
    axes:
        Optional list of per-axis 1D coordinate arrays for axes whose
        coordinate is independent of the other indices (all horizontal axes
        of an ocean mesh).  Entries are ``None`` for curved axes.  Used for
        fast point location.
    """

    def __init__(
        self,
        vertices: np.ndarray,
        axes: Optional[List[Optional[np.ndarray]]] = None,
    ) -> None:
        v = np.ascontiguousarray(vertices, dtype=np.float64)
        if v.ndim < 2 or v.shape[-1] != v.ndim - 1:
            raise ValueError(
                "vertices must have shape (n0+1, ..., nd+1, dim) with "
                f"dim == ndim-1, got {v.shape}"
            )
        self.vertices = v
        self.dim = int(v.shape[-1])
        self.shape: Tuple[int, ...] = tuple(int(s) - 1 for s in v.shape[:-1])
        if any(s < 1 for s in self.shape):
            raise ValueError(f"each axis needs at least 1 element, got {self.shape}")
        if axes is None:
            axes = [None] * self.dim
        if len(axes) != self.dim:
            raise ValueError("axes must have one entry per dimension")
        self.axes: List[Optional[np.ndarray]] = [
            None if a is None else np.asarray(a, dtype=np.float64) for a in axes
        ]
        for d, a in enumerate(self.axes):
            if a is not None and a.shape != (self.shape[d] + 1,):
                raise ValueError(
                    f"axis {d} coordinate array must have length {self.shape[d] + 1}"
                )
        self._element_vertices: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def tensor(cls, axes: Sequence[np.ndarray]) -> "StructuredMesh":
        """Tensor-product mesh from strictly increasing per-axis coordinates."""
        axes = [np.asarray(a, dtype=np.float64).reshape(-1) for a in axes]
        for d, a in enumerate(axes):
            if a.size < 2 or np.any(np.diff(a) <= 0):
                raise ValueError(f"axis {d} must be strictly increasing, length >= 2")
        grids = np.meshgrid(*axes, indexing="ij")
        vertices = np.stack(grids, axis=-1)
        return cls(vertices, axes=list(axes))

    @classmethod
    def box(
        cls, lengths: Sequence[float], shape: Sequence[int], origin: Optional[Sequence[float]] = None
    ) -> "StructuredMesh":
        """Uniform box mesh of the given side ``lengths`` and element counts."""
        lengths = [float(l) for l in lengths]
        shape = [int(n) for n in shape]
        if len(lengths) != len(shape):
            raise ValueError("lengths and shape must have equal dimension")
        origin = [0.0] * len(lengths) if origin is None else [float(o) for o in origin]
        axes = [o + np.linspace(0.0, L, n + 1) for o, L, n in zip(origin, lengths, shape)]
        return cls.tensor(axes)

    @classmethod
    def ocean(
        cls,
        horizontal_axes: Sequence[np.ndarray],
        nz: int,
        depth: Callable[..., np.ndarray] | float,
        zhat: Optional[np.ndarray] = None,
    ) -> "StructuredMesh":
        """Terrain-following ocean mesh (Fig. 1d analogue).

        Parameters
        ----------
        horizontal_axes:
            Zero (1D column), one (2D vertical slice) or two (full 3D)
            strictly increasing horizontal vertex-coordinate arrays.
        nz:
            Number of element layers through the water column.
        depth:
            Positive water depth; either a constant or a callable
            ``depth(x)`` / ``depth(x, y)`` evaluated on the horizontal
            vertex grid (vectorized).
        zhat:
            Optional normalized vertical coordinates of the ``nz + 1``
            layer interfaces, increasing from 0 (seafloor) to 1 (surface).
            Defaults to uniform spacing.
        """
        haxes = [np.asarray(a, dtype=np.float64).reshape(-1) for a in horizontal_axes]
        nz = int(nz)
        if nz < 1:
            raise ValueError("nz must be >= 1")
        if zhat is None:
            zhat = np.linspace(0.0, 1.0, nz + 1)
        else:
            zhat = np.asarray(zhat, dtype=np.float64).reshape(-1)
            if zhat.size != nz + 1 or np.any(np.diff(zhat) <= 0):
                raise ValueError("zhat must be strictly increasing with nz+1 entries")
            if not (np.isclose(zhat[0], 0.0) and np.isclose(zhat[-1], 1.0)):
                raise ValueError("zhat must span [0, 1]")

        if haxes:
            hgrids = np.meshgrid(*haxes, indexing="ij")
            H = depth(*hgrids) if callable(depth) else np.full_like(hgrids[0], float(depth))
            H = np.asarray(H, dtype=np.float64)
            if H.shape != hgrids[0].shape:
                raise ValueError("depth callable must return the horizontal grid shape")
        else:
            H = np.asarray(float(depth) if not callable(depth) else float(depth()))
        if np.any(H <= 0):
            raise ValueError("water depth must be strictly positive everywhere")

        # z(i.., k) = -H(i..) * (1 - zhat_k):  zhat=0 -> seafloor, 1 -> surface.
        z = -H[..., None] * (1.0 - zhat)
        dim = len(haxes) + 1
        vshape = tuple(a.size for a in haxes) + (nz + 1,)
        vertices = np.empty(vshape + (dim,), dtype=np.float64)
        if haxes:
            for d, g in enumerate(hgrids):
                vertices[..., d] = g[..., None]
        vertices[..., -1] = z
        axes: List[Optional[np.ndarray]] = list(haxes) + [None]
        if not callable(depth):
            # Flat-bottom columns have a straight z axis too.
            axes[-1] = z.reshape(-1, nz + 1)[0]
        return cls(vertices, axes=axes)

    # ------------------------------------------------------------------
    # Topology / geometry queries
    # ------------------------------------------------------------------
    @property
    def n_elements(self) -> int:
        """Total number of elements."""
        return int(np.prod(self.shape))

    @property
    def n_vertices(self) -> int:
        """Total number of vertices."""
        return int(np.prod([s + 1 for s in self.shape]))

    def element_vertices(self) -> np.ndarray:
        """Corner coordinates per element: ``(nelem, 2**dim, dim)``.

        Corners are ordered C-order over the per-axis corner indices
        ``(c0, ..., c_{d-1})`` with the last axis varying fastest.  The
        array is cached; treat it as read-only.
        """
        if self._element_vertices is not None:
            return self._element_vertices
        d = self.dim
        idx = [np.arange(n) for n in self.shape]
        grids = np.meshgrid(*idx, indexing="ij")  # element index grids
        corners = []
        for corner_bits in np.ndindex(*([2] * d)):
            sel = tuple(g + b for g, b in zip(grids, corner_bits))
            corners.append(self.vertices[sel])  # (shape..., dim)
        ev = np.stack([c.reshape(-1, d) for c in corners], axis=1)
        self._element_vertices = np.ascontiguousarray(ev)
        return self._element_vertices

    def element_index(self, multi_index: Sequence[int]) -> int:
        """Flat element index of a per-axis element multi-index."""
        return int(np.ravel_multi_index(tuple(multi_index), self.shape))

    def side_names(self) -> List[str]:
        """All boundary side names valid for this mesh dimension."""
        names = ["bottom", "surface"]
        if self.dim >= 2:
            names += ["west", "east"]
        if self.dim >= 3:
            names += ["south", "north"]
        return names

    def _side_axis_end(self, side: str) -> Tuple[int, int]:
        if side in _VERTICAL_SIDES:
            return self.dim - 1, _VERTICAL_SIDES[side]
        if side in _HORIZONTAL_SIDES:
            axis, end = _HORIZONTAL_SIDES[side]
            if axis >= self.dim - 1:
                raise ValueError(f"side {side!r} does not exist for dim={self.dim}")
            return axis, end
        raise ValueError(f"unknown side {side!r}; valid: {self.side_names()}")

    def boundary(self, side: str) -> BoundarySpec:
        """Boundary layer description for the named side."""
        axis, end = self._side_axis_end(side)
        idx = [np.arange(n) for n in self.shape]
        idx[axis] = np.array([0 if end == 0 else self.shape[axis] - 1])
        grids = np.meshgrid(*idx, indexing="ij")
        flat = np.ravel_multi_index(tuple(g.reshape(-1) for g in grids), self.shape)
        layer_shape = tuple(n for d, n in enumerate(self.shape) if d != axis)
        return BoundarySpec(side, axis, end, np.ascontiguousarray(flat), layer_shape)

    def lateral_sides(self) -> List[str]:
        """Names of all lateral (non-vertical-axis) boundary sides."""
        return [s for s in self.side_names() if s not in ("bottom", "surface")]

    def min_edge_length(self) -> float:
        """Minimum element edge length over the whole mesh (CFL input)."""
        ev = self.element_vertices()  # (nelem, 2**d, d)
        d = self.dim
        best = np.inf
        for axis in range(d):
            # Edge along `axis`: corners differing only in bit `axis`.
            stride = 1 << (d - 1 - axis)
            for c in range(2**d):
                if (c // stride) % 2 == 0:
                    e = ev[:, c + stride, :] - ev[:, c, :]
                    best = min(best, float(np.min(np.linalg.norm(e, axis=-1))))
        return best

    def bounding_box(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(lo, hi)`` coordinate bounds of the mesh."""
        flat = self.vertices.reshape(-1, self.dim)
        return flat.min(axis=0), flat.max(axis=0)

    def locate_horizontal(self, points: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Locate points in the horizontal axes of the mesh.

        Parameters
        ----------
        points:
            ``(npts, dim-1)`` horizontal coordinates (or ``(npts, 0)`` /
            any shape with zero columns for a 1D column mesh).

        Returns
        -------
        elem_multi:
            ``(npts, dim-1)`` integer element indices per horizontal axis.
        ref:
            ``(npts, dim-1)`` reference coordinates in ``[-1, 1]``.
        """
        nh = self.dim - 1
        pts = np.asarray(points, dtype=np.float64).reshape(-1, nh) if nh else np.zeros((len(np.atleast_1d(points)) if np.ndim(points) else 1, 0))
        elem = np.empty(pts.shape, dtype=np.int64)
        ref = np.empty(pts.shape, dtype=np.float64)
        for d in range(nh):
            a = self.axes[d]
            if a is None:
                raise ValueError(f"horizontal axis {d} has no 1D coordinate array")
            x = pts[:, d]
            if np.any(x < a[0] - 1e-12) or np.any(x > a[-1] + 1e-12):
                raise ValueError(f"point coordinate outside mesh on axis {d}")
            e = np.clip(np.searchsorted(a, x, side="right") - 1, 0, a.size - 2)
            lo, hi = a[e], a[e + 1]
            elem[:, d] = e
            ref[:, d] = np.clip(2.0 * (x - lo) / (hi - lo) - 1.0, -1.0, 1.0)
        return elem, ref

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"StructuredMesh(dim={self.dim}, shape={self.shape}, nelem={self.n_elements})"
