"""Partial-assembly / matrix-free gradient kernels (the paper's Fig. 7).

The dominant cost of the acoustic--gravity RK4 solver is the repeated
application of the two off-diagonal blocks of the operator in Eq. (4):

* ``G  : p -> (grad p, tau)``  — weak gradient moments at velocity points,
* ``G^T: u -> (u, grad v)``    — its exact transpose into pressure space.

This module implements those two actions in **five interchangeable kernel
variants** mirroring the optimization ladder in the paper's Fig. 7.  All
variants produce identical results (up to floating-point associativity) but
differ in batching, fusion, and recomputation strategy — the NumPy analogues
of the CUDA/HIP shared-memory and kernel-fusion optimizations:

``initial``
    Per-element Python loop (the "Initial PA" baseline; no batching —
    analogous to a kernel without shared-memory staging).
``shared``
    One batched ``einsum`` per contraction stage over all elements
    ("Shared PA": the 13x-class speedup from batching/staging).
``optimized``
    Staged, sum-factorized ``matmul`` pipeline on contiguous reshaped
    views with preallocation ("Optimized PA", used in the scaling runs).
``fused``
    ``optimized`` plus a fused ``apply_pair`` that computes ``G p`` and
    ``G^T u`` in one pass, sharing workspace ("Fused PA", peak DOF/s).
``mf``
    Matrix-free: geometric factors are **recomputed from element vertices
    at every application** instead of stored ("Fused MF": more FLOPs,
    fewer bytes of persistent state, lower DOF throughput).

Sum factorization
-----------------
With tensor-product bases, interpolation/differentiation to quadrature
points factorizes into one small dense matrix per axis.  In 3D the gradient
costs 8 axis-contractions per application instead of a single
``O(nloc * nq * d)`` dense contraction — the core MFEM insight that makes
high-order kernels memory-bound rather than compute-bound.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.fem.geometry import ElementGeometry

__all__ = [
    "KERNEL_VARIANTS",
    "grad_geometric_factors",
    "GradientKernel",
    "make_gradient_kernel",
    "kernel_flop_byte_counts",
]

KERNEL_VARIANTS: Tuple[str, ...] = ("initial", "shared", "optimized", "fused", "mf")


def grad_geometric_factors(geom: ElementGeometry, weights: np.ndarray) -> np.ndarray:
    """Fused gradient geometric factors ``A[e,q,i,m] = w_q detJ (J^{-T})_{im}``.

    With these, the weak gradient moment is ``mom_i = sum_m A[i,m] dhat_m p``
    where ``dhat`` is the reference-coordinate gradient.  Storing only this
    fused tensor (instead of ``J``, ``J^{-1}``, ``detJ`` separately) is one
    of the paper's Section VII-B memory optimizations.
    """
    w = np.asarray(weights, dtype=np.float64)
    # (J^{-T})_{im} = invj[m, i]
    A = np.einsum("eq,eqmi->eqim", geom.detj * w[None, :], geom.invj, optimize=True)
    return np.ascontiguousarray(A)


def _contract_axis(op: np.ndarray, x: np.ndarray, axis: int) -> np.ndarray:
    """Contract ``x`` along ``axis`` with ``op (m, n)`` via batched matmul.

    ``x`` must be contiguous (each pipeline stage produces a fresh
    contiguous array, so this holds by construction).
    """
    lead = int(np.prod(x.shape[:axis], dtype=np.int64))
    n = x.shape[axis]
    trail = int(np.prod(x.shape[axis + 1 :], dtype=np.int64))
    y = np.matmul(op, x.reshape(lead, n, trail))
    return y.reshape(x.shape[:axis] + (op.shape[0],) + x.shape[axis + 1 :])


def _grad_stages_matmul(
    pe: np.ndarray, B: np.ndarray, D: np.ndarray, d: int
) -> List[np.ndarray]:
    """Reference gradients per direction via the staged matmul pipeline.

    ``pe``: ``(ne, np1, ..., np1, k)`` nodal element values.
    Returns ``d`` arrays of shape ``(ne, nq1, ..., nq1, k)``.
    """
    if d == 1:
        return [_contract_axis(D, pe, 1)]
    if d == 2:
        tb = _contract_axis(B, pe, 2)  # values along axis-1 dofs
        g0 = _contract_axis(D, tb, 1)
        td = _contract_axis(D, pe, 2)
        g1 = _contract_axis(B, td, 1)
        return [g0, g1]
    if d == 3:
        tc = _contract_axis(B, pe, 3)
        tbc = _contract_axis(B, tc, 2)
        g0 = _contract_axis(D, tbc, 1)
        tdb = _contract_axis(D, tc, 2)
        g1 = _contract_axis(B, tdb, 1)
        tdc = _contract_axis(D, pe, 3)
        tb2 = _contract_axis(B, tdc, 2)
        g2 = _contract_axis(B, tb2, 1)
        return [g0, g1, g2]
    raise ValueError(f"unsupported dimension {d}")


def _gradT_stages_matmul(
    t: Sequence[np.ndarray], B: np.ndarray, D: np.ndarray, d: int
) -> np.ndarray:
    """Transpose of :func:`_grad_stages_matmul`: sum of per-direction pulls."""
    Bt, Dt = B.T.copy(), D.T.copy()
    if d == 1:
        return _contract_axis(Dt, t[0], 1)
    if d == 2:
        w0 = _contract_axis(Dt, t[0], 1)
        w1 = _contract_axis(Bt, t[1], 1)
        return _contract_axis(Bt, w0, 2) + _contract_axis(Dt, w1, 2)
    if d == 3:
        w0 = _contract_axis(Dt, t[0], 1)
        w1 = _contract_axis(Bt, t[1], 1)
        w2 = _contract_axis(Bt, t[2], 1)
        s = _contract_axis(Bt, w0, 2) + _contract_axis(Dt, w1, 2)
        x2 = _contract_axis(Bt, w2, 2)
        return _contract_axis(Bt, s, 3) + _contract_axis(Dt, x2, 3)
    raise ValueError(f"unsupported dimension {d}")


def _grad_einsum(pe: np.ndarray, B: np.ndarray, D: np.ndarray, d: int) -> List[np.ndarray]:
    """Reference gradients via whole-contraction einsum (shared PA engine)."""
    if d == 1:
        return [np.einsum("qa,eak->eqk", D, pe, optimize=True)]
    if d == 2:
        g0 = np.einsum("qa,rb,eabk->eqrk", D, B, pe, optimize=True)
        g1 = np.einsum("qa,rb,eabk->eqrk", B, D, pe, optimize=True)
        return [g0, g1]
    if d == 3:
        g0 = np.einsum("qa,rb,sc,eabck->eqrsk", D, B, B, pe, optimize=True)
        g1 = np.einsum("qa,rb,sc,eabck->eqrsk", B, D, B, pe, optimize=True)
        g2 = np.einsum("qa,rb,sc,eabck->eqrsk", B, B, D, pe, optimize=True)
        return [g0, g1, g2]
    raise ValueError(f"unsupported dimension {d}")


def _gradT_einsum(t: Sequence[np.ndarray], B: np.ndarray, D: np.ndarray, d: int) -> np.ndarray:
    """Transpose of :func:`_grad_einsum`."""
    if d == 1:
        return np.einsum("qa,eqk->eak", D, t[0], optimize=True)
    if d == 2:
        y = np.einsum("qa,rb,eqrk->eabk", D, B, t[0], optimize=True)
        y += np.einsum("qa,rb,eqrk->eabk", B, D, t[1], optimize=True)
        return y
    if d == 3:
        y = np.einsum("qa,rb,sc,eqrsk->eabck", D, B, B, t[0], optimize=True)
        y += np.einsum("qa,rb,sc,eqrsk->eabck", B, D, B, t[1], optimize=True)
        y += np.einsum("qa,rb,sc,eqrsk->eabck", B, B, D, t[2], optimize=True)
        return y
    raise ValueError(f"unsupported dimension {d}")


class GradientKernel:
    """Weak-gradient kernel: ``apply`` (G), ``apply_transpose`` (G^T).

    Parameters
    ----------
    B, D:
        1D value / derivative interpolation matrices, shape
        ``(nq1, np1)``, from the H1 nodes to the velocity (Gauss) points.
    A:
        Fused geometric factors ``(ne, nq, d, d)`` from
        :func:`grad_geometric_factors`; may be ``None`` for the ``mf``
        variant, which recomputes them each call.
    variant:
        One of :data:`KERNEL_VARIANTS`.
    element_vertices, weights:
        Required for the ``mf`` variant (on-the-fly geometry).
    """

    def __init__(
        self,
        B: np.ndarray,
        D: np.ndarray,
        A: Optional[np.ndarray],
        variant: str = "optimized",
        element_vertices: Optional[np.ndarray] = None,
        velocity_nodes_1d: Optional[np.ndarray] = None,
        weights: Optional[np.ndarray] = None,
    ) -> None:
        if variant not in KERNEL_VARIANTS:
            raise ValueError(f"variant must be one of {KERNEL_VARIANTS}, got {variant!r}")
        self.B = np.ascontiguousarray(B, dtype=np.float64)
        self.D = np.ascontiguousarray(D, dtype=np.float64)
        self.variant = variant
        self.nq1, self.np1 = self.B.shape
        if variant == "mf":
            if element_vertices is None or weights is None or velocity_nodes_1d is None:
                raise ValueError("mf variant needs element_vertices, velocity nodes, weights")
            self._vertices = np.ascontiguousarray(element_vertices, dtype=np.float64)
            self.dim = int(self._vertices.shape[-1])
            self._weights = np.asarray(weights, dtype=np.float64)
            self._vnodes = np.asarray(velocity_nodes_1d, dtype=np.float64)
            self.A = None
            self.ne = int(self._vertices.shape[0])
        else:
            if A is None:
                raise ValueError(f"variant {variant!r} needs precomputed factors A")
            self.A = np.ascontiguousarray(A, dtype=np.float64)
            self.ne, _, self.dim, _ = self.A.shape
            self._vertices = None
            self._weights = None
            self._vnodes = None
        self.nq = self.nq1**self.dim
        self.nloc = self.np1**self.dim

    # ------------------------------------------------------------------
    def _factors(self) -> np.ndarray:
        """Stored (PA) or recomputed (MF) geometric factors."""
        if self.A is not None:
            return self.A
        geom = ElementGeometry.compute(
            self._vertices, [self._vnodes] * self.dim, check_positive=False
        )
        return grad_geometric_factors(geom, self._weights)

    def _pe_tensor(self, pe: np.ndarray) -> np.ndarray:
        ne, nloc = pe.shape[0], pe.shape[1]
        k = pe.shape[2] if pe.ndim == 3 else 1
        shape = (ne,) + (self.np1,) * self.dim + (k,)
        return np.ascontiguousarray(pe).reshape(shape)

    def apply(self, pe: np.ndarray) -> np.ndarray:
        """``G pe``: moments at velocity points, ``(ne, nq, d, k)``.

        ``pe`` is an E-vector ``(ne, nloc, k)`` (a trailing batch axis ``k``
        is optional and preserved).
        """
        squeeze = pe.ndim == 2
        pt = self._pe_tensor(pe)
        ne, k = pt.shape[0], pt.shape[-1]
        d = self.dim
        A = self._factors()
        if self.variant == "initial":
            out = np.empty((ne, self.nq, d, k))
            for e in range(ne):
                g = _grad_einsum(pt[e : e + 1], self.B, self.D, d)
                ghat = np.stack([x.reshape(1, self.nq, k) for x in g], axis=2)
                np.einsum("eqim,eqmk->eqik", A[e : e + 1], ghat, out=out[e : e + 1])
        elif self.variant == "shared":
            g = _grad_einsum(pt, self.B, self.D, d)
            ghat = np.stack([x.reshape(ne, self.nq, k) for x in g], axis=2)
            out = np.einsum("eqim,eqmk->eqik", A, ghat, optimize=True)
        else:  # optimized / fused / mf share the matmul engine
            g = _grad_stages_matmul(pt, self.B, self.D, d)
            ghat = np.stack([x.reshape(ne, self.nq, k) for x in g], axis=2)
            out = np.einsum("eqim,eqmk->eqik", A, ghat, optimize=True)
        return out[..., 0] if squeeze else out

    def apply_transpose(self, w: np.ndarray) -> np.ndarray:
        """``G^T w``: pull moments back to H1 E-vector ``(ne, nloc, k)``."""
        squeeze = w.ndim == 3
        if squeeze:
            w = w[..., None]
        ne, nq, d, k = w.shape
        A = self._factors()
        if self.variant == "initial":
            out = np.empty((ne, self.nloc, k))
            for e in range(ne):
                t = np.einsum("eqim,eqik->eqmk", A[e : e + 1], w[e : e + 1])
                ts = [
                    np.ascontiguousarray(t[..., m, :]).reshape(
                        (1,) + (self.nq1,) * d + (k,)
                    )
                    for m in range(d)
                ]
                out[e : e + 1] = _gradT_einsum(ts, self.B, self.D, d).reshape(
                    1, self.nloc, k
                )
            return out[..., 0] if squeeze else out
        t = np.einsum("eqim,eqik->eqmk", A, w, optimize=True)
        ts = [
            np.ascontiguousarray(t[..., m, :]).reshape((ne,) + (self.nq1,) * d + (k,))
            for m in range(d)
        ]
        if self.variant == "shared":
            y = _gradT_einsum(ts, self.B, self.D, d)
        else:
            y = _gradT_stages_matmul(ts, self.B, self.D, d)
        y = y.reshape(ne, self.nloc, k)
        return y[..., 0] if squeeze else y

    def apply_pair(
        self, pe: np.ndarray, w: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Fused ``(G pe, G^T w)``: one pass, shared geometric-factor reads.

        For the ``fused`` and ``mf`` variants the factors are materialized
        once and both directions are computed back-to-back; other variants
        simply delegate (the fused entry point is still valid for them).
        """
        if self.variant in ("fused", "mf"):
            A = self._factors()
            squeeze = pe.ndim == 2
            pt = self._pe_tensor(pe)
            ne, k = pt.shape[0], pt.shape[-1]
            d = self.dim
            g = _grad_stages_matmul(pt, self.B, self.D, d)
            ghat = np.stack([x.reshape(ne, self.nq, k) for x in g], axis=2)
            mom = np.einsum("eqim,eqmk->eqik", A, ghat, optimize=True)
            ww = w if w.ndim == 4 else w[..., None]
            t = np.einsum("eqim,eqik->eqmk", A, ww, optimize=True)
            ts = [
                np.ascontiguousarray(t[..., m, :]).reshape((ne,) + (self.nq1,) * d + (k,))
                for m in range(d)
            ]
            y = _gradT_stages_matmul(ts, self.B, self.D, d).reshape(ne, self.nloc, k)
            if squeeze:
                return mom[..., 0], y[..., 0]
            return mom, y
        return self.apply(pe), self.apply_transpose(w)


def make_gradient_kernel(
    variant: str,
    B: np.ndarray,
    D: np.ndarray,
    geom: Optional[ElementGeometry] = None,
    weights: Optional[np.ndarray] = None,
    element_vertices: Optional[np.ndarray] = None,
    velocity_nodes_1d: Optional[np.ndarray] = None,
) -> GradientKernel:
    """Factory: build a :class:`GradientKernel` of the requested variant.

    PA variants consume precomputed geometry (``geom`` + ``weights``); the
    ``mf`` variant consumes raw ``element_vertices`` and recomputes geometry
    per application.
    """
    if variant == "mf":
        return GradientKernel(
            B,
            D,
            None,
            variant="mf",
            element_vertices=element_vertices,
            velocity_nodes_1d=velocity_nodes_1d,
            weights=weights,
        )
    if geom is None or weights is None:
        raise ValueError("PA variants require geom and weights")
    A = grad_geometric_factors(geom, weights)
    return GradientKernel(B, D, A, variant=variant)


def kernel_flop_byte_counts(
    ne: int, np1: int, nq1: int, dim: int, k: int = 1, variant: str = "optimized"
) -> Dict[str, float]:
    """Analytic FLOP and byte counts for one ``apply`` (manual count).

    Mirrors the paper's manually-calculated FLOP/byte metrics of Fig. 7.
    Counts: sum-factorized contraction stages (2mnT flops each) plus the
    geometric-factor contraction; bytes: dof loads/stores plus factor reads
    (PA) or vertex reads + factor recomputation flops (MF).
    """
    nq = nq1**dim
    nloc = np1**dim
    # Stage table {dim: list of (m, n, lead*trail/ne relative sizes)}.
    def stage_flops() -> float:
        total = 0.0
        if dim == 1:
            total += 2 * nq1 * np1
        elif dim == 2:
            total += 2 * (nq1 * np1 * np1 + nq1 * nq1 * np1)  # B then D path 0
            total += 2 * (nq1 * np1 * np1 + nq1 * nq1 * np1)  # path 1
        else:
            # 8 stages as implemented in _grad_stages_matmul.
            total += 2 * nq1 * np1 * np1 * np1      # tc
            total += 2 * nq1 * nq1 * np1 * np1      # tbc
            total += 2 * nq1 * nq1 * nq1 * np1      # g0
            total += 2 * nq1 * nq1 * np1 * np1      # tdb
            total += 2 * nq1 * nq1 * nq1 * np1      # g1
            total += 2 * nq1 * np1 * np1 * np1      # tdc
            total += 2 * nq1 * nq1 * np1 * np1      # tb2
            total += 2 * nq1 * nq1 * nq1 * np1      # g2
        return total * ne * k

    flops = stage_flops()
    flops += 2.0 * ne * nq * dim * dim * k  # geometric factor contraction
    bytes_pa = 8.0 * (ne * nloc * k + ne * nq * dim * k + ne * nq * dim * dim)
    if variant == "mf":
        # Recompute J, detJ, invJ from 2^dim corner vertices each apply.
        flops += ne * nq * (2.0 * (2**dim) * dim * dim + 30.0 * dim)
        bytes_mf = 8.0 * (ne * nloc * k + ne * nq * dim * k + ne * (2**dim) * dim)
        return {"flops": flops, "bytes": bytes_mf, "dofs": float(ne * nloc * k)}
    return {"flops": flops, "bytes": bytes_pa, "dofs": float(ne * nloc * k)}
