"""Quadrature rules on the reference interval and reference boxes.

Two families are used, mirroring the paper's MFEM discretization:

* **Gauss--Legendre** (``gauss_legendre``): interior points, exact for
  polynomials of degree ``2n - 1``.  These points double as the nodes of the
  discontinuous ``L2`` velocity space, so that the velocity mass matrix is
  diagonal by collocation.
* **Gauss--Lobatto--Legendre** (``gauss_lobatto``): includes the interval
  endpoints, exact for degree ``2n - 3``.  These points double as the nodes
  of the continuous ``H1`` pressure space, so that the (lumped) pressure
  mass matrix is diagonal by collocation — the spectral-element analogue of
  MFEM's lumped mass used in the paper's explicit RK4 stepping.

All rules are produced on the bi-unit interval ``[-1, 1]`` in float64.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Iterable, List, Tuple

import numpy as np

__all__ = [
    "QuadratureRule",
    "gauss_legendre",
    "gauss_lobatto",
    "tensor_rule",
    "tensor_points",
]


@dataclass(frozen=True)
class QuadratureRule:
    """An immutable 1D quadrature rule ``(points, weights)`` on ``[-1, 1]``.

    Attributes
    ----------
    points:
        Strictly increasing quadrature nodes, shape ``(n,)``.
    weights:
        Positive quadrature weights, shape ``(n,)``; they sum to 2 (the
        measure of the reference interval).
    """

    points: np.ndarray
    weights: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(self, "points", np.asarray(self.points, dtype=np.float64))
        object.__setattr__(self, "weights", np.asarray(self.weights, dtype=np.float64))
        if self.points.ndim != 1 or self.points.shape != self.weights.shape:
            raise ValueError("points and weights must be 1D arrays of equal length")

    @property
    def n(self) -> int:
        """Number of quadrature points."""
        return int(self.points.shape[0])

    def integrate(self, values: np.ndarray, axis: int = -1) -> np.ndarray:
        """Apply the rule to sampled ``values`` along ``axis``."""
        values = np.asarray(values, dtype=np.float64)
        return np.tensordot(values, self.weights, axes=([axis], [0]))

    def mapped(self, a: float, b: float) -> "QuadratureRule":
        """Affinely map the rule from ``[-1, 1]`` to ``[a, b]``."""
        if not b > a:
            raise ValueError(f"interval must satisfy b > a, got [{a}, {b}]")
        half = 0.5 * (b - a)
        mid = 0.5 * (a + b)
        return QuadratureRule(mid + half * self.points, half * self.weights)


@lru_cache(maxsize=None)
def gauss_legendre(n: int) -> QuadratureRule:
    """Return the ``n``-point Gauss--Legendre rule on ``[-1, 1]``.

    Exact for polynomials of degree ``2n - 1``.
    """
    if n < 1:
        raise ValueError(f"Gauss-Legendre rule needs n >= 1, got {n}")
    x, w = np.polynomial.legendre.leggauss(n)
    return QuadratureRule(x, w)


@lru_cache(maxsize=None)
def gauss_lobatto(n: int) -> QuadratureRule:
    """Return the ``n``-point Gauss--Lobatto--Legendre rule on ``[-1, 1]``.

    Includes both endpoints; exact for polynomials of degree ``2n - 3``.
    The interior nodes are the roots of ``P'_{n-1}`` (the derivative of the
    Legendre polynomial of degree ``n - 1``), and the weights are

    .. math:: w_i = \\frac{2}{n (n - 1) \\, [P_{n-1}(x_i)]^2}.
    """
    if n < 2:
        raise ValueError(f"Gauss-Lobatto rule needs n >= 2, got {n}")
    if n == 2:
        return QuadratureRule(np.array([-1.0, 1.0]), np.array([1.0, 1.0]))
    # Interior nodes: roots of P'_{n-1}.
    leg = np.polynomial.legendre.Legendre.basis(n - 1)
    interior = leg.deriv().roots()
    x = np.concatenate(([-1.0], np.real(np.sort(interior)), [1.0]))
    pn = leg(x)
    w = 2.0 / (n * (n - 1) * pn**2)
    return QuadratureRule(x, w)


def tensor_points(rules: Iterable[QuadratureRule]) -> np.ndarray:
    """Tensor-product points of 1D rules, shape ``(prod n_i, dim)``.

    The ordering is C-order over the per-axis indices: the **last** axis
    varies fastest, matching ``numpy.reshape`` of per-axis tensors.
    """
    rules = list(rules)
    grids = np.meshgrid(*[r.points for r in rules], indexing="ij")
    return np.stack([g.reshape(-1) for g in grids], axis=-1)


def tensor_rule(rules: Iterable[QuadratureRule]) -> Tuple[np.ndarray, np.ndarray]:
    """Tensor-product rule: ``(points (nq, dim), weights (nq,))``.

    Same C-ordering convention as :func:`tensor_points`.
    """
    rules = list(rules)
    pts = tensor_points(rules)
    w: np.ndarray = np.array([1.0])
    for r in rules:
        w = np.multiply.outer(w, r.weights)
    return pts, w.reshape(-1)


def min_node_gap(rule: QuadratureRule) -> float:
    """Smallest spacing between adjacent nodes (used for CFL estimates)."""
    return float(np.min(np.diff(rule.points)))


def per_axis_rules(name: str, ns: Iterable[int]) -> List[QuadratureRule]:
    """Build one rule per axis; ``name`` is ``'gauss'`` or ``'lobatto'``."""
    factory = {"gauss": gauss_legendre, "lobatto": gauss_lobatto}[name]
    return [factory(int(n)) for n in ns]
