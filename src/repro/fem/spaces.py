"""Finite element spaces: continuous H1 (GLL-nodal) and discontinuous L2.

The mixed discretization mirrors the paper's MFEM setup (Section VI-C):
order-``p`` continuous pressure paired with order-``p-1`` discontinuous
velocity components.  Two layout concepts from MFEM are reproduced exactly:

* **L-vector**: the globally-numbered dof vector (continuity built in).
* **E-vector**: element-local dof blocks ``(nelem, (p+1)^d)``.

``H1Space.gather`` maps L to E by fancy indexing; the transpose scatter-add
is a precomputed sparse CSR matrix (deterministic summation order, fast for
multi-column states).  The L2 velocity space is collocated at Gauss points,
so its dofs *are* the quadrature values and its mass matrix is diagonal.
"""

from __future__ import annotations

from functools import cached_property
from typing import List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from repro.fem.basis import LagrangeBasis1D
from repro.fem.geometry import ElementGeometry
from repro.fem.mesh import BoundarySpec, StructuredMesh
from repro.fem.quadrature import gauss_legendre, gauss_lobatto

__all__ = ["H1Space", "L2Space", "TraceGrid"]


class TraceGrid:
    """The tensor grid of H1 dofs on one boundary side.

    This is the discrete home of the seafloor-velocity parameter field
    ``m(x, t)``: for ``side="bottom"`` the trace grid of the pressure space
    is exactly the paper's ``N_m`` spatial parameter points.

    Attributes
    ----------
    side:
        Boundary side name.
    dofs:
        Flat global H1 dof indices, C-ordered over ``grid_shape``.
    grid_shape:
        Node counts along the in-face axes.
    coords:
        ``(n_trace, dim)`` physical coordinates of the trace nodes.
    axes:
        Per-in-face-axis 1D node coordinate arrays (available when the
        corresponding mesh axes are straight), used by the prior's tensor
        FEM assembly.
    """

    def __init__(
        self,
        side: str,
        dofs: np.ndarray,
        grid_shape: Tuple[int, ...],
        coords: np.ndarray,
        axes: List[Optional[np.ndarray]],
    ) -> None:
        self.side = side
        self.dofs = np.ascontiguousarray(dofs, dtype=np.int64)
        self.grid_shape = tuple(int(s) for s in grid_shape)
        self.coords = np.ascontiguousarray(coords, dtype=np.float64)
        self.axes = axes

    @property
    def n(self) -> int:
        """Number of trace nodes."""
        return int(self.dofs.size)


class H1Space:
    """Continuous nodal space of order ``p`` on GLL points.

    Parameters
    ----------
    mesh:
        A :class:`~repro.fem.mesh.StructuredMesh`.
    order:
        Polynomial order ``p >= 1``.
    """

    def __init__(self, mesh: StructuredMesh, order: int) -> None:
        if order < 1:
            raise ValueError(f"H1 order must be >= 1, got {order}")
        self.mesh = mesh
        self.order = int(order)
        self.dim = mesh.dim
        self.nodes_1d = gauss_lobatto(self.order + 1).points
        self.weights_1d = gauss_lobatto(self.order + 1).weights
        self.basis_1d = LagrangeBasis1D(self.nodes_1d)
        p = self.order
        self.grid_shape: Tuple[int, ...] = tuple(n * p + 1 for n in mesh.shape)
        self.ndof = int(np.prod(self.grid_shape))
        self.nloc = (p + 1) ** self.dim

    # ------------------------------------------------------------------
    # L-vector <-> E-vector maps
    # ------------------------------------------------------------------
    @cached_property
    def gather(self) -> np.ndarray:
        """E-vector index map: ``(nelem, nloc)`` global dof per local node.

        For element multi-index ``(i_0, ..)`` and local node ``(k_0, ..)``
        the global grid index per axis is ``i*p + k``; the flat global dof
        is the C-order ravel over ``grid_shape``.  Elements and local nodes
        are both C-ordered.
        """
        p = self.order
        d = self.dim
        strides = np.ones(d, dtype=np.int64)
        for ax in range(d - 2, -1, -1):
            strides[ax] = strides[ax + 1] * self.grid_shape[ax + 1]
        elem_grids = np.meshgrid(*[np.arange(n) for n in self.mesh.shape], indexing="ij")
        loc_grids = np.meshgrid(*[np.arange(p + 1)] * d, indexing="ij")
        g = np.zeros(tuple(self.mesh.shape) + tuple([p + 1] * d), dtype=np.int64)
        for ax in range(d):
            ge = elem_grids[ax].reshape(self.mesh.shape + tuple([1] * d))
            gl = loc_grids[ax].reshape(tuple([1] * d) + tuple([p + 1] * d))
            g += (ge * p + gl) * strides[ax]
        return np.ascontiguousarray(g.reshape(self.mesh.n_elements, self.nloc))

    @cached_property
    def scatter_matrix(self) -> sp.csr_matrix:
        """Sparse transpose of the gather: ``(ndof, nelem*nloc)`` 0/1 CSR.

        ``scatter_matrix @ e_vec.reshape(nelem*nloc, k)`` performs the
        scatter-add (assembly) with deterministic summation order.
        """
        rows = self.gather.reshape(-1)
        cols = np.arange(rows.size)
        data = np.ones(rows.size)
        return sp.csr_matrix(
            (data, (rows, cols)), shape=(self.ndof, rows.size)
        )

    def to_evector(self, x: np.ndarray) -> np.ndarray:
        """Gather an L-vector ``(ndof, ...)`` to E-vector ``(nelem, nloc, ...)``."""
        return x[self.gather]

    def from_evector_add(self, e: np.ndarray) -> np.ndarray:
        """Scatter-add an E-vector back to an L-vector (assembly transpose)."""
        k = e.shape[2:] if e.ndim > 2 else ()
        flat = e.reshape(self.mesh.n_elements * self.nloc, -1)
        out = self.scatter_matrix @ flat
        return np.ascontiguousarray(out.reshape((self.ndof,) + k))

    @cached_property
    def multiplicity(self) -> np.ndarray:
        """How many elements share each global dof."""
        return np.bincount(self.gather.reshape(-1), minlength=self.ndof).astype(
            np.float64
        )

    # ------------------------------------------------------------------
    # Coordinates & boundaries
    # ------------------------------------------------------------------
    @cached_property
    def dof_coords(self) -> np.ndarray:
        """Physical coordinates of the global dofs, ``(ndof, dim)``."""
        geom = ElementGeometry.compute(
            self.mesh.element_vertices(), [self.nodes_1d] * self.dim
        )
        out = np.empty((self.ndof, self.dim), dtype=np.float64)
        out[self.gather.reshape(-1)] = geom.coords.reshape(-1, self.dim)
        return out

    def axis_node_coords(self, axis: int) -> np.ndarray:
        """1D global node coordinates along a straight mesh axis."""
        a = self.mesh.axes[axis]
        if a is None:
            raise ValueError(f"mesh axis {axis} is not straight")
        p = self.order
        ref = 0.5 * (self.nodes_1d + 1.0)  # [0, 1]
        lo, hi = a[:-1], a[1:]
        nodes = lo[:, None] + (hi - lo)[:, None] * ref[None, :]  # (n, p+1)
        out = np.empty(self.grid_shape[axis], dtype=np.float64)
        # Write every element's nodes; shared endpoints receive equal values.
        for k in range(p + 1):
            out[np.arange(a.size - 1) * p + k] = nodes[:, k]
        return out

    def boundary_dof_grid(self, side: str) -> Tuple[np.ndarray, Tuple[int, ...]]:
        """Global dof indices of one side, with the in-face grid shape."""
        spec = self.mesh.boundary(side)
        slicer: List[slice] = [slice(None)] * self.dim
        slicer[spec.axis] = slice(0, 1) if spec.end == 0 else slice(-1, None)
        grid = np.arange(self.ndof).reshape(self.grid_shape)
        face = grid[tuple(slicer)]
        face = np.squeeze(face, axis=spec.axis)
        return np.ascontiguousarray(face.reshape(-1)), tuple(face.shape)

    def trace(self, side: str) -> TraceGrid:
        """The :class:`TraceGrid` of this space on the named side."""
        dofs, shape = self.boundary_dof_grid(side)
        spec = self.mesh.boundary(side)
        in_face_axes = [d for d in range(self.dim) if d != spec.axis]
        axes: List[Optional[np.ndarray]] = []
        for d in in_face_axes:
            try:
                axes.append(self.axis_node_coords(d))
            except ValueError:
                axes.append(None)
        return TraceGrid(side, dofs, shape, self.dof_coords[dofs], axes)

    # ------------------------------------------------------------------
    # Point evaluation
    # ------------------------------------------------------------------
    def boundary_point_eval(
        self, points_horizontal: np.ndarray, side: str
    ) -> sp.csr_matrix:
        """Point-evaluation operator at points on the bottom or surface.

        Builds the sparse matrix ``C`` with ``(C @ p)[i] = p_h(x_i)`` where
        ``x_i`` lies on the named vertical boundary at the given horizontal
        coordinates.  This is exact FE interpolation: each row holds the
        tensor-product Lagrange basis values in the containing element.
        """
        if side not in ("bottom", "surface"):
            raise ValueError("boundary_point_eval supports 'bottom'/'surface' only")
        nh = self.dim - 1
        pts = np.asarray(points_horizontal, dtype=np.float64).reshape(-1, nh) if nh else np.zeros((int(np.asarray(points_horizontal).shape[0]) if np.ndim(points_horizontal) else 1, 0))
        npts = pts.shape[0]
        elem_h, ref_h = self.mesh.locate_horizontal(pts)
        p = self.order
        vz = self.mesh.shape[-1]
        ez = 0 if side == "bottom" else vz - 1
        kz = 0 if side == "bottom" else p
        rows: List[np.ndarray] = []
        cols: List[np.ndarray] = []
        vals: List[np.ndarray] = []
        for i in range(npts):
            emulti = tuple(elem_h[i]) + (ez,)
            eflat = self.mesh.element_index(emulti)
            # Per-axis basis values at the reference location.
            axis_vals: List[np.ndarray] = []
            for d in range(nh):
                axis_vals.append(self.basis_1d.eval(np.array([ref_h[i, d]]))[0])
            vcol = np.zeros(p + 1)
            vcol[kz] = 1.0
            axis_vals.append(vcol)
            row = axis_vals[0]
            for v in axis_vals[1:]:
                row = np.multiply.outer(row, v)
            rows.append(np.full(self.nloc, i))
            cols.append(self.gather[eflat])
            vals.append(row.reshape(-1))
        C = sp.csr_matrix(
            (np.concatenate(vals), (np.concatenate(rows), np.concatenate(cols))),
            shape=(npts, self.ndof),
        )
        C.sum_duplicates()
        C.eliminate_zeros()
        return C

    def point_eval(self, points: np.ndarray) -> sp.csr_matrix:
        """Interior point evaluation (requires all mesh axes straight)."""
        if any(a is None for a in self.mesh.axes):
            raise ValueError("point_eval requires a tensor mesh (straight axes)")
        pts = np.asarray(points, dtype=np.float64).reshape(-1, self.dim)
        npts = pts.shape[0]
        p = self.order
        rows, cols, vals = [], [], []
        for i in range(npts):
            emulti = []
            axis_vals = []
            for d in range(self.dim):
                a = self.mesh.axes[d]
                x = pts[i, d]
                if x < a[0] - 1e-12 or x > a[-1] + 1e-12:
                    raise ValueError(f"point outside mesh on axis {d}")
                e = int(np.clip(np.searchsorted(a, x, side="right") - 1, 0, a.size - 2))
                r = np.clip(2.0 * (x - a[e]) / (a[e + 1] - a[e]) - 1.0, -1.0, 1.0)
                emulti.append(e)
                axis_vals.append(self.basis_1d.eval(np.array([r]))[0])
            eflat = self.mesh.element_index(tuple(emulti))
            row = axis_vals[0]
            for v in axis_vals[1:]:
                row = np.multiply.outer(row, v)
            rows.append(np.full(self.nloc, i))
            cols.append(self.gather[eflat])
            vals.append(row.reshape(-1))
        C = sp.csr_matrix(
            (np.concatenate(vals), (np.concatenate(rows), np.concatenate(cols))),
            shape=(npts, self.ndof),
        )
        C.sum_duplicates()
        return C


class L2Space:
    """Discontinuous nodal space collocated at Gauss points.

    Dofs are laid out as ``(nelem, (q+1)^d)`` per scalar component; there is
    no inter-element continuity, hence no gather/scatter.  Because the nodes
    are the quadrature points, the mass matrix is exactly diagonal with
    entries ``w_q * detJ_q`` (times any coefficient).
    """

    def __init__(self, mesh: StructuredMesh, order: int) -> None:
        if order < 0:
            raise ValueError(f"L2 order must be >= 0, got {order}")
        self.mesh = mesh
        self.order = int(order)
        self.dim = mesh.dim
        rule = gauss_legendre(self.order + 1)
        self.nodes_1d = rule.points
        self.weights_1d = rule.weights
        self.basis_1d = LagrangeBasis1D(self.nodes_1d)
        self.nloc = (self.order + 1) ** self.dim
        self.ndof = mesh.n_elements * self.nloc

    @cached_property
    def dof_coords(self) -> np.ndarray:
        """Physical coordinates of the dofs, ``(nelem, nloc, dim)``."""
        geom = ElementGeometry.compute(
            self.mesh.element_vertices(), [self.nodes_1d] * self.dim
        )
        return geom.coords
