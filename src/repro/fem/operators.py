"""Collocated (diagonal) mass and boundary operators.

Explicit RK4 time stepping requires inverting the mass matrix at every
stage, so — exactly as in the paper — the mass matrices are made diagonal:

* the H1 pressure mass is *lumped* by GLL collocation (quadrature at the
  nodal points), the spectral-element analogue of MFEM's lumped mass;
* the L2 velocity mass is diagonal *exactly* because the velocity nodes are
  the Gauss quadrature points;
* every boundary term in Eq. (4) — the surface gravity-wave mass
  ``<(rho g)^{-1} p, v>``, the absorbing impedance ``<Z^{-1} p, v>``, and
  the seafloor forcing ``<m, v>`` — reduces to a diagonal operator on the
  corresponding boundary trace of the GLL grid.
"""

from __future__ import annotations

from typing import Callable, Optional, Union

import numpy as np

from repro.fem.geometry import FaceGeometry
from repro.fem.mesh import StructuredMesh
from repro.fem.quadrature import tensor_rule, gauss_lobatto, gauss_legendre
from repro.fem.spaces import H1Space, L2Space

__all__ = [
    "LumpedMass",
    "l2_mass_diag",
    "DiagonalBoundaryOperator",
]

Coefficient = Union[float, Callable[[np.ndarray], np.ndarray]]


def _coef_values(coef: Coefficient, coords: np.ndarray) -> np.ndarray:
    """Evaluate a constant-or-callable coefficient at ``(..., dim)`` coords."""
    if callable(coef):
        vals = np.asarray(coef(coords), dtype=np.float64)
        if vals.shape != coords.shape[:-1]:
            raise ValueError(
                f"coefficient callable returned shape {vals.shape}, "
                f"expected {coords.shape[:-1]}"
            )
        return vals
    return np.full(coords.shape[:-1], float(coef))


class LumpedMass:
    """Diagonal H1 mass by GLL collocation: ``diag_i = c(x_i) w_i detJ_i``.

    Shared dofs accumulate contributions from every adjacent element, so the
    diagonal equals the row sum of the consistent GLL-quadrature mass matrix
    (the classical spectral-element lumping, exact for the GLL rule).
    """

    def __init__(self, space: H1Space, coef: Coefficient = 1.0) -> None:
        from repro.fem.geometry import ElementGeometry

        self.space = space
        rule = gauss_lobatto(space.order + 1)
        pts, w = tensor_rule([rule] * space.dim)
        geom = ElementGeometry.compute(
            space.mesh.element_vertices(), [rule.points] * space.dim
        )
        c = _coef_values(coef, geom.coords)
        local = c * geom.detj * w[None, :]
        diag = np.zeros(space.ndof)
        np.add.at(diag, space.gather.reshape(-1), local.reshape(-1))
        if np.any(diag <= 0):
            raise ValueError("lumped mass has non-positive entries")
        self.diag = diag

    def apply(self, x: np.ndarray) -> np.ndarray:
        """``M x`` (broadcasts over trailing batch axes)."""
        return self.diag.reshape((-1,) + (1,) * (x.ndim - 1)) * x

    def solve(self, b: np.ndarray) -> np.ndarray:
        """``M^{-1} b``."""
        return b / self.diag.reshape((-1,) + (1,) * (b.ndim - 1))

    def total(self) -> float:
        """Sum of the diagonal (= integral of the coefficient)."""
        return float(np.sum(self.diag))


def l2_mass_diag(space: L2Space, detj: np.ndarray, coef_at_nodes: Optional[np.ndarray] = None) -> np.ndarray:
    """Diagonal L2 (velocity) mass at the Gauss collocation points.

    Parameters
    ----------
    space:
        The L2 space (provides the tensor weights).
    detj:
        Jacobian determinants at the Gauss points, ``(nelem, nloc)``.
    coef_at_nodes:
        Optional coefficient values at the same points (e.g. density).

    Returns
    -------
    ``(nelem, nloc)`` positive diagonal.
    """
    rule = gauss_legendre(space.order + 1)
    _, w = tensor_rule([rule] * space.dim)
    diag = detj * w[None, :]
    if coef_at_nodes is not None:
        diag = diag * coef_at_nodes
    if np.any(diag <= 0):
        raise ValueError("L2 mass has non-positive entries")
    return np.ascontiguousarray(diag)


class DiagonalBoundaryOperator:
    """A diagonal boundary-trace operator of the H1 space.

    Represents ``<c phi_j, phi_i>_side`` under GLL face collocation, which
    is diagonal on the trace dofs.  Serves three roles in the wave operator:

    * boundary mass (surface gravity term, added to the pressure mass),
    * boundary damping (absorbing impedance ``S_a``),
    * trace injection/extraction (the seafloor forcing ``R`` and its exact
      transpose ``R^T``, which is how adjoint propagations read out the
      parameter-space kernel).

    Attributes
    ----------
    dofs:
        Global H1 dof indices of the side's trace grid, in trace C-order.
    values:
        The positive diagonal (area-weighted coefficient), aligned with
        ``dofs``.
    """

    def __init__(self, space: H1Space, side: str, coef: Coefficient = 1.0) -> None:
        mesh: StructuredMesh = space.mesh
        spec = mesh.boundary(side)
        p = space.order
        rule = gauss_lobatto(p + 1)
        nface_axes = space.dim - 1
        face_pts = [rule.points] * nface_axes
        if nface_axes:
            _, wf = tensor_rule([rule] * nface_axes)
        else:
            wf = np.ones(1)
        layer_ev = mesh.element_vertices()[spec.elements]
        fgeom = FaceGeometry.compute(layer_ev, spec.axis, spec.end, face_pts)
        c = _coef_values(coef, fgeom.coords)
        local = c * fgeom.area * wf[None, :]  # (nlayer, nqf)

        # Local dof indices on the face: normal-axis local index pinned.
        loc_grid = np.arange(space.nloc).reshape((p + 1,) * space.dim)
        slicer = [slice(None)] * space.dim
        slicer[spec.axis] = slice(0, 1) if spec.end == 0 else slice(-1, None)
        face_local = np.squeeze(loc_grid[tuple(slicer)], axis=spec.axis).reshape(-1)

        gdofs = space.gather[spec.elements][:, face_local]  # (nlayer, nqf)
        diag_global = np.bincount(
            gdofs.reshape(-1), weights=local.reshape(-1), minlength=space.ndof
        )
        self.side = side
        self.trace = space.trace(side)
        self.dofs = self.trace.dofs
        self.values = np.ascontiguousarray(diag_global[self.dofs])
        if np.any(self.values <= 0):
            raise ValueError(f"face mass on side {side!r} has non-positive entries")

    @property
    def n(self) -> int:
        """Number of trace dofs."""
        return int(self.dofs.size)

    def _v(self, x: np.ndarray) -> np.ndarray:
        return self.values.reshape((-1,) + (1,) * (x.ndim - 1))

    def add_to(self, out: np.ndarray, p: np.ndarray, scale: float = 1.0) -> None:
        """``out[dofs] += scale * values * p[dofs]`` (damping / boundary mass)."""
        sub = p[self.dofs]
        out[self.dofs] += scale * self._v(sub) * sub

    def inject(self, m: np.ndarray, out: np.ndarray, scale: float = 1.0) -> None:
        """``out[dofs] += scale * values * m`` with ``m`` in trace order (R)."""
        out[self.dofs] += scale * self._v(m) * m

    def extract(self, y: np.ndarray) -> np.ndarray:
        """``values * y[dofs]`` — the exact transpose of :meth:`inject`."""
        sub = y[self.dofs]
        return self._v(sub) * sub

    def total(self) -> float:
        """Sum of the diagonal = integral of the coefficient over the side."""
        return float(np.sum(self.values))
