"""Linear RK4 time stepping via Horner evaluation, with exact adjoints.

For a linear autonomous system ``x' = L x + f`` with ``f`` constant over a
step, the classical RK4 update is *exactly*

.. math::

    x_{n+1} = P(\\Delta t L)\\, x_n + \\Delta t\\, Q(\\Delta t L)\\, f,

with the degree-4/3 Taylor polynomials ``P(z) = 1 + z + z^2/2 + z^3/6 +
z^4/24`` and ``Q(z) = (P(z) - 1)/z``.  We evaluate both through one shared
Horner chain costing the same four operator applications as textbook RK4:

``forced step``
    ``v = L x + f``; then ``x' = x + dt * Q(dt L) v`` by Horner.
``adjoint pass``
    Because ``P`` and ``Q`` are polynomials, the exact discrete transposes
    are the same Horner chains in ``L^T``: one pass yields both
    ``P(dt L)^T lam`` and ``Q(dt L)^T lam``.

This is the algebraic bedrock of the paper's framework: the slot
(observation-interval) map is exactly affine, ``x_j = S x_{j-1} + W m_j``,
so the parameter-to-observable map is block lower-triangular Toeplitz *by
construction*, and one adjoint propagation per sensor extracts one block row
of its kernel to machine precision.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

import numpy as np

from repro.fem.quadrature import gauss_lobatto

__all__ = [
    "cfl_timestep",
    "rk4_homogeneous_step",
    "rk4_forced_step",
    "rk4_adjoint_slot_pass",
    "LinearRK4Workspace",
]

ApplyFn = Callable[[np.ndarray], np.ndarray]


def cfl_timestep(
    min_edge: float, order: int, c_max: float, cfl: float = 0.5
) -> float:
    """Stable explicit timestep estimate for spectral elements.

    The restriction scales with the smallest nodal spacing, which for GLL
    nodes clusters as ``O(h / p^2)`` at element edges:

    ``dt = cfl * (min_edge * min_gll_gap / 2) / c_max``

    where ``min_gll_gap`` is the smallest gap of the reference GLL nodes on
    ``[-1, 1]``.  The same ``O(h / (c p^2))`` scaling governs the paper's
    MFEM solver ("timestep size dictated by the CFL condition").
    """
    if min_edge <= 0 or c_max <= 0 or cfl <= 0:
        raise ValueError("min_edge, c_max, cfl must be positive")
    nodes = gauss_lobatto(order + 1).points
    min_gap = float(np.min(np.diff(nodes)))
    return cfl * (min_edge * min_gap / 2.0) / c_max


@dataclass
class LinearRK4Workspace:
    """Preallocated buffers for the Horner chains (memory-optimized mode).

    Holding exactly two state-sized scratch arrays reproduces the paper's
    "carefully reusing temporary vectors from RK4" optimization; the
    non-optimized path allocates fresh arrays at every stage instead.
    """

    v: np.ndarray
    t: np.ndarray

    @classmethod
    def for_state(cls, shape: Tuple[int, ...]) -> "LinearRK4Workspace":
        """Allocate workspace for states of the given shape."""
        return cls(np.empty(shape), np.empty(shape))


def _horner_q(apply_L: ApplyFn, v: np.ndarray, dt: float) -> np.ndarray:
    """``Q(dt L) v`` by Horner: ``v + dt/2 L (v + dt/3 L (v + dt/4 L v))``."""
    t = v + (dt / 4.0) * apply_L(v)
    t = v + (dt / 3.0) * apply_L(t)
    t = v + (dt / 2.0) * apply_L(t)
    return t


def rk4_homogeneous_step(apply_L: ApplyFn, x: np.ndarray, dt: float) -> np.ndarray:
    """One RK4 step of ``x' = L x``: returns ``P(dt L) x``."""
    v = apply_L(x)
    return x + dt * _horner_q(apply_L, v, dt)


def rk4_forced_step(
    apply_L: ApplyFn, x: np.ndarray, dt: float, f: Optional[np.ndarray] = None
) -> np.ndarray:
    """One RK4 step of ``x' = L x + f`` with ``f`` constant over the step.

    Exactly equal to classical RK4 for linear autonomous ``L``; four
    operator applications.
    """
    v = apply_L(x)
    if f is not None:
        v = v + f
    return x + dt * _horner_q(apply_L, v, dt)


def rk4_adjoint_slot_pass(
    apply_LT: ApplyFn, lam: np.ndarray, dt: float
) -> Tuple[np.ndarray, np.ndarray]:
    """Exact transposes of one RK4 step: returns ``(P^T lam, Q^T lam)``.

    ``P(dt L)^T = P(dt L^T)`` and likewise for ``Q`` (polynomials in ``L``),
    so the chain is Horner in ``L^T``; the two results share the chain, so
    the cost is again four operator applications.
    """
    t = lam + (dt / 4.0) * apply_LT(lam)
    t = lam + (dt / 3.0) * apply_LT(t)
    qt = lam + (dt / 2.0) * apply_LT(t)
    pt = lam + dt * apply_LT(qt)
    return pt, qt
