"""Stable 1D Lagrange bases and their interpolation/differentiation matrices.

All basis evaluations use the barycentric form, which is numerically stable
even for the clustered Gauss--Lobatto nodes of high polynomial orders.  The
matrices produced here are the 1D building blocks of every tensor-product
kernel in :mod:`repro.fem.kernels`: a field with coefficients on nodes
``x_j`` is evaluated (or differentiated) at points ``y_i`` by a dense
``(len(y), len(x))`` matrix applied along one tensor axis at a time
("sum factorization").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

__all__ = [
    "barycentric_weights",
    "lagrange_eval_matrix",
    "lagrange_diff_matrix",
    "differentiation_matrix",
    "LagrangeBasis1D",
]


def barycentric_weights(nodes: np.ndarray) -> np.ndarray:
    """Barycentric weights ``w_j = 1 / prod_{k != j}(x_j - x_k)``.

    Scaled to unit maximum magnitude for numerical headroom; any common
    scaling cancels in the barycentric formulas.
    """
    x = np.asarray(nodes, dtype=np.float64)
    if x.ndim != 1 or x.size < 1:
        raise ValueError("nodes must be a non-empty 1D array")
    if x.size > 1 and np.min(np.diff(np.sort(x))) <= 0:
        raise ValueError("nodes must be distinct")
    diff = x[:, None] - x[None, :]
    np.fill_diagonal(diff, 1.0)
    w = 1.0 / np.prod(diff, axis=1)
    return w / np.max(np.abs(w))


def lagrange_eval_matrix(nodes: np.ndarray, points: np.ndarray) -> np.ndarray:
    """Matrix ``B`` with ``B[i, j] = phi_j(y_i)`` (values of Lagrange basis).

    ``B @ coeffs`` interpolates nodal coefficients to ``points``.  Rows sum
    to one exactly up to rounding (partition of unity).
    """
    x = np.asarray(nodes, dtype=np.float64)
    y = np.asarray(points, dtype=np.float64).reshape(-1)
    w = barycentric_weights(x)
    diff = y[:, None] - x[None, :]  # (npts, nnodes)
    exact = np.isclose(diff, 0.0, atol=1e-14)
    safe = np.where(exact, 1.0, diff)
    terms = w[None, :] / safe
    denom = np.sum(np.where(exact, 0.0, terms), axis=1)
    B = terms / np.where(denom == 0.0, 1.0, denom)[:, None]
    # Rows where y coincides with a node: Kronecker delta row.
    hit_rows = np.any(exact, axis=1)
    B[hit_rows] = exact[hit_rows].astype(np.float64)
    return B


def differentiation_matrix(nodes: np.ndarray) -> np.ndarray:
    """Square differentiation matrix ``D[i, j] = phi_j'(x_i)`` at the nodes.

    Uses the standard barycentric formula with exactly zero row sums
    enforced via the negative-sum trick (``D_ii = -sum_{j != i} D_ij``),
    which preserves the exact-derivative-of-constants property.
    """
    x = np.asarray(nodes, dtype=np.float64)
    n = x.size
    w = barycentric_weights(x)
    D = np.zeros((n, n))
    if n == 1:
        return D
    diff = x[:, None] - x[None, :]
    np.fill_diagonal(diff, 1.0)
    D = (w[None, :] / w[:, None]) / diff
    np.fill_diagonal(D, 0.0)
    np.fill_diagonal(D, -np.sum(D, axis=1))
    return D


def lagrange_diff_matrix(nodes: np.ndarray, points: np.ndarray) -> np.ndarray:
    """Matrix ``Dm`` with ``Dm[i, j] = phi_j'(y_i)`` at arbitrary points.

    Computed as ``B(y) @ D(x)``: interpolation of the exact nodal
    derivative.  Since the derivative of a degree-``p`` polynomial is again
    polynomial (degree ``p-1``) this identity is exact.
    """
    B = lagrange_eval_matrix(nodes, points)
    D = differentiation_matrix(nodes)
    return B @ D


@dataclass
class LagrangeBasis1D:
    """A 1D nodal Lagrange basis with cached operator matrices.

    Parameters
    ----------
    nodes:
        Distinct interpolation nodes on the reference interval ``[-1, 1]``.
    """

    nodes: np.ndarray
    _bary: Optional[np.ndarray] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        self.nodes = np.asarray(self.nodes, dtype=np.float64).reshape(-1)
        self._bary = barycentric_weights(self.nodes)

    @property
    def n(self) -> int:
        """Number of basis functions (= number of nodes)."""
        return int(self.nodes.size)

    @property
    def order(self) -> int:
        """Polynomial order ``p = n - 1``."""
        return self.n - 1

    def eval(self, points: np.ndarray) -> np.ndarray:
        """Values matrix ``(len(points), n)``; see :func:`lagrange_eval_matrix`."""
        return lagrange_eval_matrix(self.nodes, points)

    def deriv(self, points: np.ndarray) -> np.ndarray:
        """Derivatives matrix ``(len(points), n)``."""
        return lagrange_diff_matrix(self.nodes, points)

    def diff_matrix(self) -> np.ndarray:
        """Square nodal differentiation matrix."""
        return differentiation_matrix(self.nodes)

    def interpolate(self, coeffs: np.ndarray, points: np.ndarray) -> np.ndarray:
        """Evaluate the interpolant of ``coeffs`` at ``points``.

        ``coeffs`` may have trailing batch axes; interpolation acts on the
        first axis.
        """
        B = self.eval(points)
        return np.tensordot(B, np.asarray(coeffs, dtype=np.float64), axes=(1, 0))
