"""Mini-MFEM: high-order tensor-product finite elements in NumPy.

This package is the Python stand-in for the paper's MFEM-based C++
discretization substrate.  It provides the same ingredients the Cascadia
application code builds on:

``quadrature``
    Gauss--Legendre and Gauss--Lobatto--Legendre rules on the reference
    interval, and tensor-product rules on reference boxes.
``basis``
    Stable (barycentric) 1D Lagrange bases and their interpolation /
    differentiation matrices.
``mesh``
    Structured interval/quad/hex meshes, including terrain-following
    ("bathymetry-adapted", Fig. 1d) ocean meshes.
``geometry``
    Multilinear (Q1) element mappings: coordinates, Jacobians, volume and
    face geometric factors at arbitrary tensor reference points.
``spaces``
    ``H1Space`` (continuous GLL-nodal) and ``L2Space`` (discontinuous
    Gauss-nodal) finite element spaces with E-vector/L-vector
    gather/scatter, boundary dof extraction, and point evaluation.
``kernels``
    The five partial-assembly / matrix-free gradient-kernel variants of the
    paper's Fig. 7 ("initial PA", "shared PA", "optimized PA", "fused PA",
    "fused MF"), all producing bitwise-identical results at different
    throughputs, plus analytic FLOP/byte counts.
``operators``
    Diagonal (collocated) mass operators, boundary mass operators, and the
    partially-assembled weak gradient pairing used by the wave equation.
``timestep``
    CFL estimation and the linear-RK4 stepping used throughout: for linear
    autonomous systems, classical RK4 is the degree-4 Taylor polynomial
    ``P(dt L)``; we evaluate it by Horner's scheme, which makes the exact
    discrete adjoint a Horner evaluation in ``L^T``.
"""

from repro.fem.basis import (
    LagrangeBasis1D,
    lagrange_diff_matrix,
    lagrange_eval_matrix,
)
from repro.fem.geometry import ElementGeometry, FaceGeometry
from repro.fem.kernels import (
    KERNEL_VARIANTS,
    GradientKernel,
    kernel_flop_byte_counts,
    make_gradient_kernel,
)
from repro.fem.mesh import StructuredMesh
from repro.fem.operators import DiagonalBoundaryOperator, LumpedMass
from repro.fem.quadrature import (
    QuadratureRule,
    gauss_legendre,
    gauss_lobatto,
    tensor_rule,
)
from repro.fem.spaces import H1Space, L2Space
from repro.fem.timestep import (
    LinearRK4Workspace,
    cfl_timestep,
    rk4_adjoint_slot_pass,
    rk4_forced_step,
    rk4_homogeneous_step,
)

__all__ = [
    "QuadratureRule",
    "gauss_legendre",
    "gauss_lobatto",
    "tensor_rule",
    "LagrangeBasis1D",
    "lagrange_eval_matrix",
    "lagrange_diff_matrix",
    "StructuredMesh",
    "ElementGeometry",
    "FaceGeometry",
    "H1Space",
    "L2Space",
    "GradientKernel",
    "make_gradient_kernel",
    "KERNEL_VARIANTS",
    "kernel_flop_byte_counts",
    "LumpedMass",
    "DiagonalBoundaryOperator",
    "cfl_timestep",
    "rk4_homogeneous_step",
    "rk4_forced_step",
    "rk4_adjoint_slot_pass",
    "LinearRK4Workspace",
]
