"""Multilinear (Q1) element mappings and geometric factors.

Each structured element is mapped from the reference box ``[-1, 1]^d`` by the
multilinear interpolant of its ``2^d`` corner vertices — the standard
isoparametric Q1 geometry used for bathymetry-adapted hexahedra.  This module
evaluates, at arbitrary tensor-product reference points:

* physical coordinates,
* Jacobian matrices ``J = dx/dr``, their determinants and inverses,
* boundary-face area elements and outward unit normals (via the identity
  ``dGamma = detJ * |J^{-T} e_a| dr_face`` with ``e_a`` the reference normal
  axis).

Everything is vectorized over elements; the arrays produced here are the
"geometric factors" of MFEM's partial assembly, precomputed once in Setup
(Table I) and consumed by the kernels in :mod:`repro.fem.kernels`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["q1_shape_tensor", "ElementGeometry", "FaceGeometry"]


def q1_shape_tensor(
    ref_points_1d: Sequence[np.ndarray], deriv_axis: Optional[int] = None
) -> np.ndarray:
    """Q1 corner shape functions tabulated at tensor reference points.

    Returns ``S`` of shape ``(2**d, nq)`` where ``nq = prod(len(r_d))`` and
    ``S[c, q]`` is the value (or the ``deriv_axis`` partial derivative) of
    the corner-``c`` multilinear shape function at tensor point ``q``.
    Corners and points follow C-order (last axis fastest), matching
    :meth:`repro.fem.mesh.StructuredMesh.element_vertices`.
    """
    rs = [np.asarray(r, dtype=np.float64).reshape(-1) for r in ref_points_1d]
    d = len(rs)
    vals: List[np.ndarray] = []
    for axis, r in enumerate(rs):
        if deriv_axis == axis:
            v = np.stack([-0.5 * np.ones_like(r), 0.5 * np.ones_like(r)])
        else:
            v = np.stack([0.5 * (1.0 - r), 0.5 * (1.0 + r)])
        vals.append(v)  # (2, n_axis)
    S = vals[0]
    for v in vals[1:]:
        S = S[:, None, :, None] * v[None, :, None, :]
        S = S.reshape(S.shape[0] * S.shape[1], -1)
    return np.ascontiguousarray(S.reshape(2**d, -1))


def _det_inv(J: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Determinant and inverse of small (1/2/3)x(1/2/3) matrices, batched."""
    d = J.shape[-1]
    if d == 1:
        det = J[..., 0, 0]
        inv = (1.0 / det)[..., None, None]
        return det, inv
    if d == 2:
        a, b = J[..., 0, 0], J[..., 0, 1]
        c, e = J[..., 1, 0], J[..., 1, 1]
        det = a * e - b * c
        inv = np.empty_like(J)
        inv[..., 0, 0] = e
        inv[..., 0, 1] = -b
        inv[..., 1, 0] = -c
        inv[..., 1, 1] = a
        inv /= det[..., None, None]
        return det, inv
    if d == 3:
        # Adjugate formula, vectorized.
        det = (
            J[..., 0, 0] * (J[..., 1, 1] * J[..., 2, 2] - J[..., 1, 2] * J[..., 2, 1])
            - J[..., 0, 1] * (J[..., 1, 0] * J[..., 2, 2] - J[..., 1, 2] * J[..., 2, 0])
            + J[..., 0, 2] * (J[..., 1, 0] * J[..., 2, 1] - J[..., 1, 1] * J[..., 2, 0])
        )
        inv = np.empty_like(J)
        inv[..., 0, 0] = J[..., 1, 1] * J[..., 2, 2] - J[..., 1, 2] * J[..., 2, 1]
        inv[..., 0, 1] = J[..., 0, 2] * J[..., 2, 1] - J[..., 0, 1] * J[..., 2, 2]
        inv[..., 0, 2] = J[..., 0, 1] * J[..., 1, 2] - J[..., 0, 2] * J[..., 1, 1]
        inv[..., 1, 0] = J[..., 1, 2] * J[..., 2, 0] - J[..., 1, 0] * J[..., 2, 2]
        inv[..., 1, 1] = J[..., 0, 0] * J[..., 2, 2] - J[..., 0, 2] * J[..., 2, 0]
        inv[..., 1, 2] = J[..., 0, 2] * J[..., 1, 0] - J[..., 0, 0] * J[..., 1, 2]
        inv[..., 2, 0] = J[..., 1, 0] * J[..., 2, 1] - J[..., 1, 1] * J[..., 2, 0]
        inv[..., 2, 1] = J[..., 0, 1] * J[..., 2, 0] - J[..., 0, 0] * J[..., 2, 1]
        inv[..., 2, 2] = J[..., 0, 0] * J[..., 1, 1] - J[..., 0, 1] * J[..., 1, 0]
        inv /= det[..., None, None]
        return det, inv
    raise ValueError(f"unsupported dimension {d}")


@dataclass
class ElementGeometry:
    """Geometric factors of a batch of Q1-mapped elements.

    Attributes (``ne`` elements, ``nq`` tensor points, dimension ``d``):

    ``coords`` : ``(ne, nq, d)`` physical coordinates.
    ``jac`` : ``(ne, nq, d, d)`` Jacobians ``J[i, m] = dx_i/dr_m``.
    ``detj`` : ``(ne, nq)`` Jacobian determinants (must be positive).
    ``invj`` : ``(ne, nq, d, d)`` inverse Jacobians.
    """

    coords: np.ndarray
    jac: np.ndarray
    detj: np.ndarray
    invj: np.ndarray

    @classmethod
    def compute(
        cls,
        element_vertices: np.ndarray,
        ref_points_1d: Sequence[np.ndarray],
        check_positive: bool = True,
    ) -> "ElementGeometry":
        """Evaluate geometric factors at tensor reference points.

        Parameters
        ----------
        element_vertices:
            ``(ne, 2**d, d)`` corner coordinates (C-ordered corners).
        ref_points_1d:
            Per-axis 1D reference points in ``[-1, 1]``.
        check_positive:
            Validate ``detJ > 0`` everywhere (catches inverted elements,
            e.g. from a negative water depth).
        """
        ev = np.asarray(element_vertices, dtype=np.float64)
        d = ev.shape[-1]
        if len(ref_points_1d) != d:
            raise ValueError("need one reference point array per dimension")
        S = q1_shape_tensor(ref_points_1d)  # (2**d, nq)
        coords = np.einsum("ecd,cq->eqd", ev, S, optimize=True)
        jac = np.empty(coords.shape + (d,), dtype=np.float64)
        for m in range(d):
            Sm = q1_shape_tensor(ref_points_1d, deriv_axis=m)
            jac[..., m] = np.einsum("ecd,cq->eqd", ev, Sm, optimize=True)
        detj, invj = _det_inv(jac)
        if check_positive and np.any(detj <= 0):
            raise ValueError(
                "non-positive Jacobian determinant: inverted or degenerate element"
            )
        return cls(
            np.ascontiguousarray(coords),
            np.ascontiguousarray(jac),
            np.ascontiguousarray(detj),
            np.ascontiguousarray(invj),
        )

    @property
    def n_elements(self) -> int:
        """Number of elements in the batch."""
        return int(self.coords.shape[0])

    @property
    def n_points(self) -> int:
        """Number of tensor reference points per element."""
        return int(self.coords.shape[1])

    @property
    def dim(self) -> int:
        """Spatial dimension."""
        return int(self.coords.shape[2])

    def volumes(self, weights: np.ndarray) -> np.ndarray:
        """Per-element volumes given tensor quadrature weights ``(nq,)``."""
        return self.detj @ np.asarray(weights, dtype=np.float64)


@dataclass
class FaceGeometry:
    """Geometric factors on one boundary face layer.

    Attributes (``ne`` layer elements, ``nqf`` face tensor points, dim ``d``):

    ``coords`` : ``(ne, nqf, d)`` face point coordinates.
    ``area`` : ``(ne, nqf)`` surface area element ``detJ * |J^{-T} e_a|``.
    ``normal`` : ``(ne, nqf, d)`` outward unit normals.
    """

    coords: np.ndarray
    area: np.ndarray
    normal: np.ndarray

    @classmethod
    def compute(
        cls,
        element_vertices: np.ndarray,
        axis: int,
        end: int,
        face_points_1d: Sequence[np.ndarray],
    ) -> "FaceGeometry":
        """Evaluate face factors for the side ``(axis, end)`` of a layer.

        ``face_points_1d`` holds the 1D reference points of the *remaining*
        axes (in axis order); the normal axis is pinned to ``-1`` or ``+1``.
        For a 1D mesh the face is a single point with unit area.
        """
        ev = np.asarray(element_vertices, dtype=np.float64)
        d = ev.shape[-1]
        if not 0 <= axis < d:
            raise ValueError(f"axis {axis} out of range for dim {d}")
        if end not in (0, 1):
            raise ValueError("end must be 0 or 1")
        pinned = np.array([-1.0 if end == 0 else 1.0])
        full_points: List[np.ndarray] = []
        it = iter(face_points_1d)
        for m in range(d):
            full_points.append(pinned if m == axis else np.asarray(next(it)))
        geom = ElementGeometry.compute(ev, full_points)
        # Surface element and outward normal via grad of reference coord r_a:
        # n ~ sign * J^{-T} e_a;  dGamma = detJ * |J^{-T} e_a| dr_face.
        g = geom.invj[..., axis, :]  # row `axis` of J^{-1} == J^{-T} e_a
        norm = np.linalg.norm(g, axis=-1)
        area = geom.detj * norm
        sign = -1.0 if end == 0 else 1.0
        normal = sign * g / norm[..., None]
        return cls(
            np.ascontiguousarray(geom.coords),
            np.ascontiguousarray(area),
            np.ascontiguousarray(normal),
        )
