"""Argument validation helpers used across the public API.

These are deliberately tiny: they exist so that user-facing constructors fail
with clear messages instead of deep NumPy broadcasting errors, without
cluttering numerical code.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence, Tuple

import numpy as np


def require(condition: bool, message: str) -> None:
    """Raise ``ValueError(message)`` unless ``condition`` holds."""
    if not condition:
        raise ValueError(message)


def check_positive(name: str, value: float, strict: bool = True) -> float:
    """Validate that a scalar parameter is (strictly) positive."""
    v = float(value)
    if strict and not v > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    if not strict and not v >= 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return v


def check_in(name: str, value: Any, allowed: Iterable[Any]) -> Any:
    """Validate membership in a finite set of allowed values."""
    allowed = tuple(allowed)
    if value not in allowed:
        raise ValueError(f"{name} must be one of {allowed}, got {value!r}")
    return value


def check_shape(name: str, array: np.ndarray, shape: Sequence[int]) -> np.ndarray:
    """Validate an exact array shape; ``-1`` entries match any extent."""
    a = np.asarray(array)
    expected: Tuple[int, ...] = tuple(shape)
    if a.ndim != len(expected) or any(
        e != -1 and s != e for s, e in zip(a.shape, expected)
    ):
        raise ValueError(f"{name} must have shape {expected}, got {a.shape}")
    return a


def as_float_array(name: str, array: Any, ndim: int | None = None) -> np.ndarray:
    """Convert to a C-contiguous float64 array, optionally checking ndim."""
    a = np.ascontiguousarray(array, dtype=np.float64)
    if ndim is not None and a.ndim != ndim:
        raise ValueError(f"{name} must be {ndim}-dimensional, got ndim={a.ndim}")
    return a
