"""Memory accounting for the Section VII-B memory-optimization study.

The paper reports an extensive memory-optimization campaign for the MI300A
APU: tracking host and device usage separately, freeing host allocations,
using RHS sparsity, fusing permutations, recomputing Jacobian determinants
instead of storing them, batching allocations, and reusing RK4 temporaries —
together a 5.33× reduction (from 5.2 host + 30.7 device to 1.1 host + 5.64
device GiB per APU at 67 M DOF).

In the NumPy reproduction there is a single address space, so we emulate the
host/device split as *persistent* (setup-time, long-lived: geometric factors,
gather indices, operator data) versus *transient* (per-apply workspace: RK4
stage vectors, quadrature-point scratch).  The solver exposes a
``memory_optimized`` mode whose effect on both categories is measured by
``benchmarks/bench_memory_opt.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Tuple, Union

import numpy as np

GIB = float(1 << 30)
MIB = float(1 << 20)


def nbytes_of(*arrays: np.ndarray) -> int:
    """Total ``nbytes`` of the given arrays (None entries are skipped)."""
    return sum(int(a.nbytes) for a in arrays if a is not None)


@dataclass
class MemoryTracker:
    """Ledger of named allocations split into persistent/transient classes.

    The tracker does not hook the allocator; components *register* the arrays
    they hold.  This mirrors the paper's approach of instrumenting the code to
    track usage, rather than sampling the OS.
    """

    persistent: Dict[str, int] = field(default_factory=dict)
    transient: Dict[str, int] = field(default_factory=dict)
    peak_transient: int = 0

    def add_persistent(self, name: str, *arrays: np.ndarray) -> None:
        """Record long-lived (setup-time) allocations under ``name``."""
        self.persistent[name] = self.persistent.get(name, 0) + nbytes_of(*arrays)

    def add_transient(self, name: str, *arrays: np.ndarray) -> None:
        """Record per-apply workspace allocations under ``name``."""
        self.transient[name] = self.transient.get(name, 0) + nbytes_of(*arrays)
        self.peak_transient = max(self.peak_transient, self.total_transient)

    def add_transient_bytes(self, name: str, nbytes: int) -> None:
        """Record transient bytes when the arrays are not retained."""
        self.transient[name] = self.transient.get(name, 0) + int(nbytes)
        self.peak_transient = max(self.peak_transient, self.total_transient)

    def release_transient(self, name: str) -> None:
        """Drop a transient entry (workspace freed / reused elsewhere)."""
        self.transient.pop(name, None)

    @property
    def total_persistent(self) -> int:
        """Bytes held by long-lived allocations."""
        return sum(self.persistent.values())

    @property
    def total_transient(self) -> int:
        """Bytes held by currently-registered workspace."""
        return sum(self.transient.values())

    @property
    def total(self) -> int:
        """Persistent + transient bytes."""
        return self.total_persistent + self.total_transient

    def bytes_per_dof(self, ndof: int) -> float:
        """Total bytes divided by the number of degrees of freedom."""
        return self.total / float(ndof) if ndof else 0.0

    def report(self) -> str:
        """Readable two-section breakdown in GiB."""
        lines = ["Memory (persistent):"]
        for name, b in sorted(self.persistent.items()):
            lines.append(f"  {name:<32s} {b / GIB:10.6f} GiB")
        lines.append("Memory (transient):")
        for name, b in sorted(self.transient.items()):
            lines.append(f"  {name:<32s} {b / GIB:10.6f} GiB")
        lines.append(
            f"  total = {self.total / GIB:.6f} GiB "
            f"(persistent {self.total_persistent / GIB:.6f}, "
            f"transient {self.total_transient / GIB:.6f})"
        )
        return "\n".join(lines)


class MemoryBudget:
    """A global byte budget shared by serving components.

    The serving layer holds several classes of large, long-lived buffers —
    Phase 2-3 operator sets in an :class:`~repro.serve.cache.OperatorCache`,
    per-bank identification state in a
    :class:`~repro.serve.fabric.ServingFabric` — and an operator wants *one*
    number to reason about ("this box has 4 GiB for the twin").  A
    ``MemoryBudget`` is that number plus a named ledger: components
    :meth:`register` what they hold, :meth:`release` what they evict, and
    consult :meth:`fits` / :attr:`remaining` before admitting new state.
    One instance may be shared by several components (cache + fabric), in
    which case eviction pressure in one frees room for the other.

    The budget does not hook the allocator and cannot *enforce* anything by
    itself — components that accept one are expected to evict their own
    coldest entries while over budget (see
    ``OperatorCache(memory_budget=...)`` and
    ``FabricConfig.memory_budget``).

    Parameters
    ----------
    total_bytes:
        The budget ceiling; ``None`` means unlimited (the ledger still
        tracks usage for reporting).
    """

    def __init__(self, total_bytes: Optional[int] = None) -> None:
        if total_bytes is not None and int(total_bytes) <= 0:
            raise ValueError("total_bytes must be positive (or None)")
        self.total_bytes = int(total_bytes) if total_bytes is not None else None
        self._ledger: Dict[str, int] = {}

    @classmethod
    def ensure(
        cls, budget: Union[None, int, "MemoryBudget"]
    ) -> "MemoryBudget":
        """Coerce ``None`` / a byte count / an existing budget to a budget."""
        if isinstance(budget, MemoryBudget):
            return budget
        return cls(total_bytes=budget)

    # ------------------------------------------------------------------
    def register(self, name: str, nbytes: int) -> None:
        """Record (or update) a named allocation of ``nbytes``."""
        if int(nbytes) < 0:
            raise ValueError("nbytes must be >= 0")
        self._ledger[name] = int(nbytes)

    def release(self, name: str) -> int:
        """Drop a named allocation; returns the bytes freed (0 if absent)."""
        return self._ledger.pop(name, 0)

    def nbytes_of(self, name: str) -> int:
        """Bytes currently registered under ``name`` (0 if absent)."""
        return self._ledger.get(name, 0)

    @property
    def used(self) -> int:
        """Total bytes currently registered."""
        return sum(self._ledger.values())

    @property
    def remaining(self) -> Optional[int]:
        """Bytes left under the ceiling (may be negative); None if unlimited."""
        if self.total_bytes is None:
            return None
        return self.total_bytes - self.used

    def over_budget(self) -> bool:
        """Whether registered usage exceeds the ceiling."""
        return self.total_bytes is not None and self.used > self.total_bytes

    def fits(self, nbytes: int) -> bool:
        """Whether an additional ``nbytes`` would stay within the ceiling."""
        if self.total_bytes is None:
            return True
        return self.used + int(nbytes) <= self.total_bytes

    def report(self) -> str:
        """Readable ledger, largest entries first."""
        cap = (
            "unlimited"
            if self.total_bytes is None
            else f"{self.total_bytes / MIB:.1f} MiB"
        )
        lines = [f"memory budget: {self.used / MIB:.1f} MiB used of {cap}"]
        for name, b in sorted(self._ledger.items(), key=lambda kv: -kv[1]):
            lines.append(f"  {name:<40s} {b / MIB:10.2f} MiB")
        return "\n".join(lines)


def array_set_nbytes(arrays: Iterable[np.ndarray]) -> Tuple[int, int]:
    """Return ``(count, total_bytes)`` over unique array buffers.

    Arrays sharing a base buffer (views) are counted once, which is what
    matters when measuring the effect of buffer-reuse optimizations.
    """
    seen = set()
    count = 0
    total = 0
    for a in arrays:
        base = a.base if a.base is not None else a
        key = id(base)
        if key in seen:
            continue
        seen.add(key)
        count += 1
        total += int(np.asarray(base).nbytes)
    return count, total
