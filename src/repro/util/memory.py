"""Memory accounting for the Section VII-B memory-optimization study.

The paper reports an extensive memory-optimization campaign for the MI300A
APU: tracking host and device usage separately, freeing host allocations,
using RHS sparsity, fusing permutations, recomputing Jacobian determinants
instead of storing them, batching allocations, and reusing RK4 temporaries —
together a 5.33× reduction (from 5.2 host + 30.7 device to 1.1 host + 5.64
device GiB per APU at 67 M DOF).

In the NumPy reproduction there is a single address space, so we emulate the
host/device split as *persistent* (setup-time, long-lived: geometric factors,
gather indices, operator data) versus *transient* (per-apply workspace: RK4
stage vectors, quadrature-point scratch).  The solver exposes a
``memory_optimized`` mode whose effect on both categories is measured by
``benchmarks/bench_memory_opt.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Tuple

import numpy as np

GIB = float(1 << 30)


def nbytes_of(*arrays: np.ndarray) -> int:
    """Total ``nbytes`` of the given arrays (None entries are skipped)."""
    return sum(int(a.nbytes) for a in arrays if a is not None)


@dataclass
class MemoryTracker:
    """Ledger of named allocations split into persistent/transient classes.

    The tracker does not hook the allocator; components *register* the arrays
    they hold.  This mirrors the paper's approach of instrumenting the code to
    track usage, rather than sampling the OS.
    """

    persistent: Dict[str, int] = field(default_factory=dict)
    transient: Dict[str, int] = field(default_factory=dict)
    peak_transient: int = 0

    def add_persistent(self, name: str, *arrays: np.ndarray) -> None:
        """Record long-lived (setup-time) allocations under ``name``."""
        self.persistent[name] = self.persistent.get(name, 0) + nbytes_of(*arrays)

    def add_transient(self, name: str, *arrays: np.ndarray) -> None:
        """Record per-apply workspace allocations under ``name``."""
        self.transient[name] = self.transient.get(name, 0) + nbytes_of(*arrays)
        self.peak_transient = max(self.peak_transient, self.total_transient)

    def add_transient_bytes(self, name: str, nbytes: int) -> None:
        """Record transient bytes when the arrays are not retained."""
        self.transient[name] = self.transient.get(name, 0) + int(nbytes)
        self.peak_transient = max(self.peak_transient, self.total_transient)

    def release_transient(self, name: str) -> None:
        """Drop a transient entry (workspace freed / reused elsewhere)."""
        self.transient.pop(name, None)

    @property
    def total_persistent(self) -> int:
        """Bytes held by long-lived allocations."""
        return sum(self.persistent.values())

    @property
    def total_transient(self) -> int:
        """Bytes held by currently-registered workspace."""
        return sum(self.transient.values())

    @property
    def total(self) -> int:
        """Persistent + transient bytes."""
        return self.total_persistent + self.total_transient

    def bytes_per_dof(self, ndof: int) -> float:
        """Total bytes divided by the number of degrees of freedom."""
        return self.total / float(ndof) if ndof else 0.0

    def report(self) -> str:
        """Readable two-section breakdown in GiB."""
        lines = ["Memory (persistent):"]
        for name, b in sorted(self.persistent.items()):
            lines.append(f"  {name:<32s} {b / GIB:10.6f} GiB")
        lines.append("Memory (transient):")
        for name, b in sorted(self.transient.items()):
            lines.append(f"  {name:<32s} {b / GIB:10.6f} GiB")
        lines.append(
            f"  total = {self.total / GIB:.6f} GiB "
            f"(persistent {self.total_persistent / GIB:.6f}, "
            f"transient {self.total_transient / GIB:.6f})"
        )
        return "\n".join(lines)


def array_set_nbytes(arrays: Iterable[np.ndarray]) -> Tuple[int, int]:
    """Return ``(count, total_bytes)`` over unique array buffers.

    Arrays sharing a base buffer (views) are counted once, which is what
    matters when measuring the effect of buffer-reuse optimizations.
    """
    seen = set()
    count = 0
    total = 0
    for a in arrays:
        base = a.base if a.base is not None else a
        key = id(base)
        if key in seen:
            continue
        seen.add(key)
        count += 1
        total += int(np.asarray(base).nbytes)
    return count, total
