"""Rank-aware logging helpers.

The virtual-parallel substrate (``repro.hpc``) executes many logical ranks in
one process.  To keep diagnostic output readable — and to mimic the common
MPI idiom of printing from rank 0 only — loggers are created per component
with an optional rank tag, and a module-level verbosity switch controls
whether non-root ranks emit anything at all.
"""

from __future__ import annotations

import logging
import sys
from typing import Optional

_FORMAT = "[%(name)s] %(levelname)s: %(message)s"
_configured = False


def _ensure_configured() -> None:
    global _configured
    if _configured:
        return
    handler = logging.StreamHandler(sys.stderr)
    handler.setFormatter(logging.Formatter(_FORMAT))
    root = logging.getLogger("repro")
    if not root.handlers:
        root.addHandler(handler)
    root.setLevel(logging.WARNING)
    root.propagate = False
    _configured = True


def get_logger(component: str, rank: Optional[int] = None) -> logging.Logger:
    """Return the logger for ``component``, optionally tagged with a rank.

    Parameters
    ----------
    component:
        Dotted component name under the ``repro`` namespace, e.g. ``"fem"``.
    rank:
        Virtual rank for rank-tagged logs.  Non-zero ranks are silenced by
        default (set the ``repro`` logger level to DEBUG to see them).
    """
    _ensure_configured()
    name = f"repro.{component}"
    if rank is not None:
        name = f"{name}.r{rank}"
    logger = logging.getLogger(name)
    if rank is not None and rank != 0:
        logger.setLevel(logging.ERROR)
    return logger


def set_verbosity(level: int) -> None:
    """Set the verbosity of the whole ``repro`` logger tree.

    ``level`` follows the stdlib ``logging`` levels (e.g. ``logging.INFO``).
    """
    _ensure_configured()
    logging.getLogger("repro").setLevel(level)
