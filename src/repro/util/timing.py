"""Wall-clock timing utilities.

The Cascadia application code in the paper instruments four coarse phases
(Table I): ``Initialization``, ``Setup``, ``Adjoint p2o``, and ``I/O``, using
POSIX clocks after device synchronization and an MPI barrier.  This module
provides the equivalent instrumentation for the Python reproduction: a
:class:`Timer` accumulating wall time over possibly many start/stop intervals,
and a :class:`TimerRegistry` that groups named timers and renders the same
kind of percentage breakdown shown in the paper's Fig. 6.

There is no device to synchronize in the NumPy implementation, so
``time.perf_counter`` is used directly; it is monotonic and high resolution,
matching the role of ``clock_gettime(CLOCK_MONOTONIC)`` in the C++ code.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple


@dataclass
class Timer:
    """Accumulating wall-clock timer.

    A timer can be started and stopped repeatedly; ``elapsed`` accumulates the
    total wall time across all completed intervals.  Nested starts are
    rejected — the paper's timers are strictly sequential phases.

    Examples
    --------
    >>> t = Timer("setup")
    >>> t.start(); _ = sum(range(1000)); t.stop()  # doctest: +SKIP
    >>> t.elapsed > 0  # doctest: +SKIP
    True
    """

    name: str
    elapsed: float = 0.0
    count: int = 0
    _t0: Optional[float] = field(default=None, repr=False)

    def start(self) -> "Timer":
        """Begin a timing interval.  Raises if the timer is already running."""
        if self._t0 is not None:
            raise RuntimeError(f"timer {self.name!r} is already running")
        self._t0 = time.perf_counter()
        return self

    def stop(self) -> float:
        """End the current interval; returns the interval's duration."""
        if self._t0 is None:
            raise RuntimeError(f"timer {self.name!r} is not running")
        dt = time.perf_counter() - self._t0
        self._t0 = None
        self.elapsed += dt
        self.count += 1
        return dt

    @property
    def running(self) -> bool:
        """Whether the timer is currently inside an interval."""
        return self._t0 is not None

    @property
    def mean(self) -> float:
        """Mean interval duration (0 if never stopped)."""
        return self.elapsed / self.count if self.count else 0.0

    def reset(self) -> None:
        """Zero the accumulated time and interval count."""
        if self._t0 is not None:
            raise RuntimeError(f"cannot reset running timer {self.name!r}")
        self.elapsed = 0.0
        self.count = 0

    @contextmanager
    def time(self) -> Iterator["Timer"]:
        """Context manager form: ``with timer.time(): ...``."""
        self.start()
        try:
            yield self
        finally:
            self.stop()


class TimerRegistry:
    """Named collection of :class:`Timer` objects with report rendering.

    Mirrors the paper's Table I / Fig. 6 instrumentation: a fixed set of
    named phases whose wall times are reported alongside their percentage of
    the total application runtime.
    """

    def __init__(self, names: Optional[List[str]] = None) -> None:
        self._timers: Dict[str, Timer] = {}
        for name in names or []:
            self.add(name)

    def add(self, name: str) -> Timer:
        """Create (or return the existing) timer called ``name``."""
        if name not in self._timers:
            self._timers[name] = Timer(name)
        return self._timers[name]

    def __getitem__(self, name: str) -> Timer:
        return self.add(name)

    def __contains__(self, name: str) -> bool:
        return name in self._timers

    def __iter__(self) -> Iterator[Timer]:
        return iter(self._timers.values())

    @contextmanager
    def time(self, name: str) -> Iterator[Timer]:
        """Time a block under the timer called ``name``."""
        timer = self.add(name)
        with timer.time():
            yield timer

    @property
    def total(self) -> float:
        """Sum of elapsed time over all timers."""
        return sum(t.elapsed for t in self._timers.values())

    def breakdown(self) -> List[Tuple[str, float, float]]:
        """Rows of ``(name, seconds, fraction_of_total)``, insertion order."""
        total = self.total
        return [
            (t.name, t.elapsed, (t.elapsed / total) if total > 0 else 0.0)
            for t in self._timers.values()
        ]

    def report(self, title: str = "Timers") -> str:
        """Render the Fig. 6-style percentage table as text."""
        lines = [title, "-" * len(title)]
        for name, seconds, frac in self.breakdown():
            lines.append(f"{name:<24s} {seconds:12.6f} s   {100.0 * frac:6.2f} %")
        lines.append(f"{'total':<24s} {self.total:12.6f} s   100.00 %")
        return "\n".join(lines)

    def as_dict(self) -> Dict[str, float]:
        """Elapsed seconds per timer name."""
        return {t.name: t.elapsed for t in self._timers.values()}

    def reset(self) -> None:
        """Reset every timer in the registry."""
        for t in self._timers.values():
            t.reset()


@contextmanager
def timed() -> Iterator[Timer]:
    """Standalone timing context: ``with timed() as t: ...; t.elapsed``."""
    t = Timer("block")
    with t.time():
        yield t
