"""Stable content fingerprints for operator caching.

The serving layer memoizes the expensive offline phases by *geometry*: two
twins whose parameter-to-observable kernels, prior hyperparameters, and
noise models agree byte-for-byte share one Cholesky factor and one
data-to-QoI map.  The fingerprints here are deterministic across processes
(SHA-256 over dtype/shape/bytes and canonical JSON), unlike Python's
builtin ``hash``, so they double as on-disk cache file names.
"""

from __future__ import annotations

import hashlib
import json
from typing import Iterable, Mapping, Optional, Union

import numpy as np

__all__ = ["array_fingerprint", "geometry_fingerprint"]


def _update_with_array(h: "hashlib._Hash", arr: np.ndarray) -> None:
    a = np.ascontiguousarray(arr)
    h.update(str(a.dtype).encode("utf-8"))
    h.update(str(a.shape).encode("utf-8"))
    h.update(a.tobytes())


def array_fingerprint(*arrays: np.ndarray) -> str:
    """SHA-256 hex digest over the dtype, shape, and bytes of each array."""
    h = hashlib.sha256()
    for arr in arrays:
        _update_with_array(h, np.asarray(arr))
    return h.hexdigest()


def geometry_fingerprint(
    meta: Optional[Mapping[str, Union[float, int, str, None]]] = None,
    *arrays: np.ndarray,
) -> str:
    """Digest of a metadata mapping plus any number of defining arrays.

    ``meta`` is serialized as sorted-key JSON so dict ordering never leaks
    into the key; arrays are folded in as in :func:`array_fingerprint`.
    """
    h = hashlib.sha256()
    if meta is not None:
        h.update(json.dumps(dict(meta), sort_keys=True, default=str).encode("utf-8"))
    for arr in arrays:
        _update_with_array(h, np.asarray(arr))
    return h.hexdigest()
