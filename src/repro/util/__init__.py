"""Utility infrastructure shared across the repro library.

Submodules
----------
``timing``
    Wall-clock timers mirroring the paper's POSIX-clock instrumentation
    (Table I timers: Initialization, Setup, Adjoint p2o/p2q, I/O).
``logging``
    Rank-aware loggers for the virtual-parallel substrate.
``memory``
    Array memory accounting used for the Section VII-B memory-optimization
    study (host/device split is emulated as persistent/transient).
``clock``
    Injectable time sources: the wall clock for production, a manually
    advanced virtual clock for timing-independent tests (the fabric's
    deadline flush and the twin orchestrator take either).
``validation``
    Small argument-checking helpers used across public APIs.
``hashing``
    Deterministic content fingerprints (SHA-256 over arrays + metadata)
    used by the serving layer's operator cache.
"""

from repro.util.clock import Clock, ManualClock, WallClock, ensure_clock
from repro.util.hashing import array_fingerprint, geometry_fingerprint
from repro.util.logging import get_logger
from repro.util.memory import MemoryTracker, nbytes_of
from repro.util.timing import Timer, TimerRegistry, timed
from repro.util.validation import (
    check_in,
    check_positive,
    check_shape,
    require,
)

__all__ = [
    "Timer",
    "TimerRegistry",
    "timed",
    "get_logger",
    "MemoryTracker",
    "nbytes_of",
    "require",
    "check_positive",
    "check_shape",
    "check_in",
    "array_fingerprint",
    "geometry_fingerprint",
    "Clock",
    "WallClock",
    "ManualClock",
    "ensure_clock",
]
