"""Injectable clocks: wall time for production, virtual time for tests.

Two consumers in the serving stack depend on the passage of time: the
fabric's micro-batch *deadline flush* (``FabricConfig.max_queue_ms`` arms a
timer that flushes a partial batch), and the twin orchestrator's replay
loop (wall-clock throughput accounting).  Testing either against the real
clock means sleeping — slow at best, flaky under CI preemption at worst.

This module is the seam: everything time-dependent takes a :class:`Clock`
(``monotonic()`` + one-shot ``timer()``), defaulting to the process-wide
:data:`WALL` :class:`WallClock`.  Tests inject a :class:`ManualClock`
instead and *advance virtual time explicitly* — due timers fire
synchronously inside :meth:`ManualClock.advance`, in the calling thread,
so there is nothing to poll and nothing to race.  The fabric's deadline
flush serializes through its dispatch lock either way, so firing from the
test thread preserves the single-dispatcher invariant exactly like the
background timer thread does.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, List, Optional

__all__ = ["Clock", "ManualClock", "WallClock", "WALL", "ensure_clock"]


class Clock:
    """Interface: a monotonic time source plus one-shot timers.

    Subclasses implement :meth:`monotonic` and :meth:`timer`.  Timer
    handles expose ``cancel()`` (idempotent, best-effort: a timer already
    firing may still complete).
    """

    def monotonic(self) -> float:
        """Seconds on a monotonic axis (origin unspecified)."""
        raise NotImplementedError

    def timer(self, delay: float, fn: Callable[[], None]):
        """Arm a one-shot timer calling ``fn`` after ``delay`` seconds.

        Returns a handle with ``cancel()``.
        """
        raise NotImplementedError


class WallClock(Clock):
    """The real clock: :func:`time.monotonic` + daemon ``threading.Timer``."""

    def monotonic(self) -> float:
        return time.monotonic()

    def timer(self, delay: float, fn: Callable[[], None]) -> threading.Timer:
        t = threading.Timer(delay, fn)
        t.daemon = True
        t.start()
        return t


class _ManualTimer:
    """Handle for one pending :class:`ManualClock` timer."""

    __slots__ = ("deadline", "fn", "cancelled", "seq")

    def __init__(self, deadline: float, fn: Callable[[], None], seq: int) -> None:
        self.deadline = deadline
        self.fn = fn
        self.cancelled = False
        self.seq = seq

    def cancel(self) -> None:
        self.cancelled = True


class ManualClock(Clock):
    """A virtual clock advanced explicitly by the test (or replay driver).

    ``monotonic()`` returns the virtual time; ``timer()`` registers a
    deadline; :meth:`advance` moves time forward and fires every due,
    uncancelled timer *synchronously in the calling thread*, in deadline
    order (ties broken by arming order).  Virtual time is stepped to each
    timer's own deadline before its callback runs, so a callback reading
    ``monotonic()`` observes the time it was scheduled for — and a
    callback arming a new timer whose deadline still falls inside the
    same ``advance`` window fires within that same call.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._timers: List[_ManualTimer] = []
        self._seq = 0

    def monotonic(self) -> float:
        return self._now

    def timer(self, delay: float, fn: Callable[[], None]) -> _ManualTimer:
        if delay < 0:
            raise ValueError("delay must be >= 0")
        t = _ManualTimer(self._now + float(delay), fn, self._seq)
        self._seq += 1
        self._timers.append(t)
        return t

    def pending(self) -> int:
        """Number of armed, uncancelled timers."""
        return sum(not t.cancelled for t in self._timers)

    def advance(self, dt: float) -> int:
        """Move virtual time forward by ``dt`` seconds; fire due timers.

        Returns the number of callbacks fired.
        """
        if dt < 0:
            raise ValueError("dt must be >= 0")
        target = self._now + float(dt)
        fired = 0
        while True:
            due: Optional[_ManualTimer] = None
            for t in self._timers:
                if t.cancelled or t.deadline > target:
                    continue
                if due is None or (t.deadline, t.seq) < (due.deadline, due.seq):
                    due = t
            if due is None:
                break
            self._timers.remove(due)
            self._now = max(self._now, due.deadline)
            due.fn()
            fired += 1
        self._timers = [t for t in self._timers if not t.cancelled]
        self._now = target
        return fired


WALL = WallClock()
"""Process-wide default wall clock."""


def ensure_clock(clock: Optional[Clock]) -> Clock:
    """``None`` means the shared :data:`WALL` clock."""
    return WALL if clock is None else clock
