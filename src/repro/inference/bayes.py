"""Phases 2--4: data-space Hessian, goal-oriented operators, real-time solves.

Following Section V-B of the paper, the posterior is manipulated entirely in
the *data space* of dimension ``N_d N_t`` via the Sherman--Morrison--Woodbury
identity:

.. math::

    \\Gamma_{post} = \\Gamma_{prior} - G^* K^{-1} G, \\qquad
    K = \\Gamma_{noise} + F \\Gamma_{prior} F^*, \\qquad
    G^* = \\Gamma_{prior} F^*,

so that the MAP point is the Kalman-gain form ``m_{map} = G^* K^{-1}
d_{obs}`` — **exact**, no low-rank approximation, which is essential here
because the hyperbolic p2o map has nearly full effective rank.

Phase index (Table III):

* **Phase 2** — assemble the dense symmetric ``K`` (paper: ``N_d N_t``
  FFT-matvecs on unit vectors; here batched, plus an algebraically
  equivalent direct Toeplitz-Gram route used for cross-validation), then
  Cholesky-factorize it.
* **Phase 3** — the goal-oriented operators: ``B = F Gamma_prior Fq*``,
  ``P_q = F_q Gamma_prior F_q*``, the QoI posterior covariance
  ``Gamma_post(q) = P_q - B^T K^{-1} B`` and the data-to-QoI map
  ``Q = B^T K^{-1}``.
* **Phase 4** — the online solves: ``m_map`` (one triangular solve pair +
  one FFT rmatvec + one prior application) and ``q_map = Q d_obs`` (one
  small dense matvec — deployable "entirely without any HPC
  infrastructure", Section VIII).

Data-space flattening is **time-major** (``index = slot * N_d + sensor``)
throughout, so truncating data to the first ``k`` slots corresponds to a
leading principal submatrix of ``K`` — and hence to the leading block of
its Cholesky factor, which the streaming early-warning extension exploits.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Tuple

import numpy as np
import scipy.linalg as sla

from repro.inference.forecast import QoIForecast
from repro.inference.noise import NoiseModel
from repro.inference.prior import SpatioTemporalPrior
from repro.inference.toeplitz import BlockToeplitzOperator
from repro.util.timing import TimerRegistry
from repro.util.validation import check_in

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.inference.streaming import IncrementalStreamingPosterior

__all__ = ["ToeplitzBayesianInversion"]


class ToeplitzBayesianInversion:
    """The paper's real-time inversion engine for one sensor/QoI geometry.

    Parameters
    ----------
    F:
        p2o operator (block lower-triangular Toeplitz), ``(Nt, Nd, Nm)``
        kernel.
    prior:
        Spatio-temporal prior over the slot-blocked parameters.
    noise:
        Diagonal Gaussian observation-noise model.
    Fq:
        Optional p2q operator for goal-oriented forecasting, kernel
        ``(Nt, Nq, Nm)``.
    """

    def __init__(
        self,
        F: BlockToeplitzOperator,
        prior: SpatioTemporalPrior,
        noise: NoiseModel,
        Fq: Optional[BlockToeplitzOperator] = None,
        timers: Optional[TimerRegistry] = None,
    ) -> None:
        if F.nt != prior.nt or F.n_in != prior.nm:
            raise ValueError(
                f"F kernel (Nt={F.nt}, Nm={F.n_in}) inconsistent with prior "
                f"(Nt={prior.nt}, Nm={prior.nm})"
            )
        if noise.nt != F.nt or noise.nd != F.n_out:
            raise ValueError("noise model dims inconsistent with F")
        if Fq is not None and (Fq.nt != F.nt or Fq.n_in != F.n_in):
            raise ValueError("Fq kernel inconsistent with F")
        self.F = F
        self.Fq = Fq
        self.prior = prior
        self.noise = noise
        self.nt, self.nd, self.nm = F.nt, F.n_out, F.n_in
        self.nq = Fq.n_out if Fq is not None else 0
        self.timers = timers if timers is not None else TimerRegistry()

        self.K: Optional[np.ndarray] = None
        self._K_chol: Optional[Tuple[np.ndarray, bool]] = None
        self._L_lower: Optional[np.ndarray] = None
        self._logdiag_cum: Optional[np.ndarray] = None
        # Streaming engines memoized per backend key (numpy, torch, ...).
        self._streaming: Dict[tuple, "IncrementalStreamingPosterior"] = {}
        self.B: Optional[np.ndarray] = None
        self.Pq: Optional[np.ndarray] = None
        self.qoi_covariance: Optional[np.ndarray] = None
        self.Q: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Elementary compositions
    # ------------------------------------------------------------------
    def apply_G(self, m: np.ndarray) -> np.ndarray:
        """``G m = F Gamma_prior m`` on ``(Nt, Nm[, k])``."""
        return self.F.matvec(self.prior.apply(m))

    def apply_Gstar(self, d: np.ndarray) -> np.ndarray:
        """``G* d = Gamma_prior F* d`` on ``(Nt, Nd[, k])``."""
        return self.prior.apply(self.F.rmatvec(d))

    def hessian_data_action(self, d: np.ndarray) -> np.ndarray:
        """``K d = Gamma_noise d + F Gamma_prior F* d`` (matrix-free)."""
        v = self.F.matvec(self.apply_Gstar(d))
        s = self.noise.variance if d.ndim == 2 else self.noise.variance[:, :, None]
        return v + s * d

    # ------------------------------------------------------------------
    # Phase 2: data-space Hessian
    # ------------------------------------------------------------------
    def _unit_block(self, start: int, stop: int, n_chan: int) -> np.ndarray:
        """Unit data vectors for flat indices ``start..stop`` as a batch."""
        k = stop - start
        e = np.zeros((self.nt * n_chan, k))
        e[np.arange(start, stop), np.arange(k)] = 1.0
        return e.reshape(self.nt, n_chan, k)

    def _gram_fft(
        self, F1: BlockToeplitzOperator, F2: BlockToeplitzOperator, chunk: int
    ) -> np.ndarray:
        """``F1 Gamma_prior F2*`` dense, by batched FFT matvecs on unit vectors.

        This is the paper's route: each column costs one ``F2`` rmatvec,
        one prior application, and one ``F1`` matvec — all FFT/LU based,
        no PDE solves.
        """
        n_cols = self.nt * F2.n_out
        out = np.empty((self.nt * F1.n_out, n_cols))
        for start in range(0, n_cols, chunk):
            stop = min(start + chunk, n_cols)
            E = self._unit_block(start, stop, F2.n_out)
            Z = self.prior.apply(F2.rmatvec(E))
            Y = F1.matvec(Z)
            out[:, start:stop] = Y.reshape(self.nt * F1.n_out, stop - start)
        return out

    def _gram_direct(
        self, F1: BlockToeplitzOperator, F2: BlockToeplitzOperator
    ) -> np.ndarray:
        """``F1 Gamma_prior F2*`` via the Toeplitz-Gram cumulative identity.

        For the block-diagonal-in-time prior,
        ``(F1 Gamma F2*)(i, j) = sum_{l=0}^{min(i,j)} H[i-l, j-l]`` with
        ``H[a, b] = T1[a] Gamma_s T2[b]^T``; running sums along each block
        diagonal assemble the dense Gram in ``O(Nt^2)`` block additions.
        Used to cross-validate the FFT route (they agree to rounding).
        """
        if self.prior.temporal_rho:
            raise ValueError("direct Gram assembly requires block-diagonal prior")
        nt = self.nt
        n1, n2 = F1.n_out, F2.n_out
        # G1[k] = T1[k] Gamma_s  (Gamma_s symmetric).
        k1 = F1.kernel.reshape(nt * n1, self.nm)
        G1 = self.prior.spatial.apply(k1.T).T.reshape(nt, n1, self.nm)
        H = np.einsum("adm,brm->abdr", G1, F2.kernel, optimize=True)
        out = np.zeros((nt * n1, nt * n2))
        for o in range(-(nt - 1), nt):
            running = np.zeros((n1, n2))
            for t in range(nt - abs(o)):
                i = t + max(o, 0)
                j = t + max(-o, 0)
                running += H[i, j]
                out[i * n1 : (i + 1) * n1, j * n2 : (j + 1) * n2] = running
        return out

    def assemble_data_space_hessian(
        self, method: str = "fft", chunk: int = 256
    ) -> np.ndarray:
        """Phase 2: form ``K = Gamma_noise + F Gamma_prior F*`` and factor it.

        ``method="fft"`` reproduces the paper's unit-vector FFT-matvec
        assembly; ``method="direct"`` uses the cumulative Toeplitz-Gram
        identity (block-diagonal priors only).
        """
        check_in("method", method, ("fft", "direct"))
        with self.timers.time("Phase 2: form K"):
            if method == "fft":
                K = self._gram_fft(self.F, self.F, chunk)
            else:
                K = self._gram_direct(self.F, self.F)
            K = 0.5 * (K + K.T)  # kill rounding asymmetry
            K[np.arange(K.shape[0]), np.arange(K.shape[0])] += self.noise.flat_variance()
        self.K = K
        with self.timers.time("Phase 2: factorize K"):
            self._K_chol = sla.cho_factor(K, lower=True)
        self._L_lower = None  # derived views are stale after re-factorization
        self._logdiag_cum = None
        self._streaming.clear()
        return K

    @property
    def phase2_complete(self) -> bool:
        """Whether the data-space factor is available for online solves.

        True after :meth:`assemble_data_space_hessian`, and also for
        inversions rebuilt from an archived Cholesky factor (where the
        dense ``K`` itself is never reconstructed).
        """
        return self._K_chol is not None

    def solve_K(self, rhs: np.ndarray) -> np.ndarray:
        """``K^{-1} rhs`` via the cached Cholesky factor."""
        if self._K_chol is None:
            raise RuntimeError("call assemble_data_space_hessian() first (Phase 2)")
        return sla.cho_solve(self._K_chol, rhs)

    @property
    def cholesky_lower(self) -> np.ndarray:
        """The lower Cholesky factor ``L`` with ``K = L L^T``.

        Because the data ordering is time-major, ``L[:k*Nd, :k*Nd]`` is the
        factor of the first-``k``-slots subproblem — the basis of streaming
        partial-data early warning.  The ``O(n^2)`` strictly-lower copy is
        computed once and cached contiguous (read-only): the streaming
        engine, every :class:`~repro.twin.earlywarning.StreamingInverter`,
        the fleet server, and archive writes all share the same array.
        """
        if self._K_chol is None:
            raise RuntimeError("call assemble_data_space_hessian() first (Phase 2)")
        if self._L_lower is None:
            c, lower = self._K_chol
            if not lower:  # pragma: no cover - we always factor lower
                c = c.T
            L = np.ascontiguousarray(np.tril(c))
            L.setflags(write=False)
            self._L_lower = L
        return self._L_lower

    @property
    def cholesky_logdiag_cum(self) -> np.ndarray:
        """Cumulative ``log diag(L)`` per observation slot, ``(Nt + 1,)``.

        ``cum[k] = sum_{i < k Nd} log L_ii``, so the truncated-data
        log-determinant is ``log |K_k| = 2 cum[k]`` — the constant half of
        the Gaussian model evidence at horizon ``k``, closed-form for every
        horizon at once because ``L_k`` is the leading block of ``L``.
        Computed once per factorization and cached read-only (the streaming
        scenario-identification path reads it every slot).
        """
        if self._K_chol is None:
            raise RuntimeError("call assemble_data_space_hessian() first (Phase 2)")
        if self._logdiag_cum is None:
            c, _ = self._K_chol
            d = np.log(np.diagonal(c))
            cum = np.zeros(self.nt + 1)
            np.cumsum(d.reshape(self.nt, self.nd).sum(axis=1), out=cum[1:])
            cum.setflags(write=False)
            self._logdiag_cum = cum
        return self._logdiag_cum

    # ------------------------------------------------------------------
    # Phase 3: goal-oriented operators
    # ------------------------------------------------------------------
    def assemble_goal_oriented(
        self, method: str = "fft", chunk: int = 256
    ) -> Dict[str, np.ndarray]:
        """Phase 3: ``B``, ``P_q``, ``Gamma_post(q)`` and ``Q = B^T K^{-1}``."""
        if self.Fq is None:
            raise RuntimeError("no p2q operator (Fq) was provided")
        if self._K_chol is None:
            raise RuntimeError("Phase 2 must run before Phase 3")
        check_in("method", method, ("fft", "direct"))
        with self.timers.time("Phase 3: QoI covariance"):
            if method == "fft":
                B = self._gram_fft(self.F, self.Fq, chunk)
                Pq = self._gram_fft(self.Fq, self.Fq, chunk)
            else:
                B = self._gram_direct(self.F, self.Fq)
                Pq = self._gram_direct(self.Fq, self.Fq)
            Pq = 0.5 * (Pq + Pq.T)
            KinvB = self.solve_K(B)
            cov = Pq - B.T @ KinvB
            cov = 0.5 * (cov + cov.T)
        with self.timers.time("Phase 3: data-to-QoI map"):
            Q = KinvB.T  # (Nq Nt, Nd Nt): Q = B^T K^{-1}
        self.B = B
        self.Pq = Pq
        self.qoi_covariance = cov
        self.Q = Q
        self._streaming.clear()  # engine state derives from B/Pq
        return {"B": B, "Pq": Pq, "qoi_covariance": cov, "Q": Q}

    def streaming_state(self, backend=None) -> "IncrementalStreamingPosterior":
        """The memoized incremental streaming engine over this inversion.

        One :class:`~repro.inference.streaming.IncrementalStreamingPosterior`
        per inversion *and backend*, so all consumers of a backend
        (single-event streamers, the fleet server, latency sweeps) share
        the same forward-substituted geometry rows ``Y = L^{-1} B`` and
        per-horizon covariance snapshots.  ``backend`` is a
        :class:`repro.backend.Backend`, a name, or ``None`` for the
        bitwise numpy default.  Requires Phases 2-3; invalidated by
        re-assembly.
        """
        from repro.backend import resolve_backend

        bk = resolve_backend(backend)
        engine = self._streaming.get(bk.key())
        if engine is None:
            from repro.inference.streaming import IncrementalStreamingPosterior

            engine = IncrementalStreamingPosterior(self, backend=bk)
            self._streaming[bk.key()] = engine
        return engine

    @property
    def streaming_state_peek(self) -> Optional["IncrementalStreamingPosterior"]:
        """The memoized *numpy* streaming engine, or ``None`` if none exists.

        Unlike :meth:`streaming_state` this never creates (or requires
        the phases for) an engine — for reporting/introspection.
        """
        from repro.backend import default_backend

        return self._streaming.get(default_backend().key())

    # ------------------------------------------------------------------
    # Phase 4: real-time solves
    # ------------------------------------------------------------------
    def infer(self, d_obs: np.ndarray) -> np.ndarray:
        """Phase 4a: the MAP parameter field ``m_map = G* K^{-1} d_obs``.

        Input ``(Nt, Nd)`` or a stack of streams ``(Nt, Nd, k)``; output
        matches with ``Nd`` replaced by ``Nm``.  Cost: two dense triangular
        solves, one FFT rmatvec, one batched prior application — the
        paper's sub-0.2-second online path.  The batched form solves all
        ``k`` right-hand sides against the one cached Cholesky factor
        (BLAS-3 ``trsm`` instead of ``k`` BLAS-2 ``trsv`` sweeps), which is
        what the multi-stream serving layer builds on.
        """
        d = np.asarray(d_obs, dtype=np.float64)
        squeeze = d.ndim == 2
        if d.shape[:2] != (self.nt, self.nd) or d.ndim not in (2, 3):
            raise ValueError(
                f"d_obs must be ({self.nt},{self.nd}[,k]), got {d.shape}"
            )
        with self.timers.time("Phase 4: infer parameters"):
            rhs = d.reshape(self.nt * self.nd, -1)
            z = self.solve_K(rhs[:, 0] if squeeze else rhs)
            m_map = self.apply_Gstar(z.reshape(d.shape))
        return m_map

    def predict(self, d_obs: np.ndarray, times: Optional[np.ndarray] = None) -> QoIForecast:
        """Phase 4b: QoI forecast ``q_map = Q d_obs`` with exact covariance.

        A single ``(Nq Nt) x (Nd Nt)`` dense matvec — the "deployable
        without HPC infrastructure" path of Section VIII.
        """
        if self.Q is None or self.qoi_covariance is None:
            raise RuntimeError("Phase 3 must run before predict()")
        d = np.asarray(d_obs, dtype=np.float64)
        with self.timers.time("Phase 4: predict QoI"):
            q = (self.Q @ d.reshape(-1)).reshape(self.nt, self.nq)
        if times is None:
            times = np.arange(1, self.nt + 1, dtype=np.float64)
        return QoIForecast(times=times, mean=q, covariance=self.qoi_covariance)

    def infer_and_predict(
        self, d_obs: np.ndarray, times: Optional[np.ndarray] = None
    ) -> Tuple[np.ndarray, QoIForecast]:
        """The full online Phase 4: parameters and QoI from one data vector."""
        return self.infer(d_obs), self.predict(d_obs, times=times)

    # ------------------------------------------------------------------
    # Posterior actions (exact, used by tests and the posterior module)
    # ------------------------------------------------------------------
    def posterior_covariance_action(self, v: np.ndarray) -> np.ndarray:
        """``Gamma_post v = Gamma_prior v - G* K^{-1} G v`` on ``(Nt, Nm[, k])``."""
        gv = self.apply_G(v)
        squeeze = gv.ndim == 2
        flat = gv.reshape(self.nt * self.nd, -1)
        z = self.solve_K(flat).reshape(self.nt, self.nd, -1)
        corr = self.apply_Gstar(z if not squeeze else z[:, :, 0])
        return self.prior.apply(v) - corr

    def report(self) -> Dict[str, float]:
        """Phase timers plus stored-operator sizes (bytes)."""
        out: Dict[str, float] = dict(self.timers.as_dict())
        for name, arr in (
            ("K_bytes", self.K),
            ("B_bytes", self.B),
            ("Q_bytes", self.Q),
            ("qoi_cov_bytes", self.qoi_covariance),
        ):
            out[name] = float(arr.nbytes) if arr is not None else 0.0
        out["p2o_kernel_bytes"] = float(self.F.kernel.nbytes)
        return out
