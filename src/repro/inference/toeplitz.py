"""FFTMatvec: block lower-triangular Toeplitz matvecs via circulant embedding.

The discrete p2o map of an LTI dynamical system is block lower-triangular
Toeplitz (paper Section V-A): ``d_i = sum_{j <= i} T[i-j] m_j`` with blocks
``T[k] = C S^k W`` of shape ``(n_out, n_in)``.  This module stores only the
kernel — the first block column, ``O(n_out n_in N_t)`` memory instead of
``O(n_out n_in N_t^2)`` — and applies the operator and its transpose by:

1. zero-padding the time axis to ``N >= 2 N_t - 1`` (circulant embedding),
2. batched real FFTs along time,
3. one small dense matmul per retained frequency,
4. inverse FFT and truncation to the causal window.

The transpose (``rmatvec``) is the *correlation* ``g_j = sum_{i >= j}
T[i-j]^T d_i``, handled with conjugated kernel spectra.

Data layout (paper Section V-A: "exchanging the order of space and time
vector indices ... avoids strided memory accesses"): with ``layout=
"space-major"`` (default) vectors are transposed once so the FFT runs along
the contiguous last axis; ``layout="time-major"`` keeps the natural order
and FFTs along a strided axis.  Both produce identical results; the
benchmark ``bench_ablation_gridtune.py`` measures the difference.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np
from scipy.fft import next_fast_len

from repro.backend import Backend, resolve_backend
from repro.util.validation import check_in

__all__ = ["BlockToeplitzOperator"]


class BlockToeplitzOperator:
    """A block lower-triangular Toeplitz operator defined by its kernel.

    Parameters
    ----------
    kernel:
        ``(Nt, n_out, n_in)`` array: block ``k`` maps the input at slot
        ``j`` to the output at slot ``j + k``.
    layout:
        ``"space-major"`` (transpose-for-contiguity, default) or
        ``"time-major"`` (strided FFT axis).
    dtype:
        Working dtype (double precision throughout, as in the paper).
    backend:
        Array backend for the FFT applies (``None`` = numpy, bitwise).
        The kernel spectra are always computed on the host at setup; for
        a non-numpy backend they are mirrored to the device lazily, host
        inputs are round-tripped (in, apply, out), and device-native
        inputs stay on the device.
    """

    def __init__(
        self,
        kernel: np.ndarray,
        layout: str = "space-major",
        dtype: np.dtype = np.float64,
        backend: Union[Backend, str, None] = None,
    ) -> None:
        kernel = np.asarray(kernel, dtype=dtype)
        if kernel.ndim != 3:
            raise ValueError(f"kernel must be (Nt, n_out, n_in), got {kernel.shape}")
        check_in("layout", layout, ("space-major", "time-major"))
        self.backend = resolve_backend(backend)
        self.kernel = np.ascontiguousarray(kernel)
        self.nt, self.n_out, self.n_in = kernel.shape
        self.layout = layout
        self.nfft = next_fast_len(2 * self.nt - 1, real=True)
        # Kernel spectrum, stored frequency-major for the per-frequency matmul.
        khat = np.fft.rfft(self.kernel, n=self.nfft, axis=0)
        self._khat = np.ascontiguousarray(khat)  # (Nf, n_out, n_in)
        self._khat_ct = np.ascontiguousarray(
            khat.conj().transpose(0, 2, 1)
        )  # (Nf, n_in, n_out)
        self.nf = self._khat.shape[0]
        self._khat_dev = None  # lazy device mirrors (non-numpy backends)
        self._khat_ct_dev = None

    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, int]:
        """Dense shape ``(Nt * n_out, Nt * n_in)``."""
        return (self.nt * self.n_out, self.nt * self.n_in)

    @property
    def kernel_nbytes(self) -> int:
        """Memory of the compact kernel representation."""
        return int(self.kernel.nbytes + self._khat.nbytes + self._khat_ct.nbytes)

    # ------------------------------------------------------------------
    # FFT helpers with the two data layouts
    # ------------------------------------------------------------------
    def _rfft_time(self, x: np.ndarray, bk: Optional[Backend] = None) -> np.ndarray:
        """Real FFT along axis 0 (time), padded to ``nfft`` -> (Nf, n, k)."""
        if bk is None:
            if self.layout == "time-major":
                return np.fft.rfft(x, n=self.nfft, axis=0)
            # space-major: make time the contiguous last axis, FFT, restore.
            xt = np.ascontiguousarray(np.moveaxis(x, 0, -1))
            yt = np.fft.rfft(xt, n=self.nfft, axis=-1)
            return np.ascontiguousarray(np.moveaxis(yt, -1, 0))
        if self.layout == "time-major":
            return bk.rfft(x, n=self.nfft, axis=0)
        xt = bk.ascontiguousarray(bk.moveaxis(x, 0, -1))
        yt = bk.rfft(xt, n=self.nfft, axis=-1)
        return bk.ascontiguousarray(bk.moveaxis(yt, -1, 0))

    def _irfft_time(self, xhat: np.ndarray, bk: Optional[Backend] = None) -> np.ndarray:
        """Inverse of :meth:`_rfft_time`, truncated to the causal window."""
        if bk is None:
            if self.layout == "time-major":
                return np.fft.irfft(xhat, n=self.nfft, axis=0)[: self.nt]
            xt = np.ascontiguousarray(np.moveaxis(xhat, 0, -1))
            yt = np.fft.irfft(xt, n=self.nfft, axis=-1)
            return np.ascontiguousarray(np.moveaxis(yt, -1, 0))[: self.nt]
        if self.layout == "time-major":
            return bk.irfft(xhat, n=self.nfft, axis=0)[: self.nt]
        xt = bk.ascontiguousarray(bk.moveaxis(xhat, 0, -1))
        yt = bk.irfft(xt, n=self.nfft, axis=-1)
        return bk.ascontiguousarray(bk.moveaxis(yt, -1, 0))[: self.nt]

    def _device_spectra(self):
        """Lazily mirror the kernel spectra to the non-numpy device."""
        if self._khat_dev is None:
            bk = self.backend
            self._khat_dev = bk.ascomplex(self._khat)
            self._khat_ct_dev = bk.ascomplex(self._khat_ct)
        return self._khat_dev, self._khat_ct_dev

    # ------------------------------------------------------------------
    # Operator actions
    # ------------------------------------------------------------------
    def matvec(self, m: np.ndarray) -> np.ndarray:
        """Causal block convolution: ``d_i = sum_{j<=i} T[i-j] m_j``.

        ``m``: ``(Nt, n_in)`` or batched ``(Nt, n_in, k)``; output matches
        with ``n_in`` replaced by ``n_out``.
        """
        squeeze = m.ndim == 2
        mm = m[:, :, None] if squeeze else m
        if mm.shape[0] != self.nt or mm.shape[1] != self.n_in:
            raise ValueError(
                f"m must be (Nt={self.nt}, n_in={self.n_in}[, k]), got {m.shape}"
            )
        bk = self.backend
        if bk.is_numpy:
            mhat = self._rfft_time(mm)  # (Nf, n_in, k)
            dhat = np.matmul(self._khat, mhat)  # (Nf, n_out, k)
            d = self._irfft_time(dhat)
        else:
            khat, _ = self._device_spectra()
            native = bk.is_native(mm)
            x = mm if native else bk.asarray(mm)
            d = self._irfft_time(bk.matmul(khat, self._rfft_time(x, bk)), bk)
            if not native:
                d = bk.to_numpy(d, copy=True)
        return d[:, :, 0] if squeeze else d

    def rmatvec(self, d: np.ndarray) -> np.ndarray:
        """Transpose action (correlation): ``g_j = sum_{i>=j} T[i-j]^T d_i``."""
        squeeze = d.ndim == 2
        dd = d[:, :, None] if squeeze else d
        if dd.shape[0] != self.nt or dd.shape[1] != self.n_out:
            raise ValueError(
                f"d must be (Nt={self.nt}, n_out={self.n_out}[, k]), got {d.shape}"
            )
        bk = self.backend
        if bk.is_numpy:
            dhat = self._rfft_time(dd)  # (Nf, n_out, k)
            ghat = np.matmul(self._khat_ct, dhat)  # (Nf, n_in, k)
            g = self._irfft_time(ghat)
        else:
            _, khat_ct = self._device_spectra()
            native = bk.is_native(dd)
            x = dd if native else bk.asarray(dd)
            g = self._irfft_time(bk.matmul(khat_ct, self._rfft_time(x, bk)), bk)
            if not native:
                g = bk.to_numpy(g, copy=True)
        return g[:, :, 0] if squeeze else g

    # ------------------------------------------------------------------
    # Dense forms (tests / small problems)
    # ------------------------------------------------------------------
    def dense(self) -> np.ndarray:
        """Materialize the full ``(Nt n_out, Nt n_in)`` matrix (small only)."""
        nt, no, ni = self.nt, self.n_out, self.n_in
        out = np.zeros((nt * no, nt * ni))
        for i in range(nt):
            for j in range(i + 1):
                out[i * no : (i + 1) * no, j * ni : (j + 1) * ni] = self.kernel[i - j]
        return out

    def transpose_operator(self) -> "BlockToeplitzOperator":
        """The operator whose ``matvec`` equals this operator's ``rmatvec``.

        Note the transpose of a block *lower*-triangular Toeplitz matrix is
        block *upper*-triangular; it is returned as the same class with the
        roles of matvec/rmatvec swapped via kernel transposition.
        """
        return _TransposedBTO(self)

    def flops_per_matvec(self, k: int = 1) -> float:
        """Analytic FLOP count of one batched matvec (FFTs + block matmuls)."""
        fft_cost = 2.5 * self.nfft * np.log2(max(self.nfft, 2))
        total_ffts = (self.n_in + self.n_out) * k * fft_cost
        matmul = 8.0 * self.nf * self.n_out * self.n_in * k  # complex MACs
        return float(total_ffts + matmul)


class _TransposedBTO(BlockToeplitzOperator):
    """View of a :class:`BlockToeplitzOperator` with matvec/rmatvec swapped."""

    def __init__(self, base: BlockToeplitzOperator) -> None:
        self._base = base
        # Mirror the public metadata without recomputing spectra.
        self.kernel = base.kernel
        self.backend = base.backend
        self.nt = base.nt
        self.n_out, self.n_in = base.n_in, base.n_out
        self.layout = base.layout
        self.nfft = base.nfft
        self.nf = base.nf

    @property
    def kernel_nbytes(self) -> int:
        """Memory of the shared compact representation (owned by the base).

        The view never materializes spectra of its own (``_khat`` /
        ``_khat_ct`` live on the base operator), so the inherited property
        would crash; delegate instead.
        """
        return self._base.kernel_nbytes

    def matvec(self, m: np.ndarray) -> np.ndarray:
        return self._base.rmatvec(m)

    def rmatvec(self, d: np.ndarray) -> np.ndarray:
        return self._base.matvec(d)

    def dense(self) -> np.ndarray:
        return self._base.dense().T

    def transpose_operator(self) -> BlockToeplitzOperator:
        return self._base
