"""Real-time Bayesian inference for LTI parameter-to-observable maps.

This package implements the paper's algorithmic core (Section V): the
offline--online decomposition that turns a billion-parameter PDE-constrained
Bayesian inverse problem into a sub-second dense linear-algebra problem.

Submodules
----------
``toeplitz``
    ``BlockToeplitzOperator`` — the FFTMatvec engine: block lower-triangular
    Toeplitz matvecs/rmatvecs via circulant embedding and batched real FFTs,
    with the paper's space-major data-layout optimization.
``prior``
    BiLaplacian (Matern) Gaussian priors on the seafloor trace grid, built
    hIPPYlib-style from sparse elliptic operators with LU-factorized solves;
    spatio-temporal wrappers (block-diagonal in time by default, optional
    AR(1) temporal correlation as an extension).
``noise``
    Diagonal Gaussian observation-noise models (relative-amplitude scaling
    as in the paper's 1% synthetic noise).
``bayes``
    ``ToeplitzBayesianInversion`` — Phases 2-4: the data-space Hessian
    ``K = Gamma_noise + F Gamma_prior F*`` and its Cholesky factorization,
    the goal-oriented operators ``B``, ``Gamma_post(q)``, the data-to-QoI
    map ``Q``, and the real-time MAP/forecast solves.
``streaming``
    ``IncrementalStreamingPosterior`` / ``StreamingFleet`` — the
    incremental partial-data engine: the nested forward-substituted states
    ``Y = L^{-1} B`` (geometry, shared) and ``w = L^{-1} d`` (per stream,
    batched across a fleet) advanced one observation slot at a time, with
    rank-``Nd`` covariance downdates instead of per-horizon re-solves.
``posterior``
    Exact posterior machinery: pointwise marginal variances (slot and
    time-integrated displacement), Matheron posterior sampling.
``forecast``
    QoI forecast containers: credible intervals, coverage checks,
    exceedance probabilities for early warning.
"""

from repro.inference.bayes import ToeplitzBayesianInversion
from repro.inference.forecast import QoIForecast
from repro.inference.noise import NoiseModel
from repro.inference.posterior import PosteriorSampler, posterior_pointwise_variance
from repro.inference.prior import BiLaplacianPrior, SpatioTemporalPrior
from repro.inference.streaming import IncrementalStreamingPosterior, StreamingFleet
from repro.inference.toeplitz import BlockToeplitzOperator

__all__ = [
    "BlockToeplitzOperator",
    "BiLaplacianPrior",
    "SpatioTemporalPrior",
    "NoiseModel",
    "ToeplitzBayesianInversion",
    "IncrementalStreamingPosterior",
    "StreamingFleet",
    "PosteriorSampler",
    "posterior_pointwise_variance",
    "QoIForecast",
]
