"""BiLaplacian (Matern) Gaussian priors on the seafloor trace grid.

Following the paper ("each block the inverse of an elliptic PDE operator in
space representing a Matern covariance") and the hIPPYlib construction, the
spatial prior covariance is

.. math:: \\Gamma_s = A^{-1} M A^{-1}, \\qquad A = \\gamma K + \\delta M
          (+ \\beta M_{\\partial}),

with ``K``/``M`` the stiffness/lumped-mass matrices of a Q1 FEM on the
(possibly non-uniform) tensor grid of bottom-trace nodes, and ``beta`` an
optional Robin boundary term that tempers the well-known variance inflation
at the domain boundary.  ``A`` is factorized once with sparse LU; every
prior application is two triangular solves plus a diagonal scaling, batched
over right-hand sides.

The spatio-temporal prior over ``m(x, t)`` is block-diagonal across the
``N_t`` observation slots (the paper's choice).  As a documented extension,
an AR(1) temporal correlation ``C_t[i,j] = rho_t^{|i-j|}`` can be composed
with the spatial blocks (``Gamma_prior = C_t (x) Gamma_s``), exercised by
the ablation benchmarks.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np
import scipy.linalg as sla
import scipy.sparse as sp
from scipy.sparse.linalg import splu

from repro.util.validation import check_positive

__all__ = ["tensor_q1_matrices", "BiLaplacianPrior", "SpatioTemporalPrior"]


def _q1_1d(nodes: np.ndarray) -> Tuple[sp.csr_matrix, np.ndarray]:
    """1D Q1 stiffness (CSR) and *lumped* mass (diagonal) on given nodes."""
    x = np.asarray(nodes, dtype=np.float64).reshape(-1)
    if x.size < 2 or np.any(np.diff(x) <= 0):
        raise ValueError("nodes must be strictly increasing with >= 2 entries")
    h = np.diff(x)
    n = x.size
    main = np.zeros(n)
    main[:-1] += 1.0 / h
    main[1:] += 1.0 / h
    off = -1.0 / h
    K = sp.diags([off, main, off], offsets=[-1, 0, 1], format="csr")
    mass = np.zeros(n)
    mass[:-1] += h / 2.0
    mass[1:] += h / 2.0
    return K, mass


def tensor_q1_matrices(
    axes: List[np.ndarray],
) -> Tuple[sp.csr_matrix, np.ndarray]:
    """Stiffness and lumped mass of a Q1 tensor-product FEM.

    For axes ``(x_0, ..., x_{d-1})``:
    ``K = sum_d  M_0 (x) ... K_d ... (x) M_{d-1}`` and
    ``M = M_0 (x) ... (x) M_{d-1}`` with lumped (diagonal) 1D masses, so
    ``M`` stays diagonal and ``K`` sparse — the standard separable
    assembly that keeps the prior solves cheap at any dimension.
    """
    mats = [_q1_1d(a) for a in axes]
    d = len(mats)
    if d == 0:
        raise ValueError("need at least one axis")
    M = mats[0][1]
    for _, m1 in mats[1:]:
        M = np.kron(M, m1)
    K: Optional[sp.csr_matrix] = None
    for i in range(d):
        term: Optional[sp.spmatrix] = None
        for j, (Kj, Mj) in enumerate(mats):
            fac: sp.spmatrix = Kj if j == i else sp.diags(Mj)
            term = fac if term is None else sp.kron(term, fac, format="csr")
        K = term if K is None else (K + term).tocsr()
    return K.tocsr(), np.asarray(M)


def _boundary_lumped_mass(axes: List[np.ndarray]) -> np.ndarray:
    """Lumped boundary 'mass' on the tensor grid boundary (Robin term).

    For 1D parameter domains these are unit point masses at the endpoints;
    in 2D, 1D lumped masses along each boundary edge — the discrete
    counterpart of hIPPYlib's Robin boundary integral.
    """
    shapes = [a.size for a in axes]
    d = len(axes)
    out = np.zeros(shapes)
    masses = [_q1_1d(a)[1] for a in axes]
    for i in range(d):
        for side in (0, -1):
            sl = [slice(None)] * d
            sl[i] = side
            w = np.ones(())
            for j in range(d):
                if j == i:
                    continue
                w = np.multiply.outer(w, masses[j])
            out[tuple(sl)] += w if d > 1 else 1.0
    return out.reshape(-1)


class BiLaplacianPrior:
    """Matern-like Gaussian prior ``N(0, (gamma K + delta M)^{-1} M (...)^{-1})``.

    Parameters
    ----------
    axes:
        Per-axis 1D node coordinates of the (tensor) parameter grid — for
        the tsunami twin, the bottom-trace node coordinates from
        :class:`repro.fem.spaces.TraceGrid`.
    gamma, delta:
        Elliptic operator coefficients; correlation length scales like
        ``sqrt(gamma / delta)`` and pointwise variance like
        ``1 / (gamma delta)``-ish (dimension dependent).
    robin_beta:
        Optional Robin boundary coefficient; ``None`` disables it, and
        :meth:`from_correlation` picks the hIPPYlib-recommended value.
    """

    def __init__(
        self,
        axes: List[np.ndarray],
        gamma: float,
        delta: float,
        robin_beta: Optional[float] = None,
    ) -> None:
        check_positive("gamma", gamma)
        check_positive("delta", delta)
        self.axes = [np.asarray(a, dtype=np.float64) for a in axes]
        self.dim = len(self.axes)
        self.gamma = float(gamma)
        self.delta = float(delta)
        K, mass = tensor_q1_matrices(self.axes)
        self.K = K
        self.M = mass  # lumped: diagonal stored as a vector
        A = (gamma * K + delta * sp.diags(mass)).tocsc()
        if robin_beta is not None:
            check_positive("robin_beta", robin_beta)
            A = (A + robin_beta * sp.diags(_boundary_lumped_mass(self.axes))).tocsc()
        self.robin_beta = robin_beta
        self.A = A
        self._lu = splu(A)
        self.n = int(mass.size)
        self._sqrt_m = np.sqrt(mass)

    # ------------------------------------------------------------------
    @classmethod
    def from_correlation(
        cls,
        axes: List[np.ndarray],
        sigma: float,
        correlation_length: float,
        robin: bool = True,
    ) -> "BiLaplacianPrior":
        """Construct from target marginal std ``sigma`` and correlation length.

        Uses the Matern relation ``kappa = sqrt(8 nu) / rho`` with
        ``nu = 2 - d/2`` to set ``delta / gamma = kappa^2``, then calibrates
        the overall scale *empirically*: the prior is assembled once with
        ``gamma = 1``, its central marginal variance probed exactly, and
        ``(gamma, delta)`` rescaled jointly (variance scales as
        ``1/scale^2``).  This avoids closed-form constants and is exact for
        the discrete operator actually used.
        """
        check_positive("sigma", sigma)
        check_positive("correlation_length", correlation_length)
        d = len(axes)
        nu = max(2.0 - d / 2.0, 0.5)
        kappa = np.sqrt(8.0 * nu) / correlation_length
        gamma0 = 1.0
        delta0 = kappa**2
        beta0 = np.sqrt(gamma0 * delta0) / 1.42 if robin else None
        probe = cls(axes, gamma0, delta0, robin_beta=beta0)
        var_c = probe.marginal_variance_at(probe.center_index())
        scale = np.sqrt(var_c) / sigma
        beta = beta0 * scale if beta0 is not None else None
        return cls(axes, gamma0 * scale, delta0 * scale, robin_beta=beta)

    def center_index(self) -> int:
        """Flat index of the (approximately) central grid node."""
        shapes = [a.size for a in self.axes]
        center = tuple(s // 2 for s in shapes)
        return int(np.ravel_multi_index(center, shapes))

    # ------------------------------------------------------------------
    # Actions (all batched over trailing columns)
    # ------------------------------------------------------------------
    def _solve_A(self, b: np.ndarray) -> np.ndarray:
        out = self._lu.solve(np.asarray(b, dtype=np.float64))
        return out

    def apply(self, v: np.ndarray) -> np.ndarray:
        """Covariance action ``Gamma_s v = A^{-1} M A^{-1} v``."""
        w = self._solve_A(v)
        w = w * (self.M[:, None] if w.ndim == 2 else self.M)
        return self._solve_A(w)

    def apply_inverse(self, v: np.ndarray) -> np.ndarray:
        """Precision action ``Gamma_s^{-1} v = A M^{-1} A v``."""
        w = self.A @ np.asarray(v, dtype=np.float64)
        w = w / (self.M[:, None] if w.ndim == 2 else self.M)
        return self.A @ w

    def apply_sqrt(self, xi: np.ndarray) -> np.ndarray:
        """Square-root action ``L xi = A^{-1} M^{1/2} xi`` (``L L^T = Gamma_s``)."""
        w = xi * (self._sqrt_m[:, None] if xi.ndim == 2 else self._sqrt_m)
        return self._solve_A(w)

    def sample(self, rng: np.random.Generator, k: int = 1) -> np.ndarray:
        """Draw ``k`` prior samples, shape ``(n, k)``."""
        xi = rng.standard_normal((self.n, int(k)))
        return self.apply_sqrt(xi)

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    def marginal_variance_at(self, idx: int) -> float:
        """Exact marginal variance ``(Gamma_s)_{ii}`` at one node."""
        e = np.zeros(self.n)
        e[idx] = 1.0
        return float(self.apply(e)[idx])

    def marginal_variance(self, chunk: int = 512) -> np.ndarray:
        """Exact pointwise variance field ``diag(Gamma_s)`` (chunked solves).

        ``diag(A^{-1} M A^{-1}) = sum_j M_jj (A^{-1})_{ij}^2`` — computed
        from columns of ``A^{-1}`` in chunks; O(n) solves, fine at the
        reduced scales of this reproduction.
        """
        out = np.empty(self.n)
        for start in range(0, self.n, chunk):
            stop = min(start + chunk, self.n)
            e = np.zeros((self.n, stop - start))
            e[np.arange(start, stop), np.arange(stop - start)] = 1.0
            g = self._solve_A(self.M[:, None] * self._solve_A(e))
            out[start:stop] = g[start:stop, :].diagonal()
        return out

    def dense(self) -> np.ndarray:
        """Materialize ``Gamma_s`` (small problems / tests only)."""
        return self.apply(np.eye(self.n))

    def correlation_length_estimate(self) -> float:
        """Matern-consistent correlation length ``sqrt(8 nu) / kappa``."""
        nu = max(2.0 - self.dim / 2.0, 0.5)
        kappa = np.sqrt(self.delta / self.gamma)
        return float(np.sqrt(8.0 * nu) / kappa)


class SpatioTemporalPrior:
    """Prior over slot-blocked space-time parameters ``m`` of shape ``(Nt, Nm)``.

    ``Gamma_prior = C_t (x) Gamma_s`` where ``C_t`` is the identity
    (paper default: independent slots) or an AR(1) correlation
    ``C_t[i,j] = rho_t^{|i-j|}`` (extension).
    """

    def __init__(
        self,
        spatial: BiLaplacianPrior,
        nt: int,
        temporal_rho: Optional[float] = None,
    ) -> None:
        if nt < 1:
            raise ValueError("nt must be >= 1")
        self.spatial = spatial
        self.nt = int(nt)
        self.nm = spatial.n
        self.n = self.nt * self.nm
        if temporal_rho is not None and not (0.0 <= temporal_rho < 1.0):
            raise ValueError("temporal_rho must lie in [0, 1)")
        self.temporal_rho = temporal_rho
        if temporal_rho:
            i = np.arange(self.nt)
            self.Ct = temporal_rho ** np.abs(i[:, None] - i[None, :])
            self._Ct_chol = np.linalg.cholesky(self.Ct)
            self._Ct_inv = np.linalg.inv(self.Ct)
        else:
            self.Ct = None
            self._Ct_chol = None
            self._Ct_inv = None

    # ------------------------------------------------------------------
    def _spatial_all(self, m: np.ndarray, fn) -> np.ndarray:
        """Apply a spatial action to every slot (and batch column) at once."""
        squeeze = m.ndim == 2
        mm = m[:, :, None] if squeeze else m
        nt, nm, k = mm.shape
        flat = np.ascontiguousarray(mm.transpose(1, 0, 2)).reshape(nm, nt * k)
        out = fn(flat).reshape(nm, nt, k).transpose(1, 0, 2)
        out = np.ascontiguousarray(out)
        return out[:, :, 0] if squeeze else out

    def _temporal(self, m: np.ndarray, mat: Optional[np.ndarray]) -> np.ndarray:
        if mat is None:
            return m
        return np.einsum("ij,j...->i...", mat, m)

    def apply(self, m: np.ndarray) -> np.ndarray:
        """``Gamma_prior m`` for ``m`` of shape ``(Nt, Nm[, k])``."""
        out = self._spatial_all(m, self.spatial.apply)
        return self._temporal(out, self.Ct)

    def apply_inverse(self, m: np.ndarray) -> np.ndarray:
        """``Gamma_prior^{-1} m``."""
        out = self._spatial_all(m, self.spatial.apply_inverse)
        return self._temporal(out, self._Ct_inv)

    def apply_sqrt(self, xi: np.ndarray) -> np.ndarray:
        """``L xi`` with ``L L^T = Gamma_prior``."""
        out = self._spatial_all(xi, self.spatial.apply_sqrt)
        return self._temporal(out, self._Ct_chol)

    def sample(self, rng: np.random.Generator, k: int = 1) -> np.ndarray:
        """Draw ``k`` space-time prior samples ``(Nt, Nm, k)``."""
        xi = rng.standard_normal((self.nt, self.nm, int(k)))
        return self.apply_sqrt(xi)

    def displacement_prior_variance(self) -> np.ndarray:
        """Pointwise prior variance of the displacement ``sum_t m_t dt=1``.

        ``Var(sum_t m_t)_j = (sum_{t,t'} C_t[t,t']) (Gamma_s)_{jj}``.
        """
        spatial_var = self.spatial.marginal_variance()
        tsum = float(np.sum(self.Ct)) if self.Ct is not None else float(self.nt)
        return tsum * spatial_var

    def dense(self) -> np.ndarray:
        """Materialize ``Gamma_prior`` (tests only): ``C_t (x) Gamma_s``."""
        gs = self.spatial.dense()
        ct = self.Ct if self.Ct is not None else np.eye(self.nt)
        return np.kron(ct, gs)
