"""QoI forecast containers: credible intervals, coverage, exceedance.

The online output of the digital twin is a Gaussian over the space-time QoI
vector (sea-surface wave heights at ``N_q`` forecast locations and ``N_t``
instants): mean ``q_map`` and exact covariance ``Gamma_post(q)``.  This
module wraps that Gaussian with the operations the early-warning layer
needs — the 95% credible intervals of the paper's Fig. 4, frequentist
coverage checks against the true scenario, and pointwise exceedance
probabilities ``P(eta > threshold)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np
from scipy.stats import norm

__all__ = ["QoIForecast"]


@dataclass
class QoIForecast:
    """A Gaussian space-time forecast of the QoI.

    Attributes
    ----------
    times:
        Observation/forecast instants, ``(Nt,)``.
    mean:
        Forecast mean ``(Nt, Nq)`` (wave heights).
    covariance:
        Full posterior covariance ``(Nt*Nq, Nt*Nq)`` in time-major order.
    """

    times: np.ndarray
    mean: np.ndarray
    covariance: np.ndarray
    _std: Optional[np.ndarray] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        self.times = np.asarray(self.times, dtype=np.float64)
        self.mean = np.asarray(self.mean, dtype=np.float64)
        self.covariance = np.asarray(self.covariance, dtype=np.float64)
        nt, nq = self.mean.shape
        if self.covariance.shape != (nt * nq, nt * nq):
            raise ValueError(
                f"covariance must be ({nt * nq},{nt * nq}), got {self.covariance.shape}"
            )

    @property
    def nt(self) -> int:
        """Number of forecast instants."""
        return int(self.mean.shape[0])

    @property
    def nq(self) -> int:
        """Number of forecast locations."""
        return int(self.mean.shape[1])

    def std(self) -> np.ndarray:
        """Pointwise posterior standard deviations, ``(Nt, Nq)``."""
        if self._std is None:
            d = np.sqrt(np.maximum(np.diag(self.covariance), 0.0))
            self._std = d.reshape(self.nt, self.nq)
        return self._std

    def credible_interval(self, level: float = 0.95) -> Tuple[np.ndarray, np.ndarray]:
        """Pointwise central credible band ``(lo, hi)`` (Fig. 4's 95% CIs)."""
        if not 0.0 < level < 1.0:
            raise ValueError("level must lie in (0, 1)")
        zq = norm.ppf(0.5 + level / 2.0)
        s = self.std()
        return self.mean - zq * s, self.mean + zq * s

    def coverage(self, truth: np.ndarray, level: float = 0.95) -> float:
        """Fraction of true values inside the pointwise credible band.

        For a calibrated posterior this is ~``level`` (tested statistically
        over repeated noise realizations).
        """
        truth = np.asarray(truth, dtype=np.float64)
        if truth.shape != self.mean.shape:
            raise ValueError("truth shape must match the forecast mean")
        lo, hi = self.credible_interval(level)
        return float(np.mean((truth >= lo) & (truth <= hi)))

    def exceedance_probability(self, threshold: float) -> np.ndarray:
        """Pointwise ``P(eta > threshold)`` under the Gaussian marginals."""
        s = self.std()
        with np.errstate(divide="ignore"):
            zscores = (threshold - self.mean) / np.where(s > 0, s, np.inf)
        return norm.sf(zscores)

    def max_height_summary(self) -> np.ndarray:
        """Per-location forecast of the maximum wave height (mean path).

        Conservative early-warning summary: the max over time of the mean
        plus the max over time of the (pointwise) std is reported by the
        alerting layer; here we return ``max_t mean`` per location.
        """
        return np.max(self.mean, axis=0)

    def location_series(self, j: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(times, mean, std)`` time series at forecast location ``j``."""
        if not 0 <= j < self.nq:
            raise ValueError(f"location index {j} out of range [0, {self.nq})")
        return self.times, self.mean[:, j], self.std()[:, j]

    def sample(self, rng: np.random.Generator, k: int = 1) -> np.ndarray:
        """Draw joint forecast samples, ``(Nt, Nq, k)``.

        Uses a (cached-free) Cholesky with a tiny diagonal lift for
        numerical semidefiniteness.
        """
        n = self.nt * self.nq
        lift = 1e-12 * max(float(np.trace(self.covariance)) / max(n, 1), 1e-300)
        L = np.linalg.cholesky(self.covariance + lift * np.eye(n))
        xi = rng.standard_normal((n, int(k)))
        draws = self.mean.reshape(-1, 1) + L @ xi
        return draws.reshape(self.nt, self.nq, int(k))
