"""Exact posterior machinery: pointwise variances and Matheron sampling.

The posterior over the billion-parameter field is Gaussian with
``Gamma_post = Gamma_prior - G* K^{-1} G`` (SMW form).  Its *pointwise*
marginal variances — the uncertainty maps of the paper's Fig. 3e — are
computable exactly without ever materializing ``Gamma_post``:

for the parameter at (slot ``t``, spatial node ``j``),

.. math::

    \\mathrm{Var} = (\\Gamma_s)_{jj} - v_{tj}^T K^{-1} v_{tj}, \\qquad
    v_{tj} = F\\, \\Gamma_{prior}\\, e_{tj},

and for the time-integrated displacement ``b_j = dt_obs * sum_t m_{tj}``
the same with ``v_j = F Gamma_prior (1_t (x) e_j)``.  Each ``v`` costs one
batched prior column (LU solves) and one FFT matvec; the quadratic form
reuses the Phase 2 Cholesky factor.  Everything is chunked over spatial
nodes.

``PosteriorSampler`` draws exact posterior samples by Matheron's rule:

.. math:: m_{post} = m_{pr} + G^* K^{-1} (d_{obs} - F m_{pr} - \\epsilon),

with ``m_pr`` a prior draw and ``epsilon`` a noise draw — large-sample
statistics converge to ``Gamma_post`` (verified in tests).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.inference.bayes import ToeplitzBayesianInversion

__all__ = [
    "posterior_pointwise_variance",
    "posterior_displacement_variance",
    "PosteriorSampler",
]


def _variance_reduction(
    inv: ToeplitzBayesianInversion, v: np.ndarray
) -> np.ndarray:
    """``diag(v^T K^{-1} v)`` for columns ``v`` ``(NtNd, k)`` via Cholesky."""
    z = inv.solve_K(v)
    return np.einsum("nk,nk->k", v, z)


def posterior_pointwise_variance(
    inv: ToeplitzBayesianInversion,
    slot: int,
    chunk: int = 256,
) -> np.ndarray:
    """Exact marginal posterior variance of ``m`` at one observation slot.

    Returns the spatial field ``(Nm,)`` of variances at slot ``slot``.
    """
    if not 0 <= slot < inv.nt:
        raise ValueError(f"slot {slot} out of range [0, {inv.nt})")
    nm = inv.nm
    prior_var = inv.prior.spatial.marginal_variance()
    if inv.prior.Ct is not None:
        prior_var = prior_var * inv.prior.Ct[slot, slot]
    out = np.empty(nm)
    for start in range(0, nm, chunk):
        stop = min(start + chunk, nm)
        k = stop - start
        e = np.zeros((inv.nt, nm, k))
        e[slot, np.arange(start, stop), np.arange(k)] = 1.0
        v = inv.apply_G(e).reshape(inv.nt * inv.nd, k)
        out[start:stop] = _variance_reduction(inv, v)
    return np.maximum(prior_var - out, 0.0)


def posterior_displacement_variance(
    inv: ToeplitzBayesianInversion,
    dt_obs: float = 1.0,
    chunk: int = 256,
) -> np.ndarray:
    """Exact marginal posterior variance of the seafloor displacement.

    The displacement is the time integral ``b_j = dt_obs * sum_t m_{tj}``
    (the quantity visualized in the paper's Fig. 3d/e).  Returns ``(Nm,)``.
    """
    nm = inv.nm
    prior_var = inv.prior.displacement_prior_variance()
    out = np.empty(nm)
    for start in range(0, nm, chunk):
        stop = min(start + chunk, nm)
        k = stop - start
        e = np.zeros((inv.nt, nm, k))
        e[:, np.arange(start, stop), np.arange(k)] = 1.0  # 1_t (x) e_j
        v = inv.apply_G(e).reshape(inv.nt * inv.nd, k)
        out[start:stop] = _variance_reduction(inv, v)
    return (dt_obs**2) * np.maximum(prior_var - out, 0.0)


class PosteriorSampler:
    """Exact posterior sampling by Matheron's rule (no factorization of
    the parameter-space covariance is ever needed)."""

    def __init__(self, inv: ToeplitzBayesianInversion) -> None:
        if not inv.phase2_complete:
            raise RuntimeError("Phase 2 must be complete before sampling")
        self.inv = inv

    def sample(
        self,
        d_obs: np.ndarray,
        rng: np.random.Generator,
        k: int = 1,
        m_map: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Draw ``k`` posterior samples given data, ``(Nt, Nm, k)``.

        Each draw costs one prior sample, one forward FFT matvec, one noise
        draw, one ``K`` solve, and one ``G*`` application — all batched.
        """
        inv = self.inv
        m_pr = inv.prior.sample(rng, k)  # (Nt, Nm, k)
        eps = inv.noise.sample(rng, k)  # (Nt, Nd, k)
        d_pred = inv.F.matvec(m_pr)  # (Nt, Nd, k)
        resid = np.asarray(d_obs, dtype=np.float64)[:, :, None] - d_pred - eps
        z = inv.solve_K(resid.reshape(inv.nt * inv.nd, k)).reshape(
            inv.nt, inv.nd, k
        )
        return m_pr + inv.apply_Gstar(z)

    def sample_displacement(
        self,
        d_obs: np.ndarray,
        rng: np.random.Generator,
        k: int = 1,
        dt_obs: float = 1.0,
    ) -> np.ndarray:
        """Posterior samples of the integrated displacement field ``(Nm, k)``."""
        m = self.sample(d_obs, rng, k)
        return dt_obs * np.sum(m, axis=0)
