"""Gaussian observation-noise models.

The paper generates synthetic data with "1% relative added noise" on the
seafloor pressure records and uses a centered Gaussian noise covariance
``Gamma_noise`` in the likelihood.  This module provides the diagonal noise
model: per-sensor standard deviations scaled to the per-sensor RMS signal
amplitude (with an absolute floor so silent sensors stay well-posed),
plus sampling, whitening, and log-likelihood evaluation.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.util.validation import check_positive

__all__ = ["NoiseModel"]


class NoiseModel:
    """Diagonal Gaussian noise on slot-blocked data ``d`` of shape ``(Nt, Nd)``.

    Parameters
    ----------
    sigma:
        Either a scalar standard deviation, a per-sensor vector ``(Nd,)``,
        or a full per-entry array ``(Nt, Nd)``.
    nt, nd:
        Data dimensions (used to validate/broadcast ``sigma``).
    """

    def __init__(self, sigma: Union[float, np.ndarray], nt: int, nd: int) -> None:
        self.nt = int(nt)
        self.nd = int(nd)
        s = np.asarray(sigma, dtype=np.float64)
        if s.ndim == 0:
            check_positive("sigma", float(s))
            s = np.full((self.nt, self.nd), float(s))
        elif s.ndim == 1:
            if s.shape != (self.nd,):
                raise ValueError(f"per-sensor sigma must be ({self.nd},), got {s.shape}")
            s = np.broadcast_to(s, (self.nt, self.nd)).copy()
        elif s.shape != (self.nt, self.nd):
            raise ValueError(f"sigma must broadcast to ({self.nt},{self.nd})")
        if np.any(s <= 0):
            raise ValueError("noise standard deviations must be positive")
        self.sigma = s
        self.variance = s**2

    @classmethod
    def relative(
        cls,
        d_clean: np.ndarray,
        relative_level: float = 0.01,
        floor: Optional[float] = None,
    ) -> "NoiseModel":
        """Per-sensor RMS-relative noise (the paper's 1% synthetic noise).

        ``sigma_s = relative_level * rms_t(d[:, s])`` with an absolute
        ``floor`` (default: ``relative_level`` times the global RMS) so
        sensors that barely record remain numerically well-posed.
        """
        check_positive("relative_level", relative_level)
        d = np.asarray(d_clean, dtype=np.float64)
        if d.ndim != 2:
            raise ValueError("d_clean must be (Nt, Nd)")
        rms = np.sqrt(np.mean(d**2, axis=0))
        global_rms = float(np.sqrt(np.mean(d**2)))
        if floor is None:
            floor = relative_level * max(global_rms, 1e-300)
        sigma = np.maximum(relative_level * rms, floor)
        return cls(sigma, d.shape[0], d.shape[1])

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Total data dimension ``Nt * Nd``."""
        return self.nt * self.nd

    def flat_variance(self) -> np.ndarray:
        """Diagonal of ``Gamma_noise`` in time-major flat ordering."""
        return self.variance.reshape(-1)

    def sample(self, rng: np.random.Generator, k: Optional[int] = None) -> np.ndarray:
        """Draw noise realization(s): ``(Nt, Nd)`` or ``(Nt, Nd, k)``."""
        shape = (self.nt, self.nd) if k is None else (self.nt, self.nd, int(k))
        eps = rng.standard_normal(shape)
        return eps * (self.sigma if k is None else self.sigma[:, :, None])

    def add_to(self, d_clean: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """``d_obs = d_clean + noise``."""
        return np.asarray(d_clean, dtype=np.float64) + self.sample(rng)

    def whiten(self, r: np.ndarray) -> np.ndarray:
        """``Gamma_noise^{-1/2} r`` on ``(Nt, Nd[, k])`` residuals."""
        s = self.sigma if r.ndim == 2 else self.sigma[:, :, None]
        return r / s

    def apply_inverse(self, r: np.ndarray) -> np.ndarray:
        """``Gamma_noise^{-1} r``."""
        v = self.variance if r.ndim == 2 else self.variance[:, :, None]
        return r / v

    def log_likelihood(self, d_obs: np.ndarray, d_pred: np.ndarray) -> float:
        """Gaussian log-likelihood (up to the additive constant)."""
        r = np.asarray(d_obs) - np.asarray(d_pred)
        return float(-0.5 * np.sum(r**2 / self.variance))

    def snr_db(self, d_clean: np.ndarray) -> float:
        """Signal-to-noise ratio of a clean record in decibels."""
        p_sig = float(np.mean(np.asarray(d_clean) ** 2))
        p_noise = float(np.mean(self.variance))
        return 10.0 * np.log10(p_sig / p_noise)
