"""Incremental streaming posterior: O(block)-per-slot partial-data updates.

The early-warning loop asks the same question at every horizon ``k``: what
does the posterior look like given only the first ``k`` observation slots?
Because the data-space flattening is **time-major** (``index = slot * Nd +
sensor``), the first-``k``-slots Hessian ``K_k`` is a leading principal
submatrix of ``K``, and its Cholesky factor ``L_k`` is the leading ``k*Nd``
block of the full factor ``L`` computed once in Phase 2.  The seed streaming
path already exploited that to avoid re-*factorization* — but it still
re-*solved* dense triangular systems from scratch at every horizon, so a
full sweep over all ``Nt`` horizons cost ``O(sum_k (k Nd)^2 (Nt Nq))``.

This module exploits the second half of the nesting identity: the
forward-substituted states themselves nest.  With

.. math::

    Y_k = L_k^{-1} B_k, \\qquad w_k = L_k^{-1} d_k,

the first ``(k-1) Nd`` rows of ``Y_k`` (resp. ``w_k``) are exactly
``Y_{k-1}`` (resp. ``w_{k-1}``), because forward substitution on a
lower-triangular matrix never looks ahead.  Advancing one observation slot
therefore appends one block row

.. math::

    y_{new} = L_{kk}^{-1} (B_{row} - L_{k,1:k-1} Y_{k-1}),

— one ``(Nd, (k-1)Nd)`` gemm plus one triangular solve on the ``Nd x Nd``
diagonal block only — and the partial-data posterior quantities follow
without ever forming the truncated data-to-QoI operator:

.. math::

    q_k = Y_k^T w_k, \\qquad
    \\Gamma_{post,k}(q) = P_q - Y_k^T Y_k
                        = \\Gamma_{post,k-1}(q) - y_{new}^T y_{new},

a rank-``Nd`` covariance *downdate* per slot.  Summed over a whole
latency sweep the work is ``O((Nt Nd)^2 Nt Nq)`` — the cost of a single
full-horizon solve — instead of the seed path's extra factor of ``Nt``.

Two objects implement this:

``IncrementalStreamingPosterior``
    The shared geometry state: the running ``Y = L^{-1} B`` block rows and
    the downdated QoI covariance, advanced slot by slot and shared by
    every consumer of one inversion (single-event streamers, the batched
    fleet server, operator exports).
``StreamingFleet``
    Per-stream data states ``W = L^{-1} D`` batched ``(n, k)`` across a
    fleet.  Streams may sit at *different* horizons (a "ragged" fleet);
    advancing groups streams by the slot they are absorbing so each block
    row is one multi-right-hand-side triangular solve plus one gemm.

Everything is exact — the same truncated-data posterior the seed computed,
verified to near machine precision in ``tests/inference/test_streaming.py``.

Both classes route their dense kernels (the blocked ``trsm``/``gemm``
advances, the per-slot sketch projections) through a
:class:`repro.backend.Backend` seam.  On the default numpy backend the
kernel table delegates to the very same library calls this module made
before the seam existed, so results are bitwise-identical; non-numpy
backends (torch / cupy) hold the hot state on the device and export all
public quantities back to host numpy under the backend's declared
tolerance budget (see ``repro.backend``).  Control flow — horizons,
targets, slot masks — always stays on the host.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional, Sequence, Union, TYPE_CHECKING

import numpy as np
import scipy.linalg as sla

from repro.backend import Backend, resolve_backend
from repro.inference.forecast import QoIForecast

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.inference.bayes import ToeplitzBayesianInversion

__all__ = ["IncrementalStreamingPosterior", "StreamingFleet"]

_LOG_2PI = float(np.log(2.0 * np.pi))


class IncrementalStreamingPosterior:
    """Shared incremental geometry state ``Y = L^{-1} B`` over one inversion.

    Parameters
    ----------
    inv:
        A :class:`~repro.inference.bayes.ToeplitzBayesianInversion` with
        Phases 2-3 complete (the factor ``L`` and the goal-oriented
        operators ``B``, ``P_q`` are required).
    cov_cache_limit:
        Maximum number of *transient* per-horizon covariance snapshots
        kept alive (LRU).  The full dense ``(Nt Nq)^2`` snapshot at each
        horizon would otherwise accumulate ``O(Nt)`` copies over a latency
        sweep; the two zero-cost horizons — ``k = 0`` (a view of ``P_q``)
        and ``k = Nt`` (a view of the Phase 3 posterior covariance) — are
        pinned and never count against the limit.  Evicted horizons are
        recomputed exactly from the stored ``Y`` rows on the next request.

    Notes
    -----
    One engine per inversion is the intended shape — obtain it through
    :meth:`~repro.inference.bayes.ToeplitzBayesianInversion.streaming_state`
    so the single-event :class:`~repro.twin.earlywarning.StreamingInverter`
    and the fleet :class:`~repro.serve.server.BatchedPhase4Server` share
    the same geometry rows instead of each re-deriving them.

    The optional ``backend`` selects the array backend for the hot state
    (``Y``, the running covariance) and kernels; ``None`` is the bitwise
    numpy default.  One engine serves one backend — mixed-backend
    consumers obtain one engine per backend through
    ``ToeplitzBayesianInversion.streaming_state(backend=...)``.
    """

    DEFAULT_COV_CACHE_LIMIT = 8

    def __init__(
        self,
        inv: "ToeplitzBayesianInversion",
        cov_cache_limit: Optional[int] = None,
        backend: Union[Backend, str, None] = None,
    ) -> None:
        if not inv.phase2_complete:
            raise RuntimeError("Phase 2 must be complete before streaming")
        if inv.B is None or inv.Pq is None:
            raise RuntimeError("Phase 3 must be complete before streaming")
        self.inv = inv
        self.backend = resolve_backend(backend)
        bk = self.backend
        self.L = inv.cholesky_lower
        self.nt, self.nd, self.nq = inv.nt, inv.nd, inv.nq
        self._nb = inv.B.shape[1]  # Nt * Nq flattened QoI dimension
        # Device-resident operands.  On numpy these are the Phase 2/3
        # arrays themselves (asarray is identity for float64 ndarrays).
        self._L_dev = bk.asarray(self.L)
        self._B_dev = bk.asarray(inv.B)
        self._Pq_dev = bk.asarray(inv.Pq)
        # Geometry rows Y = L^{-1} B, filled to k_geom * Nd rows.
        self._Y = bk.empty((self.nt * self.nd, self._nb))
        self.k_geom = 0
        # Running QoI covariance at horizon ``k_geom`` (downdated per slot).
        self._cov = bk.copy(self._Pq_dev)
        # Immutable per-horizon covariance snapshots, shared by forecasts.
        # Bounded LRU: only `cov_cache_limit` transient snapshots are held
        # (k=0 and k=Nt are pinned aliases of Phase 3 arrays, never counted).
        if cov_cache_limit is None:
            cov_cache_limit = self.DEFAULT_COV_CACHE_LIMIT
        if int(cov_cache_limit) < 0:
            raise ValueError("cov_cache_limit must be >= 0")
        self.cov_cache_limit = int(cov_cache_limit)
        self._cov_cache: "OrderedDict[int, np.ndarray]" = OrderedDict()

    # ------------------------------------------------------------------
    # Shared geometry state
    # ------------------------------------------------------------------
    def _check_horizon(self, k_slots: int, lo: int = 0) -> int:
        k = int(k_slots)
        if not lo <= k <= self.nt:
            raise ValueError(f"k_slots must lie in [{lo}, {self.nt}]")
        return k

    def advance_geometry(self, k_slots: int) -> None:
        """Extend ``Y`` (and downdate the running covariance) to ``k_slots``.

        Each new slot costs one gemm against the rows already computed and
        one triangular solve on the ``Nd x Nd`` diagonal block — never a
        solve on the full leading system.  Idempotent for horizons already
        reached.
        """
        k = self._check_horizon(k_slots)
        bk = self.backend
        nd, L, B, Y = self.nd, self._L_dev, self._B_dev, self._Y
        while self.k_geom < k:
            s = self.k_geom
            r0, r1 = s * nd, (s + 1) * nd
            if s:
                rhs = B[r0:r1] - L[r0:r1, :r0] @ Y[:r0]
            else:
                rhs = bk.copy(B[r0:r1])
            Y[r0:r1] = bk.solve_triangular(L[r0:r1, r0:r1], rhs, lower=True)
            # Rank-Nd downdate: cov_k = cov_{k-1} - y_new^T y_new.
            self._cov -= Y[r0:r1].T @ Y[r0:r1]
            self.k_geom = s + 1

    def _is_pinned(self, k: int) -> bool:
        """Zero-cost horizons that never count against the cache limit."""
        return k == 0 or k == self.nt

    def _evict_cov_cache(self) -> None:
        """Drop least-recently-used transient snapshots beyond the limit."""
        transient = [k for k in self._cov_cache if not self._is_pinned(k)]
        for k in transient[: max(len(transient) - self.cov_cache_limit, 0)]:
            del self._cov_cache[k]

    def covariance_at(self, k_slots: int) -> np.ndarray:
        """Exact QoI posterior covariance given the first ``k_slots`` slots.

        ``P_q - Y_k^T Y_k``, taken from the running downdated state when
        the engine sits exactly at ``k_slots`` (the sweep case) or by one
        symmetric rank-``k Nd`` product from the stored ``Y`` rows for
        random access to earlier horizons.  ``k_slots=0`` returns the
        prior predictive ``P_q``.  Snapshots are cached read-only and
        shared by every forecast at that horizon, subject to the LRU bound
        ``cov_cache_limit`` (sweep transients are evictable; evicted
        horizons are recomputed exactly on the next request).
        """
        k = self._check_horizon(k_slots)
        cov = self._cov_cache.get(k)
        if cov is not None:
            self._cov_cache.move_to_end(k)
            return cov
        if k == 0:
            # Prior predictive: share the Phase 3 ``P_q`` memory directly.
            cov = self.inv.Pq.view()
        elif k == self.nt and self.inv.qoi_covariance is not None:
            # Full horizon is exactly the Phase 3 product; share its
            # memory through a read-only view.
            cov = self.inv.qoi_covariance.view()
        else:
            bk = self.backend
            self.advance_geometry(k)
            if k == self.k_geom:
                cov = bk.to_numpy(self._cov, copy=True)
            else:  # geometry already past k: recompute from the stored rows
                n = k * self.nd
                cov = bk.to_numpy(self._Pq_dev - self._Y[:n].T @ self._Y[:n])
            cov = 0.5 * (cov + cov.T)
        cov.setflags(write=False)
        self._cov_cache[k] = cov
        self._evict_cov_cache()
        return cov

    def geometry_rows(self, k_slots: int) -> np.ndarray:
        """The forward-substituted block ``Y_k = L_k^{-1} B_k``, read-only view."""
        k = self._check_horizon(k_slots)
        self.advance_geometry(k)
        rows = self._Y[: k * self.nd]
        if not self.backend.is_numpy:
            rows = self.backend.to_numpy(rows)
        rows.setflags(write=False)  # view only; the engine's buffer stays live
        return rows

    def qoi_map(self, k_slots: int) -> np.ndarray:
        """The explicit truncated data-to-QoI operator ``Q_k = (K_k^{-1} B_k)^T``.

        ``Q_k`` requires the *backward* solve ``L_k^{-T} Y_k``, which does
        not nest across horizons — so this is an operator *export* (one
        ``k Nd``-sized solve, reusing the incremental ``Y_k`` for the
        forward half), **not** part of the per-slot streaming path.
        Streaming forecasts never need it: ``q_k = Y_k^T (L_k^{-1} d_k)``.
        """
        k = self._check_horizon(k_slots, lo=1)
        if k == self.nt and self.inv.Q is not None:
            return self.inv.Q
        n = k * self.nd
        Y = self.geometry_rows(k)
        KinvB = sla.solve_triangular(self.L[:n, :n], Y, lower=True, trans="T")
        return np.ascontiguousarray(KinvB.T)

    # ------------------------------------------------------------------
    # Fleets of data streams
    # ------------------------------------------------------------------
    def open_fleet(self, streams: np.ndarray) -> "StreamingFleet":
        """Attach a batch of observation streams ``(Nt, Nd[, k])``.

        Returns a :class:`StreamingFleet` holding the per-stream
        forward-substituted states; streams advance independently (ragged
        horizons) against this engine's shared geometry.
        """
        return StreamingFleet(self, streams)

    # ------------------------------------------------------------------
    @property
    def horizons_cached(self) -> int:
        """Number of per-horizon covariance snapshots currently held.

        Bounded by ``cov_cache_limit`` transient snapshots plus the two
        pinned zero-cost horizons (``k = 0`` and ``k = Nt``).
        """
        return len(self._cov_cache)

    def cov_cache_nbytes(self) -> int:
        """Bytes held by transient covariance snapshots (pinned views are free).

        Bounded by ``cov_cache_limit * (Nt Nq)^2 * 8`` regardless of how
        many horizons a sweep visits.
        """
        phase3 = [a for a in (self.inv.qoi_covariance, self.inv.Pq) if a is not None]
        return int(
            sum(
                c.nbytes
                for c in self._cov_cache.values()
                if not any(np.shares_memory(c, p) for p in phase3)
            )
        )

    def state_nbytes(self) -> int:
        """Memory of the incremental geometry state (``Y`` + covariances)."""
        return int(self._Y.nbytes + self._cov.nbytes + self.cov_cache_nbytes())


class StreamingFleet:
    """Per-stream forward-substituted data states over one shared geometry.

    Maintains ``W[:, j] = L_{k_j}^{-1} d_j`` for every stream ``j`` at its
    own horizon ``k_j``.  :meth:`advance` absorbs new observation slots in
    causal order, grouping the streams that need a given slot into one
    multi-right-hand-side block solve — the fleet-wide O(1)-solves-per-slot
    update.
    """

    def __init__(self, engine: IncrementalStreamingPosterior, streams: np.ndarray) -> None:
        D = np.asarray(streams, dtype=np.float64)
        if D.ndim == 2:
            D = D[:, :, None]
        if D.ndim != 3 or D.shape[:2] != (engine.nt, engine.nd):
            raise ValueError(
                f"streams must stack to ({engine.nt},{engine.nd},k), got {D.shape}"
            )
        self.engine = engine
        bk = engine.backend
        self.D = D
        self._D_dev = bk.asarray(D)
        self.n_streams = int(D.shape[2])
        self._W = bk.zeros((engine.nt * engine.nd, self.n_streams))
        # Running QoI means: q_j accumulates y_new^T w_new as slots are
        # absorbed, so reading the fleet's forecasts costs no large gemm.
        self._means = bk.zeros((engine._nb, self.n_streams))
        # Running whitened squared norms ||w_j||^2 = ||L_k^{-1} d_k||^2 —
        # the quadratic half of the per-stream Gaussian model evidence —
        # plus their per-slot blocks ||w_{new}||^2 (the coarse-screen proxy
        # state the hierarchical identification fabric reads).
        self._wsq = bk.zeros((self.n_streams,))
        self._slot_wsq = bk.zeros((engine.nt, self.n_streams))
        self.horizons = np.zeros(self.n_streams, dtype=np.int64)
        # Optional low-rank sketch state (attach_sketch): per-slot
        # projections P_t w_t(d) and their squared norms, maintained
        # incrementally alongside the norms above.
        self._sketch_P: Optional[np.ndarray] = None  # host (Nt, r, Nd)
        self._sketch_P_dev = None
        self._slot_proj = None
        self._slot_psq = None

    # ------------------------------------------------------------------
    def _targets(self, k_slots: Union[int, Sequence[int], np.ndarray]) -> np.ndarray:
        t = np.asarray(k_slots, dtype=np.int64)
        if t.ndim == 0:
            t = np.full(self.n_streams, int(t), dtype=np.int64)
        if t.shape != (self.n_streams,):
            raise ValueError(
                f"k_slots must be a scalar or ({self.n_streams},), got shape {t.shape}"
            )
        if t.min() < 0 or t.max() > self.engine.nt:
            raise ValueError(f"k_slots must lie in [0, {self.engine.nt}]")
        if np.any(t < self.horizons):
            raise ValueError("streams only advance forward (horizons are monotone)")
        return t

    def advance(self, k_slots: Union[int, Sequence[int], np.ndarray]) -> "StreamingFleet":
        """Absorb observation slots up to ``k_slots`` (scalar or per-stream).

        Slots are processed in causal order; at each slot the streams that
        still need it are advanced together: one ``(Nd, rows-so-far)`` gemm,
        one triangular solve on the ``Nd x Nd`` diagonal block, and one
        rank-``Nd`` mean accumulation ``q += y_new^T w_new`` — no solve
        ever touches a system larger than the new slot's block rows.
        """
        targets = self._targets(k_slots)
        eng = self.engine
        bk = eng.backend
        nd, L, W = eng.nd, eng._L_dev, self._W
        lo = int(self.horizons.min())
        hi = int(targets.max())
        eng.advance_geometry(hi)
        for s in range(lo, hi):
            sel = (self.horizons <= s) & (targets > s)
            if not sel.any():
                continue
            idx = bk.index(np.nonzero(sel)[0])
            r0, r1 = s * nd, (s + 1) * nd
            rhs = self._D_dev[s][:, idx]
            if s:
                rhs = rhs - L[r0:r1, :r0] @ W[:r0, idx]
            w_new = bk.solve_triangular(L[r0:r1, r0:r1], rhs, lower=True)
            W[r0:r1, idx] = w_new
            # Nested means: q_k = q_{k-1} + y_new^T w_new.
            self._means[:, idx] += eng._Y[r0:r1].T @ w_new
            # Nested quadratic forms: ||w_k||^2 = ||w_{k-1}||^2 + ||w_new||^2.
            blk = bk.einsum("ij,ij->j", w_new, w_new)
            self._wsq[idx] += blk
            self._slot_wsq[s, idx] = blk
            if self._sketch_P is not None:
                self._project_slot(s, w_new, idx)
        self.horizons = targets
        return self

    # ------------------------------------------------------------------
    # Low-rank sketch state (the serving layer's certified screen)
    # ------------------------------------------------------------------
    def _project_slot(self, s: int, w_block: np.ndarray, idx: np.ndarray) -> None:
        """Fold one slot's states into the running sketch for streams ``idx``."""
        bk = self.engine.backend
        r = self._sketch_P.shape[1]
        pb = self._sketch_P_dev[s] @ w_block
        self._slot_proj[s * r : (s + 1) * r, idx] = pb
        self._slot_psq[s, idx] = bk.einsum("ij,ij->j", pb, pb)

    def attach_sketch(self, projections: Optional[np.ndarray]) -> "StreamingFleet":
        """Maintain per-slot low-rank projections ``P_t w_t(d)`` incrementally.

        ``projections`` stacks one ``(r, Nd)`` projection per observation
        slot — either ``(Nt, r, Nd)`` or flattened ``(Nt * r, Nd)`` (the
        layout of :attr:`repro.serve.sketch.SlotSketch.projections`,
        whether that sketch is a seeded Gaussian draw or a data-dependent
        bank-PCA basis — the fleet side is basis-agnostic).  Slots the
        fleet has already absorbed are folded in one catch-up pass from
        the stored states; every slot absorbed afterwards costs one extra
        ``(r, Nd) x (Nd, n_active)`` gemm inside :meth:`advance`.
        Re-attaching replaces the previous sketch (the serving fabric
        does this when its rank controller renegotiates the sketch rank
        mid-stream); ``None`` detaches, freeing the sketch state.
        The exports — :meth:`slot_projections` /
        :meth:`slot_projection_norms` — are the stream-side inputs of the
        serving layer's certified sketch screen
        (:func:`repro.serve.sketch.certified_bounds`), exactly as
        :meth:`slot_squared_norms` feeds its norm-only brackets.
        """
        eng = self.engine
        if projections is None:
            self._sketch_P = None
            self._sketch_P_dev = None
            self._slot_proj = None
            self._slot_psq = None
            return self
        P = np.asarray(projections, dtype=np.float64)
        if P.ndim == 2:
            if P.shape[0] % eng.nt or P.shape[1] != eng.nd:
                raise ValueError(
                    f"projections must stack to ({eng.nt}, r, {eng.nd}), "
                    f"got {P.shape}"
                )
            P = P.reshape(eng.nt, -1, eng.nd)
        if P.ndim != 3 or P.shape[0] != eng.nt or P.shape[2] != eng.nd:
            raise ValueError(
                f"projections must be ({eng.nt}, r, {eng.nd}), got {P.shape}"
            )
        bk = eng.backend
        r = P.shape[1]
        self._sketch_P = P
        self._sketch_P_dev = bk.asarray(P)
        self._slot_proj = bk.zeros((eng.nt * r, self.n_streams))
        self._slot_psq = bk.zeros((eng.nt, self.n_streams))
        for s in range(int(self.horizons.max(initial=0))):
            idx = np.nonzero(self.horizons > s)[0]
            if idx.size:
                # Column-axis fancy index: an F-ordered copy, the same
                # operand layout the incremental path's solve output has.
                r0 = s * eng.nd
                idx = bk.index(idx)
                self._project_slot(s, self._W[r0 : r0 + eng.nd][:, idx], idx)
        return self

    def _host_view(self, x) -> np.ndarray:
        """Read-only host export of backend state (zero-copy on numpy)."""
        bk = self.engine.backend
        v = x.view() if bk.is_numpy else bk.to_numpy(x)
        v.setflags(write=False)
        return v

    @property
    def sketch_projections(self) -> Optional[np.ndarray]:
        """The attached per-slot projections ``(Nt, r, Nd)``, or ``None``."""
        return self._sketch_P

    def slot_projections(self) -> np.ndarray:
        """Per-slot sketches ``P_t w_t(d)`` stacked ``(Nt * r, n)``, read-only.

        Rows ``t*r:(t+1)*r`` hold each stream's slot-``t`` sketch (zero
        for slots not yet absorbed).  Requires :meth:`attach_sketch`.
        """
        if self._slot_proj is None:
            raise RuntimeError("no sketch attached (call attach_sketch first)")
        return self._host_view(self._slot_proj)

    def slot_projection_norms(self) -> np.ndarray:
        """Per-slot ``||P_t w_t(d)||^2``, ``(Nt, n)``, read-only.

        The sketched counterpart of :meth:`slot_squared_norms`; requires
        :meth:`attach_sketch`.
        """
        if self._slot_psq is None:
            raise RuntimeError("no sketch attached (call attach_sketch first)")
        return self._host_view(self._slot_psq)

    # ------------------------------------------------------------------
    @property
    def states(self) -> np.ndarray:
        """The per-stream forward-substituted states ``W``, read-only view.

        ``W[:k_j Nd, j] = L_{k_j}^{-1} d_j``; rows beyond a stream's
        current horizon are zero (not yet absorbed).  The scenario
        identifier reads per-slot blocks of this to form evidence cross
        terms without re-solving anything.
        """
        return self._host_view(self._W)

    def squared_norms(self) -> np.ndarray:
        """Running ``||L_{k_j}^{-1} d_j||^2`` per stream, ``(n,)`` copy."""
        return self.engine.backend.to_numpy(self._wsq, copy=True)

    def slot_squared_norms(self) -> np.ndarray:
        """Per-slot whitened norm blocks ``||w_new(slot, j)||^2``, ``(Nt, n)``.

        Row ``s`` holds each stream's squared norm of the slot-``s`` block
        of its forward-substituted state (zero for slots the stream has not
        absorbed yet); columns sum to :meth:`squared_norms`.  This is the
        stream-side *coarse-proxy state* of hierarchical scenario
        identification: together with the bank side's per-slot norms it
        bounds the evidence contribution of any subset of slots without
        touching the ``Nd``-dimensional states themselves (read-only view,
        maintained incrementally by :meth:`advance` at no extra solves).
        """
        return self._host_view(self._slot_wsq)

    def log_evidence(self) -> np.ndarray:
        """Truncated-data Gaussian log-evidence of each stream, ``(n,)``.

        ``log p(d_{k_j}) = -1/2 (||L_k^{-1} d_k||^2 + log |K_k|
        + k Nd log 2 pi)`` under the zero-mean prior predictive
        ``d_k ~ N(0, K_k)`` — exact at every horizon, read straight off
        the running squared norms and the inversion's cached cumulative
        ``log diag(L)`` (no solves).  Scenario-conditioned evidences (mean
        ``mu_s`` instead of zero) are built on top of this same state by
        :class:`repro.serve.identify.ScenarioIdentifier`.
        """
        cum = self.engine.inv.cholesky_logdiag_cum
        k = self.horizons
        wsq = self.engine.backend.to_numpy(self._wsq)
        return -0.5 * wsq - cum[k] - 0.5 * (k * self.engine.nd) * _LOG_2PI

    def forecast_means(self) -> np.ndarray:
        """All fleet QoI means at the streams' current horizons, ``(NtNq, k)``.

        ``q_j = Y_{k_j}^T w_j``, maintained incrementally by
        :meth:`advance` — this is a copy of the running state, no solves
        or large products.  Streams still at horizon 0 carry the prior
        mean (zero).
        """
        return self.engine.backend.to_numpy(self._means, copy=True)

    def forecasts(self, times: Optional[np.ndarray] = None) -> List[QoIForecast]:
        """One exact :class:`QoIForecast` per stream at its current horizon.

        Covariances depend only on (geometry, horizon), so streams at the
        same horizon share one cached snapshot.
        """
        eng = self.engine
        means = self.forecast_means()
        if times is None:
            times = np.arange(1, eng.nt + 1, dtype=np.float64)
        covs = {int(k): eng.covariance_at(int(k)) for k in np.unique(self.horizons)}
        return [
            QoIForecast(
                times=times,
                mean=means[:, j].reshape(eng.nt, eng.nq),
                covariance=covs[int(self.horizons[j])],
            )
            for j in range(self.n_streams)
        ]
