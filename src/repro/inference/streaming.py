"""Incremental streaming posterior: O(block)-per-slot partial-data updates.

The early-warning loop asks the same question at every horizon ``k``: what
does the posterior look like given only the first ``k`` observation slots?
Because the data-space flattening is **time-major** (``index = slot * Nd +
sensor``), the first-``k``-slots Hessian ``K_k`` is a leading principal
submatrix of ``K``, and its Cholesky factor ``L_k`` is the leading ``k*Nd``
block of the full factor ``L`` computed once in Phase 2.  The seed streaming
path already exploited that to avoid re-*factorization* — but it still
re-*solved* dense triangular systems from scratch at every horizon, so a
full sweep over all ``Nt`` horizons cost ``O(sum_k (k Nd)^2 (Nt Nq))``.

This module exploits the second half of the nesting identity: the
forward-substituted states themselves nest.  With

.. math::

    Y_k = L_k^{-1} B_k, \\qquad w_k = L_k^{-1} d_k,

the first ``(k-1) Nd`` rows of ``Y_k`` (resp. ``w_k``) are exactly
``Y_{k-1}`` (resp. ``w_{k-1}``), because forward substitution on a
lower-triangular matrix never looks ahead.  Advancing one observation slot
therefore appends one block row

.. math::

    y_{new} = L_{kk}^{-1} (B_{row} - L_{k,1:k-1} Y_{k-1}),

— one ``(Nd, (k-1)Nd)`` gemm plus one triangular solve on the ``Nd x Nd``
diagonal block only — and the partial-data posterior quantities follow
without ever forming the truncated data-to-QoI operator:

.. math::

    q_k = Y_k^T w_k, \\qquad
    \\Gamma_{post,k}(q) = P_q - Y_k^T Y_k
                        = \\Gamma_{post,k-1}(q) - y_{new}^T y_{new},

a rank-``Nd`` covariance *downdate* per slot.  Summed over a whole
latency sweep the work is ``O((Nt Nd)^2 Nt Nq)`` — the cost of a single
full-horizon solve — instead of the seed path's extra factor of ``Nt``.

Two objects implement this:

``IncrementalStreamingPosterior``
    The shared geometry state: the running ``Y = L^{-1} B`` block rows and
    the downdated QoI covariance, advanced slot by slot and shared by
    every consumer of one inversion (single-event streamers, the batched
    fleet server, operator exports).
``StreamingFleet``
    Per-stream data states ``W = L^{-1} D`` batched ``(n, k)`` across a
    fleet.  Streams may sit at *different* horizons (a "ragged" fleet);
    advancing groups streams by the slot they are absorbing so each block
    row is one multi-right-hand-side triangular solve plus one gemm.

Everything is exact — the same truncated-data posterior the seed computed,
verified to near machine precision in ``tests/inference/test_streaming.py``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union, TYPE_CHECKING

import numpy as np
import scipy.linalg as sla

from repro.inference.forecast import QoIForecast

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.inference.bayes import ToeplitzBayesianInversion

__all__ = ["IncrementalStreamingPosterior", "StreamingFleet"]


class IncrementalStreamingPosterior:
    """Shared incremental geometry state ``Y = L^{-1} B`` over one inversion.

    Parameters
    ----------
    inv:
        A :class:`~repro.inference.bayes.ToeplitzBayesianInversion` with
        Phases 2-3 complete (the factor ``L`` and the goal-oriented
        operators ``B``, ``P_q`` are required).

    Notes
    -----
    One engine per inversion is the intended shape — obtain it through
    :meth:`~repro.inference.bayes.ToeplitzBayesianInversion.streaming_state`
    so the single-event :class:`~repro.twin.earlywarning.StreamingInverter`
    and the fleet :class:`~repro.serve.server.BatchedPhase4Server` share
    the same geometry rows instead of each re-deriving them.
    """

    def __init__(self, inv: "ToeplitzBayesianInversion") -> None:
        if not inv.phase2_complete:
            raise RuntimeError("Phase 2 must be complete before streaming")
        if inv.B is None or inv.Pq is None:
            raise RuntimeError("Phase 3 must be complete before streaming")
        self.inv = inv
        self.L = inv.cholesky_lower
        self.nt, self.nd, self.nq = inv.nt, inv.nd, inv.nq
        self._nb = inv.B.shape[1]  # Nt * Nq flattened QoI dimension
        # Geometry rows Y = L^{-1} B, filled to k_geom * Nd rows.
        self._Y = np.empty((self.nt * self.nd, self._nb))
        self.k_geom = 0
        # Running QoI covariance at horizon ``k_geom`` (downdated per slot).
        self._cov = np.array(inv.Pq, dtype=np.float64, copy=True)
        # Immutable per-horizon covariance snapshots, shared by forecasts.
        self._cov_cache: Dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------
    # Shared geometry state
    # ------------------------------------------------------------------
    def _check_horizon(self, k_slots: int, lo: int = 0) -> int:
        k = int(k_slots)
        if not lo <= k <= self.nt:
            raise ValueError(f"k_slots must lie in [{lo}, {self.nt}]")
        return k

    def advance_geometry(self, k_slots: int) -> None:
        """Extend ``Y`` (and downdate the running covariance) to ``k_slots``.

        Each new slot costs one gemm against the rows already computed and
        one triangular solve on the ``Nd x Nd`` diagonal block — never a
        solve on the full leading system.  Idempotent for horizons already
        reached.
        """
        k = self._check_horizon(k_slots)
        nd, L, B, Y = self.nd, self.L, self.inv.B, self._Y
        while self.k_geom < k:
            s = self.k_geom
            r0, r1 = s * nd, (s + 1) * nd
            if s:
                rhs = B[r0:r1] - L[r0:r1, :r0] @ Y[:r0]
            else:
                rhs = np.array(B[r0:r1], copy=True)
            Y[r0:r1] = sla.solve_triangular(L[r0:r1, r0:r1], rhs, lower=True)
            # Rank-Nd downdate: cov_k = cov_{k-1} - y_new^T y_new.
            self._cov -= Y[r0:r1].T @ Y[r0:r1]
            self.k_geom = s + 1

    def covariance_at(self, k_slots: int) -> np.ndarray:
        """Exact QoI posterior covariance given the first ``k_slots`` slots.

        ``P_q - Y_k^T Y_k``, taken from the running downdated state when
        the engine sits exactly at ``k_slots`` (the sweep case) or by one
        symmetric rank-``k Nd`` product from the stored ``Y`` rows for
        random access to earlier horizons.  ``k_slots=0`` returns the
        prior predictive ``P_q``.  Snapshots are cached read-only and
        shared by every forecast at that horizon.
        """
        k = self._check_horizon(k_slots)
        cov = self._cov_cache.get(k)
        if cov is not None:
            return cov
        if k == self.nt and self.inv.qoi_covariance is not None:
            # Full horizon is exactly the Phase 3 product; share its
            # memory through a read-only view.
            cov = self.inv.qoi_covariance.view()
        else:
            self.advance_geometry(k)
            if k == self.k_geom:
                cov = self._cov.copy()
            else:  # geometry already past k: recompute from the stored rows
                n = k * self.nd
                cov = self.inv.Pq - self._Y[:n].T @ self._Y[:n]
            cov = 0.5 * (cov + cov.T)
        cov.setflags(write=False)
        self._cov_cache[k] = cov
        return cov

    def geometry_rows(self, k_slots: int) -> np.ndarray:
        """The forward-substituted block ``Y_k = L_k^{-1} B_k``, read-only view."""
        k = self._check_horizon(k_slots)
        self.advance_geometry(k)
        rows = self._Y[: k * self.nd]
        rows.setflags(write=False)  # view only; the engine's buffer stays live
        return rows

    def qoi_map(self, k_slots: int) -> np.ndarray:
        """The explicit truncated data-to-QoI operator ``Q_k = (K_k^{-1} B_k)^T``.

        ``Q_k`` requires the *backward* solve ``L_k^{-T} Y_k``, which does
        not nest across horizons — so this is an operator *export* (one
        ``k Nd``-sized solve, reusing the incremental ``Y_k`` for the
        forward half), **not** part of the per-slot streaming path.
        Streaming forecasts never need it: ``q_k = Y_k^T (L_k^{-1} d_k)``.
        """
        k = self._check_horizon(k_slots, lo=1)
        if k == self.nt and self.inv.Q is not None:
            return self.inv.Q
        n = k * self.nd
        Y = self.geometry_rows(k)
        KinvB = sla.solve_triangular(self.L[:n, :n], Y, lower=True, trans="T")
        return np.ascontiguousarray(KinvB.T)

    # ------------------------------------------------------------------
    # Fleets of data streams
    # ------------------------------------------------------------------
    def open_fleet(self, streams: np.ndarray) -> "StreamingFleet":
        """Attach a batch of observation streams ``(Nt, Nd[, k])``.

        Returns a :class:`StreamingFleet` holding the per-stream
        forward-substituted states; streams advance independently (ragged
        horizons) against this engine's shared geometry.
        """
        return StreamingFleet(self, streams)

    # ------------------------------------------------------------------
    @property
    def horizons_cached(self) -> int:
        """Number of per-horizon covariance snapshots currently held."""
        return len(self._cov_cache)

    def state_nbytes(self) -> int:
        """Memory of the incremental geometry state (``Y`` + covariances)."""
        qc = self.inv.qoi_covariance
        cached = sum(
            c.nbytes
            for c in self._cov_cache.values()
            if qc is None or not np.shares_memory(c, qc)  # nt aliases Phase 3
        )
        return int(self._Y.nbytes + self._cov.nbytes + cached)


class StreamingFleet:
    """Per-stream forward-substituted data states over one shared geometry.

    Maintains ``W[:, j] = L_{k_j}^{-1} d_j`` for every stream ``j`` at its
    own horizon ``k_j``.  :meth:`advance` absorbs new observation slots in
    causal order, grouping the streams that need a given slot into one
    multi-right-hand-side block solve — the fleet-wide O(1)-solves-per-slot
    update.
    """

    def __init__(self, engine: IncrementalStreamingPosterior, streams: np.ndarray) -> None:
        D = np.asarray(streams, dtype=np.float64)
        if D.ndim == 2:
            D = D[:, :, None]
        if D.ndim != 3 or D.shape[:2] != (engine.nt, engine.nd):
            raise ValueError(
                f"streams must stack to ({engine.nt},{engine.nd},k), got {D.shape}"
            )
        self.engine = engine
        self.D = D
        self.n_streams = int(D.shape[2])
        self._W = np.zeros((engine.nt * engine.nd, self.n_streams))
        # Running QoI means: q_j accumulates y_new^T w_new as slots are
        # absorbed, so reading the fleet's forecasts costs no large gemm.
        self._means = np.zeros((engine._nb, self.n_streams))
        self.horizons = np.zeros(self.n_streams, dtype=np.int64)

    # ------------------------------------------------------------------
    def _targets(self, k_slots: Union[int, Sequence[int], np.ndarray]) -> np.ndarray:
        t = np.asarray(k_slots, dtype=np.int64)
        if t.ndim == 0:
            t = np.full(self.n_streams, int(t), dtype=np.int64)
        if t.shape != (self.n_streams,):
            raise ValueError(
                f"k_slots must be a scalar or ({self.n_streams},), got shape {t.shape}"
            )
        if t.min() < 0 or t.max() > self.engine.nt:
            raise ValueError(f"k_slots must lie in [0, {self.engine.nt}]")
        if np.any(t < self.horizons):
            raise ValueError("streams only advance forward (horizons are monotone)")
        return t

    def advance(self, k_slots: Union[int, Sequence[int], np.ndarray]) -> "StreamingFleet":
        """Absorb observation slots up to ``k_slots`` (scalar or per-stream).

        Slots are processed in causal order; at each slot the streams that
        still need it are advanced together: one ``(Nd, rows-so-far)`` gemm,
        one triangular solve on the ``Nd x Nd`` diagonal block, and one
        rank-``Nd`` mean accumulation ``q += y_new^T w_new`` — no solve
        ever touches a system larger than the new slot's block rows.
        """
        targets = self._targets(k_slots)
        eng = self.engine
        nd, L, W = eng.nd, eng.L, self._W
        lo = int(self.horizons.min())
        hi = int(targets.max())
        eng.advance_geometry(hi)
        for s in range(lo, hi):
            sel = (self.horizons <= s) & (targets > s)
            if not sel.any():
                continue
            idx = np.nonzero(sel)[0]
            r0, r1 = s * nd, (s + 1) * nd
            rhs = self.D[s][:, idx]
            if s:
                rhs = rhs - L[r0:r1, :r0] @ W[:r0, idx]
            w_new = sla.solve_triangular(L[r0:r1, r0:r1], rhs, lower=True)
            W[r0:r1, idx] = w_new
            # Nested means: q_k = q_{k-1} + y_new^T w_new.
            self._means[:, idx] += eng._Y[r0:r1].T @ w_new
        self.horizons = targets
        return self

    # ------------------------------------------------------------------
    def forecast_means(self) -> np.ndarray:
        """All fleet QoI means at the streams' current horizons, ``(NtNq, k)``.

        ``q_j = Y_{k_j}^T w_j``, maintained incrementally by
        :meth:`advance` — this is a copy of the running state, no solves
        or large products.  Streams still at horizon 0 carry the prior
        mean (zero).
        """
        return self._means.copy()

    def forecasts(self, times: Optional[np.ndarray] = None) -> List[QoIForecast]:
        """One exact :class:`QoIForecast` per stream at its current horizon.

        Covariances depend only on (geometry, horizon), so streams at the
        same horizon share one cached snapshot.
        """
        eng = self.engine
        means = self.forecast_means()
        if times is None:
            times = np.arange(1, eng.nt + 1, dtype=np.float64)
        covs = {int(k): eng.covariance_at(int(k)) for k in np.unique(self.horizons)}
        return [
            QoIForecast(
                times=times,
                mean=means[:, j].reshape(eng.nt, eng.nq),
                covariance=covs[int(self.horizons[j])],
            )
            for j in range(self.n_streams)
        ]
