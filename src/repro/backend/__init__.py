"""Array-API backend seam for the online hot paths.

The online phase — streaming inversion, bank identification, sketch
screening — is dominated by a handful of dense kernels: blocked
``trsm``/``gemm`` advances on ``Nd x Nd`` slot blocks, bank-column gemms,
per-slot sketch projections, and FFT block-Toeplitz applies.  This module
gives each of those kernels a single dispatch point: a :class:`Backend`
object carrying the array namespace, the device, the dtype policy, a
kernel table (``solve_triangular`` / ``qr`` / ``einsum`` / ``matmul`` /
``rfft``), and host<->device transfer helpers.

Two contracts, depending on the backend:

**numpy (default): bitwise identity.**  The numpy backend's kernel table
entries delegate to the *very same* library functions the hot paths
called before the seam existed (``scipy.linalg.solve_triangular``,
``np.einsum``, ``np.fft.rfft``, ``np.matmul``, ...) with identical
arguments, so routing through the seam reproduces today's results
BLAS-call-for-BLAS-call.  The fabric's shard-layout-independence and
sketch-certificate tests depend on this; every ``rtol`` budget on the
numpy backend is exactly ``0.0`` and :attr:`Backend.is_exact` is True.

**torch / cupy: tolerance certification.**  Accelerated backends may
reorder reductions, so each kernel declares an explicit relative-error
budget (:class:`KernelBudget`).  The certified sketch screen inflates its
brackets by the aggregate :attr:`Backend.screen_rtol` so that screening
decisions stay provably safe relative to the numpy-exact evidence, and
``tests/backend/`` asserts (a) torch-CPU results agree with numpy within
the declared budgets and (b) inflated brackets still contain the exact
evidence under random-bank sweeps.

Backends are auto-detected: ``torch`` and ``cupy`` appear in
:func:`available_backends` only when importable.  Nothing here imports
them at module load — construction is lazy and guarded, so the package
works on a numpy-only interpreter.
"""

from __future__ import annotations

import importlib.util
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple, Union

import numpy as np
import scipy.linalg as sla

__all__ = [
    "Backend",
    "BackendUnavailable",
    "KernelBudget",
    "available_backends",
    "default_backend",
    "get_backend",
    "resolve_backend",
]


class BackendUnavailable(RuntimeError):
    """Requested backend's library (or device) is not importable/usable."""


@dataclass(frozen=True)
class KernelBudget:
    """Per-kernel relative-error budgets versus the numpy reference.

    All zero on the numpy backend (bitwise contract).  Non-numpy budgets
    are deliberately generous upper bounds on fp64 reduction-reordering
    error for the online problem sizes (Nd, Nt*Nd up to a few hundred);
    they exist to make the tolerance contract *explicit and testable*,
    not to be tight.
    """

    gemm: float = 0.0
    trsm: float = 0.0
    fft: float = 0.0
    qr: float = 0.0

    def combined(self) -> float:
        """Aggregate budget for a quantity touched by every kernel once."""
        return self.gemm + self.trsm + self.fft + self.qr


class Backend:
    """One array backend: namespace + device + dtype policy + kernel table.

    Subclasses fill in the kernel table.  All kernels take/return the
    backend's native arrays; ``asarray`` moves host (numpy) data in and
    ``to_numpy`` moves results back.  For the numpy backend both transfers
    are identity (no copy unless requested), and every kernel is the
    original library function.
    """

    name: str = "abstract"
    device: str = "cpu"
    is_numpy: bool = False
    budget: KernelBudget = KernelBudget()

    # -- identity / policy -------------------------------------------------
    @property
    def is_exact(self) -> bool:
        """True iff this backend honours the bitwise-identity contract."""
        return self.budget.combined() == 0.0

    @property
    def screen_rtol(self) -> float:
        """Relative inflation applied to certified sketch brackets.

        The screened quadratic touches gemm (state advance + cross terms),
        trsm (the blocked solve) and the sketch gemm; the bracket padding
        uses the combined budget so a single knob covers the chain.
        """
        return self.budget.combined()

    @property
    def dtype_name(self) -> str:
        return "float64"

    def key(self) -> Tuple[str, str, str]:
        """Hashable identity for memo keys: (name, device, dtype)."""
        return (self.name, self.device, self.dtype_name)

    # -- transfers / creation ---------------------------------------------
    def asarray(self, x: Any) -> Any:
        raise NotImplementedError

    def ascomplex(self, x: Any) -> Any:
        """Move a complex host array (e.g. an FFT spectrum) to the device."""
        raise NotImplementedError

    def to_numpy(self, x: Any, copy: bool = False) -> np.ndarray:
        raise NotImplementedError

    def is_native(self, x: Any) -> bool:
        raise NotImplementedError

    def empty(self, shape: Tuple[int, ...]) -> Any:
        raise NotImplementedError

    def zeros(self, shape: Tuple[int, ...]) -> Any:
        raise NotImplementedError

    def copy(self, x: Any) -> Any:
        raise NotImplementedError

    def index(self, idx: np.ndarray) -> Any:
        """Convert a host integer index array for fancy indexing."""
        raise NotImplementedError

    # -- kernel table ------------------------------------------------------
    def solve_triangular(self, a: Any, b: Any, lower: bool = True) -> Any:
        raise NotImplementedError

    def qr(self, a: Any) -> Tuple[Any, Any]:
        raise NotImplementedError

    def einsum(self, eq: str, *ops: Any) -> Any:
        raise NotImplementedError

    def matmul(self, a: Any, b: Any) -> Any:
        raise NotImplementedError

    def rfft(self, x: Any, n: Optional[int] = None, axis: int = -1) -> Any:
        raise NotImplementedError

    def irfft(self, x: Any, n: Optional[int] = None, axis: int = -1) -> Any:
        raise NotImplementedError

    def moveaxis(self, x: Any, src: int, dst: int) -> Any:
        raise NotImplementedError

    def ascontiguousarray(self, x: Any) -> Any:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Backend({self.name!r}, device={self.device!r}, dtype={self.dtype_name})"


class _NumpyBackend(Backend):
    """The reference backend: every kernel is the original library call."""

    name = "numpy"
    device = "cpu"
    is_numpy = True
    budget = KernelBudget()  # all zero: bitwise contract

    def asarray(self, x):
        return np.asarray(x, dtype=np.float64)

    def ascomplex(self, x):
        return np.asarray(x)

    def to_numpy(self, x, copy=False):
        return np.array(x, copy=True) if copy else np.asarray(x)

    def is_native(self, x):
        return isinstance(x, np.ndarray)

    def empty(self, shape):
        return np.empty(shape)

    def zeros(self, shape):
        return np.zeros(shape)

    def copy(self, x):
        return np.array(x, copy=True)

    def index(self, idx):
        return idx

    def solve_triangular(self, a, b, lower=True):
        return sla.solve_triangular(a, b, lower=lower)

    def qr(self, a):
        return np.linalg.qr(a)

    def einsum(self, eq, *ops):
        return np.einsum(eq, *ops)

    def matmul(self, a, b):
        return np.matmul(a, b)

    def rfft(self, x, n=None, axis=-1):
        return np.fft.rfft(x, n=n, axis=axis)

    def irfft(self, x, n=None, axis=-1):
        return np.fft.irfft(x, n=n, axis=axis)

    def moveaxis(self, x, src, dst):
        return np.moveaxis(x, src, dst)

    def ascontiguousarray(self, x):
        return np.ascontiguousarray(x)


# Generous fp64 reduction-reorder budgets for accelerated backends.  The
# equivalence suite asserts torch-CPU stays well inside these; GPU execution
# (torch-cuda / cupy) shares them because the error source is the same
# (reduction order), not the silicon.
_ACCEL_BUDGET = KernelBudget(gemm=1e-9, trsm=1e-9, fft=1e-9, qr=1e-8)


class _TorchBackend(Backend):
    name = "torch"
    budget = _ACCEL_BUDGET

    def __init__(self, device: str = "cpu"):
        try:
            import torch
        except ImportError as exc:  # pragma: no cover - guarded by detection
            raise BackendUnavailable("torch is not importable") from exc
        if device.startswith("cuda") and not torch.cuda.is_available():
            raise BackendUnavailable("torch reports no CUDA device")
        self._torch = torch
        self.device = device

    @property
    def xp(self):
        return self._torch

    def asarray(self, x):
        t = self._torch
        if isinstance(x, t.Tensor):
            return x.to(device=self.device, dtype=t.float64)
        return t.as_tensor(np.ascontiguousarray(np.asarray(x, dtype=np.float64)),
                           dtype=t.float64, device=self.device)

    def ascomplex(self, x):
        t = self._torch
        if isinstance(x, t.Tensor):
            return x.to(device=self.device)
        return t.as_tensor(np.ascontiguousarray(x), device=self.device)

    def to_numpy(self, x, copy=False):
        if isinstance(x, self._torch.Tensor):
            arr = x.detach().cpu().numpy()
            return arr.copy() if copy else arr
        return np.array(x, copy=True) if copy else np.asarray(x)

    def is_native(self, x):
        return isinstance(x, self._torch.Tensor)

    def empty(self, shape):
        return self._torch.empty(shape, dtype=self._torch.float64, device=self.device)

    def zeros(self, shape):
        return self._torch.zeros(shape, dtype=self._torch.float64, device=self.device)

    def copy(self, x):
        return x.clone()

    def index(self, idx):
        return self._torch.as_tensor(np.ascontiguousarray(idx), device=self.device)

    def solve_triangular(self, a, b, lower=True):
        t = self._torch
        b2 = b if b.ndim == 2 else b.unsqueeze(-1)
        out = t.linalg.solve_triangular(a, b2, upper=not lower)
        return out if b.ndim == 2 else out.squeeze(-1)

    def qr(self, a):
        return self._torch.linalg.qr(a)

    def einsum(self, eq, *ops):
        return self._torch.einsum(eq, *ops)

    def matmul(self, a, b):
        return self._torch.matmul(a, b)

    def rfft(self, x, n=None, axis=-1):
        return self._torch.fft.rfft(x, n=n, dim=axis)

    def irfft(self, x, n=None, axis=-1):
        return self._torch.fft.irfft(x, n=n, dim=axis)

    def moveaxis(self, x, src, dst):
        return self._torch.movedim(x, src, dst)

    def ascontiguousarray(self, x):
        return x.contiguous()


class _CupyBackend(Backend):  # pragma: no cover - requires a CUDA runtime
    name = "cupy"
    device = "cuda"
    budget = _ACCEL_BUDGET

    def __init__(self):
        try:
            import cupy
            import cupyx.scipy.linalg as cpx_sla
        except ImportError as exc:
            raise BackendUnavailable("cupy is not importable") from exc
        try:
            cupy.cuda.runtime.getDeviceCount()
        except Exception as exc:
            raise BackendUnavailable("cupy found no CUDA device") from exc
        self._cp = cupy
        self._sla = cpx_sla

    @property
    def xp(self):
        return self._cp

    def asarray(self, x):
        return self._cp.asarray(x, dtype=self._cp.float64)

    def ascomplex(self, x):
        return self._cp.asarray(x)

    def to_numpy(self, x, copy=False):
        if isinstance(x, self._cp.ndarray):
            return self._cp.asnumpy(x)
        return np.array(x, copy=True) if copy else np.asarray(x)

    def is_native(self, x):
        return isinstance(x, self._cp.ndarray)

    def empty(self, shape):
        return self._cp.empty(shape, dtype=self._cp.float64)

    def zeros(self, shape):
        return self._cp.zeros(shape, dtype=self._cp.float64)

    def copy(self, x):
        return x.copy()

    def index(self, idx):
        return self._cp.asarray(idx)

    def solve_triangular(self, a, b, lower=True):
        return self._sla.solve_triangular(a, b, lower=lower)

    def qr(self, a):
        return self._cp.linalg.qr(a)

    def einsum(self, eq, *ops):
        return self._cp.einsum(eq, *ops)

    def matmul(self, a, b):
        return self._cp.matmul(a, b)

    def rfft(self, x, n=None, axis=-1):
        return self._cp.fft.rfft(x, n=n, axis=axis)

    def irfft(self, x, n=None, axis=-1):
        return self._cp.fft.irfft(x, n=n, axis=axis)

    def moveaxis(self, x, src, dst):
        return self._cp.moveaxis(x, src, dst)

    def ascontiguousarray(self, x):
        return self._cp.ascontiguousarray(x)


_NUMPY = _NumpyBackend()
_CACHE: Dict[str, Backend] = {"numpy": _NUMPY}

_ALIASES = {
    "np": "numpy",
    "torch-cpu": "torch",
    "pytorch": "torch",
}


def default_backend() -> Backend:
    """The numpy reference backend (always available, bitwise-exact)."""
    return _NUMPY


def available_backends() -> Tuple[str, ...]:
    """Names constructible on this interpreter, numpy first.

    Detection is by import-spec only (cheap, no import side effects);
    construction may still raise :class:`BackendUnavailable` for GPU
    backends on machines without a device (e.g. cupy installed, no CUDA).
    """
    names = ["numpy"]
    if importlib.util.find_spec("torch") is not None:
        names.append("torch")
    if importlib.util.find_spec("cupy") is not None:
        names.append("cupy")
    return tuple(names)


def get_backend(name: Optional[str] = None) -> Backend:
    """Resolve a backend by name; None/"numpy" return the exact default.

    Accepted names: ``numpy``, ``torch`` (CPU), ``torch-cuda``, ``cupy``.
    Constructed backends are cached per name so repeated lookups share
    device context.
    """
    if name is None:
        return _NUMPY
    key = _ALIASES.get(name.lower(), name.lower())
    if key in _CACHE:
        return _CACHE[key]
    if key == "torch":
        bk: Backend = _TorchBackend("cpu")
    elif key in ("torch-cuda", "torch-gpu"):
        bk = _TorchBackend("cuda")
        key = "torch-cuda"
    elif key == "cupy":
        bk = _CupyBackend()
    else:
        raise ValueError(
            f"unknown backend {name!r}; expected one of "
            "'numpy', 'torch', 'torch-cuda', 'cupy'"
        )
    _CACHE[key] = bk
    return bk


def resolve_backend(backend: Union[Backend, str, None]) -> Backend:
    """Accept a Backend instance, a name, or None (numpy default)."""
    if backend is None:
        return _NUMPY
    if isinstance(backend, Backend):
        return backend
    return get_backend(backend)
