"""Margin-wide Cascadia rupture scenarios on the seafloor trace grid.

``margin_wide_scenario`` manufactures the "truth" of the twin experiment
(the analogue of the paper's Fig. 3a dynamic-rupture source): a
heterogeneous lognormal/von-Karman uplift field confined to the locked
portion of the megathrust, released by a rupture front sweeping the margin
at a finite speed, elastically smoothed, and exactly slot-averaged into the
parameter blocks ``m`` of the acoustic--gravity solver.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.fem.spaces import TraceGrid
from repro.rupture.kinematic import KinematicRupture
from repro.rupture.randomfields import (
    cosine_taper,
    interpolate_to_points,
    von_karman_field,
)
from repro.rupture.source import (
    SmoothRampSTF,
    moment_magnitude,
    seismic_moment,
)
from repro.rupture.transfer import elastic_smoothing_matrix
from repro.util.validation import check_positive

__all__ = ["RuptureScenario", "default_rupture_velocity", "margin_wide_scenario"]


def default_rupture_velocity(span: float, window: float) -> float:
    """The default front speed: sweep the margin in ~60% of the window.

    The single definition shared by :func:`margin_wide_scenario` and the
    serving layer's scenario bank (whose ``velocity_factor`` multiplies
    this value).
    """
    return float(span) / (0.6 * float(window))


@dataclass
class RuptureScenario:
    """A complete synthetic-truth rupture scenario.

    Attributes
    ----------
    m:
        Slot-averaged seafloor uplift velocity ``(Nt, Nm)`` — the true
        parameter field the inversion tries to recover.
    displacement:
        Final seafloor uplift ``(Nm,)`` (equals ``dt_obs * sum_t m_t`` once
        the rupture has completed).
    rupture:
        The underlying :class:`~repro.rupture.kinematic.KinematicRupture`.
    info:
        Metadata: hypocenter, rupture velocity, rise time, magnitude
        analogue, seed.
    """

    m: np.ndarray
    displacement: np.ndarray
    rupture: KinematicRupture
    info: Dict[str, float] = field(default_factory=dict)

    @property
    def nt(self) -> int:
        """Number of observation slots."""
        return int(self.m.shape[0])

    @property
    def nm(self) -> int:
        """Number of spatial parameter points."""
        return int(self.m.shape[1])

    @property
    def mw(self) -> float:
        """Moment-magnitude analogue (from the ``info`` metadata)."""
        return float(self.info.get("mw_analog", np.nan))

    @property
    def hypocenter(self) -> np.ndarray:
        """Nucleation point of the underlying kinematic rupture."""
        return self.rupture.hypocenter


def _trace_cell_weights(axes) -> np.ndarray:
    """Trapezoid cell areas on a tensor grid (for moment integrals)."""
    ws = []
    for a in axes:
        a = np.asarray(a, dtype=np.float64)
        h = np.zeros(a.size)
        if a.size > 1:
            dx = np.diff(a)
            h[:-1] += dx / 2.0
            h[1:] += dx / 2.0
        else:
            h[:] = 1.0
        ws.append(h)
    out = ws[0]
    for w in ws[1:]:
        out = np.kron(out, w)
    return out


def margin_wide_scenario(
    trace: TraceGrid,
    nt: int,
    dt_obs: float,
    peak_uplift: float = 1.0,
    locked_zone: Tuple[float, float] = (0.08, 0.62),
    correlation_length_frac: float = 0.18,
    hurst: float = 0.75,
    rupture_velocity: Optional[float] = None,
    rise_time: Optional[float] = None,
    hypocenter_frac: Optional[Tuple[float, ...]] = None,
    smoothing_length_frac: float = 0.05,
    lognormal_sigma: float = 0.7,
    rigidity: float = 30e9,
    dip_deg: float = 12.0,
    seed: int = 0,
) -> RuptureScenario:
    """Build the Mw-8.7-analogue margin-wide rupture on a trace grid.

    Parameters
    ----------
    trace:
        The bottom :class:`~repro.fem.spaces.TraceGrid` of the assembled
        ocean operator (provides parameter coordinates and axes).
    nt, dt_obs:
        Observation slot count and width (must cover the rupture).
    peak_uplift:
        Target maximum final seafloor uplift (meters at physical scale).
    locked_zone:
        Down-dip extent of the rupture as fractions of the cross-margin
        axis (the paper's "locked portion of the megathrust", Fig. 1a).
    correlation_length_frac, hurst, lognormal_sigma:
        Slip-heterogeneity statistics (von Karman + lognormal modulation).
    rupture_velocity:
        Front speed; default sweeps the margin in ~60% of the window.
    rise_time:
        Local slip duration; default ``8 * dt_obs``.
    hypocenter_frac:
        Nucleation point as domain fractions; default mid-margin, down-dip
        edge.
    smoothing_length_frac:
        Elastic smoothing length as a fraction of the domain diagonal.
    rigidity, dip_deg:
        Used only for the magnitude-analogue metadata (slip inferred from
        uplift via ``sin(dip)``).
    seed:
        Deterministic seed for the heterogeneity.
    """
    check_positive("nt", nt)
    check_positive("dt_obs", dt_obs)
    check_positive("peak_uplift", peak_uplift)
    if any(a is None for a in trace.axes):
        raise ValueError("trace grid must have straight horizontal axes")
    axes = [np.asarray(a, dtype=np.float64) for a in trace.axes]
    dh = len(axes)
    if dh < 1:
        raise ValueError("scenario generation needs at least one horizontal axis")
    lo = np.array([a[0] for a in axes])
    hi = np.array([a[-1] for a in axes])
    span = hi - lo
    diag = float(np.linalg.norm(span))

    # 1. Heterogeneous slip texture on a regular grid, interpolated to nodes.
    grid_shape = tuple(max(32, 2 * a.size) for a in axes)
    rf = von_karman_field(
        grid_shape,
        list(span),
        correlation_length=correlation_length_frac * diag,
        hurst=hurst,
        seed=seed,
    )
    grid_axes = [np.linspace(l, h, n) for l, h, n in zip(lo, hi, grid_shape)]
    coords_h = trace.coords[:, :dh]
    texture = interpolate_to_points(rf, grid_axes, coords_h)
    uplift = np.exp(lognormal_sigma * texture)

    # 2. Confine to the locked zone with a smooth taper (and taper along-margin).
    zone_lo = lo.copy()
    zone_hi = hi.copy()
    zone_lo[0] = lo[0] + locked_zone[0] * span[0]
    zone_hi[0] = lo[0] + locked_zone[1] * span[0]
    width = 0.12 * (zone_hi - zone_lo)
    width[width <= 0] = 1.0
    taper = cosine_taper(coords_h, zone_lo, zone_hi, width)
    uplift = uplift * taper

    # 3. Elastic smoothing and peak normalization.
    S = elastic_smoothing_matrix(axes, smoothing_length_frac * diag)
    uplift = S @ uplift
    peak = float(np.max(uplift))
    if peak <= 0:
        raise ValueError("degenerate scenario: zero uplift everywhere")
    uplift *= peak_uplift / peak

    # 4. Rupture kinematics.
    window = nt * dt_obs
    if rupture_velocity is None:
        rupture_velocity = default_rupture_velocity(np.max(span), window)
    if rise_time is None:
        rise_time = 8.0 * dt_obs
    if hypocenter_frac is None:
        hypocenter_frac = (locked_zone[0] + 0.1,) + (0.5,) * (dh - 1)
    hypo = lo + np.asarray(hypocenter_frac[:dh]) * span
    rupture = KinematicRupture(
        coords=coords_h,
        slip=uplift,
        hypocenter=hypo,
        rupture_velocity=rupture_velocity,
        stf=SmoothRampSTF(rise_time=rise_time),
        onset=0.5 * dt_obs,
    )

    m = rupture.slot_averages(nt, dt_obs)
    displacement = dt_obs * np.sum(m, axis=0)

    # Magnitude analogue (meaningful at physical scale; reported always).
    cell = _trace_cell_weights(axes)
    if dh == 1:
        cell = cell * 0.2 * span[0]  # assume an along-margin extent in 2D slices
    slip = uplift / np.sin(np.deg2rad(dip_deg))
    m0 = seismic_moment(slip, cell, rigidity=rigidity)
    info = {
        "hypocenter_x": float(hypo[0]),
        "rupture_velocity": float(rupture_velocity),
        "rise_time": float(rise_time),
        "duration": float(rupture.duration()),
        "peak_uplift": float(np.max(uplift)),
        "moment": m0,
        "mw_analog": float(moment_magnitude(m0)),
        "seed": float(seed),
    }
    return RuptureScenario(m=m, displacement=displacement, rupture=rupture, info=info)
