"""Elastic transfer from fault slip to seafloor uplift: Gaussian smoothing.

In the paper the seafloor displacement comes out of a full elastodynamic
rupture simulation.  The dominant *static* effect of elastic transmission
through the overburden is a low-pass spatial filter: slip features narrower
than roughly the fault depth are attenuated at the seafloor (the classical
Okada/half-space result).  We model it with a normalized Gaussian smoothing
operator of width ``smoothing_length`` acting on the parameter trace grid —
a separable, mass-conserving matrix built per axis.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.util.validation import check_positive

__all__ = ["gaussian_smoothing_1d", "elastic_smoothing_matrix"]


def gaussian_smoothing_1d(nodes: np.ndarray, length: float) -> np.ndarray:
    """Row-normalized Gaussian smoothing matrix on a 1D (nonuniform) grid.

    Row ``i`` holds weights ``w_ij ~ h_j exp(-(x_i - x_j)^2 / (2 l^2))``
    (trapezoid-weighted so the filter is exact on constants regardless of
    grid non-uniformity).
    """
    check_positive("length", length)
    x = np.asarray(nodes, dtype=np.float64).reshape(-1)
    n = x.size
    if n == 1:
        return np.ones((1, 1))
    h = np.zeros(n)
    dx = np.diff(x)
    h[:-1] += dx / 2.0
    h[1:] += dx / 2.0
    W = np.exp(-((x[:, None] - x[None, :]) ** 2) / (2.0 * length**2)) * h[None, :]
    W /= W.sum(axis=1, keepdims=True)
    return W


def elastic_smoothing_matrix(
    axes: List[np.ndarray], smoothing_length: float
) -> np.ndarray:
    """Separable Gaussian smoothing on a tensor grid, as a dense matrix.

    Returns the ``(N, N)`` operator with ``N = prod(len(axis))``; apply it
    to flattened (C-order) trace fields.  Exact on constants, symmetric up
    to grid non-uniformity, and contractive in the maximum norm.
    """
    mats = [gaussian_smoothing_1d(a, smoothing_length) for a in axes]
    out = mats[0]
    for m in mats[1:]:
        out = np.kron(out, m)
    return out
