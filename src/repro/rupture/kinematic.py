"""Kinematic rupture model: slip field + rupture front + rise time.

Point ``x`` on the fault starts slipping when the rupture front — expanding
from the hypocenter at speed ``V_r`` — arrives at ``t_arr(x) = |x - x_h| /
V_r (+ onset)``, then releases its final slip ``s(x)`` following the source
time function.  The slot-averaged slip rate (what the acoustic-gravity
parameter blocks need) is computed *exactly* from the STF cumulative:

.. math::

    m_j(x) = s(x) \\frac{S(t_j - t_{arr}) - S(t_{j-1} - t_{arr})}{\\Delta t}.

Causality (no slip before front arrival) and total-slip consistency
(``dt * sum_j m_j = s``, once the rupture completes) are exact by
construction and verified by property-based tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from repro.rupture.source import SmoothRampSTF
from repro.util.validation import check_positive

__all__ = ["KinematicRupture"]

STFLike = Union["BoxcarSTF", "TriangleSTF", "SmoothRampSTF"]


@dataclass
class KinematicRupture:
    """A kinematic rupture over a set of fault/seafloor points.

    Parameters
    ----------
    coords:
        ``(Nm, dh)`` horizontal coordinates of the parameter points.
    slip:
        ``(Nm,)`` final slip (or final seafloor uplift) at each point.
    hypocenter:
        ``(dh,)`` rupture nucleation point.
    rupture_velocity:
        Front propagation speed ``V_r`` (same units as coords per second).
    stf:
        Source-time function object (``rate`` + ``cumulative``); default
        is the smooth ramp.
    onset:
        Delay before nucleation (seconds).
    """

    coords: np.ndarray
    slip: np.ndarray
    hypocenter: np.ndarray
    rupture_velocity: float
    stf: Optional[STFLike] = None
    onset: float = 0.0

    def __post_init__(self) -> None:
        self.coords = np.asarray(self.coords, dtype=np.float64)
        if self.coords.ndim == 1:
            self.coords = self.coords[:, None]
        self.slip = np.asarray(self.slip, dtype=np.float64).reshape(-1)
        if self.slip.shape[0] != self.coords.shape[0]:
            raise ValueError("slip and coords must have matching length")
        if np.any(self.slip < 0):
            raise ValueError("slip must be non-negative")
        self.hypocenter = np.asarray(self.hypocenter, dtype=np.float64).reshape(-1)
        if self.hypocenter.shape[0] != self.coords.shape[1]:
            raise ValueError("hypocenter dimension must match coords")
        check_positive("rupture_velocity", self.rupture_velocity)
        if self.onset < 0:
            raise ValueError("onset must be non-negative")
        if self.stf is None:
            self.stf = SmoothRampSTF(rise_time=1.0)

    # ------------------------------------------------------------------
    @property
    def n_points(self) -> int:
        """Number of fault/seafloor points."""
        return int(self.coords.shape[0])

    def arrival_times(self) -> np.ndarray:
        """Rupture-front arrival time at each point."""
        dist = np.linalg.norm(self.coords - self.hypocenter[None, :], axis=1)
        return self.onset + dist / self.rupture_velocity

    def duration(self) -> float:
        """Time by which all points have finished slipping."""
        return float(np.max(self.arrival_times()) + self.stf.rise_time)

    # ------------------------------------------------------------------
    def slip_rate(self, times: np.ndarray) -> np.ndarray:
        """Instantaneous slip rate, ``(ntimes, Nm)``."""
        t = np.asarray(times, dtype=np.float64).reshape(-1)
        ta = self.arrival_times()
        rel = t[:, None] - ta[None, :]
        return self.slip[None, :] * self.stf.rate(rel)

    def cumulative_slip(self, times: np.ndarray) -> np.ndarray:
        """Accumulated slip by each time, ``(ntimes, Nm)``."""
        t = np.asarray(times, dtype=np.float64).reshape(-1)
        ta = self.arrival_times()
        rel = t[:, None] - ta[None, :]
        return self.slip[None, :] * self.stf.cumulative(rel)

    def slot_averages(self, nt: int, dt_obs: float) -> np.ndarray:
        """Exact slot-averaged slip rates ``(Nt, Nm)`` — the parameter truth.

        Slot ``j`` covers ``((j-1) dt, j dt]``; the average rate over it is
        the cumulative increment divided by ``dt`` (exact, no quadrature).
        """
        check_positive("dt_obs", dt_obs)
        edges = dt_obs * np.arange(nt + 1)
        cum = self.cumulative_slip(edges)  # (Nt+1, Nm)
        return np.diff(cum, axis=0) / dt_obs

    def final_displacement(self) -> np.ndarray:
        """Final slip/uplift field (the Fig. 3a ground truth)."""
        return self.slip.copy()
