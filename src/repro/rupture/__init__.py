"""Kinematic earthquake-rupture scenario generation.

The paper drives its digital twin with "true" seafloor displacements from a
3D dynamic rupture simulation of a magnitude-8.7 margin-wide Cascadia
earthquake (SeisSol; Glehman et al.).  Dynamic rupture codes and their
inputs are outside the scope of an offline Python reproduction, so this
package substitutes a **kinematic rupture generator** with the same
statistical character: heterogeneous (von Karman / lognormal) slip, a
finite-speed propagating rupture front from a hypocenter, rise-time source
dynamics, and an elastic-smoothing transfer from fault slip to seafloor
uplift.  The scenario is used *only* to manufacture the synthetic truth and
noisy observations; the inversion never sees any of its internals.

Submodules
----------
``randomfields``
    Spectral synthesis of Gaussian and von Karman random fields on regular
    grids, with interpolation onto arbitrary (trace) points.
``source``
    Source-time functions (boxcar, triangle, smoothed ramp) with exact
    cumulatives, plus seismic moment / moment-magnitude utilities.
``kinematic``
    ``KinematicRupture``: slip field + rupture front + rise time ->
    space-time slip-rate, exactly slot-averaged for the parameter blocks.
``transfer``
    Elastic smoothing (Gaussian filter) from fault slip rate to seafloor
    uplift velocity.
``scenario``
    ``margin_wide_scenario``: the Mw-8.7-analogue margin-wide Cascadia
    rupture on the bottom-trace grid of an assembled ocean operator.
"""

from repro.rupture.kinematic import KinematicRupture
from repro.rupture.randomfields import (
    gaussian_random_field,
    interpolate_to_points,
    von_karman_field,
)
from repro.rupture.scenario import (
    RuptureScenario,
    default_rupture_velocity,
    margin_wide_scenario,
)
from repro.rupture.source import (
    BoxcarSTF,
    SmoothRampSTF,
    TriangleSTF,
    moment_magnitude,
    seismic_moment,
)
from repro.rupture.transfer import elastic_smoothing_matrix

__all__ = [
    "gaussian_random_field",
    "von_karman_field",
    "interpolate_to_points",
    "BoxcarSTF",
    "TriangleSTF",
    "SmoothRampSTF",
    "seismic_moment",
    "moment_magnitude",
    "KinematicRupture",
    "elastic_smoothing_matrix",
    "RuptureScenario",
    "default_rupture_velocity",
    "margin_wide_scenario",
]
