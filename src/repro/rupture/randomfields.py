"""Spectral synthesis of correlated random fields (slip heterogeneity).

Earthquake slip distributions are well described by von Karman random
fields: power-law spectra ``S(k) ~ (1 + (kL)^2)^{-(H + d/2)}`` with
correlation length ``L`` and Hurst exponent ``H`` (Mai & Beroza 2002).
This module synthesizes such fields on regular grids by filtering white
noise in Fourier space, normalizes them to unit variance, and interpolates
them onto arbitrary point sets (the seafloor trace grid).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.util.validation import check_positive

__all__ = [
    "spectral_field",
    "gaussian_random_field",
    "von_karman_field",
    "interpolate_to_points",
    "cosine_taper",
]


def _wavenumber_grid(shape: Sequence[int], lengths: Sequence[float]) -> np.ndarray:
    """Radial wavenumber magnitude ``|k|`` on the FFT grid."""
    ks = [
        2.0 * np.pi * np.fft.fftfreq(n, d=L / n)
        for n, L in zip(shape, lengths)
    ]
    grids = np.meshgrid(*ks, indexing="ij")
    return np.sqrt(sum(g**2 for g in grids))


def spectral_field(
    shape: Sequence[int],
    lengths: Sequence[float],
    psd,
    seed: int = 0,
) -> np.ndarray:
    """White noise filtered by ``sqrt(psd(|k|))``, normalized to unit variance.

    Parameters
    ----------
    shape:
        Grid dimensions.
    lengths:
        Physical side lengths.
    psd:
        Callable ``psd(k_magnitude) -> spectral density`` (any positive
        scale; the output is re-normalized).
    seed:
        Deterministic RNG seed.
    """
    shape = tuple(int(n) for n in shape)
    rng = np.random.default_rng(seed)
    white = rng.standard_normal(shape)
    kmag = _wavenumber_grid(shape, lengths)
    amp = np.sqrt(np.maximum(psd(kmag), 0.0))
    field = np.real(np.fft.ifftn(amp * np.fft.fftn(white)))
    std = float(np.std(field))
    if std == 0:
        raise ValueError("degenerate spectrum: field has zero variance")
    return (field - float(np.mean(field))) / std


def von_karman_field(
    shape: Sequence[int],
    lengths: Sequence[float],
    correlation_length: float,
    hurst: float = 0.75,
    seed: int = 0,
) -> np.ndarray:
    """Unit-variance von Karman field (the standard slip-heterogeneity model).

    ``S(k) ~ (1 + (k L)^2)^{-(H + d/2)}`` with Hurst exponent ``H`` in
    (0, 1]; smaller ``H`` means rougher slip.
    """
    check_positive("correlation_length", correlation_length)
    if not 0.0 < hurst <= 1.0:
        raise ValueError("hurst must lie in (0, 1]")
    d = len(shape)
    expo = hurst + d / 2.0

    def psd(k: np.ndarray) -> np.ndarray:
        return (1.0 + (k * correlation_length) ** 2) ** (-expo)

    return spectral_field(shape, lengths, psd, seed=seed)


def gaussian_random_field(
    shape: Sequence[int],
    lengths: Sequence[float],
    correlation_length: float,
    seed: int = 0,
) -> np.ndarray:
    """Unit-variance field with Gaussian spectrum (very smooth)."""
    check_positive("correlation_length", correlation_length)

    def psd(k: np.ndarray) -> np.ndarray:
        return np.exp(-((k * correlation_length) ** 2) / 4.0)

    return spectral_field(shape, lengths, psd, seed=seed)


def interpolate_to_points(
    field: np.ndarray,
    axes: List[np.ndarray],
    points: np.ndarray,
) -> np.ndarray:
    """Multilinear interpolation of a grid field onto points.

    Parameters
    ----------
    field:
        Grid values, shape matching ``[len(a) for a in axes]``.
    axes:
        Per-axis strictly increasing coordinates.
    points:
        ``(npts, d)`` query coordinates (clamped to the grid hull).
    """
    field = np.asarray(field, dtype=np.float64)
    d = len(axes)
    pts = np.asarray(points, dtype=np.float64).reshape(-1, d)
    idx: List[np.ndarray] = []
    frac: List[np.ndarray] = []
    for ax in range(d):
        a = np.asarray(axes[ax], dtype=np.float64)
        x = np.clip(pts[:, ax], a[0], a[-1])
        i = np.clip(np.searchsorted(a, x, side="right") - 1, 0, a.size - 2)
        t = (x - a[i]) / (a[i + 1] - a[i])
        idx.append(i)
        frac.append(t)
    out = np.zeros(pts.shape[0])
    for corner in np.ndindex(*([2] * d)):
        w = np.ones(pts.shape[0])
        sel = []
        for ax, bit in enumerate(corner):
            w = w * (frac[ax] if bit else (1.0 - frac[ax]))
            sel.append(idx[ax] + bit)
        out += w * field[tuple(sel)]
    return out


def cosine_taper(
    coords: np.ndarray,
    lo: np.ndarray,
    hi: np.ndarray,
    width: np.ndarray,
) -> np.ndarray:
    """Smooth taper to zero at the box edges ``[lo, hi]`` over ``width``.

    Used to force slip (and hence seafloor uplift) to vanish at the edges
    of the locked zone, as physical ruptures do.
    """
    c = np.asarray(coords, dtype=np.float64)
    c2 = c.reshape(-1, 1) if c.ndim == 1 else c
    lo = np.atleast_1d(np.asarray(lo, dtype=np.float64))
    hi = np.atleast_1d(np.asarray(hi, dtype=np.float64))
    width = np.atleast_1d(np.asarray(width, dtype=np.float64))
    t = np.ones(c2.shape[0])
    for ax in range(c2.shape[1]):
        u = (c2[:, ax] - lo[ax]) / width[ax]
        v = (hi[ax] - c2[:, ax]) / width[ax]
        f = np.minimum(np.clip(u, 0.0, 1.0), np.clip(v, 0.0, 1.0))
        t = t * 0.5 * (1.0 - np.cos(np.pi * f))
    return t
