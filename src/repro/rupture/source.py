"""Source-time functions with exact cumulatives, and magnitude utilities.

A source-time function (STF) is the normalized slip-rate history of a point
on the fault: ``rate(t) >= 0``, ``integral rate dt = 1``, supported on
``[0, rise_time]``.  The slot-averaged parameter blocks need the *exact*
average slip rate over each observation slot, which is computed from the
closed-form cumulative ``S(t) = integral_0^t rate``; no quadrature error
enters the truth scenario.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.validation import check_positive

__all__ = [
    "BoxcarSTF",
    "TriangleSTF",
    "SmoothRampSTF",
    "seismic_moment",
    "moment_magnitude",
    "magnitude_to_moment",
]


@dataclass(frozen=True)
class BoxcarSTF:
    """Constant slip rate over the rise time (crude but classic)."""

    rise_time: float = 1.0

    def __post_init__(self) -> None:
        check_positive("rise_time", self.rise_time)

    def rate(self, t: np.ndarray) -> np.ndarray:
        """Normalized slip rate at times ``t``."""
        t = np.asarray(t, dtype=np.float64)
        return np.where((t >= 0) & (t < self.rise_time), 1.0 / self.rise_time, 0.0)

    def cumulative(self, t: np.ndarray) -> np.ndarray:
        """Fraction of final slip accumulated by time ``t``."""
        t = np.asarray(t, dtype=np.float64)
        return np.clip(t / self.rise_time, 0.0, 1.0)


@dataclass(frozen=True)
class TriangleSTF:
    """Symmetric triangular slip rate (a standard kinematic choice)."""

    rise_time: float = 1.0

    def __post_init__(self) -> None:
        check_positive("rise_time", self.rise_time)

    def rate(self, t: np.ndarray) -> np.ndarray:
        """Normalized slip rate at times ``t``."""
        t = np.asarray(t, dtype=np.float64)
        tau = self.rise_time
        up = (t >= 0) & (t < tau / 2)
        down = (t >= tau / 2) & (t < tau)
        r = np.zeros_like(t)
        r = np.where(up, 4.0 * t / tau**2, r)
        r = np.where(down, 4.0 * (tau - t) / tau**2, r)
        return r

    def cumulative(self, t: np.ndarray) -> np.ndarray:
        """Fraction of final slip accumulated by time ``t``."""
        t = np.asarray(t, dtype=np.float64)
        tau = self.rise_time
        x = np.clip(t / tau, 0.0, 1.0)
        return np.where(x < 0.5, 2.0 * x**2, 1.0 - 2.0 * (1.0 - x) ** 2)


@dataclass(frozen=True)
class SmoothRampSTF:
    """Infinitely smooth ramp ``S(t) = (1 - cos(pi t / tau)) / 2``.

    A regularized stand-in for the Yoffe function: smooth onset and arrest,
    which keeps the synthetic pressure records free of numerical ringing.
    """

    rise_time: float = 1.0

    def __post_init__(self) -> None:
        check_positive("rise_time", self.rise_time)

    def rate(self, t: np.ndarray) -> np.ndarray:
        """Normalized slip rate at times ``t``."""
        t = np.asarray(t, dtype=np.float64)
        tau = self.rise_time
        inside = (t >= 0) & (t < tau)
        return np.where(
            inside, 0.5 * np.pi / tau * np.sin(np.pi * np.clip(t, 0, tau) / tau), 0.0
        )

    def cumulative(self, t: np.ndarray) -> np.ndarray:
        """Fraction of final slip accumulated by time ``t``."""
        t = np.asarray(t, dtype=np.float64)
        x = np.clip(t / self.rise_time, 0.0, 1.0)
        return 0.5 * (1.0 - np.cos(np.pi * x))


def seismic_moment(
    slip: np.ndarray, cell_areas: np.ndarray, rigidity: float = 30e9
) -> float:
    """Seismic moment ``M0 = mu * sum(slip * area)`` (SI: N m)."""
    check_positive("rigidity", rigidity)
    s = np.asarray(slip, dtype=np.float64)
    a = np.asarray(cell_areas, dtype=np.float64)
    return float(rigidity * np.sum(s * a))


def moment_magnitude(m0: float) -> float:
    """Moment magnitude ``Mw = 2/3 (log10 M0 - 9.05)`` (Hanks & Kanamori)."""
    check_positive("m0", m0)
    return (2.0 / 3.0) * (np.log10(m0) - 9.05)


def magnitude_to_moment(mw: float) -> float:
    """Inverse of :func:`moment_magnitude`."""
    return float(10.0 ** (1.5 * mw + 9.05))
