"""Cross-module integration: the paper's verification chain end to end.

These tests tie the whole stack together: PDE kernels -> Toeplitz algebra
-> Bayesian solves -> forecasts, asserting the three-way MAP agreement
(real-time formula == CG baseline == dense solve), the statistical
calibration of the credible intervals over repeated noise realizations,
and the qualitative behaviors the paper's implications section claims.
"""

import numpy as np
import pytest

from repro.baselines.cg import fft_hessian_operator, solve_map_cg
from repro.inference.bayes import ToeplitzBayesianInversion
from repro.inference.noise import NoiseModel
from repro.twin.cascadia import CascadiaTwin
from repro.twin.config import TwinConfig


class TestThreeWayMAPAgreement:
    def test_realtime_cg_dense_agree(
        self, inversion2d, F2d, prior2d, observed2d, dense_reference
    ):
        _, noise, d_obs = observed2d
        # route 1: the paper's real-time data-space formula
        m_rt = inversion2d.infer(d_obs).reshape(-1)
        # route 2: SoA prior-preconditioned CG
        H = fft_hessian_operator(F2d, prior2d, noise)
        m_cg = solve_map_cg(H, d_obs, rtol=1e-11).m.reshape(-1)
        # route 3: dense normal equations
        ref = dense_reference
        m_dense = np.linalg.solve(
            ref["H"], ref["Fd"].T @ ref["Gn_inv"] @ d_obs.reshape(-1)
        )
        scale = np.abs(m_dense).max()
        np.testing.assert_allclose(m_rt, m_dense, atol=1e-8 * scale)
        np.testing.assert_allclose(m_cg, m_dense, atol=1e-6 * scale)


class TestStatisticalCalibration:
    def test_ci_coverage_over_noise_realizations(self):
        """The 95% CIs cover the true QoI ~95% of the time (Fig. 4 claim).

        Pools pointwise coverage over repeated noise draws on a fixed
        scenario; the posterior is exactly Gaussian-correct here, so
        coverage is binomial around the nominal level.
        """
        twin = CascadiaTwin(TwinConfig.demo_2d(n_slots=10, n_sensors=8))
        twin.setup()
        twin.phase1()
        scenario, d_clean, noise, _ = twin.simulate_event()
        twin.phase23(noise, method="direct")
        q_true = twin.Fq.matvec(scenario.m)
        rng = np.random.default_rng(123)
        coverages = []
        for _ in range(12):
            d_obs = noise.add_to(d_clean, rng)
            fc = twin.inversion.predict(d_obs)
            coverages.append(fc.coverage(q_true, 0.95))
        mean_cov = float(np.mean(coverages))
        assert 0.85 <= mean_cov <= 1.0

    def test_posterior_mean_unbiased(self):
        """Averaged over noise draws, the MAP converges to its clean-data
        value (linear-Gaussian unbiasedness)."""
        twin = CascadiaTwin(TwinConfig.demo_2d(n_slots=8, n_sensors=6))
        twin.setup()
        twin.phase1()
        scenario, d_clean, noise, _ = twin.simulate_event()
        inv = twin.phase23(noise, method="direct")
        m_clean = inv.infer(d_clean)
        rng = np.random.default_rng(7)
        acc = np.zeros_like(m_clean)
        n_rep = 24
        for _ in range(n_rep):
            acc += inv.infer(noise.add_to(d_clean, rng))
        m_avg = acc / n_rep
        err = np.linalg.norm(m_avg - m_clean) / np.linalg.norm(m_clean)
        assert err < 0.2


class TestInformationScaling:
    def test_lower_noise_improves_reconstruction(self):
        errs = []
        for rel in (0.1, 0.01):
            twin = CascadiaTwin(
                TwinConfig.demo_2d(noise_relative=rel, n_slots=8, n_sensors=8)
            )
            res = twin.run_end_to_end()
            errs.append(res.parameter_error())
        assert errs[1] < errs[0]

    def test_lower_noise_shrinks_posterior(self):
        stds = []
        for rel in (0.1, 0.01):
            twin = CascadiaTwin(
                TwinConfig.demo_2d(noise_relative=rel, n_slots=8, n_sensors=8)
            )
            res = twin.run_end_to_end()
            stds.append(float(np.mean(res.displacement_std)))
        assert stds[1] < stds[0]

    def test_posterior_variance_below_prior_everywhere(self, inversion2d):
        from repro.inference.posterior import posterior_pointwise_variance

        prior_var = inversion2d.prior.spatial.marginal_variance()
        for slot in (0, inversion2d.nt - 1):
            post = posterior_pointwise_variance(inversion2d, slot)
            assert np.all(post <= prior_var + 1e-12)


class TestEndToEndInvariances:
    def test_kernel_sensor_permutation_equivariance(self, prop2d, sensors2d):
        """Permuting sensors permutes kernel rows (no hidden coupling)."""
        from repro.ocean.observations import SensorArray

        perm = np.array([3, 0, 4, 1, 2])
        sens_p = SensorArray(prop2d.op, sensors2d.positions[perm])
        T = prop2d.p2o_kernel(sensors2d)
        Tp = prop2d.p2o_kernel(sens_p)
        np.testing.assert_allclose(Tp, T[:, perm, :], atol=1e-11 * np.abs(T).max())

    def test_scenario_scale_linearity(self):
        """Doubling the true uplift doubles data, MAP, and forecast."""
        twin = CascadiaTwin(TwinConfig.demo_2d(n_slots=8, n_sensors=6))
        twin.setup()
        twin.phase1()
        sc1, d1, noise, _ = twin.simulate_event(peak_uplift=0.3)
        inv = twin.phase23(noise)
        m1 = inv.infer(d1)
        m2 = inv.infer(2.0 * d1)
        np.testing.assert_allclose(m2, 2.0 * m1, atol=1e-9 * np.abs(m1).max())
