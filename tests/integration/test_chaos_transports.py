"""Chaos replay over the TCP transport: same script, different fault physics.

The chaos suite's shared-memory replays (``test_chaos_fabric.py``) pin
bitwise determinism under SIGKILL faults.  This suite replays a seeded
event script through a fabric whose shards live behind loopback TCP
servers: the orchestrator's fault plan lands as *connection drops*
(``inject_fault`` at the transport seam) instead of process kills, and
what must hold is the transport-agnostic contract — every event
identified, kills/respawns applied and accounted, degraded requests
attributed, fleet healthy at the end, and the KPI payload equal to a
same-script shared-memory replay's (identification is exact under either
transport, so the *decisions* must match even though the fault
mechanisms differ).
"""

from __future__ import annotations

import json

import pytest

from repro.serve import ScenarioBank, ServingFabric
from repro.serve.transport import TcpTransport, start_local_shards
from repro.twin import CascadiaTwin, TwinConfig
from repro.twin.orchestrator import (
    EventScript,
    OrchestratorConfig,
    TwinOrchestrator,
)
from repro.util.clock import ManualClock

N_EVENTS = 4
SEED = 404


@pytest.fixture(scope="module")
def chaos_setup():
    import repro.serve.sketch as sketch_mod

    old_block = sketch_mod.COL_BLOCK
    sketch_mod.COL_BLOCK = 8
    twin = CascadiaTwin(TwinConfig.demo_2d(n_slots=10, n_sensors=8, n_qoi=3))
    twin.setup()
    twin.phase1()
    c = twin.config
    bank = ScenarioBank(twin.operator.bottom_trace, c.n_slots, c.dt_obs, seed=13)
    bank.generate(16)
    _, noise, _ = bank.observation_batch(twin.F, noise_relative=0.01)
    inv = twin.phase23(noise)
    script = EventScript.generate(
        bank, nt=inv.nt, nd=inv.nd, n_events=N_EVENTS, seed=SEED,
        n_workers=2, n_kills=1, respawn_after=2,
    )
    yield inv, bank, script
    sketch_mod.COL_BLOCK = old_block


def _replay(inv, bank, script, transport=None):
    kwargs = dict(screen_min_scenarios=1, screen_top=4)
    if transport is None:
        kwargs["n_workers"] = 2
    else:
        kwargs["transport"] = transport
    with ServingFabric(inv, [bank], **kwargs) as fab:
        orch = TwinOrchestrator(
            fab, bank, script, OrchestratorConfig(), clock=ManualClock()
        )
        result = orch.run()
        counters = fab.report()
    return result, counters


def test_tcp_chaos_replay_matches_shared_memory(chaos_setup):
    inv, bank, script = chaos_setup
    servers = start_local_shards(2)
    try:
        tcp_res, tcp_counters = _replay(
            inv, bank, script,
            transport=TcpTransport([s.address for s in servers]),
        )
    finally:
        for s in servers:
            s.stop()
    shm_res, shm_counters = _replay(inv, bank, script)

    # The fault plan executed over TCP: the scripted drop + respawn landed.
    assert tcp_res.kills_applied == 1
    assert tcp_res.respawns_applied == 1
    assert tcp_res.summary["degraded_requests"] > 0
    assert tcp_counters["fabric_workers_alive"] == 2.0
    assert tcp_counters["fabric_workers_respawned"] == 1.0

    # Transport-agnostic outcome: every event identified on both paths,
    # and the KPI payloads agree (decisions are exact either way).
    assert tcp_res.all_identified
    assert shm_res.all_identified
    assert json.dumps(tcp_res.kpi_payload(), sort_keys=True) == json.dumps(
        shm_res.kpi_payload(), sort_keys=True
    )
