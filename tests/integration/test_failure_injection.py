"""Failure injection: the library fails loudly and recovers sensibly.

Operational twins must behave predictably under degraded inputs: dead
sensors, corrupted records, mis-shaped data, archives from mismatched
configurations.  These tests pin that behavior.
"""

import numpy as np
import pytest

from repro.inference.bayes import ToeplitzBayesianInversion
from repro.inference.noise import NoiseModel
from repro.twin import CascadiaTwin, StreamingInverter, TwinConfig


@pytest.fixture(scope="module")
def twin_setup():
    twin = CascadiaTwin(TwinConfig.demo_2d(n_slots=10, n_sensors=8))
    result = twin.run_end_to_end()
    return twin, result


class TestDegradedData:
    def test_dead_sensor_inflates_uncertainty_not_crash(self, twin_setup):
        """A sensor that records zeros: inference still runs; with that
        channel's noise inflated, uncertainty grows gracefully."""
        twin, result = twin_setup
        d_dead = result.d_obs.copy()
        d_dead[:, 3] = 0.0
        m = twin.inversion.infer(d_dead)
        assert np.all(np.isfinite(m))
        # refit with the dead channel de-weighted (big sigma)
        sigma = twin.inversion.noise.sigma.copy()
        sigma[:, 3] = 1e6 * sigma[:, 3]
        noise2 = NoiseModel(sigma, *sigma.shape)
        inv2 = ToeplitzBayesianInversion(twin.F, twin.prior, noise2, Fq=twin.Fq)
        inv2.assemble_data_space_hessian(method="direct")
        inv2.assemble_goal_oriented(method="direct")
        fc_full = twin.inversion.predict(result.d_obs)
        fc_deweighted = inv2.predict(d_dead)
        assert float(fc_deweighted.std().mean()) > float(fc_full.std().mean())

    def test_single_corrupt_spike_bounded_impact(self, twin_setup):
        """One corrupted sample perturbs the MAP boundedly and linearly."""
        twin, result = twin_setup
        m0 = twin.inversion.infer(result.d_obs)
        d_bad = result.d_obs.copy()
        spike = 5.0 * np.abs(result.d_obs).max()
        d_bad[4, 2] += spike
        m1 = twin.inversion.infer(d_bad)
        assert np.all(np.isfinite(m1))
        d_bad2 = result.d_obs.copy()
        d_bad2[4, 2] += 2 * spike
        m2 = twin.inversion.infer(d_bad2)
        # linear-Gaussian: the perturbation scales exactly linearly
        np.testing.assert_allclose(m2 - m0, 2.0 * (m1 - m0), atol=1e-9)

    def test_nan_data_never_yields_finite_answer(self, twin_setup):
        """NaNs fail loudly (LAPACK rejects them) or propagate — never a
        silently 'clean' finite result."""
        twin, result = twin_setup
        d_nan = result.d_obs.copy()
        d_nan[0, 0] = np.nan
        try:
            m = twin.inversion.infer(d_nan)
        except ValueError:
            return  # scipy.cho_solve refuses NaN input: loud failure
        assert np.isnan(m).any()

    def test_all_zero_data_gives_prior_mean(self, twin_setup):
        twin, _ = twin_setup
        m = twin.inversion.infer(np.zeros((twin.config.n_slots, twin.sensors.n)))
        np.testing.assert_allclose(m, 0.0, atol=1e-13)


class TestShapeAndConfigErrors:
    def test_wrong_data_shape_raises(self, twin_setup):
        twin, _ = twin_setup
        with pytest.raises(ValueError):
            twin.inversion.infer(np.zeros((3, 3)))

    def test_streaming_bounds_checked(self, twin_setup):
        twin, result = twin_setup
        s = StreamingInverter(twin.inversion)
        with pytest.raises(ValueError):
            s.infer_partial(result.d_obs, 0)

    def test_invert_before_phases_raises(self):
        twin = CascadiaTwin(TwinConfig.demo_2d(n_slots=4, n_sensors=3))
        twin.setup()
        twin.phase1()
        scenario, d_clean, noise, d_obs = twin.simulate_event()
        with pytest.raises(RuntimeError):
            twin.invert(scenario, d_clean, d_obs)

    def test_archive_from_other_config_still_self_consistent(
        self, twin_setup, tmp_path
    ):
        """An archive carries its own config; rebuilding uses the archived
        operators (not the caller's), so solves remain self-consistent."""
        from repro.twin.archive import (
            load_twin_archive,
            rebuild_inversion,
            save_twin_archive,
        )

        twin, result = twin_setup
        p = save_twin_archive(tmp_path / "a.npz", twin.inversion, twin.config)
        arch = load_twin_archive(p)
        inv = rebuild_inversion(arch)
        assert inv.nt == twin.config.n_slots
        with pytest.raises(ValueError):
            inv.infer(np.zeros((inv.nt + 1, inv.nd)))


class TestNumericalEdgeCases:
    def test_tiny_noise_still_spd(self, twin_setup):
        """Near-zero noise: K stays factorizable (prior term regularizes)."""
        twin, result = twin_setup
        noise = NoiseModel(1e-10, twin.config.n_slots, twin.sensors.n)
        inv = ToeplitzBayesianInversion(twin.F, twin.prior, noise)
        K = inv.assemble_data_space_hessian(method="direct")
        m = inv.infer(result.d_clean)
        assert np.all(np.isfinite(m))

    def test_huge_noise_returns_to_prior(self, twin_setup):
        """Infinite-noise limit: the posterior mean collapses to the prior."""
        twin, result = twin_setup
        noise = NoiseModel(1e8, twin.config.n_slots, twin.sensors.n)
        inv = ToeplitzBayesianInversion(twin.F, twin.prior, noise)
        inv.assemble_data_space_hessian(method="direct")
        m = inv.infer(result.d_obs)
        assert np.abs(m).max() < 1e-6

    def test_single_sensor_single_slot(self):
        """Degenerate smallest problem runs end to end."""
        twin = CascadiaTwin(
            TwinConfig.demo_2d(n_slots=2, n_sensors=1, n_qoi=1, nx=6)
        )
        res = twin.run_end_to_end()
        assert np.all(np.isfinite(res.m_map))
        assert res.forecast.mean.shape == (2, 1)
