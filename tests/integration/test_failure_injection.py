"""Failure injection: the library fails loudly and recovers sensibly.

Operational twins must behave predictably under degraded inputs: dead
sensors, corrupted records, mis-shaped data, archives from mismatched
configurations.  These tests pin that behavior.
"""

import numpy as np
import pytest

from repro.inference.bayes import ToeplitzBayesianInversion
from repro.inference.noise import NoiseModel
from repro.twin import CascadiaTwin, StreamingInverter, TwinConfig


@pytest.fixture(scope="module")
def twin_setup():
    twin = CascadiaTwin(TwinConfig.demo_2d(n_slots=10, n_sensors=8))
    result = twin.run_end_to_end()
    return twin, result


class TestDegradedData:
    def test_dead_sensor_inflates_uncertainty_not_crash(self, twin_setup):
        """A sensor that records zeros: inference still runs; with that
        channel's noise inflated, uncertainty grows gracefully."""
        twin, result = twin_setup
        d_dead = result.d_obs.copy()
        d_dead[:, 3] = 0.0
        m = twin.inversion.infer(d_dead)
        assert np.all(np.isfinite(m))
        # refit with the dead channel de-weighted (big sigma)
        sigma = twin.inversion.noise.sigma.copy()
        sigma[:, 3] = 1e6 * sigma[:, 3]
        noise2 = NoiseModel(sigma, *sigma.shape)
        inv2 = ToeplitzBayesianInversion(twin.F, twin.prior, noise2, Fq=twin.Fq)
        inv2.assemble_data_space_hessian(method="direct")
        inv2.assemble_goal_oriented(method="direct")
        fc_full = twin.inversion.predict(result.d_obs)
        fc_deweighted = inv2.predict(d_dead)
        assert float(fc_deweighted.std().mean()) > float(fc_full.std().mean())

    def test_single_corrupt_spike_bounded_impact(self, twin_setup):
        """One corrupted sample perturbs the MAP boundedly and linearly."""
        twin, result = twin_setup
        m0 = twin.inversion.infer(result.d_obs)
        d_bad = result.d_obs.copy()
        spike = 5.0 * np.abs(result.d_obs).max()
        d_bad[4, 2] += spike
        m1 = twin.inversion.infer(d_bad)
        assert np.all(np.isfinite(m1))
        d_bad2 = result.d_obs.copy()
        d_bad2[4, 2] += 2 * spike
        m2 = twin.inversion.infer(d_bad2)
        # linear-Gaussian: the perturbation scales exactly linearly
        np.testing.assert_allclose(m2 - m0, 2.0 * (m1 - m0), atol=1e-9)

    def test_nan_data_never_yields_finite_answer(self, twin_setup):
        """NaNs fail loudly (LAPACK rejects them) or propagate — never a
        silently 'clean' finite result."""
        twin, result = twin_setup
        d_nan = result.d_obs.copy()
        d_nan[0, 0] = np.nan
        try:
            m = twin.inversion.infer(d_nan)
        except ValueError:
            return  # scipy.cho_solve refuses NaN input: loud failure
        assert np.isnan(m).any()

    def test_all_zero_data_gives_prior_mean(self, twin_setup):
        twin, _ = twin_setup
        m = twin.inversion.infer(np.zeros((twin.config.n_slots, twin.sensors.n)))
        np.testing.assert_allclose(m, 0.0, atol=1e-13)


class TestShapeAndConfigErrors:
    def test_wrong_data_shape_raises(self, twin_setup):
        twin, _ = twin_setup
        with pytest.raises(ValueError):
            twin.inversion.infer(np.zeros((3, 3)))

    def test_streaming_bounds_checked(self, twin_setup):
        twin, result = twin_setup
        s = StreamingInverter(twin.inversion)
        with pytest.raises(ValueError):
            s.infer_partial(result.d_obs, 0)

    def test_invert_before_phases_raises(self):
        twin = CascadiaTwin(TwinConfig.demo_2d(n_slots=4, n_sensors=3))
        twin.setup()
        twin.phase1()
        scenario, d_clean, noise, d_obs = twin.simulate_event()
        with pytest.raises(RuntimeError):
            twin.invert(scenario, d_clean, d_obs)

    def test_archive_from_other_config_still_self_consistent(
        self, twin_setup, tmp_path
    ):
        """An archive carries its own config; rebuilding uses the archived
        operators (not the caller's), so solves remain self-consistent."""
        from repro.twin.archive import (
            load_twin_archive,
            rebuild_inversion,
            save_twin_archive,
        )

        twin, result = twin_setup
        p = save_twin_archive(tmp_path / "a.npz", twin.inversion, twin.config)
        arch = load_twin_archive(p)
        inv = rebuild_inversion(arch)
        assert inv.nt == twin.config.n_slots
        with pytest.raises(ValueError):
            inv.infer(np.zeros((inv.nt + 1, inv.nd)))


class TestNumericalEdgeCases:
    def test_tiny_noise_still_spd(self, twin_setup):
        """Near-zero noise: K stays factorizable (prior term regularizes)."""
        twin, result = twin_setup
        noise = NoiseModel(1e-10, twin.config.n_slots, twin.sensors.n)
        inv = ToeplitzBayesianInversion(twin.F, twin.prior, noise)
        K = inv.assemble_data_space_hessian(method="direct")
        m = inv.infer(result.d_clean)
        assert np.all(np.isfinite(m))

    def test_huge_noise_returns_to_prior(self, twin_setup):
        """Infinite-noise limit: the posterior mean collapses to the prior."""
        twin, result = twin_setup
        noise = NoiseModel(1e8, twin.config.n_slots, twin.sensors.n)
        inv = ToeplitzBayesianInversion(twin.F, twin.prior, noise)
        inv.assemble_data_space_hessian(method="direct")
        m = inv.infer(result.d_obs)
        assert np.abs(m).max() < 1e-6

    def test_single_sensor_single_slot(self):
        """Degenerate smallest problem runs end to end."""
        twin = CascadiaTwin(
            TwinConfig.demo_2d(n_slots=2, n_sensors=1, n_qoi=1, nx=6)
        )
        res = twin.run_end_to_end()
        assert np.all(np.isfinite(res.m_map))
        assert res.forecast.mean.shape == (2, 1)


# ----------------------------------------------------------------------
# Fabric-level chaos: kills at the worst possible moments
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def fabric_setup():
    """A sharded serving stack whose bank really spans both workers."""
    import repro.serve.sketch as sketch_mod
    from repro.serve import BatchedPhase4Server, ScenarioBank

    old_block = sketch_mod.COL_BLOCK
    sketch_mod.COL_BLOCK = 8
    twin = CascadiaTwin(TwinConfig.demo_2d(n_slots=10, n_sensors=8, n_qoi=3))
    twin.setup()
    twin.phase1()
    c = twin.config
    bank = ScenarioBank(twin.operator.bottom_trace, c.n_slots, c.dt_obs, seed=7)
    bank.generate(24)
    _, noise, d_obs = bank.observation_batch(twin.F, noise_relative=0.01)
    server = BatchedPhase4Server(twin.phase23(noise))
    yield server, bank, d_obs
    sketch_mod.COL_BLOCK = old_block


class TestFabricChaos:
    """Worker kills injected *between* and *inside* request stages.

    The graceful-degradation contract is stage-by-stage: whenever a
    worker dies, the parent recomputes its shards from the same shared
    buffers, so the results stay exact and ``FabricReport`` counters
    account for every degradation.  These tests kill at the worst
    moments — between the certified screen and the exact stage, and
    during a ``forecast_mixture`` scatter — which no steady-state kill
    test reaches.
    """

    @staticmethod
    def _kill_after_stage(fab, stage_name, wid=0):
        """Arm a one-shot kill firing right after ``stage_name`` completes."""
        orig = fab._run_stage
        armed = {"live": True}

        def hooked(state, name, ack_id, make_msg, local_fn):
            lost = orig(state, name, ack_id, make_msg, local_fn)
            if armed["live"] and name == stage_name:
                armed["live"] = False
                fab.kill_worker(wid)
            return lost

        fab._run_stage = hooked
        return armed

    def test_kill_between_screen_and_exact(self, fabric_setup):
        server, bank, d_obs = fabric_setup
        ref = server.identify_batch(bank, d_obs[:, :, :4], k_slots=8)
        with server.fabric(
            [bank], n_workers=2, screen_min_scenarios=1, screen_top=4,
            screen_stride=2,
        ) as fab:
            armed = self._kill_after_stage(fab, "screen", wid=0)
            got = fab.identify(d_obs[:, :, :4], k_slots=8)
            assert not armed["live"]  # the kill really fired mid-request
            rep = fab.last_report
            assert rep.screened and rep.workers_lost == 1 and rep.degraded
            # Certified ranking survives the mid-request loss, exactly.
            for j in range(4):
                assert [s for s, _ in got.top_k(4)[j]] == [
                    s for s, _ in ref.top_k(4)[j]
                ]
            # Counters: one dead worker, loss visible in the aggregate.
            counters = fab.report()
            assert counters["fabric_workers_alive"] == 1.0
            assert counters["fabric_last_workers_lost"] == 1.0

    def test_kill_during_mixture_scatter(self, fabric_setup):
        server, bank, d_obs = fabric_setup
        ref = server.forecast_mixture_batch(bank, d_obs[:, :, :3], k_slots=6)
        with server.fabric([bank], n_workers=2) as fab:
            # Exhaustive identification (screen=False) runs its stages
            # first; the hook kills a worker right after the *exact*
            # stage, so the loss lands inside the mixture scatter itself.
            armed = self._kill_after_stage(fab, "exact", wid=1)
            got = fab.forecast_mixture(d_obs[:, :, :3], k_slots=6)
            assert not armed["live"]
            # The parent recomputed the dead worker's partial moments:
            # mixtures match the flat path to machine precision.
            for fg, fr in zip(got, ref):
                assert np.allclose(fg.mean, fr.mean, rtol=0, atol=1e-10)
                assert np.allclose(
                    fg.covariance, fr.covariance, rtol=0, atol=1e-9
                )
            # The scatter-stage loss is accounted, not swallowed.
            assert fab.last_report.workers_lost >= 1
            assert fab.report()["fabric_workers_alive"] == 1.0

    def test_respawn_mid_event(self, fabric_setup):
        """An in-flight stream keeps identical results across kill+respawn."""
        server, bank, d_obs = fabric_setup
        stream = d_obs[:, :, 5]
        ref = server.identify_batch(bank, stream[:, :, None], k_slots=10)
        with server.fabric(
            [bank], n_workers=2, screen=False, max_batch=8
        ) as fab:
            evid = {}
            for k in range(2, 11, 2):  # one event, advancing horizons
                if k == 6:
                    assert fab.kill_worker(0)  # mid-event node loss
                    assert not fab.kill_worker(0)  # idempotent on dead slots
                if k == 8:
                    assert fab.respawn_workers() == 1  # mid-event recovery
                got = fab.identify(stream[:, :, None], k_slots=k)
                evid[k] = got.log_evidence[0].copy()
                expected_lost = 1 if k == 6 else 0
                assert fab.last_report.workers_lost == expected_lost
            # The full-horizon evidence equals the flat path bitwise,
            # straight through the kill and the respawn.
            assert np.array_equal(evid[10], ref.log_evidence[0])
            counters = fab.report()
            assert counters["fabric_workers_alive"] == 2.0
            assert counters["fabric_workers_respawned"] == 1.0
            with pytest.raises(IndexError):
                fab.kill_worker(99)
