"""The replication fault matrix: every cell must equal the zero-fault run.

PR 9's acceptance bar, executed literally: over a replicated fabric
(``replication_factor=2``, four channels, two shards), for every cell in

    {shared_memory, tcp} x {kill primary, kill replica, kill mid-screen,
                            kill mid-mixture scatter, gateway crash+recover}

the certified identification (top-k *and* raw evidence bytes), the
sharded mixture moments, and the orchestrator's same-seed KPI payload
must be **byte-identical** to that transport's zero-fault baseline — a
single failure may cost latency, never a bit of output.  Failovers must
be absorbed by replicas (``failovers > 0``) without ever touching the
in-parent recompute fallback (``workers_lost == 0``).

The kill mechanisms are the production ones: ``inject_fault`` at the
transport seam (SIGKILL over shared memory, abrupt connection drop over
TCP), either before a request (primary/replica cells) or *mid-stage* —
injected from inside ``transport.wait`` while the stage's dispatches are
pending, so the dispatcher sees the EOF and re-routes live.  The gateway
cell crashes an ingest gateway between journal-append and fabric-submit
and proves ``recover()`` replays exactly the lost entry.
"""

from __future__ import annotations

import asyncio
import json
import os

import numpy as np
import pytest

from repro.serve import IngestGateway, ScenarioBank, ServingFabric
from repro.serve import protocol
from repro.serve.transport import TcpTransport, start_local_shards
from repro.twin import CascadiaTwin, TwinConfig
from repro.twin.orchestrator import (
    EventScript,
    OrchestratorConfig,
    TwinOrchestrator,
)
from repro.util.clock import ManualClock

N_CHANNELS = 4
REPLICATION = 2
SEED = 909

FAULTS = [
    "kill_primary",
    "kill_replica",
    "kill_mid_screen",
    "kill_mid_mixture",
    "gateway_recover",
]


@pytest.fixture(scope="module")
def matrix_setup():
    import repro.serve.sketch as sketch_mod

    old_block = sketch_mod.COL_BLOCK
    sketch_mod.COL_BLOCK = 8
    twin = CascadiaTwin(TwinConfig.demo_2d(n_slots=10, n_sensors=8, n_qoi=3))
    twin.setup()
    twin.phase1()
    c = twin.config
    bank = ScenarioBank(twin.operator.bottom_trace, c.n_slots, c.dt_obs, seed=13)
    bank.generate(16)
    _, noise, d_obs = bank.observation_batch(twin.F, noise_relative=0.01)
    inv = twin.phase23(noise)
    script = EventScript.generate(
        bank, nt=inv.nt, nd=inv.nd, n_events=2, seed=SEED,
        n_workers=N_CHANNELS, n_kills=0,
    )
    yield inv, bank, d_obs, script
    sketch_mod.COL_BLOCK = old_block


def _open_fabric(inv, bank, kind, servers):
    kwargs = dict(
        replication_factor=REPLICATION,
        screen_min_scenarios=1,
        screen_top=4,
        max_batch=8,
    )
    if kind == "shared_memory":
        kwargs["n_workers"] = N_CHANNELS
    else:
        kwargs["transport"] = TcpTransport([s.address for s in servers])
    return ServingFabric(inv, [bank], **kwargs)


def _kill_mid_stage(fab, stage_name: str, wid: int) -> None:
    """Arm a one-shot SIGKILL/drop of channel ``wid`` *inside* the next
    ``stage_name`` stage: the fault fires from ``transport.wait`` while
    the stage's dispatches are pending, so the dispatcher observes the
    EOF mid-stage and must fail over live (not at send time)."""
    orig_stage = fab._run_stage
    T = fab._transport
    armed = {}

    def hooked(state, name, ack_id, make_msg, local_fn):
        if name == stage_name and "fired" not in armed:
            armed["fired"] = True
            orig_wait = T.wait

            def killing_wait(wids, timeout):
                T.wait = orig_wait
                T.inject_fault(wid)
                return orig_wait(wids, timeout)

            T.wait = killing_wait
        return orig_stage(state, name, ack_id, make_msg, local_fn)

    fab._run_stage = hooked


async def _gateway_crash_recover(fab, d_obs, journal_path):
    """One gateway life that loses a request mid-admission, then a second
    life that recovers it.  Returns ``{key: (status, evidence bytes)}``
    for every idempotency key, observed through the *second* life."""
    gw1 = IngestGateway(fab, flush_ms=2.0, journal_path=journal_path)
    for j in range(3):
        resp = await gw1.submit(d_obs[:, :, j], 6, idempotency_key=f"m{j}")
        assert resp.status == "ok"
    # Crash between journal-append and fabric-submit: the submit record
    # reaches the journal, the fabric never hears about it.
    gw1.journal.append(
        protocol.JournalSubmit(
            seq=gw1._seq, idem_key="m3", k_slots=6, op="identify",
            stream=np.ascontiguousarray(d_obs[:, :, 3], dtype=np.float64),
        )
    )
    gw1.close()

    before = fab.report()["fabric_requests"]
    gw2 = IngestGateway(fab, flush_ms=2.0, journal_path=journal_path)
    rep = await gw2.recover()
    assert rep.replayed == 1 and rep.skipped == 0
    assert rep.settled == 3 and rep.restored_keys == 3
    assert rep.responses[0].status == "ok"
    # Exactly-once: recovery resubmitted the one lost entry, nothing else.
    assert fab.report()["fabric_requests"] == before + 1

    out = {}
    for j in range(4):
        resp = await gw2.submit(
            d_obs[:, :, j], 6, idempotency_key=f"m{j}"
        )
        assert resp.deduplicated  # settled or replayed, never recomputed
        out[f"m{j}"] = resp.status
    # The replayed request's result is byte-comparable; settled-restored
    # entries dedup on status alone (results were already delivered).
    replayed_ev = rep.responses[0].result.log_evidence.tobytes()
    gw2.close()
    return out, replayed_ev


def _run_cell(inv, bank, d_obs, script, kind, fault, tmp_path=None):
    """One matrix cell: open a replicated fabric, inject the cell's
    fault, run the canonical workload, and fingerprint every output."""
    servers = start_local_shards(N_CHANNELS) if kind == "tcp" else []
    try:
        with _open_fabric(inv, bank, kind, servers) as fab:
            state = fab._resolve_bank(bank)
            assert len(state.shards) == N_CHANNELS // REPLICATION
            assert all(len(g) == REPLICATION for g in state.replicas)
            primary, replica = state.replicas[0][0], state.replicas[0][1]

            gateway_out = None
            if fault == "kill_primary":
                assert fab.inject_fault(primary)
            elif fault == "kill_replica":
                assert fab.inject_fault(replica)
            elif fault == "kill_mid_screen":
                _kill_mid_stage(fab, "screen", primary)
            elif fault == "kill_mid_mixture":
                _kill_mid_stage(fab, "mixture", primary)
            elif fault == "gateway_recover":
                journal = os.path.join(str(tmp_path), f"{kind}.journal")
                gateway_out = asyncio.run(
                    _gateway_crash_recover(fab, d_obs, journal)
                )

            certified = fab.identify(d_obs[:, :, :6], k_slots=6)
            topk = [
                [s for s, _ in row] for row in certified.top_k(4)
            ]
            req_workers_lost = fab.last_report.workers_lost
            mixture = fab.forecast_mixture(d_obs[:, :, 6:9], k_slots=6)
            req_workers_lost = max(
                req_workers_lost, fab.last_report.workers_lost
            )
            orch = TwinOrchestrator(
                fab, bank, script, OrchestratorConfig(), clock=ManualClock()
            )
            payload = json.dumps(
                orch.run().kpi_payload(), sort_keys=True
            )
            counters = fab.report()
        return {
            "topk": topk,
            "evidence": certified.log_evidence.tobytes(),
            "mixture": [
                (f.mean.tobytes(), f.covariance.tobytes()) for f in mixture
            ],
            "payload": payload,
            "failovers": counters["fabric_failovers"],
            "replication": counters["fabric_replication"],
            "gateway": gateway_out,
            "req_workers_lost": req_workers_lost,
            "last_workers_lost": counters["fabric_last_workers_lost"],
        }
    finally:
        for s in servers:
            s.stop()


@pytest.fixture(scope="module")
def baselines(matrix_setup):
    inv, bank, d_obs, script = matrix_setup
    return {
        kind: _run_cell(inv, bank, d_obs, script, kind, fault="none")
        for kind in ("shared_memory", "tcp")
    }


@pytest.mark.parametrize("kind", ["shared_memory", "tcp"])
@pytest.mark.parametrize("fault", FAULTS)
def test_matrix_cell_equals_zero_fault_run(
    matrix_setup, baselines, kind, fault, tmp_path
):
    inv, bank, d_obs, script = matrix_setup
    base = baselines[kind]
    cell = _run_cell(inv, bank, d_obs, script, kind, fault, tmp_path)

    # Byte-identical outputs: certified ranking, raw evidence, mixture
    # moments, and the same-seed orchestrator KPI payload.
    assert cell["topk"] == base["topk"]
    assert cell["evidence"] == base["evidence"]
    assert cell["mixture"] == base["mixture"]
    assert cell["payload"] == base["payload"]

    # Replication absorbed the fault: replicas took over, the in-parent
    # recompute fallback never ran.
    assert cell["replication"] == float(REPLICATION)
    assert cell["req_workers_lost"] == 0
    assert cell["last_workers_lost"] == 0.0
    if fault in ("kill_primary", "kill_mid_screen", "kill_mid_mixture"):
        assert cell["failovers"] >= 1.0
    elif fault == "kill_replica":
        # The primary kept serving; nothing needed to fail over.
        assert cell["failovers"] == 0.0
    else:  # gateway_recover: the fabric itself was never faulted
        assert cell["failovers"] == 0.0
        statuses, replayed_ev = cell["gateway"]
        assert statuses == {f"m{j}": "ok" for j in range(4)}
        # The replayed single-stream request reproduces the zero-fault
        # single-stream evidence bit-for-bit.
        with _open_fabric(inv, bank, "shared_memory", []) as ref_fab:
            ref = ref_fab.identify(d_obs[:, :, 3:4], k_slots=6)
        if kind == "shared_memory":
            assert replayed_ev == ref.log_evidence.tobytes()
        else:
            np.testing.assert_allclose(
                np.frombuffer(replayed_ev, dtype=np.float64),
                ref.log_evidence.ravel(), rtol=1e-12,
            )


def test_zero_fault_baselines_agree_across_transports(baselines):
    """Cross-transport: same certified decisions and KPI payloads (exact
    math either way), tying the matrix to the chaos suite's contract."""
    shm, tcp = baselines["shared_memory"], baselines["tcp"]
    assert shm["topk"] == tcp["topk"]
    assert shm["payload"] == tcp["payload"]
