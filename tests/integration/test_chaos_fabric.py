"""System-level chaos replay: the acceptance gate of the twin orchestrator.

A seeded chaos script with 8+ overlapping events — sensor dropout
windows, noise bursts, a worker hard-kill with a mid-event respawn — is
replayed through a live sharded fabric.  What must hold:

* every event's true scenario is identified (enters the certified top-k
  and stays), with KPIs reported per event;
* two same-seed replays serialize to **byte-identical** KPI payloads,
  kill and all (sharded results are bitwise equal to flat even when the
  parent recomputes a dead worker's shards);
* the fabric's counters account for the chaos: degraded requests are
  counted, the respawn is recorded, and the fleet ends healthy.
"""

from __future__ import annotations

import json

import pytest

from repro.serve import BatchedPhase4Server, ScenarioBank
from repro.serve.reporting import format_orchestrator_report
from repro.twin import CascadiaTwin, TwinConfig
from repro.twin.orchestrator import (
    EventScript,
    OrchestratorConfig,
    TwinOrchestrator,
)
from repro.util.clock import ManualClock

N_EVENTS = 8
SEED = 2025


@pytest.fixture(scope="module")
def chaos_setup():
    # Shrink the shard block so the 16-entry bank really spans both
    # workers — otherwise the single COL_BLOCK-aligned shard lives on
    # worker 0 and a scripted kill of worker 1 degrades nothing.
    import repro.serve.sketch as sketch_mod

    old_block = sketch_mod.COL_BLOCK
    sketch_mod.COL_BLOCK = 8
    twin = CascadiaTwin(TwinConfig.demo_2d(n_slots=10, n_sensors=8, n_qoi=3))
    twin.setup()
    twin.phase1()
    c = twin.config
    bank = ScenarioBank(twin.operator.bottom_trace, c.n_slots, c.dt_obs, seed=11)
    bank.generate(16)
    _, noise, _ = bank.observation_batch(twin.F, noise_relative=0.01)
    server = BatchedPhase4Server(twin.phase23(noise))
    script = EventScript.generate(
        bank, nt=server.nt, nd=server.nd, n_events=N_EVENTS, seed=SEED,
        n_workers=2, n_kills=1, respawn_after=2,
    )
    yield server, bank, script
    sketch_mod.COL_BLOCK = old_block


def _replay(server, bank, script):
    with server.fabric(
        [bank], n_workers=2, screen_min_scenarios=1, screen_top=4,
    ) as fab:
        orch = TwinOrchestrator(
            fab, bank, script, OrchestratorConfig(), clock=ManualClock()
        )
        result = orch.run()
        counters = fab.report()
    return result, counters


@pytest.fixture(scope="module")
def chaos_replays(chaos_setup):
    """Two same-seed replays (each on a fresh fabric)."""
    server, bank, script = chaos_setup
    return _replay(server, bank, script), _replay(server, bank, script)


class TestChaosReplay:
    def test_script_actually_exercises_chaos(self, chaos_setup):
        _, _, script = chaos_setup
        assert len(script.events) == N_EVENTS
        # Overlap: at least two events share some in-flight tick.
        starts = sorted(ev.start_tick for ev in script.events)
        assert starts[1] <= starts[0] + 1
        assert any(ev.dropout_sensors for ev in script.events)
        assert any(ev.burst_amplitude > 0 for ev in script.events)
        assert len(script.kills) >= 1 and len(script.respawns) >= 1

    def test_every_event_identified_with_kpis(self, chaos_replays):
        (res, _), _ = chaos_replays
        assert len(res.events) == N_EVENTS
        assert res.all_identified, format_orchestrator_report(res)
        for kpi in res.events:
            assert kpi.tti_slots is not None
            assert kpi.final_horizon == 10  # replayed to the full horizon
            assert kpi.coverage is not None and 0.0 <= kpi.coverage <= 1.0
        s = res.summary
        assert s["n_identified"] == N_EVENTS
        assert s["identification_rate"] == 1.0
        assert s["mean_tti_slots"] is not None

    def test_kill_and_respawn_mid_event(self, chaos_replays):
        (res, counters), _ = chaos_replays
        assert res.kills_applied == 1
        assert res.respawns_applied == 1
        # The kill degraded at least one event's requests, and the
        # degradation is attributed in the per-event KPIs.
        assert res.summary["degraded_requests"] > 0
        assert any(k.degraded_requests > 0 for k in res.events)
        # Fleet ends healthy: the respawn restored both workers.
        assert counters["fabric_workers_alive"] == 2.0
        assert counters["fabric_workers_respawned"] == 1.0
        assert counters["fabric_requests"] > 0
        assert counters["fabric_streams_served"] >= N_EVENTS

    def test_same_seed_payloads_byte_identical(self, chaos_replays):
        (a, _), (b, _) = chaos_replays
        blob_a = json.dumps(a.kpi_payload(), sort_keys=True)
        blob_b = json.dumps(b.kpi_payload(), sort_keys=True)
        assert blob_a == blob_b
        # And the payload is wall-clock-free by construction.
        assert "wall" not in blob_a

    def test_report_formats(self, chaos_replays):
        (res, _), _ = chaos_replays
        text = format_orchestrator_report(res)
        assert f"{N_EVENTS}/{N_EVENTS} events identified" in text
        assert "1 worker kill(s), 1 respawn(s)" in text
        for kpi in res.events:
            assert kpi.event_id in text
