"""Posterior machinery: exact variances and Matheron sampling statistics."""

import numpy as np
import pytest

from repro.inference.posterior import (
    PosteriorSampler,
    posterior_displacement_variance,
    posterior_pointwise_variance,
)


class TestPointwiseVariance:
    def test_matches_dense_diagonal(self, inversion2d, dense_reference):
        diag = np.diag(dense_reference["Gpost"]).reshape(
            inversion2d.nt, inversion2d.nm
        )
        for slot in (0, 4, inversion2d.nt - 1):
            var = posterior_pointwise_variance(inversion2d, slot, chunk=7)
            np.testing.assert_allclose(var, diag[slot], atol=1e-9 * diag.max())

    def test_never_exceeds_prior(self, inversion2d):
        prior_var = inversion2d.prior.spatial.marginal_variance()
        var = posterior_pointwise_variance(inversion2d, 2)
        assert np.all(var <= prior_var + 1e-12)

    def test_nonnegative(self, inversion2d):
        var = posterior_pointwise_variance(inversion2d, 0)
        assert np.all(var >= 0)

    def test_slot_validation(self, inversion2d):
        with pytest.raises(ValueError):
            posterior_pointwise_variance(inversion2d, inversion2d.nt)


class TestDisplacementVariance:
    def test_matches_dense(self, inversion2d, dense_reference):
        nt, nm = inversion2d.nt, inversion2d.nm
        S = np.kron(np.ones((1, nt)), np.eye(nm))
        dt = 0.2
        ref = dt**2 * np.diag(S @ dense_reference["Gpost"] @ S.T)
        got = posterior_displacement_variance(inversion2d, dt_obs=dt, chunk=5)
        np.testing.assert_allclose(got, ref, atol=1e-9 * ref.max())

    def test_scales_with_dt(self, inversion2d):
        v1 = posterior_displacement_variance(inversion2d, dt_obs=1.0)
        v2 = posterior_displacement_variance(inversion2d, dt_obs=2.0)
        np.testing.assert_allclose(v2, 4.0 * v1, rtol=1e-10)


class TestMatheronSampler:
    def test_sample_mean_converges_to_map(self, inversion2d, observed2d):
        _, _, d_obs = observed2d
        m_map = inversion2d.infer(d_obs)
        s = PosteriorSampler(inversion2d)
        draws = s.sample(d_obs, np.random.default_rng(0), k=3000)
        emp_mean = draws.mean(axis=2)
        # MC error ~ std/sqrt(k); use a generous multiple
        std = np.sqrt(
            posterior_pointwise_variance(inversion2d, 0, chunk=16).max()
        )
        assert np.abs(emp_mean - m_map).max() < 8 * std / np.sqrt(3000) + 1e-3

    def test_sample_covariance_converges(self, inversion2d, observed2d, dense_reference):
        _, _, d_obs = observed2d
        s = PosteriorSampler(inversion2d)
        draws = s.sample(d_obs, np.random.default_rng(1), k=4000)
        X = (draws - draws.mean(axis=2, keepdims=True)).reshape(
            inversion2d.nt * inversion2d.nm, -1
        )
        emp = X @ X.T / (X.shape[1] - 1)
        ref = dense_reference["Gpost"]
        assert np.abs(emp - ref).max() / np.abs(ref).max() < 0.15

    def test_displacement_samples(self, inversion2d, observed2d):
        _, _, d_obs = observed2d
        s = PosteriorSampler(inversion2d)
        disp = s.sample_displacement(d_obs, np.random.default_rng(2), k=500, dt_obs=0.2)
        assert disp.shape == (inversion2d.nm, 500)
        # sample variance consistent with the exact displacement variance
        exact = posterior_displacement_variance(inversion2d, dt_obs=0.2)
        emp = disp.var(axis=1)
        np.testing.assert_allclose(emp, exact, rtol=0.5, atol=1e-6)

    def test_requires_phase2(self, F2d, prior2d, observed2d):
        from repro.inference.bayes import ToeplitzBayesianInversion

        _, noise, _ = observed2d
        inv = ToeplitzBayesianInversion(F2d, prior2d, noise)
        with pytest.raises(RuntimeError):
            PosteriorSampler(inv)
