"""BiLaplacian priors: SPD structure, calibration, sampling, temporal kron."""

import numpy as np
import pytest

from repro.inference.prior import (
    BiLaplacianPrior,
    SpatioTemporalPrior,
    tensor_q1_matrices,
)


@pytest.fixture(scope="module")
def axes1d():
    rng = np.random.default_rng(0)
    x = np.sort(rng.uniform(0, 1, 15))
    x[0], x[-1] = 0.0, 1.0
    return [x]


@pytest.fixture(scope="module")
def prior1d(axes1d):
    return BiLaplacianPrior.from_correlation(axes1d, sigma=0.5, correlation_length=0.3)


class TestQ1Matrices:
    def test_stiffness_nullspace_is_constants(self, axes1d):
        K, M = tensor_q1_matrices(axes1d)
        np.testing.assert_allclose(K @ np.ones(K.shape[0]), 0.0, atol=1e-12)

    def test_mass_is_domain_measure(self, axes1d):
        _, M = tensor_q1_matrices(axes1d)
        assert float(M.sum()) == pytest.approx(1.0, rel=1e-12)

    def test_2d_tensor_assembly(self):
        ax = [np.linspace(0, 1, 5), np.linspace(0, 2, 4)]
        K, M = tensor_q1_matrices(ax)
        assert K.shape == (20, 20)
        assert float(M.sum()) == pytest.approx(2.0, rel=1e-12)
        np.testing.assert_allclose(K @ np.ones(20), 0.0, atol=1e-12)
        # stiffness exact on a linear-in-x field: K x = boundary fluxes only
        X = np.repeat(ax[0], 4)
        e = X @ (K @ X)
        assert e == pytest.approx(2.0, rel=1e-10)  # Dirichlet energy of x over [0,1]x[0,2]


class TestSpatialPrior:
    def test_spd(self, prior1d):
        G = prior1d.dense()
        np.testing.assert_allclose(G, G.T, atol=1e-12)
        assert np.linalg.eigvalsh(G).min() > 0

    def test_inverse_roundtrip(self, prior1d, rng):
        v = rng.standard_normal((prior1d.n, 3))
        np.testing.assert_allclose(
            prior1d.apply_inverse(prior1d.apply(v)), v, atol=1e-8
        )

    def test_sqrt_factorization(self, prior1d):
        L = prior1d.apply_sqrt(np.eye(prior1d.n))
        np.testing.assert_allclose(L @ L.T, prior1d.dense(), atol=1e-10)

    def test_calibrated_center_variance(self, axes1d):
        for sigma in (0.1, 1.0, 3.0):
            p = BiLaplacianPrior.from_correlation(axes1d, sigma, 0.25)
            assert p.marginal_variance_at(p.center_index()) == pytest.approx(
                sigma**2, rel=1e-9
            )

    def test_marginal_variance_matches_dense(self, prior1d):
        np.testing.assert_allclose(
            prior1d.marginal_variance(chunk=4), np.diag(prior1d.dense()), atol=1e-10
        )

    def test_correlation_length_controls_decay(self, axes1d):
        short = BiLaplacianPrior.from_correlation(axes1d, 1.0, 0.05)
        long = BiLaplacianPrior.from_correlation(axes1d, 1.0, 0.8)
        i = short.center_index()
        cs = short.dense()[i]
        cl = long.dense()[i]
        # normalized correlation at a distant point is larger for long rho
        j = 1
        assert cl[j] / cl[i] > cs[j] / cs[i]

    def test_robin_reduces_boundary_variance_inflation(self, axes1d):
        with_r = BiLaplacianPrior.from_correlation(axes1d, 1.0, 0.3, robin=True)
        kappa = np.sqrt(with_r.delta / with_r.gamma)
        no_r = BiLaplacianPrior(axes1d, with_r.gamma, with_r.delta, robin_beta=None)
        vr = with_r.marginal_variance()
        vn = no_r.marginal_variance()
        # boundary-to-center variance ratio must be closer to 1 with Robin
        r_with = vr[0] / vr[with_r.center_index()]
        r_without = vn[0] / vn[no_r.center_index()]
        assert abs(r_with - 1.0) < abs(r_without - 1.0)

    def test_sampling_statistics(self, axes1d):
        p = BiLaplacianPrior.from_correlation(axes1d, sigma=0.5, correlation_length=0.3)
        rng = np.random.default_rng(7)
        S = p.sample(rng, 6000)
        emp = np.var(S, axis=1)
        thy = p.marginal_variance()
        # 6000 samples: ~5% MC error on variances
        np.testing.assert_allclose(emp, thy, rtol=0.15)

    def test_2d_prior(self):
        ax = [np.linspace(0, 1, 8), np.linspace(0, 1, 7)]
        p = BiLaplacianPrior.from_correlation(ax, sigma=0.4, correlation_length=0.3)
        assert p.n == 56
        G = p.dense()
        assert np.linalg.eigvalsh(G).min() > 0
        assert p.marginal_variance_at(p.center_index()) == pytest.approx(0.16, rel=1e-8)

    def test_validation(self, axes1d):
        with pytest.raises(ValueError):
            BiLaplacianPrior(axes1d, gamma=-1.0, delta=1.0)
        with pytest.raises(ValueError):
            BiLaplacianPrior.from_correlation(axes1d, sigma=-0.5, correlation_length=0.3)


class TestSpatioTemporalPrior:
    def test_block_diagonal_dense(self, prior1d):
        st = SpatioTemporalPrior(prior1d, nt=3)
        G = st.dense()
        np.testing.assert_allclose(G, np.kron(np.eye(3), prior1d.dense()), atol=1e-10)

    def test_apply_matches_dense(self, prior1d, rng):
        st = SpatioTemporalPrior(prior1d, nt=4)
        m = rng.standard_normal((4, prior1d.n))
        np.testing.assert_allclose(
            st.apply(m).reshape(-1), st.dense() @ m.reshape(-1), atol=1e-10
        )

    def test_inverse_roundtrip(self, prior1d, rng):
        st = SpatioTemporalPrior(prior1d, nt=3, temporal_rho=0.6)
        m = rng.standard_normal((3, prior1d.n, 2))
        np.testing.assert_allclose(st.apply_inverse(st.apply(m)), m, atol=1e-7)

    def test_temporal_correlation_dense(self, prior1d, rng):
        st = SpatioTemporalPrior(prior1d, nt=3, temporal_rho=0.5)
        G = st.dense()
        i = np.arange(3)
        Ct = 0.5 ** np.abs(i[:, None] - i[None, :])
        np.testing.assert_allclose(G, np.kron(Ct, prior1d.dense()), atol=1e-10)

    def test_temporal_sqrt(self, prior1d, rng):
        st = SpatioTemporalPrior(prior1d, nt=3, temporal_rho=0.7)
        n = 3 * prior1d.n
        L = st.apply_sqrt(np.eye(n).reshape(3, prior1d.n, n))
        Lm = L.reshape(n, n)
        np.testing.assert_allclose(Lm @ Lm.T, st.dense(), atol=1e-9)

    def test_displacement_prior_variance(self, prior1d):
        st = SpatioTemporalPrior(prior1d, nt=5)
        np.testing.assert_allclose(
            st.displacement_prior_variance(), 5 * prior1d.marginal_variance(),
            atol=1e-12,
        )
        st_c = SpatioTemporalPrior(prior1d, nt=5, temporal_rho=0.5)
        assert np.all(
            st_c.displacement_prior_variance() > st.displacement_prior_variance()
        )

    def test_validation(self, prior1d):
        with pytest.raises(ValueError):
            SpatioTemporalPrior(prior1d, nt=0)
        with pytest.raises(ValueError):
            SpatioTemporalPrior(prior1d, nt=3, temporal_rho=1.5)
