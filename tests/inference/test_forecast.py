"""QoI forecasts: intervals, coverage, exceedance, joint sampling."""

import numpy as np
import pytest

from repro.inference.forecast import QoIForecast


@pytest.fixture()
def forecast(rng):
    nt, nq = 8, 3
    mean = rng.standard_normal((nt, nq))
    A = rng.standard_normal((nt * nq, nt * nq))
    cov = A @ A.T / (nt * nq) + 0.05 * np.eye(nt * nq)
    return QoIForecast(times=np.arange(1.0, nt + 1), mean=mean, covariance=cov)


class TestIntervals:
    def test_symmetric_about_mean(self, forecast):
        lo, hi = forecast.credible_interval(0.9)
        np.testing.assert_allclose(0.5 * (lo + hi), forecast.mean, atol=1e-12)

    def test_width_grows_with_level(self, forecast):
        lo68, hi68 = forecast.credible_interval(0.68)
        lo95, hi95 = forecast.credible_interval(0.95)
        assert np.all(hi95 - lo95 > hi68 - lo68)

    def test_95_width_is_392_sigma(self, forecast):
        lo, hi = forecast.credible_interval(0.95)
        np.testing.assert_allclose(hi - lo, 2 * 1.959964 * forecast.std(), rtol=1e-5)

    def test_invalid_level(self, forecast):
        with pytest.raises(ValueError):
            forecast.credible_interval(1.5)


class TestCoverage:
    def test_mean_always_covered(self, forecast):
        assert forecast.coverage(forecast.mean, 0.5) == 1.0

    def test_far_truth_not_covered(self, forecast):
        truth = forecast.mean + 100.0 * (forecast.std() + 1.0)
        assert forecast.coverage(truth, 0.95) == 0.0

    def test_gaussian_truth_calibrated(self, forecast, rng):
        # Draws from the forecast itself must be covered ~level of the time.
        draws = forecast.sample(rng, k=300)
        covs = [forecast.coverage(draws[:, :, i], 0.9) for i in range(300)]
        assert np.mean(covs) == pytest.approx(0.9, abs=0.05)

    def test_shape_mismatch(self, forecast):
        with pytest.raises(ValueError):
            forecast.coverage(np.zeros((2, 2)))


class TestExceedance:
    def test_monotone_in_threshold(self, forecast):
        p1 = forecast.exceedance_probability(0.0)
        p2 = forecast.exceedance_probability(1.0)
        assert np.all(p2 <= p1 + 1e-12)

    def test_half_at_mean(self, forecast):
        j = 0
        thr = float(forecast.mean[3, j])
        p = forecast.exceedance_probability(thr)
        assert p[3, j] == pytest.approx(0.5, abs=1e-9)

    def test_bounds(self, forecast):
        p = forecast.exceedance_probability(0.2)
        assert np.all((p >= 0) & (p <= 1))


class TestAccessors:
    def test_location_series(self, forecast):
        t, m, s = forecast.location_series(1)
        assert t.shape == (8,) and m.shape == (8,) and s.shape == (8,)
        np.testing.assert_array_equal(m, forecast.mean[:, 1])
        with pytest.raises(ValueError):
            forecast.location_series(99)

    def test_max_height_summary(self, forecast):
        np.testing.assert_allclose(
            forecast.max_height_summary(), forecast.mean.max(axis=0)
        )

    def test_sample_statistics(self, forecast, rng):
        draws = forecast.sample(rng, k=4000)
        emp_mean = draws.mean(axis=2)
        np.testing.assert_allclose(
            emp_mean, forecast.mean, atol=5 * forecast.std().max() / np.sqrt(4000)
        )
        emp_std = draws.std(axis=2)
        np.testing.assert_allclose(emp_std, forecast.std(), rtol=0.12)

    def test_covariance_shape_validation(self):
        with pytest.raises(ValueError):
            QoIForecast(np.arange(3.0), np.zeros((3, 2)), np.eye(5))
