"""Incremental streaming engine: per-slot updates vs from-scratch truncation.

The contract pinned here: at *every* horizon ``k``, the incrementally
advanced quantities — forecast mean ``q_k``, QoI covariance ``cov_k``, the
exported operator ``Q_k``, and the MAP through ``StreamingInverter`` —
match a from-scratch solve of the truncated ``k``-slot subproblem to near
machine precision, including ragged fleets with per-stream horizons.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.linalg as sla

from repro.inference.bayes import ToeplitzBayesianInversion
from repro.inference.streaming import IncrementalStreamingPosterior

ATOL = 1e-11


def _truncated_reference(inv, k):
    """From-scratch ``(Q_k, cov_k)`` of the k-slot subproblem (no nesting)."""
    n = k * inv.nd
    Kk = inv.K[:n, :n]
    Bk = inv.B[:n, :]
    KinvB = np.linalg.solve(Kk, Bk)
    cov = inv.Pq - Bk.T @ KinvB
    return KinvB.T, 0.5 * (cov + cov.T)


@pytest.fixture(scope="module")
def engine(inversion2d):
    return IncrementalStreamingPosterior(inversion2d)


class TestGeometryNesting:
    def test_incremental_matches_truncated_solve_every_horizon(
        self, inversion2d, engine, observed2d
    ):
        _, _, d_obs = observed2d
        fleet = engine.open_fleet(d_obs)
        for k in range(1, inversion2d.nt + 1):
            fleet.advance(k)
            fc = fleet.forecasts()[0]
            Q_ref, cov_ref = _truncated_reference(inversion2d, k)
            q_ref = Q_ref @ d_obs[:k].reshape(-1)
            scale = max(np.abs(q_ref).max(), 1.0)
            np.testing.assert_allclose(
                fc.mean.reshape(-1), q_ref, rtol=0, atol=ATOL * scale
            )
            np.testing.assert_allclose(fc.covariance, cov_ref, rtol=0, atol=ATOL)

    def test_qoi_map_export_every_horizon(self, inversion2d, engine):
        for k in (1, 3, inversion2d.nt):
            Q_ref, cov_ref = _truncated_reference(inversion2d, k)
            np.testing.assert_allclose(engine.qoi_map(k), Q_ref, rtol=0, atol=ATOL)
            np.testing.assert_allclose(
                engine.covariance_at(k), cov_ref, rtol=0, atol=ATOL
            )

    def test_geometry_rows_are_forward_substituted_blocks(self, inversion2d, engine):
        k = 4
        n = k * inversion2d.nd
        Y = engine.geometry_rows(k)
        L = inversion2d.cholesky_lower
        ref = sla.solve_triangular(L[:n, :n], inversion2d.B[:n], lower=True)
        np.testing.assert_allclose(Y, ref, rtol=0, atol=ATOL)

    def test_random_access_to_earlier_horizon(self, inversion2d, engine):
        # Engine is already past k=2 from other tests; random access must
        # still be exact (recomputed from the stored Y rows, no big solve).
        engine.advance_geometry(inversion2d.nt)
        _, cov_ref = _truncated_reference(inversion2d, 2)
        np.testing.assert_allclose(engine.covariance_at(2), cov_ref, rtol=0, atol=ATOL)

    def test_full_horizon_aliases_phase3(self, inversion2d, engine):
        cov = engine.covariance_at(inversion2d.nt)
        assert np.shares_memory(cov, inversion2d.qoi_covariance)
        assert not cov.flags["WRITEABLE"]
        assert engine.qoi_map(inversion2d.nt) is inversion2d.Q

    def test_shared_state_is_read_only(self, inversion2d, engine):
        rows = engine.geometry_rows(3)
        assert not rows.flags["WRITEABLE"]
        with pytest.raises(ValueError):
            rows[0, 0] = 1.0
        assert not engine.covariance_at(3).flags["WRITEABLE"]

    def test_covariance_shrinks_monotonically(self, inversion2d, engine):
        traces = [float(np.trace(engine.covariance_at(k)))
                  for k in range(1, inversion2d.nt + 1)]
        assert all(a >= b - 1e-12 for a, b in zip(traces, traces[1:]))


class TestRaggedFleet:
    def test_per_stream_horizons_match_single_streams(
        self, inversion2d, engine, observed2d
    ):
        _, _, d_obs = observed2d
        S = 6
        D = np.stack([d_obs * (0.5 + 0.2 * j) for j in range(S)], axis=-1)
        horizons = np.array([1, 3, 3, 7, inversion2d.nt, 5])
        fleet = engine.open_fleet(D)
        fleet.advance(horizons)
        fcs = fleet.forecasts()
        for j in range(S):
            k = int(horizons[j])
            solo = engine.open_fleet(D[:, :, j]).advance(k).forecasts()[0]
            np.testing.assert_allclose(fcs[j].mean, solo.mean, rtol=0, atol=ATOL)
            assert fcs[j].covariance is solo.covariance

    def test_staggered_arrival_equals_one_shot(self, inversion2d, engine, observed2d):
        _, _, d_obs = observed2d
        D = np.stack([d_obs, 2.0 * d_obs], axis=-1)
        staged = engine.open_fleet(D)
        staged.advance([2, 1])
        staged.advance([5, 1])
        staged.advance([6, 4])
        oneshot = engine.open_fleet(D).advance([6, 4])
        # Group shapes differ between the two schedules, so BLAS rounding
        # may differ by a few ulp; the states are the same to ~1e-15.
        np.testing.assert_allclose(staged._W, oneshot._W, rtol=0, atol=1e-13)
        for a, b in zip(staged.forecasts(), oneshot.forecasts()):
            np.testing.assert_allclose(a.mean, b.mean, rtol=0, atol=1e-13)

    def test_horizon_zero_gives_prior_predictive(self, inversion2d, engine, observed2d):
        _, _, d_obs = observed2d
        fleet = engine.open_fleet(d_obs)
        fc = fleet.forecasts()[0]
        np.testing.assert_array_equal(fc.mean, 0.0)
        np.testing.assert_array_equal(fc.covariance, inversion2d.Pq)

    def test_validation(self, inversion2d, engine, observed2d):
        _, _, d_obs = observed2d
        fleet = engine.open_fleet(d_obs)
        with pytest.raises(ValueError):
            fleet.advance(inversion2d.nt + 1)
        with pytest.raises(ValueError):
            fleet.advance([1, 2])  # wrong length for a single-stream fleet
        with pytest.raises(ValueError):
            engine.open_fleet(np.zeros((inversion2d.nt, inversion2d.nd + 1)))
        with pytest.raises(ValueError):
            engine.covariance_at(inversion2d.nt + 1)


class TestCovarianceCacheBound:
    """The per-horizon snapshot cache must not grow O(Nt) over a sweep."""

    def test_sweep_memory_is_bounded_by_the_configured_limit(self, inversion2d):
        limit = 3
        eng = IncrementalStreamingPosterior(inversion2d, cov_cache_limit=limit)
        nb = inversion2d.nt * inversion2d.nq
        for k in range(0, inversion2d.nt + 1):  # a full latency sweep
            eng.covariance_at(k)
        # Transient snapshots are capped; k=0 / k=Nt are pinned free views.
        assert eng.horizons_cached <= limit + 2
        assert eng.cov_cache_nbytes() <= limit * nb * nb * 8
        assert eng.state_nbytes() <= eng._Y.nbytes + eng._cov.nbytes + limit * nb * nb * 8

    def test_pinned_horizons_survive_eviction_as_free_views(self, inversion2d):
        eng = IncrementalStreamingPosterior(inversion2d, cov_cache_limit=1)
        c0 = eng.covariance_at(0)
        cnt = eng.covariance_at(inversion2d.nt)
        for k in range(1, inversion2d.nt):
            eng.covariance_at(k)
        assert eng.covariance_at(0) is c0
        assert eng.covariance_at(inversion2d.nt) is cnt
        assert np.shares_memory(c0, inversion2d.Pq)
        assert np.shares_memory(cnt, inversion2d.qoi_covariance)
        assert eng.cov_cache_nbytes() <= 1 * (inversion2d.nt * inversion2d.nq) ** 2 * 8

    def test_evicted_horizons_recompute_exactly(self, inversion2d):
        eng = IncrementalStreamingPosterior(inversion2d, cov_cache_limit=1)
        first = eng.covariance_at(2).copy()
        for k in range(3, inversion2d.nt):
            eng.covariance_at(k)  # evicts k=2
        assert 2 not in eng._cov_cache
        # Recomputed from the stored Y rows: same math, different rounding
        # path than the running downdate — exact against the reference.
        again = eng.covariance_at(2)
        np.testing.assert_allclose(again, first, rtol=0, atol=ATOL)
        _, cov_ref = _truncated_reference(inversion2d, 2)
        np.testing.assert_allclose(again, cov_ref, rtol=0, atol=ATOL)

    def test_lru_keeps_recently_used_snapshots(self, inversion2d):
        eng = IncrementalStreamingPosterior(inversion2d, cov_cache_limit=2)
        c2 = eng.covariance_at(2)
        eng.covariance_at(3)
        assert eng.covariance_at(2) is c2  # touch 2 -> 3 is now LRU
        eng.covariance_at(4)  # evicts 3, not 2
        assert eng.covariance_at(2) is c2
        assert 3 not in eng._cov_cache

    def test_limit_validation_and_default(self, inversion2d):
        with pytest.raises(ValueError):
            IncrementalStreamingPosterior(inversion2d, cov_cache_limit=-1)
        eng = IncrementalStreamingPosterior(inversion2d)
        assert eng.cov_cache_limit == IncrementalStreamingPosterior.DEFAULT_COV_CACHE_LIMIT


class TestLifecycle:
    def test_requires_completed_phases(self, F2d, Fq2d, prior2d, observed2d):
        _, noise, _ = observed2d
        bare = ToeplitzBayesianInversion(F2d, prior2d, noise, Fq=Fq2d)
        with pytest.raises(RuntimeError):
            IncrementalStreamingPosterior(bare)
        with pytest.raises(RuntimeError):
            bare.streaming_state()
        bare.assemble_data_space_hessian(method="direct")
        with pytest.raises(RuntimeError):  # Phase 3 still missing
            bare.streaming_state()

    def test_streaming_state_memoized_and_invalidated(
        self, F2d, Fq2d, prior2d, observed2d
    ):
        _, noise, _ = observed2d
        inv = ToeplitzBayesianInversion(F2d, prior2d, noise, Fq=Fq2d)
        inv.assemble_data_space_hessian(method="direct")
        inv.assemble_goal_oriented(method="direct")
        eng = inv.streaming_state()
        assert inv.streaming_state() is eng  # one shared engine per inversion
        inv.assemble_goal_oriented(method="direct")
        assert inv.streaming_state() is not eng  # re-assembly invalidates

    def test_cholesky_lower_cached_contiguous(self, inversion2d):
        L1 = inversion2d.cholesky_lower
        assert inversion2d.cholesky_lower is L1  # computed once
        assert L1.flags["C_CONTIGUOUS"] and not L1.flags["WRITEABLE"]
        np.testing.assert_allclose(
            L1 @ L1.T, inversion2d.K, atol=1e-9 * np.abs(inversion2d.K).max()
        )

    def test_state_accounting(self, inversion2d, engine):
        engine.advance_geometry(inversion2d.nt)
        assert engine.k_geom == inversion2d.nt
        assert engine.horizons_cached >= 1
        assert engine.state_nbytes() > 0

    def test_server_follows_reassembly(self, F2d, Fq2d, prior2d, observed2d):
        """The fleet server must not hold a stale engine across re-assembly."""
        from repro.serve import BatchedPhase4Server

        _, noise, d_obs = observed2d
        inv = ToeplitzBayesianInversion(F2d, prior2d, noise, Fq=Fq2d)
        inv.assemble_data_space_hessian(method="direct")
        inv.assemble_goal_oriented(method="direct")
        server = BatchedPhase4Server(inv)
        server.forecast_partial_batch(d_obs, 2)  # binds an engine
        old = inv.streaming_state_peek
        assert old is not None
        inv.assemble_goal_oriented(method="direct")  # invalidates
        server.forecast_partial_batch(d_obs, 2)
        assert server.streaming_engine() is not old
        assert server.streaming_engine() is inv.streaming_state()
