"""Noise models: scaling conventions, whitening, likelihood, sampling."""

import numpy as np
import pytest

from repro.inference.noise import NoiseModel


class TestConstruction:
    def test_scalar(self):
        n = NoiseModel(0.1, 4, 3)
        assert n.sigma.shape == (4, 3)
        np.testing.assert_allclose(n.sigma, 0.1)
        assert n.n == 12

    def test_per_sensor(self):
        n = NoiseModel(np.array([0.1, 0.2, 0.3]), 5, 3)
        np.testing.assert_allclose(n.sigma[:, 1], 0.2)

    def test_full_array(self, rng):
        s = np.abs(rng.standard_normal((4, 3))) + 0.1
        n = NoiseModel(s, 4, 3)
        np.testing.assert_allclose(n.sigma, s)

    def test_validation(self):
        with pytest.raises(ValueError):
            NoiseModel(-0.1, 3, 2)
        with pytest.raises(ValueError):
            NoiseModel(np.array([0.1, 0.2]), 3, 3)
        with pytest.raises(ValueError):
            NoiseModel(np.zeros((3, 3)), 3, 3)


class TestRelative:
    def test_per_sensor_rms_scaling(self, rng):
        d = np.zeros((100, 2))
        d[:, 0] = 10.0 * np.sin(np.linspace(0, 9, 100))
        d[:, 1] = 0.5 * np.sin(np.linspace(0, 9, 100))
        n = NoiseModel.relative(d, 0.01)
        rms0 = np.sqrt(np.mean(d[:, 0] ** 2))
        assert n.sigma[0, 0] == pytest.approx(0.01 * rms0, rel=1e-12)
        # weak sensor gets the floor (global RMS based)
        assert n.sigma[0, 1] >= 0.01 * 0.5 * rms0 / 2

    def test_floor_for_silent_sensor(self):
        d = np.zeros((10, 2))
        d[:, 0] = 1.0
        n = NoiseModel.relative(d, 0.01)
        assert np.all(n.sigma[:, 1] > 0)

    def test_snr(self):
        d = np.ones((50, 1))
        n = NoiseModel.relative(d, 0.01)
        assert n.snr_db(d) == pytest.approx(40.0, abs=0.1)


class TestOperations:
    def test_whiten_unit_variance(self, rng):
        n = NoiseModel(np.array([0.5, 2.0]), 2000, 2)
        eps = n.sample(rng)
        w = n.whiten(eps)
        assert np.std(w) == pytest.approx(1.0, abs=0.05)

    def test_apply_inverse(self, rng):
        n = NoiseModel(0.2, 3, 2)
        r = rng.standard_normal((3, 2))
        np.testing.assert_allclose(n.apply_inverse(r), r / 0.04, atol=1e-13)

    def test_flat_variance_time_major(self):
        n = NoiseModel(np.array([0.1, 0.2]), 2, 2)
        fv = n.flat_variance()
        np.testing.assert_allclose(fv, [0.01, 0.04, 0.01, 0.04])

    def test_log_likelihood_maximized_at_truth(self, rng):
        n = NoiseModel(0.1, 5, 2)
        d = rng.standard_normal((5, 2))
        assert n.log_likelihood(d, d) == 0.0
        assert n.log_likelihood(d, d + 0.5) < 0.0

    def test_sample_batched(self, rng):
        n = NoiseModel(0.3, 4, 2)
        s = n.sample(rng, k=5)
        assert s.shape == (4, 2, 5)

    def test_add_to(self, rng):
        n = NoiseModel(1e-12, 3, 2)
        d = rng.standard_normal((3, 2))
        np.testing.assert_allclose(n.add_to(d, rng), d, atol=1e-10)
