"""Phases 2-4 against dense linear algebra: K, SMW, MAP, goal-oriented."""

import numpy as np
import pytest

from repro.inference.bayes import ToeplitzBayesianInversion
from repro.inference.noise import NoiseModel
from repro.inference.prior import BiLaplacianPrior, SpatioTemporalPrior
from repro.inference.toeplitz import BlockToeplitzOperator


class TestDataSpaceHessian:
    def test_K_fft_matches_dense_formula(self, inversion2d, dense_reference, observed2d):
        _, noise, _ = observed2d
        K_dense = (
            dense_reference["Fd"]
            @ dense_reference["Gfull"]
            @ dense_reference["Fd"].T
            + np.diag(noise.flat_variance())
        )
        np.testing.assert_allclose(inversion2d.K, K_dense, atol=1e-9 * np.abs(K_dense).max())

    def test_K_fft_equals_direct(self, F2d, prior2d, observed2d):
        _, noise, _ = observed2d
        inv = ToeplitzBayesianInversion(F2d, prior2d, noise)
        K_fft = inv.assemble_data_space_hessian(method="fft", chunk=13)
        K_dir = ToeplitzBayesianInversion(
            F2d, prior2d, noise
        ).assemble_data_space_hessian(method="direct")
        np.testing.assert_allclose(K_fft, K_dir, atol=1e-9 * np.abs(K_dir).max())

    def test_K_symmetric_pd(self, inversion2d):
        K = inversion2d.K
        np.testing.assert_allclose(K, K.T, atol=0)
        assert np.linalg.eigvalsh(K).min() > 0

    def test_solve_K(self, inversion2d, rng):
        b = rng.standard_normal(inversion2d.K.shape[0])
        x = inversion2d.solve_K(b)
        np.testing.assert_allclose(inversion2d.K @ x, b, atol=1e-8 * np.abs(b).max())

    def test_cholesky_lower_factorizes(self, inversion2d):
        L = inversion2d.cholesky_lower
        np.testing.assert_allclose(L @ L.T, inversion2d.K, atol=1e-9 * np.abs(inversion2d.K).max())
        assert np.allclose(L, np.tril(L))

    def test_hessian_data_action_matches_K(self, inversion2d, rng):
        d = rng.standard_normal((inversion2d.nt, inversion2d.nd))
        lhs = inversion2d.hessian_data_action(d).reshape(-1)
        rhs = inversion2d.K @ d.reshape(-1)
        np.testing.assert_allclose(lhs, rhs, atol=1e-9 * np.abs(rhs).max())

    def test_direct_rejects_temporal_prior(self, F2d, observed2d):
        _, noise, _ = observed2d
        sp = BiLaplacianPrior.from_correlation(
            [np.linspace(0, 1, F2d.n_in)], 0.3, 0.3
        )
        prior_t = SpatioTemporalPrior(sp, F2d.nt, temporal_rho=0.5)
        inv = ToeplitzBayesianInversion(F2d, prior_t, noise)
        with pytest.raises(ValueError):
            inv._gram_direct(F2d, F2d)
        # ... but the fft route handles it
        K = inv.assemble_data_space_hessian(method="fft", chunk=29)
        assert np.linalg.eigvalsh(K).min() > 0


class TestMAP:
    def test_map_matches_dense_solve(self, inversion2d, dense_reference, observed2d):
        _, _, d_obs = observed2d
        m_map = inversion2d.infer(d_obs)
        ref = dense_reference
        b = ref["Fd"].T @ ref["Gn_inv"] @ d_obs.reshape(-1)
        m_dense = np.linalg.solve(ref["H"], b)
        np.testing.assert_allclose(
            m_map.reshape(-1), m_dense, atol=1e-8 * np.abs(m_dense).max()
        )

    def test_map_zero_data(self, inversion2d):
        m = inversion2d.infer(np.zeros((inversion2d.nt, inversion2d.nd)))
        np.testing.assert_allclose(m, 0.0, atol=1e-14)

    def test_map_optimality(self, inversion2d, observed2d, rng):
        # The MAP minimizes the regularized misfit: perturbations increase it.
        _, noise, d_obs = observed2d
        inv = inversion2d
        m_map = inv.infer(d_obs)

        def objective(m):
            r = inv.F.matvec(m) - d_obs
            misfit = 0.5 * float(np.sum(r**2 / noise.variance))
            reg = 0.5 * float(np.sum(m * inv.prior.apply_inverse(m)))
            return misfit + reg

        j0 = objective(m_map)
        for _ in range(3):
            dm = rng.standard_normal(m_map.shape)
            dm *= 1e-3 * np.linalg.norm(m_map) / np.linalg.norm(dm)
            assert objective(m_map + dm) > j0

    def test_shape_validation(self, inversion2d):
        with pytest.raises(ValueError):
            inversion2d.infer(np.zeros((2, 2)))


class TestGoalOriented:
    def test_qoi_covariance_matches_dense(self, inversion2d, Fq2d, dense_reference):
        cov = inversion2d.qoi_covariance
        Fqd = Fq2d.dense()
        ref = Fqd @ dense_reference["Gpost"] @ Fqd.T
        np.testing.assert_allclose(cov, ref, atol=1e-8 * np.abs(ref).max())

    def test_qoi_covariance_psd(self, inversion2d):
        ev = np.linalg.eigvalsh(inversion2d.qoi_covariance)
        assert ev.min() > -1e-10 * max(ev.max(), 1e-300)

    def test_posterior_shrinks_prior_qoi_variance(self, inversion2d):
        # Var_post(q) <= Var_prior(q) pointwise on the diagonal.
        dpost = np.diag(inversion2d.qoi_covariance)
        dprior = np.diag(inversion2d.Pq)
        assert np.all(dpost <= dprior + 1e-12)

    def test_q_map_consistency(self, inversion2d, Fq2d, observed2d):
        # q_map == Fq m_map (two routes to the same prediction)
        _, _, d_obs = observed2d
        m_map = inversion2d.infer(d_obs)
        fc = inversion2d.predict(d_obs)
        np.testing.assert_allclose(
            fc.mean, Fq2d.matvec(m_map), atol=1e-9 * np.abs(fc.mean).max()
        )

    def test_gram_fft_equals_direct_for_B(self, inversion2d, F2d, Fq2d):
        B_fft = inversion2d._gram_fft(F2d, Fq2d, chunk=7)
        B_dir = inversion2d._gram_direct(F2d, Fq2d)
        np.testing.assert_allclose(B_fft, B_dir, atol=1e-9 * np.abs(B_dir).max())

    def test_requires_phases_in_order(self, F2d, Fq2d, prior2d, observed2d):
        _, noise, d_obs = observed2d
        inv = ToeplitzBayesianInversion(F2d, prior2d, noise, Fq=Fq2d)
        with pytest.raises(RuntimeError):
            inv.infer(d_obs)
        with pytest.raises(RuntimeError):
            inv.assemble_goal_oriented()
        inv.assemble_data_space_hessian(method="direct")
        with pytest.raises(RuntimeError):
            inv.predict(d_obs)

    def test_no_fq_rejected(self, F2d, prior2d, observed2d):
        _, noise, _ = observed2d
        inv = ToeplitzBayesianInversion(F2d, prior2d, noise)
        inv.assemble_data_space_hessian(method="direct")
        with pytest.raises(RuntimeError):
            inv.assemble_goal_oriented()


class TestPosteriorAction:
    def test_smw_identity(self, inversion2d, dense_reference, rng):
        # Gamma_post v computed via SMW equals the dense inverse-Hessian.
        v = rng.standard_normal((inversion2d.nt, inversion2d.nm))
        got = inversion2d.posterior_covariance_action(v).reshape(-1)
        ref = dense_reference["Gpost"] @ v.reshape(-1)
        np.testing.assert_allclose(got, ref, atol=1e-8 * np.abs(ref).max())

    def test_report_keys(self, inversion2d):
        rep = inversion2d.report()
        assert rep["K_bytes"] > 0 and rep["p2o_kernel_bytes"] > 0


class TestValidation:
    def test_dimension_mismatches(self, F2d, prior2d, observed2d):
        _, noise, _ = observed2d
        sp = BiLaplacianPrior.from_correlation([np.linspace(0, 1, 5)], 0.3, 0.3)
        bad_prior = SpatioTemporalPrior(sp, F2d.nt)
        with pytest.raises(ValueError):
            ToeplitzBayesianInversion(F2d, bad_prior, noise)
        bad_noise = NoiseModel(0.1, F2d.nt + 1, F2d.n_out)
        with pytest.raises(ValueError):
            ToeplitzBayesianInversion(F2d, prior2d, bad_noise)
