"""FFTMatvec: exactness vs dense, layouts, transpose, batching, shapes."""

import numpy as np
import pytest

from repro.inference.toeplitz import BlockToeplitzOperator


@pytest.fixture(scope="module")
def kernel():
    rng = np.random.default_rng(3)
    return rng.standard_normal((7, 4, 6)) * (0.7 ** np.arange(7))[:, None, None]


@pytest.fixture(scope="module")
def op(kernel):
    return BlockToeplitzOperator(kernel)


class TestExactness:
    def test_matvec_matches_dense(self, op, rng):
        m = rng.standard_normal((op.nt, op.n_in))
        np.testing.assert_allclose(
            op.matvec(m).reshape(-1), op.dense() @ m.reshape(-1), atol=1e-12
        )

    def test_rmatvec_matches_dense_transpose(self, op, rng):
        d = rng.standard_normal((op.nt, op.n_out))
        np.testing.assert_allclose(
            op.rmatvec(d).reshape(-1), op.dense().T @ d.reshape(-1), atol=1e-12
        )

    def test_adjoint_identity(self, op, rng):
        m = rng.standard_normal((op.nt, op.n_in))
        d = rng.standard_normal((op.nt, op.n_out))
        lhs = float(np.sum(op.matvec(m) * d))
        rhs = float(np.sum(m * op.rmatvec(d)))
        assert lhs == pytest.approx(rhs, rel=1e-12)

    def test_causality(self, op, rng):
        # input supported at slot j produces no output before slot j
        m = np.zeros((op.nt, op.n_in))
        m[3] = rng.standard_normal(op.n_in)
        d = op.matvec(m)
        np.testing.assert_allclose(d[:3], 0.0, atol=1e-13)

    def test_dense_block_structure(self, op, kernel):
        D = op.dense()
        nt, no, ni = kernel.shape
        # block (2, 0) must equal kernel[2]
        np.testing.assert_allclose(D[2 * no : 3 * no, 0:ni], kernel[2], atol=0)
        # strictly upper blocks vanish
        np.testing.assert_allclose(D[0:no, ni : 2 * ni], 0.0, atol=0)


class TestLayouts:
    @pytest.mark.parametrize("layout", ["space-major", "time-major"])
    def test_layouts_identical(self, kernel, layout, rng):
        op = BlockToeplitzOperator(kernel, layout=layout)
        m = rng.standard_normal((op.nt, op.n_in, 3))
        d = rng.standard_normal((op.nt, op.n_out, 3))
        ref = BlockToeplitzOperator(kernel, layout="space-major")
        np.testing.assert_allclose(op.matvec(m), ref.matvec(m), atol=1e-13)
        np.testing.assert_allclose(op.rmatvec(d), ref.rmatvec(d), atol=1e-13)

    def test_invalid_layout(self, kernel):
        with pytest.raises(ValueError):
            BlockToeplitzOperator(kernel, layout="column-major")


class TestBatching:
    def test_batched_matches_loop(self, op, rng):
        M = rng.standard_normal((op.nt, op.n_in, 4))
        batched = op.matvec(M)
        for k in range(4):
            np.testing.assert_allclose(batched[:, :, k], op.matvec(M[:, :, k]), atol=1e-13)

    def test_shapes(self, op, rng):
        m = rng.standard_normal((op.nt, op.n_in))
        assert op.matvec(m).shape == (op.nt, op.n_out)
        M = rng.standard_normal((op.nt, op.n_in, 2))
        assert op.matvec(M).shape == (op.nt, op.n_out, 2)
        assert op.shape == (op.nt * op.n_out, op.nt * op.n_in)

    def test_wrong_shapes_raise(self, op):
        with pytest.raises(ValueError):
            op.matvec(np.zeros((op.nt + 1, op.n_in)))
        with pytest.raises(ValueError):
            op.rmatvec(np.zeros((op.nt, op.n_out + 1)))
        with pytest.raises(ValueError):
            BlockToeplitzOperator(np.zeros((3, 4)))


class TestTransposeOperator:
    def test_transpose_view(self, op, rng):
        t = op.transpose_operator()
        d = rng.standard_normal((op.nt, op.n_out))
        np.testing.assert_allclose(t.matvec(d), op.rmatvec(d), atol=0)
        np.testing.assert_allclose(t.dense(), op.dense().T, atol=0)
        assert t.transpose_operator() is op
        assert t.n_out == op.n_in and t.n_in == op.n_out

    def test_transpose_kernel_nbytes_delegates(self, op):
        # Regression: the view stores no spectra of its own, so the
        # inherited property used to crash with AttributeError (_khat).
        t = op.transpose_operator()
        assert t.kernel_nbytes == op.kernel_nbytes
        assert t.flops_per_matvec() == op.flops_per_matvec()


class TestScalingAndMemory:
    def test_kernel_memory_linear_in_nt(self):
        k1 = BlockToeplitzOperator(np.zeros((8, 3, 5)))
        k2 = BlockToeplitzOperator(np.zeros((16, 3, 5)))
        assert k2.kernel_nbytes < 2.5 * k1.kernel_nbytes

    def test_flops_estimate_positive(self, op):
        assert op.flops_per_matvec() > 0
        assert op.flops_per_matvec(k=4) > op.flops_per_matvec(k=1)

    def test_single_slot_degenerate(self, rng):
        op = BlockToeplitzOperator(rng.standard_normal((1, 2, 3)))
        m = rng.standard_normal((1, 3))
        np.testing.assert_allclose(op.matvec(m)[0], op.kernel[0] @ m[0], atol=1e-13)

    def test_identity_kernel(self):
        nt, n = 5, 3
        kern = np.zeros((nt, n, n))
        kern[0] = np.eye(n)
        op = BlockToeplitzOperator(kern)
        m = np.random.default_rng(0).standard_normal((nt, n))
        np.testing.assert_allclose(op.matvec(m), m, atol=1e-13)
