"""Property-based tests on rupture kinematics invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rupture.kinematic import KinematicRupture
from repro.rupture.source import BoxcarSTF, SmoothRampSTF, TriangleSTF

STF_CLASSES = [BoxcarSTF, TriangleSTF, SmoothRampSTF]


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=30),
    vr=st.floats(min_value=0.1, max_value=10.0),
    rise=st.floats(min_value=0.05, max_value=3.0),
    onset=st.floats(min_value=0.0, max_value=1.0),
    stf_i=st.integers(0, 2),
    seed=st.integers(0, 99),
)
def test_causality_property(n, vr, rise, onset, stf_i, seed):
    """No point slips before the rupture front reaches it."""
    rng = np.random.default_rng(seed)
    coords = np.sort(rng.uniform(0, 5, n))
    r = KinematicRupture(
        coords=coords,
        slip=np.abs(rng.standard_normal(n)),
        hypocenter=np.array([float(coords[n // 2])]),
        rupture_velocity=vr,
        stf=STF_CLASSES[stf_i](rise_time=rise),
        onset=onset,
    )
    ta = r.arrival_times()
    t = np.linspace(0, float(ta.max() + rise), 40)
    rate = r.slip_rate(t)
    for i, ti in enumerate(t):
        # Strictly before arrival (the STF support is [0, rise)).
        assert np.all(rate[i, ti < ta] == 0.0)


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=20),
    vr=st.floats(min_value=0.5, max_value=5.0),
    rise=st.floats(min_value=0.05, max_value=1.0),
    dt=st.floats(min_value=0.1, max_value=1.0),
    stf_i=st.integers(0, 2),
    seed=st.integers(0, 99),
)
def test_total_slip_conservation_property(n, vr, rise, dt, stf_i, seed):
    """dt * sum_j m_j == slip once the window covers the rupture."""
    rng = np.random.default_rng(seed)
    coords = np.sort(rng.uniform(0, 3, n))
    slip = np.abs(rng.standard_normal(n)) + 0.1
    r = KinematicRupture(
        coords=coords,
        slip=slip,
        hypocenter=np.array([0.0]),
        rupture_velocity=vr,
        stf=STF_CLASSES[stf_i](rise_time=rise),
    )
    nt = int(np.ceil(r.duration() / dt)) + 1
    m = r.slot_averages(nt=nt, dt_obs=dt)
    np.testing.assert_allclose(dt * m.sum(axis=0), slip, atol=1e-10)
    assert np.all(m >= -1e-12)


@settings(max_examples=30, deadline=None)
@given(
    rise=st.floats(min_value=0.01, max_value=10.0),
    stf_i=st.integers(0, 2),
    t=st.floats(min_value=-5.0, max_value=15.0),
)
def test_stf_cumulative_bounds_property(rise, stf_i, t):
    """Cumulative STF lies in [0, 1] and respects causal support."""
    stf = STF_CLASSES[stf_i](rise_time=rise)
    c = float(stf.cumulative(np.array([t]))[0])
    assert 0.0 <= c <= 1.0
    if t <= 0:
        assert c == 0.0
    if t >= rise:
        assert c == 1.0
