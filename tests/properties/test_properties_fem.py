"""Property-based tests (hypothesis) on the FEM building blocks."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fem.basis import lagrange_eval_matrix
from repro.fem.geometry import ElementGeometry
from repro.fem.mesh import StructuredMesh
from repro.fem.quadrature import gauss_legendre, gauss_lobatto
from repro.fem.timestep import cfl_timestep


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=10),
    degree=st.integers(min_value=0, max_value=19),
)
def test_gauss_exactness_property(n, degree):
    """Gauss rules integrate x^d exactly iff d <= 2n-1."""
    r = gauss_legendre(n)
    got = float(np.sum(r.weights * r.points**degree))
    exact = 0.0 if degree % 2 else 2.0 / (degree + 1)
    if degree <= 2 * n - 1:
        assert abs(got - exact) < 1e-11


@settings(max_examples=30, deadline=None)
@given(
    p=st.integers(min_value=1, max_value=8),
    pts=st.lists(
        st.floats(min_value=-1.0, max_value=1.0, allow_nan=False),
        min_size=1,
        max_size=12,
    ),
)
def test_partition_of_unity_property(p, pts):
    """Lagrange basis values sum to one at any evaluation point."""
    nodes = gauss_lobatto(p + 1).points
    B = lagrange_eval_matrix(nodes, np.array(pts))
    np.testing.assert_allclose(B.sum(axis=1), 1.0, atol=1e-10)


@settings(max_examples=25, deadline=None)
@given(
    nx=st.integers(min_value=1, max_value=6),
    nz=st.integers(min_value=1, max_value=4),
    depth0=st.floats(min_value=0.2, max_value=5.0),
    amp_frac=st.floats(min_value=0.0, max_value=0.4),
    seed=st.integers(min_value=0, max_value=99),
)
def test_ocean_mesh_volume_property(nx, nz, depth0, amp_frac, seed):
    """Mesh volume equals the trapezoid of the (positive) depth samples."""
    rng = np.random.default_rng(seed)
    x = np.sort(rng.uniform(0.0, 10.0, nx + 1))
    x[0] = 0.0
    if np.any(np.diff(x) < 1e-3):
        x = np.linspace(0, 10, nx + 1)
    depths = depth0 * (1.0 + amp_frac * rng.uniform(-1, 1, nx + 1))
    mesh = StructuredMesh.ocean(
        [x], nz=nz, depth=lambda xx: np.interp(xx, x, depths)
    )
    rule = gauss_legendre(2)
    from repro.fem.quadrature import tensor_rule

    _, w = tensor_rule([rule, rule])
    geom = ElementGeometry.compute(mesh.element_vertices(), [rule.points] * 2)
    vol = float(np.sum(geom.volumes(w)))
    expected = float(np.trapezoid(depths, x))
    assert abs(vol - expected) < 1e-9 * max(expected, 1.0)


@settings(max_examples=25, deadline=None)
@given(
    order=st.integers(min_value=1, max_value=8),
    h=st.floats(min_value=1e-3, max_value=1e3),
    c=st.floats(min_value=1e-2, max_value=1e4),
)
def test_cfl_positive_and_monotone(order, h, c):
    """CFL timestep is positive, linear in h, inverse in c."""
    dt = cfl_timestep(h, order, c)
    assert dt > 0
    assert cfl_timestep(2 * h, order, c) > dt
    assert cfl_timestep(h, order, 2 * c) < dt


@settings(max_examples=20, deadline=None)
@given(
    p=st.integers(min_value=1, max_value=5),
    nx=st.integers(min_value=1, max_value=5),
    nz=st.integers(min_value=1, max_value=3),
)
def test_gather_scatter_duality_property(p, nx, nz):
    """<Ev, e> == <v, E^T e> for random v, e on any mesh/order."""
    from repro.fem.spaces import H1Space

    mesh = StructuredMesh.ocean([np.linspace(0, 2, nx + 1)], nz=nz, depth=1.0)
    s = H1Space(mesh, p)
    rng = np.random.default_rng(p * 100 + nx * 10 + nz)
    v = rng.standard_normal(s.ndof)
    e = rng.standard_normal((mesh.n_elements, s.nloc))
    lhs = float(np.sum(s.to_evector(v) * e))
    rhs = float(np.sum(v * s.from_evector_add(e)))
    assert abs(lhs - rhs) < 1e-9 * (abs(lhs) + 1.0)
