"""Property-based tests on the prior's SPD structure and calibration."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.inference.prior import BiLaplacianPrior, SpatioTemporalPrior


def _axes(seed, n):
    rng = np.random.default_rng(seed)
    x = np.sort(rng.uniform(0, 1, n))
    x[0], x[-1] = 0.0, 1.0
    if np.any(np.diff(x) < 1e-4):
        x = np.linspace(0, 1, n)
    return [x]


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=4, max_value=25),
    sigma=st.floats(min_value=0.05, max_value=5.0),
    rho=st.floats(min_value=0.05, max_value=1.0),
    seed=st.integers(0, 99),
)
def test_calibration_property(n, sigma, rho, seed):
    """from_correlation hits the requested center marginal variance."""
    p = BiLaplacianPrior.from_correlation(_axes(seed, n), sigma, rho)
    got = p.marginal_variance_at(p.center_index())
    assert abs(got - sigma**2) < 1e-6 * sigma**2


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=4, max_value=20),
    gamma=st.floats(min_value=0.01, max_value=10.0),
    delta=st.floats(min_value=0.01, max_value=10.0),
    seed=st.integers(0, 99),
)
def test_spd_property(n, gamma, delta, seed):
    """Any (gamma, delta) > 0 yields an SPD covariance."""
    p = BiLaplacianPrior(_axes(seed, n), gamma, delta)
    G = p.dense()
    np.testing.assert_allclose(G, G.T, atol=1e-10 * np.abs(G).max())
    assert np.linalg.eigvalsh(G).min() > 0


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(min_value=4, max_value=15),
    seed=st.integers(0, 99),
)
def test_quadratic_form_consistency(n, seed):
    """<v, Gamma^{-1} Gamma v> == <v, v> (inverse is exact)."""
    p = BiLaplacianPrior.from_correlation(_axes(seed, n), 0.5, 0.3)
    rng = np.random.default_rng(seed)
    v = rng.standard_normal(p.n)
    w = p.apply_inverse(p.apply(v))
    assert np.abs(w - v).max() < 1e-6 * (np.abs(v).max() + 1.0)


@settings(max_examples=15, deadline=None)
@given(
    n=st.integers(min_value=4, max_value=12),
    nt=st.integers(min_value=1, max_value=5),
    rho_t=st.one_of(st.none(), st.floats(min_value=0.0, max_value=0.9)),
    seed=st.integers(0, 99),
)
def test_spatiotemporal_sqrt_property(n, nt, rho_t, seed):
    """L L^T == Gamma_prior for the spatio-temporal factorization."""
    sp = BiLaplacianPrior.from_correlation(_axes(seed, n), 0.4, 0.3)
    st_prior = SpatioTemporalPrior(sp, nt, temporal_rho=rho_t)
    N = nt * sp.n
    L = st_prior.apply_sqrt(np.eye(N).reshape(nt, sp.n, N)).reshape(N, N)
    G = st_prior.dense()
    np.testing.assert_allclose(L @ L.T, G, atol=1e-8 * np.abs(G).max())
