"""Property-based tests on the block-Toeplitz FFT algebra."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.inference.toeplitz import BlockToeplitzOperator

dims = st.tuples(
    st.integers(min_value=1, max_value=10),  # Nt
    st.integers(min_value=1, max_value=5),   # n_out
    st.integers(min_value=1, max_value=6),   # n_in
)


@settings(max_examples=40, deadline=None)
@given(shape=dims, seed=st.integers(0, 999))
def test_matvec_equals_dense(shape, seed):
    """FFT matvec == dense block-Toeplitz matvec for any shape."""
    nt, no, ni = shape
    rng = np.random.default_rng(seed)
    op = BlockToeplitzOperator(rng.standard_normal((nt, no, ni)))
    m = rng.standard_normal((nt, ni))
    np.testing.assert_allclose(
        op.matvec(m).reshape(-1), op.dense() @ m.reshape(-1), atol=1e-10
    )


@settings(max_examples=40, deadline=None)
@given(shape=dims, seed=st.integers(0, 999))
def test_adjoint_identity_property(shape, seed):
    """<F m, d> == <m, F* d> for any kernel and vectors."""
    nt, no, ni = shape
    rng = np.random.default_rng(seed)
    op = BlockToeplitzOperator(rng.standard_normal((nt, no, ni)))
    m = rng.standard_normal((nt, ni))
    d = rng.standard_normal((nt, no))
    lhs = float(np.sum(op.matvec(m) * d))
    rhs = float(np.sum(m * op.rmatvec(d)))
    assert abs(lhs - rhs) < 1e-9 * (abs(lhs) + abs(rhs) + 1.0)


@settings(max_examples=30, deadline=None)
@given(shape=dims, seed=st.integers(0, 999), shift=st.integers(1, 5))
def test_shift_equivariance_property(shape, seed, shift):
    """Shifting the input in time shifts the output (causal LTI)."""
    nt, no, ni = shape
    if shift >= nt:
        return
    rng = np.random.default_rng(seed)
    op = BlockToeplitzOperator(rng.standard_normal((nt, no, ni)))
    m = np.zeros((nt, ni))
    m[0] = rng.standard_normal(ni)
    d0 = op.matvec(m)
    ms = np.roll(m, shift, axis=0)
    ds = op.matvec(ms)
    np.testing.assert_allclose(ds[shift:], d0[: nt - shift], atol=1e-10)
    np.testing.assert_allclose(ds[:shift], 0.0, atol=1e-12)


@settings(max_examples=30, deadline=None)
@given(shape=dims, seed=st.integers(0, 999))
def test_linearity_property(shape, seed):
    """F(a m1 + b m2) == a F m1 + b F m2."""
    nt, no, ni = shape
    rng = np.random.default_rng(seed)
    op = BlockToeplitzOperator(rng.standard_normal((nt, no, ni)))
    m1 = rng.standard_normal((nt, ni))
    m2 = rng.standard_normal((nt, ni))
    a, b = rng.standard_normal(2)
    lhs = op.matvec(a * m1 + b * m2)
    rhs = a * op.matvec(m1) + b * op.matvec(m2)
    np.testing.assert_allclose(lhs, rhs, atol=1e-9 * (np.abs(rhs).max() + 1.0))


@settings(max_examples=20, deadline=None)
@given(
    nt=st.integers(min_value=2, max_value=8),
    n=st.integers(min_value=1, max_value=4),
    seed=st.integers(0, 999),
)
def test_gram_psd_property(nt, n, seed):
    """F F^T (dense, via matvecs) is symmetric positive semidefinite."""
    rng = np.random.default_rng(seed)
    op = BlockToeplitzOperator(rng.standard_normal((nt, n, n)))
    N = nt * n
    cols = np.zeros((nt, n, N))
    for j in range(N):
        cols[j // n, j % n, j] = 1.0
    G = op.matvec(op.rmatvec(cols)).reshape(N, N)
    np.testing.assert_allclose(G, G.T, atol=1e-9 * (np.abs(G).max() + 1))
    ev = np.linalg.eigvalsh(0.5 * (G + G.T))
    assert ev.min() > -1e-8 * max(ev.max(), 1.0)
