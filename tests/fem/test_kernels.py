"""Gradient kernels: five-variant agreement, exactness, adjointness, counts."""

import numpy as np
import pytest

from repro.fem.geometry import ElementGeometry
from repro.fem.kernels import (
    KERNEL_VARIANTS,
    kernel_flop_byte_counts,
    make_gradient_kernel,
)
from repro.fem.mesh import StructuredMesh
from repro.fem.quadrature import gauss_legendre, tensor_rule
from repro.fem.spaces import H1Space, L2Space


def _setup(dim, order):
    if dim == 1:
        mesh = StructuredMesh.ocean([], nz=4, depth=2.0)
    elif dim == 2:
        mesh = StructuredMesh.ocean(
            [np.linspace(0, 3, 5)], nz=2, depth=lambda x: 1.0 + 0.2 * np.sin(x)
        )
    else:
        mesh = StructuredMesh.ocean(
            [np.linspace(0, 2, 3), np.linspace(0, 2, 3)],
            nz=2,
            depth=lambda x, y: 1.0 + 0.1 * x + 0.05 * y,
        )
    h1 = H1Space(mesh, order)
    l2 = L2Space(mesh, order - 1)
    rule = gauss_legendre(order)
    geom = ElementGeometry.compute(mesh.element_vertices(), [rule.points] * dim)
    _, w = tensor_rule([rule] * dim)
    B = h1.basis_1d.eval(rule.points)
    D = h1.basis_1d.deriv(rule.points)
    return mesh, h1, l2, rule, geom, w, B, D


def _all_kernels(mesh, rule, geom, w, B, D, dim):
    out = {}
    for var in KERNEL_VARIANTS:
        if var == "mf":
            out[var] = make_gradient_kernel(
                "mf", B, D, weights=w,
                element_vertices=mesh.element_vertices(),
                velocity_nodes_1d=rule.points,
            )
        else:
            out[var] = make_gradient_kernel(var, B, D, geom=geom, weights=w)
    return out


@pytest.mark.parametrize("dim", [1, 2, 3])
def test_variants_agree_apply(dim, rng):
    mesh, h1, l2, rule, geom, w, B, D = _setup(dim, 3 if dim < 3 else 2)
    kernels = _all_kernels(mesh, rule, geom, w, B, D, dim)
    pe = rng.standard_normal((mesh.n_elements, h1.nloc, 2))
    ref = kernels["optimized"].apply(pe)
    for var, k in kernels.items():
        np.testing.assert_allclose(k.apply(pe), ref, atol=1e-12, err_msg=var)


@pytest.mark.parametrize("dim", [1, 2, 3])
def test_variants_agree_transpose(dim, rng):
    mesh, h1, l2, rule, geom, w, B, D = _setup(dim, 3 if dim < 3 else 2)
    kernels = _all_kernels(mesh, rule, geom, w, B, D, dim)
    wv = rng.standard_normal((mesh.n_elements, l2.nloc, dim, 2))
    ref = kernels["optimized"].apply_transpose(wv)
    for var, k in kernels.items():
        np.testing.assert_allclose(k.apply_transpose(wv), ref, atol=1e-12, err_msg=var)


@pytest.mark.parametrize("dim", [2, 3])
def test_gradient_exact_on_linears(dim):
    mesh, h1, l2, rule, geom, w, B, D = _setup(dim, 3 if dim < 3 else 2)
    coef = np.arange(1, dim + 1, dtype=float)
    p = 0.5 + h1.dof_coords @ coef
    pe = h1.to_evector(p)
    k = make_gradient_kernel("optimized", B, D, geom=geom, weights=w)
    mom = k.apply(pe) / (geom.detj * w[None, :])[:, :, None]
    for d in range(dim):
        np.testing.assert_allclose(mom[:, :, d], coef[d], atol=1e-9)


@pytest.mark.parametrize("dim", [2, 3])
def test_gradient_exact_on_higher_polynomials(dim):
    # Order-p space differentiates degree-p polynomials exactly; Gauss
    # quadrature of the moments is exact for affine geometry.
    mesh = StructuredMesh.box([1.5] * dim, [2] * dim)
    order = 3
    h1 = H1Space(mesh, order)
    rule = gauss_legendre(order)
    geom = ElementGeometry.compute(mesh.element_vertices(), [rule.points] * dim)
    _, w = tensor_rule([rule] * dim)
    B = h1.basis_1d.eval(rule.points)
    D = h1.basis_1d.deriv(rule.points)
    c = h1.dof_coords
    p = c[:, 0] ** 3
    k = make_gradient_kernel("optimized", B, D, geom=geom, weights=w)
    mom = k.apply(h1.to_evector(p)) / (geom.detj * w[None, :])[:, :, None]
    np.testing.assert_allclose(mom[:, :, 0], 3 * geom.coords[:, :, 0] ** 2, atol=1e-9)


@pytest.mark.parametrize("variant", KERNEL_VARIANTS)
def test_adjoint_identity_each_variant(variant, rng):
    mesh, h1, l2, rule, geom, w, B, D = _setup(2, 3)
    if variant == "mf":
        k = make_gradient_kernel(
            "mf", B, D, weights=w,
            element_vertices=mesh.element_vertices(),
            velocity_nodes_1d=rule.points,
        )
    else:
        k = make_gradient_kernel(variant, B, D, geom=geom, weights=w)
    pe = rng.standard_normal((mesh.n_elements, h1.nloc))
    wv = rng.standard_normal((mesh.n_elements, l2.nloc, 2))
    lhs = float(np.sum(k.apply(pe) * wv))
    rhs = float(np.sum(pe * k.apply_transpose(wv)))
    assert lhs == pytest.approx(rhs, rel=1e-12)


def test_apply_pair_matches_separate(rng):
    mesh, h1, l2, rule, geom, w, B, D = _setup(2, 3)
    k = make_gradient_kernel("fused", B, D, geom=geom, weights=w)
    pe = rng.standard_normal((mesh.n_elements, h1.nloc, 3))
    wv = rng.standard_normal((mesh.n_elements, l2.nloc, 2, 3))
    mom, y = k.apply_pair(pe, wv)
    np.testing.assert_allclose(mom, k.apply(pe), atol=1e-13)
    np.testing.assert_allclose(y, k.apply_transpose(wv), atol=1e-13)


def test_unbatched_and_batched_consistent(rng):
    mesh, h1, l2, rule, geom, w, B, D = _setup(2, 3)
    k = make_gradient_kernel("optimized", B, D, geom=geom, weights=w)
    pe = rng.standard_normal((mesh.n_elements, h1.nloc))
    one = k.apply(pe)
    batched = k.apply(pe[:, :, None])
    np.testing.assert_allclose(one, batched[..., 0], atol=1e-14)


def test_factory_validation():
    with pytest.raises(ValueError):
        make_gradient_kernel("bogus", np.eye(2), np.eye(2), geom=None, weights=None)
    with pytest.raises(ValueError):
        make_gradient_kernel("optimized", np.eye(2), np.eye(2))
    with pytest.raises(ValueError):
        make_gradient_kernel("mf", np.eye(2), np.eye(2))


def test_flop_byte_counts_monotone():
    pa = kernel_flop_byte_counts(100, 5, 4, 3, variant="optimized")
    mf = kernel_flop_byte_counts(100, 5, 4, 3, variant="mf")
    assert pa["flops"] > 0 and pa["bytes"] > 0
    # MF recomputes geometry: more flops, fewer bytes (paper Fig. 7 trend).
    assert mf["flops"] > pa["flops"]
    assert mf["bytes"] < pa["bytes"]


def test_flop_counts_scale_with_elements():
    small = kernel_flop_byte_counts(10, 4, 3, 2)
    big = kernel_flop_byte_counts(20, 4, 3, 2)
    assert big["flops"] == pytest.approx(2 * small["flops"])
