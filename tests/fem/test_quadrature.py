"""Quadrature rules: exactness degrees, weights, mapping, tensorization."""

import numpy as np
import pytest

from repro.fem.quadrature import (
    QuadratureRule,
    gauss_legendre,
    gauss_lobatto,
    min_node_gap,
    per_axis_rules,
    tensor_points,
    tensor_rule,
)


def _poly_integral(k: float) -> float:
    """Integral of x^k over [-1, 1]."""
    return 0.0 if k % 2 == 1 else 2.0 / (k + 1)


@pytest.mark.parametrize("n", range(1, 12))
def test_gauss_exact_degree(n):
    r = gauss_legendre(n)
    for k in range(2 * n):
        got = float(np.sum(r.weights * r.points**k))
        assert got == pytest.approx(_poly_integral(k), abs=1e-12)


@pytest.mark.parametrize("n", range(1, 12))
def test_gauss_not_exact_beyond_degree(n):
    r = gauss_legendre(n)
    k = 2 * n
    got = float(np.sum(r.weights * r.points**k))
    assert abs(got - _poly_integral(k)) > 1e-8


@pytest.mark.parametrize("n", range(2, 12))
def test_lobatto_exact_degree(n):
    r = gauss_lobatto(n)
    for k in range(2 * n - 2):
        got = float(np.sum(r.weights * r.points**k))
        assert got == pytest.approx(_poly_integral(k), abs=1e-12)


@pytest.mark.parametrize("n", range(2, 10))
def test_lobatto_includes_endpoints(n):
    r = gauss_lobatto(n)
    assert r.points[0] == pytest.approx(-1.0)
    assert r.points[-1] == pytest.approx(1.0)


@pytest.mark.parametrize("factory", [gauss_legendre, gauss_lobatto])
def test_weights_positive_and_sum_to_measure(factory):
    for n in range(2, 10):
        r = factory(n)
        assert np.all(r.weights > 0)
        assert float(np.sum(r.weights)) == pytest.approx(2.0, abs=1e-13)


@pytest.mark.parametrize("factory", [gauss_legendre, gauss_lobatto])
def test_points_sorted_and_symmetric(factory):
    for n in range(2, 10):
        r = factory(n)
        assert np.all(np.diff(r.points) > 0)
        np.testing.assert_allclose(r.points, -r.points[::-1], atol=1e-13)


def test_invalid_sizes_raise():
    with pytest.raises(ValueError):
        gauss_legendre(0)
    with pytest.raises(ValueError):
        gauss_lobatto(1)


def test_mapped_rule_integrates_on_interval():
    r = gauss_legendre(6).mapped(1.0, 3.0)
    got = float(np.sum(r.weights * r.points**3))
    assert got == pytest.approx((3.0**4 - 1.0) / 4.0, rel=1e-13)
    with pytest.raises(ValueError):
        gauss_legendre(3).mapped(2.0, 1.0)


def test_integrate_method_matches_manual():
    r = gauss_legendre(5)
    vals = np.sin(r.points)
    assert r.integrate(vals) == pytest.approx(float(np.sum(r.weights * vals)))


def test_integrate_with_batch_axis():
    r = gauss_legendre(4)
    vals = np.stack([r.points, r.points**2], axis=0)  # (2, n)
    out = r.integrate(vals, axis=1)
    assert out.shape == (2,)
    assert out[1] == pytest.approx(2.0 / 3.0)


def test_tensor_rule_2d_exactness():
    pts, w = tensor_rule([gauss_legendre(3), gauss_legendre(4)])
    assert pts.shape == (12, 2) and w.shape == (12,)
    # integral of x^2 y^4 over [-1,1]^2 = (2/3)(2/5)
    got = float(np.sum(w * pts[:, 0] ** 2 * pts[:, 1] ** 4))
    assert got == pytest.approx((2 / 3) * (2 / 5), abs=1e-13)


def test_tensor_points_c_order():
    pts = tensor_points([gauss_legendre(2), gauss_legendre(3)])
    # Last axis varies fastest.
    assert pts[0, 0] == pts[1, 0] == pts[2, 0]
    assert pts[0, 1] != pts[1, 1]


def test_min_node_gap_decreases_with_order():
    gaps = [min_node_gap(gauss_lobatto(n)) for n in range(3, 9)]
    assert all(g2 < g1 for g1, g2 in zip(gaps, gaps[1:]))


def test_per_axis_rules_factory():
    rules = per_axis_rules("lobatto", [3, 4])
    assert rules[0].n == 3 and rules[1].n == 4
    with pytest.raises(KeyError):
        per_axis_rules("simpson", [3])


def test_rule_validation():
    with pytest.raises(ValueError):
        QuadratureRule(np.zeros((2, 2)), np.zeros(2))
    with pytest.raises(ValueError):
        QuadratureRule(np.zeros(3), np.zeros(2))
