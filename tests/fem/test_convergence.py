"""Convergence studies: the discretization converges at the expected rates.

Three classical measures tie the mini-MFEM substrate to approximation
theory:

* **spectral (p-) convergence** of GLL interpolation of a smooth field;
* **h-convergence** of the lumped-mass L2 projection error at fixed order;
* **temporal convergence** of the slot propagator: the recorded data
  converge at RK4's fourth order as substeps are refined.
"""

import numpy as np
import pytest

from repro.fem.mesh import StructuredMesh
from repro.fem.spaces import H1Space
from repro.ocean.acoustic_gravity import AcousticGravityOperator
from repro.ocean.material import SeawaterMaterial
from repro.ocean.observations import SensorArray
from repro.ocean.propagator import SlotPropagator


def _interp_error(p: int, nx: int = 4) -> float:
    """Max nodal-interpolation error of sin(2x) on a fine probe grid."""
    mesh = StructuredMesh.box([2.0], [nx])
    s = H1Space(mesh, p)
    f = np.sin(2.0 * s.dof_coords[:, 0])
    probe = np.linspace(0.0, 2.0, 401)[:, None]
    C = s.point_eval(probe)
    return float(np.abs(C @ f - np.sin(2.0 * probe[:, 0])).max())


def test_spectral_p_convergence():
    errs = [_interp_error(p) for p in (2, 4, 6, 8)]
    # Exponential decay: each +2 orders must cut the error by >= 10x.
    for a, b in zip(errs, errs[1:]):
        assert b < a / 10.0
    assert errs[-1] < 1e-9


def test_h_convergence_of_interpolation():
    order = 2
    errs = []
    for nx in (2, 4, 8, 16):
        errs.append(_interp_error(order, nx=nx))
    rates = [np.log2(a / b) for a, b in zip(errs, errs[1:])]
    # Nodal interpolation at order p converges at h^{p+1} = h^3.
    assert all(r > 2.5 for r in rates)


def test_propagator_temporal_order_four():
    """Observed pressures converge at O(dt^4) under substep refinement."""
    mat = SeawaterMaterial.nondimensional()
    mesh = StructuredMesh.ocean(
        [np.linspace(0, 2, 5)], nz=2, depth=lambda x: 0.8 + 0.05 * np.sin(3 * x)
    )
    op = AcousticGravityOperator(mesh, order=3, material=mat)
    sens = SensorArray.regular(op, 3)
    rng = np.random.default_rng(0)
    Nt = 4
    m = rng.standard_normal((Nt, op.n_parameters))

    def run(nsub):
        prop = SlotPropagator(op, dt_obs=0.25, n_slots=Nt, n_substeps=nsub)
        return prop.forward(m, sensors=sens).d

    d_ref = run(64)  # effectively converged reference
    errs = []
    for nsub in (4, 8, 16):
        errs.append(float(np.abs(run(nsub) - d_ref).max()))
    rates = [np.log2(a / b) for a, b in zip(errs, errs[1:])]
    assert all(r > 3.5 for r in rates), rates


def test_kernel_converges_with_substeps():
    """The Phase 1 kernel itself converges as the CFL is refined."""
    mat = SeawaterMaterial.nondimensional()
    mesh = StructuredMesh.ocean([np.linspace(0, 2, 4)], nz=2, depth=0.8)
    op = AcousticGravityOperator(mesh, order=2, material=mat)
    sens = SensorArray.regular(op, 2)

    def kernel(nsub):
        prop = SlotPropagator(op, dt_obs=0.3, n_slots=3, n_substeps=nsub)
        return prop.p2o_kernel(sens)

    T_ref = kernel(48)
    e1 = np.abs(kernel(6) - T_ref).max()
    e2 = np.abs(kernel(12) - T_ref).max()
    assert e2 < e1 / 8.0  # ~4th order => 16x per halving


def test_spatial_refinement_improves_physics():
    """Seiche-period error decreases under mesh refinement."""
    from repro.ocean.observations import SurfaceQoI

    mat = SeawaterMaterial.nondimensional(c=3.0, g=1.0)
    L, H = 4.0, 0.5
    k = np.pi / L
    T_exact = 2 * np.pi / np.sqrt(mat.g * k * np.tanh(k * H))

    def period_error(nx, order):
        mesh = StructuredMesh.ocean([np.linspace(0, L, nx + 1)], nz=1, depth=H)
        op = AcousticGravityOperator(mesh, order=order, material=mat, absorbing=())
        coords = op.h1.dof_coords
        p0 = (
            mat.rho * mat.g * 1e-3 * np.cos(k * coords[:, 0])
            * np.cosh(k * (coords[:, 1] + H)) / np.cosh(k * H)
        )
        X = op.zero_state(1)
        _, P = op.views(X)
        P[:, 0] = p0
        prop = SlotPropagator(op, dt_obs=T_exact / 24, n_slots=30, cfl=0.35)
        gauge = SurfaceQoI(op, np.array([[0.0]]))
        eta = prop.forward(None, sensors=gauge, x0=X).d[:, 0]
        t = prop.times()
        sc = np.where(np.diff(np.sign(eta)) != 0)[0]
        tc = np.array(
            [t[i] - eta[i] * (t[i + 1] - t[i]) / (eta[i + 1] - eta[i]) for i in sc]
        )
        return abs(2 * float(np.diff(tc).mean()) - T_exact) / T_exact

    coarse = period_error(2, 2)
    fine = period_error(4, 3)
    assert fine <= coarse + 1e-3
