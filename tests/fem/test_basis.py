"""Lagrange bases: interpolation exactness, differentiation, stability."""

import numpy as np
import pytest

from repro.fem.basis import (
    LagrangeBasis1D,
    barycentric_weights,
    differentiation_matrix,
    lagrange_diff_matrix,
    lagrange_eval_matrix,
)
from repro.fem.quadrature import gauss_legendre, gauss_lobatto


@pytest.mark.parametrize("p", range(1, 9))
def test_partition_of_unity(p):
    nodes = gauss_lobatto(p + 1).points
    y = np.linspace(-1, 1, 37)
    B = lagrange_eval_matrix(nodes, y)
    np.testing.assert_allclose(B.sum(axis=1), 1.0, atol=1e-12)


@pytest.mark.parametrize("p", range(1, 9))
def test_kronecker_property_at_nodes(p):
    nodes = gauss_lobatto(p + 1).points
    B = lagrange_eval_matrix(nodes, nodes)
    np.testing.assert_allclose(B, np.eye(p + 1), atol=1e-12)


@pytest.mark.parametrize("p", range(1, 9))
def test_interpolation_exact_for_polynomials(p):
    nodes = gauss_lobatto(p + 1).points
    y = np.linspace(-1, 1, 23)
    coeffs = np.polynomial.polynomial.polyval(nodes, np.arange(1, p + 2))
    B = lagrange_eval_matrix(nodes, y)
    expected = np.polynomial.polynomial.polyval(y, np.arange(1, p + 2))
    np.testing.assert_allclose(B @ coeffs, expected, atol=1e-10)


@pytest.mark.parametrize("p", range(1, 9))
def test_derivative_exact_for_polynomials(p):
    nodes = gauss_lobatto(p + 1).points
    y = gauss_legendre(p + 2).points
    c = np.arange(1, p + 2, dtype=float)
    vals = np.polynomial.polynomial.polyval(nodes, c)
    dc = np.polynomial.polynomial.polyder(c)
    expected = np.polynomial.polynomial.polyval(y, dc)
    Dm = lagrange_diff_matrix(nodes, y)
    np.testing.assert_allclose(Dm @ vals, expected, atol=1e-9)


def test_diff_matrix_rows_sum_to_zero():
    for p in range(1, 9):
        D = differentiation_matrix(gauss_lobatto(p + 1).points)
        np.testing.assert_allclose(D.sum(axis=1), 0.0, atol=1e-13)


def test_diff_matrix_exact_on_linear():
    nodes = gauss_lobatto(5).points
    D = differentiation_matrix(nodes)
    np.testing.assert_allclose(D @ nodes, np.ones_like(nodes), atol=1e-12)


def test_barycentric_weights_alternate_sign():
    w = barycentric_weights(gauss_lobatto(6).points)
    signs = np.sign(w)
    assert np.all(signs[:-1] * signs[1:] < 0)


def test_barycentric_rejects_duplicates():
    with pytest.raises(ValueError):
        barycentric_weights(np.array([0.0, 0.5, 0.5]))
    with pytest.raises(ValueError):
        barycentric_weights(np.zeros((2, 2)))


def test_eval_at_exact_node_no_nan():
    nodes = gauss_lobatto(5).points
    B = lagrange_eval_matrix(nodes, np.array([nodes[2], 0.123]))
    assert np.all(np.isfinite(B))
    np.testing.assert_allclose(B[0], np.eye(5)[2], atol=1e-13)


def test_high_order_stability():
    # Barycentric evaluation must stay accurate at order 16 on GLL nodes.
    nodes = gauss_lobatto(17).points
    y = np.linspace(-1, 1, 101)
    B = lagrange_eval_matrix(nodes, y)
    f = np.sin(3 * nodes)
    exact = np.sin(3 * y)
    assert np.max(np.abs(B @ f - exact)) < 1e-6


class TestLagrangeBasis1D:
    def test_properties(self):
        b = LagrangeBasis1D(gauss_lobatto(4).points)
        assert b.n == 4 and b.order == 3

    def test_interpolate_with_batch(self):
        b = LagrangeBasis1D(gauss_lobatto(4).points)
        coeffs = np.stack([b.nodes, b.nodes**2], axis=1)  # (4, 2)
        y = np.array([-0.3, 0.7])
        out = b.interpolate(coeffs, y)
        assert out.shape == (2, 2)
        np.testing.assert_allclose(out[:, 0], y, atol=1e-12)
        np.testing.assert_allclose(out[:, 1], y**2, atol=1e-12)

    def test_deriv_matches_diff_matrix_at_nodes(self):
        b = LagrangeBasis1D(gauss_lobatto(5).points)
        np.testing.assert_allclose(
            b.deriv(b.nodes), b.diff_matrix(), atol=1e-11
        )
