"""Linear RK4 stepping: equivalence with classical RK4, exact adjoints, CFL."""

import numpy as np
import pytest

from repro.fem.timestep import (
    LinearRK4Workspace,
    cfl_timestep,
    rk4_adjoint_slot_pass,
    rk4_forced_step,
    rk4_homogeneous_step,
)


def _classical_rk4(A, x, dt, f=None):
    """Textbook RK4 for x' = A x + f with constant f."""
    def rhs(v):
        return A @ v + (f if f is not None else 0.0)

    k1 = rhs(x)
    k2 = rhs(x + dt / 2 * k1)
    k3 = rhs(x + dt / 2 * k2)
    k4 = rhs(x + dt * k3)
    return x + dt / 6 * (k1 + 2 * k2 + 2 * k3 + k4)


@pytest.fixture()
def system(rng):
    n = 12
    A = rng.standard_normal((n, n)) * 0.5
    return A, (lambda v: A @ v)


def test_homogeneous_equals_classical(system, rng):
    A, apply_L = system
    x = rng.standard_normal((A.shape[0], 3))
    dt = 0.07
    np.testing.assert_allclose(
        rk4_homogeneous_step(apply_L, x, dt), _classical_rk4(A, x, dt), atol=1e-13
    )


def test_forced_equals_classical(system, rng):
    A, apply_L = system
    x = rng.standard_normal((A.shape[0], 2))
    f = rng.standard_normal((A.shape[0], 2))
    dt = 0.05
    np.testing.assert_allclose(
        rk4_forced_step(apply_L, x, dt, f), _classical_rk4(A, x, dt, f), atol=1e-13
    )


def test_forced_without_forcing_is_homogeneous(system, rng):
    A, apply_L = system
    x = rng.standard_normal(A.shape[0])
    np.testing.assert_allclose(
        rk4_forced_step(apply_L, x, 0.1, None),
        rk4_homogeneous_step(apply_L, x, 0.1),
        atol=1e-14,
    )


def test_step_is_taylor_polynomial(system, rng):
    A, apply_L = system
    dt = 0.03
    n = A.shape[0]
    P = np.eye(n)
    term = np.eye(n)
    for k in range(1, 5):
        term = term @ (dt * A) / k
        P = P + term
    x = rng.standard_normal(n)
    np.testing.assert_allclose(rk4_homogeneous_step(apply_L, x, dt), P @ x, atol=1e-12)


def test_adjoint_pass_exact_transpose(system, rng):
    A, apply_L = system
    n = A.shape[0]
    dt = 0.04
    apply_LT = lambda v: A.T @ v
    x = rng.standard_normal(n)
    lam = rng.standard_normal(n)
    # <P x, lam> == <x, P^T lam>
    px = rk4_homogeneous_step(apply_L, x, dt)
    pt, qt = rk4_adjoint_slot_pass(apply_LT, lam, dt)
    assert float(px @ lam) == pytest.approx(float(x @ pt), rel=1e-12)
    # Q identity: x + dt*Q(dtA)(Ax + f) with f=0 -> Q = (P - I)/ (dt A)
    n_ = A.shape[0]
    Pm = np.eye(n_)
    term = np.eye(n_)
    for k in range(1, 5):
        term = term @ (dt * A) / k
        Pm = Pm + term
    Qm = np.eye(n_) + dt * A / 2 + (dt * A) @ (dt * A) / 6 + (dt * A) @ (dt * A) @ (dt * A) / 24
    np.testing.assert_allclose(qt, Qm.T @ lam, atol=1e-12)


def test_convergence_order_is_four(rng):
    # Scalar oscillator: x' = i w x equivalent 2x2 rotation.
    w = 2.0
    A = np.array([[0.0, -w], [w, 0.0]])
    apply_L = lambda v: A @ v
    x0 = np.array([1.0, 0.0])
    T = 1.0
    errs = []
    for nsteps in (20, 40, 80):
        dt = T / nsteps
        x = x0.copy()
        for _ in range(nsteps):
            x = rk4_homogeneous_step(apply_L, x, dt)
        exact = np.array([np.cos(w * T), np.sin(w * T)])
        errs.append(np.linalg.norm(x - exact))
    orders = [np.log2(errs[i] / errs[i + 1]) for i in range(2)]
    assert all(o > 3.8 for o in orders)


class TestCFL:
    def test_scaling_with_order(self):
        dt2 = cfl_timestep(1.0, 2, 1.0)
        dt4 = cfl_timestep(1.0, 4, 1.0)
        dt8 = cfl_timestep(1.0, 8, 1.0)
        assert dt4 < dt2 and dt8 < dt4
        # ~1/p^2 scaling of the GLL edge gap
        assert dt8 / dt4 == pytest.approx(0.25, abs=0.15)

    def test_scaling_with_speed_and_size(self):
        assert cfl_timestep(2.0, 3, 1.0) == pytest.approx(2 * cfl_timestep(1.0, 3, 1.0))
        assert cfl_timestep(1.0, 3, 2.0) == pytest.approx(0.5 * cfl_timestep(1.0, 3, 1.0))

    def test_validation(self):
        with pytest.raises(ValueError):
            cfl_timestep(-1.0, 3, 1.0)
        with pytest.raises(ValueError):
            cfl_timestep(1.0, 3, 0.0)


def test_workspace_allocation():
    ws = LinearRK4Workspace.for_state((10, 2))
    assert ws.v.shape == (10, 2) and ws.t.shape == (10, 2)
