"""H1/L2 spaces: numbering, gather/scatter, traces, point evaluation."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.fem.mesh import StructuredMesh
from repro.fem.spaces import H1Space, L2Space


@pytest.fixture(scope="module")
def mesh():
    x = np.linspace(0, 4, 7)
    return StructuredMesh.ocean([x], nz=3, depth=lambda xx: 1.0 + 0.2 * np.sin(xx))


class TestH1Numbering:
    def test_ndof_formula(self, mesh):
        for p in (1, 2, 3, 4):
            s = H1Space(mesh, p)
            assert s.ndof == (6 * p + 1) * (3 * p + 1)

    def test_gather_covers_all_dofs(self, mesh):
        s = H1Space(mesh, 3)
        assert set(np.unique(s.gather)) == set(range(s.ndof))

    def test_gather_shape(self, mesh):
        s = H1Space(mesh, 2)
        assert s.gather.shape == (mesh.n_elements, 9)

    def test_shared_face_nodes(self, mesh):
        s = H1Space(mesh, 2)
        # Horizontally adjacent elements share a vertical edge of p+1 nodes.
        g0 = set(s.gather[mesh.element_index((0, 0))])
        g1 = set(s.gather[mesh.element_index((1, 0))])
        assert len(g0 & g1) == 3

    def test_multiplicity(self, mesh):
        s = H1Space(mesh, 2)
        mult = s.multiplicity
        # Interior element-corner nodes belong to 4 elements in 2D.
        assert mult.max() == 4
        assert mult.min() == 1
        assert mult.sum() == mesh.n_elements * s.nloc

    def test_invalid_order(self, mesh):
        with pytest.raises(ValueError):
            H1Space(mesh, 0)


class TestGatherScatter:
    def test_roundtrip_weighted_by_multiplicity(self, mesh, rng):
        s = H1Space(mesh, 3)
        v = rng.standard_normal(s.ndof)
        back = s.from_evector_add(s.to_evector(v))
        np.testing.assert_allclose(back, s.multiplicity * v, atol=1e-13)

    def test_scatter_is_gather_transpose(self, mesh, rng):
        s = H1Space(mesh, 2)
        v = rng.standard_normal(s.ndof)
        e = rng.standard_normal((mesh.n_elements, s.nloc))
        lhs = float(np.sum(s.to_evector(v) * e))
        rhs = float(np.sum(v * s.from_evector_add(e)))
        assert lhs == pytest.approx(rhs, rel=1e-12)

    def test_batched_columns(self, mesh, rng):
        s = H1Space(mesh, 2)
        V = rng.standard_normal((s.ndof, 3))
        E = s.to_evector(V)
        assert E.shape == (mesh.n_elements, s.nloc, 3)
        back = s.from_evector_add(E)
        np.testing.assert_allclose(back, s.multiplicity[:, None] * V, atol=1e-13)


class TestCoordinatesAndTraces:
    def test_dof_coords_interpolate_linear(self, mesh):
        s = H1Space(mesh, 3)
        c = s.dof_coords
        assert c.shape == (s.ndof, 2)
        # x-coordinates lie within the mesh bounds
        lo, hi = mesh.bounding_box()
        assert c[:, 0].min() >= lo[0] - 1e-12 and c[:, 0].max() <= hi[0] + 1e-12

    def test_axis_node_coords(self, mesh):
        s = H1Space(mesh, 3)
        xs = s.axis_node_coords(0)
        assert xs.shape == (6 * 3 + 1,)
        assert np.all(np.diff(xs) > 0)
        assert xs[0] == pytest.approx(0.0) and xs[-1] == pytest.approx(4.0)

    def test_axis_node_coords_curved_raises(self, mesh):
        s = H1Space(mesh, 2)
        with pytest.raises(ValueError):
            s.axis_node_coords(1)  # vertical axis is curved

    def test_bottom_trace(self, mesh):
        s = H1Space(mesh, 3)
        tr = s.trace("bottom")
        assert tr.n == 6 * 3 + 1
        assert tr.grid_shape == (19,)
        # trace node depths match the bathymetry polygon
        np.testing.assert_allclose(
            tr.coords[:, 1],
            np.interp(tr.coords[:, 0], np.linspace(0, 4, 7),
                      -(1.0 + 0.2 * np.sin(np.linspace(0, 4, 7)))),
            atol=1e-12,
        )

    def test_surface_trace_flat(self, mesh):
        s = H1Space(mesh, 2)
        tr = s.trace("surface")
        np.testing.assert_allclose(tr.coords[:, 1], 0.0, atol=1e-13)

    def test_boundary_dof_grid_3d(self):
        m = StructuredMesh.box([1, 1, 1], [2, 3, 2])
        s = H1Space(m, 2)
        dofs, shape = s.boundary_dof_grid("west")
        assert shape == (7, 5)
        assert dofs.size == 35


class TestPointEvaluation:
    def test_boundary_point_eval_exact(self, mesh):
        s = H1Space(mesh, 3)
        c = s.dof_coords
        f = 2.0 + 0.5 * c[:, 0] - 1.5 * c[:, 1]
        pts = np.array([[0.7], [2.2], [3.9]])
        C = s.boundary_point_eval(pts, "bottom")
        assert sp.issparse(C)
        depth_interp = np.interp(
            pts[:, 0], np.linspace(0, 4, 7),
            1.0 + 0.2 * np.sin(np.linspace(0, 4, 7)),
        )
        expected = 2.0 + 0.5 * pts[:, 0] + 1.5 * depth_interp
        np.testing.assert_allclose(C @ f, expected, atol=1e-10)

    def test_surface_point_eval_exact(self, mesh):
        s = H1Space(mesh, 3)
        c = s.dof_coords
        f = 1.0 + c[:, 0] ** 2  # quadratic in x, exact at order 3 on surface
        pts = np.array([[1.1], [3.3]])
        C = s.boundary_point_eval(pts, "surface")
        np.testing.assert_allclose(C @ f, 1.0 + pts[:, 0] ** 2, atol=1e-10)

    def test_rows_sum_to_one(self, mesh):
        s = H1Space(mesh, 3)
        C = s.boundary_point_eval(np.array([[0.4], [3.7]]), "bottom")
        np.testing.assert_allclose(np.asarray(C.sum(axis=1)).ravel(), 1.0, atol=1e-12)

    def test_invalid_side(self, mesh):
        s = H1Space(mesh, 2)
        with pytest.raises(ValueError):
            s.boundary_point_eval(np.array([[1.0]]), "west")

    def test_interior_point_eval_tensor_mesh(self, rng):
        m = StructuredMesh.box([2.0, 1.0], [3, 2])
        s = H1Space(m, 3)
        c = s.dof_coords
        f = 1.0 + c[:, 0] - 2 * c[:, 1] + c[:, 0] * c[:, 1]
        pts = rng.uniform([0, 0], [2, 1], size=(5, 2))
        C = s.point_eval(pts)
        expected = 1.0 + pts[:, 0] - 2 * pts[:, 1] + pts[:, 0] * pts[:, 1]
        np.testing.assert_allclose(C @ f, expected, atol=1e-10)

    def test_interior_point_eval_curved_raises(self, mesh):
        s = H1Space(mesh, 2)
        with pytest.raises(ValueError):
            s.point_eval(np.array([[1.0, -0.5]]))


class TestL2Space:
    def test_ndof(self, mesh):
        s = L2Space(mesh, 2)
        assert s.nloc == 9
        assert s.ndof == mesh.n_elements * 9

    def test_dof_coords_shape(self, mesh):
        s = L2Space(mesh, 1)
        assert s.dof_coords.shape == (mesh.n_elements, 4, 2)

    def test_order_zero_allowed(self, mesh):
        s = L2Space(mesh, 0)
        assert s.nloc == 1

    def test_negative_order_rejected(self, mesh):
        with pytest.raises(ValueError):
            L2Space(mesh, -1)
