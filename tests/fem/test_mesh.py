"""Structured meshes: constructors, topology, boundaries, location."""

import numpy as np
import pytest

from repro.fem.mesh import StructuredMesh


class TestConstructors:
    def test_box_2d(self):
        m = StructuredMesh.box([2.0, 1.0], [4, 2])
        assert m.dim == 2 and m.shape == (4, 2) and m.n_elements == 8
        lo, hi = m.bounding_box()
        np.testing.assert_allclose(lo, [0, 0])
        np.testing.assert_allclose(hi, [2, 1])

    def test_box_with_origin(self):
        m = StructuredMesh.box([1.0], [3], origin=[-0.5])
        lo, hi = m.bounding_box()
        assert lo[0] == pytest.approx(-0.5) and hi[0] == pytest.approx(0.5)

    def test_tensor_nonuniform(self):
        m = StructuredMesh.tensor([np.array([0.0, 0.5, 2.0])])
        assert m.shape == (2,)
        assert m.min_edge_length() == pytest.approx(0.5)

    def test_tensor_rejects_nonmonotone(self):
        with pytest.raises(ValueError):
            StructuredMesh.tensor([np.array([0.0, 1.0, 0.5])])

    def test_ocean_flat(self):
        m = StructuredMesh.ocean([np.linspace(0, 1, 4)], nz=3, depth=2.0)
        assert m.dim == 2 and m.shape == (3, 3)
        # surface at z=0, bottom at -2
        assert m.vertices[..., -1].max() == pytest.approx(0.0)
        assert m.vertices[..., -1].min() == pytest.approx(-2.0)
        # flat bottom means z is a straight axis too
        assert m.axes[-1] is not None

    def test_ocean_curved_depth(self):
        depth = lambda x: 1.0 + 0.3 * np.sin(x)
        m = StructuredMesh.ocean([np.linspace(0, 3, 7)], nz=2, depth=depth)
        assert m.axes[-1] is None  # curved vertical coordinate
        np.testing.assert_allclose(
            m.vertices[:, 0, -1], -depth(np.linspace(0, 3, 7)), atol=1e-13
        )

    def test_ocean_3d(self):
        m = StructuredMesh.ocean(
            [np.linspace(0, 2, 3), np.linspace(0, 1, 3)],
            nz=2,
            depth=lambda x, y: 1.0 + 0.1 * x + 0.05 * y,
        )
        assert m.dim == 3 and m.shape == (2, 2, 2)

    def test_ocean_1d_column(self):
        m = StructuredMesh.ocean([], nz=4, depth=3.0)
        assert m.dim == 1 and m.shape == (4,)

    def test_ocean_custom_zhat(self):
        zhat = np.array([0.0, 0.5, 0.8, 1.0])
        m = StructuredMesh.ocean([np.linspace(0, 1, 3)], nz=3, depth=1.0, zhat=zhat)
        np.testing.assert_allclose(m.vertices[0, :, 1], -(1 - zhat), atol=1e-13)

    def test_ocean_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            StructuredMesh.ocean([np.linspace(0, 1, 3)], nz=0, depth=1.0)
        with pytest.raises(ValueError):
            StructuredMesh.ocean([np.linspace(0, 1, 3)], nz=2, depth=-1.0)
        with pytest.raises(ValueError):
            StructuredMesh.ocean(
                [np.linspace(0, 1, 3)], nz=2, depth=1.0,
                zhat=np.array([0.0, 0.9, 0.5, 1.0]),
            )


class TestTopology:
    def test_element_vertices_ordering_2d(self):
        m = StructuredMesh.box([1.0, 1.0], [1, 1])
        ev = m.element_vertices()[0]  # corners (c0,c1) C-order: 00,01,10,11
        np.testing.assert_allclose(ev[0], [0, 0])
        np.testing.assert_allclose(ev[1], [0, 1])
        np.testing.assert_allclose(ev[2], [1, 0])
        np.testing.assert_allclose(ev[3], [1, 1])

    def test_element_vertices_shape_3d(self):
        m = StructuredMesh.box([1, 1, 1], [2, 3, 2])
        ev = m.element_vertices()
        assert ev.shape == (12, 8, 3)

    def test_element_index_roundtrip(self):
        m = StructuredMesh.box([1, 1], [3, 4])
        assert m.element_index((2, 3)) == 2 * 4 + 3

    def test_n_vertices(self):
        m = StructuredMesh.box([1, 1], [3, 4])
        assert m.n_vertices == 4 * 5


class TestBoundaries:
    def test_side_names_by_dim(self):
        m1 = StructuredMesh.ocean([], nz=2, depth=1.0)
        assert m1.side_names() == ["bottom", "surface"]
        m2 = StructuredMesh.box([1, 1], [2, 2])
        assert set(m2.side_names()) == {"bottom", "surface", "west", "east"}
        m3 = StructuredMesh.box([1, 1, 1], [2, 2, 2])
        assert "north" in m3.side_names() and "south" in m3.side_names()

    def test_boundary_element_counts(self):
        m = StructuredMesh.box([1, 1, 1], [2, 3, 4])
        assert m.boundary("bottom").elements.size == 6
        assert m.boundary("west").elements.size == 12
        assert m.boundary("north").elements.size == 8

    def test_boundary_axis_end(self):
        m = StructuredMesh.box([1, 1], [2, 2])
        b = m.boundary("bottom")
        assert b.axis == 1 and b.end == 0
        s = m.boundary("surface")
        assert s.axis == 1 and s.end == 1

    def test_invalid_side_raises(self):
        m = StructuredMesh.box([1, 1], [2, 2])
        with pytest.raises(ValueError):
            m.boundary("north")  # needs dim 3
        with pytest.raises(ValueError):
            m.boundary("top")

    def test_lateral_sides(self):
        m = StructuredMesh.box([1, 1, 1], [2, 2, 2])
        assert set(m.lateral_sides()) == {"west", "east", "south", "north"}


class TestLocation:
    def test_locate_horizontal(self):
        m = StructuredMesh.ocean([np.linspace(0, 4, 5)], nz=2, depth=1.0)
        elem, ref = m.locate_horizontal(np.array([[0.5], [3.9]]))
        assert elem[0, 0] == 0 and elem[1, 0] == 3
        assert ref[0, 0] == pytest.approx(0.0)  # center of [0,1]
        assert ref[1, 0] == pytest.approx(0.8)

    def test_locate_outside_raises(self):
        m = StructuredMesh.ocean([np.linspace(0, 4, 5)], nz=2, depth=1.0)
        with pytest.raises(ValueError):
            m.locate_horizontal(np.array([[4.6]]))

    def test_locate_at_vertex(self):
        m = StructuredMesh.ocean([np.linspace(0, 4, 5)], nz=2, depth=1.0)
        elem, ref = m.locate_horizontal(np.array([[1.0]]))
        # Boundary vertices are assigned consistently with ref in [-1, 1].
        assert -1.0 <= ref[0, 0] <= 1.0


def test_min_edge_length_curved():
    depth = lambda x: 1.0 + 0.5 * np.sin(2 * x)
    m = StructuredMesh.ocean([np.linspace(0, 3, 10)], nz=3, depth=depth)
    h = m.min_edge_length()
    assert 0 < h < 1.0


def test_vertices_shape_validation():
    with pytest.raises(ValueError):
        StructuredMesh(np.zeros((3, 3)))  # missing coordinate axis
