"""Mass and boundary operators: measures, coefficients, inject/extract."""

import numpy as np
import pytest

from repro.fem.geometry import ElementGeometry
from repro.fem.mesh import StructuredMesh
from repro.fem.operators import DiagonalBoundaryOperator, LumpedMass, l2_mass_diag
from repro.fem.quadrature import gauss_legendre
from repro.fem.spaces import H1Space, L2Space


@pytest.fixture(scope="module")
def mesh():
    x = np.linspace(0, 4, 7)
    return StructuredMesh.ocean([x], nz=2, depth=lambda xx: 1.0 + 0.25 * np.sin(xx))


class TestLumpedMass:
    def test_total_is_domain_measure(self, mesh):
        m = LumpedMass(H1Space(mesh, 3))
        x = np.linspace(0, 4, 7)
        poly_area = float(np.trapezoid(1.0 + 0.25 * np.sin(x), x))
        assert m.total() == pytest.approx(poly_area, rel=1e-12)

    def test_constant_coefficient_scales(self, mesh):
        s = H1Space(mesh, 2)
        m1 = LumpedMass(s, coef=1.0)
        m2 = LumpedMass(s, coef=2.5)
        np.testing.assert_allclose(m2.diag, 2.5 * m1.diag, atol=1e-13)

    def test_callable_coefficient(self, mesh):
        s = H1Space(mesh, 2)
        m = LumpedMass(s, coef=lambda c: 1.0 + c[..., 0])
        # Exact integral of (1+x) over the *polygonal* domain: the column
        # height is the linear interpolant of the depth samples, so the
        # integrand (1+x)*d_lin(x) is piecewise quadratic — integrate it on
        # a fine grid of the interpolant.
        x = np.linspace(0, 4, 7)
        d = 1.0 + 0.25 * np.sin(x)
        xf = np.linspace(0, 4, 20001)
        df = np.interp(xf, x, d)
        expected = float(np.trapezoid((1.0 + xf) * df, xf))
        assert m.total() == pytest.approx(expected, rel=1e-6)

    def test_apply_solve_roundtrip(self, mesh, rng):
        m = LumpedMass(H1Space(mesh, 2))
        v = rng.standard_normal((m.diag.size, 3))
        np.testing.assert_allclose(m.solve(m.apply(v)), v, atol=1e-13)

    def test_positive(self, mesh):
        m = LumpedMass(H1Space(mesh, 4))
        assert np.all(m.diag > 0)


class TestL2MassDiag:
    def test_volume_consistency(self, mesh):
        l2 = L2Space(mesh, 2)
        rule = gauss_legendre(3)
        geom = ElementGeometry.compute(mesh.element_vertices(), [rule.points] * 2)
        diag = l2_mass_diag(l2, geom.detj)
        x = np.linspace(0, 4, 7)
        poly_area = float(np.trapezoid(1.0 + 0.25 * np.sin(x), x))
        assert float(diag.sum()) == pytest.approx(poly_area, rel=1e-12)

    def test_with_coefficient(self, mesh):
        l2 = L2Space(mesh, 1)
        rule = gauss_legendre(2)
        geom = ElementGeometry.compute(mesh.element_vertices(), [rule.points] * 2)
        base = l2_mass_diag(l2, geom.detj)
        scaled = l2_mass_diag(l2, geom.detj, 3.0 * np.ones_like(geom.detj))
        np.testing.assert_allclose(scaled, 3.0 * base, atol=1e-13)


class TestDiagonalBoundaryOperator:
    def test_surface_measure(self, mesh):
        op = DiagonalBoundaryOperator(H1Space(mesh, 3), "surface")
        assert op.total() == pytest.approx(4.0, rel=1e-12)

    def test_bottom_measure_is_arclength(self, mesh):
        op = DiagonalBoundaryOperator(H1Space(mesh, 3), "bottom")
        # polygonal arc length of the bathymetry
        x = np.linspace(0, 4, 7)
        z = -(1.0 + 0.25 * np.sin(x))
        arc = float(np.sum(np.hypot(np.diff(x), np.diff(z))))
        assert op.total() == pytest.approx(arc, rel=1e-12)

    def test_lateral_measure_is_depth(self, mesh):
        op = DiagonalBoundaryOperator(H1Space(mesh, 2), "west")
        assert op.total() == pytest.approx(1.0 + 0.25 * np.sin(0.0), rel=1e-12)

    def test_coefficient(self, mesh):
        s = H1Space(mesh, 2)
        op1 = DiagonalBoundaryOperator(s, "surface", coef=1.0)
        op2 = DiagonalBoundaryOperator(s, "surface", coef=0.5)
        np.testing.assert_allclose(op2.values, 0.5 * op1.values, atol=1e-14)

    def test_add_to(self, mesh, rng):
        s = H1Space(mesh, 2)
        op = DiagonalBoundaryOperator(s, "surface")
        p = rng.standard_normal((s.ndof, 2))
        out = np.zeros_like(p)
        op.add_to(out, p, scale=-1.0)
        np.testing.assert_allclose(
            out[op.dofs], -op.values[:, None] * p[op.dofs], atol=1e-14
        )
        # untouched elsewhere
        mask = np.ones(s.ndof, bool)
        mask[op.dofs] = False
        assert np.all(out[mask] == 0)

    def test_inject_extract_adjoint(self, mesh, rng):
        s = H1Space(mesh, 3)
        op = DiagonalBoundaryOperator(s, "bottom")
        m = rng.standard_normal((op.n, 2))
        y = rng.standard_normal((s.ndof, 2))
        out = np.zeros((s.ndof, 2))
        op.inject(m, out)
        lhs = float(np.sum(out * y))
        rhs = float(np.sum(m * op.extract(y)))
        assert lhs == pytest.approx(rhs, rel=1e-12)

    def test_trace_ordering_matches_trace_grid(self, mesh):
        s = H1Space(mesh, 3)
        op = DiagonalBoundaryOperator(s, "bottom")
        np.testing.assert_array_equal(op.dofs, s.trace("bottom").dofs)

    def test_constant_function_integration(self, mesh):
        # <1, 1>_side via the diagonal equals the side measure.
        s = H1Space(mesh, 3)
        op = DiagonalBoundaryOperator(s, "surface")
        ones = np.ones(s.ndof)
        out = np.zeros(s.ndof)
        op.add_to(out, ones)
        assert float(out.sum()) == pytest.approx(4.0, rel=1e-12)

    def test_3d_bottom_area(self):
        m3 = StructuredMesh.ocean(
            [np.linspace(0, 2, 3), np.linspace(0, 3, 4)], nz=1, depth=1.0
        )
        op = DiagonalBoundaryOperator(H1Space(m3, 2), "bottom")
        assert op.total() == pytest.approx(6.0, rel=1e-12)
