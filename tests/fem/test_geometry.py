"""Q1 element geometry: coordinates, Jacobians, volumes, face factors."""

import numpy as np
import pytest

from repro.fem.geometry import ElementGeometry, FaceGeometry, q1_shape_tensor
from repro.fem.mesh import StructuredMesh
from repro.fem.quadrature import gauss_legendre, tensor_rule


def test_q1_shape_partition_of_unity():
    pts = [np.linspace(-1, 1, 4), np.linspace(-1, 1, 3)]
    S = q1_shape_tensor(pts)
    np.testing.assert_allclose(S.sum(axis=0), 1.0, atol=1e-13)


def test_q1_shape_derivative_sums_to_zero():
    pts = [np.linspace(-1, 1, 4), np.linspace(-1, 1, 3)]
    for ax in range(2):
        S = q1_shape_tensor(pts, deriv_axis=ax)
        np.testing.assert_allclose(S.sum(axis=0), 0.0, atol=1e-13)


@pytest.mark.parametrize("dim", [1, 2, 3])
def test_affine_element_geometry(dim):
    lengths = [2.0, 1.0, 0.5][:dim]
    mesh = StructuredMesh.box(lengths, [1] * dim)
    rule = gauss_legendre(3)
    geom = ElementGeometry.compute(mesh.element_vertices(), [rule.points] * dim)
    expected_det = np.prod([l / 2.0 for l in lengths])
    np.testing.assert_allclose(geom.detj, expected_det, atol=1e-13)
    # Jacobian is diagonal with half edge lengths.
    for d in range(dim):
        np.testing.assert_allclose(geom.jac[..., d, d], lengths[d] / 2, atol=1e-13)
    # invj @ jac == identity
    ident = np.einsum("eqij,eqjk->eqik", geom.invj, geom.jac)
    np.testing.assert_allclose(
        ident, np.broadcast_to(np.eye(dim), ident.shape), atol=1e-12
    )


def test_volumes_sum_to_domain_measure():
    depth = lambda x: 1.0 + 0.3 * np.sin(x)
    x = np.linspace(0, 5, 11)
    mesh = StructuredMesh.ocean([x], nz=3, depth=depth)
    rule = gauss_legendre(2)
    pts, w = tensor_rule([rule] * 2)
    geom = ElementGeometry.compute(mesh.element_vertices(), [rule.points] * 2)
    vol = float(np.sum(geom.volumes(w)))
    # Q1 geometry integrates the polygonal bathymetry exactly.
    assert vol == pytest.approx(float(np.trapezoid(depth(x), x)), rel=1e-12)


def test_coords_match_multilinear_map():
    verts = np.array([[[0, 0], [0, 1], [1, 0], [2, 2]]], dtype=float)
    r = np.array([0.0])
    geom = ElementGeometry.compute(verts, [r, r])
    # Center of the reference square maps to the corner average.
    np.testing.assert_allclose(geom.coords[0, 0], verts[0].mean(axis=0), atol=1e-13)


def test_inverted_element_detected():
    verts = np.array([[[0.0], [-1.0]]])  # decreasing: negative jacobian
    with pytest.raises(ValueError):
        ElementGeometry.compute(verts, [np.array([0.0])])


def test_geometry_properties():
    mesh = StructuredMesh.box([1, 1], [2, 2])
    rule = gauss_legendre(2)
    geom = ElementGeometry.compute(mesh.element_vertices(), [rule.points] * 2)
    assert geom.n_elements == 4
    assert geom.n_points == 4
    assert geom.dim == 2


class TestFaceGeometry:
    def test_flat_surface_face_area(self):
        mesh = StructuredMesh.ocean([np.linspace(0, 2, 5)], nz=2, depth=1.0)
        spec = mesh.boundary("surface")
        rule = gauss_legendre(3)
        fg = FaceGeometry.compute(
            mesh.element_vertices()[spec.elements], spec.axis, spec.end, [rule.points]
        )
        # total surface length = sum over faces of area * weights
        total = float(np.sum(fg.area * rule.weights[None, :]))
        assert total == pytest.approx(2.0, rel=1e-12)

    def test_surface_normal_points_up(self):
        mesh = StructuredMesh.ocean(
            [np.linspace(0, 2, 4)], nz=2, depth=lambda x: 1.0 + 0.2 * x
        )
        spec = mesh.boundary("surface")
        rule = gauss_legendre(2)
        fg = FaceGeometry.compute(
            mesh.element_vertices()[spec.elements], spec.axis, spec.end, [rule.points]
        )
        assert np.all(fg.normal[..., -1] > 0.99)

    def test_bottom_normal_points_down_and_tilts(self):
        mesh = StructuredMesh.ocean(
            [np.linspace(0, 2, 4)], nz=2, depth=lambda x: 1.0 + 0.5 * x
        )
        spec = mesh.boundary("bottom")
        rule = gauss_legendre(2)
        fg = FaceGeometry.compute(
            mesh.element_vertices()[spec.elements], spec.axis, spec.end, [rule.points]
        )
        assert np.all(fg.normal[..., -1] < 0)
        # Sloped bottom: outward normal has a horizontal component.
        assert np.all(np.abs(fg.normal[..., 0]) > 0.1)
        # Unit normals.
        np.testing.assert_allclose(
            np.linalg.norm(fg.normal, axis=-1), 1.0, atol=1e-12
        )

    def test_sloped_bottom_arc_length(self):
        slope = 0.5
        mesh = StructuredMesh.ocean(
            [np.linspace(0, 2, 3)], nz=1, depth=lambda x: 1.0 + slope * x
        )
        spec = mesh.boundary("bottom")
        rule = gauss_legendre(4)
        fg = FaceGeometry.compute(
            mesh.element_vertices()[spec.elements], spec.axis, spec.end, [rule.points]
        )
        total = float(np.sum(fg.area * rule.weights[None, :]))
        assert total == pytest.approx(2.0 * np.sqrt(1 + slope**2), rel=1e-12)

    def test_3d_lateral_face_area(self):
        mesh = StructuredMesh.box([2.0, 3.0, 0.5], [2, 3, 1])
        spec = mesh.boundary("west")
        rule = gauss_legendre(2)
        fg = FaceGeometry.compute(
            mesh.element_vertices()[spec.elements],
            spec.axis,
            spec.end,
            [rule.points, rule.points],
        )
        _, w = tensor_rule([rule, rule])
        total = float(np.sum(fg.area * w[None, :]))
        assert total == pytest.approx(3.0 * 0.5, rel=1e-12)

    def test_1d_face_is_point(self):
        mesh = StructuredMesh.ocean([], nz=2, depth=1.0)
        spec = mesh.boundary("bottom")
        fg = FaceGeometry.compute(
            mesh.element_vertices()[spec.elements], spec.axis, spec.end, []
        )
        assert fg.area.shape == (1, 1)
        assert fg.area[0, 0] == pytest.approx(1.0)
        assert fg.normal[0, 0, 0] == pytest.approx(-1.0)

    def test_invalid_inputs(self):
        mesh = StructuredMesh.box([1, 1], [1, 1])
        with pytest.raises(ValueError):
            FaceGeometry.compute(mesh.element_vertices(), 5, 0, [np.array([0.0])])
        with pytest.raises(ValueError):
            FaceGeometry.compute(mesh.element_vertices(), 0, 2, [np.array([0.0])])
