"""Seawater material: derived quantities and presets."""

import pytest

from repro.ocean.material import SeawaterMaterial


def test_standard_values():
    m = SeawaterMaterial.standard()
    assert m.rho == 1025.0 and m.c == 1500.0 and m.g == 9.81


def test_derived_quantities():
    m = SeawaterMaterial(rho=1000.0, c=1500.0, g=9.8)
    assert m.bulk_modulus == pytest.approx(1000.0 * 1500.0**2)
    assert m.impedance == pytest.approx(1000.0 * 1500.0)


def test_nondimensional_preset():
    m = SeawaterMaterial.nondimensional()
    assert m.rho == 1.0 and m.c == 1.0 and m.g == 1.0
    m2 = SeawaterMaterial.nondimensional(c=2.0, g=0.5)
    assert m2.c == 2.0 and m2.g == 0.5


def test_gravity_wave_speed():
    m = SeawaterMaterial.standard()
    # sqrt(gH) at 2500 m depth ~ 157 m/s (the classic tsunami speed)
    assert m.gravity_wave_speed(2500.0) == pytest.approx(156.6, abs=0.5)
    with pytest.raises(ValueError):
        m.gravity_wave_speed(-1.0)


def test_acoustic_cutoff():
    m = SeawaterMaterial.standard()
    # c/(4H): ~0.15 Hz at 2500 m
    assert m.acoustic_cutoff_frequency(2500.0) == pytest.approx(0.15, abs=0.01)


def test_validation():
    with pytest.raises(ValueError):
        SeawaterMaterial(rho=-1.0)
    with pytest.raises(ValueError):
        SeawaterMaterial(c=0.0)
    with pytest.raises(ValueError):
        SeawaterMaterial(g=-9.8)
